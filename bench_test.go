// Benchmarks regenerating the paper's evaluation (§4, §8), one per
// table/figure. Two kinds of numbers appear here:
//
//   - real wall-clock (ns/op): this Go implementation's own speed, where
//     the optimizations' structural effects (fewer elements, fewer
//     dispatches, compiled classifiers) show up directly;
//   - model metrics (reported via b.ReportMetric as model-ns/packet
//     etc.): the simulated 700 MHz Pentium III cost model, which is what
//     reproduces the paper's published numbers.
//
// Run: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/experiments"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/netsim"
	"repro/internal/opt"
	"repro/internal/packet"
	"repro/internal/simcpu"
)

// benchDevice is a minimal elements.Device for driving routers.
type benchDevice struct {
	name string
	rx   []*packet.Packet
	sent int64
}

func (d *benchDevice) DeviceName() string { return d.name }
func (d *benchDevice) RxDequeue() *packet.Packet {
	if len(d.rx) == 0 {
		return nil
	}
	p := d.rx[0]
	d.rx = d.rx[1:]
	return p
}
func (d *benchDevice) TxEnqueue(p *packet.Packet) bool { d.sent++; p.Kill(); return true }
func (d *benchDevice) TxRoom() bool                    { return true }
func (d *benchDevice) TxClean() int                    { return 0 }

// benchRouter builds a 2-interface IP-router variant wired to bench
// devices, returning the router and the input device.
func benchRouter(b *testing.B, variant string) (*core.Router, *benchDevice, []iprouter.Interface) {
	b.Helper()
	return benchRouterBurst(b, variant, 0)
}

// benchRouterBurst is benchRouter with a router Burst build option
// (0 or 1 = the scalar transfer path).
func benchRouterBurst(b *testing.B, variant string, burst int) (*core.Router, *benchDevice, []iprouter.Interface) {
	b.Helper()
	ifs := iprouter.Interfaces(2)
	g, err := lang.ParseRouter(iprouter.Config(ifs), "bench")
	if err != nil {
		b.Fatal(err)
	}
	reg := elements.NewRegistry()
	switch variant {
	case "Base":
	case "XF":
		pairs, err := opt.ParsePatterns(iprouter.ComboPatterns, "combo")
		if err != nil {
			b.Fatal(err)
		}
		opt.Xform(g, pairs)
	case "All":
		pairs, err := opt.ParsePatterns(iprouter.ComboPatterns, "combo")
		if err != nil {
			b.Fatal(err)
		}
		opt.Xform(g, pairs)
		if err := opt.FastClassifier(g, reg); err != nil {
			b.Fatal(err)
		}
		if err := opt.Devirtualize(g, reg, nil); err != nil {
			b.Fatal(err)
		}
	default:
		b.Fatalf("unknown variant %q", variant)
	}
	devs := map[string]interface{}{}
	in := &benchDevice{name: "eth0"}
	devs["device:eth0"] = in
	devs["device:eth1"] = &benchDevice{name: "eth1"}
	rt, err := core.Build(g, reg, core.BuildOptions{Env: devs, Burst: burst})
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range rt.Elements() {
		if aq, ok := e.(*elements.ARPQuerier); ok {
			for _, itf := range ifs {
				aq.InsertEntry(itf.HostAddr, itf.HostEth)
			}
		}
	}
	return rt, in, ifs
}

func transitPacket(ifs []iprouter.Interface) *packet.Packet {
	return packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
		ifs[0].HostAddr, ifs[1].HostAddr, 1234, 5678, make([]byte, 14))
}

// benchForward measures real wall-clock per forwarded packet for one
// variant (Figure 9's structural effect in this implementation).
func benchForward(b *testing.B, variant string) {
	rt, in, ifs := benchRouter(b, variant)
	tmpl := transitPacket(ifs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.rx = append(in.rx[:0], tmpl.Clone())
		rt.RunTaskRound()
		rt.RunTaskRound() // second round drains the output queue
	}
}

func BenchmarkFig9ForwardingBase(b *testing.B) { benchForward(b, "Base") }
func BenchmarkFig9ForwardingXF(b *testing.B)   { benchForward(b, "XF") }
func BenchmarkFig9ForwardingAll(b *testing.B)  { benchForward(b, "All") }

// benchBatchForward measures wall-clock per forwarded packet with the
// batch transfer path: packets arrive and cross the graph in bursts,
// amortizing the task-loop and dispatch overhead the scalar benchmarks
// pay per packet. Compare BenchmarkBatchForwardingAll against
// BenchmarkFig9ForwardingAll for the batching win.
func benchBatchForward(b *testing.B, variant string) {
	const burst = 32
	rt, in, ifs := benchRouterBurst(b, variant, burst)
	tmpl := transitPacket(ifs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += burst {
		n := burst
		if rem := b.N - i; rem < n {
			n = rem
		}
		in.rx = in.rx[:0]
		for j := 0; j < n; j++ {
			in.rx = append(in.rx, tmpl.Clone())
		}
		rt.RunTaskRound()
		rt.RunTaskRound() // second round drains the output queue
	}
}

func BenchmarkBatchForwardingBase(b *testing.B) { benchBatchForward(b, "Base") }
func BenchmarkBatchForwardingAll(b *testing.B)  { benchBatchForward(b, "All") }

// BenchmarkParallelScaling drives the batched optimized router through
// the work-stealing scheduler at 1, 2, and 4 workers. On a single-core
// host the workers serialize; the benchmark then reports the
// scheduler's coordination overhead rather than a speedup.
func BenchmarkParallelScaling(b *testing.B) {
	const burst = 32
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("P%d", workers), func(b *testing.B) {
			rt, in, ifs := benchRouterBurst(b, "All", burst)
			s, err := core.NewScheduler(rt, workers)
			if err != nil {
				b.Fatal(err)
			}
			tmpl := transitPacket(ifs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += burst {
				n := burst
				if rem := b.N - i; rem < n {
					n = rem
				}
				in.rx = in.rx[:0]
				for j := 0; j < n; j++ {
					in.rx = append(in.rx, tmpl.Clone())
				}
				s.RunRound()
				s.RunRound()
			}
		})
	}
}

// BenchmarkFig8Breakdown reports the model's Figure 8 numbers as
// metrics (the table itself is printed by click-bench -experiment
// fig8).
func BenchmarkFig8Breakdown(b *testing.B) {
	variants, ifs, err := netsim.PrepareVariants(2)
	if err != nil {
		b.Fatal(err)
	}
	var res netsim.Result
	for i := 0; i < b.N; i++ {
		res, err = experiments.CostPoint(variants[0], ifs, simcpu.P0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RxDeviceNS, "model-rx-ns/pkt")
	b.ReportMetric(res.ForwardNS, "model-fwd-ns/pkt")
	b.ReportMetric(res.TxDeviceNS, "model-tx-ns/pkt")
	b.ReportMetric(res.TotalCPUNS, "model-total-ns/pkt")
}

// BenchmarkFig9Model reports each variant's model forwarding-path cost.
func BenchmarkFig9Model(b *testing.B) {
	variants, ifs, err := netsim.PrepareVariants(2)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range variants {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			var res netsim.Result
			for i := 0; i < b.N; i++ {
				res, err = experiments.CostPoint(v, ifs, simcpu.P0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ForwardNS, "model-fwd-ns/pkt")
			b.ReportMetric(res.TotalCPUNS, "model-total-ns/pkt")
		})
	}
}

// BenchmarkFig10Point runs one Figure 10 operating point per iteration
// and reports the forwarding rate at an overload input (8 interfaces —
// two would be wire-limited below the CPU's capacity).
func BenchmarkFig10Point(b *testing.B) {
	variants, ifs, err := netsim.PrepareVariants(8)
	if err != nil {
		b.Fatal(err)
	}
	base := variants[0]
	o := netsim.TestbedOptions{Platform: simcpu.P0, NIC: netsim.Tulip, Ifs: ifs, Registry: base.Registry}
	var res netsim.Result
	for i := 0; i < b.N; i++ {
		res, err = netsim.RunPoint(base.Graph, o, 500000, 5e6, 20e6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ForwardPPS, "model-fwd-pps")
}

// BenchmarkFig12MLFFR reports the P0 Base MLFFR (the Figure 12 cell the
// rest of the table scales from).
func BenchmarkFig12MLFFR(b *testing.B) {
	variants, ifs, err := netsim.PrepareVariants(8)
	if err != nil {
		b.Fatal(err)
	}
	base := variants[0]
	o := netsim.TestbedOptions{Platform: simcpu.P0, NIC: netsim.Tulip, Ifs: ifs, Registry: base.Registry}
	var rate float64
	for i := 0; i < b.N; i++ {
		rate, err = netsim.MLFFR(base.Graph, o, 150000, 600000, 16000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rate, "model-mlffr-pps")
}

// Section 4: the firewall classifier, interpreted vs compiled — real
// wall clock. The compiled form should win here too, not just in the
// model.
func firewallPrograms(b *testing.B) (*classifier.Program, *classifier.Compiled, []byte) {
	b.Helper()
	prog, err := classifier.BuildIPFilterProgram(iprouter.FirewallRules())
	if err != nil {
		b.Fatal(err)
	}
	prog.Optimize()
	return prog, classifier.Compile(prog), iprouter.DNS5Packet().Data()
}

func BenchmarkSection4FirewallInterpreted(b *testing.B) {
	prog, _, data := firewallPrograms(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := prog.Match(data); !ok {
			b.Fatal("DNS-5 packet denied")
		}
	}
}

func BenchmarkSection4FirewallCompiled(b *testing.B) {
	_, comp, data := firewallPrograms(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := comp.Match(data); !ok {
			b.Fatal("DNS-5 packet denied")
		}
	}
}

// BenchmarkSection4Model reports the model's §4 numbers.
func BenchmarkSection4Model(b *testing.B) {
	var interp, compiled float64
	var err error
	for i := 0; i < b.N; i++ {
		interp, compiled, _, err = experiments.MeasureFirewall()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(interp, "model-interp-ns")
	b.ReportMetric(compiled, "model-compiled-ns")
}

// Section 3: packet-transfer dispatch, virtual (interface call) vs
// devirtualized (bound function) — real wall clock on this machine.
func dispatchChain(b *testing.B, devirt bool) (*core.Router, core.Element) {
	b.Helper()
	cfg := `i :: Idle -> a :: Counter -> bb :: Null -> c :: Counter -> d :: Discard;`
	g, err := lang.ParseRouter(cfg, "dispatch")
	if err != nil {
		b.Fatal(err)
	}
	reg := elements.NewRegistry()
	if devirt {
		if err := opt.Devirtualize(g, reg, nil); err != nil {
			b.Fatal(err)
		}
	}
	rt, err := core.Build(g, reg, core.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return rt, rt.Find("a")
}

func BenchmarkDispatchVirtual(b *testing.B) {
	_, head := dispatchChain(b, false)
	p := packet.BuildUDP4(packet.EtherAddr{}, packet.EtherAddr{},
		packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 1, 2, make([]byte, 14))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		head.Push(0, p.Clone())
	}
}

func BenchmarkDispatchDevirtualized(b *testing.B) {
	_, head := dispatchChain(b, true)
	p := packet.BuildUDP4(packet.EtherAddr{}, packet.EtherAddr{},
		packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 1, 2, make([]byte, 14))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		head.Push(0, p.Clone())
	}
}

// The optimizers themselves should be fast (§1: "our optimizations run
// quickly").
func BenchmarkToolXform(b *testing.B) {
	ifs := iprouter.Interfaces(8)
	text := iprouter.Config(ifs)
	pairs, err := opt.ParsePatterns(iprouter.ComboPatterns, "combo")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := lang.ParseRouter(text, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if n := opt.Xform(g, pairs); n != 24 {
			b.Fatalf("xform applied %d times", n)
		}
	}
}

func BenchmarkToolDevirtualize(b *testing.B) {
	ifs := iprouter.Interfaces(8)
	text := iprouter.Config(ifs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := lang.ParseRouter(text, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := opt.Devirtualize(g, elements.NewRegistry(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkToolFastClassifier(b *testing.B) {
	ifs := iprouter.Interfaces(8)
	text := iprouter.Config(ifs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := lang.ParseRouter(text, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := opt.FastClassifier(g, elements.NewRegistry()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse measures the configuration front end.
func BenchmarkParseIPRouter(b *testing.B) {
	text := iprouter.Config(iprouter.Interfaces(8))
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lang.ParseRouter(text, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// Tool benchmarks for the remaining passes.
func BenchmarkToolAlign(b *testing.B) {
	text := iprouter.Config(iprouter.Interfaces(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := lang.ParseRouter(text, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := opt.AlignPass(g, elements.NewRegistry()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkToolUndead(b *testing.B) {
	text := iprouter.Config(iprouter.Interfaces(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := lang.ParseRouter(text, "bench")
		if err != nil {
			b.Fatal(err)
		}
		opt.Undead(g, elements.NewRegistry())
	}
}

// BenchmarkClassifierBuild measures decision-tree construction and
// optimization for the 17-rule firewall.
func BenchmarkClassifierBuild(b *testing.B) {
	rules := iprouter.FirewallRules()
	for i := 0; i < b.N; i++ {
		prog, err := classifier.BuildIPFilterProgram(rules)
		if err != nil {
			b.Fatal(err)
		}
		prog.Optimize()
	}
}

// BenchmarkRouteLookup compares the linear table against the radix trie
// on a 64-route table (the design choice RadixIPLookup exists for).
func routeTable(n int) []string {
	routes := make([]string, 0, n)
	for i := 0; i < n; i++ {
		routes = append(routes, fmt.Sprintf("10.%d.0.0/16 %d", i, i%4))
	}
	return routes
}

func BenchmarkRouteLookupLinear64(b *testing.B) {
	e := &elements.LookupIPRoute{}
	if err := e.Configure(routeTable(64)); err != nil {
		b.Fatal(err)
	}
	a := packet.MakeIP4(10, 63, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Lookup(a); !ok {
			b.Fatal("no route")
		}
	}
}

func BenchmarkRouteLookupRadix64(b *testing.B) {
	e := &elements.RadixIPLookup{}
	if err := e.Configure(routeTable(64)); err != nil {
		b.Fatal(err)
	}
	a := packet.MakeIP4(10, 63, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Lookup(a); !ok {
			b.Fatal("no route")
		}
	}
}
