//go:build ignore

// Command gen regenerates the committed golden-trace fixtures. It is
// fully deterministic (seeded rand, counter timestamps), so running it
// again reproduces the committed files byte for byte:
//
//	go run testdata/traces/gen.go
//
// ip_mixed.pcap targets the 8-interface IP router (iprouter8.click /
// iprouter.Interfaces(8)): transit UDP to every subnet plus the edge
// traffic a real port sees — an ARP request, a TTL-expired packet, IP
// options, a corrupted checksum, a truncated header, a non-IP
// ethertype, a VLAN tag, an unresolved-host destination, a zero-length
// payload, and a route miss.
//
// udp_ports.pcap carries the random-configuration corpus trace: UDP
// frames whose destination-port low byte steers Classifier(37/01,
// 37/02, -) and whose payload carries a sequence number.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	pktio "repro/internal/io"
	"repro/internal/iprouter"
	"repro/internal/packet"
)

func main() {
	dir := "testdata/traces"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	write(filepath.Join(dir, "ip_mixed.pcap"), ipMixed())
	write(filepath.Join(dir, "udp_ports.pcap"), udpPorts())
}

func write(path string, frames [][]byte) {
	sink, err := pktio.CreateCaptureFile(path)
	if err != nil {
		fatal(err)
	}
	for _, f := range frames {
		if err := sink.WriteFrame(f); err != nil {
			fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d frames\n", path, len(frames))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gen:", err)
	os.Exit(1)
}

// frame extracts a packet's bytes and kills it.
func frame(p *packet.Packet) []byte {
	f := append([]byte(nil), p.Data()...)
	p.Kill()
	return f
}

// rechecksum rewrites the IP header checksum of an Ethernet frame.
func rechecksum(f []byte) {
	ihl := int(f[packet.EtherHeaderLen]&0x0f) * 4
	h := f[packet.EtherHeaderLen : packet.EtherHeaderLen+ihl]
	h[10], h[11] = 0, 0
	sum := packet.InternetChecksum(h)
	h[10], h[11] = byte(sum>>8), byte(sum)
}

func ipMixed() [][]byte {
	ifs := iprouter.Interfaces(8)
	var out [][]byte
	seq := 0
	transit := func(dst packet.IP4, dport uint16, payload int) []byte {
		seq++
		pl := make([]byte, payload)
		if payload >= 2 {
			pl[0], pl[1] = byte(seq>>8), byte(seq)
		}
		return frame(packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
			ifs[0].HostAddr, dst, uint16(1024+seq), dport, pl))
	}

	// Plain transit traffic: host 0 across the router to every other
	// subnet's host, varied ports and sizes.
	for j := 1; j < 8; j++ {
		for k := 0; k < 4; k++ {
			out = append(out, transit(ifs[j].HostAddr, uint16(j*10+k), 14+7*k))
		}
	}

	// ARP request from host 0 for the router's eth0 address; the
	// responder answers out the same port.
	arp := make([]byte, packet.EtherHeaderLen+packet.ARPHeaderLen)
	for i := 0; i < 6; i++ {
		arp[i] = 0xff
	}
	copy(arp[6:12], ifs[0].HostEth[:])
	arp[12], arp[13] = 0x08, 0x06
	a := arp[packet.EtherHeaderLen:]
	a[0], a[1] = 0, 1 // Ethernet
	a[2], a[3] = 0x08, 0x00
	a[4], a[5] = 6, 4
	a[6], a[7] = 0, 1 // request
	copy(a[8:14], ifs[0].HostEth[:])
	copy(a[14:18], ifs[0].HostAddr[:])
	copy(a[24:28], ifs[0].Addr[:])
	out = append(out, arp)

	// TTL 1: expires at the router, which answers with an ICMP time
	// exceeded back toward the source.
	ttl1 := transit(ifs[4].HostAddr, 7777, 18)
	ttl1[packet.EtherHeaderLen+8] = 1
	rechecksum(ttl1)
	out = append(out, ttl1)

	// IP options: IHL 6, four bytes of padding options (NOP NOP NOP
	// EOL). Built by widening a plain frame's header.
	plain := transit(ifs[2].HostAddr, 4242, 14)
	opt := make([]byte, 0, len(plain)+4)
	opt = append(opt, plain[:packet.EtherHeaderLen+packet.IPHeaderMinLen]...)
	opt = append(opt, 0x01, 0x01, 0x01, 0x00)
	opt = append(opt, plain[packet.EtherHeaderLen+packet.IPHeaderMinLen:]...)
	ip := opt[packet.EtherHeaderLen:]
	ip[0] = 0x46 // version 4, IHL 6
	tot := len(ip)
	ip[2], ip[3] = byte(tot>>8), byte(tot)
	rechecksum(opt)
	out = append(out, opt)

	// Corrupted IP checksum: must die in CheckIPHeader.
	bad := transit(ifs[3].HostAddr, 5555, 14)
	bad[packet.EtherHeaderLen+10] ^= 0xff
	out = append(out, bad)

	// Truncated IP header: the frame ends mid-header.
	trunc := transit(ifs[5].HostAddr, 6666, 14)
	out = append(out, trunc[:packet.EtherHeaderLen+10])

	// Non-IP ethertype (IPv6): the port classifier has no arm for it.
	v6 := make([]byte, 60)
	copy(v6[0:6], ifs[0].Ether[:])
	copy(v6[6:12], ifs[0].HostEth[:])
	v6[12], v6[13] = 0x86, 0xdd
	v6[14] = 0x60
	out = append(out, v6)

	// VLAN-tagged IP frame: 802.1Q tag between the addresses and the
	// IP payload.
	inner := transit(ifs[6].HostAddr, 8888, 14)
	vlan := make([]byte, 0, len(inner)+4)
	vlan = append(vlan, inner[:12]...)
	vlan = append(vlan, 0x81, 0x00, 0x00, 0x2a)
	vlan = append(vlan, inner[12:]...)
	out = append(out, vlan)

	// Destination inside subnet 3 but not the known host: routes to
	// eth3 and leaves the router as an ARP query for the unknown
	// address.
	out = append(out, transit(packet.MakeIP4(10, 0, 3, 77), 3077, 14))

	// Zero-length UDP payload: minimum 42-byte frame.
	out = append(out, transit(ifs[7].HostAddr, 9999, 0))

	// Route miss: no route covers 192.168.9.9, the lookup drops it.
	out = append(out, transit(packet.MakeIP4(192, 168, 9, 9), 1111, 14))

	return out
}

func udpPorts() [][]byte {
	r := rand.New(rand.NewSource(7))
	src := packet.EtherAddr{0, 160, 201, 1, 1, 1}
	dst := packet.EtherAddr{0, 160, 201, 2, 2, 2}
	var out [][]byte
	for i := 0; i < 60; i++ {
		payload := make([]byte, 14+r.Intn(32))
		payload[0], payload[1] = byte(i>>8), byte(i)
		out = append(out, frame(packet.BuildUDP4(src, dst,
			packet.MakeIP4(10, 0, 0, 2), packet.MakeIP4(10, 0, 2, 2),
			uint16(1024+r.Intn(64)), uint16(r.Intn(3)+1), payload)))
	}
	return out
}
