package elements

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
)

func TestHandlersReadCounters(t *testing.T) {
	rt := buildWith(t, `i :: Idle -> c :: Counter -> q :: Queue(4) -> u :: Unqueue -> out :: TestSink;`)
	c := rt.Find("c").(*Counter)
	for i := 0; i < 3; i++ {
		c.Push(0, packet.New(make([]byte, 60)))
	}
	if v, err := rt.ReadHandler("c.count"); err != nil || v != "3" {
		t.Errorf("c.count = %q, %v", v, err)
	}
	if v, err := rt.ReadHandler("c.byte_count"); err != nil || v != "180" {
		t.Errorf("c.byte_count = %q, %v", v, err)
	}
	if v, err := rt.ReadHandler("q.length"); err != nil || v != "3" {
		t.Errorf("q.length = %q, %v", v, err)
	}
	if v, err := rt.ReadHandler("q.capacity"); err != nil || v != "4" {
		t.Errorf("q.capacity = %q, %v", v, err)
	}
}

func TestHandlersWrite(t *testing.T) {
	rt := buildWith(t, `i :: Idle -> c :: Counter -> d :: Discard;`)
	c := rt.Find("c").(*Counter)
	c.Push(0, packet.New([]byte{1}))
	if err := rt.WriteHandler("c.reset_counts", ""); err != nil {
		t.Fatal(err)
	}
	if v, _ := rt.ReadHandler("c.count"); v != "0" {
		t.Errorf("count after reset = %q", v)
	}
	// Read-only handler refuses writes.
	if err := rt.WriteHandler("c.count", "5"); err == nil {
		t.Error("wrote to read-only handler")
	}
	// Write-only handler refuses reads.
	if _, err := rt.ReadHandler("c.reset_counts"); err == nil {
		t.Error("read a write-only handler")
	}
}

func TestImplicitHandlers(t *testing.T) {
	rt := buildWith(t, `i :: Idle -> q :: Queue(7) -> u :: Unqueue -> d :: Discard;`)
	if v, _ := rt.ReadHandler("q.class"); v != "Queue" {
		t.Errorf("q.class = %q", v)
	}
	if v, _ := rt.ReadHandler("q.config"); v != "7" {
		t.Errorf("q.config = %q", v)
	}
	if v, _ := rt.ReadHandler("q.name"); v != "q" {
		t.Errorf("q.name = %q", v)
	}
}

func TestHandlerErrors(t *testing.T) {
	rt := buildWith(t, `i :: Idle -> d :: Discard;`)
	for _, path := range []string{"", "noelement.count", "d.nohandler", "d", ".count", "d."} {
		if _, err := rt.ReadHandler(path); err == nil {
			t.Errorf("ReadHandler(%q) succeeded", path)
		}
	}
}

func TestHandlerNames(t *testing.T) {
	rt := buildWith(t, `i :: Idle -> q :: Queue -> u :: Unqueue -> d :: Discard;`)
	names, err := rt.HandlerNames("q")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"class", "config", "length", "drops", "capacity"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing handler %q in %v", want, names)
		}
	}
	if _, err := rt.HandlerNames("nope"); err == nil {
		t.Error("HandlerNames on missing element succeeded")
	}
}

func TestWritableLimitHandler(t *testing.T) {
	rt, err := core.BuildFromText("s :: InfiniteSource(2) -> out :: TestSink;", "t", testRegistry(), core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt.RunUntilIdle(100)
	if v, _ := rt.ReadHandler("s.count"); v != "2" {
		t.Fatalf("count = %q", v)
	}
	if err := rt.WriteHandler("s.limit", "5"); err != nil {
		t.Fatal(err)
	}
	rt.RunUntilIdle(100)
	if v, _ := rt.ReadHandler("s.count"); v != "5" {
		t.Errorf("count after raising limit = %q", v)
	}
	if err := rt.WriteHandler("s.limit", "bogus"); err == nil {
		t.Error("bad limit accepted")
	}
}

func TestClassifierProgramHandler(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> c :: Classifier(12/0800, -);
c [0] -> d0 :: Discard;
c [1] -> d1 :: Discard;
`)
	v, err := rt.ReadHandler("c.program")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v, "noutputs 2") {
		t.Errorf("program handler output:\n%s", v)
	}
}
