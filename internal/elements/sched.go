package elements

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/packet"
)

// Packet schedulers: pull-to-pull elements that choose which upstream
// queue to service. They are standard Click substrate (a ToDevice
// draining several Queues through a scheduler is the canonical QoS
// configuration) and exercise the pull side of the runtime.

// RoundRobinSched pulls from its inputs in round-robin order, skipping
// empty sources within a round.
type RoundRobinSched struct {
	core.Base
	next int
}

// Pull services the next non-empty input.
func (e *RoundRobinSched) Pull(port int) *packet.Packet {
	e.Work()
	n := e.NInputs()
	for i := 0; i < n; i++ {
		idx := (e.next + i) % n
		if p := e.Input(idx).Pull(); p != nil {
			e.next = (idx + 1) % n
			return p
		}
	}
	return nil
}

// PrioSched pulls from the lowest-numbered non-empty input: input 0 is
// the highest priority.
type PrioSched struct{ core.Base }

// Pull services inputs in priority order.
func (e *PrioSched) Pull(port int) *packet.Packet {
	e.Work()
	for i := 0; i < e.NInputs(); i++ {
		if p := e.Input(i).Pull(); p != nil {
			return p
		}
	}
	return nil
}

// StrideSched schedules inputs proportionally to configured tickets
// using stride scheduling, Click's proportional-share packet scheduler.
type StrideSched struct {
	core.Base
	tickets []int
	pass    []uint64
	stride  []uint64
}

// strideOne is the stride constant (tickets divide it).
const strideOne = 1 << 20

// Configure accepts one ticket count per input.
func (e *StrideSched) Configure(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("StrideSched: expects TICKETS per input")
	}
	for i, a := range args {
		n, err := strconv.Atoi(a)
		if err != nil || n <= 0 {
			return fmt.Errorf("StrideSched: bad tickets %q for input %d", a, i)
		}
		e.tickets = append(e.tickets, n)
		e.stride = append(e.stride, uint64(strideOne/n))
		e.pass = append(e.pass, uint64(strideOne/n))
	}
	return nil
}

// Pull services the input with the minimum pass value that has a packet
// available, advancing its pass.
func (e *StrideSched) Pull(port int) *packet.Packet {
	e.Work()
	if len(e.tickets) != e.NInputs() {
		return nil
	}
	tried := make([]bool, len(e.pass))
	for range e.pass {
		best := -1
		for i := range e.pass {
			if tried[i] {
				continue
			}
			if best < 0 || e.pass[i] < e.pass[best] {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		if p := e.Input(best).Pull(); p != nil {
			e.pass[best] += e.stride[best]
			return p
		}
		tried[best] = true
	}
	return nil
}

// RatedSource emits packets at a fixed rate against the router's task
// clock: each RunTask emits at most one packet, and no more than RATE
// per simulated... this driver has no global clock, so RatedSource
// meters by task invocations: one packet every INTERVAL task runs.
type RatedSource struct {
	core.Base
	interval int
	limit    int64
	phase    int
	Emitted  int64
	tmpl     *packet.Packet
}

// Configure accepts INTERVAL (task runs per packet, >= 1) and optional
// LIMIT.
func (e *RatedSource) Configure(args []string) error {
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("RatedSource: expects INTERVAL [, LIMIT]")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 1 {
		return fmt.Errorf("RatedSource: bad interval %q", args[0])
	}
	e.interval = n
	e.limit = -1
	if len(args) == 2 {
		l, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("RatedSource: bad limit %q", args[1])
		}
		e.limit = l
	}
	e.tmpl = packet.BuildUDP4(
		packet.EtherAddr{0, 160, 201, 1, 1, 1}, packet.EtherAddr{0, 160, 201, 2, 2, 2},
		packet.MakeIP4(10, 0, 0, 2), packet.MakeIP4(10, 0, 2, 2),
		1234, 1234, make([]byte, 14))
	return nil
}

// RunTask emits one packet every interval runs.
func (e *RatedSource) RunTask() bool {
	if e.limit >= 0 && e.Emitted >= e.limit {
		return false
	}
	e.phase++
	if e.phase < e.interval {
		return false
	}
	e.phase = 0
	e.Work()
	e.Emitted++
	e.Output(0).Push(e.tmpl.Clone())
	return true
}

// Unqueue moves packets from its pull input to its push output — the
// bridge from pull context back to push context. By default it moves
// one packet per task run; an optional BURST argument (or the router's
// Burst build option) moves up to BURST packets per run as one batched
// pull + one batched push.
type Unqueue struct {
	core.Base
	Moved   int64
	burst   int
	scratch []*packet.Packet
}

// Configure accepts an optional BURST (default 1).
func (e *Unqueue) Configure(args []string) error {
	e.burst = 0
	if len(args) > 1 {
		return fmt.Errorf("Unqueue: too many arguments")
	}
	if len(args) == 1 && args[0] != "" {
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return fmt.Errorf("Unqueue: bad burst %q", args[0])
		}
		e.burst = n
	}
	return nil
}

// RunTask moves up to one burst of packets if available.
func (e *Unqueue) RunTask() bool {
	burst := e.burst
	if burst == 0 {
		burst = e.DefaultBurst()
	}
	if burst <= 1 {
		e.Work()
		p := e.Input(0).Pull()
		if p == nil {
			return false
		}
		e.Moved++
		e.Output(0).Push(p)
		return true
	}
	if cap(e.scratch) < burst {
		e.scratch = make([]*packet.Packet, burst)
	}
	n := e.Input(0).PullBatch(e.scratch[:burst])
	if n == 0 {
		e.Work()
		return false
	}
	for i := 0; i < n; i++ {
		e.Work()
	}
	e.Moved += int64(n)
	e.Output(0).PushBatch(e.scratch[:n])
	return true
}
