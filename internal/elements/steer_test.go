package elements

import (
	"testing"

	"repro/internal/packet"
)

func steerRouterConfig() string {
	return `
i :: Idle -> fs :: FlowSteer;
fs [0] -> s0 :: TestSink;
fs [1] -> s1 :: TestSink;
fs [2] -> s2 :: TestSink;
fs [3] -> s3 :: TestSink;
`
}

func TestFlowSteerConsistentAndSpread(t *testing.T) {
	rt := buildWith(t, steerRouterConfig())
	fs := rt.Find("fs").(*FlowSteer)
	sinks := []*sink{
		rt.Find("s0").(*sink), rt.Find("s1").(*sink),
		rt.Find("s2").(*sink), rt.Find("s3").(*sink),
	}
	// 64 distinct flows, 3 packets each: every packet of a flow must
	// land on the same output, and the flows must not all collapse onto
	// one output.
	flowOut := map[int]int{}
	for f := 0; f < 64; f++ {
		src := packet.MakeIP4(10, 0, byte(f), 1)
		dst := packet.MakeIP4(10, 1, byte(f), 2)
		for rep := 0; rep < 3; rep++ {
			before := make([]int, len(sinks))
			for i, s := range sinks {
				before[i] = len(s.got)
			}
			fs.Push(0, udpPacket(src, dst))
			out := -1
			for i, s := range sinks {
				if len(s.got) > before[i] {
					out = i
				}
			}
			if out < 0 {
				t.Fatalf("flow %d rep %d: packet vanished", f, rep)
			}
			if prev, seen := flowOut[f]; seen && prev != out {
				t.Fatalf("flow %d split across outputs %d and %d", f, prev, out)
			}
			flowOut[f] = out
		}
	}
	used := map[int]bool{}
	for _, o := range flowOut {
		used[o] = true
	}
	if len(used) < 2 {
		t.Errorf("64 flows all hashed to one output — no parallelism to be had")
	}
}

func TestFlowSteerBatchMatchesScalar(t *testing.T) {
	rt := buildWith(t, steerRouterConfig())
	fs := rt.Find("fs").(*FlowSteer)
	sinks := []*sink{
		rt.Find("s0").(*sink), rt.Find("s1").(*sink),
		rt.Find("s2").(*sink), rt.Find("s3").(*sink),
	}
	batch := make([]*packet.Packet, 32)
	want := make([]int, len(sinks))
	for i := range batch {
		src := packet.MakeIP4(10, 0, byte(i), 1)
		p := udpPacket(src, packet.MakeIP4(10, 9, 9, 9))
		batch[i] = p
		want[fs.hash(p)]++
	}
	fs.PushBatch(0, batch)
	for i, s := range sinks {
		if len(s.got) != want[i] {
			t.Errorf("output %d got %d packets, want %d", i, len(s.got), want[i])
		}
		// Arrival order within an output follows batch order.
		last := -1
		for _, p := range s.got {
			seq := int(p.Data()[28]) // third src IP byte set from i above
			if seq <= last {
				t.Errorf("output %d order broken: %d after %d", i, seq, last)
			}
			last = seq
		}
	}
}

func TestFlowSteerNonIPGoesToZero(t *testing.T) {
	rt := buildWith(t, steerRouterConfig())
	fs := rt.Find("fs").(*FlowSteer)
	p := packet.New(make([]byte, 14)) // bare ether frame, no IP header anno
	fs.Push(0, p)
	if got := len(rt.Find("s0").(*sink).got); got != 1 {
		t.Errorf("non-IP packet not routed to output 0 (got %d there)", got)
	}
}
