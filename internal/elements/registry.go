package elements

import (
	"strconv"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lang"
)

// Register adds every built-in element class specification to a
// registry.
func Register(reg *core.Registry) {
	one := func(string) (graph.PortRange, graph.PortRange) {
		return graph.Exactly(1), graph.Exactly(1)
	}
	fixed := func(nin, nout int) func(string) (graph.PortRange, graph.PortRange) {
		return func(string) (graph.PortRange, graph.PortRange) {
			return graph.Exactly(nin), graph.Exactly(nout)
		}
	}
	ports := func(in, out graph.PortRange) func(string) (graph.PortRange, graph.PortRange) {
		return func(string) (graph.PortRange, graph.PortRange) { return in, out }
	}
	nOutputsFromArgs := func(config string) (graph.PortRange, graph.PortRange) {
		return graph.Exactly(1), graph.Exactly(len(lang.SplitConfig(config)))
	}
	// FlowCache(M, E) has M ingress + E tap inputs and matching outputs;
	// an unparsable config falls back to 1/1 and fails in Configure.
	flowCachePorts := func(config string) (graph.PortRange, graph.PortRange) {
		args := lang.SplitConfig(config)
		if len(args) == 2 {
			m, err1 := strconv.Atoi(args[0])
			n, err2 := strconv.Atoi(args[1])
			if err1 == nil && err2 == nil && m >= 1 && n >= 0 {
				return graph.Exactly(m + n), graph.Exactly(m + n)
			}
		}
		return graph.Exactly(1), graph.Exactly(1)
	}
	// IPFilter's output count depends on its rules' actions (allow = 0,
	// numbered ports add outputs).
	ipFilterPorts := func(config string) (graph.PortRange, graph.PortRange) {
		rules, err := classifier.ParseIPFilterRules(lang.SplitConfig(config))
		if err != nil {
			return graph.Exactly(1), graph.Exactly(1)
		}
		return graph.Exactly(1), graph.Exactly(classifier.IPFilterOutputs(rules))
	}

	specs := []*core.Spec{
		// Sources and sinks.
		{Name: "PollDevice", Processing: "/h", Ports: fixed(0, 1),
			Make: func() core.Element { return &PollDevice{} }, WorkCycles: costFromDevice},
		{Name: "FromDevice", Processing: "/h", Ports: fixed(0, 1),
			Make: func() core.Element { return &FromDevice{} }, WorkCycles: costFromDevice},
		{Name: "ToDevice", Processing: "l/", Ports: fixed(1, 0),
			Make: func() core.Element { return &ToDevice{} }, WorkCycles: costToDevicePull},
		{Name: "InfiniteSource", Processing: "/h", Ports: fixed(0, 1),
			Make: func() core.Element { return &InfiniteSource{} }, WorkCycles: costSource},
		{Name: "Discard", Processing: "h/", Ports: fixed(1, 0),
			Make: func() core.Element { return &Discard{} }, WorkCycles: costDiscard},
		{Name: "ToHost", Processing: "h/", Ports: fixed(1, 0),
			Make: func() core.Element { return &ToHost{} }, WorkCycles: costDiscard},
		{Name: "Idle", Processing: "a/a", Ports: ports(graph.AtLeast(0), graph.AtLeast(0)),
			Make: func() core.Element { return &Idle{} }},

		// Plumbing.
		{Name: "Null", Processing: "a/a", Ports: one,
			Make: func() core.Element { return &Null{} }, WorkCycles: costNull},
		{Name: "Counter", Processing: "a/a", Ports: one,
			Make: func() core.Element { return &Counter{} }, WorkCycles: costCounter},
		{Name: "Queue", Processing: "h/l", Ports: one,
			Make: func() core.Element { return &Queue{} }, WorkCycles: costQueuePush},
		{Name: "RouterLink", Processing: "h/h", Ports: one,
			Make: func() core.Element { return &RouterLink{} }, WorkCycles: costNull},
		{Name: "Tee", Processing: "h/h", Ports: ports(graph.Exactly(1), graph.AtLeast(1)),
			Make: func() core.Element { return &Tee{} }, WorkCycles: costTee},
		{Name: "StaticSwitch", Processing: "h/h", Ports: ports(graph.Exactly(1), graph.AtLeast(1)),
			Make: func() core.Element { return &StaticSwitch{} }, WorkCycles: costStaticSwitch},
		{Name: "FlowSteer", Processing: "h/h", Ports: ports(graph.Exactly(1), graph.AtLeast(1)),
			Make: func() core.Element { return &FlowSteer{} }, WorkCycles: costFlowSteer},
		{Name: "Switch", Processing: "h/h", Ports: ports(graph.Exactly(1), graph.AtLeast(1)),
			Make: func() core.Element { return &Switch{} }, WorkCycles: costStaticSwitch},
		{Name: "FlowCache", Processing: "h/h", Ports: flowCachePorts,
			Make: func() core.Element { return &FlowCache{} }},
		{Name: "PaintSwitch", Processing: "h/h", Ports: ports(graph.Exactly(1), graph.AtLeast(1)),
			Make: func() core.Element { return &PaintSwitch{} }, WorkCycles: costStaticSwitch},
		{Name: "RED", Processing: "a/a", Ports: one,
			Make: func() core.Element { return &RED{} }, WorkCycles: costRED},
		{Name: "ScheduleInfo", Processing: "a/a", Ports: fixed(0, 0),
			Make: func() core.Element { return &ScheduleInfo{} }},
		{Name: "RoundRobinSched", Processing: "l/l", Ports: ports(graph.AtLeast(1), graph.Exactly(1)),
			Make: func() core.Element { return &RoundRobinSched{} }, WorkCycles: costQueuePull},
		{Name: "PrioSched", Processing: "l/l", Ports: ports(graph.AtLeast(1), graph.Exactly(1)),
			Make: func() core.Element { return &PrioSched{} }, WorkCycles: costQueuePull},
		{Name: "StrideSched", Processing: "l/l", Ports: ports(graph.AtLeast(1), graph.Exactly(1)),
			Make: func() core.Element { return &StrideSched{} }, WorkCycles: costQueuePull + 10},
		{Name: "RatedSource", Processing: "/h", Ports: fixed(0, 1),
			Make: func() core.Element { return &RatedSource{} }, WorkCycles: costSource},
		{Name: "Unqueue", Processing: "l/h", Ports: one,
			Make: func() core.Element { return &Unqueue{} }, WorkCycles: costNull},
		{Name: "ToDump", Processing: "h/", Ports: ports(graph.Exactly(1), graph.Between(0, 1)),
			Make: func() core.Element { return &ToDump{} }, WorkCycles: costCounter},
		{Name: "FromDump", Processing: "/h", Ports: fixed(0, 1),
			Make: func() core.Element { return &FromDump{} }, WorkCycles: costSource},

		// Paint.
		{Name: "Paint", Processing: "a/a", Ports: one,
			Make: func() core.Element { return &Paint{} }, WorkCycles: costPaint},
		{Name: "CheckPaint", Processing: "a/ah", Ports: ports(graph.Exactly(1), graph.Between(1, 2)),
			Make: func() core.Element { return &CheckPaint{} }, WorkCycles: costCheckPaint},
		{Name: "PaintTee", Processing: "a/ah", Ports: ports(graph.Exactly(1), graph.Between(1, 2)),
			Make: func() core.Element { return &PaintTee{} }, WorkCycles: costCheckPaint},

		// Ethernet and ARP.
		{Name: "Strip", Processing: "a/a", Ports: one,
			Make: func() core.Element { return &Strip{} }, WorkCycles: costStrip},
		{Name: "Unstrip", Processing: "a/a", Ports: one,
			Make: func() core.Element { return &Unstrip{} }, WorkCycles: costStrip},
		{Name: "EtherEncap", Processing: "a/a", Ports: one,
			Make: func() core.Element { return &EtherEncap{} }, WorkCycles: costEtherEncap},
		{Name: "HostEtherFilter", Processing: "a/ah", Ports: ports(graph.Exactly(1), graph.Between(1, 2)),
			Make: func() core.Element { return &HostEtherFilter{} }, WorkCycles: costHostEtherFilt},
		{Name: "ARPQuerier", Processing: "h/h", Flow: "xy/x", Ports: fixed(2, 1),
			Make: func() core.Element { return &ARPQuerier{} }, WorkCycles: costARPQuerier},
		{Name: "ARPResponder", Processing: "h/h", Flow: "x/y", Ports: one,
			Make: func() core.Element { return &ARPResponder{} }, WorkCycles: costARPResponder},

		// Classification.
		{Name: "Classifier", Processing: "h/h", Ports: nOutputsFromArgs,
			Make: func() core.Element { return &Classifier{} }, WorkCycles: costClassifierBase},
		{Name: "IPClassifier", Processing: "h/h", Ports: nOutputsFromArgs,
			Make: func() core.Element { return &IPClassifier{} }, WorkCycles: costClassifierBase},
		{Name: "IPFilter", Processing: "h/h", Ports: ipFilterPorts,
			Make: func() core.Element { return &IPFilter{} }, WorkCycles: costClassifierBase},

		// IP forwarding.
		{Name: "CheckIPHeader", Processing: "a/ah", Ports: ports(graph.Exactly(1), graph.Between(1, 2)),
			Make: func() core.Element { return &CheckIPHeader{} }, WorkCycles: costCheckIPHeader},
		{Name: "GetIPAddress", Processing: "a/a", Ports: one,
			Make: func() core.Element { return &GetIPAddress{} }, WorkCycles: costGetIPAddress},
		{Name: "LookupIPRoute", Processing: "h/h", Ports: ports(graph.Exactly(1), graph.AtLeast(1)),
			Make: func() core.Element { return &LookupIPRoute{} }, WorkCycles: costLookupIPRoute},
		{Name: "RadixIPLookup", Processing: "h/h", Ports: ports(graph.Exactly(1), graph.AtLeast(1)),
			Make: func() core.Element { return &RadixIPLookup{} }, WorkCycles: costLookupIPRoute},
		{Name: "DropBroadcasts", Processing: "a/a", Ports: one,
			Make: func() core.Element { return &DropBroadcasts{} }, WorkCycles: costDropBroadcasts},
		{Name: "IPGWOptions", Processing: "a/ah", Ports: ports(graph.Exactly(1), graph.Between(1, 2)),
			Make: func() core.Element { return &IPGWOptions{} }, WorkCycles: costIPGWOptions},
		{Name: "FixIPSrc", Processing: "a/a", Ports: one,
			Make: func() core.Element { return &FixIPSrc{} }, WorkCycles: costFixIPSrc},
		{Name: "DecIPTTL", Processing: "a/ah", Ports: ports(graph.Exactly(1), graph.Between(1, 2)),
			Make: func() core.Element { return &DecIPTTL{} }, WorkCycles: costDecIPTTL},
		{Name: "IPFragmenter", Processing: "h/h", Ports: ports(graph.Exactly(1), graph.Between(1, 2)),
			Make: func() core.Element { return &IPFragmenter{} }, WorkCycles: costIPFragmenter},
		{Name: "ICMPError", Processing: "h/h", Flow: "x/y", Ports: one,
			Make: func() core.Element { return &ICMPError{} }, WorkCycles: costICMPError},
		{Name: "ICMPPingResponder", Processing: "h/h", Flow: "x/y", Ports: ports(graph.Exactly(1), graph.Between(1, 2)),
			Make: func() core.Element { return &ICMPPingResponder{} }, WorkCycles: costICMPError},

		// Alignment.
		{Name: "Align", Processing: "a/a", Ports: one,
			Make: func() core.Element { return &Align{} }, WorkCycles: costNull},
		{Name: "AlignmentInfo", Processing: "a/a", Ports: fixed(0, 0),
			Make: func() core.Element { return &AlignmentInfo{} }},

		// Combination elements (click-xform targets).
		{Name: "IPInputCombo", Processing: "a/ah", Ports: ports(graph.Exactly(1), graph.Between(1, 2)),
			Make: func() core.Element { return &IPInputCombo{} }, WorkCycles: costIPInputCombo},
		{Name: "IPOutputCombo", Processing: "h/h", Ports: ports(graph.Exactly(1), graph.Between(1, 5)),
			Make: func() core.Element { return &IPOutputCombo{} }, WorkCycles: costIPOutputCombo},
		{Name: "EtherEncapARP", Processing: "h/h", Flow: "xy/x", Ports: fixed(2, 1),
			Make: func() core.Element { return &EtherEncapARP{} }, WorkCycles: costEtherEncapARP},
	}
	for _, s := range specs {
		reg.Register(s)
	}
}

// NewRegistry returns a registry containing every built-in element
// class.
func NewRegistry() *core.Registry {
	reg := core.NewRegistry()
	Register(reg)
	return reg
}
