package elements

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/packet"
)

// Handler exports for the element library. Names follow Click's
// conventions: "count", "length", "drops", "reset_counts", etc.

func intHandler(name string, get func() int64) core.Handler {
	return core.Handler{Name: name, Read: func() string {
		return strconv.FormatInt(get(), 10)
	}}
}

// Handlers exports count/byte_count/reset_counts.
func (e *Counter) Handlers() []core.Handler {
	return []core.Handler{
		intHandler("count", func() int64 { return e.Packets }),
		intHandler("byte_count", func() int64 { return e.Bytes }),
		{Name: "reset_counts", Write: func(string) error {
			e.Packets, e.Bytes = 0, 0
			return nil
		}},
	}
}

// Handlers exports length/capacity/drops/highwater/reset.
func (e *Queue) Handlers() []core.Handler {
	return []core.Handler{
		intHandler("length", func() int64 { return int64(e.Len()) }),
		{Name: "capacity",
			Read: func() string { return strconv.Itoa(e.Capacity()) },
			Write: func(v string) error {
				n, err := strconv.Atoi(v)
				if err != nil {
					return fmt.Errorf("Queue: bad capacity %q", v)
				}
				if err := e.SetCapacity(n); err != nil {
					return err
				}
				e.BumpGuard(core.GuardConfig)
				return nil
			}},
		intHandler("drops", func() int64 { return atomic.LoadInt64(&e.Drops) }),
		intHandler("highwater_length", func() int64 { return atomic.LoadInt64(&e.HighWater) }),
		{Name: "reset_counts", Write: func(string) error {
			atomic.StoreInt64(&e.Drops, 0)
			atomic.StoreInt64(&e.Enqueued, 0)
			atomic.StoreInt64(&e.HighWater, int64(e.Len()))
			return nil
		}},
	}
}

// Handlers exports count.
func (e *Discard) Handlers() []core.Handler {
	return []core.Handler{
		intHandler("count", func() int64 { return e.Count }),
		{Name: "reset_counts", Write: func(string) error { e.Count = 0; return nil }},
	}
}

// Handlers exports the emission count and a writable limit.
func (e *InfiniteSource) Handlers() []core.Handler {
	return []core.Handler{
		intHandler("count", func() int64 { return e.Emitted }),
		{Name: "limit",
			Read: func() string { return strconv.FormatInt(e.limit, 10) },
			Write: func(v string) error {
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return fmt.Errorf("InfiniteSource: bad limit %q", v)
				}
				e.limit = n
				return nil
			}},
	}
}

// Handlers exports paint-match statistics.
func (e *CheckPaint) Handlers() []core.Handler {
	return []core.Handler{
		intHandler("matched", func() int64 { return e.Matched }),
		{Name: "color", Read: func() string { return strconv.Itoa(int(e.color)) }},
	}
}

// Handlers exports validation statistics.
func (e *CheckIPHeader) Handlers() []core.Handler {
	return []core.Handler{
		intHandler("good", func() int64 { return e.Good }),
		intHandler("drops", func() int64 { return e.Bad }),
	}
}

// Handlers exports TTL expiry statistics.
func (e *DecIPTTL) Handlers() []core.Handler {
	return []core.Handler{intHandler("expired", func() int64 { return e.Expired })}
}

// Handlers exports routing statistics plus runtime route mutation.
// "add" and "remove" bump the route guard generation, so flow fast
// paths re-validate every cached entry against the updated table.
func (e *LookupIPRoute) Handlers() []core.Handler {
	return []core.Handler{
		intHandler("no_route", func() int64 { return e.NoRoute }),
		intHandler("lookups", func() int64 { return e.Lookups }),
		{Name: "table", Read: func() string {
			out := ""
			e.lock()
			for _, r := range e.routes {
				out += fmt.Sprintf("%08x/%d -> %s port %d\n", r.dst, r.maskLen, r.gw, r.port)
			}
			e.unlock()
			return out
		}},
		{Name: "add", Write: e.AddRoute},
		{Name: "remove", Write: e.RemoveRoute},
	}
}

// Handlers exports ARP statistics plus runtime table insertion ("insert
// IP ETH"), which bumps the ARP guard generation like a learned entry.
func (e *ARPQuerier) Handlers() []core.Handler {
	return []core.Handler{
		intHandler("queries", func() int64 { return e.Queries }),
		intHandler("responses", func() int64 { return e.Responses }),
		intHandler("drops", func() int64 { return e.Drops }),
		intHandler("table_size", func() int64 {
			e.lock()
			n := len(e.tbl)
			e.unlock()
			return int64(n)
		}),
		{Name: "insert", Write: func(v string) error {
			fields := strings.Fields(v)
			if len(fields) != 2 {
				return fmt.Errorf("ARPQuerier: insert expects IP ETH, got %q", v)
			}
			ip, err := packet.ParseIP4(fields[0])
			if err != nil {
				return err
			}
			eth, err := packet.ParseEther(fields[1])
			if err != nil {
				return err
			}
			e.InsertEntry(ip, eth)
			return nil
		}},
	}
}

// Handlers exports RED drop statistics and runtime-writable dropping
// parameters, mirroring Queue's writable capacity.
func (e *RED) Handlers() []core.Handler {
	return []core.Handler{
		intHandler("drops", func() int64 { return atomic.LoadInt64(&e.Drops) }),
		{Name: "min_thresh",
			Read: func() string { return strconv.Itoa(e.minThresh) },
			Write: func(v string) error {
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 || n >= e.maxThresh {
					return fmt.Errorf("RED: bad min threshold %q", v)
				}
				e.minThresh = n
				e.BumpGuard(core.GuardConfig)
				return nil
			}},
		{Name: "max_thresh",
			Read: func() string { return strconv.Itoa(e.maxThresh) },
			Write: func(v string) error {
				n, err := strconv.Atoi(v)
				if err != nil || n <= e.minThresh {
					return fmt.Errorf("RED: bad max threshold %q", v)
				}
				e.maxThresh = n
				e.BumpGuard(core.GuardConfig)
				return nil
			}},
		{Name: "max_p",
			Read: func() string { return strconv.Itoa(int(e.maxP*1000 + 0.5)) },
			Write: func(v string) error {
				n, err := strconv.Atoi(v)
				if err != nil || n <= 0 || n > 1000 {
					return fmt.Errorf("RED: bad max-p %q", v)
				}
				e.maxP = float64(n) / 1000
				e.BumpGuard(core.GuardConfig)
				return nil
			}},
	}
}

// Handlers exports device statistics.
func (e *PollDevice) Handlers() []core.Handler {
	return []core.Handler{intHandler("count", func() int64 { return e.Recv })}
}

// Handlers exports device statistics.
func (e *ToDevice) Handlers() []core.Handler {
	return []core.Handler{
		intHandler("count", func() int64 { return e.Sent }),
		intHandler("rejected", func() int64 { return e.Rejected }),
	}
}

// Handlers exports classification statistics.
func (e *classifierBase) Handlers() []core.Handler {
	return []core.Handler{
		intHandler("matched", func() int64 { return e.Matched }),
		intHandler("dropped", func() int64 { return e.Dropped }),
		{Name: "program", Read: func() string { return e.prog.String() }},
	}
}

// Handlers exports compiled-classification statistics.
func (e *FastClassifier) Handlers() []core.Handler {
	return []core.Handler{
		intHandler("matched", func() int64 { return e.Matched }),
		intHandler("dropped", func() int64 { return e.Dropped }),
		{Name: "program", Read: func() string { return e.compiled.Program().String() }},
	}
}
