package elements

import (
	"fmt"
	"sync/atomic"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lang"
	"repro/internal/packet"
)

// classifierBase is shared by the three generic classification elements
// (§3): a decision tree traversed per packet by the interpreter loop of
// Figure 3a, charging the cost model per node visited.
type classifierBase struct {
	core.Base
	prog *classifier.Program
	// Matched and Dropped instrument classification outcomes.
	Matched int64
	Dropped int64
}

// Program exposes the decision tree (click-fastclassifier's harness
// reads it).
func (e *classifierBase) Program() *classifier.Program { return e.prog }

func (e *classifierBase) classify(p *packet.Packet) {
	e.Work()
	e.MemFetch(1) // first touch of the packet's Ethernet header
	port, ok, steps := e.prog.Match(p.Data())
	e.Charge(int64(steps) * costClassifierStep)
	if !ok || port >= e.NOutputs() {
		atomic.AddInt64(&e.Dropped, 1)
		e.Drop(p)
		return
	}
	atomic.AddInt64(&e.Matched, 1)
	e.Output(port).Push(p)
}

// Push classifies.
func (e *classifierBase) Push(port int, p *packet.Packet) { e.classify(p) }

// PushBatch classifies each packet and forwards runs of consecutive
// same-port packets as sub-batches, preserving per-port packet order.
func (e *classifierBase) PushBatch(port int, ps []*packet.Packet) {
	pushRunsBatch(ps, e.NOutputs(), func(p *packet.Packet) int {
		e.Work()
		e.MemFetch(1)
		out, ok, steps := e.prog.Match(p.Data())
		e.Charge(int64(steps) * costClassifierStep)
		if !ok || out >= e.NOutputs() {
			atomic.AddInt64(&e.Dropped, 1)
			return -1
		}
		atomic.AddInt64(&e.Matched, 1)
		return out
	}, e.Output, e.Drop)
}

// pushRunsBatch routes a batch through a per-packet port decision,
// emitting maximal runs of consecutive same-port packets as one
// batched transfer each. A decision of -1 hands the packet to drop
// (Base.Drop, so telemetry sees batch-path drops too).
func pushRunsBatch(ps []*packet.Packet, nout int, decide func(*packet.Packet) int, output func(int) *core.OutPort, drop func(*packet.Packet)) {
	start, cur := 0, -2
	flush := func(end int) {
		if cur >= 0 && end > start {
			output(cur).PushBatch(ps[start:end])
		}
	}
	for i, p := range ps {
		out := decide(p)
		if out < 0 {
			flush(i)
			drop(p)
			cur, start = -2, i+1
			continue
		}
		if out != cur {
			flush(i)
			cur, start = out, i
		}
	}
	flush(len(ps))
}

// Classifier matches raw packet data against hex patterns
// ("12/0806 20/0001, 12/0800, -"); each pattern is an output port.
type Classifier struct{ classifierBase }

// Configure compiles the patterns.
func (e *Classifier) Configure(args []string) error {
	pr, err := classifier.BuildClassifierProgram(args)
	if err != nil {
		return fmt.Errorf("Classifier: %v", err)
	}
	pr.Optimize()
	e.prog = pr
	return nil
}

// classifierPorts computes Classifier's output count from its config.
func classifierPorts(config string) (graph.PortRange, graph.PortRange) {
	n := len(lang.SplitConfig(config))
	return graph.Exactly(1), graph.Exactly(n)
}

// IPClassifier matches IP packets against tcpdump-like expressions, one
// per output port.
type IPClassifier struct{ classifierBase }

// Configure compiles the expressions.
func (e *IPClassifier) Configure(args []string) error {
	pr, err := classifier.BuildIPClassifierProgram(args)
	if err != nil {
		return fmt.Errorf("IPClassifier: %v", err)
	}
	pr.Optimize()
	e.prog = pr
	return nil
}

// IPFilter applies allow/deny rules; allowed packets leave on output 0.
type IPFilter struct{ classifierBase }

// Configure compiles the rules.
func (e *IPFilter) Configure(args []string) error {
	pr, err := classifier.BuildIPFilterProgram(args)
	if err != nil {
		return fmt.Errorf("IPFilter: %v", err)
	}
	pr.Optimize()
	e.prog = pr
	return nil
}

// FastClassifier is the runtime body of the element classes
// click-fastclassifier generates: the same decision tree, compiled with
// inlined constants (Figure 3b). Instances are created through dynamic
// specs registered by the tool, never named directly in hand-written
// configurations.
type FastClassifier struct {
	core.Base
	compiled *classifier.Compiled
	Matched  int64
	Dropped  int64
}

// NewFastClassifier wraps a compiled program as an element factory.
func NewFastClassifier(c *classifier.Compiled) func() core.Element {
	return func() core.Element { return &FastClassifier{compiled: c} }
}

// Configure ignores arguments: the compiled tree is baked in, exactly
// as the generated C++ classes ignore their configuration strings.
func (e *FastClassifier) Configure(args []string) error { return nil }

// Program exposes the compiled decision tree so downstream passes
// (click-fuse) can compose already-specialized classifiers.
func (e *FastClassifier) Program() *classifier.Program { return e.compiled.Program() }

// Push classifies with the compiled matcher.
func (e *FastClassifier) Push(port int, p *packet.Packet) {
	e.Work()
	e.MemFetch(1) // first touch of the packet's Ethernet header
	out, ok, steps := e.compiled.Match(p.Data())
	e.Charge(int64(steps) * costFastClassStep)
	if !ok || out >= e.NOutputs() {
		atomic.AddInt64(&e.Dropped, 1)
		e.Drop(p)
		return
	}
	atomic.AddInt64(&e.Matched, 1)
	e.Output(out).Push(p)
}

// PushBatch classifies the batch with the compiled matcher, forwarding
// runs of consecutive same-port packets as sub-batches.
func (e *FastClassifier) PushBatch(port int, ps []*packet.Packet) {
	pushRunsBatch(ps, e.NOutputs(), func(p *packet.Packet) int {
		e.Work()
		e.MemFetch(1)
		out, ok, steps := e.compiled.Match(p.Data())
		e.Charge(int64(steps) * costFastClassStep)
		if !ok || out >= e.NOutputs() {
			atomic.AddInt64(&e.Dropped, 1)
			return -1
		}
		atomic.AddInt64(&e.Matched, 1)
		return out
	}, e.Output, e.Drop)
}

// FusedClassifier is the runtime body of the FusedClassifier_N classes
// click-fuse generates: one decision diagram standing in for a whole
// run of classification elements, with the run's exit edges as output
// ports. The matcher is identical to FastClassifier's — the win comes
// from the composed, specialized diagram and the per-stage dispatch it
// removes — so it keeps FastClassifier's calibrated cost model.
type FusedClassifier struct {
	FastClassifier
}

// NewFusedClassifier wraps a composed decision diagram as an element
// factory for a generated fused class.
func NewFusedClassifier(c *classifier.Compiled) func() core.Element {
	return func() core.Element { return &FusedClassifier{FastClassifier{compiled: c}} }
}
