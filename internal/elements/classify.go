package elements

import (
	"fmt"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lang"
	"repro/internal/packet"
)

// classifierBase is shared by the three generic classification elements
// (§3): a decision tree traversed per packet by the interpreter loop of
// Figure 3a, charging the cost model per node visited.
type classifierBase struct {
	core.Base
	prog *classifier.Program
	// Matched and Dropped instrument classification outcomes.
	Matched int64
	Dropped int64
}

// Program exposes the decision tree (click-fastclassifier's harness
// reads it).
func (e *classifierBase) Program() *classifier.Program { return e.prog }

func (e *classifierBase) classify(p *packet.Packet) {
	e.Work()
	e.MemFetch(1) // first touch of the packet's Ethernet header
	port, ok, steps := e.prog.Match(p.Data())
	e.Charge(int64(steps) * costClassifierStep)
	if !ok || port >= e.NOutputs() {
		e.Dropped++
		p.Kill()
		return
	}
	e.Matched++
	e.Output(port).Push(p)
}

// Push classifies.
func (e *classifierBase) Push(port int, p *packet.Packet) { e.classify(p) }

// Classifier matches raw packet data against hex patterns
// ("12/0806 20/0001, 12/0800, -"); each pattern is an output port.
type Classifier struct{ classifierBase }

// Configure compiles the patterns.
func (e *Classifier) Configure(args []string) error {
	pr, err := classifier.BuildClassifierProgram(args)
	if err != nil {
		return fmt.Errorf("Classifier: %v", err)
	}
	pr.Optimize()
	e.prog = pr
	return nil
}

// classifierPorts computes Classifier's output count from its config.
func classifierPorts(config string) (graph.PortRange, graph.PortRange) {
	n := len(lang.SplitConfig(config))
	return graph.Exactly(1), graph.Exactly(n)
}

// IPClassifier matches IP packets against tcpdump-like expressions, one
// per output port.
type IPClassifier struct{ classifierBase }

// Configure compiles the expressions.
func (e *IPClassifier) Configure(args []string) error {
	pr, err := classifier.BuildIPClassifierProgram(args)
	if err != nil {
		return fmt.Errorf("IPClassifier: %v", err)
	}
	pr.Optimize()
	e.prog = pr
	return nil
}

// IPFilter applies allow/deny rules; allowed packets leave on output 0.
type IPFilter struct{ classifierBase }

// Configure compiles the rules.
func (e *IPFilter) Configure(args []string) error {
	pr, err := classifier.BuildIPFilterProgram(args)
	if err != nil {
		return fmt.Errorf("IPFilter: %v", err)
	}
	pr.Optimize()
	e.prog = pr
	return nil
}

// FastClassifier is the runtime body of the element classes
// click-fastclassifier generates: the same decision tree, compiled with
// inlined constants (Figure 3b). Instances are created through dynamic
// specs registered by the tool, never named directly in hand-written
// configurations.
type FastClassifier struct {
	core.Base
	compiled *classifier.Compiled
	Matched  int64
	Dropped  int64
}

// NewFastClassifier wraps a compiled program as an element factory.
func NewFastClassifier(c *classifier.Compiled) func() core.Element {
	return func() core.Element { return &FastClassifier{compiled: c} }
}

// Configure ignores arguments: the compiled tree is baked in, exactly
// as the generated C++ classes ignore their configuration strings.
func (e *FastClassifier) Configure(args []string) error { return nil }

// Push classifies with the compiled matcher.
func (e *FastClassifier) Push(port int, p *packet.Packet) {
	e.Work()
	e.MemFetch(1) // first touch of the packet's Ethernet header
	out, ok, steps := e.compiled.Match(p.Data())
	e.Charge(int64(steps) * costFastClassStep)
	if !ok || out >= e.NOutputs() {
		e.Dropped++
		p.Kill()
		return
	}
	e.Matched++
	e.Output(out).Push(p)
}
