package elements

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/simcpu"
)

// Device is the hardware interface PollDevice and ToDevice drive. The
// network simulator implements it with its Tulip model; tests implement
// it with in-memory queues.
type Device interface {
	// DeviceName returns the configuration name ("eth0").
	DeviceName() string
	// RxDequeue removes the next received packet from the RX DMA ring
	// and refills the ring slot; nil means the ring is empty.
	RxDequeue() *packet.Packet
	// TxEnqueue places a packet on the TX DMA ring; false means the
	// ring is full.
	TxEnqueue(p *packet.Packet) bool
	// TxRoom reports whether the TX DMA ring can accept a packet.
	TxRoom() bool
	// TxClean reclaims transmitted descriptors, returning the number
	// reclaimed.
	TxClean() int
}

// BatchDevice is implemented by devices whose DMA rings can be drained
// or filled several packets at a time, saving the per-call ring
// bookkeeping. PollDevice and ToDevice use it when running with a
// burst greater than one; devices without it are driven through the
// scalar ring operations in a loop.
type BatchDevice interface {
	// RxDequeueBatch fills buf with up to len(buf) received packets and
	// returns how many it delivered.
	RxDequeueBatch(buf []*packet.Packet) int
	// TxEnqueueBatch places packets on the TX ring until it fills,
	// returning how many were accepted.
	TxEnqueueBatch(ps []*packet.Packet) int
}

// rxDequeueBatch drains up to len(buf) packets from dev, batched when
// the device supports it.
func rxDequeueBatch(dev Device, buf []*packet.Packet) int {
	if bd, ok := dev.(BatchDevice); ok {
		return bd.RxDequeueBatch(buf)
	}
	n := 0
	for n < len(buf) {
		p := dev.RxDequeue()
		if p == nil {
			break
		}
		buf[n] = p
		n++
	}
	return n
}

// txEnqueueBatch enqueues packets until the ring fills, batched when
// the device supports it, and returns how many were accepted.
func txEnqueueBatch(dev Device, ps []*packet.Packet) int {
	if bd, ok := dev.(BatchDevice); ok {
		return bd.TxEnqueueBatch(ps)
	}
	n := 0
	for _, p := range ps {
		if !dev.TxEnqueue(p) {
			break
		}
		n++
	}
	return n
}

// parseDeviceArgs parses DEVNAME [, BURST] for the device elements.
func parseDeviceArgs(class string, args []string) (string, int, error) {
	if len(args) < 1 || len(args) > 2 || args[0] == "" {
		return "", 0, fmt.Errorf("%s: expects DEVNAME [, BURST]", class)
	}
	burst := 0
	if len(args) == 2 && args[1] != "" {
		n, err := strconv.Atoi(args[1])
		if err != nil || n < 1 {
			return "", 0, fmt.Errorf("%s: bad burst %q", class, args[1])
		}
		burst = n
	}
	return args[0], burst, nil
}

// EnvDevice returns the device registered under "device:<name>" in the
// router environment.
func EnvDevice(rt *core.Router, name string) (Device, error) {
	v := rt.Env("device:" + name)
	if v == nil {
		return nil, fmt.Errorf("no device %q in router environment", name)
	}
	dev, ok := v.(Device)
	if !ok {
		return nil, fmt.Errorf("environment object %q is not a Device", name)
	}
	return dev, nil
}

// PollDevice polls a device's receive DMA ring and pushes received
// packets into the graph — Click's polling driver structure, which
// replaced interrupt-driven receive to eliminate receive livelock (§3).
// By default each RunTask handles at most one packet (Click's POLLDEV
// burst of 1 in the evaluation configuration); an optional BURST
// argument, or the router's Burst build option, drains up to BURST
// packets per run and pushes them as one batch.
type PollDevice struct {
	core.Base
	devName string
	dev     Device
	burst   int
	scratch []*packet.Packet
	Recv    int64
}

// Configure accepts DEVNAME [, BURST].
func (e *PollDevice) Configure(args []string) error {
	name, burst, err := parseDeviceArgs("PollDevice", args)
	if err != nil {
		return err
	}
	e.devName, e.burst = name, burst
	return nil
}

// Initialize binds the device from the router environment.
func (e *PollDevice) Initialize(rt *core.Router) error {
	dev, err := EnvDevice(rt, e.devName)
	if err != nil {
		return err
	}
	e.dev = dev
	return nil
}

// RunTask polls the RX ring once, draining up to one burst.
func (e *PollDevice) RunTask() bool {
	if e.dev == nil {
		return false
	}
	burst := e.burst
	if burst == 0 {
		burst = e.DefaultBurst()
	}
	if burst <= 1 {
		p := e.dev.RxDequeue()
		if p == nil {
			return false
		}
		e.Recv++
		if cpu := e.CPU(); cpu != nil {
			prev := cpu.SetCategory(simcpu.CatRxDevice)
			cpu.Charge(costRxDeviceInteraction)
			cpu.MemFetch(1) // load the RX DMA descriptor
			cpu.SetCategory(simcpu.CatForward)
			e.Work()
			e.Output(0).Push(p)
			cpu.SetCategory(prev)
			return true
		}
		e.Work()
		e.Output(0).Push(p)
		return true
	}
	if cap(e.scratch) < burst {
		e.scratch = make([]*packet.Packet, burst)
	}
	n := rxDequeueBatch(e.dev, e.scratch[:burst])
	if n == 0 {
		return false
	}
	e.Recv += int64(n)
	if cpu := e.CPU(); cpu != nil {
		prev := cpu.SetCategory(simcpu.CatRxDevice)
		// DMA descriptors are still handled per packet; only the
		// inter-element transfer is amortized.
		cpu.Charge(int64(n) * costRxDeviceInteraction)
		cpu.MemFetch(n)
		cpu.SetCategory(simcpu.CatForward)
		for i := 0; i < n; i++ {
			e.Work()
		}
		e.Output(0).PushBatch(e.scratch[:n])
		cpu.SetCategory(prev)
		return true
	}
	for i := 0; i < n; i++ {
		e.Work()
	}
	e.Output(0).PushBatch(e.scratch[:n])
	return true
}

// FromDevice is an alias class for PollDevice in this driver (the
// evaluation always runs polling drivers).
type FromDevice struct{ PollDevice }

// ToDevice pulls packets from its input and enqueues them on a device's
// transmit DMA ring. Each RunTask first reclaims transmitted
// descriptors, then moves at most one packet — or up to BURST packets
// as one batched pull when a burst is configured (argument or router
// Burst build option).
type ToDevice struct {
	core.Base
	devName string
	dev     Device
	burst   int
	scratch []*packet.Packet
	Sent    int64
	// Rejected counts pulls refused because the TX ring was full —
	// the §8.4 instrumentation showing ToDevice "chose not to pull".
	Rejected int64
}

// Configure accepts DEVNAME [, BURST].
func (e *ToDevice) Configure(args []string) error {
	name, burst, err := parseDeviceArgs("ToDevice", args)
	if err != nil {
		return err
	}
	e.devName, e.burst = name, burst
	return nil
}

// Initialize binds the device from the router environment.
func (e *ToDevice) Initialize(rt *core.Router) error {
	dev, err := EnvDevice(rt, e.devName)
	if err != nil {
		return err
	}
	e.dev = dev
	return nil
}

// RunTask cleans the TX ring and sends up to one burst of packets.
func (e *ToDevice) RunTask() bool {
	if e.dev == nil {
		return false
	}
	burst := e.burst
	if burst == 0 {
		burst = e.DefaultBurst()
	}
	cleaned := e.dev.TxClean()
	// Refuse to pull when the TX DMA queue is full; the packet stays in
	// the upstream Queue (this idleness is what §8.4 instruments).
	if !e.dev.TxRoom() {
		e.Rejected++
		return cleaned > 0
	}
	var prev simcpu.Category
	var snap simcpu.CatSnapshot
	cpu := e.CPU()
	if cpu != nil {
		prev = cpu.SetCategory(simcpu.CatForward)
		snap = cpu.CategorySnapshot()
	}
	if burst <= 1 {
		p := e.Input(0).Pull()
		if p == nil {
			if cpu != nil {
				// An empty pull is scheduler idling, not per-packet path
				// cost; keep the Figure 8 categories clean (the paper's
				// counters wrap actual packet processing).
				cpu.ReclassifyAsOther(snap)
				cpu.SetCategory(prev)
			}
			return cleaned > 0
		}
		e.Work()
		if cpu != nil {
			cpu.SetCategory(simcpu.CatTxDevice)
			cpu.Charge(costTxDeviceInteraction)
			cpu.MemFetch(1) // reclaim the sent TX descriptor
			cpu.SetCategory(prev)
		}
		plen := int64(p.Len())
		if e.dev.TxEnqueue(p) {
			e.Sent++
			e.CountDelivered(1, plen)
		} else {
			e.Drop(p)
		}
		return true
	}
	if cap(e.scratch) < burst {
		e.scratch = make([]*packet.Packet, burst)
	}
	n := e.Input(0).PullBatch(e.scratch[:burst])
	if n == 0 {
		if cpu != nil {
			cpu.ReclassifyAsOther(snap)
			cpu.SetCategory(prev)
		}
		return cleaned > 0
	}
	for i := 0; i < n; i++ {
		e.Work()
	}
	if cpu != nil {
		cpu.SetCategory(simcpu.CatTxDevice)
		// TX descriptors are still per packet; only the pull dispatch
		// was amortized.
		cpu.Charge(int64(n) * costTxDeviceInteraction)
		cpu.MemFetch(n)
		cpu.SetCategory(prev)
	}
	var bytes int64
	for i := 0; i < n; i++ {
		bytes += int64(e.scratch[i].Len())
	}
	sent := txEnqueueBatch(e.dev, e.scratch[:n])
	e.Sent += int64(sent)
	for i := sent; i < n; i++ {
		bytes -= int64(e.scratch[i].Len())
		e.Drop(e.scratch[i])
	}
	e.CountDelivered(sent, bytes)
	return true
}
