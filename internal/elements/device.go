package elements

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/simcpu"
)

// Device is the hardware interface PollDevice and ToDevice drive. The
// network simulator implements it with its Tulip model; tests implement
// it with in-memory queues.
type Device interface {
	// DeviceName returns the configuration name ("eth0").
	DeviceName() string
	// RxDequeue removes the next received packet from the RX DMA ring
	// and refills the ring slot; nil means the ring is empty.
	RxDequeue() *packet.Packet
	// TxEnqueue places a packet on the TX DMA ring; false means the
	// ring is full.
	TxEnqueue(p *packet.Packet) bool
	// TxRoom reports whether the TX DMA ring can accept a packet.
	TxRoom() bool
	// TxClean reclaims transmitted descriptors, returning the number
	// reclaimed.
	TxClean() int
}

// EnvDevice returns the device registered under "device:<name>" in the
// router environment.
func EnvDevice(rt *core.Router, name string) (Device, error) {
	v := rt.Env("device:" + name)
	if v == nil {
		return nil, fmt.Errorf("no device %q in router environment", name)
	}
	dev, ok := v.(Device)
	if !ok {
		return nil, fmt.Errorf("environment object %q is not a Device", name)
	}
	return dev, nil
}

// PollDevice polls a device's receive DMA ring and pushes received
// packets into the graph — Click's polling driver structure, which
// replaced interrupt-driven receive to eliminate receive livelock (§3).
// Each RunTask handles at most one packet (Click's POLLDEV burst of 1 in
// the evaluation configuration).
type PollDevice struct {
	core.Base
	devName string
	dev     Device
	Recv    int64
}

// Configure accepts the device name.
func (e *PollDevice) Configure(args []string) error {
	if len(args) != 1 || args[0] == "" {
		return fmt.Errorf("PollDevice: expects DEVNAME")
	}
	e.devName = args[0]
	return nil
}

// Initialize binds the device from the router environment.
func (e *PollDevice) Initialize(rt *core.Router) error {
	dev, err := EnvDevice(rt, e.devName)
	if err != nil {
		return err
	}
	e.dev = dev
	return nil
}

// RunTask polls the RX ring once.
func (e *PollDevice) RunTask() bool {
	if e.dev == nil {
		return false
	}
	p := e.dev.RxDequeue()
	if p == nil {
		return false
	}
	e.Recv++
	if cpu := e.CPU(); cpu != nil {
		prev := cpu.SetCategory(simcpu.CatRxDevice)
		cpu.Charge(costRxDeviceInteraction)
		cpu.MemFetch(1) // load the RX DMA descriptor
		cpu.SetCategory(simcpu.CatForward)
		e.Work()
		e.Output(0).Push(p)
		cpu.SetCategory(prev)
		return true
	}
	e.Work()
	e.Output(0).Push(p)
	return true
}

// FromDevice is an alias class for PollDevice in this driver (the
// evaluation always runs polling drivers).
type FromDevice struct{ PollDevice }

// ToDevice pulls packets from its input and enqueues them on a device's
// transmit DMA ring. Each RunTask first reclaims transmitted
// descriptors, then moves at most one packet.
type ToDevice struct {
	core.Base
	devName string
	dev     Device
	Sent    int64
	// Rejected counts pulls refused because the TX ring was full —
	// the §8.4 instrumentation showing ToDevice "chose not to pull".
	Rejected int64
}

// Configure accepts the device name.
func (e *ToDevice) Configure(args []string) error {
	if len(args) != 1 || args[0] == "" {
		return fmt.Errorf("ToDevice: expects DEVNAME")
	}
	e.devName = args[0]
	return nil
}

// Initialize binds the device from the router environment.
func (e *ToDevice) Initialize(rt *core.Router) error {
	dev, err := EnvDevice(rt, e.devName)
	if err != nil {
		return err
	}
	e.dev = dev
	return nil
}

// RunTask cleans the TX ring and sends one packet if possible.
func (e *ToDevice) RunTask() bool {
	if e.dev == nil {
		return false
	}
	cleaned := e.dev.TxClean()
	// Refuse to pull when the TX DMA queue is full; the packet stays in
	// the upstream Queue (this idleness is what §8.4 instruments).
	if !e.dev.TxRoom() {
		e.Rejected++
		return cleaned > 0
	}
	var prev simcpu.Category
	var snap simcpu.CatSnapshot
	cpu := e.CPU()
	if cpu != nil {
		prev = cpu.SetCategory(simcpu.CatForward)
		snap = cpu.CategorySnapshot()
	}
	p := e.Input(0).Pull()
	if p == nil {
		if cpu != nil {
			// An empty pull is scheduler idling, not per-packet path
			// cost; keep the Figure 8 categories clean (the paper's
			// counters wrap actual packet processing).
			cpu.ReclassifyAsOther(snap)
			cpu.SetCategory(prev)
		}
		return cleaned > 0
	}
	e.Work()
	if cpu != nil {
		cpu.SetCategory(simcpu.CatTxDevice)
		cpu.Charge(costTxDeviceInteraction)
		cpu.MemFetch(1) // reclaim the sent TX descriptor
		cpu.SetCategory(prev)
	}
	if e.dev.TxEnqueue(p) {
		e.Sent++
	} else {
		p.Kill()
	}
	return true
}
