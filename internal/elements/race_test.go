package elements

import (
	"strconv"
	"sync"
	"testing"

	"repro/internal/packet"
)

// TestQueueHandlersDuringTraffic samples the queue's read handlers
// (length, drops, highwater_length, capacity) while producers and a
// consumer hammer the ring. Run under -race it proves a control-plane
// reader (a handler poll, the telemetry dump) can watch a live parallel
// queue without tearing: the regression this guards against is the
// handlers reading the occupancy and drop counters with plain loads.
func TestQueueHandlersDuringTraffic(t *testing.T) {
	rt := buildRT(t, "i :: Idle -> q :: Queue(64) -> x :: Idle;")
	q := rt.Find("q").(*Queue)
	q.EnableSync()
	q.Stats().EnableShared()
	const producers, per = 2, 400
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Capacity 64 under 800 offered packets forces drops, so
				// the drops/highwater paths are exercised too.
				q.Push(0, udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2)))
			}
		}()
	}
	consumed := make(chan int)
	go func() {
		n := 0
		for {
			p := q.Pull(0)
			if p == nil {
				if q.Len() == 0 && n > 0 {
					break
				}
				continue
			}
			p.Kill()
			n++
		}
		consumed <- n
	}()
	for i := 0; i < 200; i++ {
		for _, h := range []string{"q.length", "q.drops", "q.highwater_length", "q.capacity"} {
			v, err := rt.ReadHandler(h)
			if err != nil {
				t.Fatalf("ReadHandler(%s): %v", h, err)
			}
			if _, err := strconv.Atoi(v); err != nil {
				t.Fatalf("ReadHandler(%s) = %q, not a number", h, v)
			}
		}
	}
	wg.Wait()
	n := <-consumed
	// Drain whatever the consumer's early exit left behind.
	for p := q.Pull(0); p != nil; p = q.Pull(0) {
		p.Kill()
		n++
	}
	drops, _ := rt.ReadHandler("q.drops")
	d, _ := strconv.Atoi(drops)
	if n+d != producers*per {
		t.Errorf("consumed %d + dropped %d != offered %d", n, d, producers*per)
	}
}
