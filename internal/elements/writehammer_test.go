package elements

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/core"
)

// TestWriteHandlersDuringParallelTraffic hammers state-restructuring
// write handlers (Queue capacity, RED thresholds) from a second
// goroutine while the free-running epoch scheduler forwards traffic on
// two workers. The writes go through Scheduler.WriteHandler, which
// rendezvouses the workers and applies the write at a quiescent point:
// under -race this proves a control-plane write cannot land mid-epoch
// and tear the ring swap inside Queue.SetCapacity or the RED threshold
// fields, the conservation check proves no packet is lost or
// double-counted across capacity swaps, and the guard check proves the
// writes did not skip their GuardConfig invalidation bumps.
func TestWriteHandlersDuringParallelTraffic(t *testing.T) {
	const offered = 60000
	cfg := fmt.Sprintf(
		"src :: InfiniteSource(%d) -> red :: RED(50, 200, 1000) -> q :: Queue(128) -> u :: Unqueue -> d :: Discard;",
		offered)
	rt := buildRT(t, cfg)
	s, err := core.NewScheduler(rt, 2)
	if err != nil {
		t.Fatal(err)
	}

	gen0 := rt.Guards().Load(core.GuardConfig)
	const hammerWrites = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		caps := []string{"32", "64", "512", "128"}
		for i := 0; i < hammerWrites; i++ {
			if err := s.WriteHandler("q.capacity", caps[i%len(caps)]); err != nil {
				t.Errorf("q.capacity: %v", err)
				return
			}
			if err := s.WriteHandler("red.max_thresh", strconv.Itoa(150+i%50)); err != nil {
				t.Errorf("red.max_thresh: %v", err)
				return
			}
			if err := s.WriteHandler("red.min_thresh", strconv.Itoa(10+i%40)); err != nil {
				t.Errorf("red.min_thresh: %v", err)
				return
			}
			// Interleave reads: a consistent snapshot must come back.
			if v, err := s.ReadHandler("q.length"); err != nil {
				t.Errorf("q.length: %v", err)
				return
			} else if _, err := strconv.Atoi(v); err != nil {
				t.Errorf("q.length = %q, not a number", v)
				return
			}
		}
	}()

	s.RunUntilIdle(1 << 20)
	<-done

	read := func(path string) int64 {
		v, err := rt.ReadHandler(path)
		if err != nil {
			t.Fatalf("ReadHandler(%s): %v", path, err)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("ReadHandler(%s) = %q", path, v)
		}
		return n
	}
	emitted := read("src.packets_out")
	delivered := read("d.packets_in")
	qDrops := read("q.drops")
	redDrops := read("red.drops")
	if emitted != offered {
		t.Errorf("source emitted %d, want %d", emitted, offered)
	}
	if delivered+qDrops+redDrops != emitted {
		t.Errorf("conservation: delivered %d + qdrops %d + reddrops %d != emitted %d",
			delivered, qDrops, redDrops, emitted)
	}
	if delivered == 0 {
		t.Error("nothing was delivered")
	}
	// Every capacity/threshold write must have bumped GuardConfig, so
	// fast-path snapshots (FlowCache) cannot keep serving stale state.
	if gen1 := rt.Guards().Load(core.GuardConfig); gen1-gen0 < 3*hammerWrites {
		t.Errorf("GuardConfig advanced %d, want >= %d", gen1-gen0, 3*hammerWrites)
	}
}
