package elements

import (
	"runtime"
	"sync/atomic"

	"repro/internal/packet"
)

// pktRing is the lock-free bounded FIFO behind Queue: a power-of-two
// slot ring in the style of Vyukov's bounded MPMC queue, with per-slot
// sequence numbers for publication and cache-line padding around the
// producer and consumer cursors so pushers and pullers on different
// cores do not false-share. Each side has a single-threaded fast path
// (plain cursor store, no CAS) and a CAS path; the scheduler's graph
// analysis picks per side, so a queue proven to have one pushing task
// and one pulling task runs fully CAS-free (SPSC) while still being
// safe across workers.
//
// Capacity semantics match the old mutexed ring exactly: the ring
// holds at most `logical` packets (tail drop beyond that), even though
// the slot array is rounded up to a power of two.
type ringSlot struct {
	seq atomic.Uint64
	p   *packet.Packet
	_   [48]byte // pad to a 64-byte cache line
}

type pktRing struct {
	mask    uint64
	logical uint64 // tail-drop threshold (<= len(slots))
	slots   []ringSlot
	_       [64]byte
	head    atomic.Uint64 // next slot to consume
	_       [56]byte
	tail    atomic.Uint64 // next slot to fill
	_       [56]byte
}

// newPktRing returns a ring holding at most capacity packets.
func newPktRing(capacity int) *pktRing {
	if capacity < 1 {
		capacity = 1
	}
	size := uint64(1)
	for size < uint64(capacity) {
		size <<= 1
	}
	r := &pktRing{mask: size - 1, logical: uint64(capacity), slots: make([]ringSlot, size)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// len returns the current occupancy (approximate under concurrency).
func (r *pktRing) len() int {
	t, h := r.tail.Load(), r.head.Load()
	if t <= h {
		return 0
	}
	n := t - h
	if n > r.logical {
		n = r.logical
	}
	return int(n)
}

// push adds p at the tail, or reports false when the ring is at
// logical capacity (the caller tail-drops). mp selects the
// multi-producer CAS path; with mp false the caller guarantees no
// concurrent pusher (though a task migrating between workers is fine —
// publication goes through the slot sequence atomics).
func (r *pktRing) push(p *packet.Packet, mp bool) bool {
	if !mp {
		tail := r.tail.Load()
		if tail-r.head.Load() >= r.logical {
			return false
		}
		s := &r.slots[tail&r.mask]
		// The capacity check proves the consumer has claimed this slot's
		// previous occupant; spin out the narrow window where it has
		// advanced head but not yet marked the slot free.
		for s.seq.Load() != tail {
			runtime.Gosched()
		}
		s.p = p
		s.seq.Store(tail + 1) // publish to consumers
		r.tail.Store(tail + 1)
		return true
	}
	for {
		tail := r.tail.Load()
		if tail-r.head.Load() >= r.logical {
			return false
		}
		s := &r.slots[tail&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == tail:
			if r.tail.CompareAndSwap(tail, tail+1) {
				s.p = p
				s.seq.Store(tail + 1)
				return true
			}
		case seq < tail:
			// Consumer mid-free; it will store the new sequence shortly.
			runtime.Gosched()
		}
		// seq > tail: another producer won the slot; reload.
	}
}

// pop removes and returns the packet at the head, or nil when the ring
// is empty (including the transient state where a producer has claimed
// a slot but not yet published it). mc selects the multi-consumer CAS
// path.
func (r *pktRing) pop(mc bool) *packet.Packet {
	size := uint64(len(r.slots))
	if !mc {
		head := r.head.Load()
		s := &r.slots[head&r.mask]
		if s.seq.Load() != head+1 {
			return nil
		}
		p := s.p
		s.p = nil
		s.seq.Store(head + size) // free the slot for producers
		r.head.Store(head + 1)
		return p
	}
	for {
		head := r.head.Load()
		s := &r.slots[head&r.mask]
		seq := s.seq.Load()
		if seq < head+1 {
			return nil
		}
		if seq == head+1 {
			if r.head.CompareAndSwap(head, head+1) {
				p := s.p
				s.p = nil
				s.seq.Store(head + size)
				return p
			}
			continue
		}
		// seq > head+1: another consumer advanced past us; reload.
	}
}
