package elements

import (
	"repro/internal/core"
	"repro/internal/packet"
)

// FlowSteer shards traffic across its outputs by a hash of the IP
// 5-tuple (src, dst, protocol, and the transport ports when present),
// the software analogue of NIC receive-side scaling. All packets of one
// flow leave on one output, so when each output feeds a distinct
// Queue/task chain the parallel scheduler can pin every chain to one
// worker (see core.FlowSteerer) and the downstream elements keep
// worker-local state with no synchronization. Non-IP packets and
// fragments hash on the network pair alone; a packet with no parseable
// IP header goes to output 0.
type FlowSteer struct {
	core.Base
	scratch [][]*packet.Packet
}

// FlowSteering marks the element for the scheduler's flow-affinity
// partitioner. The marker is a Go-type property, so the specialized
// clones produced by click-devirtualize and click-fastclassifier
// (FlowSteer_dv1 and friends) keep it through their class renames.
func (e *FlowSteer) FlowSteering() {}

// hash returns the output for p: a Fowler–Noll–Vo hash of the 5-tuple
// reduced modulo the output count.
func (e *FlowSteer) hash(p *packet.Packet) int {
	n := e.NOutputs()
	if n == 1 {
		return 0
	}
	h, ok := p.IPHeader()
	if !ok {
		return 0
	}
	const (
		fnvOffset = 2166136261
		fnvPrime  = 16777619
	)
	sum := uint32(fnvOffset)
	mix := func(b byte) { sum = (sum ^ uint32(b)) * fnvPrime }
	src, dst := h.Src(), h.Dst()
	for i := 0; i < 4; i++ {
		mix(src[i])
		mix(dst[i])
	}
	mix(byte(h.Proto()))
	// Transport ports participate only for unfragmented TCP/UDP: later
	// fragments carry no transport header, and mixing ports into the
	// first fragment only would split one flow across outputs.
	if (h.Proto() == packet.IPProtoTCP || h.Proto() == packet.IPProtoUDP) &&
		h.FragOff()&0x3fff == 0 {
		if tp := h[h.HeaderLen():]; len(tp) >= 4 {
			mix(tp[0])
			mix(tp[1])
			mix(tp[2])
			mix(tp[3])
		}
	}
	return int(sum % uint32(n))
}

// Push routes the packet to its flow's output.
func (e *FlowSteer) Push(port int, p *packet.Packet) {
	e.Work()
	e.Output(e.hash(p)).Push(p)
}

// PushBatch partitions the batch by flow hash and forwards one batch
// per touched output, preserving arrival order within each output.
func (e *FlowSteer) PushBatch(port int, ps []*packet.Packet) {
	n := e.NOutputs()
	if e.scratch == nil {
		e.scratch = make([][]*packet.Packet, n)
	}
	for _, p := range ps {
		e.Work()
		o := e.hash(p)
		e.scratch[o] = append(e.scratch[o], p)
	}
	for o := 0; o < n; o++ {
		if len(e.scratch[o]) > 0 {
			e.Output(o).PushBatch(e.scratch[o])
			e.scratch[o] = e.scratch[o][:0]
		}
	}
}

var _ core.FlowSteerer = (*FlowSteer)(nil)
