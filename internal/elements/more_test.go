package elements

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
)

// Pull-side coverage for the agnostic pass-through elements.

func TestAgnosticElementsInPullContext(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> q :: Queue(8)
  -> n :: Null
  -> c :: Counter
  -> p :: Paint(7)
  -> a :: Align(4, 0)
  -> u :: Unqueue
  -> out :: TestSink;
`)
	q := rt.Find("q").(*Queue)
	pkt := packet.Make(13, 20, 0) // misaligned on purpose
	q.Push(0, pkt)
	rt.RunUntilIdle(50)
	out := rt.Find("out").(*sink)
	if len(out.got) != 1 {
		t.Fatalf("pull chain delivered %d packets", len(out.got))
	}
	got := out.got[0]
	if got.Anno.Paint != 7 {
		t.Error("Paint.Pull did not paint")
	}
	if got.AlignOffset(4) != 0 {
		t.Error("Align.Pull did not realign")
	}
	if rt.Find("c").(*Counter).Packets != 1 {
		t.Error("Counter.Pull did not count")
	}
	// Empty pulls return nil through the whole chain.
	if rt.Find("u").(*Unqueue).RunTask() {
		t.Error("Unqueue did work on an empty chain")
	}
}

func TestUnstrip(t *testing.T) {
	rt := buildWith(t, `i :: Idle -> s :: Strip(14) -> u :: Unstrip(14) -> out :: TestSink;`)
	p := udpPacket(packet.MakeIP4(1, 2, 3, 4), packet.MakeIP4(5, 6, 7, 8))
	want := p.Len()
	rt.Find("s").(*Strip).Push(0, p)
	out := rt.Find("out").(*sink)
	if len(out.got) != 1 || out.got[0].Len() != want {
		t.Fatalf("unstrip result %d bytes, want %d", out.got[0].Len(), want)
	}
	eh, ok := out.got[0].EtherHeader()
	if !ok || eh.Type() != packet.EtherTypeIP {
		t.Error("unstripped header corrupted")
	}
}

func TestPaintTee(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> pt :: PaintTee(2);
pt [0] -> fwd :: TestSink;
pt [1] -> cloned :: TestSink;
`)
	pt := rt.Find("pt").(*PaintTee)
	p := udpPacket(packet.IP4{1}, packet.IP4{2})
	p.Anno.Paint = 2
	pt.Push(0, p)
	if len(rt.Find("fwd").(*sink).got) != 1 || len(rt.Find("cloned").(*sink).got) != 1 {
		t.Error("PaintTee did not clone matching packet")
	}
}

func TestIPClassifierElement(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> c :: IPClassifier(udp && dst port 53, tcp, -);
c [0] -> dns :: TestSink;
c [1] -> tcp :: TestSink;
c [2] -> rest :: TestSink;
`)
	c := rt.Find("c").(*IPClassifier)
	if c.Program() == nil {
		t.Fatal("no program")
	}
	mk := func(proto int, dport uint16) *packet.Packet {
		p := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
		p.Pull(14)
		h, _ := p.IPHeader()
		h.SetProto(proto)
		h.UpdateChecksum()
		if u, ok := p.UDPHeader(); ok {
			u.SetDstPort(dport)
		}
		return p
	}
	c.Push(0, mk(packet.IPProtoUDP, 53))
	c.Push(0, mk(packet.IPProtoTCP, 80))
	c.Push(0, mk(packet.IPProtoICMP, 0))
	for name, want := range map[string]int{"dns": 1, "tcp": 1, "rest": 1} {
		if got := len(rt.Find(name).(*sink).got); got != want {
			t.Errorf("%s got %d packets, want %d", name, got, want)
		}
	}
	if c.Matched != 3 {
		t.Errorf("matched = %d", c.Matched)
	}
}

func TestIPFilterElement(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> f :: IPFilter(allow udp && dst port 53, 1 tcp, deny all);
f [0] -> dns :: TestSink;
f [1] -> tcp :: TestSink;
`)
	f := rt.Find("f").(*IPFilter)
	mk := func(proto int) *packet.Packet {
		p := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
		p.Pull(14)
		h, _ := p.IPHeader()
		h.SetProto(proto)
		h.UpdateChecksum()
		if u, ok := p.UDPHeader(); ok {
			u.SetDstPort(53)
		}
		return p
	}
	f.Push(0, mk(packet.IPProtoUDP))  // -> dns
	f.Push(0, mk(packet.IPProtoTCP))  // -> tcp
	f.Push(0, mk(packet.IPProtoICMP)) // -> dropped
	if len(rt.Find("dns").(*sink).got) != 1 || len(rt.Find("tcp").(*sink).got) != 1 {
		t.Error("numbered IPFilter ports misrouted")
	}
	if f.Dropped != 1 {
		t.Errorf("dropped = %d", f.Dropped)
	}
}

func TestClassifierBadConfigRejected(t *testing.T) {
	for _, cfg := range []string{
		"c :: Classifier(zz/00) -> d :: Discard; i :: Idle -> c;",
		"c :: IPClassifier(bogus primitive) -> d :: Discard; i :: Idle -> c;",
		"c :: IPFilter(frobnicate tcp) -> d :: Discard; i :: Idle -> c;",
	} {
		if _, err := core.BuildFromText(cfg, "t", testRegistry(), core.BuildOptions{}); err == nil {
			t.Errorf("accepted %q", cfg)
		}
	}
}

func TestEtherEncapARP(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> [0] e :: EtherEncapARP(00:01:02:03:04:05, 0a:0b:0c:0d:0e:0f) -> out :: TestSink;
j :: Idle -> [1] e;
`)
	e := rt.Find("e").(*EtherEncapARP)
	p := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
	p.Pull(14)
	e.Push(0, p)
	out := rt.Find("out").(*sink)
	if len(out.got) != 1 {
		t.Fatal("packet lost")
	}
	eh, _ := out.got[0].EtherHeader()
	if eh.Dst() != (packet.EtherAddr{0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f}) {
		t.Error("static destination not applied")
	}
	// Stray ARP responses on port 1 are swallowed.
	e.Push(1, udpPacket(packet.IP4{1}, packet.IP4{2}))
	if len(out.got) != 1 {
		t.Error("port-1 packet leaked")
	}
}

func TestIPOutputComboFragments(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> oc :: IPOutputCombo(1, 10.0.0.1, 576);
oc [0] -> out :: TestSink;
oc [1] -> r1 :: TestSink;
oc [2] -> r2 :: TestSink;
oc [3] -> r3 :: TestSink;
oc [4] -> r4 :: TestSink;
`)
	oc := rt.Find("oc").(*IPOutputCombo)
	big := packet.BuildUDP4(packet.EtherAddr{}, packet.EtherAddr{},
		packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 1, 2, make([]byte, 1200))
	big.Pull(14)
	big.Anno.NetworkOffset = 0
	oc.Push(0, big)
	out := rt.Find("out").(*sink)
	if len(out.got) < 3 {
		t.Fatalf("combo produced %d fragments, want >= 3", len(out.got))
	}
	total := 0
	for i, fr := range out.got {
		h, ok := fr.IPHeader()
		if !ok || !h.ChecksumOK() {
			t.Fatalf("fragment %d bad", i)
		}
		total += fr.Len() - h.HeaderLen()
		if fr.Len() > 576 {
			t.Errorf("fragment %d over MTU", i)
		}
	}
	if total != 1208 {
		t.Errorf("fragment payload total = %d, want 1208", total)
	}
	// TTL must have been decremented before fragmentation.
	h, _ := out.got[0].IPHeader()
	if h.TTL() != 63 {
		t.Errorf("fragment TTL = %d", h.TTL())
	}
}

func TestIPInputComboBadConfig(t *testing.T) {
	for _, cfg := range []string{
		"IPInputCombo()", "IPInputCombo(300, x)", "IPInputCombo(1, , -4)",
		"IPOutputCombo(1, 10.0.0.1)", "IPOutputCombo(1, bogus, 1500)", "IPOutputCombo(1, 10.0.0.1, 10)",
		"EtherEncapARP(xx, yy)",
	} {
		_, err := core.BuildFromText("i :: Idle -> x :: "+cfg+" -> d :: Discard;", "t", testRegistry(), core.BuildOptions{})
		if err == nil {
			t.Errorf("accepted %s", cfg)
		}
	}
}

func TestIdleSwallowsAndProducesNothing(t *testing.T) {
	rt := buildWith(t, `i :: Idle -> d :: Discard;`)
	idle := rt.Find("i").(*Idle)
	idle.Push(0, packet.New([]byte{1})) // must not panic or forward
	if rt.Find("d").(*Discard).Count != 0 {
		t.Error("Idle forwarded a packet")
	}
	if idle.Pull(0) != nil {
		t.Error("Idle produced a packet")
	}
}

func TestGenericDeviceBindingErrors(t *testing.T) {
	// Wrong type under the device key.
	env := map[string]interface{}{"device:eth0": 42}
	_, err := core.BuildFromText("fd :: PollDevice(eth0) -> d :: Discard;", "t",
		testRegistry(), core.BuildOptions{Env: env})
	if err == nil || !strings.Contains(err.Error(), "not a Device") {
		t.Errorf("bad device type accepted: %v", err)
	}
	for _, cfg := range []string{"PollDevice()", "ToDevice()"} {
		_, err := core.BuildFromText("x :: "+cfg+";", "t", testRegistry(), core.BuildOptions{})
		if err == nil {
			t.Errorf("accepted %s", cfg)
		}
	}
}

func TestIPGWOptionsRecordRoute(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> g :: IPGWOptions(10.0.0.1);
g [0] -> out :: TestSink;
g [1] -> bad :: TestSink;
`)
	g := rt.Find("g").(*IPGWOptions)
	// Build a packet with a record-route option: header length 28.
	p := packet.Make(packet.DefaultHeadroom, 28+8, 0)
	d := p.Data()
	h := packet.IP4Header(d)
	h.SetVersionIHL(4, 28)
	h.SetTotalLen(36)
	h.SetTTL(9)
	h.SetProto(packet.IPProtoUDP)
	h.SetSrc(packet.MakeIP4(1, 1, 1, 1))
	h.SetDst(packet.MakeIP4(2, 2, 2, 2))
	d[20] = 7 // record route
	d[21] = 7 // option length: 3 header + 4 slot
	d[22] = 4 // pointer: first slot
	h.UpdateChecksum()
	p.Anno.NetworkOffset = 0
	g.Push(0, p)
	out := rt.Find("out").(*sink)
	if len(out.got) != 1 {
		t.Fatal("option packet not forwarded")
	}
	od := out.got[0].Data()
	if od[23] != 10 || od[24] != 0 || od[25] != 0 || od[26] != 1 {
		t.Errorf("record-route slot = %v, want 10.0.0.1", od[23:27])
	}
	if od[22] != 8 {
		t.Errorf("pointer = %d, want 8", od[22])
	}
	oh, _ := out.got[0].IPHeader()
	if !oh.ChecksumOK() {
		t.Error("checksum not updated after option processing")
	}

	// Malformed option -> output 1.
	p2 := packet.Make(packet.DefaultHeadroom, 28, 0)
	d2 := p2.Data()
	h2 := packet.IP4Header(d2)
	h2.SetVersionIHL(4, 28)
	h2.SetTotalLen(28)
	h2.SetTTL(9)
	h2.SetSrc(packet.MakeIP4(1, 1, 1, 1))
	h2.SetDst(packet.MakeIP4(2, 2, 2, 2))
	d2[20] = 7
	d2[21] = 99 // length overruns the header
	h2.UpdateChecksum()
	p2.Anno.NetworkOffset = 0
	g.Push(0, p2)
	if len(rt.Find("bad").(*sink).got) != 1 {
		t.Error("malformed option not diverted")
	}
}

func TestSwitchHandlerChangesRoute(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> sw :: Switch(0);
sw [0] -> a :: TestSink;
sw [1] -> b :: TestSink;
`)
	sw := rt.Find("sw").(*Switch)
	sw.Push(0, packet.New([]byte{1}))
	if err := rt.WriteHandler("sw.switch", "1"); err != nil {
		t.Fatal(err)
	}
	sw.Push(0, packet.New([]byte{2}))
	if err := rt.WriteHandler("sw.switch", "-1"); err != nil {
		t.Fatal(err)
	}
	sw.Push(0, packet.New([]byte{3})) // dropped
	if got := len(rt.Find("a").(*sink).got); got != 1 {
		t.Errorf("a got %d", got)
	}
	if got := len(rt.Find("b").(*sink).got); got != 1 {
		t.Errorf("b got %d", got)
	}
	if v, _ := rt.ReadHandler("sw.switch"); v != "-1" {
		t.Errorf("switch handler reads %q", v)
	}
	if err := rt.WriteHandler("sw.switch", "bogus"); err == nil {
		t.Error("bad port accepted via handler")
	}
}

func TestPaintSwitch(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> ps :: PaintSwitch;
ps [0] -> p0 :: TestSink;
ps [1] -> p1 :: TestSink;
`)
	ps := rt.Find("ps").(*PaintSwitch)
	for _, c := range []byte{0, 1, 7} {
		p := packet.New([]byte{1})
		p.Anno.Paint = c
		ps.Push(0, p)
	}
	if len(rt.Find("p0").(*sink).got) != 1 || len(rt.Find("p1").(*sink).got) != 1 {
		t.Error("paint routing wrong")
	}
}

func TestICMPPingResponder(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> pr :: ICMPPingResponder;
pr [0] -> reply :: TestSink;
pr [1] -> other :: TestSink;
`)
	pr := rt.Find("pr").(*ICMPPingResponder)

	// An echo request to the router.
	ping := packet.Make(packet.DefaultHeadroom, 28+8, 0)
	d := ping.Data()
	h := packet.IP4Header(d)
	h.SetVersionIHL(4, 20)
	h.SetTotalLen(36)
	h.SetTTL(64)
	h.SetProto(packet.IPProtoICMP)
	h.SetSrc(packet.MakeIP4(10, 0, 0, 2))
	h.SetDst(packet.MakeIP4(10, 0, 0, 1))
	h.UpdateChecksum()
	icmp := d[20:]
	icmp[0] = packet.ICMPEchoRequest
	icmp[4], icmp[5] = 0x12, 0x34 // id
	cs := packet.InternetChecksum(icmp)
	icmp[2], icmp[3] = byte(cs>>8), byte(cs)
	ping.Anno.NetworkOffset = 0

	pr.Push(0, ping)
	out := rt.Find("reply").(*sink)
	if len(out.got) != 1 {
		t.Fatal("no reply")
	}
	rp := out.got[0]
	rh, _ := rp.IPHeader()
	if rh.Src() != packet.MakeIP4(10, 0, 0, 1) || rh.Dst() != packet.MakeIP4(10, 0, 0, 2) {
		t.Error("reply addresses not swapped")
	}
	if !rh.ChecksumOK() {
		t.Error("reply IP checksum bad")
	}
	ricmp := rp.Data()[20:]
	if ricmp[0] != packet.ICMPEchoReply {
		t.Errorf("reply type = %d", ricmp[0])
	}
	if packet.InternetChecksum(ricmp) != 0 {
		t.Error("reply ICMP checksum bad")
	}
	if ricmp[4] != 0x12 || ricmp[5] != 0x34 {
		t.Error("echo id not preserved")
	}

	// Non-echo ICMP passes through.
	p2 := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
	p2.Pull(14)
	p2.Anno.NetworkOffset = 0
	pr.Push(0, p2)
	if len(rt.Find("other").(*sink).got) != 1 {
		t.Error("non-echo packet not passed through")
	}
}
