package elements

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/packet"
)

// Align forces packet data to a known alignment (offset modulo modulus)
// by copying when necessary (§7.1). click-align inserts these where an
// element's required alignment conflicts with what upstream produces.
type Align struct {
	core.Base
	modulus int
	offset  int
	// Copies counts packets that actually needed realignment.
	Copies int64
}

// Configure accepts MODULUS OFFSET.
func (e *Align) Configure(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("Align: expects MODULUS OFFSET")
	}
	m, err := strconv.Atoi(args[0])
	if err != nil || m <= 0 || (m&(m-1)) != 0 {
		return fmt.Errorf("Align: bad modulus %q (want a power of two)", args[0])
	}
	off, err := strconv.Atoi(args[1])
	if err != nil || off < 0 || off >= m {
		return fmt.Errorf("Align: bad offset %q", args[1])
	}
	e.modulus, e.offset = m, off
	return nil
}

func (e *Align) align(p *packet.Packet) {
	if p.AlignOffset(e.modulus) != e.offset {
		atomic.AddInt64(&e.Copies, 1)
		e.Charge(costAlign)
		p.Realign(e.modulus, e.offset)
	}
}

// Push realigns and forwards.
func (e *Align) Push(port int, p *packet.Packet) {
	e.Work()
	e.align(p)
	e.Output(0).Push(p)
}

// Pull pulls and realigns.
func (e *Align) Pull(port int) *packet.Packet {
	e.Work()
	p := e.Input(0).Pull()
	if p != nil {
		e.align(p)
	}
	return p
}

// AlignmentInfo records, for the runtime's benefit, the packet data
// alignments click-align proved each element will observe. Elements
// could consult it to choose word-load strategies; this driver stores
// it for inspection (it is load-bearing for the tool-chain round trip:
// click-align's output must parse and build).
type AlignmentInfo struct {
	core.Base
	// Entries maps element names to "modulus offset" claims.
	Entries map[string]string
}

// Configure records "elementname modulus offset" arguments.
func (e *AlignmentInfo) Configure(args []string) error {
	e.Entries = map[string]string{}
	for _, a := range args {
		var name string
		var mod, off int
		if _, err := fmt.Sscanf(a, "%s %d %d", &name, &mod, &off); err != nil {
			return fmt.Errorf("AlignmentInfo: bad entry %q", a)
		}
		e.Entries[name] = fmt.Sprintf("%d %d", mod, off)
	}
	return nil
}
