package elements

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/packet"
)

// Discard drops every packet it receives.
type Discard struct {
	core.Base
	Count int64
}

// Push drops the packet.
func (e *Discard) Push(port int, p *packet.Packet) {
	e.Work()
	atomic.AddInt64(&e.Count, 1)
	e.Drop(p)
}

// PushBatch drops the whole batch.
func (e *Discard) PushBatch(port int, ps []*packet.Packet) {
	atomic.AddInt64(&e.Count, int64(len(ps)))
	for _, p := range ps {
		e.Work()
		e.Drop(p)
	}
}

// Idle never produces packets and silently swallows any it is given; it
// is the canonical way to cap unused ports.
type Idle struct{ core.Base }

// Push discards.
func (e *Idle) Push(port int, p *packet.Packet) { e.Drop(p) }

// Pull produces nothing.
func (e *Idle) Pull(port int) *packet.Packet { return nil }

// Null passes packets through unchanged (one input, one output).
type Null struct{ core.Base }

// Push forwards.
func (e *Null) Push(port int, p *packet.Packet) {
	e.Work()
	e.Output(0).Push(p)
}

// PushBatch forwards the batch.
func (e *Null) PushBatch(port int, ps []*packet.Packet) {
	for range ps {
		e.Work()
	}
	e.Output(0).PushBatch(ps)
}

// Pull forwards.
func (e *Null) Pull(port int) *packet.Packet {
	e.Work()
	return e.Input(0).Pull()
}

// PullBatch forwards a batch from upstream.
func (e *Null) PullBatch(port int, buf []*packet.Packet) int {
	n := e.Input(0).PullBatch(buf)
	for i := 0; i < n; i++ {
		e.Work()
	}
	return n
}

// Counter counts passing packets and bytes. Counts are updated
// atomically: a Counter may sit downstream of several scheduler
// workers' task chains at once.
type Counter struct {
	core.Base
	Packets int64
	Bytes   int64
}

// Push counts and forwards.
func (e *Counter) Push(port int, p *packet.Packet) {
	e.Work()
	atomic.AddInt64(&e.Packets, 1)
	atomic.AddInt64(&e.Bytes, int64(p.Len()))
	e.Output(0).Push(p)
}

// PushBatch counts the batch in two atomic updates and forwards it.
func (e *Counter) PushBatch(port int, ps []*packet.Packet) {
	var bytes int64
	for _, p := range ps {
		e.Work()
		bytes += int64(p.Len())
	}
	atomic.AddInt64(&e.Packets, int64(len(ps)))
	atomic.AddInt64(&e.Bytes, bytes)
	e.Output(0).PushBatch(ps)
}

// Pull forwards and counts.
func (e *Counter) Pull(port int) *packet.Packet {
	e.Work()
	p := e.Input(0).Pull()
	if p != nil {
		atomic.AddInt64(&e.Packets, 1)
		atomic.AddInt64(&e.Bytes, int64(p.Len()))
	}
	return p
}

// PullBatch forwards a batch from upstream, counting it.
func (e *Counter) PullBatch(port int, buf []*packet.Packet) int {
	n := e.Input(0).PullBatch(buf)
	var bytes int64
	for i := 0; i < n; i++ {
		e.Work()
		bytes += int64(buf[i].Len())
	}
	if n > 0 {
		atomic.AddInt64(&e.Packets, int64(n))
		atomic.AddInt64(&e.Bytes, bytes)
	}
	return n
}

// Queue is the standard FIFO packet queue: push input, pull output,
// tail drop when full. A Queue is the hand-off point between scheduler
// tasks, so its ring is lock-free (pktRing): producers and consumers
// share nothing but atomic cursors. EnableSync arms the conservative
// multi-producer/multi-consumer CAS paths; the parallel scheduler's
// graph analysis then calls HintConcurrency to relax either side back
// to the CAS-free single-producer/single-consumer fast path when the
// task structure proves it safe.
type Queue struct {
	core.Base
	ring   atomic.Pointer[pktRing]
	mpPush atomic.Bool // >1 pushing task: use the CAS producer path
	mcPull atomic.Bool // >1 pulling task: use the CAS consumer path
	Drops  int64
	// Enqueued counts accepted packets; read and written atomically.
	Enqueued int64
	// HighWater tracks the maximum occupancy observed; read and written
	// atomically (the "highwater_length" handler samples it live).
	HighWater int64

	// structMu serializes structural operations (SetCapacity,
	// SaveState/RestoreState) against each other. They run at quiescent
	// points — handler writes and hot-swap transplant — not against
	// concurrent dataplane traffic.
	structMu sync.Mutex
}

// EnableSync arms the multi-producer/multi-consumer ring paths for
// multi-worker execution (core.Synchronizer).
func (e *Queue) EnableSync() {
	e.mpPush.Store(true)
	e.mcPull.Store(true)
}

// HintConcurrency specializes the ring to the statically known number
// of pushing and pulling tasks (core.ConcurrencyHinter): one producer
// means plain cursor stores instead of CAS on the push side, and
// likewise for one consumer on the pull side.
func (e *Queue) HintConcurrency(producers, consumers int) {
	e.mpPush.Store(producers > 1)
	e.mcPull.Store(consumers > 1)
}

// DefaultQueueCapacity matches Click's default Queue length.
const DefaultQueueCapacity = 1000

// Configure accepts an optional capacity.
func (e *Queue) Configure(args []string) error {
	capacity := DefaultQueueCapacity
	if len(args) > 1 {
		return fmt.Errorf("Queue: too many arguments")
	}
	if len(args) == 1 && args[0] != "" {
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 {
			return fmt.Errorf("Queue: bad capacity %q", args[0])
		}
		capacity = n
	}
	e.ring.Store(newPktRing(capacity))
	return nil
}

// Len returns the current occupancy. The read is race-safe: two atomic
// cursor loads, no lock, so read handlers can sample a queue that
// parallel workers are actively pushing and pulling.
func (e *Queue) Len() int { return e.ring.Load().len() }

// Capacity returns the current capacity.
func (e *Queue) Capacity() int { return int(e.ring.Load().logical) }

// SetCapacity resizes the queue at run time (the "capacity" write
// handler), preserving queued packets in FIFO order. Shrinking below
// the current occupancy tail-drops the newest packets — the ones a
// smaller queue would have refused — and counts them as drops.
func (e *Queue) SetCapacity(n int) error {
	if n <= 0 {
		return fmt.Errorf("Queue: bad capacity %d", n)
	}
	e.structMu.Lock()
	defer e.structMu.Unlock()
	old := e.ring.Load()
	next := newPktRing(n)
	kept := 0
	for {
		p := old.pop(true)
		if p == nil {
			break
		}
		if kept < n {
			next.push(p, false)
			kept++
			continue
		}
		atomic.AddInt64(&e.Drops, 1)
		e.Drop(p)
	}
	e.ring.Store(next)
	return nil
}

// enqueue adds one packet or tail-drops, maintaining the counters.
func (e *Queue) enqueue(p *packet.Packet) {
	// A queued packet outlives the push that enqueued it; any
	// flow-recording mark is only valid within that push, so it dies
	// here (normally a flow cache's record tap has already cleared it).
	p.Anno.FlowPending = nil
	r := e.ring.Load()
	if !r.push(p, e.mpPush.Load()) {
		// The drop count is atomic so the drops handler can sample it
		// during a parallel run without racing.
		atomic.AddInt64(&e.Drops, 1)
		e.Drop(p)
		return
	}
	atomic.AddInt64(&e.Enqueued, 1)
	if occ := int64(r.len()); occ > atomic.LoadInt64(&e.HighWater) {
		for {
			hw := atomic.LoadInt64(&e.HighWater)
			if occ <= hw || atomic.CompareAndSwapInt64(&e.HighWater, hw, occ) {
				break
			}
		}
	}
}

// dequeue removes the oldest packet, or nil when empty.
func (e *Queue) dequeue() *packet.Packet {
	return e.ring.Load().pop(e.mcPull.Load())
}

// Push enqueues or tail-drops.
func (e *Queue) Push(port int, p *packet.Packet) {
	e.Work()
	e.enqueue(p)
}

// PushBatch enqueues the batch.
func (e *Queue) PushBatch(port int, ps []*packet.Packet) {
	for _, p := range ps {
		e.Work()
		e.enqueue(p)
	}
}

// Pull dequeues. An empty queue charges only a cheap occupancy check,
// so idle ToDevice polling does not masquerade as per-packet work.
func (e *Queue) Pull(port int) *packet.Packet {
	p := e.dequeue()
	if p == nil {
		e.Charge(costQueueEmptyCheck)
		return nil
	}
	e.Work()
	return p
}

// PullBatch dequeues up to len(buf) packets, returning the number
// delivered.
func (e *Queue) PullBatch(port int, buf []*packet.Packet) int {
	n := 0
	for n < len(buf) {
		p := e.dequeue()
		if p == nil {
			break
		}
		e.Work()
		buf[n] = p
		n++
	}
	if n == 0 {
		e.Charge(costQueueEmptyCheck)
	}
	return n
}

// RouterLink stands for an inter-router link in configurations produced
// by click-combine (§7.2): it takes the place of router A's Queue +
// ToDevice and router B's PollDevice. Combined configurations exist for
// analysis and cross-router optimization, so the link forwards packets
// synchronously and counts them.
type RouterLink struct {
	core.Base
	Carried int64
}

// Push forwards into the peer router.
func (e *RouterLink) Push(port int, p *packet.Packet) {
	e.Work()
	atomic.AddInt64(&e.Carried, 1)
	e.Output(0).Push(p)
}

// PushBatch forwards the batch into the peer router.
func (e *RouterLink) PushBatch(port int, ps []*packet.Packet) {
	for range ps {
		e.Work()
	}
	atomic.AddInt64(&e.Carried, int64(len(ps)))
	e.Output(0).PushBatch(ps)
}

// Tee clones each input packet to every output.
type Tee struct{ core.Base }

// Push clones to all outputs (the final one gets the original).
func (e *Tee) Push(port int, p *packet.Packet) {
	e.Work()
	n := e.NOutputs()
	for i := 0; i < n-1; i++ {
		e.Output(i).Push(p.Clone())
	}
	if n > 0 {
		e.Output(n - 1).Push(p)
	} else {
		e.Drop(p)
	}
}

// PushBatch clones the batch to every output (the final one gets the
// originals).
func (e *Tee) PushBatch(port int, ps []*packet.Packet) {
	for range ps {
		e.Work()
	}
	n := e.NOutputs()
	if n == 0 {
		for _, p := range ps {
			e.Drop(p)
		}
		return
	}
	if n > 1 {
		clones := make([]*packet.Packet, len(ps))
		for i := 0; i < n-1; i++ {
			for j, p := range ps {
				clones[j] = p.Clone()
			}
			e.Output(i).PushBatch(clones)
		}
	}
	e.Output(n - 1).PushBatch(ps)
}

// StaticSwitch routes every packet to one fixed output chosen by
// configuration; -1 drops everything. click-undead eliminates the
// branches a StaticSwitch never uses (§6.3).
type StaticSwitch struct {
	core.Base
	Port int
}

// Configure accepts the output port number (-1 to drop).
func (e *StaticSwitch) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("StaticSwitch: expects PORT")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < -1 {
		return fmt.Errorf("StaticSwitch: bad port %q", args[0])
	}
	e.Port = n
	return nil
}

// Push routes to the configured output.
func (e *StaticSwitch) Push(port int, p *packet.Packet) {
	e.Work()
	if e.Port < 0 || e.Port >= e.NOutputs() {
		e.Drop(p)
		return
	}
	e.Output(e.Port).Push(p)
}

// InfiniteSource pushes synthetic 64-byte-class UDP packets from a task
// until an optional limit; used by examples and benchmarks.
type InfiniteSource struct {
	core.Base
	limit   int64
	burst   int
	Emitted int64
	tmpl    *packet.Packet
	scratch []*packet.Packet
}

// Configure accepts optional LIMIT (-1 = unlimited, default), BURST
// (packets per task run, default 1), and destination DSTIP and DPORT
// for the synthetic UDP packets.
func (e *InfiniteSource) Configure(args []string) error {
	e.limit = -1
	e.burst = 1
	dst := packet.MakeIP4(10, 0, 2, 2)
	dport := uint16(1234)
	if len(args) > 4 {
		return fmt.Errorf("InfiniteSource: too many arguments")
	}
	if len(args) >= 1 && args[0] != "" {
		n, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("InfiniteSource: bad limit %q", args[0])
		}
		e.limit = n
	}
	if len(args) >= 2 && args[1] != "" {
		n, err := strconv.Atoi(args[1])
		if err != nil || n <= 0 {
			return fmt.Errorf("InfiniteSource: bad burst %q", args[1])
		}
		e.burst = n
	}
	if len(args) >= 3 && args[2] != "" {
		ip, err := packet.ParseIP4(args[2])
		if err != nil {
			return fmt.Errorf("InfiniteSource: %v", err)
		}
		dst = ip
	}
	if len(args) == 4 && args[3] != "" {
		n, err := strconv.Atoi(args[3])
		if err != nil || n < 0 || n > 65535 {
			return fmt.Errorf("InfiniteSource: bad port %q", args[3])
		}
		dport = uint16(n)
	}
	e.tmpl = packet.BuildUDP4(
		packet.EtherAddr{0, 160, 201, 1, 1, 1}, packet.EtherAddr{0, 160, 201, 2, 2, 2},
		packet.MakeIP4(10, 0, 0, 2), dst,
		1234, dport, make([]byte, 14))
	return nil
}

// RunTask emits up to one burst. Bursts of more than one packet leave
// as a single batched transfer. A router-wide Burst build option raises
// the effective burst of sources configured with the default of 1.
func (e *InfiniteSource) RunTask() bool {
	n := e.burst
	if d := e.DefaultBurst(); d > n {
		n = d
	}
	if e.limit >= 0 {
		if left := e.limit - e.Emitted; int64(n) > left {
			n = int(left)
		}
	}
	if n <= 0 {
		return false
	}
	if n == 1 {
		e.Work()
		e.Emitted++
		e.Output(0).Push(e.tmpl.Clone())
		return true
	}
	if cap(e.scratch) < n {
		e.scratch = make([]*packet.Packet, n)
	}
	batch := e.scratch[:n]
	for i := range batch {
		e.Work()
		batch[i] = e.tmpl.Clone()
	}
	e.Emitted += int64(n)
	e.Output(0).PushBatch(batch)
	return true
}

// RED implements random early detection dropping: when the average
// occupancy of the downstream queues exceeds min-thresh, packets are
// dropped with probability rising to max-p at max-thresh (and always
// beyond it). It finds its queues at initialization by searching
// downstream, as Click's RED does.
type RED struct {
	core.Base
	minThresh int
	maxThresh int
	maxP      float64 // scaled by 1000 in config
	queues    []*Queue
	Drops     int64
	// seed provides deterministic pseudo-randomness.
	seed uint64
}

// Configure accepts MIN-THRESH, MAX-THRESH, MAX-P(×1000).
func (e *RED) Configure(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("RED: expects MIN MAX MAXP")
	}
	var err error
	if e.minThresh, err = strconv.Atoi(args[0]); err != nil || e.minThresh < 0 {
		return fmt.Errorf("RED: bad min threshold %q", args[0])
	}
	if e.maxThresh, err = strconv.Atoi(args[1]); err != nil || e.maxThresh <= e.minThresh {
		return fmt.Errorf("RED: bad max threshold %q", args[1])
	}
	p, err := strconv.Atoi(args[2])
	if err != nil || p <= 0 || p > 1000 {
		return fmt.Errorf("RED: bad max-p %q", args[2])
	}
	e.maxP = float64(p) / 1000
	e.seed = 0x9e3779b97f4a7c15
	return nil
}

// Initialize locates downstream queues by breadth-first search along
// push connections, as Click's RED does.
func (e *RED) Initialize(rt *core.Router) error {
	type porter interface {
		NOutputs() int
		Output(int) *core.OutPort
	}
	seen := map[core.Element]bool{}
	frontier := []porter{e}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for i := 0; i < cur.NOutputs(); i++ {
			out := cur.Output(i)
			if !out.Connected() {
				continue
			}
			tgt, _ := out.Target()
			if tgt == nil || seen[tgt] {
				continue
			}
			seen[tgt] = true
			if q, ok := tgt.(*Queue); ok {
				e.queues = append(e.queues, q)
				continue
			}
			if pr, ok := tgt.(porter); ok {
				frontier = append(frontier, pr)
			}
		}
	}
	if len(e.queues) == 0 {
		return fmt.Errorf("RED: no downstream Queue found")
	}
	return nil
}

func (e *RED) rand() float64 {
	// xorshift64*; deterministic for reproducible experiments.
	e.seed ^= e.seed >> 12
	e.seed ^= e.seed << 25
	e.seed ^= e.seed >> 27
	return float64(e.seed*0x2545f4914f6cdd1d>>11) / float64(1<<53)
}

// Push applies the drop decision and forwards survivors.
func (e *RED) Push(port int, p *packet.Packet) {
	e.Work()
	total := 0
	for _, q := range e.queues {
		total += q.Len()
	}
	avg := total / len(e.queues)
	drop := false
	switch {
	case avg < e.minThresh:
	case avg >= e.maxThresh:
		drop = true
	default:
		frac := float64(avg-e.minThresh) / float64(e.maxThresh-e.minThresh)
		drop = e.rand() < frac*e.maxP
	}
	if drop {
		// Atomic: RED may sit on several workers' push chains at once,
		// and the drops handler samples the count live.
		atomic.AddInt64(&e.Drops, 1)
		e.Drop(p)
		return
	}
	e.Output(0).Push(p)
}

// ScheduleInfo assigns scheduling weights to named tasks: each argument
// is "taskname weight", and a task with weight w runs w times per
// scheduler round (Click uses the same element to seed its stride
// scheduler's tickets).
type ScheduleInfo struct {
	core.Base
	weights map[string]int
}

// Configure parses "name weight" pairs.
func (e *ScheduleInfo) Configure(args []string) error {
	e.weights = map[string]int{}
	for _, a := range args {
		var name string
		var w int
		if _, err := fmt.Sscanf(a, "%s %d", &name, &w); err != nil || w < 1 {
			return fmt.Errorf("ScheduleInfo: bad entry %q (want \"name weight\")", a)
		}
		e.weights[name] = w
	}
	return nil
}

// TaskWeights implements core.TaskWeighter.
func (e *ScheduleInfo) TaskWeights() map[string]int { return e.weights }

// Switch routes every packet to one output port, changeable at run time
// through the "switch" write handler (Click's hot-swappable cousin of
// StaticSwitch; because the port can change, click-undead must leave it
// alone).
type Switch struct {
	core.Base
	port int
}

// Configure accepts the initial output port (-1 to drop).
func (e *Switch) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("Switch: expects PORT")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < -1 {
		return fmt.Errorf("Switch: bad port %q", args[0])
	}
	e.port = n
	return nil
}

// Push routes to the current port.
func (e *Switch) Push(port int, p *packet.Packet) {
	e.Work()
	if e.port < 0 || e.port >= e.NOutputs() {
		e.Drop(p)
		return
	}
	e.Output(e.port).Push(p)
}

// Handlers exports the switchable port.
func (e *Switch) Handlers() []core.Handler {
	return []core.Handler{{
		Name: "switch",
		Read: func() string { return strconv.Itoa(e.port) },
		Write: func(v string) error {
			n, err := strconv.Atoi(v)
			if err != nil || n < -1 {
				return fmt.Errorf("Switch: bad port %q", v)
			}
			e.port = n
			e.BumpGuard(core.GuardConfig)
			return nil
		},
	}}
}

// PaintSwitch routes packets by their paint annotation: paint p leaves
// on output p, out-of-range paints are dropped.
type PaintSwitch struct{ core.Base }

// Push routes by paint.
func (e *PaintSwitch) Push(port int, p *packet.Packet) {
	e.Work()
	out := int(p.Anno.Paint)
	if out >= e.NOutputs() {
		e.Drop(p)
		return
	}
	e.Output(out).Push(p)
}

// ToHost hands packets to the host network stack — the "to Linux" arrow
// in the paper's Figure 1. This driver has no host stack, so it counts
// and retains a tail of recent packets for inspection.
type ToHost struct {
	core.Base
	Count  int64
	Recent []*packet.Packet
}

// Push delivers to the host.
func (e *ToHost) Push(port int, p *packet.Packet) {
	e.Work()
	e.Count++
	e.CountDelivered(1, int64(p.Len()))
	if len(e.Recent) >= 8 {
		old := e.Recent[0]
		e.Recent = e.Recent[1:]
		old.Kill()
	}
	e.Recent = append(e.Recent, p)
}

// Handlers exports the delivery count.
func (e *ToHost) Handlers() []core.Handler {
	return []core.Handler{intHandler("count", func() int64 { return e.Count })}
}
