package elements

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func buildBothLookups(t *testing.T, routes []string) (*LookupIPRoute, *RadixIPLookup) {
	t.Helper()
	lin := &LookupIPRoute{}
	if err := lin.Configure(routes); err != nil {
		t.Fatal(err)
	}
	rad := &RadixIPLookup{}
	if err := rad.Configure(routes); err != nil {
		t.Fatal(err)
	}
	return lin, rad
}

func TestRadixMatchesLinearOnFixedTable(t *testing.T) {
	routes := []string{
		"18.26.4.0/24 0",
		"18.26.0.0/16 18.26.4.1 1",
		"18.0.0.0/8 2",
		"0.0.0.0/0 10.0.0.1 3",
		"18.26.4.9/32 4",
	}
	lin, rad := buildBothLookups(t, routes)
	cases := []packet.IP4{
		packet.MakeIP4(18, 26, 4, 9),   // /32
		packet.MakeIP4(18, 26, 4, 10),  // /24
		packet.MakeIP4(18, 26, 9, 1),   // /16
		packet.MakeIP4(18, 99, 1, 1),   // /8
		packet.MakeIP4(99, 99, 99, 99), // default
	}
	for _, a := range cases {
		r1, ok1 := lin.Lookup(a)
		r2, ok2 := rad.Lookup(a)
		if ok1 != ok2 || r1.port != r2.port || r1.gw != r2.gw {
			t.Errorf("%v: linear (%v,%v) vs radix (%v,%v)", a, r1, ok1, r2, ok2)
		}
	}
}

func TestRadixMatchesLinearProperty(t *testing.T) {
	// Random table, random probes: the trie must agree with the scan.
	rng := rand.New(rand.NewSource(4))
	var routes []string
	for i := 0; i < 60; i++ {
		plen := rng.Intn(33)
		addr := packet.IP4FromUint32(rng.Uint32())
		routes = append(routes, fmt.Sprintf("%s/%d %d", addr, plen, i%5))
	}
	lin, rad := buildBothLookups(t, routes)
	f := func(v uint32) bool {
		a := packet.IP4FromUint32(v)
		r1, ok1 := lin.Lookup(a)
		r2, ok2 := rad.Lookup(a)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		// Ports may differ only if two routes share the longest
		// matching prefix value+length (then table order decides; both
		// implementations keep the earliest).
		return r1.maskLen == r2.maskLen && r1.port == r2.port
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestRadixNoDefaultRouteDrops(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> r :: RadixIPLookup(10.0.0.0/24 0);
r [0] -> out :: TestSink;
`)
	r := rt.Find("r").(*RadixIPLookup)
	p := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(99, 0, 0, 1))
	p.Pull(14)
	p.Anno.NetworkOffset = 0
	p.Anno.DstIPAnno = packet.MakeIP4(99, 0, 0, 1)
	r.Push(0, p)
	if len(rt.Find("out").(*sink).got) != 0 || r.NoRoute != 1 {
		t.Error("unroutable packet not dropped")
	}
	good := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(10, 0, 0, 7))
	good.Pull(14)
	good.Anno.NetworkOffset = 0
	good.Anno.DstIPAnno = packet.MakeIP4(10, 0, 0, 7)
	r.Push(0, good)
	if len(rt.Find("out").(*sink).got) != 1 {
		t.Error("routable packet dropped")
	}
}

func TestIPRouterWithRadixLookup(t *testing.T) {
	// The IP router works identically with the trie-based lookup
	// swapped in (a one-line configuration change, as in Click).
	rt := buildWith(t, `
i :: Idle -> r :: RadixIPLookup(10.0.0.0/24 0, 10.0.1.0/24 1);
r [0] -> a :: TestSink;
r [1] -> b :: TestSink;
`)
	r := rt.Find("r").(*RadixIPLookup)
	for i, dst := range []packet.IP4{packet.MakeIP4(10, 0, 0, 2), packet.MakeIP4(10, 0, 1, 2)} {
		p := udpPacket(packet.MakeIP4(1, 1, 1, 1), dst)
		p.Pull(14)
		p.Anno.NetworkOffset = 0
		p.Anno.DstIPAnno = dst
		r.Push(0, p)
		name := string(rune('a' + i))
		if len(rt.Find(name).(*sink).got) != 1 {
			t.Errorf("packet %d misrouted", i)
		}
	}
}
