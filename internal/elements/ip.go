package elements

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/packet"
)

// CheckIPHeader validates IPv4 headers: version, header length, total
// length, checksum, and source addresses that may never appear on the
// wire (configured "bad" addresses — typically 0.0.0.0 and
// 255.255.255.255 plus local broadcasts). Valid packets continue on
// output 0 with their network-header annotation set; invalid packets go
// to output 1 or are dropped.
type CheckIPHeader struct {
	core.Base
	bad  map[packet.IP4]bool
	Bad  int64
	Good int64
}

// Configure accepts an optional space-separated list of bad source
// addresses.
func (e *CheckIPHeader) Configure(args []string) error {
	e.bad = map[packet.IP4]bool{
		{0, 0, 0, 0}:         true,
		{255, 255, 255, 255}: true,
	}
	if len(args) > 1 {
		return fmt.Errorf("CheckIPHeader: too many arguments")
	}
	if len(args) == 1 && args[0] != "" {
		for _, f := range strings.Fields(args[0]) {
			ip, err := packet.ParseIP4(f)
			if err != nil {
				return fmt.Errorf("CheckIPHeader: %v", err)
			}
			e.bad[ip] = true
		}
	}
	return nil
}

func (e *CheckIPHeader) fail(p *packet.Packet) {
	atomic.AddInt64(&e.Bad, 1)
	if e.NOutputs() > 1 {
		e.Output(1).Push(p)
		return
	}
	e.Drop(p)
}

// Push validates the header.
func (e *CheckIPHeader) Push(port int, p *packet.Packet) {
	e.Work()
	e.MemFetch(1) // first touch of the packet's IP header
	d := p.Data()
	if len(d) < packet.IPHeaderMinLen {
		e.fail(p)
		return
	}
	h := packet.IP4Header(d)
	hl := h.HeaderLen()
	if h.Version() != 4 || hl < packet.IPHeaderMinLen || hl > len(d) {
		e.fail(p)
		return
	}
	tl := h.TotalLen()
	if tl < hl || tl > len(d) {
		e.fail(p)
		return
	}
	if !h.ChecksumOK() {
		e.fail(p)
		return
	}
	if e.bad[h.Src()] {
		e.fail(p)
		return
	}
	p.Anno.NetworkOffset = 0
	// Trim link-layer padding beyond the IP total length.
	if tl < p.Len() {
		p.Take(p.Len() - tl)
	}
	atomic.AddInt64(&e.Good, 1)
	e.Output(0).Push(p)
}

// GetIPAddress copies the IP address at a byte offset into the
// destination-IP annotation (offset 16 reads the IP header's
// destination field).
type GetIPAddress struct {
	core.Base
	offset int
}

// Configure accepts the byte offset.
func (e *GetIPAddress) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("GetIPAddress: expects OFFSET")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 {
		return fmt.Errorf("GetIPAddress: bad offset %q", args[0])
	}
	e.offset = n
	return nil
}

// Push annotates and forwards.
func (e *GetIPAddress) Push(port int, p *packet.Packet) {
	e.Work()
	d := p.Data()
	if len(d) >= e.offset+4 {
		copy(p.Anno.DstIPAnno[:], d[e.offset:e.offset+4])
	}
	e.Output(0).Push(p)
}

// route is one LookupIPRoute table entry.
type route struct {
	dst     uint32
	mask    uint32
	maskLen int
	gw      packet.IP4
	port    int
}

// LookupIPRoute performs longest-prefix-match routing on the
// destination-IP annotation. Each configuration argument is
// "ADDR/LEN [GW] PORT"; a non-zero gateway replaces the annotation
// (next hop), and the packet leaves on the route's output port.
type LookupIPRoute struct {
	core.Base
	routes  []route
	NoRoute int64
	Lookups int64
	// mu guards routes when the parallel scheduler armed it: the "add"
	// and "remove" write handlers mutate the table while lookups may be
	// running on other workers. Unarmed it costs one branch.
	mu      sync.Mutex
	guarded bool
}

// EnableSync arms the route-table guard (core.Synchronizer).
func (e *LookupIPRoute) EnableSync() { e.guarded = true }

func (e *LookupIPRoute) lock() {
	if e.guarded {
		e.mu.Lock()
	}
}

func (e *LookupIPRoute) unlock() {
	if e.guarded {
		e.mu.Unlock()
	}
}

// parseRouteArg parses one "ADDR/LEN [GW] PORT" route specification.
func parseRouteArg(arg string) (route, error) {
	fields := strings.Fields(arg)
	if len(fields) != 2 && len(fields) != 3 {
		return route{}, fmt.Errorf("want \"ADDR/LEN [GW] PORT\", got %q", arg)
	}
	addrStr := fields[0]
	prefixLen := 32
	if slash := strings.IndexByte(addrStr, '/'); slash >= 0 {
		n, err := strconv.Atoi(addrStr[slash+1:])
		if err != nil || n < 0 || n > 32 {
			return route{}, fmt.Errorf("bad prefix %q", addrStr)
		}
		prefixLen = n
		addrStr = addrStr[:slash]
	}
	addr, err := packet.ParseIP4(addrStr)
	if err != nil {
		return route{}, err
	}
	var gw packet.IP4
	portStr := fields[len(fields)-1]
	if len(fields) == 3 {
		if gw, err = packet.ParseIP4(fields[1]); err != nil {
			return route{}, err
		}
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port < 0 {
		return route{}, fmt.Errorf("bad port %q", portStr)
	}
	mask := uint32(0)
	if prefixLen > 0 {
		mask = ^uint32(0) << (32 - prefixLen)
	}
	return route{dst: addr.Uint32() & mask, mask: mask, maskLen: prefixLen, gw: gw, port: port}, nil
}

// Configure parses the route table.
func (e *LookupIPRoute) Configure(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("LookupIPRoute: expects at least one route")
	}
	for i, arg := range args {
		r, err := parseRouteArg(arg)
		if err != nil {
			return fmt.Errorf("LookupIPRoute: route %d: %v", i, err)
		}
		e.routes = append(e.routes, r)
	}
	return nil
}

// AddRoute appends a route at runtime and bumps the route guard so any
// flow fast path re-validates against the new table.
func (e *LookupIPRoute) AddRoute(arg string) error {
	r, err := parseRouteArg(arg)
	if err != nil {
		return fmt.Errorf("LookupIPRoute: %v", err)
	}
	e.lock()
	e.routes = append(e.routes, r)
	e.unlock()
	e.BumpGuard(core.GuardRoute)
	return nil
}

// RemoveRoute deletes every route whose prefix matches "ADDR/LEN" and
// bumps the route guard. Removing a route that is not present is an
// error (matching Click's ctrl handler behavior).
func (e *LookupIPRoute) RemoveRoute(arg string) error {
	// Parse via the common path by appending a dummy port.
	r, err := parseRouteArg(strings.TrimSpace(arg) + " 0")
	if err != nil {
		return fmt.Errorf("LookupIPRoute: %v", err)
	}
	e.lock()
	kept := e.routes[:0]
	removed := 0
	for _, have := range e.routes {
		if have.dst == r.dst && have.maskLen == r.maskLen {
			removed++
			continue
		}
		kept = append(kept, have)
	}
	e.routes = kept
	e.unlock()
	if removed == 0 {
		return fmt.Errorf("LookupIPRoute: no route %s", strings.TrimSpace(arg))
	}
	e.BumpGuard(core.GuardRoute)
	return nil
}

// Lookup returns the route for an address (longest prefix wins).
func (e *LookupIPRoute) Lookup(a packet.IP4) (route, bool) {
	v := a.Uint32()
	best := -1
	bestLen := -1
	for i, r := range e.routes {
		if v&r.mask == r.dst && r.maskLen > bestLen {
			best, bestLen = i, r.maskLen
		}
	}
	if best < 0 {
		return route{}, false
	}
	return e.routes[best], true
}

// Push routes on the destination annotation.
func (e *LookupIPRoute) Push(port int, p *packet.Packet) {
	e.Work()
	e.lock()
	e.Charge(int64(len(e.routes)) * costLookupPerRoute)
	atomic.AddInt64(&e.Lookups, 1)
	dst := p.Anno.DstIPAnno
	if dst.IsZero() {
		if ih, ok := p.IPHeader(); ok {
			dst = ih.Dst()
		}
	}
	r, ok := e.Lookup(dst)
	e.unlock()
	if !ok || r.port >= e.NOutputs() {
		atomic.AddInt64(&e.NoRoute, 1)
		e.Drop(p)
		return
	}
	if !r.gw.IsZero() {
		p.Anno.DstIPAnno = r.gw
	} else {
		p.Anno.DstIPAnno = dst
	}
	e.Output(r.port).Push(p)
}

// DropBroadcasts drops packets that arrived as link-level broadcasts —
// a router must not forward them (RFC 1812).
type DropBroadcasts struct {
	core.Base
	Drops int64
}

// Push filters on the MACBroadcast annotation.
func (e *DropBroadcasts) Push(port int, p *packet.Packet) {
	e.Work()
	if p.Anno.MACBroadcast {
		atomic.AddInt64(&e.Drops, 1)
		e.Drop(p)
		return
	}
	e.Output(0).Push(p)
}

// IPGWOptions processes IP options a gateway must handle (record route,
// timestamp). Packets with malformed options go to output 1; packets
// without options (header length 20) pass through untouched.
type IPGWOptions struct {
	core.Base
	myIP packet.IP4
	Bad  int64
}

// Configure accepts the router's address for record-route/timestamp
// slots.
func (e *IPGWOptions) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("IPGWOptions: expects MYADDR")
	}
	var err error
	e.myIP, err = packet.ParseIP4(args[0])
	return err
}

// Push processes options.
func (e *IPGWOptions) Push(port int, p *packet.Packet) {
	e.Work()
	h, ok := p.IPHeader()
	if !ok {
		e.Drop(p)
		return
	}
	hl := h.HeaderLen()
	if hl <= packet.IPHeaderMinLen {
		e.Output(0).Push(p)
		return
	}
	if e.processOptions(p, h, hl) {
		e.Output(0).Push(p)
		return
	}
	atomic.AddInt64(&e.Bad, 1)
	if e.NOutputs() > 1 {
		e.Output(1).Push(p)
	} else {
		e.Drop(p)
	}
}

// processOptions walks the options area, filling record-route slots.
// It returns false on a malformed option.
func (e *IPGWOptions) processOptions(p *packet.Packet, h packet.IP4Header, hl int) bool {
	opts := h[packet.IPHeaderMinLen:hl]
	changed := false
	for i := 0; i < len(opts); {
		switch opts[i] {
		case 0: // end of options
			i = len(opts)
		case 1: // no-op
			i++
		case 7: // record route
			if i+2 >= len(opts) {
				return false
			}
			olen, ptr := int(opts[i+1]), int(opts[i+2])
			if olen < 3 || i+olen > len(opts) {
				return false
			}
			if ptr >= 4 && ptr-1+4 <= olen {
				copy(opts[i+ptr-1:], e.myIP[:])
				opts[i+2] = byte(ptr + 4)
				changed = true
			}
			i += olen
		default:
			if i+1 >= len(opts) {
				return false
			}
			olen := int(opts[i+1])
			if olen < 2 || i+olen > len(opts) {
				return false
			}
			i += olen
		}
	}
	if changed {
		h.UpdateChecksum()
	}
	return true
}

// FixIPSrc rewrites the source address of packets carrying the
// fix-IP-src annotation (ICMP errors generated inside the router) to
// the output interface's address.
type FixIPSrc struct {
	core.Base
	myIP packet.IP4
}

// Configure accepts the interface address.
func (e *FixIPSrc) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("FixIPSrc: expects MYADDR")
	}
	var err error
	e.myIP, err = packet.ParseIP4(args[0])
	return err
}

// Push rewrites flagged packets.
func (e *FixIPSrc) Push(port int, p *packet.Packet) {
	e.Work()
	if p.Anno.FixIPSrc {
		if h, ok := p.IPHeader(); ok {
			h.SetSrc(e.myIP)
			h.UpdateChecksum()
		}
		p.Anno.FixIPSrc = false
	}
	e.Output(0).Push(p)
}

// DecIPTTL decrements the TTL with an incremental checksum update;
// expired packets (TTL <= 1) go to output 1 for an ICMP time-exceeded
// error.
type DecIPTTL struct {
	core.Base
	Expired int64
}

// Push decrements or expires.
func (e *DecIPTTL) Push(port int, p *packet.Packet) {
	e.Work()
	h, ok := p.IPHeader()
	if !ok {
		e.Drop(p)
		return
	}
	if h.TTL() <= 1 {
		atomic.AddInt64(&e.Expired, 1)
		if e.NOutputs() > 1 {
			e.Output(1).Push(p)
		} else {
			e.Drop(p)
		}
		return
	}
	p.Uniqueify()
	h, _ = p.IPHeader()
	h.DecTTLIncremental()
	e.Output(0).Push(p)
}

// IPFragmenter splits packets larger than the MTU into fragments;
// packets with the don't-fragment flag go to output 1 for an ICMP
// "fragmentation needed" error.
type IPFragmenter struct {
	core.Base
	mtu       int
	Fragments int64
	DFDrops   int64
}

// Configure accepts the MTU.
func (e *IPFragmenter) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("IPFragmenter: expects MTU")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 68 {
		return fmt.Errorf("IPFragmenter: bad MTU %q", args[0])
	}
	e.mtu = n
	return nil
}

// Push forwards, fragments, or rejects.
func (e *IPFragmenter) Push(port int, p *packet.Packet) {
	e.Work()
	if p.Len() <= e.mtu {
		e.Output(0).Push(p)
		return
	}
	h, ok := p.IPHeader()
	if !ok {
		e.Drop(p)
		return
	}
	if h.DontFragment() {
		atomic.AddInt64(&e.DFDrops, 1)
		if e.NOutputs() > 1 {
			e.Output(1).Push(p)
		} else {
			e.Drop(p)
		}
		return
	}
	e.fragment(p, h)
}

func (e *IPFragmenter) fragment(p *packet.Packet, h packet.IP4Header) {
	hl := h.HeaderLen()
	payload := p.Data()[hl:]
	// Fragment payload size: multiple of 8.
	per := (e.mtu - hl) &^ 7
	origOff := h.FragOff()
	more := h.MoreFragments()
	for off := 0; off < len(payload); off += per {
		end := off + per
		last := false
		if end >= len(payload) {
			end = len(payload)
			last = true
		}
		frag := packet.Make(packet.DefaultHeadroom, hl+(end-off), packet.DefaultTailroom)
		d := frag.Data()
		copy(d[:hl], h[:hl])
		copy(d[hl:], payload[off:end])
		fh := packet.IP4Header(d)
		fh.SetTotalLen(hl + (end - off))
		fo := (origOff & 0xe000) | ((origOff&0x1fff)*1 + uint16(off/8))
		if !last || more {
			fo |= 0x2000 // more fragments
		}
		fh.SetFragOff(fo)
		fh.UpdateChecksum()
		frag.Anno = p.Anno
		frag.Anno.NetworkOffset = 0
		atomic.AddInt64(&e.Fragments, 1)
		e.Output(0).Push(frag)
	}
	p.Kill()
}

// ICMPError encapsulates a received packet in an ICMP error message
// addressed to its source, marks it for source-address rewriting, and
// emits it (the IP router feeds these back into the routing table).
type ICMPError struct {
	core.Base
	myIP      packet.IP4
	icmpType  int
	icmpCode  int
	Generated int64
}

// Configure accepts MYADDR TYPE CODE (numeric or symbolic type).
func (e *ICMPError) Configure(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("ICMPError: expects MYADDR TYPE CODE")
	}
	var err error
	if e.myIP, err = packet.ParseIP4(args[0]); err != nil {
		return err
	}
	switch args[1] {
	case "timeexceeded":
		e.icmpType = packet.ICMPTimeExceeded
	case "unreachable":
		e.icmpType = packet.ICMPUnreachable
	case "redirect":
		e.icmpType = packet.ICMPRedirect
	case "parameterproblem":
		e.icmpType = packet.ICMPParameterProb
	default:
		if e.icmpType, err = strconv.Atoi(args[1]); err != nil {
			return fmt.Errorf("ICMPError: bad type %q", args[1])
		}
	}
	if e.icmpCode, err = strconv.Atoi(args[2]); err != nil {
		return fmt.Errorf("ICMPError: bad code %q", args[2])
	}
	return nil
}

// Push builds the error packet.
func (e *ICMPError) Push(port int, p *packet.Packet) {
	e.Work()
	h, ok := p.IPHeader()
	if !ok {
		e.Drop(p)
		return
	}
	// Never generate errors about ICMP errors, fragments, broadcasts,
	// or bad sources (RFC 1812).
	if h.Proto() == packet.IPProtoICMP || h.FragOff()&0x1fff != 0 ||
		p.Anno.MACBroadcast || h.Src().IsZero() || h.Src().IsBroadcast() {
		e.Drop(p)
		return
	}
	src := h.Src()
	// Include the original IP header + 8 bytes of payload.
	quoted := h.HeaderLen() + 8
	if avail := p.Len() - p.Anno.NetworkOffsetOrZero(); quoted > avail {
		quoted = avail
	}
	n := packet.IPHeaderMinLen + packet.ICMPHeaderLen + quoted
	ep := packet.Make(packet.DefaultHeadroom, n, packet.DefaultTailroom)
	d := ep.Data()
	ih := packet.IP4Header(d)
	ih.SetVersionIHL(4, packet.IPHeaderMinLen)
	ih.SetTotalLen(n)
	ih.SetTTL(255)
	ih.SetProto(packet.IPProtoICMP)
	ih.SetSrc(e.myIP)
	ih.SetDst(src)
	ih.UpdateChecksum()
	icmp := d[packet.IPHeaderMinLen:]
	icmp[0] = byte(e.icmpType)
	icmp[1] = byte(e.icmpCode)
	copy(icmp[packet.ICMPHeaderLen:], h[:quoted])
	cs := packet.InternetChecksum(icmp)
	icmp[2], icmp[3] = byte(cs>>8), byte(cs)
	ep.Anno.NetworkOffset = 0
	ep.Anno.FixIPSrc = true
	ep.Anno.DstIPAnno = src
	p.Kill()
	atomic.AddInt64(&e.Generated, 1)
	e.Output(0).Push(ep)
}

// ICMPPingResponder answers ICMP echo requests addressed to the router:
// it swaps addresses, rewrites the type, fixes checksums, and emits the
// reply (which the configuration routes back through the table).
// Non-echo packets pass through to output 1 when connected, or are
// dropped.
type ICMPPingResponder struct {
	core.Base
	Replies int64
}

// Push answers echo requests.
func (e *ICMPPingResponder) Push(port int, p *packet.Packet) {
	e.Work()
	h, ok := p.IPHeader()
	if !ok || h.Proto() != packet.IPProtoICMP {
		e.passThrough(p)
		return
	}
	hl := h.HeaderLen()
	if len(h) < hl+packet.ICMPHeaderLen {
		e.passThrough(p)
		return
	}
	icmp := h[hl:]
	if icmp[0] != packet.ICMPEchoRequest {
		e.passThrough(p)
		return
	}
	p.Uniqueify()
	h, _ = p.IPHeader()
	icmp = h[hl:]
	src, dst := h.Src(), h.Dst()
	h.SetSrc(dst)
	h.SetDst(src)
	h.SetTTL(255)
	h.UpdateChecksum()
	icmp[0] = packet.ICMPEchoReply
	icmp[2], icmp[3] = 0, 0
	cs := packet.InternetChecksum(icmp[:h.TotalLen()-hl])
	icmp[2], icmp[3] = byte(cs>>8), byte(cs)
	p.Anno.DstIPAnno = src
	p.Anno.Paint = 0 // replies never look like redirect candidates
	atomic.AddInt64(&e.Replies, 1)
	e.Output(0).Push(p)
}

func (e *ICMPPingResponder) passThrough(p *packet.Packet) {
	if e.NOutputs() > 1 {
		e.Output(1).Push(p)
		return
	}
	e.Drop(p)
}

// Handlers exports the reply count.
func (e *ICMPPingResponder) Handlers() []core.Handler {
	return []core.Handler{intHandler("count", func() int64 { return e.Replies })}
}
