package elements

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
)

// Compile-time checks: the carriers the hot-swap machinery relies on.
var (
	_ core.StateCarrier = (*Queue)(nil)
	_ core.StateCarrier = (*RED)(nil)
	_ core.StateCarrier = (*ARPQuerier)(nil)
	_ core.StateCarrier = (*Counter)(nil)
	_ core.StateCarrier = (*Switch)(nil)
	_ core.StateCarrier = (*Paint)(nil)
)

func TestQueueSetCapacityGrow(t *testing.T) {
	rt := buildRT(t, "i :: Idle -> q :: Queue(2) -> x :: Idle;")
	q := rt.Find("q").(*Queue)
	p1, p2 := udpPacket(packet.IP4{1}, packet.IP4{2}), udpPacket(packet.IP4{1}, packet.IP4{3})
	q.Push(0, p1)
	q.Push(0, p2)
	if err := q.SetCapacity(5); err != nil {
		t.Fatal(err)
	}
	if q.Capacity() != 5 || q.Len() != 2 {
		t.Fatalf("capacity=%d len=%d after grow", q.Capacity(), q.Len())
	}
	// FIFO order survives the resize.
	if q.Pull(0) != p1 || q.Pull(0) != p2 {
		t.Error("FIFO order lost across grow")
	}
	// The grown queue accepts more than the old capacity.
	for i := 0; i < 5; i++ {
		q.Push(0, udpPacket(packet.IP4{1}, packet.IP4{byte(i)}))
	}
	if q.Len() != 5 || q.Drops != 0 {
		t.Errorf("len=%d drops=%d, want 5/0", q.Len(), q.Drops)
	}
}

func TestQueueSetCapacityShrinkDropsNewest(t *testing.T) {
	rt := buildRT(t, "i :: Idle -> q :: Queue(4) -> x :: Idle;")
	q := rt.Find("q").(*Queue)
	ps := make([]*packet.Packet, 4)
	for i := range ps {
		ps[i] = udpPacket(packet.IP4{1}, packet.IP4{byte(i)})
		q.Push(0, ps[i])
	}
	if err := q.SetCapacity(2); err != nil {
		t.Fatal(err)
	}
	if q.Capacity() != 2 || q.Len() != 2 {
		t.Fatalf("capacity=%d len=%d after shrink", q.Capacity(), q.Len())
	}
	// The oldest packets survive; the newest two were dropped and
	// counted (both in the element counter and in telemetry).
	if q.Pull(0) != ps[0] || q.Pull(0) != ps[1] {
		t.Error("shrink did not keep the oldest packets")
	}
	if got := atomic.LoadInt64(&q.Drops); got != 2 {
		t.Errorf("Drops = %d, want 2", got)
	}
	if got := q.Stats().Drops(); got != 2 {
		t.Errorf("telemetry drops = %d, want 2", got)
	}
}

func TestQueueSetCapacityRejectsBadValues(t *testing.T) {
	rt := buildRT(t, "i :: Idle -> q :: Queue -> x :: Idle;")
	q := rt.Find("q").(*Queue)
	for _, n := range []int{0, -3} {
		if err := q.SetCapacity(n); err == nil {
			t.Errorf("SetCapacity(%d) accepted", n)
		}
	}
}

func TestQueueCapacityWriteHandler(t *testing.T) {
	rt := buildRT(t, "i :: Idle -> q :: Queue(10) -> x :: Idle;")
	if err := rt.WriteHandler("q.capacity", "3"); err != nil {
		t.Fatal(err)
	}
	if v, err := rt.ReadHandler("q.capacity"); err != nil || v != "3" {
		t.Errorf("capacity read %q (%v), want 3", v, err)
	}
	if err := rt.WriteHandler("q.capacity", "bogus"); err == nil {
		t.Error("bogus capacity accepted")
	}
	if err := rt.WriteHandler("q.capacity", "0"); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestREDThresholdHandlers(t *testing.T) {
	rt := buildRT(t, "i :: Idle -> r :: RED(5, 50, 20) -> q :: Queue -> x :: Idle;")
	for name, want := range map[string]string{"min_thresh": "5", "max_thresh": "50", "max_p": "20"} {
		if v, err := rt.ReadHandler("r." + name); err != nil || v != want {
			t.Errorf("%s read %q (%v), want %q", name, v, err, want)
		}
	}
	if err := rt.WriteHandler("r.min_thresh", "10"); err != nil {
		t.Fatal(err)
	}
	if err := rt.WriteHandler("r.max_thresh", "100"); err != nil {
		t.Fatal(err)
	}
	if err := rt.WriteHandler("r.max_p", "500"); err != nil {
		t.Fatal(err)
	}
	r := rt.Find("r").(*RED)
	if r.minThresh != 10 || r.maxThresh != 100 || r.maxP != 0.5 {
		t.Errorf("RED params = %d/%d/%v after writes", r.minThresh, r.maxThresh, r.maxP)
	}
	// Validation: min must stay below max, max above min, max-p in (0,1000].
	for handler, bad := range map[string]string{
		"min_thresh": "100", "max_thresh": "10", "max_p": "2000",
	} {
		if err := rt.WriteHandler("r."+handler, bad); err == nil {
			t.Errorf("%s accepted %s", handler, bad)
		}
	}
}

func TestQueueStateTransplant(t *testing.T) {
	rt := buildRT(t, "i :: Idle -> q :: Queue(8) -> x :: Idle;")
	q := rt.Find("q").(*Queue)
	ps := make([]*packet.Packet, 3)
	for i := range ps {
		ps[i] = udpPacket(packet.IP4{1}, packet.IP4{byte(i)})
		q.Push(0, ps[i])
	}
	q.Push(0, udpPacket(packet.IP4{9}, packet.IP4{9}))
	if q.Pull(0) != ps[0] {
		t.Fatal("setup pull")
	}
	ps = ps[1:]
	atomic.AddInt64(&q.Drops, 5)

	rt2 := buildRT(t, "i :: Idle -> q :: Queue(8) -> x :: Idle;")
	q2 := rt2.Find("q").(*Queue)
	st := q.SaveState()
	if q.Len() != 0 {
		t.Errorf("SaveState left %d packets behind", q.Len())
	}
	if err := q2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 3 {
		t.Fatalf("restored len = %d, want 3", q2.Len())
	}
	if q2.Pull(0) != ps[0] || q2.Pull(0) != ps[1] {
		t.Error("restored FIFO order wrong")
	}
	if got := atomic.LoadInt64(&q2.Drops); got != 5 {
		t.Errorf("restored Drops = %d, want 5", got)
	}
	if q2.Enqueued != 4 {
		t.Errorf("restored Enqueued = %d, want 4", q2.Enqueued)
	}
	if err := q2.RestoreState("junk"); err == nil {
		t.Error("foreign state accepted")
	}
}

func TestQueueStateTransplantIntoSmallerQueue(t *testing.T) {
	rt := buildRT(t, "i :: Idle -> q :: Queue(8) -> x :: Idle;")
	q := rt.Find("q").(*Queue)
	for i := 0; i < 5; i++ {
		q.Push(0, udpPacket(packet.IP4{1}, packet.IP4{byte(i)}))
	}
	rt2 := buildRT(t, "i :: Idle -> q :: Queue(2) -> x :: Idle;")
	q2 := rt2.Find("q").(*Queue)
	if err := q2.RestoreState(q.SaveState()); err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 2 {
		t.Errorf("restored len = %d, want 2 (new capacity)", q2.Len())
	}
	// 3 packets did not fit: counted as drops on the new element.
	if got := atomic.LoadInt64(&q2.Drops); got != 3 {
		t.Errorf("overflow drops = %d, want 3", got)
	}
}

func TestARPStateTransplant(t *testing.T) {
	cfg := "i :: Idle -> arpq :: ARPQuerier(10.0.0.1, 0:a0:c9:0:0:1) -> x :: Idle; j :: Idle -> [1] arpq;"
	rt := buildRT(t, cfg)
	a := rt.Find("arpq").(*ARPQuerier)
	ip := packet.MakeIP4(10, 0, 0, 2)
	eth := packet.EtherAddr{0, 160, 201, 0, 0, 2}
	a.InsertEntry(ip, eth)
	held := udpPacket(packet.MakeIP4(10, 0, 0, 1), packet.MakeIP4(10, 0, 9, 9))
	a.wait[packet.MakeIP4(10, 0, 9, 9)] = held
	atomic.StoreInt64(&a.Queries, 4)
	atomic.StoreInt64(&a.Responses, 2)

	rt2 := buildRT(t, cfg)
	a2 := rt2.Find("arpq").(*ARPQuerier)
	if err := a2.RestoreState(a.SaveState()); err != nil {
		t.Fatal(err)
	}
	if got := a2.tbl[ip]; got != eth {
		t.Errorf("table entry = %v, want %v", got, eth)
	}
	if a2.wait[packet.MakeIP4(10, 0, 9, 9)] != held {
		t.Error("held packet did not transplant")
	}
	if atomic.LoadInt64(&a2.Queries) != 4 || atomic.LoadInt64(&a2.Responses) != 2 {
		t.Error("ARP counters did not transplant")
	}
	// The old element gave the state up entirely.
	if len(a.tbl) != 0 || len(a.wait) != 0 {
		t.Error("SaveState left table or held packets behind")
	}
}

func TestScalarStateCarriers(t *testing.T) {
	// Counter, Switch, Paint: value-only carriers.
	rt := buildRT(t, "i :: Idle -> c :: Counter -> sw :: Switch(0) -> pt :: Paint(1) -> x :: Idle; sw [1] -> y :: Idle;")
	rt2 := buildRT(t, "i :: Idle -> c :: Counter -> sw :: Switch(0) -> pt :: Paint(1) -> x :: Idle; sw [1] -> y :: Idle;")

	c := rt.Find("c").(*Counter)
	atomic.StoreInt64(&c.Packets, 11)
	atomic.StoreInt64(&c.Bytes, 999)
	c2 := rt2.Find("c").(*Counter)
	if err := c2.RestoreState(c.SaveState()); err != nil {
		t.Fatal(err)
	}
	if c2.Packets != 11 || c2.Bytes != 999 {
		t.Errorf("Counter state = %d/%d", c2.Packets, c2.Bytes)
	}

	sw := rt.Find("sw").(*Switch)
	if err := rt.WriteHandler("sw.switch", "1"); err != nil {
		t.Fatal(err)
	}
	sw2 := rt2.Find("sw").(*Switch)
	if err := sw2.RestoreState(sw.SaveState()); err != nil {
		t.Fatal(err)
	}
	if sw2.port != 1 {
		t.Errorf("Switch port = %d, want live setting 1", sw2.port)
	}

	pt := rt.Find("pt").(*Paint)
	pt.color = 7
	pt2 := rt2.Find("pt").(*Paint)
	if err := pt2.RestoreState(pt.SaveState()); err != nil {
		t.Fatal(err)
	}
	if pt2.color != 7 {
		t.Errorf("Paint color = %d, want 7", pt2.color)
	}

	// Foreign-state rejection for the value carriers.
	for name, sc := range map[string]core.StateCarrier{"Counter": c2, "Switch": sw2, "Paint": pt2} {
		if err := sc.RestoreState(struct{}{}); err == nil {
			t.Errorf("%s accepted foreign state", name)
		}
	}
}

// TestRouterHotswapEndToEnd drives the full path over real elements: a
// source feeding a queue through a counter, swapped mid-run, with the
// queue's packets surviving into the new router.
func TestRouterHotswapEndToEnd(t *testing.T) {
	cfg := "src :: InfiniteSource(6) -> c :: Counter -> q :: Queue(100) -> x :: Idle;"
	build := func() *core.Router {
		rt, err := core.BuildFromText(cfg, "swap", NewRegistry(), core.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	old := build()
	old.RunUntilIdle(3) // emits 3 of the 6 packets into q
	if got := old.Find("q").(*Queue).Len(); got != 3 {
		t.Fatalf("pre-swap queue len = %d, want 3", got)
	}
	next := build()
	if err := old.Hotswap(next); err != nil {
		t.Fatal(err)
	}
	next.RunUntilIdle(1000)
	// The source's progress transplants (3 of 6 emitted), so it sends
	// exactly the 3 it still owes; with the 3 transplanted packets the
	// queue holds 6. A swap must not restart bounded sources — in the
	// multi-tenant plane one tenant's swap reinstalls everyone.
	if got := next.Find("q").(*Queue).Len(); got != 6 {
		t.Errorf("post-swap queue len = %d, want 6", got)
	}
	if got := atomic.LoadInt64(&next.Find("c").(*Counter).Packets); got != 6 {
		t.Errorf("post-swap counter = %d, want 6 (3 transplanted + 3 new)", got)
	}
	if got := next.Find("src").(*InfiniteSource).Emitted; got != 6 {
		t.Errorf("post-swap source emitted = %d, want 6", got)
	}
}
