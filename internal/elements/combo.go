package elements

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/packet"
)

// Combo elements are the special-purpose combination elements click-xform
// substitutes for chains of general-purpose elements (§6.2). Router
// designers are discouraged from naming them directly: configurations
// stay readable with the general elements, and click-xform installs the
// combos before installation.

// IPInputCombo fuses Paint(COLOR) → Strip(14) → CheckIPHeader(BADSRC)
// and, when a third argument gives an annotation offset, GetIPAddress —
// the Figure 4/6 input-path combination. Output 0 carries valid IP
// packets; output 1 (optional) carries header failures.
type IPInputCombo struct {
	core.Base
	color     byte
	check     CheckIPHeader
	addrOff   int // -1 when GetIPAddress is not fused in
	Processed int64
}

// Configure accepts COLOR, BADSRC[, ANNO-OFFSET].
func (e *IPInputCombo) Configure(args []string) error {
	if len(args) != 2 && len(args) != 3 {
		return fmt.Errorf("IPInputCombo: expects COLOR, BADSRC [, OFFSET]")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 || n > 255 {
		return fmt.Errorf("IPInputCombo: bad color %q", args[0])
	}
	e.color = byte(n)
	if err := e.check.Configure(args[1:2]); err != nil {
		return err
	}
	e.addrOff = -1
	if len(args) == 3 {
		off, err := strconv.Atoi(args[2])
		if err != nil || off < 0 {
			return fmt.Errorf("IPInputCombo: bad annotation offset %q", args[2])
		}
		e.addrOff = off
	}
	return nil
}

func (e *IPInputCombo) fail(p *packet.Packet) {
	if e.NOutputs() > 1 {
		e.Output(1).Push(p)
		return
	}
	e.Drop(p)
}

// process runs the fused input path on one packet and reports whether
// it survived to be forwarded on output 0. Failed packets have already
// been dispatched (to output 1 or killed).
func (e *IPInputCombo) process(p *packet.Packet) bool {
	e.Work()
	e.MemFetch(1) // first touch of the packet's IP header
	p.Anno.Paint = e.color
	if p.Len() < packet.EtherHeaderLen {
		e.Drop(p)
		return false
	}
	p.Pull(packet.EtherHeaderLen)
	d := p.Data()
	if len(d) < packet.IPHeaderMinLen {
		e.fail(p)
		return false
	}
	h := packet.IP4Header(d)
	hl := h.HeaderLen()
	if h.Version() != 4 || hl < packet.IPHeaderMinLen || hl > len(d) {
		e.fail(p)
		return false
	}
	tl := h.TotalLen()
	if tl < hl || tl > len(d) {
		e.fail(p)
		return false
	}
	if !h.ChecksumOK() {
		e.fail(p)
		return false
	}
	if e.check.bad[h.Src()] {
		e.fail(p)
		return false
	}
	p.Anno.NetworkOffset = 0
	if tl < p.Len() {
		p.Take(p.Len() - tl)
	}
	if e.addrOff >= 0 && len(d) >= e.addrOff+4 {
		copy(p.Anno.DstIPAnno[:], d[e.addrOff:e.addrOff+4])
	}
	atomic.AddInt64(&e.Processed, 1)
	return true
}

// Push performs the fused input path in one traversal of the header.
func (e *IPInputCombo) Push(port int, p *packet.Packet) {
	if e.process(p) {
		e.Output(0).Push(p)
	}
}

// PushBatch runs the fused input path over the batch, compacting
// survivors in place and forwarding them as one batch on output 0;
// failures leave on the scalar error path as they are found.
func (e *IPInputCombo) PushBatch(port int, ps []*packet.Packet) {
	k := 0
	for _, p := range ps {
		if e.process(p) {
			ps[k] = p
			k++
		}
	}
	e.Output(0).PushBatch(ps[:k])
}

// IPOutputCombo fuses the output path: DropBroadcasts → CheckPaint(COLOR)
// → IPGWOptions(MYADDR) → FixIPSrc(MYADDR) → DecIPTTL → IPFragmenter(MTU).
// Outputs: 0 forward, 1 redirect (paint match), 2 bad options, 3 TTL
// expired, 4 fragmentation needed (DF set).
type IPOutputCombo struct {
	core.Base
	color     byte
	myIP      packet.IP4
	gwOpts    IPGWOptions
	frag      IPFragmenter
	Processed int64
}

// Configure accepts COLOR, MYADDR, MTU.
func (e *IPOutputCombo) Configure(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("IPOutputCombo: expects COLOR, MYADDR, MTU")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 || n > 255 {
		return fmt.Errorf("IPOutputCombo: bad color %q", args[0])
	}
	e.color = byte(n)
	if e.myIP, err = packet.ParseIP4(args[1]); err != nil {
		return err
	}
	if err := e.gwOpts.Configure(args[1:2]); err != nil {
		return err
	}
	if err := e.frag.Configure(args[2:3]); err != nil {
		return err
	}
	return nil
}

func (e *IPOutputCombo) errorOut(port int, p *packet.Packet) {
	if port < e.NOutputs() {
		e.Output(port).Push(p)
		return
	}
	e.Drop(p)
}

// Outcomes of IPOutputCombo.process.
const (
	outDone     = iota // dispatched to an error output or killed
	outForward         // forward unmodified on output 0
	outFragment        // exceeds the MTU: caller must fragmentTo
)

// process runs the fused output path on one packet. Error-path packets
// are dispatched (or killed) inside and report outDone; packets that
// need fragmentation report outFragment so the caller can order the
// fragments correctly relative to other output-0 traffic.
func (e *IPOutputCombo) process(p *packet.Packet) int {
	e.Work()
	atomic.AddInt64(&e.Processed, 1)
	// DropBroadcasts.
	if p.Anno.MACBroadcast {
		e.Drop(p)
		return outDone
	}
	// CheckPaint: clone to the redirect output, keep forwarding.
	if p.Anno.Paint == e.color && e.NOutputs() > 1 {
		e.Output(1).Push(p.Clone())
	}
	h, ok := p.IPHeader()
	if !ok {
		e.Drop(p)
		return outDone
	}
	// IPGWOptions.
	if h.HeaderLen() > packet.IPHeaderMinLen {
		if !e.gwOpts.processOptions(p, h, h.HeaderLen()) {
			e.errorOut(2, p)
			return outDone
		}
	}
	// FixIPSrc.
	if p.Anno.FixIPSrc {
		h.SetSrc(e.myIP)
		h.UpdateChecksum()
		p.Anno.FixIPSrc = false
	}
	// DecIPTTL.
	if h.TTL() <= 1 {
		e.errorOut(3, p)
		return outDone
	}
	p.Uniqueify()
	h, _ = p.IPHeader()
	h.DecTTLIncremental()
	// IPFragmenter.
	if p.Len() > e.frag.mtu {
		if h.DontFragment() {
			e.errorOut(4, p)
			return outDone
		}
		return outFragment
	}
	return outForward
}

// Push performs the fused output path.
func (e *IPOutputCombo) Push(port int, p *packet.Packet) {
	switch e.process(p) {
	case outForward:
		e.Output(0).Push(p)
	case outFragment:
		h, _ := p.IPHeader()
		e.fragmentTo(p, h)
	}
}

// PushBatch runs the fused output path over the batch, forwarding
// survivors as one compacted batch on output 0. When a packet needs
// fragmentation, pending survivors are flushed first so output-0 order
// matches the scalar path exactly.
func (e *IPOutputCombo) PushBatch(port int, ps []*packet.Packet) {
	k := 0
	for _, p := range ps {
		switch e.process(p) {
		case outForward:
			ps[k] = p
			k++
		case outFragment:
			e.Output(0).PushBatch(ps[:k])
			k = 0
			h, _ := p.IPHeader()
			e.fragmentTo(p, h)
		}
	}
	e.Output(0).PushBatch(ps[:k])
}

func (e *IPOutputCombo) fragmentTo(p *packet.Packet, h packet.IP4Header) {
	hl := h.HeaderLen()
	payload := p.Data()[hl:]
	per := (e.frag.mtu - hl) &^ 7
	origOff := h.FragOff()
	more := h.MoreFragments()
	for off := 0; off < len(payload); off += per {
		end := off + per
		last := false
		if end >= len(payload) {
			end = len(payload)
			last = true
		}
		frag := packet.Make(packet.DefaultHeadroom, hl+(end-off), packet.DefaultTailroom)
		d := frag.Data()
		copy(d[:hl], h[:hl])
		copy(d[hl:], payload[off:end])
		fh := packet.IP4Header(d)
		fh.SetTotalLen(hl + (end - off))
		fo := (origOff & 0xe000) | (origOff & 0x1fff) + uint16(off/8)
		if !last || more {
			fo |= 0x2000
		}
		fh.SetFragOff(fo)
		fh.UpdateChecksum()
		frag.Anno = p.Anno
		frag.Anno.NetworkOffset = 0
		e.Output(0).Push(frag)
	}
	p.Kill()
}

// EtherEncapARP is the combination element the multiple-router ARP
// elimination installs (§7.2): on a point-to-point link whose peer is
// known from the combined configuration, ARP machinery is unnecessary
// and a static encapsulation suffices. It differs from EtherEncap by
// also accepting (and discarding) stray ARP traffic on input 1, so it
// is port-compatible with the ARPQuerier it replaces.
type EtherEncapARP struct {
	core.Base
	src, dst packet.EtherAddr
}

// Configure accepts SRC DST.
func (e *EtherEncapARP) Configure(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("EtherEncapARP: expects SRC DST")
	}
	var err error
	if e.src, err = packet.ParseEther(args[0]); err != nil {
		return err
	}
	if e.dst, err = packet.ParseEther(args[1]); err != nil {
		return err
	}
	return nil
}

// Push encapsulates IP packets; ARP responses on input 1 are dropped.
func (e *EtherEncapARP) Push(port int, p *packet.Packet) {
	e.Work()
	if port == 1 {
		e.Drop(p)
		return
	}
	encapEther(p, packet.EtherTypeIP, e.src, e.dst)
	e.Output(0).Push(p)
}
