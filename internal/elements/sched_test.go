package elements

import (
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
)

// schedRig builds n queues feeding a scheduler feeding an Unqueue into
// a sink, and fills queue i with fill[i] packets painted i+1.
func schedRig(t *testing.T, schedDecl string, fill []int) (*core.Router, *sink) {
	t.Helper()
	cfg := ""
	for i := range fill {
		cfg += "i" + string(rune('0'+i)) + " :: Idle -> q" + string(rune('0'+i)) + " :: Queue(64) -> [" + string(rune('0'+i)) + "] sch;\n"
	}
	cfg += "sch :: " + schedDecl + " -> u :: Unqueue -> out :: TestSink;\n"
	rt, err := core.BuildFromText(cfg, "sched", testRegistry(), core.BuildOptions{})
	if err != nil {
		t.Fatalf("build: %v\n%s", err, cfg)
	}
	for i, n := range fill {
		q := rt.Find("q" + string(rune('0'+i))).(*Queue)
		for j := 0; j < n; j++ {
			p := packet.New(make([]byte, 20))
			p.Anno.Paint = byte(i + 1)
			q.Push(0, p)
		}
	}
	return rt, rt.Find("out").(*sink)
}

func drainOrder(rt *core.Router, out *sink, max int) []byte {
	rt.RunUntilIdle(max)
	order := make([]byte, len(out.got))
	for i, p := range out.got {
		order[i] = p.Anno.Paint
	}
	return order
}

func TestRoundRobinSched(t *testing.T) {
	rt, out := schedRig(t, "RoundRobinSched", []int{3, 3, 3})
	order := drainOrder(rt, out, 100)
	if len(order) != 9 {
		t.Fatalf("drained %d packets, want 9", len(order))
	}
	// Perfect interleave 1,2,3,1,2,3,...
	for i, c := range order {
		if want := byte(i%3 + 1); c != want {
			t.Fatalf("position %d: paint %d, want %d (order %v)", i, c, want, order)
		}
	}
}

func TestRoundRobinSkipsEmpty(t *testing.T) {
	rt, out := schedRig(t, "RoundRobinSched", []int{2, 0, 1})
	order := drainOrder(rt, out, 100)
	if len(order) != 3 {
		t.Fatalf("drained %d packets, want 3", len(order))
	}
	// 1,3,1 — input 1 is empty and skipped without stalling.
	want := []byte{1, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestPrioSched(t *testing.T) {
	rt, out := schedRig(t, "PrioSched", []int{2, 3})
	order := drainOrder(rt, out, 100)
	if len(order) != 5 {
		t.Fatalf("drained %d, want 5", len(order))
	}
	// All of input 0 first.
	want := []byte{1, 1, 2, 2, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestStrideSchedProportions(t *testing.T) {
	rt, out := schedRig(t, "StrideSched(3, 1)", []int{40, 40})
	order := drainOrder(rt, out, 200)
	if len(order) != 80 {
		t.Fatalf("drained %d, want 80", len(order))
	}
	// First 40 pulls should be ~3:1 in favour of input 0.
	c0 := 0
	for _, c := range order[:40] {
		if c == 1 {
			c0++
		}
	}
	if c0 < 27 || c0 > 33 {
		t.Errorf("input 0 got %d of the first 40 services, want ~30", c0)
	}
}

func TestStrideSchedBadConfig(t *testing.T) {
	for _, cfg := range []string{"StrideSched", "StrideSched(0)", "StrideSched(x)"} {
		_, err := core.BuildFromText(
			"i :: Idle -> q :: Queue -> sch :: "+cfg+" -> u :: Unqueue -> d :: Discard;",
			"t", testRegistry(), core.BuildOptions{})
		if err == nil {
			t.Errorf("%s accepted", cfg)
		}
	}
}

func TestRatedSource(t *testing.T) {
	rt, err := core.BuildFromText("s :: RatedSource(3, 4) -> out :: TestSink;",
		"t", testRegistry(), core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := rt.Find("s").(*RatedSource)
	for i := 0; i < 11; i++ {
		s.RunTask()
	}
	// One packet per 3 runs: runs 3, 6, 9 emit.
	if s.Emitted != 3 {
		t.Errorf("emitted %d after 11 runs, want 3", s.Emitted)
	}
	for i := 0; i < 20; i++ {
		s.RunTask()
	}
	if s.Emitted != 4 {
		t.Errorf("limit not honored: emitted %d", s.Emitted)
	}
}

func TestUnqueueBridges(t *testing.T) {
	rt, err := core.BuildFromText(
		"i :: Idle -> q :: Queue(8) -> u :: Unqueue -> out :: TestSink;",
		"t", testRegistry(), core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := rt.Find("q").(*Queue)
	for i := 0; i < 5; i++ {
		q.Push(0, packet.New([]byte{byte(i)}))
	}
	rt.RunUntilIdle(100)
	out := rt.Find("out").(*sink)
	if len(out.got) != 5 {
		t.Fatalf("bridged %d packets, want 5", len(out.got))
	}
	if out.got[0].Data()[0] != 0 || out.got[4].Data()[0] != 4 {
		t.Error("order not preserved")
	}
}

func TestScheduleInfoWeights(t *testing.T) {
	// Two sources into one queue; s1 weighted 3x. After rounds, s1
	// should have emitted ~3x what s2 did.
	rt, err := core.BuildFromText(`
ScheduleInfo(s1 3, s2 1);
s1 :: InfiniteSource(-1, 1) -> q :: Queue(1000) -> u :: Unqueue -> d :: Discard;
s2 :: InfiniteSource(-1, 1) -> q;
`, "t", testRegistry(), core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rt.RunTaskRound()
	}
	e1 := rt.Find("s1").(*InfiniteSource).Emitted
	e2 := rt.Find("s2").(*InfiniteSource).Emitted
	if e1 != 3*e2 {
		t.Errorf("weighted emission %d vs %d, want 3:1", e1, e2)
	}
}

func TestScheduleInfoBadConfig(t *testing.T) {
	for _, cfg := range []string{"ScheduleInfo(x)", "ScheduleInfo(x 0)", "ScheduleInfo(x y)"} {
		_, err := core.BuildFromText(cfg+"; i :: Idle -> d :: Discard;", "t", testRegistry(), core.BuildOptions{})
		if err == nil {
			t.Errorf("%s accepted", cfg)
		}
	}
}
