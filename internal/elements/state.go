package elements

import (
	"fmt"
	"sync/atomic"

	"repro/internal/packet"
)

// StateCarrier implementations (core.StateCarrier): the per-element
// state that survives a configuration hot-swap, mirroring Click's
// Element::take_state. SaveState transfers ownership of any packets in
// the returned state; RestoreState adopts them. Both run between
// scheduler rounds under the element's own guard, and — like Click's
// take_state — a transplanted runtime setting wins over the
// replacement's configured value (the operator's live "write switch 2"
// outlives a swap).

// QueueState is a Queue's transferable state: the queued packets in
// FIFO order plus the accumulated counters.
type QueueState struct {
	Packets   []*packet.Packet
	Drops     int64
	Enqueued  int64
	HighWater int64
}

// SaveState drains the queue and hands its packets and counters over.
func (e *Queue) SaveState() interface{} {
	e.structMu.Lock()
	defer e.structMu.Unlock()
	r := e.ring.Load()
	var ps []*packet.Packet
	for {
		p := r.pop(true)
		if p == nil {
			break
		}
		ps = append(ps, p)
	}
	return &QueueState{
		Packets:   ps,
		Drops:     atomic.LoadInt64(&e.Drops),
		Enqueued:  atomic.LoadInt64(&e.Enqueued),
		HighWater: atomic.LoadInt64(&e.HighWater),
	}
}

// RestoreState adopts a drained queue's packets and counters. The new
// queue's own capacity governs: packets beyond it are tail-dropped and
// counted, exactly as if they had arrived after a shrink.
func (e *Queue) RestoreState(state interface{}) error {
	st, ok := state.(*QueueState)
	if !ok {
		return fmt.Errorf("Queue: foreign state %T", state)
	}
	e.structMu.Lock()
	defer e.structMu.Unlock()
	atomic.StoreInt64(&e.Drops, st.Drops)
	atomic.StoreInt64(&e.Enqueued, st.Enqueued)
	atomic.StoreInt64(&e.HighWater, st.HighWater)
	old := e.ring.Load()
	next := newPktRing(int(old.logical))
	for old.pop(true) != nil {
		// a fresh element's ring is empty; drain defensively
	}
	kept := int64(0)
	for _, p := range st.Packets {
		if !next.push(p, false) {
			atomic.AddInt64(&e.Drops, 1)
			e.Drop(p)
			continue
		}
		kept++
	}
	e.ring.Store(next)
	if kept > atomic.LoadInt64(&e.HighWater) {
		atomic.StoreInt64(&e.HighWater, kept)
	}
	return nil
}

// REDState is a RED element's transferable state: its drop count and
// the position in its deterministic random sequence (so a swap does not
// replay the same drop decisions).
type REDState struct {
	Drops int64
	Seed  uint64
}

// SaveState hands over the drop counter and PRNG position.
func (e *RED) SaveState() interface{} {
	return &REDState{Drops: atomic.LoadInt64(&e.Drops), Seed: e.seed}
}

// RestoreState adopts them.
func (e *RED) RestoreState(state interface{}) error {
	st, ok := state.(*REDState)
	if !ok {
		return fmt.Errorf("RED: foreign state %T", state)
	}
	atomic.StoreInt64(&e.Drops, st.Drops)
	e.seed = st.Seed
	return nil
}

// ARPState is an ARPQuerier's transferable state: the learned
// IP-to-Ethernet table, the packets held awaiting responses, and the
// protocol counters.
type ARPState struct {
	Table     map[packet.IP4]packet.EtherAddr
	Held      map[packet.IP4]*packet.Packet
	Queries   int64
	Responses int64
	Drops     int64
}

// SaveState hands the table and held packets over, leaving the old
// element with empty maps.
func (e *ARPQuerier) SaveState() interface{} {
	e.lock()
	defer e.unlock()
	st := &ARPState{
		Table:     e.tbl,
		Held:      e.wait,
		Queries:   atomic.LoadInt64(&e.Queries),
		Responses: atomic.LoadInt64(&e.Responses),
		Drops:     atomic.LoadInt64(&e.Drops),
	}
	e.tbl = map[packet.IP4]packet.EtherAddr{}
	e.wait = map[packet.IP4]*packet.Packet{}
	return st
}

// RestoreState merges the transplanted table over any entries the new
// element already learned (transplanted mappings are older, but a
// freshly built element has none, so in practice it adopts the table
// wholesale) and re-holds the in-flight packets.
func (e *ARPQuerier) RestoreState(state interface{}) error {
	st, ok := state.(*ARPState)
	if !ok {
		return fmt.Errorf("ARPQuerier: foreign state %T", state)
	}
	e.lock()
	for ip, eth := range st.Table {
		e.tbl[ip] = eth
	}
	var evicted []*packet.Packet
	for ip, p := range st.Held {
		if old := e.wait[ip]; old != nil {
			evicted = append(evicted, old)
		}
		e.wait[ip] = p
	}
	e.unlock()
	atomic.StoreInt64(&e.Queries, st.Queries)
	atomic.StoreInt64(&e.Responses, st.Responses)
	atomic.StoreInt64(&e.Drops, st.Drops)
	for _, p := range evicted {
		atomic.AddInt64(&e.Drops, 1)
		e.Drop(p)
	}
	return nil
}

// CounterState is a Counter's transferable state.
type CounterState struct {
	Packets int64
	Bytes   int64
}

// SaveState hands the counts over.
func (e *Counter) SaveState() interface{} {
	return &CounterState{
		Packets: atomic.LoadInt64(&e.Packets),
		Bytes:   atomic.LoadInt64(&e.Bytes),
	}
}

// RestoreState adopts the counts.
func (e *Counter) RestoreState(state interface{}) error {
	st, ok := state.(*CounterState)
	if !ok {
		return fmt.Errorf("Counter: foreign state %T", state)
	}
	atomic.StoreInt64(&e.Packets, st.Packets)
	atomic.StoreInt64(&e.Bytes, st.Bytes)
	return nil
}

// SwitchState is a Switch's transferable state: its live port setting.
type SwitchState struct{ Port int }

// SaveState hands the live port over.
func (e *Switch) SaveState() interface{} { return &SwitchState{Port: e.port} }

// RestoreState adopts it (Click's Switch::take_state likewise lets the
// old router's live setting override the new configuration).
func (e *Switch) RestoreState(state interface{}) error {
	st, ok := state.(*SwitchState)
	if !ok {
		return fmt.Errorf("Switch: foreign state %T", state)
	}
	e.port = st.Port
	return nil
}

// InfiniteSourceState is an InfiniteSource's transferable state: its
// emission progress. Without it a hot-swap would restart every bounded
// source in the router — in the multi-tenant plane, where one tenant's
// swap reinstalls the whole combined configuration, that would make
// other tenants' sources visibly re-emit, breaking swap independence.
type InfiniteSourceState struct{ Emitted int64 }

// SaveState hands the emission count over.
func (e *InfiniteSource) SaveState() interface{} {
	return &InfiniteSourceState{Emitted: e.Emitted}
}

// RestoreState adopts it; the replacement's configured limit still
// governs, so a source already past the new limit simply stays quiet.
func (e *InfiniteSource) RestoreState(state interface{}) error {
	st, ok := state.(*InfiniteSourceState)
	if !ok {
		return fmt.Errorf("InfiniteSource: foreign state %T", state)
	}
	e.Emitted = st.Emitted
	return nil
}

// PaintState is a Paint element's transferable state: its live color.
type PaintState struct{ Color byte }

// SaveState hands the color over.
func (e *Paint) SaveState() interface{} { return &PaintState{Color: e.color} }

// RestoreState adopts it.
func (e *Paint) RestoreState(state interface{}) error {
	st, ok := state.(*PaintState)
	if !ok {
		return fmt.Errorf("Paint: foreign state %T", state)
	}
	e.color = st.Color
	return nil
}
