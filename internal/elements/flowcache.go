package elements

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/packet"
)

// FlowCache is an exact-match flow fast path installed in front of the
// full modular pipeline (the opt.InstallFlowCache pass does the graph
// surgery). The first packet of a flow takes the slow path — the
// unmodified element chain — while the cache records the *net effect*
// the pipeline had on it: which egress queue it reached and how its
// bytes changed (rewritten Ethernet header, decremented TTL). Once the
// recording is verified, subsequent packets of the flow skip the
// pipeline entirely: the cache applies the recorded transformation and
// pushes the packet straight at the egress queue.
//
// Port layout for FlowCache(M, E): inputs 0..M-1 are ingress ports (one
// per device feed, so parallel workers pinned to different devices by
// FlowSteer-style affinity never share cache state — each ingress owns
// a private shard touched only by its device's task chain); output i
// mirrors ingress i into the slow path ("miss" output). Inputs
// M..M+E-1 are record taps spliced into every edge that enters an
// egress queue; output M+j passes tap traffic through to the queue and
// doubles as the fast-path output for flows recorded at that tap.
//
// Correctness rests on three mechanisms rather than on trusting the
// recording:
//
//   - Replay verification: a recording is only installed if re-applying
//     the candidate transformation to a copy of the ingress packet
//     reproduces the observed egress bytes exactly, and if exactly one
//     packet crossed a record tap during the traversal — so the
//     pipeline emitted nothing on the flow's behalf beyond the packet
//     itself. Flows the pipeline duplicates (Tee), consumes (ToHost,
//     ARP hold), fragments, rewrites in unsupported ways, or answers
//     with side traffic (ICMP redirects, ARP queries) fail verification
//     and are pinned to the slow path as uncacheable.
//   - Guards: every entry snapshots the router's guard generations
//     (core.GuardRoute/GuardARP/GuardConfig). Any write handler or
//     learned-state update that touches guarded state bumps a
//     generation; a hit whose snapshot mismatches is discarded and the
//     packet re-records against the new state, so the fast path is
//     never stale.
//   - Conservative hit criteria: the 32-byte key covers every header
//     field the repo's configurations classify on (Ethernet addresses
//     and type, IP version/IHL, TOS, fragment field, TTL, protocol,
//     addresses, transport ports), and a hit additionally requires a
//     valid IP checksum, no link padding, and a length between the
//     extremes already verified for the flow.
//
// FlowCache charges zero model cycles (no Work or Charge calls): the
// fast path's win in the cost model comes from the element work it
// bypasses, and an uninstalled FlowCache leaves the calibrated Figure
// 8/9 numbers untouched.
type FlowCache struct {
	core.Base
	nIngress int
	nEgress  int
	shards   []flowShard

	// Counters are atomic: different ingress shards may run on
	// different workers, and read handlers sample them live.
	Hits        int64
	Misses      int64
	Uncacheable int64
	Invalidated int64
	SwapDemoted int64

	// tapArrivals counts every packet crossing any record tap. A
	// recording is only trusted when exactly one tap traversal happened
	// during the slow-path push — the marked packet itself — proving
	// the pipeline emitted nothing else (no ICMP redirect, no ARP
	// query) on the flow's behalf. Unrelated concurrent traffic can
	// inflate the count under the parallel scheduler; that pins the
	// flow uncacheable, which is conservative but never wrong.
	tapArrivals int64
}

// flowCacheMaxEntries bounds each ingress shard's table; flows beyond
// the cap stay on the slow path rather than evicting warm entries.
const flowCacheMaxEntries = 8192

// flowShard is the per-ingress cache state. Each shard is touched only
// by the task chain that owns its ingress port (the scheduler's
// exclusivity analysis pins a device's push chain to one task), so no
// locking is needed even under the parallel scheduler.
type flowShard struct {
	entries map[flowKey]*flowEntry
	pending *flowPending // active recording, non-nil only inside a slow-path push
}

// flowKey packs the invariant header fields of a flow: Ethernet
// destination, source, and type; IP version/IHL, TOS, fragment field,
// TTL, protocol, source, and destination; and the transport ports for
// unfragmented TCP/UDP. Mutable per-packet fields (total length, ID,
// checksum) and payload are deliberately excluded.
type flowKey [32]byte

// flowEntry states.
const (
	flowVerified    = iota // recording replay-verified; fast path eligible
	flowUncacheable        // pipeline effect not representable; pinned to slow path
	flowSwapped            // transplanted across a hot-swap; must re-record
)

// flowEntry is one recorded flow transformation.
type flowEntry struct {
	state    int
	out      int      // fast-path output port (egress tap index)
	ether    [14]byte // rewritten Ethernet header at egress
	ttlDelta uint8    // TTL decrements applied along the path
	minLen   int      // smallest replay-verified packet length
	maxLen   int      // largest replay-verified packet length
	gens     core.GuardSnapshot
	hits     int64
}

// flowPending tracks one in-progress recording. It is reachable both
// from the shard and from the packet's FlowPending annotation; the
// record taps write to it strictly within the synchronous slow-path
// push that created it, so no synchronization is needed.
type flowPending struct {
	owner    *FlowCache
	key      flowKey
	inCopy   []byte
	gens     core.GuardSnapshot
	arrivals int
	out      int
	egress   []byte
}

// Configure accepts "NINGRESS, NEGRESS".
func (e *FlowCache) Configure(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("FlowCache: expects NINGRESS, NEGRESS")
	}
	m, err := strconv.Atoi(args[0])
	if err != nil || m < 1 {
		return fmt.Errorf("FlowCache: bad ingress count %q", args[0])
	}
	n, err := strconv.Atoi(args[1])
	if err != nil || n < 0 {
		return fmt.Errorf("FlowCache: bad egress count %q", args[1])
	}
	e.nIngress, e.nEgress = m, n
	e.shards = make([]flowShard, m)
	for i := range e.shards {
		e.shards[i].entries = map[flowKey]*flowEntry{}
	}
	return nil
}

// extractKey builds the flow key for an Ethernet frame, or reports the
// packet unkeyable (non-IP, options, or a truncated transport header).
func extractKey(d []byte) (flowKey, bool) {
	var k flowKey
	if len(d) < 34 || d[12] != 0x08 || d[13] != 0x00 || d[14] != 0x45 {
		return k, false
	}
	copy(k[0:14], d[0:14])   // ether dst, src, type
	k[14] = d[14]            // version/IHL
	k[15] = d[15]            // TOS
	copy(k[16:18], d[20:22]) // flags + fragment offset
	k[18] = d[22]            // TTL
	k[19] = d[23]            // protocol
	copy(k[20:28], d[26:34]) // src, dst addresses
	proto := d[23]
	unfragmented := d[20]&0x1f == 0 && d[21] == 0
	if (proto == packet.IPProtoTCP || proto == packet.IPProtoUDP) && unfragmented {
		if len(d) < 38 {
			return k, false
		}
		copy(k[28:32], d[34:38])
	}
	return k, true
}

// fastEligible applies the per-packet hit criteria that the key cannot
// carry: an intact, unpadded IP packet within the length range already
// verified for this flow.
func fastEligible(d []byte, ent *flowEntry) bool {
	if len(d) < ent.minLen || len(d) > ent.maxLen {
		return false
	}
	totalLen := int(d[16])<<8 | int(d[17])
	if totalLen != len(d)-14 {
		return false
	}
	return packet.IP4Header(d[14:34]).ChecksumOK()
}

// applyTransform applies a recorded transformation to raw frame bytes:
// the egress Ethernet header replaces the ingress one and the TTL is
// decremented with the same RFC 1141 incremental checksum update
// DecIPTTL uses. Replay verification and the hit path share this code,
// so a verified entry reproduces the pipeline's bytes by construction.
func applyTransform(d []byte, ether *[14]byte, ttlDelta uint8) {
	copy(d[0:14], ether[:])
	h := packet.IP4Header(d[14:34])
	for i := uint8(0); i < ttlDelta; i++ {
		h.DecTTLIncremental()
	}
}

// Push handles ingress traffic (ports 0..M-1) and record taps
// (ports M..M+E-1).
func (e *FlowCache) Push(port int, p *packet.Packet) {
	if port >= e.nIngress {
		e.tap(port, p)
		return
	}
	sh := &e.shards[port]
	d := p.Data()
	key, keyable := extractKey(d)
	if !keyable {
		e.Output(port).Push(p)
		return
	}
	if ent := sh.entries[key]; ent != nil {
		if ent.gens == e.GuardSnapshot() {
			switch ent.state {
			case flowVerified:
				if fastEligible(d, ent) {
					atomic.AddInt64(&e.Hits, 1)
					ent.hits++
					p.Uniqueify()
					applyTransform(p.Data(), &ent.ether, ent.ttlDelta)
					e.Output(ent.out).Push(p)
					return
				}
				// Outside the verified envelope (new length extreme,
				// bad checksum, padding): take the slow path and widen
				// the envelope if the replay verifies again.
			case flowUncacheable:
				// Negative entry: known slow-path flow, skip recording.
				atomic.AddInt64(&e.Misses, 1)
				e.Output(port).Push(p)
				return
			case flowSwapped:
				// Transplanted across a hot-swap: re-record below.
			}
		} else {
			// Guarded state changed since the recording: discard and
			// re-record against the new state.
			atomic.AddInt64(&e.Invalidated, 1)
			delete(sh.entries, key)
		}
	}
	atomic.AddInt64(&e.Misses, 1)
	if sh.pending != nil || len(sh.entries) >= flowCacheMaxEntries {
		// Already recording (a looped topology re-entered the ingress)
		// or the shard is full: plain slow path.
		e.Output(port).Push(p)
		return
	}
	// Record this slow-path traversal. The guard snapshot is taken
	// before the traversal so a concurrent mutation during it leaves
	// the entry stale-marked rather than trusted.
	fp := &flowPending{
		owner:  e,
		key:    key,
		inCopy: append([]byte(nil), d...),
		gens:   e.GuardSnapshot(),
		out:    -1,
	}
	sh.pending = fp
	p.Anno.FlowPending = fp
	before := atomic.LoadInt64(&e.tapArrivals)
	e.Output(port).Push(p)
	emitted := atomic.LoadInt64(&e.tapArrivals) - before
	sh.pending = nil
	e.finishRecording(sh, fp, emitted)
}

// tap passes egress-bound traffic through to its queue, recording the
// arrival if the packet carries this cache's active recording mark.
func (e *FlowCache) tap(port int, p *packet.Packet) {
	atomic.AddInt64(&e.tapArrivals, 1)
	if fp, ok := p.Anno.FlowPending.(*flowPending); ok {
		p.Anno.FlowPending = nil
		if fp.owner == e {
			fp.arrivals++
			if fp.arrivals == 1 {
				fp.out = port
				fp.egress = append([]byte(nil), p.Data()...)
			}
		}
	}
	e.Output(port).Push(p)
}

// finishRecording inspects what the slow path did with the recorded
// packet and installs a verified entry, or a negative one when the
// effect is not representable. `emitted` is the total number of tap
// traversals observed during the slow-path push: it must be exactly one
// (the marked packet), or the pipeline generated side traffic — an ICMP
// redirect, an ARP query — that a fast-path replay would silently drop.
func (e *FlowCache) finishRecording(sh *flowShard, fp *flowPending, emitted int64) {
	ent := &flowEntry{state: flowUncacheable, gens: fp.gens}
	if fp.arrivals == 1 && emitted == 1 && e.deriveTransform(fp, ent) {
		ent.state = flowVerified
		ent.out = fp.out
		ent.minLen = len(fp.inCopy)
		ent.maxLen = len(fp.inCopy)
	} else {
		atomic.AddInt64(&e.Uncacheable, 1)
	}
	if old := sh.entries[fp.key]; old != nil && old.state == flowVerified && ent.state == flowVerified {
		// Widening an existing entry's length envelope.
		if old.minLen < ent.minLen {
			ent.minLen = old.minLen
		}
		if old.maxLen > ent.maxLen {
			ent.maxLen = old.maxLen
		}
		ent.hits = old.hits
	}
	sh.entries[fp.key] = ent
}

// deriveTransform extracts the candidate transformation from a recorded
// ingress/egress pair and replay-verifies it byte for byte.
func (e *FlowCache) deriveTransform(fp *flowPending, ent *flowEntry) bool {
	in, eg := fp.inCopy, fp.egress
	if len(eg) != len(in) || len(in) < 34 {
		return false
	}
	if eg[22] > in[22] {
		return false // TTL increased: not a decrement we can replay
	}
	copy(ent.ether[:], eg[0:14])
	ent.ttlDelta = in[22] - eg[22]
	cand := append([]byte(nil), in...)
	applyTransform(cand, &ent.ether, ent.ttlDelta)
	for i := range cand {
		if cand[i] != eg[i] {
			return false
		}
	}
	return true
}

// PushBatch processes a batch through the scalar path in order; hits,
// misses, and recordings interleave exactly as scalar execution would.
func (e *FlowCache) PushBatch(port int, ps []*packet.Packet) {
	for _, p := range ps {
		e.Push(port, p)
	}
}

// Entries returns the live entry count across all shards.
func (e *FlowCache) Entries() int {
	n := 0
	for i := range e.shards {
		n += len(e.shards[i].entries)
	}
	return n
}

// Flush drops every cache entry (the "flush" write handler).
func (e *FlowCache) Flush() {
	for i := range e.shards {
		e.shards[i].entries = map[flowKey]*flowEntry{}
	}
}

// Handlers exports cache statistics and a flush control.
func (e *FlowCache) Handlers() []core.Handler {
	return []core.Handler{
		intHandler("hits", func() int64 { return atomic.LoadInt64(&e.Hits) }),
		intHandler("misses", func() int64 { return atomic.LoadInt64(&e.Misses) }),
		intHandler("uncacheable", func() int64 { return atomic.LoadInt64(&e.Uncacheable) }),
		intHandler("invalidated", func() int64 { return atomic.LoadInt64(&e.Invalidated) }),
		intHandler("swap_demoted", func() int64 { return atomic.LoadInt64(&e.SwapDemoted) }),
		intHandler("entries", func() int64 { return int64(e.Entries()) }),
		{Name: "flush", Write: func(string) error { e.Flush(); return nil }},
	}
}

// FlowCacheState is a FlowCache's transferable state: the per-shard
// entry tables and the accumulated counters. Transplanted entries are
// demoted to flowSwapped — the replacement configuration may transform
// flows differently, so each flow re-verifies with one slow-path
// traversal before its fast path re-arms; SwapDemoted counts them as
// the deliberate, attributed cost of the swap. Guard generations
// travel at the router level (core.Hotswap copies them before element
// state moves), so the demoted entries' snapshots stay comparable.
type FlowCacheState struct {
	NIngress int
	NEgress  int
	Shards   []map[flowKey]*flowEntry

	Hits        int64
	Misses      int64
	Uncacheable int64
	Invalidated int64
	SwapDemoted int64
}

// SaveState hands the entry tables over, leaving the old element empty.
func (e *FlowCache) SaveState() interface{} {
	st := &FlowCacheState{
		NIngress:    e.nIngress,
		NEgress:     e.nEgress,
		Shards:      make([]map[flowKey]*flowEntry, len(e.shards)),
		Hits:        atomic.LoadInt64(&e.Hits),
		Misses:      atomic.LoadInt64(&e.Misses),
		Uncacheable: atomic.LoadInt64(&e.Uncacheable),
		Invalidated: atomic.LoadInt64(&e.Invalidated),
		SwapDemoted: atomic.LoadInt64(&e.SwapDemoted),
	}
	for i := range e.shards {
		st.Shards[i] = e.shards[i].entries
		e.shards[i].entries = map[flowKey]*flowEntry{}
	}
	return st
}

// RestoreState adopts the counters and entry tables, demoting every
// transplanted entry. A replacement whose port shape differs flushes
// instead (the entries' output indices would be meaningless), counting
// the flushed entries as demotions so the cost stays attributed.
func (e *FlowCache) RestoreState(state interface{}) error {
	st, ok := state.(*FlowCacheState)
	if !ok {
		return fmt.Errorf("FlowCache: foreign state %T", state)
	}
	atomic.StoreInt64(&e.Hits, st.Hits)
	atomic.StoreInt64(&e.Misses, st.Misses)
	atomic.StoreInt64(&e.Uncacheable, st.Uncacheable)
	atomic.StoreInt64(&e.Invalidated, st.Invalidated)
	atomic.StoreInt64(&e.SwapDemoted, st.SwapDemoted)
	demoted := int64(0)
	if st.NIngress != e.nIngress || st.NEgress != e.nEgress {
		for _, sh := range st.Shards {
			demoted += int64(len(sh))
		}
		atomic.AddInt64(&e.SwapDemoted, demoted)
		return nil
	}
	for i := range e.shards {
		for k, ent := range st.Shards[i] {
			ent.state = flowSwapped
			e.shards[i].entries[k] = ent
			demoted++
		}
	}
	atomic.AddInt64(&e.SwapDemoted, demoted)
	return nil
}
