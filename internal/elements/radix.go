package elements

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/packet"
)

// RadixIPLookup is Click's fast longest-prefix-match routing element: a
// binary radix (Patricia-style) trie over destination addresses. It
// accepts the same configuration as LookupIPRoute and behaves
// identically; the difference is lookup cost — O(address bits) instead
// of O(table size) — which matters for large tables.
type RadixIPLookup struct {
	core.Base
	table   LookupIPRoute // reuse configuration parsing and semantics
	root    *radixNode
	NoRoute int64
}

type radixNode struct {
	child [2]*radixNode
	// leaf is non-nil when a route terminates at this node.
	leaf *route
}

// Configure parses the route table and builds the trie.
func (e *RadixIPLookup) Configure(args []string) error {
	if err := e.table.Configure(args); err != nil {
		return err
	}
	e.root = &radixNode{}
	for i := range e.table.routes {
		r := &e.table.routes[i]
		n := e.root
		for b := 0; b < r.maskLen; b++ {
			bit := (r.dst >> (31 - b)) & 1
			if n.child[bit] == nil {
				n.child[bit] = &radixNode{}
			}
			n = n.child[bit]
		}
		// First route wins on exact duplicates, as in the linear scan
		// (which keeps the earliest longest match).
		if n.leaf == nil {
			n.leaf = r
		}
	}
	return nil
}

// Lookup returns the longest-prefix route for an address.
func (e *RadixIPLookup) Lookup(a packet.IP4) (route, bool) {
	v := a.Uint32()
	var best *route
	n := e.root
	for b := 0; b < 32 && n != nil; b++ {
		if n.leaf != nil {
			best = n.leaf
		}
		n = n.child[(v>>(31-b))&1]
	}
	if n != nil && n.leaf != nil {
		best = n.leaf
	}
	if best == nil {
		return route{}, false
	}
	return *best, true
}

// Push routes on the destination annotation, like LookupIPRoute.
func (e *RadixIPLookup) Push(port int, p *packet.Packet) {
	e.Work()
	dst := p.Anno.DstIPAnno
	if dst.IsZero() {
		if ih, ok := p.IPHeader(); ok {
			dst = ih.Dst()
		}
	}
	r, ok := e.Lookup(dst)
	if !ok || r.port >= e.NOutputs() {
		atomic.AddInt64(&e.NoRoute, 1)
		e.Drop(p)
		return
	}
	if !r.gw.IsZero() {
		p.Anno.DstIPAnno = r.gw
	} else {
		p.Anno.DstIPAnno = dst
	}
	e.Output(r.port).Push(p)
}

// Handlers exports routing statistics.
func (e *RadixIPLookup) Handlers() []core.Handler {
	return []core.Handler{intHandler("no_route", func() int64 { return e.NoRoute })}
}
