// Package elements is the Click element library: the packet-processing
// classes router configurations instantiate. Each class registers a
// specification (processing code, flow code, port counts — §5.3) plus a
// runtime factory into a core.Registry.
package elements

// Per-class cost-model work charges, in simulated CPU cycles per
// invocation. These constants are this reproduction's calibration
// surface: they are set so the unoptimized Figure 1 IP router's
// forwarding path costs ≈1160 cycles (1657 ns at 700 MHz, Figure 8) and
// so the relative savings of the optimizers land near Figure 9. The
// *structure* of the model is what matters: combo elements cost less
// than the sum of their parts because general-purpose glue (per-element
// entry/exit, re-validation, annotation shuffling) disappears, and
// classifier costs scale with decision-tree steps.
const (
	costFromDevice      = 75 // per-packet push-side work (beyond device interaction)
	costToDevicePull    = 50 // per-packet pull-side work
	costClassifierBase  = 40 // generic Classifier entry/exit (Figure 3a loop setup)
	costClassifierStep  = 7  // one interpreted decision-tree node
	costFastClassBase   = 14 // compiled classifier entry/exit
	costFastClassStep   = 2  // one compiled (inlined-constant) node
	costPaint           = 18
	costStrip           = 14
	costCheckIPHeader   = 115 // checksum + length + bad-src checks
	costGetIPAddress    = 24
	costLookupIPRoute   = 110 // linear-scan LPM over a small static table
	costLookupPerRoute  = 3   // additional cost per table entry scanned
	costDropBroadcasts  = 20
	costCheckPaint      = 24
	costIPGWOptions     = 30
	costFixIPSrc        = 22
	costDecIPTTL        = 55  // TTL check + incremental checksum
	costIPFragmenter    = 40  // MTU check (fragmentation itself is data-dependent)
	costARPQuerier      = 105 // table lookup + Ethernet encapsulation
	costARPResponder    = 90
	costQueuePush       = 50
	costQueuePull       = 32
	costQueueEmptyCheck = 5
	costTee             = 30
	costStaticSwitch    = 12
	costFlowSteer       = 28 // 5-tuple hash over 13 header bytes
	costCounter         = 18
	costDiscard         = 8
	costNull            = 10
	costAlign           = 80 // data copy when realignment needed
	costEtherEncap      = 55
	costHostEtherFilt   = 35
	costRED             = 70
	costICMPError       = 300 // builds a new packet; off the fast path
	costSource          = 40

	// Combo elements: the fused implementations avoid per-element
	// entry/exit and redundant header re-validation, so they cost
	// about 55-60% of their components (this is the general-purpose
	// vs. special-purpose gap of §3).
	costIPInputCombo  = 80 // vs Paint+Strip+CheckIPHeader+GetIPAddress = 215
	costIPOutputCombo = 88 // vs DropBroadcasts+...+IPFragmenter = 211
	costEtherEncapARP = 70 // ARP-eliminated static encapsulation vs ARPQuerier = 130

	// Device interaction charges. Figure 8 reports 701 ns receiving and
	// 547 ns transmitting on the 700 MHz platform; each includes one
	// compulsory cache miss (~112 ns) charged separately via MemFetch,
	// so the cycle parts below are 589 ns and 435 ns at 700 MHz.
	costRxDeviceInteraction = 412
	costTxDeviceInteraction = 304
)
