package elements

import (
	"sync"
	"testing"

	"repro/internal/packet"
)

func seqPacket(i int) *packet.Packet {
	p := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
	p.Data()[42], p.Data()[43] = byte(i>>8), byte(i)
	return p
}

func seqOf(p *packet.Packet) int {
	return int(p.Data()[42])<<8 | int(p.Data()[43])
}

func TestQueueBatch(t *testing.T) {
	rt := buildRT(t, "i :: Idle -> q :: Queue(6) -> x :: Idle;")
	q := rt.Find("q").(*Queue)
	ps := make([]*packet.Packet, 8)
	for i := range ps {
		ps[i] = seqPacket(i)
	}
	q.PushBatch(0, ps)
	if q.Len() != 6 || q.Drops != 2 {
		t.Fatalf("len=%d drops=%d after 8 into capacity 6", q.Len(), q.Drops)
	}
	buf := make([]*packet.Packet, 4)
	if n := q.PullBatch(0, buf); n != 4 {
		t.Fatalf("PullBatch returned %d, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if seqOf(buf[i]) != i {
			t.Fatalf("FIFO order violated at %d: got seq %d", i, seqOf(buf[i]))
		}
	}
	if n := q.PullBatch(0, buf); n != 2 || seqOf(buf[0]) != 4 || seqOf(buf[1]) != 5 {
		t.Fatalf("tail dequeue wrong: n=%d", n)
	}
	if n := q.PullBatch(0, buf); n != 0 {
		t.Fatalf("drained queue returned %d", n)
	}
}

func TestQueueBatchConcurrent(t *testing.T) {
	rt := buildRT(t, "i :: Idle -> q :: Queue(10000) -> x :: Idle;")
	q := rt.Find("q").(*Queue)
	q.EnableSync()
	// This test drives the queue from its own goroutines with no
	// scheduler in front, so it arms the telemetry itself.
	q.Stats().EnableShared()
	const producers, per = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([]*packet.Packet, 10)
			for i := 0; i < per/10; i++ {
				for j := range batch {
					batch[j] = udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
				}
				q.PushBatch(0, batch)
			}
		}()
	}
	drained := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]*packet.Packet, 32)
		for drained < producers*per {
			n := q.PullBatch(0, buf)
			for i := 0; i < n; i++ {
				buf[i].Kill()
			}
			drained += n
		}
	}()
	wg.Wait()
	<-done
	if drained != producers*per {
		t.Fatalf("drained %d of %d packets", drained, producers*per)
	}
}

func TestTeeBatch(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> t :: Tee;
t [0] -> s0 :: TestSink;
t [1] -> s1 :: TestSink;
`)
	te := rt.Find("t").(*Tee)
	ps := make([]*packet.Packet, 5)
	for i := range ps {
		ps[i] = seqPacket(i)
	}
	orig := append([]*packet.Packet(nil), ps...)
	te.PushBatch(0, ps)
	s0, s1 := rt.Find("s0").(*sink), rt.Find("s1").(*sink)
	if len(s0.got) != 5 || len(s1.got) != 5 {
		t.Fatalf("sinks got %d/%d packets, want 5/5", len(s0.got), len(s1.got))
	}
	for i := 0; i < 5; i++ {
		if seqOf(s0.got[i]) != i || seqOf(s1.got[i]) != i {
			t.Fatalf("order broken at %d", i)
		}
		// The last output receives the originals; earlier outputs get
		// independent clones.
		if s1.got[i] != orig[i] {
			t.Errorf("final output did not receive original %d", i)
		}
		if s0.got[i] == orig[i] {
			t.Errorf("clone output shares packet %d with the original", i)
		}
	}
}

func TestClassifierBatchRunGrouping(t *testing.T) {
	rt := buildWith(t, `
c :: Classifier(42/00, 42/01, -);
i :: Idle -> c;
c [0] -> s0 :: TestSink;
c [1] -> s1 :: TestSink;
c [2] -> s2 :: TestSink;
`)
	c := rt.Find("c").(*Classifier)
	// Interleave the classes so run grouping has to split and regroup:
	// seq high byte steers (0,0,1,1,0,2,2,1).
	pattern := []int{0, 0, 1, 1, 0, 2, 2, 1}
	ps := make([]*packet.Packet, len(pattern))
	for i, class := range pattern {
		ps[i] = seqPacket(class<<8 | i)
	}
	c.PushBatch(0, ps)
	want := map[string][]int{
		"s0": {0, 1, 4},
		"s1": {2, 3, 7},
		"s2": {5, 6},
	}
	for name, idxs := range want {
		s := rt.Find(name).(*sink)
		if len(s.got) != len(idxs) {
			t.Fatalf("%s got %d packets, want %d", name, len(s.got), len(idxs))
		}
		for i, p := range s.got {
			if seqOf(p)&0xff != idxs[i] {
				t.Errorf("%s packet %d: seq %d, want %d", name, i, seqOf(p)&0xff, idxs[i])
			}
		}
	}
	if c.Matched != int64(len(pattern)) {
		t.Errorf("Matched = %d, want %d", c.Matched, len(pattern))
	}
}
