package elements

import (
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/simcpu"
)

// buildRT assembles a router from config text with the builtin registry.
func buildRT(t *testing.T, config string) *core.Router {
	t.Helper()
	rt, err := core.BuildFromText(config, "test", NewRegistry(), core.BuildOptions{})
	if err != nil {
		t.Fatalf("build failed: %v\nconfig:\n%s", err, config)
	}
	return rt
}

func udpPacket(src, dst packet.IP4) *packet.Packet {
	return packet.BuildUDP4(
		packet.EtherAddr{0, 1, 2, 3, 4, 5}, packet.EtherAddr{6, 7, 8, 9, 10, 11},
		src, dst, 1234, 5678, make([]byte, 14))
}

func TestToDeviceNeedsDevice(t *testing.T) {
	_, err := core.BuildFromText(
		"src :: InfiniteSource(5) -> q :: Queue(3) -> d :: ToDevice(x);",
		"test", NewRegistry(), core.BuildOptions{})
	if err == nil {
		t.Error("ToDevice built without a device in the environment")
	}
}

func TestQueueDirect(t *testing.T) {
	rt := buildRT(t, "i :: Idle -> q :: Queue(2) -> x :: Idle;")
	q := rt.Find("q").(*Queue)
	p1, p2, p3 := udpPacket(packet.IP4{1}, packet.IP4{2}), udpPacket(packet.IP4{1}, packet.IP4{2}), udpPacket(packet.IP4{1}, packet.IP4{2})
	q.Push(0, p1)
	q.Push(0, p2)
	q.Push(0, p3) // over capacity
	if q.Len() != 2 || q.Drops != 1 {
		t.Errorf("len=%d drops=%d", q.Len(), q.Drops)
	}
	if got := q.Pull(0); got != p1 {
		t.Error("FIFO order violated")
	}
	if got := q.Pull(0); got != p2 {
		t.Error("FIFO order violated")
	}
	if q.Pull(0) != nil {
		t.Error("empty queue returned packet")
	}
	if q.HighWater != 2 {
		t.Errorf("high water = %d", q.HighWater)
	}
}

func TestQueueBadConfig(t *testing.T) {
	for _, cfg := range []string{"Queue(0)", "Queue(-5)", "Queue(x)", "Queue(1, 2)"} {
		_, err := core.BuildFromText("i :: Idle -> q :: "+cfg+" -> x :: Idle;", "test", NewRegistry(), core.BuildOptions{})
		if err == nil {
			t.Errorf("%s accepted", cfg)
		}
	}
}

// sink collects packets for assertions. It registers as a test-only
// class.
type sink struct {
	core.Base
	got []*packet.Packet
}

func (s *sink) Push(port int, p *packet.Packet) { s.got = append(s.got, p) }

// testRegistry returns the builtin registry plus TestSink (push sink
// with any number of inputs).
func testRegistry() *core.Registry {
	reg := NewRegistry()
	reg.Register(&core.Spec{
		Name: "TestSink", Processing: "h/",
		Make: func() core.Element { return &sink{} },
	})
	return reg
}

func buildWith(t *testing.T, config string) *core.Router {
	t.Helper()
	rt, err := core.BuildFromText(config, "test", testRegistry(), core.BuildOptions{})
	if err != nil {
		t.Fatalf("build failed: %v\nconfig:\n%s", err, config)
	}
	return rt
}

func TestClassifierElement(t *testing.T) {
	rt := buildWith(t, `
c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
i :: Idle -> c;
c [0] -> s0 :: TestSink;
c [1] -> s1 :: TestSink;
c [2] -> s2 :: TestSink;
c [3] -> s3 :: TestSink;
`)
	c := rt.Find("c").(*Classifier)
	ip := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
	c.Push(0, ip)
	if s2 := rt.Find("s2").(*sink); len(s2.got) != 1 {
		t.Error("IP packet not classified to port 2")
	}
	arp := packet.Make(packet.DefaultHeadroom, 42, 0)
	eh, _ := arp.EtherHeader()
	eh.SetType(packet.EtherTypeARP)
	arp.Data()[20], arp.Data()[21] = 0, 1
	c.Push(0, arp)
	if s0 := rt.Find("s0").(*sink); len(s0.got) != 1 {
		t.Error("ARP request not classified to port 0")
	}
}

func TestCheckIPHeaderElement(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> c :: CheckIPHeader(10.0.0.255 10.0.2.255);
c [0] -> good :: TestSink;
c [1] -> bad :: TestSink;
`)
	c := rt.Find("c").(*CheckIPHeader)
	good := rt.Find("good").(*sink)
	bad := rt.Find("bad").(*sink)

	p := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
	p.Pull(14) // strip Ethernet
	c.Push(0, p)
	if len(good.got) != 1 {
		t.Fatal("valid header rejected")
	}
	if good.got[0].Anno.NetworkOffset != 0 {
		t.Error("network offset not set")
	}

	// Corrupt checksum.
	p2 := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
	p2.Pull(14)
	p2.Data()[10] ^= 0xff
	c.Push(0, p2)
	if len(bad.got) != 1 {
		t.Error("corrupt checksum accepted")
	}

	// Bad source address.
	p3 := udpPacket(packet.MakeIP4(10, 0, 0, 255), packet.MakeIP4(2, 2, 2, 2))
	p3.Pull(14)
	c.Push(0, p3)
	if len(bad.got) != 2 {
		t.Error("bad source accepted")
	}

	// Short packet.
	p4 := packet.Make(0, 10, 0)
	c.Push(0, p4)
	if len(bad.got) != 3 {
		t.Error("short packet accepted")
	}
	if c.Good != 1 || c.Bad != 3 {
		t.Errorf("counters good=%d bad=%d", c.Good, c.Bad)
	}
}

func TestLookupIPRouteLPM(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> r :: LookupIPRoute(18.26.4.0/24 0, 18.26.0.0/16 18.26.4.1 1, 0.0.0.0/0 10.0.0.1 2);
r [0] -> s0 :: TestSink;
r [1] -> s1 :: TestSink;
r [2] -> s2 :: TestSink;
`)
	r := rt.Find("r").(*LookupIPRoute)
	cases := []struct {
		dst  packet.IP4
		port int
		gw   packet.IP4
	}{
		{packet.MakeIP4(18, 26, 4, 9), 0, packet.MakeIP4(18, 26, 4, 9)}, // direct: anno = dst
		{packet.MakeIP4(18, 26, 7, 9), 1, packet.MakeIP4(18, 26, 4, 1)}, // via gateway
		{packet.MakeIP4(99, 9, 9, 9), 2, packet.MakeIP4(10, 0, 0, 1)},   // default route
	}
	sinks := []*sink{rt.Find("s0").(*sink), rt.Find("s1").(*sink), rt.Find("s2").(*sink)}
	for i, c := range cases {
		p := udpPacket(packet.MakeIP4(5, 5, 5, 5), c.dst)
		p.Pull(14)
		p.Anno.NetworkOffset = 0
		p.Anno.DstIPAnno = c.dst
		r.Push(0, p)
		if len(sinks[c.port].got) == 0 {
			t.Fatalf("case %d: no packet on port %d", i, c.port)
		}
		got := sinks[c.port].got[len(sinks[c.port].got)-1]
		if got.Anno.DstIPAnno != c.gw {
			t.Errorf("case %d: next hop = %v, want %v", i, got.Anno.DstIPAnno, c.gw)
		}
	}
}

func TestDecIPTTL(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> d :: DecIPTTL;
d [0] -> ok :: TestSink;
d [1] -> exp :: TestSink;
`)
	d := rt.Find("d").(*DecIPTTL)
	p := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
	p.Pull(14)
	p.Anno.NetworkOffset = 0
	d.Push(0, p)
	okSink := rt.Find("ok").(*sink)
	if len(okSink.got) != 1 {
		t.Fatal("packet not forwarded")
	}
	h, _ := okSink.got[0].IPHeader()
	if h.TTL() != 63 {
		t.Errorf("TTL = %d, want 63", h.TTL())
	}
	if !h.ChecksumOK() {
		t.Error("incremental checksum wrong")
	}

	// Expired packet.
	p2 := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
	p2.Pull(14)
	p2.Anno.NetworkOffset = 0
	h2, _ := p2.IPHeader()
	h2.SetTTL(1)
	h2.UpdateChecksum()
	d.Push(0, p2)
	if exp := rt.Find("exp").(*sink); len(exp.got) != 1 {
		t.Error("expired packet not diverted")
	}
	if d.Expired != 1 {
		t.Errorf("Expired = %d", d.Expired)
	}
}

func TestARPQuerierFlow(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> [0] a :: ARPQuerier(10.0.0.1, 00:01:02:03:04:05);
j :: Idle -> [1] a;
a -> out :: TestSink;
`)
	a := rt.Find("a").(*ARPQuerier)
	out := rt.Find("out").(*sink)

	// Unknown destination: emits an ARP query and holds the packet.
	p := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(10, 0, 0, 2))
	p.Pull(14)
	p.Anno.NetworkOffset = 0
	p.Anno.DstIPAnno = packet.MakeIP4(10, 0, 0, 2)
	a.Push(0, p)
	if len(out.got) != 1 {
		t.Fatalf("expected 1 query, got %d packets", len(out.got))
	}
	q := out.got[0]
	eh, _ := q.EtherHeader()
	if eh.Type() != packet.EtherTypeARP || !eh.Dst().IsBroadcast() {
		t.Error("query not an ARP broadcast")
	}
	ah, _ := q.ARPHeader(true)
	if ah.Op() != packet.ARPOpRequest || ah.TargetIP() != packet.MakeIP4(10, 0, 0, 2) {
		t.Error("query fields wrong")
	}

	// Deliver the response: held packet is released, encapsulated.
	resp := packet.Make(packet.DefaultHeadroom, packet.EtherHeaderLen+packet.ARPHeaderLen, 0)
	reh, _ := resp.EtherHeader()
	reh.SetType(packet.EtherTypeARP)
	rah, _ := resp.ARPHeader(true)
	rah.InitARP()
	rah.SetOp(packet.ARPOpReply)
	rah.SetSenderIP(packet.MakeIP4(10, 0, 0, 2))
	rah.SetSenderEther(packet.EtherAddr{9, 9, 9, 9, 9, 9})
	a.Push(1, resp)
	if len(out.got) != 2 {
		t.Fatalf("held packet not released; %d packets out", len(out.got))
	}
	rel := out.got[1]
	reh2, _ := rel.EtherHeader()
	if reh2.Type() != packet.EtherTypeIP || reh2.Dst() != (packet.EtherAddr{9, 9, 9, 9, 9, 9}) {
		t.Error("released packet not encapsulated with learned address")
	}

	// Second packet to the same destination: direct encapsulation.
	p2 := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(10, 0, 0, 2))
	p2.Pull(14)
	p2.Anno.NetworkOffset = 0
	p2.Anno.DstIPAnno = packet.MakeIP4(10, 0, 0, 2)
	a.Push(0, p2)
	if len(out.got) != 3 {
		t.Fatal("known destination not forwarded")
	}
	if a.Queries != 1 || a.Responses != 1 {
		t.Errorf("queries=%d responses=%d", a.Queries, a.Responses)
	}
}

func TestARPResponder(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> a :: ARPResponder(10.0.0.1, 00:01:02:03:04:05) -> out :: TestSink;
`)
	a := rt.Find("a").(*ARPResponder)
	out := rt.Find("out").(*sink)

	req := packet.Make(packet.DefaultHeadroom, packet.EtherHeaderLen+packet.ARPHeaderLen, 0)
	eh, _ := req.EtherHeader()
	eh.SetType(packet.EtherTypeARP)
	ah, _ := req.ARPHeader(true)
	ah.InitARP()
	ah.SetOp(packet.ARPOpRequest)
	ah.SetSenderIP(packet.MakeIP4(10, 0, 0, 2))
	ah.SetSenderEther(packet.EtherAddr{7, 7, 7, 7, 7, 7})
	ah.SetTargetIP(packet.MakeIP4(10, 0, 0, 1))
	a.Push(0, req)
	if len(out.got) != 1 {
		t.Fatal("no reply")
	}
	rh, _ := out.got[0].ARPHeader(true)
	if rh.Op() != packet.ARPOpReply || rh.SenderIP() != packet.MakeIP4(10, 0, 0, 1) {
		t.Error("reply fields wrong")
	}
	if rh.TargetEther() != (packet.EtherAddr{7, 7, 7, 7, 7, 7}) {
		t.Error("reply not addressed to requester")
	}

	// Request for someone else: dropped.
	req2 := packet.Make(packet.DefaultHeadroom, packet.EtherHeaderLen+packet.ARPHeaderLen, 0)
	ah2, _ := req2.ARPHeader(true)
	ah2.InitARP()
	ah2.SetOp(packet.ARPOpRequest)
	ah2.SetTargetIP(packet.MakeIP4(10, 0, 0, 99))
	a.Push(0, req2)
	if len(out.got) != 1 {
		t.Error("reply sent for foreign address")
	}
}

func TestPaintAndCheckPaint(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> p :: Paint(3) -> cp :: CheckPaint(3);
cp [0] -> fwd :: TestSink;
cp [1] -> redir :: TestSink;
`)
	p := rt.Find("p").(*Paint)
	fwd := rt.Find("fwd").(*sink)
	redir := rt.Find("redir").(*sink)
	pkt := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
	p.Push(0, pkt)
	if len(fwd.got) != 1 || len(redir.got) != 1 {
		t.Errorf("fwd=%d redir=%d; CheckPaint must clone to output 1 and forward", len(fwd.got), len(redir.got))
	}

	// Different paint: no redirect.
	cp := rt.Find("cp").(*CheckPaint)
	pkt2 := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
	pkt2.Anno.Paint = 5
	cp.Push(0, pkt2)
	if len(fwd.got) != 2 || len(redir.got) != 1 {
		t.Error("unpainted packet diverted")
	}
}

func TestStripAndEtherEncap(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> s :: Strip(14) -> e :: EtherEncap(0800, 00:01:02:03:04:05, 06:07:08:09:0a:0b) -> out :: TestSink;
`)
	s := rt.Find("s").(*Strip)
	out := rt.Find("out").(*sink)
	pkt := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
	n := pkt.Len()
	s.Push(0, pkt)
	if len(out.got) != 1 {
		t.Fatal("packet lost")
	}
	got := out.got[0]
	if got.Len() != n {
		t.Errorf("length changed: %d -> %d", n, got.Len())
	}
	eh, _ := got.EtherHeader()
	if eh.Type() != packet.EtherTypeIP || eh.Src() != (packet.EtherAddr{0, 1, 2, 3, 4, 5}) {
		t.Error("new header wrong")
	}
}

func TestIPFragmenter(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> f :: IPFragmenter(576);
f [0] -> out :: TestSink;
f [1] -> df :: TestSink;
`)
	f := rt.Find("f").(*IPFragmenter)
	out := rt.Find("out").(*sink)

	big := packet.BuildUDP4(packet.EtherAddr{}, packet.EtherAddr{},
		packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 1, 2, make([]byte, 1400))
	big.Pull(14)
	big.Anno.NetworkOffset = 0
	f.Push(0, big)
	if len(out.got) < 3 {
		t.Fatalf("expected >= 3 fragments, got %d", len(out.got))
	}
	total := 0
	for i, fr := range out.got {
		h, ok := fr.IPHeader()
		if !ok {
			t.Fatalf("fragment %d has no IP header", i)
		}
		if !h.ChecksumOK() {
			t.Errorf("fragment %d checksum bad", i)
		}
		if fr.Len() > 576 {
			t.Errorf("fragment %d exceeds MTU: %d", i, fr.Len())
		}
		total += fr.Len() - h.HeaderLen()
		if i < len(out.got)-1 && !h.MoreFragments() {
			t.Errorf("fragment %d missing MF", i)
		}
		if i == len(out.got)-1 && h.MoreFragments() {
			t.Error("last fragment has MF set")
		}
	}
	if total != 1400+8 { // UDP header + payload
		t.Errorf("reassembled payload = %d bytes, want %d", total, 1408)
	}

	// DF packet to output 1.
	dfp := packet.BuildUDP4(packet.EtherAddr{}, packet.EtherAddr{},
		packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 1, 2, make([]byte, 1400))
	dfp.Pull(14)
	dfp.Anno.NetworkOffset = 0
	h, _ := dfp.IPHeader()
	h.SetFragOff(0x4000)
	h.UpdateChecksum()
	f.Push(0, dfp)
	if dfs := rt.Find("df").(*sink); len(dfs.got) != 1 {
		t.Error("DF packet not diverted")
	}
}

func TestICMPError(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> e :: ICMPError(10.0.0.1, timeexceeded, 0) -> out :: TestSink;
`)
	e := rt.Find("e").(*ICMPError)
	out := rt.Find("out").(*sink)
	p := udpPacket(packet.MakeIP4(5, 5, 5, 5), packet.MakeIP4(6, 6, 6, 6))
	p.Pull(14)
	p.Anno.NetworkOffset = 0
	e.Push(0, p)
	if len(out.got) != 1 {
		t.Fatal("no error packet")
	}
	ep := out.got[0]
	h, _ := ep.IPHeader()
	if h.Proto() != packet.IPProtoICMP || h.Dst() != packet.MakeIP4(5, 5, 5, 5) {
		t.Error("error packet addressing wrong")
	}
	if !ep.Anno.FixIPSrc {
		t.Error("FixIPSrc annotation not set")
	}
	icmp := ep.Data()[20:]
	if icmp[0] != packet.ICMPTimeExceeded {
		t.Errorf("type = %d", icmp[0])
	}
	if packet.InternetChecksum(icmp) != 0 {
		t.Error("ICMP checksum bad")
	}

	// ICMP-about-ICMP suppressed.
	p2 := udpPacket(packet.MakeIP4(5, 5, 5, 5), packet.MakeIP4(6, 6, 6, 6))
	p2.Pull(14)
	p2.Anno.NetworkOffset = 0
	h2, _ := p2.IPHeader()
	h2.SetProto(packet.IPProtoICMP)
	h2.UpdateChecksum()
	e.Push(0, p2)
	if len(out.got) != 1 {
		t.Error("generated error about ICMP")
	}
}

func TestTeeClones(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> t :: Tee;
t [0] -> a :: TestSink;
t [1] -> b :: TestSink;
t [2] -> c :: TestSink;
`)
	te := rt.Find("t").(*Tee)
	pkt := udpPacket(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2))
	te.Push(0, pkt)
	a, b, c := rt.Find("a").(*sink), rt.Find("b").(*sink), rt.Find("c").(*sink)
	if len(a.got) != 1 || len(b.got) != 1 || len(c.got) != 1 {
		t.Fatal("Tee did not clone to all outputs")
	}
	// Writing to one clone must not affect the others.
	a.got[0].WritableData()[0] = 0xEE
	if b.got[0].Data()[0] == 0xEE {
		t.Error("clones share mutable data")
	}
}

func TestStaticSwitch(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> sw :: StaticSwitch(1);
sw [0] -> a :: TestSink;
sw [1] -> b :: TestSink;
`)
	sw := rt.Find("sw").(*StaticSwitch)
	sw.Push(0, udpPacket(packet.IP4{1}, packet.IP4{2}))
	if b := rt.Find("b").(*sink); len(b.got) != 1 {
		t.Error("StaticSwitch(1) did not route to port 1")
	}
	if a := rt.Find("a").(*sink); len(a.got) != 0 {
		t.Error("StaticSwitch leaked to port 0")
	}
}

func TestIPInputComboMatchesComponents(t *testing.T) {
	// The combo must behave exactly like Paint -> Strip -> CheckIPHeader
	// -> GetIPAddress.
	general := buildWith(t, `
i :: Idle -> p :: Paint(1) -> Strip(14) -> c :: CheckIPHeader() -> g :: GetIPAddress(16) -> out :: TestSink;
c [1] -> bad :: TestSink;
`)
	combo := buildWith(t, `
i :: Idle -> ic :: IPInputCombo(1, , 16);
ic [0] -> out :: TestSink;
ic [1] -> bad :: TestSink;
`)
	drive := func(rt *core.Router, entry string, pkt *packet.Packet) (outp, badp []*packet.Packet) {
		rt.Find(entry).(core.Element).Push(0, pkt)
		return rt.Find("out").(*sink).got, rt.Find("bad").(*sink).got
	}
	mk := func() *packet.Packet {
		return udpPacket(packet.MakeIP4(3, 3, 3, 3), packet.MakeIP4(4, 4, 4, 4))
	}
	o1, b1 := drive(general, "p", mk())
	o2, b2 := drive(combo, "ic", mk())
	if len(o1) != 1 || len(o2) != 1 || len(b1) != 0 || len(b2) != 0 {
		t.Fatalf("outcomes differ: general %d/%d combo %d/%d", len(o1), len(b1), len(o2), len(b2))
	}
	g, c := o1[0], o2[0]
	if g.Len() != c.Len() {
		t.Errorf("lengths differ: %d vs %d", g.Len(), c.Len())
	}
	if g.Anno.Paint != c.Anno.Paint || g.Anno.DstIPAnno != c.Anno.DstIPAnno {
		t.Errorf("annotations differ: %+v vs %+v", g.Anno, c.Anno)
	}

	// Bad packet handling equivalence.
	mkBad := func() *packet.Packet {
		p := mk()
		p.Data()[24] ^= 0xff // corrupt IP checksum
		return p
	}
	_, b1 = drive(general, "p", mkBad())
	_, b2 = drive(combo, "ic", mkBad())
	if len(b1) != 1 || len(b2) != 1 {
		t.Errorf("bad-packet outcomes differ: %d vs %d", len(b1), len(b2))
	}
}

func TestIPOutputComboMatchesComponents(t *testing.T) {
	general := buildWith(t, `
i :: Idle -> db :: DropBroadcasts -> cp :: CheckPaint(1) -> gio :: IPGWOptions(10.0.0.1) -> fs :: FixIPSrc(10.0.0.1) -> dt :: DecIPTTL -> fr :: IPFragmenter(1500) -> out :: TestSink;
cp [1] -> redir :: TestSink;
gio [1] -> opt :: TestSink;
dt [1] -> ttl :: TestSink;
fr [1] -> frag :: TestSink;
`)
	combo := buildWith(t, `
i :: Idle -> oc :: IPOutputCombo(1, 10.0.0.1, 1500);
oc [0] -> out :: TestSink;
oc [1] -> redir :: TestSink;
oc [2] -> opt :: TestSink;
oc [3] -> ttl :: TestSink;
oc [4] -> frag :: TestSink;
`)
	type outcome struct{ out, redir, opt, ttl, frag int }
	drive := func(rt *core.Router, entry string, pkt *packet.Packet) outcome {
		rt.Find(entry).(core.Element).Push(0, pkt)
		g := func(n string) int { return len(rt.Find(n).(*sink).got) }
		return outcome{g("out"), g("redir"), g("opt"), g("ttl"), g("frag")}
	}
	mk := func(mut func(*packet.Packet)) func() *packet.Packet {
		return func() *packet.Packet {
			p := udpPacket(packet.MakeIP4(3, 3, 3, 3), packet.MakeIP4(4, 4, 4, 4))
			p.Pull(14)
			p.Anno.NetworkOffset = 0
			if mut != nil {
				mut(p)
			}
			return p
		}
	}
	cases := []struct {
		name string
		mk   func() *packet.Packet
	}{
		{"normal", mk(nil)},
		{"painted", mk(func(p *packet.Packet) { p.Anno.Paint = 1 })},
		{"broadcast", mk(func(p *packet.Packet) { p.Anno.MACBroadcast = true })},
		{"expired", mk(func(p *packet.Packet) {
			h, _ := p.IPHeader()
			h.SetTTL(1)
			h.UpdateChecksum()
		})},
		{"fixsrc", mk(func(p *packet.Packet) { p.Anno.FixIPSrc = true })},
	}
	for _, c := range cases {
		g := drive(general, "db", c.mk())
		co := drive(combo, "oc", c.mk())
		if g != co {
			t.Errorf("%s: outcomes differ: general %+v combo %+v", c.name, g, co)
		}
	}
	// TTL decrement equivalence on the forwarded packet.
	gp := general.Find("out").(*sink).got
	cp := combo.Find("out").(*sink).got
	if len(gp) > 0 && len(cp) > 0 {
		h1, _ := gp[0].IPHeader()
		h2, _ := cp[0].IPHeader()
		if h1.TTL() != h2.TTL() {
			t.Errorf("TTL differs: %d vs %d", h1.TTL(), h2.TTL())
		}
		if !h2.ChecksumOK() {
			t.Error("combo checksum bad")
		}
	}
}

func TestAlignElement(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> a :: Align(4, 2) -> out :: TestSink;
`)
	a := rt.Find("a").(*Align)
	p := packet.Make(13, 20, 0) // offset 13 % 4 = 1
	a.Push(0, p)
	out := rt.Find("out").(*sink)
	if out.got[0].AlignOffset(4) != 2 {
		t.Errorf("alignment = %d, want 2", out.got[0].AlignOffset(4))
	}
	if a.Copies != 1 {
		t.Errorf("Copies = %d", a.Copies)
	}
	// Already aligned: no copy.
	p2 := packet.Make(14, 20, 0)
	a.Push(0, p2)
	if a.Copies != 1 {
		t.Error("unnecessary copy")
	}
}

func TestHostEtherFilter(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> f :: HostEtherFilter(00:01:02:03:04:05);
f [0] -> mine :: TestSink;
f [1] -> other :: TestSink;
`)
	f := rt.Find("f").(*HostEtherFilter)
	mine := rt.Find("mine").(*sink)
	other := rt.Find("other").(*sink)

	forUs := udpPacket(packet.IP4{1}, packet.IP4{2})
	eh, _ := forUs.EtherHeader()
	eh.SetDst(packet.EtherAddr{0, 1, 2, 3, 4, 5})
	f.Push(0, forUs)
	if len(mine.got) != 1 {
		t.Error("our packet filtered")
	}

	bcast := udpPacket(packet.IP4{1}, packet.IP4{2})
	eh2, _ := bcast.EtherHeader()
	eh2.SetDst(packet.BroadcastEther)
	f.Push(0, bcast)
	if len(mine.got) != 2 || !mine.got[1].Anno.MACBroadcast {
		t.Error("broadcast not accepted/annotated")
	}

	foreign := udpPacket(packet.IP4{1}, packet.IP4{2})
	eh3, _ := foreign.EtherHeader()
	eh3.SetDst(packet.EtherAddr{0x02, 9, 9, 9, 9, 9})
	f.Push(0, foreign)
	if len(other.got) != 1 {
		t.Error("foreign packet not diverted")
	}
}

func TestDropBroadcasts(t *testing.T) {
	rt := buildWith(t, `i :: Idle -> d :: DropBroadcasts -> out :: TestSink;`)
	d := rt.Find("d").(*DropBroadcasts)
	p := udpPacket(packet.IP4{1}, packet.IP4{2})
	p.Anno.MACBroadcast = true
	d.Push(0, p)
	if len(rt.Find("out").(*sink).got) != 0 || d.Drops != 1 {
		t.Error("broadcast forwarded")
	}
	d.Push(0, udpPacket(packet.IP4{1}, packet.IP4{2}))
	if len(rt.Find("out").(*sink).got) != 1 {
		t.Error("unicast dropped")
	}
}

func TestREDDropsUnderLoad(t *testing.T) {
	rt := buildWith(t, `
i :: Idle -> r :: RED(2, 10, 1000) -> q :: Queue(100) -> x :: Idle;
`)
	r := rt.Find("r").(*RED)
	for i := 0; i < 50; i++ {
		r.Push(0, udpPacket(packet.IP4{1}, packet.IP4{2}))
	}
	q := rt.Find("q").(*Queue)
	if r.Drops == 0 {
		t.Error("RED never dropped despite full queue")
	}
	if q.Len() >= 50 {
		t.Error("queue absorbed everything")
	}
}

func TestREDPassesWhenBelowThreshold(t *testing.T) {
	rt := buildWith(t, `i :: Idle -> r :: RED(5, 10, 1000) -> q :: Queue(100) -> x :: Idle;`)
	r := rt.Find("r").(*RED)
	for i := 0; i < 4; i++ {
		r.Push(0, udpPacket(packet.IP4{1}, packet.IP4{2}))
	}
	if r.Drops != 0 {
		t.Errorf("RED dropped %d below min threshold", r.Drops)
	}
}

func TestInfiniteSourceLimit(t *testing.T) {
	rt := buildWith(t, `s :: InfiniteSource(3, 2) -> out :: TestSink;`)
	s := rt.Find("s").(*InfiniteSource)
	for i := 0; i < 5; i++ {
		s.RunTask()
	}
	if got := len(rt.Find("out").(*sink).got); got != 3 {
		t.Errorf("emitted %d packets, want 3", got)
	}
}

func TestCostModelCharges(t *testing.T) {
	cpu := simcpu.New(simcpu.P0)
	rt, err := core.BuildFromText(
		`s :: InfiniteSource(1) -> c :: Counter -> Discard;`,
		"test", NewRegistry(), core.BuildOptions{CPU: cpu})
	if err != nil {
		t.Fatal(err)
	}
	rt.RunUntilIdle(10)
	if cpu.TotalCycles() == 0 {
		t.Error("no cycles charged")
	}
	if cpu.Calls == 0 {
		t.Error("no indirect calls charged")
	}
}

func TestUnknownClassRejected(t *testing.T) {
	_, err := core.BuildFromText("x :: Bogus -> Discard;", "test", NewRegistry(), core.BuildOptions{})
	if err == nil {
		t.Error("unknown class accepted")
	}
}

func TestPushPullConflictRejected(t *testing.T) {
	// InfiniteSource(push) directly into ToDevice(pull) must fail the
	// processing check.
	_, err := core.BuildFromText("s :: InfiniteSource(1) -> d :: ToDevice(x);", "test", NewRegistry(), core.BuildOptions{})
	if err == nil {
		t.Error("push->pull conflict accepted")
	}
}

func TestPortCountRejected(t *testing.T) {
	// Queue with two outputs.
	_, err := core.BuildFromText(`
i :: Idle -> q :: Queue;
q [0] -> ToDevice(a);
q [1] -> ToDevice(b);`, "test", NewRegistry(), core.BuildOptions{})
	if err == nil {
		t.Error("Queue with 2 outputs accepted")
	}
}
