package elements

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/packet"
)

// ToDump and FromDump are Click's trace elements: ToDump appends every
// passing packet to a tcpdump-format (pcap) file; FromDump replays one.
// They make simulated traffic inspectable with standard tools and give
// configurations reproducible packet sources.

// pcap file format constants (classic libpcap, microsecond timestamps).
const (
	pcapMagic       = 0xa1b2c3d4
	pcapVersionMaj  = 2
	pcapVersionMin  = 4
	pcapLinkTypeEth = 1
	pcapSnapLen     = 65535
)

func writePcapHeader(w io.Writer) error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVersionMaj)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVersionMin)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], pcapLinkTypeEth)
	_, err := w.Write(hdr[:])
	return err
}

func writePcapRecord(w io.Writer, tsNanos int64, data []byte) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(tsNanos/1e9))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(tsNanos%1e9/1e3))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// readPcap parses a pcap file into records.
func readPcap(data []byte) (records [][]byte, tstamps []int64, err error) {
	if len(data) < 24 {
		return nil, nil, fmt.Errorf("pcap: truncated header")
	}
	var order binary.ByteOrder = binary.LittleEndian
	switch order.Uint32(data[0:4]) {
	case pcapMagic:
	case 0xd4c3b2a1:
		order = binary.BigEndian
	default:
		return nil, nil, fmt.Errorf("pcap: bad magic %#x", order.Uint32(data[0:4]))
	}
	pos := 24
	for pos < len(data) {
		if pos+16 > len(data) {
			return nil, nil, fmt.Errorf("pcap: truncated record header at %d", pos)
		}
		sec := int64(order.Uint32(data[pos:]))
		usec := int64(order.Uint32(data[pos+4:]))
		caplen := int(order.Uint32(data[pos+8:]))
		pos += 16
		if caplen < 0 || pos+caplen > len(data) {
			return nil, nil, fmt.Errorf("pcap: truncated record body at %d", pos)
		}
		records = append(records, data[pos:pos+caplen])
		tstamps = append(tstamps, sec*1e9+usec*1e3)
		pos += caplen
	}
	return records, tstamps, nil
}

// ToDump writes every passing packet to a pcap file and forwards it
// (or discards when it has no output).
type ToDump struct {
	core.Base
	path    string
	f       *os.File
	Written int64
}

// Configure accepts the output file name.
func (e *ToDump) Configure(args []string) error {
	if len(args) != 1 || args[0] == "" {
		return fmt.Errorf("ToDump: expects FILENAME")
	}
	e.path = args[0]
	return nil
}

// Initialize opens the file and writes the pcap header.
func (e *ToDump) Initialize(rt *core.Router) error {
	f, err := os.Create(e.path)
	if err != nil {
		return fmt.Errorf("ToDump: %v", err)
	}
	if err := writePcapHeader(f); err != nil {
		f.Close()
		return fmt.Errorf("ToDump: %v", err)
	}
	e.f = f
	return nil
}

// Push records the packet and forwards it.
func (e *ToDump) Push(port int, p *packet.Packet) {
	e.Work()
	if e.f != nil {
		if err := writePcapRecord(e.f, p.Anno.Timestamp, p.Data()); err == nil {
			e.Written++
		}
	}
	if e.NOutputs() > 0 {
		e.Output(0).Push(p)
		return
	}
	// Terminal ToDump: the packet was delivered to the dump file.
	e.CountDelivered(1, int64(p.Len()))
	p.Kill()
}

// Close flushes and closes the dump file.
func (e *ToDump) Close() error {
	if e.f == nil {
		return nil
	}
	err := e.f.Close()
	e.f = nil
	return err
}

// Handlers exports the record count.
func (e *ToDump) Handlers() []core.Handler {
	return []core.Handler{intHandler("count", func() int64 { return e.Written })}
}

// FromDump replays a pcap file: each task run pushes the next record as
// a packet (with its capture timestamp in the timestamp annotation).
type FromDump struct {
	core.Base
	path    string
	records [][]byte
	tstamps []int64
	next    int
	Emitted int64
}

// Configure accepts the input file name.
func (e *FromDump) Configure(args []string) error {
	if len(args) != 1 || args[0] == "" {
		return fmt.Errorf("FromDump: expects FILENAME")
	}
	e.path = args[0]
	return nil
}

// Initialize loads and parses the file.
func (e *FromDump) Initialize(rt *core.Router) error {
	data, err := os.ReadFile(e.path)
	if err != nil {
		return fmt.Errorf("FromDump: %v", err)
	}
	e.records, e.tstamps, err = readPcap(data)
	if err != nil {
		return fmt.Errorf("FromDump: %v", err)
	}
	return nil
}

// RunTask pushes the next record.
func (e *FromDump) RunTask() bool {
	if e.next >= len(e.records) {
		return false
	}
	e.Work()
	p := packet.New(e.records[e.next])
	p.Anno.Timestamp = e.tstamps[e.next]
	e.next++
	e.Emitted++
	e.Output(0).Push(p)
	return true
}

// Handlers exports replay progress.
func (e *FromDump) Handlers() []core.Handler {
	return []core.Handler{
		intHandler("count", func() int64 { return e.Emitted }),
		intHandler("remaining", func() int64 { return int64(len(e.records) - e.next) }),
	}
}
