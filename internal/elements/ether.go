package elements

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/packet"
)

// Paint sets the paint annotation; the IP router paints input packets
// with their arrival interface so CheckPaint can detect packets leaving
// the way they came (ICMP redirect).
type Paint struct {
	core.Base
	color byte
}

// Configure accepts the color (0-255).
func (e *Paint) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("Paint: expects COLOR")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 || n > 255 {
		return fmt.Errorf("Paint: bad color %q", args[0])
	}
	e.color = byte(n)
	return nil
}

// Push paints and forwards.
func (e *Paint) Push(port int, p *packet.Packet) {
	e.Work()
	p.Anno.Paint = e.color
	e.Output(0).Push(p)
}

// Pull pulls, paints, and returns.
func (e *Paint) Pull(port int) *packet.Packet {
	e.Work()
	p := e.Input(0).Pull()
	if p != nil {
		p.Anno.Paint = e.color
	}
	return p
}

// CheckPaint forwards every packet on output 0; packets whose paint
// matches the configured color additionally send a clone to output 1
// (the IP router wires that to an ICMP redirect generator).
type CheckPaint struct {
	core.Base
	color   byte
	Matched int64
}

// Configure accepts the color.
func (e *CheckPaint) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("CheckPaint: expects COLOR")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 || n > 255 {
		return fmt.Errorf("CheckPaint: bad color %q", args[0])
	}
	e.color = byte(n)
	return nil
}

// Push checks the paint annotation.
func (e *CheckPaint) Push(port int, p *packet.Packet) {
	e.Work()
	if p.Anno.Paint == e.color {
		atomic.AddInt64(&e.Matched, 1)
		if e.NOutputs() > 1 {
			e.Output(1).Push(p.Clone())
		}
	}
	e.Output(0).Push(p)
}

// PaintTee clones matching packets to output 1 and forwards everything
// on output 0 (like CheckPaint, without the IP-router framing).
type PaintTee struct{ CheckPaint }

// Strip removes a fixed number of bytes from the front of each packet
// (the IP router strips the 14-byte Ethernet header).
type Strip struct {
	core.Base
	n int
}

// Configure accepts the byte count.
func (e *Strip) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("Strip: expects LENGTH")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 {
		return fmt.Errorf("Strip: bad length %q", args[0])
	}
	e.n = n
	return nil
}

// Push strips and forwards.
func (e *Strip) Push(port int, p *packet.Packet) {
	e.Work()
	if p.Len() < e.n {
		e.Drop(p)
		return
	}
	p.Pull(e.n)
	e.Output(0).Push(p)
}

// Unstrip restores bytes previously stripped from the front.
type Unstrip struct {
	core.Base
	n int
}

// Configure accepts the byte count.
func (e *Unstrip) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("Unstrip: expects LENGTH")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 {
		return fmt.Errorf("Unstrip: bad length %q", args[0])
	}
	e.n = n
	return nil
}

// Push restores bytes and forwards.
func (e *Unstrip) Push(port int, p *packet.Packet) {
	e.Work()
	p.Push(e.n)
	e.Output(0).Push(p)
}

// EtherEncap prepends a fixed Ethernet header. ARP elimination (§7.2)
// replaces ARPQuerier with this on point-to-point links.
type EtherEncap struct {
	core.Base
	etherType uint16
	src, dst  packet.EtherAddr
}

// Configure accepts ETHERTYPE (hex) SRC DST.
func (e *EtherEncap) Configure(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("EtherEncap: expects ETHERTYPE SRC DST")
	}
	t, err := strconv.ParseUint(args[0], 16, 16)
	if err != nil {
		return fmt.Errorf("EtherEncap: bad ethertype %q", args[0])
	}
	e.etherType = uint16(t)
	if e.src, err = packet.ParseEther(args[1]); err != nil {
		return err
	}
	if e.dst, err = packet.ParseEther(args[2]); err != nil {
		return err
	}
	return nil
}

// Push encapsulates and forwards.
func (e *EtherEncap) Push(port int, p *packet.Packet) {
	e.Work()
	encapEther(p, e.etherType, e.src, e.dst)
	e.Output(0).Push(p)
}

func encapEther(p *packet.Packet, etherType uint16, src, dst packet.EtherAddr) {
	d := p.Push(packet.EtherHeaderLen)
	eh := packet.Ether(d[:packet.EtherHeaderLen])
	eh.SetSrc(src)
	eh.SetDst(dst)
	eh.SetType(etherType)
}

// HostEtherFilter drops Ethernet packets not addressed to the host:
// output 0 gets packets for our address or broadcast/multicast; other
// packets go to output 1 or are dropped. It also sets the MACBroadcast
// annotation DropBroadcasts consumes.
type HostEtherFilter struct {
	core.Base
	addr packet.EtherAddr
}

// Configure accepts our Ethernet address.
func (e *HostEtherFilter) Configure(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("HostEtherFilter: expects ETH")
	}
	var err error
	e.addr, err = packet.ParseEther(args[0])
	return err
}

// Push filters on the destination MAC.
func (e *HostEtherFilter) Push(port int, p *packet.Packet) {
	e.Work()
	eh, ok := p.EtherHeader()
	if !ok {
		e.Drop(p)
		return
	}
	dst := eh.Dst()
	switch {
	case dst == e.addr:
		e.Output(0).Push(p)
	case dst[0]&1 == 1: // broadcast or multicast
		p.Anno.MACBroadcast = true
		e.Output(0).Push(p)
	case e.NOutputs() > 1:
		e.Output(1).Push(p)
	default:
		e.Drop(p)
	}
}

// ARPQuerier encapsulates IP packets in Ethernet headers found by ARP.
// Input 0 takes IP packets annotated with a next-hop address
// (GetIPAddress/LookupIPRoute set it); input 1 takes ARP responses.
// Output 0 emits Ethernet packets: encapsulated IP when the mapping is
// known, ARP queries otherwise (the IP packet is held, one deep per
// address, as in Click).
type ARPQuerier struct {
	core.Base
	ip   packet.IP4
	eth  packet.EtherAddr
	tbl  map[packet.IP4]packet.EtherAddr
	wait map[packet.IP4]*packet.Packet
	// mu guards tbl and wait when the parallel scheduler armed it (IP
	// traffic and ARP responses may arrive on different workers); in the
	// single-threaded runtime it stays disabled and costs nothing.
	mu      sync.Mutex
	guarded bool
	// Queries, Responses, and Drops instrument the element.
	Queries   int64
	Responses int64
	Drops     int64
}

// EnableSync arms the table guard (core.Synchronizer).
func (e *ARPQuerier) EnableSync() { e.guarded = true }

func (e *ARPQuerier) lock() {
	if e.guarded {
		e.mu.Lock()
	}
}

func (e *ARPQuerier) unlock() {
	if e.guarded {
		e.mu.Unlock()
	}
}

// Configure accepts our IP and Ethernet addresses.
func (e *ARPQuerier) Configure(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("ARPQuerier: expects IP ETH")
	}
	var err error
	if e.ip, err = packet.ParseIP4(args[0]); err != nil {
		return err
	}
	if e.eth, err = packet.ParseEther(args[1]); err != nil {
		return err
	}
	e.tbl = map[packet.IP4]packet.EtherAddr{}
	e.wait = map[packet.IP4]*packet.Packet{}
	return nil
}

// Push handles IP packets (port 0) and ARP responses (port 1).
func (e *ARPQuerier) Push(port int, p *packet.Packet) {
	e.Work()
	if port == 1 {
		e.handleResponse(p)
		return
	}
	next := p.Anno.DstIPAnno
	if next.IsZero() {
		// Fall back to the IP header destination.
		if ih, ok := p.IPHeader(); ok {
			next = ih.Dst()
		}
	}
	e.lock()
	if ea, ok := e.tbl[next]; ok {
		e.unlock()
		encapEther(p, packet.EtherTypeIP, e.eth, ea)
		e.Output(0).Push(p)
		return
	}
	// Unknown: hold the packet (replacing any previous) and query. The
	// hold outlives this push, so any flow-recording mark dies here: the
	// release happens on a later (possibly concurrent) response path.
	p.Anno.FlowPending = nil
	old := e.wait[next]
	e.wait[next] = p
	e.unlock()
	if old != nil {
		atomic.AddInt64(&e.Drops, 1)
		e.Drop(old)
	}
	atomic.AddInt64(&e.Queries, 1)
	e.Output(0).Push(e.makeQuery(next))
}

// PushBatch encapsulates a batch of IP packets, forwarding runs whose
// mappings are known as sub-batches; misses fall back to the scalar
// hold-and-query path. ARP responses (port 1) are always scalar.
func (e *ARPQuerier) PushBatch(port int, ps []*packet.Packet) {
	if port == 1 {
		for _, p := range ps {
			e.Push(port, p)
		}
		return
	}
	k := 0
	flush := func() {
		e.Output(0).PushBatch(ps[:k])
		k = 0
	}
	for _, p := range ps {
		e.Work()
		next := p.Anno.DstIPAnno
		if next.IsZero() {
			if ih, ok := p.IPHeader(); ok {
				next = ih.Dst()
			}
		}
		e.lock()
		ea, ok := e.tbl[next]
		e.unlock()
		if !ok {
			// Miss: emit pending hits first so output order matches the
			// scalar path, then take the hold-and-query path.
			flush()
			p.Anno.FlowPending = nil
			e.lock()
			old := e.wait[next]
			e.wait[next] = p
			e.unlock()
			if old != nil {
				atomic.AddInt64(&e.Drops, 1)
				e.Drop(old)
			}
			atomic.AddInt64(&e.Queries, 1)
			e.Output(0).Push(e.makeQuery(next))
			continue
		}
		encapEther(p, packet.EtherTypeIP, e.eth, ea)
		ps[k] = p
		k++
	}
	flush()
}

func (e *ARPQuerier) makeQuery(target packet.IP4) *packet.Packet {
	q := packet.Make(packet.DefaultHeadroom, packet.EtherHeaderLen+packet.ARPHeaderLen, 0)
	d := q.Data()
	eh := packet.Ether(d[:packet.EtherHeaderLen])
	eh.SetDst(packet.BroadcastEther)
	eh.SetSrc(e.eth)
	eh.SetType(packet.EtherTypeARP)
	ah := packet.ARP(d[packet.EtherHeaderLen:])
	ah.InitARP()
	ah.SetOp(packet.ARPOpRequest)
	ah.SetSenderEther(e.eth)
	ah.SetSenderIP(e.ip)
	ah.SetTargetIP(target)
	return q
}

func (e *ARPQuerier) handleResponse(p *packet.Packet) {
	ah, ok := p.ARPHeader(true)
	if !ok || ah.Op() != packet.ARPOpReply {
		e.Drop(p)
		return
	}
	ip := ah.SenderIP()
	eth := ah.SenderEther()
	e.lock()
	e.tbl[ip] = eth
	held := e.wait[ip]
	if held != nil {
		delete(e.wait, ip)
	}
	e.unlock()
	e.BumpGuard(core.GuardARP)
	atomic.AddInt64(&e.Responses, 1)
	// The response is consumed here; telemetry counts it against the
	// conservation law like any other terminated packet.
	e.Drop(p)
	if held != nil {
		encapEther(held, packet.EtherTypeIP, e.eth, eth)
		e.Output(0).Push(held)
	}
}

// InsertEntry preloads an ARP table mapping (the simulator uses this to
// model an already-converged network).
func (e *ARPQuerier) InsertEntry(ip packet.IP4, eth packet.EtherAddr) {
	e.lock()
	e.tbl[ip] = eth
	e.unlock()
	e.BumpGuard(core.GuardARP)
}

// ARPResponder replies to ARP requests for its configured address.
type ARPResponder struct {
	core.Base
	ip      packet.IP4
	eth     packet.EtherAddr
	Replies int64
}

// Configure accepts IP ETH.
func (e *ARPResponder) Configure(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("ARPResponder: expects IP ETH")
	}
	var err error
	if e.ip, err = packet.ParseIP4(args[0]); err != nil {
		return err
	}
	if e.eth, err = packet.ParseEther(args[1]); err != nil {
		return err
	}
	return nil
}

// Push answers ARP requests addressed to our IP.
func (e *ARPResponder) Push(port int, p *packet.Packet) {
	e.Work()
	ah, ok := p.ARPHeader(true)
	if !ok || ah.Op() != packet.ARPOpRequest || ah.TargetIP() != e.ip {
		e.Drop(p)
		return
	}
	reply := packet.Make(packet.DefaultHeadroom, packet.EtherHeaderLen+packet.ARPHeaderLen, 0)
	d := reply.Data()
	eh := packet.Ether(d[:packet.EtherHeaderLen])
	eh.SetDst(ah.SenderEther())
	eh.SetSrc(e.eth)
	eh.SetType(packet.EtherTypeARP)
	rh := packet.ARP(d[packet.EtherHeaderLen:])
	rh.InitARP()
	rh.SetOp(packet.ARPOpReply)
	rh.SetSenderEther(e.eth)
	rh.SetSenderIP(e.ip)
	rh.SetTargetEther(ah.SenderEther())
	rh.SetTargetIP(ah.SenderIP())
	p.Kill()
	atomic.AddInt64(&e.Replies, 1)
	e.Output(0).Push(reply)
}
