package elements

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
)

func TestDumpRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.pcap")

	// Record three packets with distinct contents and timestamps.
	rt := buildWith(t, "i :: Idle -> td :: ToDump("+path+");")
	td := rt.Find("td").(*ToDump)
	for i := 0; i < 3; i++ {
		p := udpPacket(packet.MakeIP4(1, 1, 1, byte(i+1)), packet.MakeIP4(2, 2, 2, 2))
		p.Anno.Timestamp = int64(i+1) * 1_500_000_000 // 1.5s apart
		td.Push(0, p)
	}
	if td.Written != 3 {
		t.Fatalf("written = %d", td.Written)
	}
	if err := td.Close(); err != nil {
		t.Fatal(err)
	}

	// Sanity: standard pcap header present.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 24 || data[0] != 0xd4 || data[1] != 0xc3 || data[2] != 0xb2 || data[3] != 0xa1 {
		t.Fatalf("not a little-endian pcap file: % x", data[:4])
	}

	// Replay through FromDump.
	rt2 := buildWith(t, "fd :: FromDump("+path+") -> out :: TestSink;")
	rt2.RunUntilIdle(100)
	out := rt2.Find("out").(*sink)
	if len(out.got) != 3 {
		t.Fatalf("replayed %d packets, want 3", len(out.got))
	}
	for i, p := range out.got {
		p.Anno.NetworkOffset = 14
		h, ok := p.IPHeader()
		if !ok {
			t.Fatalf("replayed packet %d has no IP header", i)
		}
		if h.Src() != packet.MakeIP4(1, 1, 1, byte(i+1)) {
			t.Errorf("packet %d src = %v", i, h.Src())
		}
		if p.Anno.Timestamp != int64(i+1)*1_500_000_000 {
			t.Errorf("packet %d timestamp = %d", i, p.Anno.Timestamp)
		}
	}
	if v, _ := rt2.ReadHandler("fd.remaining"); v != "0" {
		t.Errorf("remaining = %s", v)
	}
}

func TestFromDumpErrors(t *testing.T) {
	if _, err := core.BuildFromText("f :: FromDump(/nonexistent.pcap) -> d :: Discard;",
		"t", testRegistry(), core.BuildOptions{}); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.pcap")
	os.WriteFile(bad, []byte("not a pcap"), 0o644)
	if _, err := core.BuildFromText("f :: FromDump("+bad+") -> d :: Discard;",
		"t", testRegistry(), core.BuildOptions{}); err == nil {
		t.Error("corrupt file accepted")
	}
}

func TestToDumpTerminalMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sink.pcap")
	rt := buildWith(t, "i :: Idle -> td :: ToDump("+path+");")
	td := rt.Find("td").(*ToDump)
	td.Push(0, udpPacket(packet.IP4{1}, packet.IP4{2}))
	td.Close()
	data, _ := os.ReadFile(path)
	if len(data) <= 24 {
		t.Error("terminal ToDump wrote no record")
	}
}
