package core

import (
	"fmt"
	"sort"
	"strings"
)

// Click elements export read and write handlers — named attributes the
// user inspects or pokes at run time (/proc/click in the kernel
// driver). Elements implement HandlerProvider to publish them; the
// Router routes "element.handler" paths.

// Handler is one named element attribute.
type Handler struct {
	Name string
	// Read returns the handler's value; nil for write-only handlers.
	Read func() string
	// Write sets the handler; nil for read-only handlers.
	Write func(value string) error
}

// HandlerProvider is implemented by elements that export handlers.
type HandlerProvider interface {
	Handlers() []Handler
}

// Element names are not flat identifiers: combine emits names such as
// "link@a/eth0@b/eth1" and tenant namespacing prefixes "tenant/". The
// config language never produces a name containing '.', but the graph
// API does not forbid it, and a path built by naive concatenation is
// then ambiguous. The resolution rule is longest match: the element
// name is the longest prefix of the path that names a live element and
// is followed by '.'. Handler names never contain '.' or '/', so for
// every name the language can produce this degenerates to the old
// split-at-last-dot rule. Contexts that compose paths blindly (tools,
// the management API) escape the element name first — EscapeElementName
// maps '%' to %25, '.' to %2E and '/' to %2F — and findHandler also
// tries the unescaped form of each candidate prefix, so escaped paths
// resolve even when the raw name happens to collide with another
// element.

// EscapeElementName escapes an element name for embedding in a handler
// path or URL path segment: '%' → %25, '.' → %2E, '/' → %2F. Names
// produced by the config language pass through unchanged except for
// '/' (which is legal in identifiers and harmless in dot-paths, so
// HandlerPath keeps it raw).
func EscapeElementName(name string) string {
	if !strings.ContainsAny(name, "%./") {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 4)
	for i := 0; i < len(name); i++ {
		switch c := name[i]; c {
		case '%':
			b.WriteString("%25")
		case '.':
			b.WriteString("%2E")
		case '/':
			b.WriteString("%2F")
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// UnescapeElementName reverses EscapeElementName. It reports ok=false
// when s contains a '%' not followed by two hex digits.
func UnescapeElementName(s string) (string, bool) {
	if !strings.ContainsRune(s, '%') {
		return s, true
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(s) {
			return "", false
		}
		hi, ok1 := unhex(s[i+1])
		lo, ok2 := unhex(s[i+2])
		if !ok1 || !ok2 {
			return "", false
		}
		b.WriteByte(hi<<4 | lo)
		i += 2
	}
	return b.String(), true
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// HandlerPath composes an unambiguous "element.handler" path. Element
// names containing '.' or '%' are escaped; everything else (including
// combine's '/'- and '@'-bearing link names) passes through raw, so
// paths for language-produced names look exactly like before.
func HandlerPath(element, handler string) string {
	if strings.ContainsAny(element, ".%") {
		element = EscapeElementName(element)
	}
	return element + "." + handler
}

// ReadHandler reads "element.handler" (e.g. "q.length"). Every element
// also gets implicit "class" and "config" handlers.
func (rt *Router) ReadHandler(path string) (string, error) {
	e, h, err := rt.findHandler(path)
	if err != nil {
		return "", err
	}
	_ = e
	if h.Read == nil {
		return "", fmt.Errorf("core: handler %q is write-only", path)
	}
	return h.Read(), nil
}

// WriteHandler writes "element.handler value".
func (rt *Router) WriteHandler(path, value string) error {
	_, h, err := rt.findHandler(path)
	if err != nil {
		return err
	}
	if h.Write == nil {
		return fmt.Errorf("core: handler %q is read-only", path)
	}
	return h.Write(value)
}

// HandlerNames lists the handlers an element exports, sorted.
func (rt *Router) HandlerNames(element string) ([]string, error) {
	e := rt.Find(element)
	if e == nil {
		return nil, fmt.Errorf("core: no element %q", element)
	}
	names := []string{"class", "config", "name"}
	if hp, ok := e.(HandlerProvider); ok {
		for _, h := range hp.Handlers() {
			names = append(names, h.Name)
		}
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, n := range statsHandlerNames {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// findHandler resolves a handler path by longest match: scanning dots
// right to left, the element name is the longest prefix naming a live
// element (tried raw, then %-unescaped), and the rest is the handler
// name. Resolution is deterministic — the longest matching element
// wins even if it lacks the requested handler.
func (rt *Router) findHandler(path string) (Element, Handler, error) {
	last := strings.LastIndexByte(path, '.')
	if last <= 0 || last == len(path)-1 {
		return nil, Handler{}, fmt.Errorf("core: bad handler path %q (want element.handler)", path)
	}
	for dot := last; dot > 0; dot = strings.LastIndexByte(path[:dot], '.') {
		name, hName := path[:dot], path[dot+1:]
		e := rt.Find(name)
		if e == nil && strings.ContainsRune(name, '%') {
			if un, ok := UnescapeElementName(name); ok {
				e = rt.Find(un)
			}
		}
		if e == nil {
			continue
		}
		if h, ok := rt.elementHandler(e, hName); ok {
			return e, h, nil
		}
		return nil, Handler{}, fmt.Errorf("core: element %q has no handler %q", e.base().name, hName)
	}
	return nil, Handler{}, fmt.Errorf("core: no element %q", path[:last])
}

// elementHandler looks up one handler on a resolved element: implicit
// class/name/config, then the element's own providers, then the
// implicit telemetry counters.
func (rt *Router) elementHandler(e Element, hName string) (Handler, bool) {
	switch hName {
	case "class":
		return Handler{Name: "class", Read: func() string { return e.base().class }}, true
	case "name":
		return Handler{Name: "name", Read: func() string { return e.base().name }}, true
	case "config":
		idx := rt.Graph.FindElement(e.base().name)
		return Handler{Name: "config", Read: func() string {
			if idx < 0 {
				return ""
			}
			return rt.Graph.Element(idx).Config
		}}, true
	}
	if hp, ok := e.(HandlerProvider); ok {
		for _, h := range hp.Handlers() {
			if h.Name == hName {
				return h, true
			}
		}
	}
	// Implicit telemetry handlers, after the provider loop so an
	// element's own counter of the same name (e.g. Queue's drops) wins.
	if read, ok := statsHandler(e.base().Stats(), hName); ok {
		return Handler{Name: hName, Read: read}, true
	}
	return Handler{}, false
}

// statsHandlerNames are the implicit telemetry read handlers every
// element exports.
var statsHandlerNames = []string{
	"packets_in", "bytes_in", "packets_out", "bytes_out", "drops", "cycles",
}

func statsHandler(s *ElemStats, name string) (func() string, bool) {
	var get func() int64
	switch name {
	case "packets_in":
		get = s.PacketsIn
	case "bytes_in":
		get = s.BytesIn
	case "packets_out":
		get = s.PacketsOut
	case "bytes_out":
		get = s.BytesOut
	case "drops":
		get = s.Drops
	case "cycles":
		get = s.Cycles
	default:
		return nil, false
	}
	return func() string { return fmt.Sprintf("%d", get()) }, true
}
