package core

import (
	"fmt"
	"sort"
	"strings"
)

// Click elements export read and write handlers — named attributes the
// user inspects or pokes at run time (/proc/click in the kernel
// driver). Elements implement HandlerProvider to publish them; the
// Router routes "element.handler" paths.

// Handler is one named element attribute.
type Handler struct {
	Name string
	// Read returns the handler's value; nil for write-only handlers.
	Read func() string
	// Write sets the handler; nil for read-only handlers.
	Write func(value string) error
}

// HandlerProvider is implemented by elements that export handlers.
type HandlerProvider interface {
	Handlers() []Handler
}

// ReadHandler reads "element.handler" (e.g. "q.length"). Every element
// also gets implicit "class" and "config" handlers.
func (rt *Router) ReadHandler(path string) (string, error) {
	e, h, err := rt.findHandler(path)
	if err != nil {
		return "", err
	}
	_ = e
	if h.Read == nil {
		return "", fmt.Errorf("core: handler %q is write-only", path)
	}
	return h.Read(), nil
}

// WriteHandler writes "element.handler value".
func (rt *Router) WriteHandler(path, value string) error {
	_, h, err := rt.findHandler(path)
	if err != nil {
		return err
	}
	if h.Write == nil {
		return fmt.Errorf("core: handler %q is read-only", path)
	}
	return h.Write(value)
}

// HandlerNames lists the handlers an element exports, sorted.
func (rt *Router) HandlerNames(element string) ([]string, error) {
	e := rt.Find(element)
	if e == nil {
		return nil, fmt.Errorf("core: no element %q", element)
	}
	names := []string{"class", "config", "name"}
	if hp, ok := e.(HandlerProvider); ok {
		for _, h := range hp.Handlers() {
			names = append(names, h.Name)
		}
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, n := range statsHandlerNames {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (rt *Router) findHandler(path string) (Element, Handler, error) {
	dot := strings.LastIndexByte(path, '.')
	if dot <= 0 || dot == len(path)-1 {
		return nil, Handler{}, fmt.Errorf("core: bad handler path %q (want element.handler)", path)
	}
	elemName, hName := path[:dot], path[dot+1:]
	e := rt.Find(elemName)
	if e == nil {
		return nil, Handler{}, fmt.Errorf("core: no element %q", elemName)
	}
	// Implicit handlers.
	switch hName {
	case "class":
		return e, Handler{Name: "class", Read: func() string { return e.base().class }}, nil
	case "name":
		return e, Handler{Name: "name", Read: func() string { return e.base().name }}, nil
	case "config":
		idx := rt.Graph.FindElement(elemName)
		return e, Handler{Name: "config", Read: func() string {
			if idx < 0 {
				return ""
			}
			return rt.Graph.Element(idx).Config
		}}, nil
	}
	if hp, ok := e.(HandlerProvider); ok {
		for _, h := range hp.Handlers() {
			if h.Name == hName {
				return e, h, nil
			}
		}
	}
	// Implicit telemetry handlers, after the provider loop so an
	// element's own counter of the same name (e.g. Queue's drops) wins.
	if read, ok := statsHandler(e.base().Stats(), hName); ok {
		return e, Handler{Name: hName, Read: read}, nil
	}
	return nil, Handler{}, fmt.Errorf("core: element %q has no handler %q", elemName, hName)
}

// statsHandlerNames are the implicit telemetry read handlers every
// element exports.
var statsHandlerNames = []string{
	"packets_in", "bytes_in", "packets_out", "bytes_out", "drops", "cycles",
}

func statsHandler(s *ElemStats, name string) (func() string, bool) {
	var get func() int64
	switch name {
	case "packets_in":
		get = s.PacketsIn
	case "bytes_in":
		get = s.BytesIn
	case "packets_out":
		get = s.PacketsOut
	case "bytes_out":
		get = s.BytesOut
	case "drops":
		get = s.Drops
	case "cycles":
		get = s.Cycles
	default:
		return nil, false
	}
	return func() string { return fmt.Sprintf("%d", get()) }, true
}
