package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Spec is an element class specification: the externally visible
// properties tools share with the runtime (§5.3) plus the factory the
// runtime uses to instantiate the class.
type Spec struct {
	// Name is the element class name ("Queue").
	Name string
	// Processing is the textual processing code ("a/ah").
	Processing string
	// Flow is the packet flow code ("x/x").
	Flow string
	// Ports returns the legal input/output port count ranges for a
	// given configuration (a Classifier's output count depends on its
	// patterns). Nil means any number of either.
	Ports func(config string) (in, out graph.PortRange)
	// Make constructs an unconfigured instance. Nil marks a
	// specification-only class (tools know it; the runtime cannot
	// instantiate it).
	Make func() Element
	// WorkCycles is the per-invocation cost-model charge for this
	// class; data-dependent extras are charged by the element itself.
	WorkCycles int64
	// Devirtualized marks generated classes whose packet transfers
	// bind direct function calls (click-devirtualize output).
	Devirtualized bool
}

// Registry maps class names to specifications. It implements
// graph.SpecSource, so graph analyses and optimizer tools use the same
// specifications as the runtime — the property §5.3 calls "a common
// understanding between tools and Click".
type Registry struct {
	specs map[string]*Spec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{specs: map[string]*Spec{}} }

// Register adds a specification. Registering a duplicate name panics:
// class names are a global namespace and a collision is a programming
// error.
func (rg *Registry) Register(s *Spec) {
	if s.Name == "" {
		panic("core: registering spec with empty name")
	}
	if _, dup := rg.specs[s.Name]; dup {
		panic(fmt.Sprintf("core: duplicate element class %q", s.Name))
	}
	rg.specs[s.Name] = s
}

// RegisterDynamic adds a tool-generated specification (fastclassifier or
// devirtualize output), replacing any previous dynamic registration of
// the same name. This parallels Click compiling and dynamically linking
// the code a tool attached to a configuration archive.
func (rg *Registry) RegisterDynamic(s *Spec) {
	if s.Name == "" {
		panic("core: registering spec with empty name")
	}
	rg.specs[s.Name] = s
}

// Lookup returns the specification for a class.
func (rg *Registry) Lookup(name string) (*Spec, bool) {
	s, ok := rg.specs[name]
	return s, ok
}

// Classes returns all registered class names, sorted.
func (rg *Registry) Classes() []string {
	out := make([]string, 0, len(rg.specs))
	for name := range rg.specs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Clone returns a registry with the same specifications, so dynamic
// registrations for one configuration don't leak into another.
func (rg *Registry) Clone() *Registry {
	n := NewRegistry()
	for k, v := range rg.specs {
		n.specs[k] = v
	}
	return n
}

// ProcessingCode implements graph.SpecSource.
func (rg *Registry) ProcessingCode(class string) (string, bool) {
	s, ok := rg.specs[class]
	if !ok {
		return "", false
	}
	return s.Processing, true
}

// FlowCode implements graph.SpecSource.
func (rg *Registry) FlowCode(class string) (string, bool) {
	s, ok := rg.specs[class]
	if !ok {
		return "", false
	}
	if s.Flow == "" {
		return "x/x", true
	}
	return s.Flow, true
}

// PortCounts implements graph.SpecSource.
func (rg *Registry) PortCounts(class, config string) (graph.PortRange, graph.PortRange, bool) {
	s, ok := rg.specs[class]
	if !ok {
		return graph.PortRange{}, graph.PortRange{}, false
	}
	if s.Ports == nil {
		return graph.AtLeast(0), graph.AtLeast(0), true
	}
	in, out := s.Ports(config)
	return in, out, true
}

var _ graph.SpecSource = (*Registry)(nil)
