package core

import "repro/internal/graph"

// Static concurrency analysis for the parallel scheduler. Tasks are the
// units the scheduler moves between workers; everything else runs
// synchronously inside some task's RunTask call. By flooding each
// task's push and pull reach over the resolved processing graph
// (graph.PushFlood / graph.PullFlood) the scheduler can prove, before
// any worker starts:
//
//   - which tasks can execute a given element's code at all — an
//     element touched by exactly one task keeps plain (non-atomic)
//     counters and needs no internal locking even in a parallel run,
//     because a task never runs on two workers at once;
//   - how many distinct tasks push into / pull from each Queue, which
//     selects the single-producer or multi-producer ring variant.

// ConcurrencyHinter is implemented by elements whose internal
// synchronization can be specialized to the statically known number of
// concurrent accessors. The scheduler calls it after EnableSync arming:
// producers is the number of tasks that can push into the element,
// consumers the number that can pull from it.
type ConcurrencyHinter interface {
	HintConcurrency(producers, consumers int)
}

// FlowSteerer is implemented by elements that shard traffic across
// their outputs by flow hash (the FlowSteer element). The partitioner
// recognizes the behavior through this interface — not by class name —
// so specialized clones produced by click-devirtualize or
// click-fastclassifier (FlowSteer_dv1 and friends) still get
// flow-affinity placement.
type FlowSteerer interface {
	Element
	FlowSteering()
}

// taskReach records, per task, the element index sets the task can
// execute: its own element, the elements it pushes into (directly or
// via side pushes out of its pull chain), and the elements it pulls
// from.
type taskReach struct {
	pushInto []map[int]bool
	pullFrom []map[int]bool
}

// analyzeTasks floods every task's reach. It is pure graph analysis —
// no element state is consulted — so it is valid for the lifetime of
// the built router.
func (rt *Router) analyzeTasks() *taskReach {
	tr := &taskReach{
		pushInto: make([]map[int]bool, len(rt.tasks)),
		pullFrom: make([]map[int]bool, len(rt.tasks)),
	}
	for t := range rt.tasks {
		ei := rt.taskElems[t]
		push := map[int]bool{}
		for _, i := range graph.PushFlood(rt.Graph, rt.proc, ei, -1) {
			push[i] = true
		}
		pulled, sidePushed := graph.PullFlood(rt.Graph, rt.proc, ei)
		for _, i := range sidePushed {
			push[i] = true
		}
		pull := map[int]bool{}
		for _, i := range pulled {
			pull[i] = true
		}
		tr.pushInto[t] = push
		tr.pullFrom[t] = pull
	}
	return tr
}

// touchCounts returns, per element index, the number of distinct tasks
// that can execute the element's code.
func (tr *taskReach) touchCounts(rt *Router) []int {
	counts := make([]int, len(rt.elements))
	for t := range rt.taskElems {
		seen := map[int]bool{rt.taskElems[t]: true}
		for i := range tr.pushInto[t] {
			seen[i] = true
		}
		for i := range tr.pullFrom[t] {
			seen[i] = true
		}
		for i := range seen {
			counts[i]++
		}
	}
	return counts
}

// accessCounts returns the number of distinct tasks that push into and
// pull from element i.
func (tr *taskReach) accessCounts(i int) (producers, consumers int) {
	for t := range tr.pushInto {
		if tr.pushInto[t][i] {
			producers++
		}
		if tr.pullFrom[t][i] {
			consumers++
		}
	}
	return producers, consumers
}
