// Package core is the Click runtime kernel: the Element interface,
// ports with both virtual (interface) and devirtualized (direct-bound)
// packet transfer, router assembly from a configuration graph, and the
// task scheduler that stands in for Click's constantly-active kernel
// thread.
package core

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/simcpu"
)

// Element is a packet-processing component. Implementations embed Base
// and override Push and/or Pull according to their processing code.
type Element interface {
	// Configure parses the element's configuration arguments. It runs
	// before ports are wired.
	Configure(args []string) error
	// Push accepts a packet on the given input port (push ports only).
	Push(port int, p *packet.Packet)
	// Pull requests a packet from the given output port (pull ports
	// only); nil means no packet available.
	Pull(port int) *packet.Packet

	base() *Base
}

// Initializer is implemented by elements needing a post-wiring setup
// pass (e.g. ARPQuerier locating its paired device).
type Initializer interface {
	Initialize(rt *Router) error
}

// Task is implemented by elements that need the scheduler to call them
// repeatedly (device polling, queue draining). RunTask returns true if
// the task did useful work.
type Task interface {
	RunTask() bool
}

// TaskWeighter is implemented by information elements (ScheduleInfo)
// that assign scheduling weights to named tasks: a task with weight w
// runs w times per round.
type TaskWeighter interface {
	TaskWeights() map[string]int
}

// Base carries the runtime state shared by all elements: identity,
// wired ports, and the cost-model hookup. Elements embed it by value.
type Base struct {
	name    string
	class   string
	router  *Router
	outputs []OutPort
	inputs  []InPort
	cpu     *simcpu.CPU
	// workCycles is charged by Work() once per packet-handling call;
	// it comes from the element's spec cost table.
	workCycles int64
	// stats holds the element's live telemetry counters; ports update
	// the endpoint elements' stats on every transfer.
	stats ElemStats
}

func (b *Base) base() *Base { return b }

// Name returns the element's configuration name.
func (b *Base) Name() string { return b.name }

// ClassName returns the element's class name as wired.
func (b *Base) ClassName() string { return b.class }

// Router returns the containing router (nil before wiring).
func (b *Base) Router() *Router { return b.router }

// NInputs returns the number of wired input ports.
func (b *Base) NInputs() int { return len(b.inputs) }

// NOutputs returns the number of wired output ports.
func (b *Base) NOutputs() int { return len(b.outputs) }

// Output returns output port i.
func (b *Base) Output(i int) *OutPort { return &b.outputs[i] }

// Input returns input port i.
func (b *Base) Input(i int) *InPort { return &b.inputs[i] }

// CPU returns the simulated CPU, or nil when cost modeling is off.
func (b *Base) CPU() *simcpu.CPU { return b.cpu }

// DefaultBurst returns the router-wide batch size elements without an
// explicit per-element burst configuration should use (1 when the
// router was built without a Burst option, preserving per-packet
// semantics and the calibrated cost model).
func (b *Base) DefaultBurst() int {
	if b.router != nil && b.router.burst > 1 {
		return b.router.burst
	}
	return 1
}

// Work charges the element's per-invocation cost to the cost model.
// Element Push/Pull implementations call it once per handled packet.
func (b *Base) Work() {
	b.stats.addCycles(b.workCycles)
	if b.cpu != nil {
		b.cpu.Charge(b.workCycles)
	}
}

// Charge adds extra model cycles beyond the base work cost
// (data-dependent work such as classifier tree steps).
func (b *Base) Charge(cycles int64) {
	b.stats.addCycles(cycles)
	if b.cpu != nil {
		b.cpu.Charge(cycles)
	}
}

// Stats returns the element's live statistics counters.
func (b *Base) Stats() *ElemStats { return &b.stats }

// Drop records p as terminated by this element — dropped or consumed
// without forwarding — and kills it. Elements call Drop instead of a
// bare Kill at every site where a packet leaves the graph, so the
// telemetry conservation law (packets in == packets out + drops) holds
// per element.
func (b *Base) Drop(p *packet.Packet) {
	b.stats.addDrops(1)
	p.Kill()
}

// CountDrops records n packets terminated by this element at sites that
// kill through other helpers (batch tails, device rejections).
func (b *Base) CountDrops(n int) {
	if n > 0 {
		b.stats.addDrops(int64(n))
	}
}

// CountDelivered records packets handed off outside the element graph —
// a ToDevice transmit, a ToHost delivery — as element output, keeping
// sink elements conservation-balanced.
func (b *Base) CountDelivered(pkts int, bytes int64) {
	if pkts > 0 {
		b.stats.addOut(int64(pkts), bytes)
	}
}

// MemFetch charges n compulsory cache misses (§8.2 counts four per
// forwarded packet: RX descriptor, Ethernet header, IP header, TX
// descriptor reclaim). Miss latency is platform-fixed nanoseconds, so
// faster clocks do not shrink it.
func (b *Base) MemFetch(n int) {
	if b.cpu != nil {
		b.cpu.MemFetch(n)
	}
}

// Push is the default implementation for elements without push inputs.
func (b *Base) Push(port int, p *packet.Packet) {
	panic(fmt.Sprintf("element %q (%s): Push on non-push element", b.name, b.class))
}

// Pull is the default implementation for elements without pull outputs.
func (b *Base) Pull(port int) *packet.Packet {
	panic(fmt.Sprintf("element %q (%s): Pull on non-pull element", b.name, b.class))
}

// Configure is the default implementation for elements that take no
// configuration.
func (b *Base) Configure(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("%s: takes no configuration arguments", b.class)
	}
	return nil
}

// PushFunc is a direct-bound push handler (devirtualized transfer).
type PushFunc func(port int, p *packet.Packet)

// PullFunc is a direct-bound pull handler.
type PullFunc func(port int) *packet.Packet

// OutPort is an element output port. In virtual mode, PushTo dispatches
// through the Element interface — Go's analogue of the C++ virtual call
// the paper measures; the cost model charges an indirect call through
// the simulated BTB. When the configuration was devirtualized, direct
// holds a bound handler and the model charges a conventional call.
type OutPort struct {
	target     Element
	targetPort int
	direct     PushFunc
	batch      BatchPusher
	cpu        *simcpu.CPU
	site       simcpu.SiteID
	targetID   simcpu.TargetID
	connected  bool
	// owner and peer are the stats endpoints of this edge (the pushing
	// element and the receiving element); tracer, when non-nil, records
	// each packet's arrival at peer.
	owner  *Base
	peer   *Base
	tracer *Tracer
}

// Connected reports whether the port was wired.
func (p *OutPort) Connected() bool { return p.connected }

// Target returns the downstream element and port.
func (p *OutPort) Target() (Element, int) { return p.target, p.targetPort }

// Push transfers a packet downstream.
func (p *OutPort) Push(pkt *packet.Packet) {
	if p.cpu != nil {
		if p.direct != nil {
			p.cpu.DirectCall()
		} else {
			p.cpu.IndirectCall(p.site, p.targetID)
		}
	}
	if p.owner != nil {
		n := int64(pkt.Len())
		p.owner.stats.addOut(1, n)
		p.peer.stats.addIn(1, n)
		if p.tracer != nil {
			p.tracer.record(pkt.ID, p.peer.name)
		}
	}
	if p.direct != nil {
		p.direct(p.targetPort, pkt)
		return
	}
	p.target.Push(p.targetPort, pkt)
}

// InPort is an element input port; for pull inputs it references the
// upstream element from which packets are pulled.
type InPort struct {
	source     Element
	sourcePort int
	direct     PullFunc
	batch      BatchPuller
	cpu        *simcpu.CPU
	site       simcpu.SiteID
	targetID   simcpu.TargetID
	connected  bool
	// owner and peer are the stats endpoints of this edge (the pulling
	// element and the upstream element); tracer, when non-nil, records
	// each pulled packet's arrival at owner.
	owner  *Base
	peer   *Base
	tracer *Tracer
}

// Connected reports whether the port was wired.
func (p *InPort) Connected() bool { return p.connected }

// Source returns the upstream element and port.
func (p *InPort) Source() (Element, int) { return p.source, p.sourcePort }

// Pull requests a packet from upstream.
func (p *InPort) Pull() *packet.Packet {
	if p.cpu != nil {
		if p.direct != nil {
			p.cpu.DirectCall()
		} else {
			p.cpu.IndirectCall(p.site, p.targetID)
		}
	}
	var pkt *packet.Packet
	if p.direct != nil {
		pkt = p.direct(p.sourcePort)
	} else {
		pkt = p.source.Pull(p.sourcePort)
	}
	if pkt != nil && p.owner != nil {
		n := int64(pkt.Len())
		p.peer.stats.addOut(1, n)
		p.owner.stats.addIn(1, n)
		if p.tracer != nil {
			p.tracer.record(pkt.ID, p.owner.name)
		}
	}
	return pkt
}
