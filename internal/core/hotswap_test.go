package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/packet"
)

// tCarrier is a stateful pass-through element implementing StateCarrier.
type tCarrier struct {
	Base
	val      int
	saved    bool
	restored bool
	failWith error
}

type tCarrierState struct{ Val int }

func (e *tCarrier) Push(port int, p *packet.Packet) {
	e.Work()
	e.val++
	e.Output(0).Push(p)
}

func (e *tCarrier) SaveState() interface{} {
	e.saved = true
	return &tCarrierState{Val: e.val}
}

func (e *tCarrier) RestoreState(state interface{}) error {
	if e.failWith != nil {
		return e.failWith
	}
	e.restored = true
	e.val = state.(*tCarrierState).Val
	return nil
}

// tCarrier2 has the same shape but a different Go type, so state must
// not move between a tCarrier and a tCarrier2 of the same name.
type tCarrier2 struct{ tCarrier }

func hotswapRegistry() *Registry {
	reg := testRegistry()
	one := func(string) (graph.PortRange, graph.PortRange) {
		return graph.Between(0, 1), graph.Exactly(1)
	}
	reg.Register(&Spec{Name: "TCarrier", Processing: "h/h", Ports: one,
		Make: func() Element { return &tCarrier{} }, WorkCycles: 5})
	reg.Register(&Spec{Name: "TCarrier2", Processing: "h/h", Ports: one,
		Make: func() Element { return &tCarrier2{} }, WorkCycles: 5})
	// TCarrierDV: devirtualize-style renamed class over the same Go
	// type — state must still transplant.
	reg.Register(&Spec{Name: "TCarrier_dv0", Processing: "h/h", Ports: one,
		Make: func() Element { return &tCarrier{} }, WorkCycles: 5, Devirtualized: true})
	return reg
}

func buildText(t *testing.T, text string, reg *Registry) *Router {
	t.Helper()
	rt, err := BuildFromText(text, "hotswap_test", reg, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestHotswapTransplantsStatsAndState(t *testing.T) {
	reg := hotswapRegistry()
	old := buildText(t, "c :: TCarrier -> s :: TSink;", reg)
	c := old.Find("c").(*tCarrier)
	for i := 0; i < 7; i++ {
		c.Push(0, packet.New([]byte{1, 2, 3}))
	}
	if c.val != 7 {
		t.Fatalf("val = %d, want 7", c.val)
	}

	next := buildText(t, "c :: TCarrier -> s :: TSink;", reg)
	if err := old.Hotswap(next); err != nil {
		t.Fatal(err)
	}
	nc := next.Find("c").(*tCarrier)
	if !c.saved || !nc.restored {
		t.Errorf("state did not move: saved=%v restored=%v", c.saved, nc.restored)
	}
	if nc.val != 7 {
		t.Errorf("transplanted val = %d, want 7", nc.val)
	}
	if got := nc.Stats().PacketsOut(); got != 7 {
		t.Errorf("transplanted PacketsOut = %d, want 7", got)
	}
	if got := nc.Stats().Cycles(); got != 7*5 {
		t.Errorf("transplanted Cycles = %d, want 35", got)
	}
	// The sink's stats carry over too.
	if got := next.Find("s").base().Stats().PacketsIn(); got != 7 {
		t.Errorf("sink transplanted PacketsIn = %d, want 7", got)
	}
}

func TestHotswapAcrossDevirtualizedClass(t *testing.T) {
	reg := hotswapRegistry()
	old := buildText(t, "c :: TCarrier -> s :: TSink;", reg)
	old.Find("c").(*tCarrier).val = 3
	// Same element name, renamed class, same Go type: the situation
	// Devirtualize produces. State must transplant.
	next := buildText(t, "c :: TCarrier_dv0 -> s :: TSink;", reg)
	if err := old.Hotswap(next); err != nil {
		t.Fatal(err)
	}
	if got := next.Find("c").(*tCarrier).val; got != 3 {
		t.Errorf("val across class rename = %d, want 3", got)
	}
}

func TestHotswapSkipsForeignTypes(t *testing.T) {
	reg := hotswapRegistry()
	old := buildText(t, "c :: TCarrier -> s :: TSink;", reg)
	oc := old.Find("c").(*tCarrier)
	oc.val = 9
	oc.Push(0, packet.New([]byte{1}))

	next := buildText(t, "c :: TCarrier2 -> s :: TSink;", reg)
	if err := old.Hotswap(next); err != nil {
		t.Fatal(err)
	}
	nc := next.Find("c").(*tCarrier2)
	if oc.saved || nc.restored {
		t.Errorf("state moved across Go types: saved=%v restored=%v", oc.saved, nc.restored)
	}
	// Telemetry still carries over: it is class-agnostic.
	if got := nc.Stats().PacketsOut(); got != 1 {
		t.Errorf("stats did not transplant across classes: PacketsOut = %d", got)
	}
}

func TestHotswapRestoreErrorNamesElement(t *testing.T) {
	reg := hotswapRegistry()
	old := buildText(t, "c :: TCarrier -> s :: TSink;", reg)
	next := buildText(t, "c :: TCarrier -> s :: TSink;", reg)
	next.Find("c").(*tCarrier).failWith = fmt.Errorf("boom")
	err := old.Hotswap(next)
	if err == nil {
		t.Fatal("restore error was swallowed")
	}
	if want := `hotswap "c"`; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the element (want %q)", err, want)
	}
}

func TestSchedulerRequestHotswap(t *testing.T) {
	reg := hotswapRegistry()
	old := buildText(t, "src :: TTask -> s :: TSink;", reg)
	s, err := NewScheduler(old, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the first router (TTask emits 3 packets).
	s.RunUntilIdle(100)
	if got := len(old.Find("s").(*tSink).got); got != 3 {
		t.Fatalf("old sink got %d packets, want 3", got)
	}

	next := buildText(t, "src :: TTask -> s :: TSink;", reg)
	s.RequestHotswap(next)
	// The swap itself counts as round progress, then the new router's
	// task emits its packets.
	if !s.RunRound() {
		t.Error("swap round reported no progress")
	}
	if s.Router() != next {
		t.Fatal("scheduler did not adopt the new router")
	}
	if s.SwapErr() != nil {
		t.Fatal(s.SwapErr())
	}
	s.RunUntilIdle(100)
	if got := len(next.Find("s").(*tSink).got); got != 3 {
		t.Errorf("new sink got %d packets, want 3", got)
	}
	// Transplanted output stats continue from the old router's 3.
	if got := next.Find("src").base().Stats().PacketsOut(); got != 6 {
		t.Errorf("src PacketsOut = %d, want 6 (3 transplanted + 3 new)", got)
	}
}

func TestSchedulerHotswapParallelArmsElements(t *testing.T) {
	// Two tasks push into one sink, so the replacement's sink must come
	// out of Hotswap armed (atomic stats); the task elements themselves
	// are single-task and must stay worker-local (plain counters).
	cfg := "t1 :: TTask -> [0]s :: TSyncSink; t2 :: TTask -> [1]s;"
	reg := batchTestRegistry()
	old := buildText(t, cfg, reg)
	s, err := NewScheduler(old, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntilIdle(100)
	next := buildText(t, cfg, reg)
	if err := s.Hotswap(next); err != nil {
		t.Fatal(err)
	}
	if !next.Find("s").base().stats.shared {
		t.Fatal("shared sink stats not armed for parallel run after hotswap")
	}
	if !next.Find("s").(*tSyncSink).synced {
		t.Fatal("shared sink guard not armed after hotswap")
	}
	if next.Find("t1").base().stats.shared {
		t.Error("task-exclusive element armed despite single-task proof")
	}
	s.RunUntilIdle(100)
	// Each TTask emits 3; transplanted counters carry the old run's 6.
	if got := next.Find("s").base().Stats().PacketsIn(); got != 12 {
		t.Errorf("sink PacketsIn = %d, want 12 (6 transplanted + 6 new)", got)
	}
}
