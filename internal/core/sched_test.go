package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/simcpu"
)

// tBatchSink records packets and whether they arrived via the batch
// path.
type tBatchSink struct {
	Base
	got        []*packet.Packet
	batchCalls int
}

func (s *tBatchSink) Push(port int, p *packet.Packet) { s.got = append(s.got, p) }
func (s *tBatchSink) PushBatch(port int, ps []*packet.Packet) {
	s.batchCalls++
	s.got = append(s.got, ps...)
}

// tBatchPuller hands out its queue in bulk.
type tBatchPuller struct {
	Base
	queue      []*packet.Packet
	batchCalls int
}

func (e *tBatchPuller) Push(port int, p *packet.Packet) { e.queue = append(e.queue, p) }
func (e *tBatchPuller) Pull(port int) *packet.Packet {
	if len(e.queue) == 0 {
		return nil
	}
	p := e.queue[0]
	e.queue = e.queue[1:]
	return p
}
func (e *tBatchPuller) PullBatch(port int, buf []*packet.Packet) int {
	e.batchCalls++
	n := copy(buf, e.queue)
	e.queue = e.queue[n:]
	return n
}

// tSyncSink reports whether the scheduler armed its guards.
type tSyncSink struct {
	Base
	synced bool
}

func (s *tSyncSink) Push(port int, p *packet.Packet) { p.Kill() }
func (s *tSyncSink) EnableSync()                     { s.synced = true }

func batchTestRegistry() *Registry {
	reg := testRegistry()
	sinkPorts := func(string) (graph.PortRange, graph.PortRange) {
		return graph.Between(0, 1), graph.Exactly(0)
	}
	reg.Register(&Spec{Name: "TBatchSink", Processing: "h/", Ports: sinkPorts,
		Make: func() Element { return &tBatchSink{} }})
	reg.Register(&Spec{Name: "TBatchPuller", Processing: "h/l", Ports: func(string) (graph.PortRange, graph.PortRange) {
		return graph.Between(0, 1), graph.Between(0, 1)
	}, Make: func() Element { return &tBatchPuller{} }})
	reg.Register(&Spec{Name: "TSyncSink", Processing: "h/", Ports: sinkPorts,
		Make: func() Element { return &tSyncSink{} }})
	return reg
}

func mkBatch(n int) []*packet.Packet {
	ps := make([]*packet.Packet, n)
	for i := range ps {
		ps[i] = packet.New([]byte{byte(i)})
	}
	return ps
}

func TestPushBatchScalarFallback(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> s :: TSink;", "t", batchTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, s := rt.Find("a").(*tPass), rt.Find("s").(*tSink)
	a.Output(0).PushBatch(mkBatch(3))
	if len(s.got) != 3 {
		t.Fatalf("sink got %d packets, want 3", len(s.got))
	}
	for i, p := range s.got {
		if p.Data()[0] != byte(i) {
			t.Fatalf("packet %d out of order: %v", i, p.Data())
		}
	}
}

func TestPushBatchTarget(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> s :: TBatchSink;", "t", batchTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, s := rt.Find("a").(*tPass), rt.Find("s").(*tBatchSink)
	a.Output(0).PushBatch(mkBatch(4))
	if s.batchCalls != 1 || len(s.got) != 4 {
		t.Fatalf("batchCalls=%d got=%d, want 1 call with 4 packets", s.batchCalls, len(s.got))
	}
	for i, p := range s.got {
		if p.Data()[0] != byte(i) {
			t.Fatalf("packet %d out of order: %v", i, p.Data())
		}
	}
	// Single-packet batches take the scalar path — no dispatch savings
	// to be had.
	a.Output(0).PushBatch(mkBatch(1))
	if s.batchCalls != 1 || len(s.got) != 5 {
		t.Errorf("len-1 batch: batchCalls=%d got=%d, want scalar delivery", s.batchCalls, len(s.got))
	}
	// Empty batches are no-ops.
	a.Output(0).PushBatch(nil)
	if len(s.got) != 5 {
		t.Errorf("empty batch delivered packets")
	}
}

func TestPushBatchChargesLessThanScalar(t *testing.T) {
	charge := func(batched bool) int64 {
		cpu := simcpu.New(simcpu.P0)
		rt, err := BuildFromText("a :: TPass -> s :: TBatchSink;", "t", batchTestRegistry(), BuildOptions{CPU: cpu})
		if err != nil {
			t.Fatal(err)
		}
		a := rt.Find("a").(*tPass)
		before := cpu.TotalCycles()
		if batched {
			a.Output(0).PushBatch(mkBatch(8))
		} else {
			for _, p := range mkBatch(8) {
				a.Output(0).Push(p)
			}
		}
		return cpu.TotalCycles() - before
	}
	scalar, batch := charge(false), charge(true)
	if batch >= scalar {
		t.Errorf("8-packet batch charged %d cycles, scalar pushes %d — batching amortizes nothing", batch, scalar)
	}
}

func TestPullBatch(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> q :: TPuller -> k :: TPullSink;", "t", batchTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, k := rt.Find("a").(*tPass), rt.Find("k").(*tPullSink)
	for _, p := range mkBatch(5) {
		a.Push(0, p)
	}
	buf := make([]*packet.Packet, 8)
	if n := k.Input(0).PullBatch(buf); n != 5 {
		t.Fatalf("scalar-fallback PullBatch returned %d, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if buf[i].Data()[0] != byte(i) {
			t.Fatalf("packet %d out of order", i)
		}
	}
	if n := k.Input(0).PullBatch(buf); n != 0 {
		t.Errorf("drained queue returned %d packets", n)
	}
}

func TestPullBatchTarget(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> q :: TBatchPuller -> k :: TPullSink;", "t", batchTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, q, k := rt.Find("a").(*tPass), rt.Find("q").(*tBatchPuller), rt.Find("k").(*tPullSink)
	for _, p := range mkBatch(6) {
		a.Push(0, p)
	}
	buf := make([]*packet.Packet, 4)
	if n := k.Input(0).PullBatch(buf); n != 4 || q.batchCalls != 1 {
		t.Fatalf("PullBatch returned %d (calls %d), want 4 in 1 call", n, q.batchCalls)
	}
	for i := 0; i < 4; i++ {
		if buf[i].Data()[0] != byte(i) {
			t.Fatalf("packet %d out of order", i)
		}
	}
}

func TestSchedulerRunsAllTasks(t *testing.T) {
	cfg := "t1 :: TTask -> s1 :: TSink; t2 :: TTask -> s2 :: TSink; t3 :: TTask -> s3 :: TSink;"
	for _, workers := range []int{1, 2, 4, 8} {
		rt, err := BuildFromText(cfg, "t", batchTestRegistry(), BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheduler(rt, workers)
		if err != nil {
			t.Fatal(err)
		}
		if s.Workers() != workers {
			t.Errorf("Workers() = %d, want %d", s.Workers(), workers)
		}
		rounds := s.RunUntilIdle(100)
		if rounds != 3 {
			t.Errorf("workers=%d: active rounds = %d, want 3", workers, rounds)
		}
		for _, name := range []string{"s1", "s2", "s3"} {
			if got := len(rt.Find(name).(*tSink).got); got != 3 {
				t.Errorf("workers=%d: %s got %d packets, want 3", workers, name, got)
			}
		}
	}
}

func TestSchedulerRefusesSimulatedCPU(t *testing.T) {
	rt, err := BuildFromText("t1 :: TTask -> s1 :: TSink;", "t", batchTestRegistry(),
		BuildOptions{CPU: simcpu.New(simcpu.P0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduler(rt, 2); err == nil || !strings.Contains(err.Error(), "simulated CPU") {
		t.Errorf("NewScheduler(2) with CPU attached: err = %v, want refusal", err)
	}
	// One worker is the scalar path and stays legal.
	if _, err := NewScheduler(rt, 1); err != nil {
		t.Errorf("NewScheduler(1) with CPU attached: %v", err)
	}
}

func TestSchedulerArmsSynchronizers(t *testing.T) {
	build := func() *Router {
		rt, err := BuildFromText("t1 :: TTask -> s :: TSyncSink;", "t", batchTestRegistry(), BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	rt := build()
	if _, err := NewScheduler(rt, 1); err != nil {
		t.Fatal(err)
	}
	if rt.Find("s").(*tSyncSink).synced {
		t.Error("single-worker scheduler armed sync guards")
	}
	rt = build()
	if _, err := NewScheduler(rt, 2); err != nil {
		t.Fatal(err)
	}
	if !rt.Find("s").(*tSyncSink).synced {
		t.Error("parallel scheduler did not arm sync guards")
	}
}

func TestSchedulerStealing(t *testing.T) {
	// More workers than tasks: the surplus workers must steal (or idle)
	// without deadlocking, and every packet must still arrive.
	rt, err := BuildFromText("t1 :: TTask -> s1 :: TSink;", "t", batchTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ran, err := rt.RunParallelUntilIdle(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("active rounds = %d, want 3", ran)
	}
	if got := len(rt.Find("s1").(*tSink).got); got != 3 {
		t.Errorf("sink got %d packets, want 3", got)
	}
}
