package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/simcpu"
)

// tBatchSink records packets and whether they arrived via the batch
// path.
type tBatchSink struct {
	Base
	got        []*packet.Packet
	batchCalls int
}

func (s *tBatchSink) Push(port int, p *packet.Packet) { s.got = append(s.got, p) }
func (s *tBatchSink) PushBatch(port int, ps []*packet.Packet) {
	s.batchCalls++
	s.got = append(s.got, ps...)
}

// tBatchPuller hands out its queue in bulk.
type tBatchPuller struct {
	Base
	queue      []*packet.Packet
	batchCalls int
}

func (e *tBatchPuller) Push(port int, p *packet.Packet) { e.queue = append(e.queue, p) }
func (e *tBatchPuller) Pull(port int) *packet.Packet {
	if len(e.queue) == 0 {
		return nil
	}
	p := e.queue[0]
	e.queue = e.queue[1:]
	return p
}
func (e *tBatchPuller) PullBatch(port int, buf []*packet.Packet) int {
	e.batchCalls++
	n := copy(buf, e.queue)
	e.queue = e.queue[n:]
	return n
}

// tSyncSink reports whether the scheduler armed its guards.
type tSyncSink struct {
	Base
	synced bool
}

func (s *tSyncSink) Push(port int, p *packet.Packet) { p.Kill() }
func (s *tSyncSink) EnableSync()                     { s.synced = true }

// tSteer is a minimal FlowSteerer: route by first payload byte. It
// stands in for elements.FlowSteer, which cannot be imported here.
type tSteer struct {
	Base
}

func (e *tSteer) FlowSteering() {}
func (e *tSteer) Push(port int, p *packet.Packet) {
	e.Output(int(p.Data()[0]) % e.NOutputs()).Push(p)
}

// tDrain is a pulling task: each RunTask drains one packet from its
// input.
type tDrain struct {
	Base
	drained int
}

func (e *tDrain) RunTask() bool {
	p := e.Input(0).Pull()
	if p == nil {
		return false
	}
	e.drained++
	p.Kill()
	return true
}

func batchTestRegistry() *Registry {
	reg := testRegistry()
	sinkPorts := func(string) (graph.PortRange, graph.PortRange) {
		return graph.Between(0, 1), graph.Exactly(0)
	}
	reg.Register(&Spec{Name: "TBatchSink", Processing: "h/", Ports: sinkPorts,
		Make: func() Element { return &tBatchSink{} }})
	reg.Register(&Spec{Name: "TBatchPuller", Processing: "h/l", Ports: func(string) (graph.PortRange, graph.PortRange) {
		return graph.Between(0, 1), graph.Between(0, 1)
	}, Make: func() Element { return &tBatchPuller{} }})
	reg.Register(&Spec{Name: "TSyncSink", Processing: "h/", Ports: func(string) (graph.PortRange, graph.PortRange) {
		return graph.Between(0, 2), graph.Exactly(0)
	}, Make: func() Element { return &tSyncSink{} }})
	reg.Register(&Spec{Name: "TSteer", Processing: "h/h", Ports: func(string) (graph.PortRange, graph.PortRange) {
		return graph.Exactly(1), graph.AtLeast(1)
	}, Make: func() Element { return &tSteer{} }})
	reg.Register(&Spec{Name: "TDrain", Processing: "l/", Ports: func(string) (graph.PortRange, graph.PortRange) {
		return graph.Exactly(1), graph.Exactly(0)
	}, Make: func() Element { return &tDrain{} }})
	return reg
}

func mkBatch(n int) []*packet.Packet {
	ps := make([]*packet.Packet, n)
	for i := range ps {
		ps[i] = packet.New([]byte{byte(i)})
	}
	return ps
}

func TestPushBatchScalarFallback(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> s :: TSink;", "t", batchTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, s := rt.Find("a").(*tPass), rt.Find("s").(*tSink)
	a.Output(0).PushBatch(mkBatch(3))
	if len(s.got) != 3 {
		t.Fatalf("sink got %d packets, want 3", len(s.got))
	}
	for i, p := range s.got {
		if p.Data()[0] != byte(i) {
			t.Fatalf("packet %d out of order: %v", i, p.Data())
		}
	}
}

func TestPushBatchTarget(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> s :: TBatchSink;", "t", batchTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, s := rt.Find("a").(*tPass), rt.Find("s").(*tBatchSink)
	a.Output(0).PushBatch(mkBatch(4))
	if s.batchCalls != 1 || len(s.got) != 4 {
		t.Fatalf("batchCalls=%d got=%d, want 1 call with 4 packets", s.batchCalls, len(s.got))
	}
	for i, p := range s.got {
		if p.Data()[0] != byte(i) {
			t.Fatalf("packet %d out of order: %v", i, p.Data())
		}
	}
	// Single-packet batches take the scalar path — no dispatch savings
	// to be had.
	a.Output(0).PushBatch(mkBatch(1))
	if s.batchCalls != 1 || len(s.got) != 5 {
		t.Errorf("len-1 batch: batchCalls=%d got=%d, want scalar delivery", s.batchCalls, len(s.got))
	}
	// Empty batches are no-ops.
	a.Output(0).PushBatch(nil)
	if len(s.got) != 5 {
		t.Errorf("empty batch delivered packets")
	}
}

func TestPushBatchChargesLessThanScalar(t *testing.T) {
	charge := func(batched bool) int64 {
		cpu := simcpu.New(simcpu.P0)
		rt, err := BuildFromText("a :: TPass -> s :: TBatchSink;", "t", batchTestRegistry(), BuildOptions{CPU: cpu})
		if err != nil {
			t.Fatal(err)
		}
		a := rt.Find("a").(*tPass)
		before := cpu.TotalCycles()
		if batched {
			a.Output(0).PushBatch(mkBatch(8))
		} else {
			for _, p := range mkBatch(8) {
				a.Output(0).Push(p)
			}
		}
		return cpu.TotalCycles() - before
	}
	scalar, batch := charge(false), charge(true)
	if batch >= scalar {
		t.Errorf("8-packet batch charged %d cycles, scalar pushes %d — batching amortizes nothing", batch, scalar)
	}
}

func TestPullBatch(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> q :: TPuller -> k :: TPullSink;", "t", batchTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, k := rt.Find("a").(*tPass), rt.Find("k").(*tPullSink)
	for _, p := range mkBatch(5) {
		a.Push(0, p)
	}
	buf := make([]*packet.Packet, 8)
	if n := k.Input(0).PullBatch(buf); n != 5 {
		t.Fatalf("scalar-fallback PullBatch returned %d, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if buf[i].Data()[0] != byte(i) {
			t.Fatalf("packet %d out of order", i)
		}
	}
	if n := k.Input(0).PullBatch(buf); n != 0 {
		t.Errorf("drained queue returned %d packets", n)
	}
}

func TestPullBatchTarget(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> q :: TBatchPuller -> k :: TPullSink;", "t", batchTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, q, k := rt.Find("a").(*tPass), rt.Find("q").(*tBatchPuller), rt.Find("k").(*tPullSink)
	for _, p := range mkBatch(6) {
		a.Push(0, p)
	}
	buf := make([]*packet.Packet, 4)
	if n := k.Input(0).PullBatch(buf); n != 4 || q.batchCalls != 1 {
		t.Fatalf("PullBatch returned %d (calls %d), want 4 in 1 call", n, q.batchCalls)
	}
	for i := 0; i < 4; i++ {
		if buf[i].Data()[0] != byte(i) {
			t.Fatalf("packet %d out of order", i)
		}
	}
}

func TestSchedulerRunsAllTasks(t *testing.T) {
	cfg := "t1 :: TTask -> s1 :: TSink; t2 :: TTask -> s2 :: TSink; t3 :: TTask -> s3 :: TSink;"
	for _, workers := range []int{1, 2, 4, 8} {
		rt, err := BuildFromText(cfg, "t", batchTestRegistry(), BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheduler(rt, workers)
		if err != nil {
			t.Fatal(err)
		}
		if s.Workers() != workers {
			t.Errorf("Workers() = %d, want %d", s.Workers(), workers)
		}
		rounds := s.RunUntilIdle(100)
		if workers == 1 {
			// The scalar path keeps exact per-round semantics.
			if rounds != 3 {
				t.Errorf("workers=1: active rounds = %d, want 3", rounds)
			}
		} else if rounds < 1 {
			// Epoch mode reports coarser productive epochs; zero would
			// mean the workers never ran the tasks.
			t.Errorf("workers=%d: productive epochs = %d, want >= 1", workers, rounds)
		}
		for _, name := range []string{"s1", "s2", "s3"} {
			if got := len(rt.Find(name).(*tSink).got); got != 3 {
				t.Errorf("workers=%d: %s got %d packets, want 3", workers, name, got)
			}
		}
	}
}

func TestSchedulerRefusesSimulatedCPU(t *testing.T) {
	rt, err := BuildFromText("t1 :: TTask -> s1 :: TSink;", "t", batchTestRegistry(),
		BuildOptions{CPU: simcpu.New(simcpu.P0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduler(rt, 2); err == nil || !strings.Contains(err.Error(), "simulated CPU") {
		t.Errorf("NewScheduler(2) with CPU attached: err = %v, want refusal", err)
	}
	// One worker is the scalar path and stays legal.
	if _, err := NewScheduler(rt, 1); err != nil {
		t.Errorf("NewScheduler(1) with CPU attached: %v", err)
	}
}

func TestSchedulerArmsSynchronizers(t *testing.T) {
	// The sink is pushed into by two tasks, so the analysis must arm it.
	shared := "t1 :: TTask -> [0]s :: TSyncSink; t2 :: TTask -> [1]s;"
	build := func(cfg string) *Router {
		rt, err := BuildFromText(cfg, "t", batchTestRegistry(), BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	rt := build(shared)
	if _, err := NewScheduler(rt, 1); err != nil {
		t.Fatal(err)
	}
	if rt.Find("s").(*tSyncSink).synced {
		t.Error("single-worker scheduler armed sync guards")
	}
	rt = build(shared)
	if _, err := NewScheduler(rt, 2); err != nil {
		t.Fatal(err)
	}
	if !rt.Find("s").(*tSyncSink).synced {
		t.Error("parallel scheduler did not arm sync guards")
	}
	if !rt.Find("s").base().stats.shared {
		t.Error("two-task sink stats not atomic")
	}
	// A sink touched by exactly one task stays unguarded even in
	// parallel mode: the task-reach analysis proves exclusivity, so its
	// counters stay worker-local (plain).
	rt = build("t1 :: TTask -> s :: TSyncSink;")
	if _, err := NewScheduler(rt, 2); err != nil {
		t.Fatal(err)
	}
	if rt.Find("s").(*tSyncSink).synced {
		t.Error("task-exclusive sink was armed despite single-task proof")
	}
	if rt.Find("s").base().stats.shared {
		t.Error("task-exclusive sink stats went atomic despite single-task proof")
	}
}

func TestWorkerQueueStealRace(t *testing.T) {
	// The round-mode owner pops from the front while a thief pops from
	// the back. Run under -race, every entry must be handed out exactly
	// once.
	const n = 2000
	q := &workerQueue{entries: make([]*sharedEntry, n)}
	for i := range q.entries {
		q.entries[i] = &sharedEntry{pinned: -1}
	}
	all := append([]*sharedEntry(nil), q.entries...)
	var wg sync.WaitGroup
	got := make([][]*sharedEntry, 2)
	for side := 0; side < 2; side++ {
		wg.Add(1)
		go func(side int) {
			defer wg.Done()
			for {
				var e *sharedEntry
				var ok bool
				if side == 0 {
					e, ok = q.popFront()
				} else {
					e, ok = q.popBack()
				}
				if !ok {
					return
				}
				got[side] = append(got[side], e)
			}
		}(side)
	}
	wg.Wait()
	seen := map[*sharedEntry]bool{}
	for _, e := range append(got[0], got[1]...) {
		if seen[e] {
			t.Fatal("entry handed out twice")
		}
		seen[e] = true
	}
	if len(seen) != n {
		t.Fatalf("handed out %d of %d entries", len(seen), n)
	}
	for _, e := range all {
		if !seen[e] {
			t.Fatal("entry lost")
		}
	}
}

func TestFlowAffinityPinsSteeredPaths(t *testing.T) {
	// A source pushes through a flow steerer into two queue/drain
	// chains. The partitioner must pin each drain task to the worker
	// owning its steered output — and onto different workers with P=2 —
	// while the source stays stealable.
	cfg := `src :: TTask -> fs :: TSteer;
fs [0] -> q0 :: TPuller -> d0 :: TDrain;
fs [1] -> q1 :: TPuller -> d1 :: TDrain;`
	rt, err := BuildFromText(cfg, "t", batchTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	taskOf := func(name string) int {
		for ti, ei := range rt.taskElems {
			if rt.elements[ei] == rt.Find(name) {
				return ti
			}
		}
		t.Fatalf("no task for %s", name)
		return -1
	}
	aff, _ := flowAffinity(rt, rt.analyzeTasks())
	src, d0, d1 := taskOf("src"), taskOf("d0"), taskOf("d1")
	if aff[src] != -1 {
		t.Errorf("source task labeled %d, want -1 (stealable)", aff[src])
	}
	if aff[d0] < 0 || aff[d1] < 0 {
		t.Fatalf("drain tasks not flow-labeled: %d, %d", aff[d0], aff[d1])
	}
	if aff[d0] == aff[d1] {
		t.Errorf("both drains share label %d — steered outputs collapsed", aff[d0])
	}

	s, err := NewScheduler(rt, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan := s.plan.Load()
	worker := map[Task]int{}
	pinned := map[Task]bool{}
	for w, entries := range plan.perWorker {
		for _, e := range entries {
			worker[e.task] = w
			pinned[e.task] = e.pinned >= 0
		}
	}
	dt0, dt1 := rt.tasks[d0], rt.tasks[d1]
	if !pinned[dt0] || !pinned[dt1] {
		t.Error("drain tasks not pinned")
	}
	if worker[dt0] == worker[dt1] {
		t.Errorf("both drains placed on worker %d", worker[dt0])
	}
	if pinned[rt.tasks[src]] {
		t.Error("source task pinned despite having no flow label")
	}
}

func TestSchedulerStealing(t *testing.T) {
	// More workers than tasks: the surplus workers must steal (or idle)
	// without deadlocking, and every packet must still arrive.
	rt, err := BuildFromText("t1 :: TTask -> s1 :: TSink;", "t", batchTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ran, err := rt.RunParallelUntilIdle(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ran < 1 {
		t.Errorf("productive epochs = %d, want >= 1", ran)
	}
	if got := len(rt.Find("s1").(*tSink).got); got != 3 {
		t.Errorf("sink got %d packets, want 3", got)
	}
}
