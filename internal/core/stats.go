package core

import "sync/atomic"

// Per-element live statistics. Every packet transfer between two ports
// is accounted on both endpoints (the sender's out counters and the
// receiver's in counters), every Base.Drop is accounted on the dropping
// element, and every Work/Charge call is mirrored into the element's
// cycle counter. The accounting never touches the simcpu cost model, so
// attaching telemetry does not move the calibrated Figure 8/9 numbers.
//
// The counters run in one of two modes. In the default single-threaded
// runtime they are plain adds. Before the parallel scheduler starts its
// workers it arms shared mode on every element (see NewScheduler), and
// all subsequent updates use atomic adds. Reads always go through
// atomic loads, so handlers may sample a live parallel run.

// ElemStats holds one element's live counters.
type ElemStats struct {
	shared bool // armed before parallel workers start, then read-only

	pktsIn   int64
	bytesIn  int64
	pktsOut  int64
	bytesOut int64
	drops    int64
	cycles   int64
}

// EnableShared switches the counters to atomic updates. The parallel
// scheduler arms shared mode only on elements its task-reach analysis
// proves are touched by more than one task; a driver that pushes into
// an element from its own goroutines (outside any scheduler) must arm
// it here before the concurrency starts. There is no disarm: once
// shared, always shared.
func (s *ElemStats) EnableShared() { s.shared = true }

func (s *ElemStats) addIn(pkts, bytes int64) {
	if s.shared {
		atomic.AddInt64(&s.pktsIn, pkts)
		atomic.AddInt64(&s.bytesIn, bytes)
		return
	}
	s.pktsIn += pkts
	s.bytesIn += bytes
}

func (s *ElemStats) addOut(pkts, bytes int64) {
	if s.shared {
		atomic.AddInt64(&s.pktsOut, pkts)
		atomic.AddInt64(&s.bytesOut, bytes)
		return
	}
	s.pktsOut += pkts
	s.bytesOut += bytes
}

func (s *ElemStats) addDrops(n int64) {
	if s.shared {
		atomic.AddInt64(&s.drops, n)
		return
	}
	s.drops += n
}

func (s *ElemStats) addCycles(c int64) {
	if s.shared {
		atomic.AddInt64(&s.cycles, c)
		return
	}
	s.cycles += c
}

// Transplant copies o's counters into s, replacing whatever s held.
// Hot-swap uses it to carry an element's telemetry across a
// configuration replacement so counters stay continuous. Both routers
// are stopped when it runs, but the stores are atomic anyway so a
// handler sampling from another goroutine cannot observe torn values.
func (s *ElemStats) Transplant(o *ElemStats) {
	atomic.StoreInt64(&s.pktsIn, atomic.LoadInt64(&o.pktsIn))
	atomic.StoreInt64(&s.bytesIn, atomic.LoadInt64(&o.bytesIn))
	atomic.StoreInt64(&s.pktsOut, atomic.LoadInt64(&o.pktsOut))
	atomic.StoreInt64(&s.bytesOut, atomic.LoadInt64(&o.bytesOut))
	atomic.StoreInt64(&s.drops, atomic.LoadInt64(&o.drops))
	atomic.StoreInt64(&s.cycles, atomic.LoadInt64(&o.cycles))
}

// PacketsIn returns the number of packets the element received on its
// input ports.
func (s *ElemStats) PacketsIn() int64 { return atomic.LoadInt64(&s.pktsIn) }

// BytesIn returns the bytes received on input ports.
func (s *ElemStats) BytesIn() int64 { return atomic.LoadInt64(&s.bytesIn) }

// PacketsOut returns the packets the element emitted: port pushes,
// answered pulls, and deliveries recorded with CountDelivered.
func (s *ElemStats) PacketsOut() int64 { return atomic.LoadInt64(&s.pktsOut) }

// BytesOut returns the bytes emitted.
func (s *ElemStats) BytesOut() int64 { return atomic.LoadInt64(&s.bytesOut) }

// Drops returns the packets the element terminated without forwarding
// (dropped or consumed), as recorded by Base.Drop/CountDrops.
func (s *ElemStats) Drops() int64 { return atomic.LoadInt64(&s.drops) }

// Cycles returns the model cycles the element's processing code charged
// (mirrored from Work/Charge even when no cost model is attached).
func (s *ElemStats) Cycles() int64 { return atomic.LoadInt64(&s.cycles) }

// ElementStatsReport is one element's statistics snapshot, shaped for
// JSON output (click -report, click-bench -json).
type ElementStatsReport struct {
	Name       string `json:"name"`
	Class      string `json:"class"`
	PacketsIn  int64  `json:"packets_in"`
	BytesIn    int64  `json:"bytes_in"`
	PacketsOut int64  `json:"packets_out"`
	BytesOut   int64  `json:"bytes_out"`
	Drops      int64  `json:"drops"`
	Cycles     int64  `json:"cycles"`
}

// StatsReport snapshots every element's counters in graph order.
func (rt *Router) StatsReport() []ElementStatsReport {
	reps := make([]ElementStatsReport, 0, len(rt.elements))
	for _, e := range rt.elements {
		if e == nil {
			continue // removed by an incremental tenant delete
		}
		b := e.base()
		s := &b.stats
		reps = append(reps, ElementStatsReport{
			Name:       b.name,
			Class:      b.class,
			PacketsIn:  s.PacketsIn(),
			BytesIn:    s.BytesIn(),
			PacketsOut: s.PacketsOut(),
			BytesOut:   s.BytesOut(),
			Drops:      s.Drops(),
			Cycles:     s.Cycles(),
		})
	}
	return reps
}

// StatsTotals aggregates a report: total transfers observed and total
// packets terminated. In/out totals count every inter-element hop, so
// they are a measure of dispatch volume, not of distinct packets.
type StatsTotals struct {
	PacketsIn  int64 `json:"packets_in"`
	BytesIn    int64 `json:"bytes_in"`
	PacketsOut int64 `json:"packets_out"`
	BytesOut   int64 `json:"bytes_out"`
	Drops      int64 `json:"drops"`
	Cycles     int64 `json:"cycles"`
}

// Totals sums a stats report.
func Totals(reps []ElementStatsReport) StatsTotals {
	var t StatsTotals
	for _, r := range reps {
		t.PacketsIn += r.PacketsIn
		t.BytesIn += r.BytesIn
		t.PacketsOut += r.PacketsOut
		t.BytesOut += r.BytesOut
		t.Drops += r.Drops
		t.Cycles += r.Cycles
	}
	return t
}
