package core

import "sync/atomic"

// Guard generations. A flow fast path caches the *net effect* of the
// slow path, which is only valid while the state the slow path consulted
// stays put. Rather than tracking fine-grained dependencies, the runtime
// keeps one generation counter per class of guarded state; every write
// handler (and learned-state update) that mutates such state bumps its
// class counter, and cached entries snapshot the full vector when they
// are installed. A hit compares snapshots: any mismatch sends the packet
// back down the slow path, which re-records against the new state. Bumps
// are cheap (one atomic add) and only coarse-grained correctness matters
// — a spurious invalidation costs one slow-path traversal, a missed one
// would forward stale packets.

// GuardClass names one class of guarded router state.
type GuardClass int

const (
	// GuardRoute covers routing tables (LookupIPRoute and friends).
	GuardRoute GuardClass = iota
	// GuardARP covers link-level address resolution state (ARP tables).
	GuardARP
	// GuardConfig covers element configuration changed through write
	// handlers: Queue capacities, RED thresholds, Switch ports.
	GuardConfig

	numGuardClasses
)

// GuardSnapshot is a point-in-time copy of every guard generation,
// comparable with ==.
type GuardSnapshot [numGuardClasses]uint64

// Generations holds the per-class guard counters for one router.
// Counters are atomic: write handlers and learned-state updates may run
// on any worker while fast paths read concurrently.
type Generations struct {
	v [numGuardClasses]atomic.Uint64
}

// Bump advances the given class counter, invalidating every cache entry
// whose snapshot predates the bump.
func (g *Generations) Bump(c GuardClass) {
	if g == nil {
		return
	}
	g.v[c].Add(1)
}

// Load returns the current generation of one class.
func (g *Generations) Load(c GuardClass) uint64 {
	if g == nil {
		return 0
	}
	return g.v[c].Load()
}

// Snapshot copies the full generation vector.
func (g *Generations) Snapshot() GuardSnapshot {
	var s GuardSnapshot
	if g == nil {
		return s
	}
	for i := range s {
		s[i] = g.v[i].Load()
	}
	return s
}

// CopyFrom adopts another router's generation values. Hot-swap uses this
// so that cache entries transplanted alongside keep meaningful
// snapshots: the new router continues the old router's counter history
// instead of restarting at zero (which could spuriously *validate* stale
// entries if the old counters happened to be zero too — adopting the
// values is both correct and cheap).
func (g *Generations) CopyFrom(o *Generations) {
	if g == nil || o == nil {
		return
	}
	for i := range g.v {
		g.v[i].Store(o.v[i].Load())
	}
}

// Guards returns the router's guard generation counters.
func (rt *Router) Guards() *Generations { return rt.guards }

// BumpGuard bumps a guard class on the element's router. Elements call
// this from write handlers and learned-state updates; it is nil-safe so
// directly constructed elements (unit tests) need no router.
func (b *Base) BumpGuard(c GuardClass) {
	if b.router == nil {
		return
	}
	b.router.guards.Bump(c)
}

// GuardSnapshot returns the current guard vector of the element's
// router (zero when unwired).
func (b *Base) GuardSnapshot() GuardSnapshot {
	if b.router == nil {
		return GuardSnapshot{}
	}
	return b.router.guards.Snapshot()
}
