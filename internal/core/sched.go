package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Scheduler runs a router's tasks on P workers, the multi-core
// counterpart of the single kernel thread RunTaskRound stands in for.
// Tasks (PollDevice loops, ToDevice and Unqueue pulls) are statically
// partitioned across per-worker run queues; within each round an idle
// worker steals queued tasks from its peers, so a worker whose devices
// went quiet helps drain the busy ones. A task is one queue entry per
// round — it never runs on two workers at once, so per-task state needs
// no locks; state shared between tasks (Queue rings, ARP tables) is
// guarded by the elements themselves, armed via Synchronizer.
type Scheduler struct {
	rt      *Router
	workers int
	assign  [][]taskEntry // static partition, one slice per worker
	queues  []workerQueue
}

// taskEntry is one schedulable unit: a task and the number of times it
// runs per round (its ScheduleInfo weight).
type taskEntry struct {
	task Task
	runs int
}

// workerQueue is one worker's run queue for the current round. The
// owner pops from the front; thieves take from the back.
type workerQueue struct {
	mu      sync.Mutex
	entries []taskEntry
}

func (q *workerQueue) popFront() (taskEntry, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.entries) == 0 {
		return taskEntry{}, false
	}
	e := q.entries[0]
	q.entries = q.entries[1:]
	return e, true
}

func (q *workerQueue) popBack() (taskEntry, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.entries) == 0 {
		return taskEntry{}, false
	}
	e := q.entries[len(q.entries)-1]
	q.entries = q.entries[:len(q.entries)-1]
	return e, true
}

// NewScheduler builds a P-worker scheduler for an assembled router.
// The simulated-CPU cost model is single-threaded by design (it is the
// calibrated model of one Pentium III), so a parallel scheduler refuses
// routers built with one attached.
func NewScheduler(rt *Router, workers int) (*Scheduler, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > 1 && rt.CPU != nil {
		return nil, fmt.Errorf("core: parallel scheduler cannot run with the simulated CPU cost model attached")
	}
	s := &Scheduler{
		rt:      rt,
		workers: workers,
		assign:  make([][]taskEntry, workers),
		queues:  make([]workerQueue, workers),
	}
	for i, t := range rt.tasks {
		w := i % workers
		s.assign[w] = append(s.assign[w], taskEntry{task: t, runs: rt.weights[i]})
	}
	if workers > 1 {
		for _, e := range rt.elements {
			// Telemetry counters switch to atomic updates before any
			// worker goroutine exists, so the flag flip is race-free.
			e.base().stats.shared = true
			if sy, ok := e.(Synchronizer); ok {
				sy.EnableSync()
			}
		}
	}
	return s, nil
}

// Workers returns the worker count.
func (s *Scheduler) Workers() int { return s.workers }

// steal takes a task from the back of another worker's queue.
func (s *Scheduler) steal(self int) (taskEntry, bool) {
	for off := 1; off < s.workers; off++ {
		if e, ok := s.queues[(self+off)%s.workers].popBack(); ok {
			return e, true
		}
	}
	return taskEntry{}, false
}

// RunRound runs every task once (weight times each) across the workers
// and reports whether any did useful work — the parallel equivalent of
// Router.RunTaskRound, with the same idle-detection semantics.
func (s *Scheduler) RunRound() bool {
	if s.workers == 1 {
		return s.rt.RunTaskRound()
	}
	for w := range s.queues {
		q := &s.queues[w]
		q.mu.Lock()
		q.entries = append(q.entries[:0], s.assign[w]...)
		q.mu.Unlock()
	}
	var any atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			did := false
			for {
				e, ok := s.queues[self].popFront()
				if !ok {
					if e, ok = s.steal(self); !ok {
						break
					}
				}
				for r := 0; r < e.runs; r++ {
					if e.task.RunTask() {
						did = true
					}
				}
			}
			if did {
				any.Store(true)
			}
		}(w)
	}
	wg.Wait()
	return any.Load()
}

// RunUntilIdle runs rounds until none does useful work, up to
// maxRounds, returning the number of rounds that did work.
func (s *Scheduler) RunUntilIdle(maxRounds int) int {
	rounds := 0
	for rounds < maxRounds && s.RunRound() {
		rounds++
	}
	return rounds
}

// RunParallelUntilIdle builds a scheduler with the given worker count
// and drives the router until idle — the parallel counterpart of
// RunUntilIdle.
func (rt *Router) RunParallelUntilIdle(workers, maxRounds int) (int, error) {
	s, err := NewScheduler(rt, workers)
	if err != nil {
		return 0, err
	}
	return s.RunUntilIdle(maxRounds), nil
}
