package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Scheduler runs a router's tasks on P workers, the multi-core
// counterpart of the single kernel thread RunTaskRound stands in for.
// Tasks (PollDevice loops, ToDevice and Unqueue pulls) are statically
// partitioned across per-worker run queues; within each round an idle
// worker steals queued tasks from its peers, so a worker whose devices
// went quiet helps drain the busy ones. A task is one queue entry per
// round — it never runs on two workers at once, so per-task state needs
// no locks; state shared between tasks (Queue rings, ARP tables) is
// guarded by the elements themselves, armed via Synchronizer.
type Scheduler struct {
	rt      *Router
	workers int
	assign  [][]taskEntry // static partition, one slice per worker
	queues  []workerQueue

	// pending holds a router awaiting installation; RunRound applies it
	// at the next round boundary (all workers joined), where no task is
	// mid-flight. swapErr records a failed installation.
	pending atomic.Pointer[Router]
	swapErr error
}

// taskEntry is one schedulable unit: a task and the number of times it
// runs per round (its ScheduleInfo weight).
type taskEntry struct {
	task Task
	runs int
}

// workerQueue is one worker's run queue for the current round. The
// owner pops from the front; thieves take from the back.
type workerQueue struct {
	mu      sync.Mutex
	entries []taskEntry
}

func (q *workerQueue) popFront() (taskEntry, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.entries) == 0 {
		return taskEntry{}, false
	}
	e := q.entries[0]
	q.entries = q.entries[1:]
	return e, true
}

func (q *workerQueue) popBack() (taskEntry, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.entries) == 0 {
		return taskEntry{}, false
	}
	e := q.entries[len(q.entries)-1]
	q.entries = q.entries[:len(q.entries)-1]
	return e, true
}

// NewScheduler builds a P-worker scheduler for an assembled router.
// The simulated-CPU cost model is single-threaded by design (it is the
// calibrated model of one Pentium III), so a parallel scheduler refuses
// routers built with one attached.
func NewScheduler(rt *Router, workers int) (*Scheduler, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > 1 && rt.CPU != nil {
		return nil, fmt.Errorf("core: parallel scheduler cannot run with the simulated CPU cost model attached")
	}
	s := &Scheduler{
		rt:      rt,
		workers: workers,
		assign:  make([][]taskEntry, workers),
		queues:  make([]workerQueue, workers),
	}
	s.partition()
	if workers > 1 {
		// Telemetry counters switch to atomic updates and elements take
		// their locks before any worker goroutine exists, so the flag
		// flips are race-free.
		s.arm(rt)
	}
	return s, nil
}

// Workers returns the worker count.
func (s *Scheduler) Workers() int { return s.workers }

// Router returns the router the scheduler currently drives (the
// replacement, after a hot-swap).
func (s *Scheduler) Router() *Router { return s.rt }

// SwapErr returns the error from the most recent failed RequestHotswap
// installation, or nil.
func (s *Scheduler) SwapErr() error { return s.swapErr }

// arm switches a router's elements to parallel operation: telemetry
// counters go atomic and lock-guarded elements enable their locks. It
// must run before any worker goroutine touches the router.
func (s *Scheduler) arm(rt *Router) {
	for _, e := range rt.elements {
		e.base().stats.shared = true
		if sy, ok := e.(Synchronizer); ok {
			sy.EnableSync()
		}
	}
}

// partition rebuilds the static task partition from the current router.
func (s *Scheduler) partition() {
	s.assign = make([][]taskEntry, s.workers)
	for i, t := range s.rt.tasks {
		w := i % s.workers
		s.assign[w] = append(s.assign[w], taskEntry{task: t, runs: s.rt.weights[i]})
	}
}

// Hotswap replaces the scheduled router with next at a round boundary:
// element state transplants across by name (Router.Hotswap), the task
// partition is rebuilt from next's tasks, and — in parallel mode —
// next's elements are armed for concurrent access before any worker
// sees them. The caller must not be inside RunRound; from another
// goroutine, use RequestHotswap instead.
func (s *Scheduler) Hotswap(next *Router) error {
	if s.workers > 1 && next.CPU != nil {
		return fmt.Errorf("core: hotswap: parallel scheduler cannot adopt a router with the simulated CPU cost model attached")
	}
	if s.workers > 1 {
		// Arm before transplant so transplanted counters land in an
		// already-shared stats block.
		s.arm(next)
	}
	if err := s.rt.Hotswap(next); err != nil {
		return err
	}
	s.rt = next
	s.partition()
	return nil
}

// RequestHotswap asks the scheduler to install next at its next round
// boundary. It is safe to call from another goroutine (a signal
// handler, a control loop) while RunUntilIdle is running; the
// installation itself happens between rounds, when no worker is
// running. A second request before the first installs replaces it.
// Installation failures are reported through SwapErr.
func (s *Scheduler) RequestHotswap(next *Router) { s.pending.Store(next) }

// applyPending installs a requested router, reporting whether one was
// pending.
func (s *Scheduler) applyPending() bool {
	next := s.pending.Swap(nil)
	if next == nil {
		return false
	}
	if err := s.Hotswap(next); err != nil {
		s.swapErr = err
		return false
	}
	return true
}

// steal takes a task from the back of another worker's queue.
func (s *Scheduler) steal(self int) (taskEntry, bool) {
	for off := 1; off < s.workers; off++ {
		if e, ok := s.queues[(self+off)%s.workers].popBack(); ok {
			return e, true
		}
	}
	return taskEntry{}, false
}

// RunRound runs every task once (weight times each) across the workers
// and reports whether any did useful work — the parallel equivalent of
// Router.RunTaskRound, with the same idle-detection semantics.
func (s *Scheduler) RunRound() bool {
	// Round boundary: no worker exists here, so a requested hot-swap
	// installs race-free. An applied swap counts as progress — the new
	// router deserves at least one round before idle detection bites.
	swapped := s.applyPending()
	if s.workers == 1 {
		return s.rt.RunTaskRound() || swapped
	}
	for w := range s.queues {
		q := &s.queues[w]
		q.mu.Lock()
		q.entries = append(q.entries[:0], s.assign[w]...)
		q.mu.Unlock()
	}
	var any atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			did := false
			for {
				e, ok := s.queues[self].popFront()
				if !ok {
					if e, ok = s.steal(self); !ok {
						break
					}
				}
				for r := 0; r < e.runs; r++ {
					if e.task.RunTask() {
						did = true
					}
				}
			}
			if did {
				any.Store(true)
			}
		}(w)
	}
	wg.Wait()
	return any.Load() || swapped
}

// RunUntilIdle runs rounds until none does useful work, up to
// maxRounds, returning the number of rounds that did work.
func (s *Scheduler) RunUntilIdle(maxRounds int) int {
	rounds := 0
	for rounds < maxRounds && s.RunRound() {
		rounds++
	}
	return rounds
}

// RunParallelUntilIdle builds a scheduler with the given worker count
// and drives the router until idle — the parallel counterpart of
// RunUntilIdle.
func (rt *Router) RunParallelUntilIdle(workers, maxRounds int) (int, error) {
	s, err := NewScheduler(rt, workers)
	if err != nil {
		return 0, err
	}
	return s.RunUntilIdle(maxRounds), nil
}
