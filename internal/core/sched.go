package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Scheduler runs a router's tasks on P workers, the multi-core
// counterpart of the single kernel thread RunTaskRound stands in for.
// Tasks (PollDevice loops, ToDevice and Unqueue pulls) are statically
// partitioned across workers; flow-steered paths (FlowSteerer) are
// pinned so same-flow packets never cross cores, and everything else is
// stealable by idle workers. A task never runs on two workers at once —
// each task entry carries a claim flag the running worker holds — so
// per-task state needs no locks. State shared between tasks (Queue
// rings, ARP tables) is handled by the elements themselves, armed via
// Synchronizer/ConcurrencyHinter from the graph analysis: elements
// proven to be touched by a single task keep plain counters and skip
// their guards entirely.
//
// Two run modes share the partition:
//
//   - RunRound: one barrier-synchronized round, every task once. This
//     is the deterministic mode the behavior-preservation difftests and
//     the click -rounds loop drive directly.
//   - RunUntilIdle with workers > 1: epoch mode. Workers free-run over
//     their task lists with no per-round barrier; a monitor detects
//     quiescence when every worker completes a full pass without any
//     productive task, and workers rendezvous only for hot-swap
//     installation and shutdown.
type Scheduler struct {
	rt      *Router
	workers int

	// plan is the current task partition. It is rebuilt only at
	// quiescent points (construction, hot-swap, tenant splice/remove)
	// and read through an atomic pointer by free-running workers.
	plan atomic.Pointer[schedPlan]

	// aff is the per-task flow-affinity label table, parallel to
	// rt.tasks; affLabels is the number of labels handed out so far.
	// Incremental tenant operations extend and filter these instead of
	// re-flooding the whole graph, so a splice costs O(tenant).
	aff       []int
	affLabels int

	queues []workerQueue // per-round run queues for the RunRound path

	// pending holds a router awaiting installation; it installs at the
	// next round boundary (RunRound) or rendezvous (epoch mode), where
	// no task is mid-flight. swapErr records a failed installation.
	pending atomic.Pointer[Router]
	swapErr error

	// Epoch-mode state.
	stopFlag   atomic.Bool
	rendezvous atomic.Bool
	progress   atomic.Uint64 // bumped once per productive worker pass
	passes     []passCounter // per-worker pass counts
	parkMu     sync.Mutex
	parkCond   *sync.Cond
	parked     int

	// Synchronized control operations (SyncDo): handler reads and
	// writes, hot-swaps and other control-plane work submitted from
	// other goroutines. Ops run only at quiescent points — at a round
	// boundary, at an epoch rendezvous, or directly when no run is
	// active — so they never race the dataplane. runMu is held for the
	// whole of RunRound and runEpochs; a direct SyncDo drain holds it
	// too, which is what makes "no run active" a real quiescent point.
	runMu   sync.Mutex
	opMu    sync.Mutex
	ops     []*syncOp
	opCount atomic.Int32
}

// syncOp is one queued control operation.
type syncOp struct {
	fn   func()
	done chan struct{}
}

// passCounter is a cache-line padded per-worker counter, so the
// monitor's polling does not bounce lines between workers.
type passCounter struct {
	v atomic.Uint64
	_ [56]byte
}

// sharedEntry is one schedulable unit: a task, the number of times it
// runs per pass (its ScheduleInfo weight), and its placement. The
// running flag is the claim a worker holds while executing the task;
// it is also the happens-before edge between consecutive executions on
// different workers.
type sharedEntry struct {
	task    Task
	runs    int
	pinned  int // owning worker for flow-affine tasks, -1 if stealable
	running atomic.Bool
}

// schedPlan is an immutable task partition snapshot.
type schedPlan struct {
	perWorker [][]*sharedEntry
}

// workerQueue is one worker's run queue for a RunRound round. The
// owner pops from the front; thieves take from the back.
type workerQueue struct {
	mu      sync.Mutex
	entries []*sharedEntry
}

func (q *workerQueue) popFront() (*sharedEntry, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.entries) == 0 {
		return nil, false
	}
	e := q.entries[0]
	q.entries = q.entries[1:]
	return e, true
}

func (q *workerQueue) popBack() (*sharedEntry, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.entries) == 0 {
		return nil, false
	}
	e := q.entries[len(q.entries)-1]
	q.entries = q.entries[:len(q.entries)-1]
	return e, true
}

// NewScheduler builds a P-worker scheduler for an assembled router.
// The simulated-CPU cost model is single-threaded by design (it is the
// calibrated model of one Pentium III), so a parallel scheduler refuses
// routers built with one attached.
func NewScheduler(rt *Router, workers int) (*Scheduler, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > 1 && rt.CPU != nil {
		return nil, fmt.Errorf("core: parallel scheduler cannot run with the simulated CPU cost model attached")
	}
	s := &Scheduler{
		rt:      rt,
		workers: workers,
		queues:  make([]workerQueue, workers),
		passes:  make([]passCounter, workers),
	}
	s.parkCond = sync.NewCond(&s.parkMu)
	if workers > 1 {
		// Analysis and arming happen before any worker goroutine
		// exists, so the flag flips and hint stores are race-free.
		tr := rt.analyzeTasks()
		s.arm(rt, tr)
		s.partition(tr)
	} else {
		s.partition(nil)
	}
	return s, nil
}

// Workers returns the worker count.
func (s *Scheduler) Workers() int { return s.workers }

// Router returns the router the scheduler currently drives (the
// replacement, after a hot-swap).
func (s *Scheduler) Router() *Router { return s.rt }

// SwapErr returns the error from the most recent failed RequestHotswap
// installation, or nil.
func (s *Scheduler) SwapErr() error { return s.swapErr }

// arm switches a router's elements to parallel operation, guided by
// the task-reach analysis: an element touched by two or more tasks
// gets atomic telemetry counters and its Synchronizer guard; an
// element proven exclusive to one task keeps plain counters and no
// guard, because a task never runs on two workers concurrently (claim
// flags in epoch mode, queue mutexes in round mode provide the
// happens-before edge when a task migrates). ConcurrencyHinter
// elements (Queue) additionally learn their exact producer and
// consumer task counts, selecting the single-producer/single-consumer
// ring fast paths. It must run before any worker goroutine touches the
// router.
func (s *Scheduler) arm(rt *Router, tr *taskReach) {
	counts := tr.touchCounts(rt)
	for i, e := range rt.elements {
		if e == nil {
			continue // removed by an incremental tenant delete
		}
		shared := counts[i] > 1
		e.base().stats.shared = shared
		if sy, ok := e.(Synchronizer); ok && shared {
			sy.EnableSync()
		}
		if h, ok := e.(ConcurrencyHinter); ok {
			h.HintConcurrency(tr.accessCounts(i))
		}
	}
}

// flowAffinity assigns flow-steered tasks a label per FlowSteerer
// output: every task that consumes from a steered output's downstream
// region — transitively, across further queues — shares that output's
// label, so the whole per-flow path lands on one worker. Unsteered
// tasks get -1. The second result is the number of labels assigned, so
// an incremental splice can offset a subrouter's labels past the ones
// already in use.
func flowAffinity(rt *Router, tr *taskReach) ([]int, int) {
	aff := make([]int, len(rt.tasks))
	for i := range aff {
		aff[i] = -1
	}
	if tr == nil {
		return aff, 0
	}
	label := 0
	for ei, e := range rt.elements {
		if _, ok := e.(FlowSteerer); !ok {
			continue
		}
		nout := len(rt.proc.Out[ei])
		for o := 0; o < nout; o++ {
			down := map[int]bool{}
			for _, d := range graph.PushFlood(rt.Graph, rt.proc, ei, o) {
				down[d] = true
			}
			for changed := true; changed; {
				changed = false
				for t := range rt.tasks {
					if aff[t] >= 0 {
						continue
					}
					hit := down[rt.taskElems[t]]
					if !hit {
						for d := range tr.pullFrom[t] {
							if down[d] {
								hit = true
								break
							}
						}
					}
					if !hit {
						continue
					}
					aff[t] = label + o
					for d := range tr.pushInto[t] {
						down[d] = true
					}
					changed = true
				}
			}
		}
		label += nout
	}
	return aff, label
}

// partition recomputes the affinity table from scratch (construction
// and hot-swap, where the whole router is new) and rebuilds the plan.
func (s *Scheduler) partition(tr *taskReach) {
	s.aff, s.affLabels = flowAffinity(s.rt, tr)
	s.rebuildPlan()
}

// rebuildPlan rebuilds the task partition from the current router and
// the stored affinity table: flow-affine tasks are pinned to
// label-modulo-P workers and are not stealable; the rest round-robin
// and may be stolen by idle workers.
func (s *Scheduler) rebuildPlan() {
	per := make([][]*sharedEntry, s.workers)
	next := 0
	for i := range s.rt.tasks {
		e := &sharedEntry{task: s.rt.tasks[i], runs: s.rt.weights[i], pinned: -1}
		var w int
		if s.aff[i] >= 0 {
			w = s.aff[i] % s.workers
			e.pinned = w
		} else {
			w = next % s.workers
			next++
		}
		per[w] = append(per[w], e)
	}
	s.plan.Store(&schedPlan{perWorker: per})
}

// SpliceTenant splices a freshly built, disjoint subrouter into the
// running router — the incremental counterpart of Hotswap for a tenant
// create. In parallel mode the subrouter's elements are armed from its
// own task-reach analysis first; because the subgraph is disjoint from
// everything already installed (the management plane combines tenants
// with zero links), the sub-local analysis is exact. The caller must
// hold a quiescent point (call from inside SyncDo); the method must
// not re-enter SyncDo.
func (s *Scheduler) SpliceTenant(sub *Router) error {
	if s.workers > 1 && sub.CPU != nil {
		return fmt.Errorf("core: splice: parallel scheduler cannot adopt a router with the simulated CPU cost model attached")
	}
	var tr *taskReach
	if s.workers > 1 {
		tr = sub.analyzeTasks()
		s.arm(sub, tr)
	}
	subAff, labels := flowAffinity(sub, tr)
	if err := s.rt.Splice(sub); err != nil {
		return err
	}
	for _, a := range subAff {
		if a >= 0 {
			a += s.affLabels
		}
		s.aff = append(s.aff, a)
	}
	s.affLabels += labels
	s.rebuildPlan()
	return nil
}

// RemoveTenant removes every element under the given name prefix from
// the running router, returning the removed elements so the caller can
// release external resources. Same quiescent-point contract as
// SpliceTenant.
func (s *Scheduler) RemoveTenant(prefix string) []Element {
	removed, taskMask := s.rt.RemoveByPrefix(prefix)
	kept := s.aff[:0]
	for t, dead := range taskMask {
		if !dead {
			kept = append(kept, s.aff[t])
		}
	}
	s.aff = kept
	s.rebuildPlan()
	return removed
}

// SwapTenant replaces the subgraph under prefix with sub, transplanting
// state between same-named elements exactly as a full hot-swap would
// (telemetry always, StateCarrier state on Go-type identity, guard
// generations adopted). Sub's element names must all lie under prefix
// or at least not collide with surviving elements; the check runs
// before any mutation. Same quiescent-point contract as SpliceTenant.
func (s *Scheduler) SwapTenant(prefix string, sub *Router) ([]Element, error) {
	if s.workers > 1 && sub.CPU != nil {
		return nil, fmt.Errorf("core: swap: parallel scheduler cannot adopt a router with the simulated CPU cost model attached")
	}
	for name := range sub.byName {
		if _, clash := s.rt.byName[name]; clash && !strings.HasPrefix(name, prefix) {
			return nil, fmt.Errorf("core: swap: element %q collides outside prefix %q", name, prefix)
		}
	}
	if err := s.rt.TransplantInto(sub); err != nil {
		return nil, err
	}
	removed := s.RemoveTenant(prefix)
	return removed, s.SpliceTenant(sub)
}

// Hotswap replaces the scheduled router with next at a quiescent
// point: element state transplants across by name (Router.Hotswap),
// the task partition is rebuilt from next's tasks, and — in parallel
// mode — next's elements are armed for concurrent access before any
// worker sees them. The caller must not be inside RunRound or epoch
// execution; from another goroutine, use RequestHotswap instead.
func (s *Scheduler) Hotswap(next *Router) error {
	if s.workers > 1 && next.CPU != nil {
		return fmt.Errorf("core: hotswap: parallel scheduler cannot adopt a router with the simulated CPU cost model attached")
	}
	var tr *taskReach
	if s.workers > 1 {
		// Arm before transplant so transplanted counters land in an
		// already-shared stats block.
		tr = next.analyzeTasks()
		s.arm(next, tr)
	}
	if err := s.rt.Hotswap(next); err != nil {
		return err
	}
	s.rt = next
	s.partition(tr)
	return nil
}

// RequestHotswap asks the scheduler to install next at its next
// quiescent point. It is safe to call from another goroutine (a signal
// handler, a control loop) while RunUntilIdle is running; in epoch
// mode the monitor rendezvouses the workers, installs, and releases
// them. A second request before the first installs replaces it.
// Installation failures are reported through SwapErr.
func (s *Scheduler) RequestHotswap(next *Router) { s.pending.Store(next) }

// SyncDo runs fn at the scheduler's next quiescent point and blocks
// until it has run. Safe to call from any goroutine while RunRound or
// RunUntilIdle is executing: in round mode the op runs at the next
// round boundary, in epoch mode the monitor rendezvouses the workers
// first, and when no run is active at all the op runs immediately on
// the calling goroutine. fn sees a dataplane with no task mid-flight,
// so handler writes that restructure element state (Queue capacity,
// RED thresholds) cannot tear against traffic. fn must not call back
// into the scheduler's run or SyncDo entry points.
func (s *Scheduler) SyncDo(fn func()) {
	op := &syncOp{fn: fn, done: make(chan struct{})}
	s.opMu.Lock()
	s.ops = append(s.ops, op)
	s.opCount.Add(1)
	s.opMu.Unlock()
	for {
		select {
		case <-op.done:
			return
		default:
		}
		if s.runMu.TryLock() {
			// No run is active: this goroutine is the quiescent point.
			s.drainOps()
			s.runMu.Unlock()
		}
		select {
		case <-op.done:
			return
		default:
			runtime.Gosched()
		}
	}
}

// drainOps runs every queued control operation. Callers must hold
// runMu (directly or by being inside a run) and be at a quiescent
// point.
func (s *Scheduler) drainOps() {
	for {
		s.opMu.Lock()
		ops := s.ops
		s.ops = nil
		s.opMu.Unlock()
		if len(ops) == 0 {
			return
		}
		for _, op := range ops {
			op.fn()
			s.opCount.Add(-1)
			close(op.done)
		}
	}
}

// ReadHandler reads "element.handler" at a quiescent point, so the
// value is a consistent snapshot even under the free-running epoch
// scheduler.
func (s *Scheduler) ReadHandler(path string) (string, error) {
	var v string
	var err error
	s.SyncDo(func() { v, err = s.rt.ReadHandler(path) })
	return v, err
}

// WriteHandler writes "element.handler value" at a quiescent point.
// This is the only safe way to drive state-restructuring write
// handlers while the scheduler is running.
func (s *Scheduler) WriteHandler(path, value string) error {
	var err error
	s.SyncDo(func() { err = s.rt.WriteHandler(path, value) })
	return err
}

// applyPending installs a requested router, reporting whether one was
// installed.
func (s *Scheduler) applyPending() bool {
	next := s.pending.Swap(nil)
	if next == nil {
		return false
	}
	if err := s.Hotswap(next); err != nil {
		s.swapErr = err
		return false
	}
	return true
}

// steal takes a task from the back of another worker's round queue
// (RunRound path).
func (s *Scheduler) steal(self int) (*sharedEntry, bool) {
	for off := 1; off < s.workers; off++ {
		if e, ok := s.queues[(self+off)%s.workers].popBack(); ok {
			return e, true
		}
	}
	return nil, false
}

// RunRound runs every task once (weight times each) across the workers
// and reports whether any did useful work — the parallel equivalent of
// Router.RunTaskRound, with the same idle-detection semantics. Workers
// join at the end of the round, so callers may inspect or swap the
// router between rounds.
func (s *Scheduler) RunRound() bool {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	// Round boundary: no worker exists here, so queued control ops run
	// and a requested hot-swap installs race-free. An applied swap
	// counts as progress — the new router deserves at least one round
	// before idle detection bites.
	s.drainOps()
	swapped := s.applyPending()
	if s.workers == 1 {
		return s.rt.RunTaskRound() || swapped
	}
	plan := s.plan.Load()
	for w := range s.queues {
		q := &s.queues[w]
		q.mu.Lock()
		q.entries = append(q.entries[:0], plan.perWorker[w]...)
		q.mu.Unlock()
	}
	var any atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			did := false
			for {
				e, ok := s.queues[self].popFront()
				if !ok {
					if e, ok = s.steal(self); !ok {
						break
					}
				}
				for r := 0; r < e.runs; r++ {
					if e.task.RunTask() {
						did = true
					}
				}
			}
			if did {
				any.Store(true)
			}
		}(w)
	}
	wg.Wait()
	return any.Load() || swapped
}

// runPass runs one full pass over the worker's own task list, then —
// if nothing was productive — tries to help by running one stealable
// task from a peer. Claim flags keep every task on at most one worker.
func (s *Scheduler) runPass(self int) bool {
	plan := s.plan.Load()
	did := false
	for _, e := range plan.perWorker[self] {
		if !e.running.CompareAndSwap(false, true) {
			continue // a thief is borrowing it this instant
		}
		for r := 0; r < e.runs; r++ {
			if e.task.RunTask() {
				did = true
			}
		}
		e.running.Store(false)
	}
	if did {
		return true
	}
	for off := 1; off < s.workers; off++ {
		for _, e := range plan.perWorker[(self+off)%s.workers] {
			if e.pinned >= 0 || !e.running.CompareAndSwap(false, true) {
				continue
			}
			for r := 0; r < e.runs; r++ {
				if e.task.RunTask() {
					did = true
				}
			}
			e.running.Store(false)
			if did {
				return true
			}
		}
	}
	return false
}

// workerLoop is one epoch-mode worker: free-run passes, publishing
// progress and pass counts for the monitor, parking only when a
// rendezvous is requested.
func (s *Scheduler) workerLoop(self int, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		if s.stopFlag.Load() {
			return
		}
		if s.rendezvous.Load() {
			s.park()
			continue
		}
		did := s.runPass(self)
		if did {
			s.progress.Add(1)
		}
		s.passes[self].v.Add(1)
		if !did {
			runtime.Gosched()
		}
	}
}

// park blocks the worker until the rendezvous ends (or shutdown).
func (s *Scheduler) park() {
	s.parkMu.Lock()
	s.parked++
	s.parkCond.Broadcast() // the monitor may be waiting for full attendance
	for s.rendezvous.Load() && !s.stopFlag.Load() {
		s.parkCond.Wait()
	}
	s.parked--
	s.parkMu.Unlock()
}

// quiesce parks every worker, runs fn at the quiescent point, and
// releases them.
func (s *Scheduler) quiesce(fn func()) {
	s.rendezvous.Store(true)
	s.parkMu.Lock()
	for s.parked < s.workers {
		s.parkCond.Wait()
	}
	s.parkMu.Unlock()
	fn()
	s.rendezvous.Store(false)
	s.parkMu.Lock()
	s.parkCond.Broadcast()
	s.parkMu.Unlock()
}

// waitFullPass blocks until every worker has completed at least one
// full pass begun after the call (two pass-count increments guarantee
// one fully contained pass). It returns early, reporting false, when a
// hot-swap request arrives.
func (s *Scheduler) waitFullPass() bool {
	base := make([]uint64, s.workers)
	for w := range base {
		base[w] = s.passes[w].v.Load()
	}
	for {
		done := true
		for w := range base {
			if s.passes[w].v.Load() < base[w]+2 {
				done = false
				break
			}
		}
		if done {
			return true
		}
		if s.pending.Load() != nil || s.opCount.Load() > 0 {
			return false
		}
		runtime.Gosched()
	}
}

// runEpochs drives epoch mode: spawn persistent workers, watch the
// progress counter, and declare idle when a full pass everywhere moves
// it nowhere. Returns the number of productive epochs observed (an
// epoch is at least one full pass per worker, so the count is coarser
// than RunRound rounds but has the same "0 means nothing happened"
// meaning).
func (s *Scheduler) runEpochs(maxEpochs int) int {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.drainOps()
	s.stopFlag.Store(false)
	s.rendezvous.Store(false)
	s.progress.Store(0)
	for i := range s.passes {
		s.passes[i].v.Store(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go s.workerLoop(w, &wg)
	}
	productive := 0
	for productive < maxEpochs {
		if s.pending.Load() != nil || s.opCount.Load() > 0 {
			swapped := false
			s.quiesce(func() {
				s.drainOps()
				swapped = s.applyPending()
			})
			if swapped {
				// The new router deserves at least one epoch before
				// idle detection bites.
				productive++
			}
			continue
		}
		p0 := s.progress.Load()
		if !s.waitFullPass() {
			continue // rendezvous request arrived mid-wait
		}
		if s.progress.Load() != p0 {
			productive++
			continue
		}
		break // full pass everywhere, no progress: quiescent
	}
	s.stopFlag.Store(true)
	s.parkMu.Lock()
	s.parkCond.Broadcast() // release anyone parked
	s.parkMu.Unlock()
	wg.Wait()
	// Ops enqueued while shutdown raced the monitor run here, with all
	// workers gone, so no SyncDo caller is left spinning.
	s.drainOps()
	return productive
}

// RunUntilIdle drives the router until no task does useful work. With
// one worker it runs barrier rounds exactly like Router.RunUntilIdle;
// with more it free-runs in epoch mode, where workers rendezvous only
// for hot-swap and shutdown. maxRounds bounds the productive
// rounds/epochs; the return value is how many occurred.
func (s *Scheduler) RunUntilIdle(maxRounds int) int {
	if s.workers == 1 {
		rounds := 0
		for rounds < maxRounds && s.RunRound() {
			rounds++
		}
		return rounds
	}
	return s.runEpochs(maxRounds)
}

// RunParallelUntilIdle builds a scheduler with the given worker count
// and drives the router until idle — the parallel counterpart of
// RunUntilIdle.
func (rt *Router) RunParallelUntilIdle(workers, maxRounds int) (int, error) {
	s, err := NewScheduler(rt, workers)
	if err != nil {
		return 0, err
	}
	return s.RunUntilIdle(maxRounds), nil
}
