package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/lang"
	"repro/internal/simcpu"
)

// Router is an assembled, runnable router: the runtime counterpart of a
// configuration graph. Configurations are static (§5.1) — there is no
// way to add or remove elements from a live Router; install a new one
// instead.
type Router struct {
	Graph    *graph.Router
	Registry *Registry
	CPU      *simcpu.CPU

	elements  []Element
	byName    map[string]Element
	tasks     []Task
	weights   []int
	taskElems []int // element index of each task, parallel to tasks
	proc      *graph.Processing
	env       map[string]interface{}
	burst     int
	tracer    *Tracer
	guards    *Generations
}

// Env returns the named environment object supplied at build time, or
// nil.
func (rt *Router) Env(key string) interface{} { return rt.env[key] }

// BuildOptions control router assembly.
type BuildOptions struct {
	// CPU, when non-nil, attaches the cost model: packet transfers and
	// element work are charged to it.
	CPU *simcpu.CPU
	// Env carries named environment objects elements bind to at
	// initialization — the simulator registers its devices here under
	// "device:<name>" keys.
	Env map[string]interface{}
	// PerElementSites gives every element its own branch-predictor
	// call sites instead of sharing them per class. Real machines
	// share (one call instruction per class — the Figure 2 pathology);
	// this switch exists for the modeling ablation.
	PerElementSites bool
	// Burst is the router-wide default batch size for batch-capable
	// schedulable elements (PollDevice, ToDevice, Unqueue). 0 or 1
	// keeps the scalar per-packet path, which is what the calibrated
	// Figure 8/9 experiments run.
	Burst int
}

// Build assembles a runnable router from a configuration graph. The
// graph is cloned and compacted; the original is not modified.
func Build(g *graph.Router, reg *Registry, opts BuildOptions) (*Router, error) {
	g = g.Clone()
	g.Compact()

	if errs := graph.CheckPorts(g, reg); len(errs) > 0 {
		return nil, fmt.Errorf("core: %v", errs[0])
	}
	proc, err := graph.AssignProcessing(g, reg)
	if err != nil {
		return nil, err
	}

	rt := &Router{
		Graph:    g,
		Registry: reg,
		CPU:      opts.CPU,
		byName:   map[string]Element{},
		proc:     proc,
		env:      opts.Env,
		burst:    opts.Burst,
		guards:   &Generations{},
	}
	sites := simcpu.NewSites()

	// Instantiate and configure elements.
	specs := make([]*Spec, len(g.Elements))
	rt.elements = make([]Element, len(g.Elements))
	for i, ge := range g.Elements {
		spec, ok := reg.Lookup(ge.Class)
		if !ok {
			return nil, fmt.Errorf("core: unknown element class %q (element %q)", ge.Class, ge.Name)
		}
		if spec.Make == nil {
			return nil, fmt.Errorf("core: element class %q is specification-only (element %q)", ge.Class, ge.Name)
		}
		e := spec.Make()
		b := e.base()
		b.name = ge.Name
		b.class = ge.Class
		b.router = rt
		b.cpu = opts.CPU
		b.workCycles = spec.WorkCycles
		b.outputs = make([]OutPort, g.NOutputs(i))
		b.inputs = make([]InPort, g.NInputs(i))
		if err := e.Configure(lang.SplitConfig(ge.Config)); err != nil {
			return nil, fmt.Errorf("core: %s (%q at %s): %v", ge.Class, ge.Name, ge.Landmark, err)
		}
		specs[i] = spec
		rt.elements[i] = e
		rt.byName[ge.Name] = e
	}

	// Wire connections. A push connection binds the source's output
	// port to the target; a pull connection binds the target's input
	// port to the source. Devirtualized classes bind direct handlers
	// instead of dispatching through the Element interface.
	for _, c := range g.Conns {
		src, dst := rt.elements[c.From], rt.elements[c.To]
		srcClass, dstClass := g.Elements[c.From].Class, g.Elements[c.To].Class
		siteSrc, siteDst := srcClass, dstClass
		if opts.PerElementSites {
			// Call sites become per-element; the call targets are
			// still the per-class handler functions.
			siteSrc = g.Elements[c.From].Name
			siteDst = g.Elements[c.To].Name
		}
		kind := proc.OutputKind(c.From, c.FromPort)
		out := src.base().Output(c.FromPort)
		in := dst.base().Input(c.ToPort)
		out.connected, in.connected = true, true
		if kind == graph.Push {
			out.target = dst
			out.targetPort = c.ToPort
			out.cpu = opts.CPU
			out.owner = src.base()
			out.peer = dst.base()
			out.site = sites.Site(siteSrc, c.FromPort, true)
			out.targetID = sites.Target(dstClass)
			if specs[c.From].Devirtualized {
				out.direct = dst.Push
			}
			if bp, ok := dst.(BatchPusher); ok {
				out.batch = bp
			}
		} else {
			in.source = src
			in.sourcePort = c.FromPort
			in.cpu = opts.CPU
			in.owner = dst.base()
			in.peer = src.base()
			in.site = sites.Site(siteDst, c.ToPort, false)
			in.targetID = sites.Target(srcClass)
			if specs[c.To].Devirtualized {
				in.direct = src.Pull
			}
			if bp, ok := src.(BatchPuller); ok {
				in.batch = bp
			}
		}
	}

	// Initialization pass (after all wiring, so elements can find each
	// other).
	for i, e := range rt.elements {
		if init, ok := e.(Initializer); ok {
			if err := init.Initialize(rt); err != nil {
				return nil, fmt.Errorf("core: %s (%q): %v", g.Elements[i].Class, g.Elements[i].Name, err)
			}
		}
	}

	// Collect scheduled tasks in declaration order, applying any
	// ScheduleInfo weights (a task with weight w runs w times per
	// round; Click's stride scheduler achieves the same proportions).
	weightOf := map[string]int{}
	for _, e := range rt.elements {
		if tw, ok := e.(TaskWeighter); ok {
			for name, w := range tw.TaskWeights() {
				weightOf[name] = w
			}
		}
	}
	for i, e := range rt.elements {
		if t, ok := e.(Task); ok {
			rt.tasks = append(rt.tasks, t)
			rt.taskElems = append(rt.taskElems, i)
			w := weightOf[g.Elements[i].Name]
			if w <= 0 {
				w = 1
			}
			rt.weights = append(rt.weights, w)
		}
	}
	return rt, nil
}

// BuildFromText parses, elaborates, and assembles a configuration.
func BuildFromText(config, file string, reg *Registry, opts BuildOptions) (*Router, error) {
	g, err := lang.ParseRouter(config, file)
	if err != nil {
		return nil, err
	}
	return Build(g, reg, opts)
}

// Find returns the element with the given configuration name, or nil.
func (rt *Router) Find(name string) Element { return rt.byName[name] }

// Elements returns the router's elements in graph order.
func (rt *Router) Elements() []Element { return rt.elements }

// Processing returns the resolved push/pull assignment.
func (rt *Router) Processing() *graph.Processing { return rt.proc }

// Tasks returns the schedulable elements in declaration order.
func (rt *Router) Tasks() []Task { return rt.tasks }

// RunTaskRound runs every task (weight times each), round-robin, and
// reports whether any did useful work. This stands in for one iteration
// of Click's kernel thread loop.
func (rt *Router) RunTaskRound() bool {
	any := false
	for i, t := range rt.tasks {
		for w := 0; w < rt.weights[i]; w++ {
			if t.RunTask() {
				any = true
			}
		}
	}
	return any
}

// RunUntilIdle runs task rounds until none does useful work, up to
// maxRounds. It returns the number of rounds that did work.
func (rt *Router) RunUntilIdle(maxRounds int) int {
	rounds := 0
	for rounds < maxRounds && rt.RunTaskRound() {
		rounds++
	}
	return rounds
}

// Close shuts the router down, closing every element that holds
// external resources (trace files and the like).
func (rt *Router) Close() error {
	var first error
	for _, e := range rt.elements {
		if c, ok := e.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
