package core

import (
	"fmt"
	"reflect"
)

// Live configuration replacement. Click installs a new configuration by
// building the new router beside the running one and switching over at
// a scheduling boundary; elements that hold packets or learned state
// hand it across so the swap is invisible on the wire. Configurations
// themselves stay static (§5.1) — hot-swap replaces the whole router,
// it never edits a live one.

// StateCarrier is implemented by elements whose runtime state should
// survive a configuration hot-swap: queue contents, learned ARP tables,
// counter values, paint/switch settings. SaveState extracts the state
// (transferring ownership of any packets it contains — the old element
// must not touch them afterwards); RestoreState installs it into the
// replacement element. The two run back to back under a stopped
// scheduler, so neither needs locking beyond the element's own.
//
// State moves only between elements of the same Go type (compared with
// reflect, so devirtualized classes still match their originals), which
// lets RestoreState type-assert its argument unconditionally.
type StateCarrier interface {
	SaveState() interface{}
	RestoreState(state interface{}) error
}

// Hotswap transplants preservable state from rt into next, matching
// elements by configuration name. For every matched pair the telemetry
// counters carry over; when the pair additionally shares a Go type and
// implements StateCarrier, the element's own state (queued packets, ARP
// tables, counters) moves across too. Elements present only in one
// router keep their defaults (new) or are abandoned with the old router
// (old).
//
// The caller must guarantee neither router is running: the old one
// stopped at a task-round boundary, the new one not yet started. Between
// rounds, in-flight packets live only inside elements (queues, ARP wait
// lists) and device rings, so name-matched transplant plus a shared
// device environment loses nothing.
//
// Hotswap charges no model cycles: the swap happens between scheduling
// rounds, outside any element's processing code, so the calibrated
// Figure 8/9 numbers are unaffected.
func (rt *Router) Hotswap(next *Router) error {
	type pair struct {
		name     string
		from, to Element
	}
	// Guard generations carry over first: transplanted cache state (a
	// FlowCache's entries) snapshots these counters, so the new router
	// must continue the old router's counter history for those snapshots
	// to stay meaningful.
	next.guards.CopyFrom(rt.guards)
	var pairs []pair
	for _, e := range rt.elements {
		if e == nil {
			continue // removed by an incremental tenant delete
		}
		b := e.base()
		ne, ok := next.byName[b.name]
		if !ok {
			continue
		}
		pairs = append(pairs, pair{b.name, e, ne})
	}
	// Transplant telemetry first: it is never destructive, and the swap
	// should present continuous counters even for elements whose class
	// changed (an optimizer pass replacing a Classifier still inherits
	// its packet counts).
	for _, p := range pairs {
		p.to.base().stats.Transplant(&p.from.base().stats)
	}
	// Then element state, guarded by Go-type identity. Devirtualize
	// renames classes (Queue -> Queue_dv0) but reuses the same Go type,
	// so the reflect comparison — not the class name — is the correct
	// compatibility test. The check runs before the destructive
	// SaveState drain, so an incompatible pair cannot lose packets.
	for _, p := range pairs {
		if reflect.TypeOf(p.from) != reflect.TypeOf(p.to) {
			continue
		}
		sc, ok := p.from.(StateCarrier)
		if !ok {
			continue
		}
		st := sc.SaveState()
		if st == nil {
			continue
		}
		if err := p.to.(StateCarrier).RestoreState(st); err != nil {
			return fmt.Errorf("core: hotswap %q: %v", p.name, err)
		}
	}
	return nil
}
