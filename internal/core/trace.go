package core

import "sync"

// Per-packet path tracing — a debugging facility for the optimizer
// passes: after click-xform rewrites a subgraph or click-devirtualize
// swaps in specialized classes, a trace shows the element sequence each
// packet actually traversed, so a misrouted transformation is visible
// immediately. Tracing is off by default and must be enabled with
// Router.EnableTracing before the run; the per-transfer cost when off
// is a single nil check.

// TraceRecord is one hop: packet ID and the element that received it.
type TraceRecord struct {
	Packet  uint64 `json:"packet"`
	Element string `json:"element"`
}

// Tracer is a fixed-capacity ring buffer of trace records. Recording is
// mutex-guarded so the parallel scheduler's workers can share it; the
// ring bounds memory no matter how long the run.
type Tracer struct {
	mu   sync.Mutex
	recs []TraceRecord
	next int
	full bool
}

// NewTracer returns a tracer keeping the last capacity records.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{recs: make([]TraceRecord, capacity)}
}

func (t *Tracer) record(pkt uint64, elem string) {
	t.mu.Lock()
	t.recs[t.next] = TraceRecord{Packet: pkt, Element: elem}
	t.next++
	if t.next == len(t.recs) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Records returns the retained records, oldest first.
func (t *Tracer) Records() []TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]TraceRecord(nil), t.recs[:t.next]...)
	}
	out := make([]TraceRecord, 0, len(t.recs))
	out = append(out, t.recs[t.next:]...)
	out = append(out, t.recs[:t.next]...)
	return out
}

// Paths groups the retained records by packet ID: the element sequence
// each packet traversed, in arrival order. Clones share their parent's
// ID, so a Tee'd packet's path covers both branches.
func (t *Tracer) Paths() map[uint64][]string {
	paths := map[uint64][]string{}
	for _, r := range t.Records() {
		paths[r.Packet] = append(paths[r.Packet], r.Element)
	}
	return paths
}

// EnableTracing attaches a fresh ring-buffered tracer (keeping the last
// capacity hops) to every wired port and returns it. Call before
// running the router.
func (rt *Router) EnableTracing(capacity int) *Tracer {
	tr := NewTracer(capacity)
	for _, e := range rt.elements {
		if e == nil {
			continue // removed by an incremental tenant delete
		}
		b := e.base()
		for i := range b.outputs {
			b.outputs[i].tracer = tr
		}
		for i := range b.inputs {
			b.inputs[i].tracer = tr
		}
	}
	rt.tracer = tr
	return tr
}

// Tracer returns the tracer installed by EnableTracing, or nil.
func (rt *Router) Tracer() *Tracer { return rt.tracer }
