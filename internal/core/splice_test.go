package core

import (
	"strings"
	"testing"
)

// Incremental splice/remove/swap at the core layer, driven with the
// test registry's task elements. Tenant namespaces are emulated with
// name prefixes ("a_", "b_"), which is all RemoveByPrefix needs.

func spliceTestRouter(t *testing.T, cfg string) *Router {
	t.Helper()
	rt, err := BuildFromText(cfg, "t", testRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func sinkOf(t *testing.T, rt *Router, name string) *tSink {
	t.Helper()
	e := rt.Find(name)
	if e == nil {
		t.Fatalf("no element %q", name)
	}
	return e.(*tSink)
}

func TestIncrementalSpliceRunsNewTenant(t *testing.T) {
	rt := spliceTestRouter(t, "a_src :: TTask -> a_s :: TSink;")
	s, err := NewScheduler(rt, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s.RunUntilIdle(1024) > 0 {
	}
	if got := len(sinkOf(t, rt, "a_s").got); got != 3 {
		t.Fatalf("tenant a delivered %d packets before splice, want 3", got)
	}

	sub := spliceTestRouter(t, "b_src :: TTask -> b_s :: TSink;")
	s.SyncDo(func() {
		if err := s.SpliceTenant(sub); err != nil {
			t.Errorf("splice: %v", err)
		}
	})
	for s.RunUntilIdle(1024) > 0 {
	}
	if got := len(sinkOf(t, rt, "b_s").got); got != 3 {
		t.Fatalf("spliced tenant b delivered %d packets, want 3", got)
	}
	if got := len(sinkOf(t, rt, "a_s").got); got != 3 {
		t.Fatalf("tenant a delivered %d packets after splice, want 3 (untouched)", got)
	}

	// Name collisions must be rejected without mutating the router.
	before := len(rt.Graph.Elements)
	dup := spliceTestRouter(t, "b_src :: TTask -> x_s :: TSink;")
	var serr error
	s.SyncDo(func() { serr = s.SpliceTenant(dup) })
	if serr == nil || !strings.Contains(serr.Error(), "b_src") {
		t.Fatalf("colliding splice error = %v, want mention of b_src", serr)
	}
	if len(rt.Graph.Elements) != before {
		t.Fatalf("failed splice mutated the graph: %d -> %d elements", before, len(rt.Graph.Elements))
	}
}

func TestIncrementalRemoveByPrefixFreesNamespace(t *testing.T) {
	rt := spliceTestRouter(t, "a_src :: TTask -> a_s :: TSink;")
	s, err := NewScheduler(rt, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.SyncDo(func() {
		if err := s.SpliceTenant(spliceTestRouter(t, "b_src :: TTask -> b_s :: TSink;")); err != nil {
			t.Errorf("splice: %v", err)
		}
	})

	var removed []Element
	s.SyncDo(func() { removed = s.RemoveTenant("a_") })
	if len(removed) != 2 {
		t.Fatalf("removed %d elements, want 2", len(removed))
	}
	if rt.Find("a_src") != nil || rt.Find("a_s") != nil {
		t.Fatal("tenant a still findable after removal")
	}
	// The survivor must still run, and telemetry must tolerate the
	// removed slots.
	for s.RunUntilIdle(1024) > 0 {
	}
	if got := len(sinkOf(t, rt, "b_s").got); got != 3 {
		t.Fatalf("tenant b delivered %d packets after neighbor removal, want 3", got)
	}
	for _, er := range rt.StatsReport() {
		if strings.HasPrefix(er.Name, "a_") {
			t.Fatalf("stats still report removed element %s", er.Name)
		}
	}
	// The freed prefix is reusable.
	s.SyncDo(func() {
		if err := s.SpliceTenant(spliceTestRouter(t, "a_src :: TTask -> a_s :: TSink;")); err != nil {
			t.Errorf("re-splice into freed prefix: %v", err)
		}
	})
	for s.RunUntilIdle(1024) > 0 {
	}
	if got := len(sinkOf(t, rt, "a_s").got); got != 3 {
		t.Fatalf("re-created tenant a delivered %d packets, want 3", got)
	}
}

func TestIncrementalSwapAdoptsGuards(t *testing.T) {
	rt := spliceTestRouter(t, "x_src :: TTask -> x_s :: TSink;")
	s, err := NewScheduler(rt, 1)
	if err != nil {
		t.Fatal(err)
	}
	subA := spliceTestRouter(t, "a_src :: TTask -> a_s :: TSink;")
	s.SyncDo(func() {
		if err := s.SpliceTenant(subA); err != nil {
			t.Errorf("splice: %v", err)
		}
	})
	// Advance tenant a's guard domain; the swap replacement must adopt
	// the history, and the unrelated tenant x must never see it.
	rt.Find("a_s").base().BumpGuard(GuardConfig)
	aGen := rt.Find("a_s").base().GuardSnapshot()
	xGen := rt.Find("x_s").base().GuardSnapshot()
	if aGen == xGen {
		t.Fatal("tenant a and x share a guard domain")
	}

	subA2 := spliceTestRouter(t, "a_src :: TTask -> a_s :: TSink;")
	s.SyncDo(func() {
		if _, err := s.SwapTenant("a_", subA2); err != nil {
			t.Errorf("swap: %v", err)
		}
	})
	if got := rt.Find("a_s").base().GuardSnapshot(); got != aGen {
		t.Errorf("swapped-in tenant a guards = %v, want adopted %v", got, aGen)
	}
	for s.RunUntilIdle(1024) > 0 {
	}
	if got := len(sinkOf(t, rt, "a_s").got); got != 3 {
		t.Fatalf("swapped tenant delivered %d packets, want 3 (fresh source)", got)
	}
}

func TestIncrementalChurnCompactsGraph(t *testing.T) {
	rt := spliceTestRouter(t, "keep_src :: TTask -> keep_s :: TSink;")
	s, err := NewScheduler(rt, 1)
	if err != nil {
		t.Fatal(err)
	}
	high := 0
	for round := 0; round < 32; round++ {
		s.SyncDo(func() {
			if err := s.SpliceTenant(spliceTestRouter(t, "churn_src :: TTask -> churn_s :: TSink;")); err != nil {
				t.Errorf("round %d splice: %v", round, err)
			}
		})
		for s.RunUntilIdle(1024) > 0 {
		}
		s.SyncDo(func() { s.RemoveTenant("churn_") })
		if n := len(rt.Graph.Elements); n > high {
			high = n
		}
	}
	// Dead slots must be reclaimed, not accumulated: 32 churn cycles of
	// a 2-element tenant may never grow the slot table past a small
	// multiple of the live set.
	if high > 12 {
		t.Errorf("graph slots peaked at %d during churn, want compaction to bound it", high)
	}
	for s.RunUntilIdle(1024) > 0 {
	}
	if got := len(sinkOf(t, rt, "keep_s").got); got != 3 {
		t.Fatalf("survivor delivered %d packets after churn, want 3", got)
	}
}
