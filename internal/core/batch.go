package core

import "repro/internal/packet"

// The batch transfer path amortizes inter-element dispatch over several
// packets, the modern analogue of the paper's transfer-cost
// optimizations: where click-devirtualize removes the indirection of
// one virtual call, batching removes all but one of N of them. Elements
// opt in per class; chains fall back to the scalar path at the first
// element that has not been converted, so batch and scalar elements mix
// freely in one configuration.

// BatchPusher is implemented by elements whose push inputs accept a
// batch of packets in one call. The callee takes ownership of the
// packets but not of the slice: it may reorder or overwrite the slice
// contents while the call runs (e.g. to compact survivors in place),
// but must not retain the slice, which the caller may refill
// immediately after PushBatch returns.
type BatchPusher interface {
	PushBatch(port int, ps []*packet.Packet)
}

// BatchPuller is implemented by elements whose pull outputs can hand
// over several packets in one call. PullBatch fills buf with up to
// len(buf) packets and returns how many it delivered.
type BatchPuller interface {
	PullBatch(port int, buf []*packet.Packet) int
}

// PushBatch transfers a batch of packets downstream. When the target
// element implements BatchPusher, the whole batch crosses in a single
// (charged) dispatch; otherwise each packet takes the scalar Push path,
// with its usual per-packet dispatch charge.
func (p *OutPort) PushBatch(pkts []*packet.Packet) {
	switch {
	case len(pkts) == 0:
		return
	case len(pkts) == 1:
		p.Push(pkts[0])
		return
	case p.batch == nil:
		for _, pk := range pkts {
			p.Push(pk)
		}
		return
	}
	if p.cpu != nil {
		if p.direct != nil {
			p.cpu.DirectCall()
		} else {
			p.cpu.IndirectCall(p.site, p.targetID)
		}
		p.cpu.BatchTransfer(len(pkts))
	}
	if p.owner != nil {
		var bytes int64
		for _, pk := range pkts {
			bytes += int64(pk.Len())
			if p.tracer != nil {
				p.tracer.record(pk.ID, p.peer.name)
			}
		}
		n := int64(len(pkts))
		p.owner.stats.addOut(n, bytes)
		p.peer.stats.addIn(n, bytes)
	}
	p.batch.PushBatch(p.targetPort, pkts)
}

// PullBatch requests up to len(buf) packets from upstream, returning
// the number delivered. When the source element implements BatchPuller
// the batch crosses in a single (charged) dispatch; otherwise packets
// are pulled one at a time through the scalar path.
func (p *InPort) PullBatch(buf []*packet.Packet) int {
	if len(buf) == 0 {
		return 0
	}
	if p.batch == nil {
		n := 0
		for n < len(buf) {
			pk := p.Pull()
			if pk == nil {
				break
			}
			buf[n] = pk
			n++
		}
		return n
	}
	if p.cpu != nil {
		if p.direct != nil {
			p.cpu.DirectCall()
		} else {
			p.cpu.IndirectCall(p.site, p.targetID)
		}
	}
	n := p.batch.PullBatch(p.sourcePort, buf)
	if p.cpu != nil && n > 0 {
		p.cpu.BatchTransfer(n)
	}
	if n > 0 && p.owner != nil {
		var bytes int64
		for _, pk := range buf[:n] {
			bytes += int64(pk.Len())
			if p.tracer != nil {
				p.tracer.record(pk.ID, p.owner.name)
			}
		}
		p.peer.stats.addOut(int64(n), bytes)
		p.owner.stats.addIn(int64(n), bytes)
	}
	return n
}

// Synchronizer is implemented by elements holding state that several
// scheduler workers may touch concurrently (Queue's ring, ARPQuerier's
// tables). The parallel scheduler calls EnableSync on every element
// before starting workers; in the default single-threaded runtime the
// guards stay disabled and cost nothing.
type Synchronizer interface {
	EnableSync()
}
