package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/simcpu"
)

// Test elements: a source-ish pusher, a pass-through, and a sink.

type tSink struct {
	Base
	got []*packet.Packet
}

func (s *tSink) Push(port int, p *packet.Packet) { s.got = append(s.got, p) }

type tPass struct {
	Base
	calls int
}

func (e *tPass) Push(port int, p *packet.Packet) {
	e.Work()
	e.calls++
	e.Output(0).Push(p)
}

// Pull forwards pulls upstream (agnostic element in a pull context).
func (e *tPass) Pull(port int) *packet.Packet {
	e.Work()
	return e.Input(0).Pull()
}

// tPullSink terminates a pull chain; tests pull via its input port.
type tPullSink struct{ Base }

type tPuller struct {
	Base
	queue []*packet.Packet
}

func (e *tPuller) Push(port int, p *packet.Packet) { e.queue = append(e.queue, p) }
func (e *tPuller) Pull(port int) *packet.Packet {
	if len(e.queue) == 0 {
		return nil
	}
	p := e.queue[0]
	e.queue = e.queue[1:]
	return p
}

type tTask struct {
	Base
	runs int
	emit int
}

func (e *tTask) RunTask() bool {
	e.runs++
	if e.emit <= 0 {
		return false
	}
	e.emit--
	e.Output(0).Push(packet.New([]byte{1, 2, 3, 4}))
	return true
}

type tInit struct {
	Base
	initialized bool
	failWith    string
}

func (e *tInit) Configure(args []string) error {
	if len(args) == 1 {
		e.failWith = args[0]
	}
	return nil
}

func (e *tInit) Initialize(rt *Router) error {
	if e.failWith != "" {
		return fmt.Errorf("%s", e.failWith)
	}
	e.initialized = true
	return nil
}

func (e *tInit) Push(port int, p *packet.Packet) { p.Kill() }

func testRegistry() *Registry {
	reg := NewRegistry()
	// Sources in these tests push directly into elements, so inputs
	// are optional; outputs are required where the element forwards.
	one := func(string) (graph.PortRange, graph.PortRange) {
		return graph.Between(0, 1), graph.Exactly(1)
	}
	reg.Register(&Spec{Name: "TSink", Processing: "h/", Ports: func(string) (graph.PortRange, graph.PortRange) {
		return graph.Between(0, 1), graph.Exactly(0)
	}, Make: func() Element { return &tSink{} }})
	reg.Register(&Spec{Name: "TPass", Processing: "a/a", Ports: one,
		Make: func() Element { return &tPass{} }, WorkCycles: 10})
	reg.Register(&Spec{Name: "TPassDV", Processing: "a/a", Ports: one,
		Make: func() Element { return &tPass{} }, WorkCycles: 10, Devirtualized: true})
	reg.Register(&Spec{Name: "TPuller", Processing: "h/l", Ports: func(string) (graph.PortRange, graph.PortRange) {
		return graph.Between(0, 1), graph.Between(0, 1)
	}, Make: func() Element { return &tPuller{} }})
	reg.Register(&Spec{Name: "TTask", Processing: "/h", Ports: func(string) (graph.PortRange, graph.PortRange) {
		return graph.Exactly(0), graph.Exactly(1)
	}, Make: func() Element { return &tTask{emit: 3} }})
	reg.Register(&Spec{Name: "TInit", Processing: "h/", Ports: func(string) (graph.PortRange, graph.PortRange) {
		return graph.Between(0, 1), graph.Exactly(0)
	}, Make: func() Element { return &tInit{} }})
	reg.Register(&Spec{Name: "TPullSink", Processing: "l/", Ports: func(string) (graph.PortRange, graph.PortRange) {
		return graph.Between(0, 1), graph.Exactly(0)
	}, Make: func() Element { return &tPullSink{} }})
	reg.Register(&Spec{Name: "SpecOnly", Processing: "a/a"})
	return reg
}

func TestRegistryBasics(t *testing.T) {
	reg := testRegistry()
	if _, ok := reg.Lookup("TPass"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := reg.Lookup("Missing"); ok {
		t.Fatal("found missing class")
	}
	classes := reg.Classes()
	if len(classes) == 0 || !strings.Contains(strings.Join(classes, ","), "TPass") {
		t.Error("Classes() incomplete")
	}
	// Duplicate registration panics.
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	reg.Register(&Spec{Name: "TPass", Processing: "a/a"})
}

func TestRegistryDynamicReplaces(t *testing.T) {
	reg := testRegistry()
	reg.RegisterDynamic(&Spec{Name: "Gen", Processing: "a/a"})
	reg.RegisterDynamic(&Spec{Name: "Gen", Processing: "h/h"})
	if code, _ := reg.ProcessingCode("Gen"); code != "h/h" {
		t.Errorf("dynamic re-registration did not replace: %s", code)
	}
	// Clone isolation.
	c := reg.Clone()
	c.RegisterDynamic(&Spec{Name: "Gen2", Processing: "a/a"})
	if _, ok := reg.Lookup("Gen2"); ok {
		t.Error("clone registration leaked to the original")
	}
}

func TestBuildAndPush(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> b :: TPass -> s :: TSink;", "t", testRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := rt.Find("a").(*tPass)
	s := rt.Find("s").(*tSink)
	a.Push(0, packet.New([]byte{1}))
	if len(s.got) != 1 {
		t.Fatalf("sink got %d packets", len(s.got))
	}
	if rt.Find("b").(*tPass).calls != 1 {
		t.Error("middle element not traversed")
	}
	if rt.Find("nope") != nil {
		t.Error("Find invented an element")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []string{
		"a :: Unknown -> s :: TSink;",                    // unknown class
		"a :: SpecOnly -> s :: TSink;",                   // specification-only
		"a :: TPass -> s :: TSink; x :: TPass -> [1] s;", // port range
		"q :: TPuller -> s :: TSink;",                    // pull out into push-only sink... sink is "h/": conflict
	}
	for _, cfg := range cases {
		if _, err := BuildFromText(cfg, "t", testRegistry(), BuildOptions{}); err == nil {
			t.Errorf("config %q built successfully", cfg)
		}
	}
}

func TestInitializerRuns(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> i :: TInit;", "t", testRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Find("i").(*tInit).initialized {
		t.Error("Initialize not called")
	}
	// Initialize failure propagates.
	if _, err := BuildFromText("a :: TPass -> i :: TInit(boom);", "t", testRegistry(), BuildOptions{}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Initialize error lost: %v", err)
	}
}

func TestTaskScheduling(t *testing.T) {
	rt, err := BuildFromText("src :: TTask -> s :: TSink;", "t", testRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rounds := rt.RunUntilIdle(100)
	if rounds != 3 {
		t.Errorf("active rounds = %d, want 3", rounds)
	}
	if got := len(rt.Find("s").(*tSink).got); got != 3 {
		t.Errorf("sink got %d packets", got)
	}
	src := rt.Find("src").(*tTask)
	if src.runs != 4 { // 3 productive + 1 idle
		t.Errorf("task ran %d times", src.runs)
	}
}

func TestPullWiring(t *testing.T) {
	// a pushes into the queue; k pulls from it through the agnostic b.
	rt, err := BuildFromText("a :: TPass -> q :: TPuller -> b :: TPass -> k :: TPullSink;", "t", testRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := rt.Find("a").(*tPass)
	a.Push(0, packet.New([]byte{9}))
	k := rt.Find("k").(*tPullSink)
	p := k.Input(0).Pull()
	if p == nil || p.Data()[0] != 9 {
		t.Fatal("pull chain broken")
	}
	if k.Input(0).Pull() != nil {
		t.Error("empty pull returned packet")
	}
	if rt.Find("b").(*tPass).calls != 0 {
		t.Error("pull path went through Push")
	}
}

func TestCostChargingThroughPorts(t *testing.T) {
	cpu := simcpu.New(simcpu.P0)
	rt, err := BuildFromText("a :: TPass -> b :: TPass -> s :: TSink;", "t", testRegistry(), BuildOptions{CPU: cpu})
	if err != nil {
		t.Fatal(err)
	}
	a := rt.Find("a").(*tPass)
	a.Push(0, packet.New([]byte{1}))
	// Two Work charges (10 cycles each) plus two indirect calls. Both
	// transfers share one call site — (TPass, out0) — with different
	// target classes, so both mispredict on every packet: the chain
	// itself exhibits the Figure 2 pathology.
	want := int64(2*10 + 2*(7+40))
	if cpu.TotalCycles() != want {
		t.Errorf("charged %d cycles, want %d", cpu.TotalCycles(), want)
	}
	cpu.Reset()
	a.Push(0, packet.New([]byte{1}))
	if cpu.TotalCycles() != want {
		t.Errorf("alternating-target chain should keep mispredicting: %d cycles, want %d", cpu.TotalCycles(), want)
	}

	// A single-hop transfer, by contrast, predicts after warmup.
	cpu2 := simcpu.New(simcpu.P0)
	rt2, err := BuildFromText("a :: TPass -> s :: TSink;", "t", testRegistry(), BuildOptions{CPU: cpu2})
	if err != nil {
		t.Fatal(err)
	}
	a2 := rt2.Find("a").(*tPass)
	a2.Push(0, packet.New([]byte{1}))
	cpu2.Reset()
	a2.Push(0, packet.New([]byte{1}))
	if got, want := cpu2.TotalCycles(), int64(10+7); got != want {
		t.Errorf("warm single hop charged %d cycles, want %d", got, want)
	}
}

func TestDevirtualizedDirectBinding(t *testing.T) {
	cpu := simcpu.New(simcpu.P0)
	rt, err := BuildFromText("a :: TPassDV -> b :: TPassDV -> s :: TSink;", "t", testRegistry(), BuildOptions{CPU: cpu})
	if err != nil {
		t.Fatal(err)
	}
	a := rt.Find("a").(*tPass)
	a.Push(0, packet.New([]byte{1}))
	if cpu.Calls != 0 {
		t.Errorf("devirtualized config made %d indirect calls", cpu.Calls)
	}
	if cpu.Direct != 2 {
		t.Errorf("direct calls = %d, want 2", cpu.Direct)
	}
	if len(rt.Find("s").(*tSink).got) != 1 {
		t.Error("packet lost through direct path")
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	g := graph.New()
	a := g.MustAddElement("a", "TPass", "", "")
	s := g.MustAddElement("s", "TSink", "", "")
	g.Connect(a, 0, s, 0)
	before := g.NumElements()
	if _, err := Build(g, testRegistry(), BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if g.NumElements() != before {
		t.Error("Build mutated the input graph")
	}
}

func TestEnvAccess(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> s :: TSink;", "t", testRegistry(),
		BuildOptions{Env: map[string]interface{}{"k": 42}})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Env("k") != 42 {
		t.Error("Env lookup failed")
	}
	if rt.Env("missing") != nil {
		t.Error("missing Env key returned non-nil")
	}
}

func TestBasePanicsOnWrongDiscipline(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> s :: TSink;", "t", testRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Pull on a push-only element did not panic")
		}
	}()
	rt.Find("s").Pull(0)
}

type tCloser struct {
	Base
	closed bool
}

func (e *tCloser) Push(port int, p *packet.Packet) { p.Kill() }
func (e *tCloser) Close() error                    { e.closed = true; return nil }

func TestRouterClose(t *testing.T) {
	reg := testRegistry()
	reg.Register(&Spec{Name: "TCloser", Processing: "h/", Ports: func(string) (graph.PortRange, graph.PortRange) {
		return graph.Between(0, 1), graph.Exactly(0)
	}, Make: func() Element { return &tCloser{} }})
	rt, err := BuildFromText("a :: TPass -> c :: TCloser;", "t", reg, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if !rt.Find("c").(*tCloser).closed {
		t.Error("Close did not reach the element")
	}
}
