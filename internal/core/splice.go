package core

import (
	"fmt"
	"reflect"
	"strings"
)

// Incremental installation. Hot-swap replaces a whole router; at fleet
// scale (a management plane hosting hundreds of tenant subgraphs under
// name prefixes) that makes every control operation O(total elements).
// The operations here patch a *running* router instead: a freshly built
// disjoint subgraph is spliced in, or a name-prefixed region is removed,
// in O(affected subgraph) work. They preserve the configuration-is-
// static model (§5.1) in the only way that matters: each tenant's
// subgraph is itself immutable and was assembled by the ordinary Build
// path — the splice only concatenates element, task, and processing
// tables, it never rewires a live element's ports.
//
// Callers must hold a scheduler quiescent point (SyncDo); nothing here
// is safe against a running dataplane. Like Hotswap, these operations
// charge zero model cycles.
//
// A spliced element keeps the *Router it was built with as its backing
// router (Base.router): that router's guard generations are the
// element's guard domain. This is what gives the management plane
// per-tenant guard isolation for free — a tenant's write handlers bump
// only its own build-router's counters, so a neighbor's flow fast path
// is never invalidated by someone else's route churn.

// Splice appends sub's assembled elements, connections, tasks, and
// processing assignments into rt. The two element namespaces must be
// disjoint (checked before any mutation) and the two graphs must not be
// linked — sub is a self-contained region whose only external contact
// is through its device environment. Sub's elements are adopted as
// built: already configured, initialized, and wired among themselves.
func (rt *Router) Splice(sub *Router) error {
	if len(sub.Graph.Elements) != len(sub.elements) {
		return fmt.Errorf("core: splice: subrouter graph/element tables out of step")
	}
	remap, err := rt.Graph.AppendFrom(sub.Graph)
	if err != nil {
		return fmt.Errorf("core: splice: %v", err)
	}
	for i, ni := range remap {
		if ni < 0 {
			continue
		}
		if ni != len(rt.elements) {
			return fmt.Errorf("core: splice: element table out of step with graph")
		}
		rt.elements = append(rt.elements, sub.elements[i])
		rt.proc.In = append(rt.proc.In, sub.proc.In[i])
		rt.proc.Out = append(rt.proc.Out, sub.proc.Out[i])
		rt.byName[sub.Graph.Elements[i].Name] = sub.elements[i]
	}
	for t, task := range sub.tasks {
		rt.tasks = append(rt.tasks, task)
		rt.weights = append(rt.weights, sub.weights[t])
		rt.taskElems = append(rt.taskElems, remap[sub.taskElems[t]])
	}
	return nil
}

// RemoveByPrefix removes every element whose name starts with prefix,
// in one pass over the tables. It returns the removed elements (so the
// caller can close ones holding external resources) and a mask over the
// *pre-removal* task list marking which task slots went away — the
// scheduler uses it to filter its parallel affinity table. Dead slots
// are compacted away once they outnumber the live elements, so a long
// create/delete history cannot grow the tables without bound.
func (rt *Router) RemoveByPrefix(prefix string) (removed []Element, removedTasks []bool) {
	deadSet := map[int]bool{}
	var deadIdx []int
	for i, ge := range rt.Graph.Elements {
		if rt.Graph.Dead(i) || !strings.HasPrefix(ge.Name, prefix) {
			continue
		}
		deadIdx = append(deadIdx, i)
		deadSet[i] = true
		if e := rt.elements[i]; e != nil {
			removed = append(removed, e)
			rt.elements[i] = nil
		}
		delete(rt.byName, ge.Name)
	}
	rt.Graph.RemoveElements(deadIdx)
	removedTasks = make([]bool, len(rt.tasks))
	kt, kw, ke := rt.tasks[:0], rt.weights[:0], rt.taskElems[:0]
	for t := range rt.tasks {
		if deadSet[rt.taskElems[t]] {
			removedTasks[t] = true
			continue
		}
		kt = append(kt, rt.tasks[t])
		kw = append(kw, rt.weights[t])
		ke = append(ke, rt.taskElems[t])
	}
	rt.tasks, rt.weights, rt.taskElems = kt, kw, ke
	rt.maybeCompact()
	return removed, removedTasks
}

// maybeCompact renumbers the element tables when dead slots outnumber
// live ones, keeping the graph, element list, processing table, and
// task element indices aligned.
func (rt *Router) maybeCompact() {
	live := rt.Graph.NumElements()
	if len(rt.Graph.Elements)-live <= live {
		return
	}
	remap := rt.Graph.Compact()
	elems := make([]Element, 0, live)
	// In-place compaction is safe: live entries only move to lower
	// indices, so a slot is overwritten only after it has been read.
	newIn := rt.proc.In[:0]
	newOut := rt.proc.Out[:0]
	for i, ni := range remap {
		if ni < 0 {
			continue
		}
		elems = append(elems, rt.elements[i])
		newIn = append(newIn, rt.proc.In[i])
		newOut = append(newOut, rt.proc.Out[i])
	}
	rt.elements = elems
	rt.proc.In, rt.proc.Out = newIn, newOut
	for t := range rt.taskElems {
		rt.taskElems[t] = remap[rt.taskElems[t]]
	}
}

// TransplantInto moves preservable state from rt's elements into sub's
// same-named replacements — the scoped counterpart of Hotswap, used
// when one tenant's subgraph is swapped while the rest of the router
// keeps running. Per-pair rules match Hotswap exactly: guard
// generations are adopted first (from the old elements' backing
// router), telemetry counters carry over for every name match, and
// element state moves when the pair shares a Go type and implements
// StateCarrier.
func (rt *Router) TransplantInto(sub *Router) error {
	type pair struct {
		name     string
		from, to Element
	}
	var pairs []pair
	adopted := false
	for _, e := range sub.elements {
		if e == nil {
			continue
		}
		b := e.base()
		old, ok := rt.byName[b.name]
		if !ok {
			continue
		}
		if !adopted {
			if or := old.base().router; or != nil {
				sub.guards.CopyFrom(or.guards)
			}
			adopted = true
		}
		pairs = append(pairs, pair{b.name, old, e})
	}
	for _, p := range pairs {
		p.to.base().stats.Transplant(&p.from.base().stats)
	}
	for _, p := range pairs {
		if reflect.TypeOf(p.from) != reflect.TypeOf(p.to) {
			continue
		}
		sc, ok := p.from.(StateCarrier)
		if !ok {
			continue
		}
		st := sc.SaveState()
		if st == nil {
			continue
		}
		if err := p.to.(StateCarrier).RestoreState(st); err != nil {
			return fmt.Errorf("core: transplant %q: %v", p.name, err)
		}
	}
	return nil
}
