package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/packet"
)

// tHandlerElem exports one read-only and one write-only handler, plus a
// counter handler named "drops" that must shadow the implicit telemetry
// handler of the same name.
type tHandlerElem struct {
	Base
	wrote string
	fake  int64
}

func (e *tHandlerElem) Push(port int, p *packet.Packet) { p.Kill() }

func (e *tHandlerElem) Handlers() []Handler {
	return []Handler{
		{Name: "status", Read: func() string { return "ready" }},
		{Name: "poke", Write: func(v string) error { e.wrote = v; return nil }},
		{Name: "drops", Read: func() string { return "fake" }},
	}
}

func handlerTestRegistry() *Registry {
	reg := testRegistry()
	reg.Register(&Spec{Name: "THandler", Processing: "h/", Ports: func(string) (graph.PortRange, graph.PortRange) {
		return graph.Between(0, 1), graph.Exactly(0)
	}, Make: func() Element { return &tHandlerElem{} }})
	return reg
}

func TestHandlerErrorPaths(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> h :: THandler;", "t", handlerTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		run  func() error
		want string
	}{
		{"bad path (no dot)", func() error { _, err := rt.ReadHandler("nodot"); return err }, "bad handler path"},
		{"bad path (trailing dot)", func() error { _, err := rt.ReadHandler("a."); return err }, "bad handler path"},
		{"unknown element", func() error { _, err := rt.ReadHandler("ghost.class"); return err }, `no element "ghost"`},
		{"unknown handler", func() error { _, err := rt.ReadHandler("a.bogus"); return err }, `no handler "bogus"`},
		{"read write-only", func() error { _, err := rt.ReadHandler("h.poke"); return err }, "write-only"},
		{"write read-only", func() error { return rt.WriteHandler("h.status", "x") }, "read-only"},
		{"write implicit stats", func() error { return rt.WriteHandler("a.packets_in", "0") }, "read-only"},
		{"write unknown element", func() error { return rt.WriteHandler("ghost.poke", "x") }, `no element "ghost"`},
		{"names of unknown element", func() error { _, err := rt.HandlerNames("ghost"); return err }, `no element "ghost"`},
	}
	for _, c := range cases {
		err := c.run()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}

	// The happy paths around them still work.
	if v, err := rt.ReadHandler("h.status"); err != nil || v != "ready" {
		t.Errorf("h.status = %q, %v", v, err)
	}
	if err := rt.WriteHandler("h.poke", "hello"); err != nil {
		t.Errorf("h.poke: %v", err)
	}
	if got := rt.Find("h").(*tHandlerElem).wrote; got != "hello" {
		t.Errorf("write handler stored %q", got)
	}
}

// Every element exports the implicit telemetry handlers, but an
// element's own handler of the same name wins.
func TestStatsHandlers(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> b :: TPass -> s :: TSink;", "t", handlerTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := rt.Find("a").(*tPass)
	a.Push(0, packet.New([]byte{1, 2, 3}))
	a.Push(0, packet.New([]byte{4, 5, 6}))

	reads := map[string]string{
		"a.packets_in":  "0", // pushed into directly, not through a port
		"a.packets_out": "2",
		"b.packets_in":  "2",
		"b.packets_out": "2",
		"b.bytes_in":    "6",
		"b.bytes_out":   "6",
		"b.cycles":      "20", // TPass WorkCycles=10, mirrored without a CPU
		"s.packets_in":  "2",
		"s.packets_out": "0",
		"s.drops":       "0",
	}
	for path, want := range reads {
		if v, err := rt.ReadHandler(path); err != nil || v != want {
			t.Errorf("%s = %q, %v (want %q)", path, v, err, want)
		}
	}

	names, err := rt.HandlerNames("s")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"packets_in", "bytes_in", "packets_out", "bytes_out", "drops", "cycles"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("HandlerNames(s) missing %q (got %v)", want, names)
		}
	}

	// The provider's own "drops" handler shadows the implicit one.
	if v, err := rt.ReadHandler("h.drops"); err == nil {
		t.Errorf("h.drops should not resolve on this router: got %q", v)
	}
	rt2, err := BuildFromText("a :: TPass -> h :: THandler;", "t", handlerTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := rt2.ReadHandler("h.drops"); err != nil || v != "fake" {
		t.Errorf("h.drops = %q, %v (provider handler must win)", v, err)
	}
}

func TestBaseDropCounts(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> s :: TSink;", "t", testRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := rt.Find("s").(*tSink)
	s.Drop(packet.New([]byte{1}))
	s.CountDrops(2)
	if got := s.Stats().Drops(); got != 3 {
		t.Errorf("drops = %d, want 3", got)
	}
	if v, _ := rt.ReadHandler("s.drops"); v != "3" {
		t.Errorf("s.drops handler = %q, want 3", v)
	}
}

func TestTracing(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> b :: TPass -> s :: TSink;", "t", testRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := rt.EnableTracing(16)
	if rt.Tracer() != tr {
		t.Fatal("Tracer() does not return the enabled tracer")
	}
	a := rt.Find("a").(*tPass)
	p1 := packet.New([]byte{1})
	p2 := packet.New([]byte{2})
	a.Push(0, p1)
	a.Push(0, p2)

	paths := tr.Paths()
	if len(paths) != 2 {
		t.Fatalf("traced %d packets, want 2: %v", len(paths), paths)
	}
	for id, path := range paths {
		if len(path) != 2 || path[0] != "b" || path[1] != "s" {
			t.Errorf("packet %d path = %v, want [b s]", id, path)
		}
	}

	// The ring buffer keeps only the newest records.
	rt2, err := BuildFromText("a :: TPass -> b :: TPass -> s :: TSink;", "t", testRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr2 := rt2.EnableTracing(3)
	a2 := rt2.Find("a").(*tPass)
	for i := 0; i < 4; i++ {
		a2.Push(0, packet.New([]byte{byte(i)}))
	}
	recs := tr2.Records()
	if len(recs) != 3 {
		t.Fatalf("ring kept %d records, want 3", len(recs))
	}
	// 8 transfers happened; the ring holds the last 3.
	if recs[0].Element != "s" || recs[1].Element != "b" || recs[2].Element != "s" {
		t.Errorf("ring tail = %v", recs)
	}
}
