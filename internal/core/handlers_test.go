package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/packet"
)

// tHandlerElem exports one read-only and one write-only handler, plus a
// counter handler named "drops" that must shadow the implicit telemetry
// handler of the same name.
type tHandlerElem struct {
	Base
	wrote string
	fake  int64
}

func (e *tHandlerElem) Push(port int, p *packet.Packet) { p.Kill() }

func (e *tHandlerElem) Handlers() []Handler {
	return []Handler{
		{Name: "status", Read: func() string { return "ready" }},
		{Name: "poke", Write: func(v string) error { e.wrote = v; return nil }},
		{Name: "drops", Read: func() string { return "fake" }},
	}
}

func handlerTestRegistry() *Registry {
	reg := testRegistry()
	reg.Register(&Spec{Name: "THandler", Processing: "h/", Ports: func(string) (graph.PortRange, graph.PortRange) {
		return graph.Between(0, 1), graph.Exactly(0)
	}, Make: func() Element { return &tHandlerElem{} }})
	return reg
}

func TestHandlerErrorPaths(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> h :: THandler;", "t", handlerTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		run  func() error
		want string
	}{
		{"bad path (no dot)", func() error { _, err := rt.ReadHandler("nodot"); return err }, "bad handler path"},
		{"bad path (trailing dot)", func() error { _, err := rt.ReadHandler("a."); return err }, "bad handler path"},
		{"unknown element", func() error { _, err := rt.ReadHandler("ghost.class"); return err }, `no element "ghost"`},
		{"unknown handler", func() error { _, err := rt.ReadHandler("a.bogus"); return err }, `no handler "bogus"`},
		{"read write-only", func() error { _, err := rt.ReadHandler("h.poke"); return err }, "write-only"},
		{"write read-only", func() error { return rt.WriteHandler("h.status", "x") }, "read-only"},
		{"write implicit stats", func() error { return rt.WriteHandler("a.packets_in", "0") }, "read-only"},
		{"write unknown element", func() error { return rt.WriteHandler("ghost.poke", "x") }, `no element "ghost"`},
		{"names of unknown element", func() error { _, err := rt.HandlerNames("ghost"); return err }, `no element "ghost"`},
	}
	for _, c := range cases {
		err := c.run()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}

	// The happy paths around them still work.
	if v, err := rt.ReadHandler("h.status"); err != nil || v != "ready" {
		t.Errorf("h.status = %q, %v", v, err)
	}
	if err := rt.WriteHandler("h.poke", "hello"); err != nil {
		t.Errorf("h.poke: %v", err)
	}
	if got := rt.Find("h").(*tHandlerElem).wrote; got != "hello" {
		t.Errorf("write handler stored %q", got)
	}
}

// Every element exports the implicit telemetry handlers, but an
// element's own handler of the same name wins.
func TestStatsHandlers(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> b :: TPass -> s :: TSink;", "t", handlerTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := rt.Find("a").(*tPass)
	a.Push(0, packet.New([]byte{1, 2, 3}))
	a.Push(0, packet.New([]byte{4, 5, 6}))

	reads := map[string]string{
		"a.packets_in":  "0", // pushed into directly, not through a port
		"a.packets_out": "2",
		"b.packets_in":  "2",
		"b.packets_out": "2",
		"b.bytes_in":    "6",
		"b.bytes_out":   "6",
		"b.cycles":      "20", // TPass WorkCycles=10, mirrored without a CPU
		"s.packets_in":  "2",
		"s.packets_out": "0",
		"s.drops":       "0",
	}
	for path, want := range reads {
		if v, err := rt.ReadHandler(path); err != nil || v != want {
			t.Errorf("%s = %q, %v (want %q)", path, v, err, want)
		}
	}

	names, err := rt.HandlerNames("s")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"packets_in", "bytes_in", "packets_out", "bytes_out", "drops", "cycles"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("HandlerNames(s) missing %q (got %v)", want, names)
		}
	}

	// The provider's own "drops" handler shadows the implicit one.
	if v, err := rt.ReadHandler("h.drops"); err == nil {
		t.Errorf("h.drops should not resolve on this router: got %q", v)
	}
	rt2, err := BuildFromText("a :: TPass -> h :: THandler;", "t", handlerTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := rt2.ReadHandler("h.drops"); err != nil || v != "fake" {
		t.Errorf("h.drops = %q, %v (provider handler must win)", v, err)
	}
}

// TestHostileElementNames pins the longest-match resolution rule:
// combine emits names containing '@' and '/', the graph API permits
// names containing '.', and handler paths built from any of them must
// resolve to the right element. Mirrors the PR 3 Pretty anchor fix.
func TestHostileElementNames(t *testing.T) {
	g := graph.New()
	g.MustAddElement("link@a/eth0@b/eth1", "TPass", "", "t")
	g.MustAddElement("a", "TPass", "", "t")
	g.MustAddElement("a.b", "TPass", "", "t")
	g.MustAddElement("a.b.c", "TPass", "", "t")
	g.MustAddElement("x%2Ey", "TPass", "", "t") // literally contains an escape
	g.MustAddElement("x.y", "TPass", "", "t")
	g.MustAddElement("s", "TSink", "", "t")
	for i := 0; i < 6; i++ {
		g.Connect(i, 0, i+1, 0)
	}
	rt, err := Build(g, testRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}

	reads := map[string]string{
		// Combined link names resolve in-process with raw paths.
		"link@a/eth0@b/eth1.class": "TPass",
		"link@a/eth0@b/eth1.drops": "0",
		// Longest match: "a.b" and "a.b.c" win over the shorter "a".
		"a.class":        "TPass",
		"a.b.name":       "a.b",
		"a.b.config":     "",
		"a.b.c.name":     "a.b.c",
		"a.b.packets_in": "0",
		// Escaped paths resolve to the dotted names.
		HandlerPath("a.b", "name"):   "a.b",
		HandlerPath("a.b.c", "name"): "a.b.c",
		// A raw name containing an escape sequence wins over the
		// unescape; the dotted element is still reachable raw.
		"x%2Ey.name": "x%2Ey",
		"x.y.name":   "x.y",
	}
	for path, want := range reads {
		if v, err := rt.ReadHandler(path); err != nil || v != want {
			t.Errorf("ReadHandler(%q) = %q, %v (want %q)", path, v, err, want)
		}
	}

	// The longest matching element wins even when a shorter prefix
	// exists: "a.bogus" resolves element "a", not a ghost "a.bogus".
	if _, err := rt.ReadHandler("a.bogus"); err == nil || !strings.Contains(err.Error(), `no handler "bogus"`) {
		t.Errorf("a.bogus: %v", err)
	}
	// HandlerPath leaves language-producible names untouched.
	if got := HandlerPath("link@a/eth0@b/eth1", "drops"); got != "link@a/eth0@b/eth1.drops" {
		t.Errorf("HandlerPath(link) = %q", got)
	}
	if got := HandlerPath("q", "length"); got != "q.length" {
		t.Errorf("HandlerPath(q) = %q", got)
	}
}

// TestHostileNameWrites drives a write handler through an escaped path.
func TestHostileNameWrites(t *testing.T) {
	g := graph.New()
	g.MustAddElement("t0/h.v1", "THandler", "", "t")
	rt, err := Build(g, handlerTestRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := HandlerPath("t0/h.v1", "poke")
	if path != "t0%2Fh%2Ev1.poke" {
		t.Fatalf("HandlerPath = %q", path)
	}
	if err := rt.WriteHandler(path, "hi"); err != nil {
		t.Fatal(err)
	}
	if got := rt.Find("t0/h.v1").(*tHandlerElem).wrote; got != "hi" {
		t.Errorf("write through escaped path stored %q", got)
	}
	// The raw dotted path also resolves (longest match over live names).
	if v, err := rt.ReadHandler("t0/h.v1.status"); err != nil || v != "ready" {
		t.Errorf("raw dotted path = %q, %v", v, err)
	}
}

func TestEscapeElementNameRoundTrip(t *testing.T) {
	cases := []string{
		"q", "a.b", "a/b", "a%b", "link@a/eth0@b/eth1", "%%..//", "", "t0/q.v2",
	}
	for _, name := range cases {
		esc := EscapeElementName(name)
		if strings.ContainsAny(esc, "./") {
			t.Errorf("escape(%q) = %q still has metacharacters", name, esc)
		}
		got, ok := UnescapeElementName(esc)
		if !ok || got != name {
			t.Errorf("round trip %q → %q → %q, ok=%v", name, esc, got, ok)
		}
	}
	if _, ok := UnescapeElementName("bad%2"); ok {
		t.Error("truncated escape accepted")
	}
	if _, ok := UnescapeElementName("bad%zz"); ok {
		t.Error("non-hex escape accepted")
	}
}

func TestBaseDropCounts(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> s :: TSink;", "t", testRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := rt.Find("s").(*tSink)
	s.Drop(packet.New([]byte{1}))
	s.CountDrops(2)
	if got := s.Stats().Drops(); got != 3 {
		t.Errorf("drops = %d, want 3", got)
	}
	if v, _ := rt.ReadHandler("s.drops"); v != "3" {
		t.Errorf("s.drops handler = %q, want 3", v)
	}
}

func TestTracing(t *testing.T) {
	rt, err := BuildFromText("a :: TPass -> b :: TPass -> s :: TSink;", "t", testRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := rt.EnableTracing(16)
	if rt.Tracer() != tr {
		t.Fatal("Tracer() does not return the enabled tracer")
	}
	a := rt.Find("a").(*tPass)
	p1 := packet.New([]byte{1})
	p2 := packet.New([]byte{2})
	a.Push(0, p1)
	a.Push(0, p2)

	paths := tr.Paths()
	if len(paths) != 2 {
		t.Fatalf("traced %d packets, want 2: %v", len(paths), paths)
	}
	for id, path := range paths {
		if len(path) != 2 || path[0] != "b" || path[1] != "s" {
			t.Errorf("packet %d path = %v, want [b s]", id, path)
		}
	}

	// The ring buffer keeps only the newest records.
	rt2, err := BuildFromText("a :: TPass -> b :: TPass -> s :: TSink;", "t", testRegistry(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr2 := rt2.EnableTracing(3)
	a2 := rt2.Find("a").(*tPass)
	for i := 0; i < 4; i++ {
		a2.Push(0, packet.New([]byte{byte(i)}))
	}
	recs := tr2.Records()
	if len(recs) != 3 {
		t.Fatalf("ring kept %d records, want 3", len(recs))
	}
	// 8 transfers happened; the ring holds the last 3.
	if recs[0].Element != "s" || recs[1].Element != "b" || recs[2].Element != "s" {
		t.Errorf("ring tail = %v", recs)
	}
}
