// Package tool carries the shared plumbing of the click-* command-line
// tools: reading a configuration (plain text or archive) from a file or
// standard input, parsing it into a graph, and writing the transformed
// result back out — the Unix-filter shape that lets the optimizers
// chain like compiler passes (§5).
package tool

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/lang"
	"repro/internal/opt"
)

// ReadConfig loads a configuration from path ("-" or "" means standard
// input), unpacks any archive, parses and elaborates it, and installs
// dynamic element specifications from the archive into reg.
func ReadConfig(path string, reg *core.Registry) (*graph.Router, error) {
	var data []byte
	var err error
	name := path
	if path == "" || path == "-" {
		data, err = io.ReadAll(os.Stdin)
		name = "<stdin>"
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	config, extra, err := lang.UnpackConfig(data)
	if err != nil {
		return nil, err
	}
	g, err := lang.ParseRouter(config, name)
	if err != nil {
		return nil, err
	}
	for _, m := range extra {
		g.Archive[m.Name] = m.Data
	}
	if err := opt.InstallArchive(g, reg); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteConfig unparses the graph and writes it (packing the archive when
// the graph carries one) to path ("-" or "" means standard output).
func WriteConfig(g *graph.Router, path string) error {
	if path == "" || path == "-" {
		return WriteConfigTo(g, os.Stdout)
	}
	return os.WriteFile(path, packConfig(g), 0o644)
}

// WriteConfigTo unparses the graph (packing the archive when the graph
// carries one) and writes it to w — the seam the tool mains use so their
// output stream is injectable under test.
func WriteConfigTo(g *graph.Router, w io.Writer) error {
	_, err := w.Write(packConfig(g))
	return err
}

func packConfig(g *graph.Router) []byte {
	text := lang.Unparse(g)
	var members []lang.ArchiveMember
	for name, data := range g.Archive {
		members = append(members, lang.ArchiveMember{Name: name, Data: data})
	}
	return lang.PackConfig(text, members)
}

// Registry returns the builtin element registry.
func Registry() *core.Registry { return elements.NewRegistry() }

// Fail prints an error in the conventional tool format and exits.
func Fail(toolName string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", toolName, err)
	os.Exit(1)
}
