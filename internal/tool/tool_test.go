package tool

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/opt"
)

func TestReadWriteRoundTripPlain(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.click")
	out := filepath.Join(dir, "out.click")
	if err := os.WriteFile(in, []byte("a :: Idle -> q :: Queue(5) -> b :: Idle;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := ReadConfig(in, Registry())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumElements() != 3 {
		t.Fatalf("elements = %d", g.NumElements())
	}
	if err := WriteConfig(g, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if lang.IsArchive(data) {
		t.Error("plain config written as archive")
	}
	g2, err := ReadConfig(out, Registry())
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumElements() != 3 || len(g2.Conns) != len(g.Conns) {
		t.Error("round trip changed the graph")
	}
}

func TestReadWriteRoundTripArchive(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "opt.click")

	// Produce an optimized config with an archive (generated classes).
	g, err := lang.ParseRouter(iprouter.Config(iprouter.Interfaces(2)), "ipr")
	if err != nil {
		t.Fatal(err)
	}
	reg := Registry()
	if err := opt.FastClassifier(g, reg); err != nil {
		t.Fatal(err)
	}
	if err := opt.Devirtualize(g, reg, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteConfig(g, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !lang.IsArchive(data) {
		t.Fatal("optimized config should be an archive")
	}

	// A fresh registry must be able to instantiate it after ReadConfig
	// installs the archive's dynamic specs.
	reg2 := Registry()
	g2, err := ReadConfig(out, reg2)
	if err != nil {
		t.Fatal(err)
	}
	if errs := opt.CheckInstantiable(g2, reg2); len(errs) > 0 {
		t.Fatalf("reloaded config not instantiable: %v", errs[0])
	}
	if _, err := core.Build(g2, reg2, core.BuildOptions{Env: map[string]interface{}{}}); err == nil {
		// Build fails on missing devices, which is fine; anything else
		// is not.
	} else if !strings.Contains(err.Error(), "no device") {
		t.Fatalf("unexpected build error: %v", err)
	}
}

func TestReadConfigMissingFile(t *testing.T) {
	if _, err := ReadConfig("/nonexistent/path.click", Registry()); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadConfigParseError(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bad.click")
	os.WriteFile(in, []byte("a :: ;"), 0o644)
	if _, err := ReadConfig(in, Registry()); err == nil {
		t.Error("bad config accepted")
	}
}
