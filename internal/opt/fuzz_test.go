package opt

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/iprouter"
	"repro/internal/packet"
)

// fuzzRuleText reports whether s is safe to embed as an element
// configuration argument: the IP-expression token charset, so anything
// the classifier parser could accept. Everything else (config
// metacharacters, control bytes, non-ASCII) is rejected up front rather
// than letting the fuzzer explore the configuration grammar, which
// FuzzParse already owns.
func fuzzRuleText(s string) bool {
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case strings.ContainsRune(" \t.:/!&|()<>=-", c):
		default:
			return false
		}
	}
	return true
}

// FuzzFuse is the differential fuzz target for the whole-path fusion
// pass: any IPFilter ruleset and IPClassifier expression list the
// classifier front end accepts must, once fused into a decision
// diagram, forward an arbitrary packet trace exactly as the unfused
// chain does — same sink devices, same packets, same order. The raw
// byte input rides along as a packet so truncated and garbage headers
// exercise the short-packet soundness of the diagram build.
func FuzzFuse(f *testing.F) {
	fw := strings.Join(iprouter.FirewallRules(), ", ")
	seed := packet.BuildUDP4(
		packet.EtherAddr{0, 1, 2, 3, 4, 5}, packet.EtherAddr{6, 7, 8, 9, 10, 11},
		packet.MakeIP4(10, 0, 0, 2), packet.MakeIP4(10, 0, 2, 2),
		1234, 53, make([]byte, 18)).Data()
	f.Add("allow src host 10.0.0.2 && udp && dst port 53, deny all", "udp, tcp, -", seed)
	f.Add(fw, "ip proto 17, tcp syn && !ack, -", seed)
	f.Add("allow dst port >= 1024 && dst port < 4096, allow not src net 10.0.0.0/8, deny all",
		"udp && dst port <= 1000, not ip frag, -", []byte{0x45})
	f.Add("1 tcp, 2 udp, 0 icmp, deny all", "dst host 10.0.2.2 || udp, -", seed[:21])

	f.Fuzz(func(t *testing.T, rules, exprs string, raw []byte) {
		if len(rules) > 2048 || len(exprs) > 512 || len(raw) > 256 {
			return
		}
		if !fuzzRuleText(rules) || !fuzzRuleText(exprs) {
			return
		}
		ruleArgs := strings.Split(rules, ",")
		exprArgs := strings.Split(exprs, ",")
		if len(ruleArgs) > 64 || len(exprArgs) > 6 {
			return
		}
		pf, err := classifier.BuildIPFilterProgram(ruleArgs)
		if err != nil {
			return // rejecting malformed rules is fine
		}
		if pf.NOutputs > 4 {
			return
		}
		pc, err := classifier.BuildIPClassifierProgram(exprArgs)
		if err != nil {
			return
		}

		// A filter → classifier → switch chain with every output wired
		// to its own sink device, so diffCompare sees per-port streams.
		var lines []string
		lines = append(lines,
			"pd :: PollDevice(eth0);",
			fmt.Sprintf("flt :: IPFilter(%s);", rules),
			fmt.Sprintf("fc :: IPClassifier(%s);", exprs),
			"sw :: StaticSwitch(1);",
			"pd -> flt;", "flt [0] -> fc;", "fc [0] -> sw;")
		sinks := 0
		sink := func(from string, port int) {
			sinks++
			lines = append(lines,
				fmt.Sprintf("q%d :: Queue; td%d :: ToDevice(eth%d);", sinks, sinks, sinks),
				fmt.Sprintf("%s [%d] -> q%d -> td%d;", from, port, sinks, sinks))
		}
		for j := 1; j < pf.NOutputs; j++ {
			sink("flt", j)
		}
		for j := 1; j < pc.NOutputs; j++ {
			sink("fc", j)
		}
		sink("sw", 0)
		sink("sw", 1)
		text := strings.Join(lines, "\n")

		trace := diffTrace(7, 24)
		trace = append(trace, packet.New(append([]byte(nil), raw...)))
		base := diffRun(t, text, sinks+1, nil, 1, 1, nil, trace)
		fused := diffRun(t, text, sinks+1,
			func(g *graph.Router, reg *core.Registry) error { return Fuse(g, reg) },
			1, 1, nil, trace)
		diffCompare(t, "fuse", base, fused)
	})
}
