package opt

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// Undead performs dead-code elimination on a configuration (§6.3):
//
//   - StaticSwitch elements route every packet to one fixed branch, so
//     the switch is spliced out and the untaken branches lose their
//     packet source;
//   - connections through Idle carry no packets and are severed;
//   - elements that can no longer receive packets from any source, or
//     whose packets can never reach a sink, are removed;
//   - ports left dangling by removals are capped with Idle so the
//     result still passes click-check.
//
// It reports the number of elements removed. Dead code mostly arises
// from compound element abstractions, where a configuration argument
// selects one of several StaticSwitch branches.
func Undead(g *graph.Router, reg *core.Registry) int {
	removed := 0
	var removedNames []string
	note := func(i int) {
		removedNames = append(removedNames, g.Element(i).Name)
		removed++
	}

	// Pass 1: splice StaticSwitches and sever Idle connections.
	for _, i := range g.LiveIndices() {
		e := g.Element(i)
		switch e.Class {
		case "StaticSwitch":
			port := staticSwitchPort(e.Config)
			ins := g.ConnsTo(i)
			outs := g.OutputConns(i, port)
			note(i)
			g.RemoveElement(i)
			for _, ic := range ins {
				for _, oc := range outs {
					g.Connect(ic.From, ic.FromPort, oc.To, oc.ToPort)
				}
			}
		case "Idle":
			// Idle neither forwards nor produces: its connections are
			// dead. Remove the element; caps are re-added at the end
			// where still needed.
			note(i)
			g.RemoveElement(i)
		case "Null":
			// Null forwards unchanged; splice it out.
			note(i)
			g.RemoveAndSplice(i)
		}
	}

	// Pass 2: iteratively remove elements that cannot carry packets.
	// A source can originate packets (no inputs required, at least one
	// output); a sink can consume them (no outputs required).
	for {
		changed := false
		for _, i := range g.LiveIndices() {
			e := g.Element(i)
			nin, nout, ok := reg.PortCounts(e.Class, e.Config)
			if !ok {
				continue
			}
			isSource := nin.Min == 0 && g.NOutputs(i) > 0
			isSink := nout.Min == 0
			isInfo := nin.Min == 0 && nout.Min == 0 && nin.Max == 0 && nout.Max == 0
			if isInfo {
				continue // AlignmentInfo, ScheduleInfo
			}
			if !isSource && len(g.ConnsTo(i)) == 0 {
				note(i)
				g.RemoveElement(i)
				changed = true
				continue
			}
			if !isSink && len(g.ConnsFrom(i)) == 0 {
				note(i)
				g.RemoveElement(i)
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	capDangling(g)
	attachReport(g, &PassReport{
		Pass:            "undead",
		ElementsRemoved: removed,
		Removed:         removedNames,
	})
	return removed
}

// staticSwitchPort parses a StaticSwitch config (-1 on bad input, which
// drops everything — matching the element's runtime behaviour).
func staticSwitchPort(config string) int {
	n := 0
	neg := false
	for i := 0; i < len(config); i++ {
		c := config[i]
		switch {
		case c == '-' && i == 0:
			neg = true
		case c >= '0' && c <= '9':
			n = n*10 + int(c-'0')
		case c == ' ' || c == '\t':
		default:
			return -1
		}
	}
	if neg {
		return -1
	}
	return n
}

// capDangling connects every used-but-now-unconnected port to a fresh
// Idle element so the pruned configuration still validates. Ports are
// "used" when the element's specification requires them.
func capDangling(g *graph.Router) {
	for _, i := range g.LiveIndices() {
		e := g.Element(i)
		if e.Class == "Idle" {
			continue
		}
		// Cap output port gaps: ports below the max used port with no
		// connection.
		nout := g.NOutputs(i)
		for p := 0; p < nout; p++ {
			if len(g.OutputConns(i, p)) == 0 {
				idle := g.MustAddElement("", "Idle", "", "click-undead")
				g.Connect(i, p, idle, 0)
			}
		}
		nin := g.NInputs(i)
		for p := 0; p < nin; p++ {
			if len(g.InputConns(i, p)) == 0 {
				idle := g.MustAddElement("", "Idle", "", "click-undead")
				g.Connect(idle, 0, i, p)
			}
		}
	}
}
