package opt

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/packet"
)

// fuseChainConfig is the 2-interface IP router with a classification
// run — IPFilter → IPClassifier → StaticSwitch — spliced into interface
// 0's input path, the shape whole-path fusion exists for.
func fuseChainConfig(ifs []iprouter.Interface, rules []string) string {
	inject := fmt.Sprintf(
		"GetIPAddress(16) -> flt :: IPFilter(%s);\n"+
			"flt [0] -> fc :: IPClassifier(udp, tcp, -);\n"+
			"fc [0] -> sw :: StaticSwitch(0) -> rt;\nfc [1] -> rt;\nfc [2] -> rt;\n",
		strings.Join(rules, ", "))
	return strings.Replace(iprouter.Config(ifs), "GetIPAddress(16) -> rt;", inject, 1)
}

func TestFuseOnFilterChain(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	text := fuseChainConfig(ifs, []string{"allow udp", "deny all"})
	g, err := lang.ParseRouter(text, "t")
	if err != nil {
		t.Fatal(err)
	}
	reg := elements.NewRegistry()
	if err := Fuse(g, reg); err != nil {
		t.Fatal(err)
	}

	// The run collapsed into one generated element at the root, keeping
	// the root's name; the absorbed members are gone.
	flt := g.FindElement("flt")
	if flt == -1 {
		t.Fatalf("run root vanished:\n%s", lang.Unparse(g))
	}
	if !strings.HasPrefix(g.Element(flt).Class, "FusedClassifier_") {
		t.Fatalf("root class = %q, want FusedClassifier_N", g.Element(flt).Class)
	}
	if g.FindElement("fc") != -1 || g.FindElement("sw") != -1 {
		t.Fatalf("absorbed elements survived:\n%s", lang.Unparse(g))
	}

	// Archive carries the generated source, the program list, and the
	// pass report.
	if _, ok := g.Archive["fuse/programs"]; !ok {
		t.Error("no fuse/programs member in archive")
	}
	if _, ok := g.Archive["fuse/"+g.Element(flt).Class+".go"]; !ok {
		t.Errorf("no generated source for %s in archive", g.Element(flt).Class)
	}
	reps, err := Reports(g)
	if err != nil {
		t.Fatal(err)
	}
	var fr *PassReport
	for _, r := range reps {
		if r.Pass == "fuse" {
			fr = r
		}
	}
	if fr == nil {
		t.Fatal("no fuse pass report")
	}
	if fr.RunsFused != 1 || fr.ElementsFused != 3 {
		t.Errorf("report: %d runs / %d elements fused, want 1/3", fr.RunsFused, fr.ElementsFused)
	}
	if fr.DiagramNodes > fr.TreeNodes {
		t.Errorf("diagram grew: %d nodes from %d", fr.DiagramNodes, fr.TreeNodes)
	}

	// Unparse/re-parse round trip holds.
	if _, err := lang.ParseRouter(lang.Unparse(g), "reparse"); err != nil {
		t.Fatalf("fused config does not re-parse: %v\n%s", err, lang.Unparse(g))
	}

	// Semantics: a UDP transit packet passes the filter, the udp branch,
	// and the switch, and is forwarded out eth1.
	r := buildRig(t, g, reg, 2)
	warmARP(r.rt, ifs)
	r.inject("eth0", testPacket(ifs))
	if len(r.devs["eth1"].tx) != 1 {
		t.Fatalf("fused router forwarded %d packets, want 1", len(r.devs["eth1"].tx))
	}
}

func TestFuseArchiveRoundTrip(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	text := fuseChainConfig(ifs, []string{"allow udp", "deny all"})
	g, err := lang.ParseRouter(text, "t")
	if err != nil {
		t.Fatal(err)
	}
	reg := elements.NewRegistry()
	if err := Fuse(g, reg); err != nil {
		t.Fatal(err)
	}
	// Pack, unpack, and rebuild against a fresh registry — the click
	// driver's path through InstallArchive.
	var members []lang.ArchiveMember
	for name, data := range g.Archive {
		members = append(members, lang.ArchiveMember{Name: name, Data: data})
	}
	packed := lang.PackConfig(lang.Unparse(g), members)
	cfg, extra, err := lang.UnpackConfig(packed)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := lang.ParseRouter(cfg, "reloaded")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range extra {
		g2.Archive[m.Name] = m.Data
	}
	reg2 := elements.NewRegistry()
	if err := InstallArchive(g2, reg2); err != nil {
		t.Fatal(err)
	}
	r := buildRig(t, g2, reg2, 2)
	warmARP(r.rt, ifs)
	r.inject("eth0", testPacket(ifs))
	if len(r.devs["eth1"].tx) != 1 {
		t.Fatalf("reloaded fused router forwarded %d packets, want 1", len(r.devs["eth1"].tx))
	}
}

// fuseTransitFirewall is the paper's 17-rule firewall with a UDP
// transit admit inserted before the default deny, so the difftest
// traces (UDP between the router's attached hosts) survive the filter
// after traversing most of the ruleset.
func fuseTransitFirewall() []string {
	fw := iprouter.FirewallRules()
	rules := append([]string(nil), fw[:len(fw)-1]...)
	return append(rules, "allow udp", "deny all")
}

// TestFuseAfterArchiveInstall is the regression test for analyzing
// against an incomplete registry: fastclassifier+devirtualize output is
// packed and reloaded, then fusion runs against a fresh registry that
// knows the archive's generated _fcN/_dvN classes only through
// InstallArchive. Fusion must compose those classes, not fail on them.
func TestFuseAfterArchiveInstall(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	text := fuseChainConfig(ifs, fuseTransitFirewall())
	trace := ipTrace(ifs, 60)
	base := diffRun(t, text, 2, nil, 0, 1, ifs, trace)
	if len(base["eth1"]) == 0 {
		t.Fatal("baseline forwarded nothing")
	}

	g, err := lang.ParseRouter(text, "t")
	if err != nil {
		t.Fatal(err)
	}
	reg := elements.NewRegistry()
	if err := applyAllPasses(g, reg); err != nil {
		t.Fatal(err)
	}
	var members []lang.ArchiveMember
	for name, data := range g.Archive {
		members = append(members, lang.ArchiveMember{Name: name, Data: data})
	}
	packed := lang.PackConfig(lang.Unparse(g), members)
	cfg, extra, err := lang.UnpackConfig(packed)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := lang.ParseRouter(cfg, "reloaded")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range extra {
		g2.Archive[m.Name] = m.Data
	}
	reg2 := elements.NewRegistry()
	if err := InstallArchive(g2, reg2); err != nil {
		t.Fatal(err)
	}
	if err := Fuse(g2, reg2); err != nil {
		t.Fatalf("fuse after archive install: %v", err)
	}
	rep := fuseReport(t, g2)
	if rep.RunsFused == 0 {
		t.Fatalf("fusion found nothing to fuse in optimized config:\n%s", lang.Unparse(g2))
	}

	devs := map[string]*fakeDevice{}
	env := map[string]interface{}{}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("eth%d", i)
		d := &fakeDevice{name: name}
		devs[name] = d
		env["device:"+name] = d
	}
	rt, err := core.Build(g2, reg2, core.BuildOptions{Env: env})
	if err != nil {
		t.Fatalf("build: %v\n%s", err, lang.Unparse(g2))
	}
	warmARP(rt, ifs)
	for _, p := range trace {
		devs["eth0"].rx = append(devs["eth0"].rx, p.Clone())
	}
	rt.RunUntilIdle(100000)
	got := map[string][][]byte{}
	for name, d := range devs {
		seq := make([][]byte, 0, len(d.tx))
		for _, p := range d.tx {
			seq = append(seq, append([]byte(nil), p.Data()...))
		}
		got[name] = seq
	}
	diffCompare(t, "fuse-after-install", base, got)
}

func fuseReport(t *testing.T, g *graph.Router) *PassReport {
	t.Helper()
	reps, err := Reports(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reps {
		if r.Pass == "fuse" {
			return r
		}
	}
	t.Fatal("no fuse pass report")
	return nil
}

// TestFusePassOrdering: fusion composed with the full optimizer chain
// in either order must preserve behavior packet for packet.
func TestFusePassOrdering(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	text := fuseChainConfig(ifs, fuseTransitFirewall())
	trace := ipTrace(ifs, 80)
	base := diffRun(t, text, 2, nil, 0, 1, ifs, trace)
	if len(base["eth1"]) == 0 {
		t.Fatal("baseline forwarded nothing")
	}
	orders := []struct {
		name  string
		apply func(g *graph.Router, reg *core.Registry) error
	}{
		{"fuse-first", func(g *graph.Router, reg *core.Registry) error {
			if err := Fuse(g, reg); err != nil {
				return err
			}
			return applyAllPasses(g, reg)
		}},
		{"fuse-last", func(g *graph.Router, reg *core.Registry) error {
			if err := applyAllPasses(g, reg); err != nil {
				return err
			}
			return Fuse(g, reg)
		}},
		{"fuse-mid", func(g *graph.Router, reg *core.Registry) error {
			if err := FastClassifier(g, reg); err != nil {
				return err
			}
			if err := Fuse(g, reg); err != nil {
				return err
			}
			return Devirtualize(g, reg, nil)
		}},
	}
	for _, o := range orders {
		got := diffRun(t, text, 2, o.apply, 0, 1, ifs, trace)
		diffCompare(t, o.name, base, got)
		for _, m := range diffModes {
			got := diffRun(t, text, 2, o.apply, m.burst, m.workers, ifs, trace)
			diffCompare(t, o.name+"+"+m.name, base, got)
		}
	}
}

// fuseRandomRules generates a rule set with overlapping prefixes,
// shadowed rules, negations, relational port ranges, and TCP-flag
// patterns — the adversarial shapes for decision-diagram construction.
func fuseRandomRules(r *rand.Rand, n int) []string {
	hosts := []string{"10.0.0.2", "10.0.2.2", "10.0.2.9"}
	nets := []string{"10.0.0.0/8", "10.0.2.0/24", "10.0.0.0/30"}
	var rules []string
	for i := 0; i < n; i++ {
		action := []string{"allow", "deny"}[r.Intn(2)]
		var expr string
		switch r.Intn(8) {
		case 0:
			expr = fmt.Sprintf("src host %s && udp && dst port %d", hosts[r.Intn(len(hosts))], 1+r.Intn(4))
		case 1:
			expr = fmt.Sprintf("dst net %s && udp", nets[r.Intn(len(nets))])
		case 2:
			expr = fmt.Sprintf("udp && dst port >= %d", 1+r.Intn(4))
		case 3:
			expr = fmt.Sprintf("udp && src port < %d", 1024+r.Intn(128))
		case 4:
			expr = fmt.Sprintf("not src net %s && udp", nets[r.Intn(len(nets))])
		case 5:
			expr = "tcp syn && not tcp ack"
		case 6:
			expr = "ip frag"
		case 7:
			expr = fmt.Sprintf("host %s || (udp && dst port <= %d)", hosts[r.Intn(len(hosts))], 1+r.Intn(4))
		}
		rules = append(rules, action+" "+expr)
	}
	rules = append(rules, "allow udp")
	return rules
}

// TestFusePropertyEquivalence is the property-based harness from the
// issue: for each seed, build a random classification chain (random
// IPFilter rules, an IPClassifier, a StaticSwitch), pair the fused and
// unfused routers, and assert identical output port and packet bytes
// for the whole trace — in scalar mode and across the batch/parallel
// matrix.
func TestFusePropertyEquivalence(t *testing.T) {
	const nseeds = 8
	npkts := 500
	if testing.Short() {
		npkts = 120
	}
	ifs := iprouter.Interfaces(2)
	for seed := int64(1); seed <= nseeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			text := fuseChainConfig(ifs, fuseRandomRules(r, 2+r.Intn(10)))
			trace := fusePropertyTrace(r, ifs, npkts)
			base := diffRun(t, text, 2, nil, 0, 1, ifs, trace)
			if len(base["eth1"]) == 0 {
				t.Fatalf("seed %d forwarded nothing:\n%s", seed, text)
			}
			fused := diffRun(t, text, 2, func(g *graph.Router, reg *core.Registry) error {
				if err := Fuse(g, reg); err != nil {
					return err
				}
				rep := fuseReport(t, g)
				if rep.RunsFused == 0 {
					return fmt.Errorf("nothing fused")
				}
				return nil
			}, 0, 1, ifs, trace)
			diffCompare(t, "fused", base, fused)
			for _, m := range diffModes {
				got := diffRun(t, text, 2, func(g *graph.Router, reg *core.Registry) error {
					return Fuse(g, reg)
				}, m.burst, m.workers, ifs, trace)
				diffCompare(t, "fused+"+m.name, base, got)
			}
		})
	}
}

// fusePropertyTrace builds transit UDP packets whose headers are then
// randomly perturbed (protocol, fragment field, ports, source host,
// TCP-flag byte, truncation) so every rule shape in fuseRandomRules is
// exercised, including transport guards on fragments and short packets.
func fusePropertyTrace(r *rand.Rand, ifs []iprouter.Interface, n int) []*packet.Packet {
	ps := make([]*packet.Packet, n)
	for i := range ps {
		payload := make([]byte, 14+r.Intn(32))
		payload[0], payload[1] = byte(i>>8), byte(i)
		p := packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
			ifs[0].HostAddr, ifs[1].HostAddr,
			uint16(1024+r.Intn(256)), uint16(1+r.Intn(6)), payload)
		d := p.Data()
		switch r.Intn(8) {
		case 0:
			d[14+9] = 6 // claim TCP; ports/flags bytes become TCP fields
			d[14+33] = byte(r.Intn(64))
		case 1:
			d[14+6], d[14+7] = 0x20, byte(1+r.Intn(200)) // fragment
		case 2:
			d[14+12+3] = byte(r.Intn(10)) // vary source host
		case 3:
			d[14+9] = byte(r.Intn(30)) // arbitrary protocol
		}
		ps[i] = p
	}
	return ps
}
