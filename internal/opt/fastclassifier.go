package opt

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/lang"
)

// classifierClasses are the generic classification elements
// click-fastclassifier specializes (§4).
var classifierClasses = map[string]bool{
	"Classifier":   true,
	"IPClassifier": true,
	"IPFilter":     true,
}

// FastClassifier applies the click-fastclassifier optimization (§4):
//
//   - find the configuration's classification elements and combine
//     adjacent Classifiers to improve optimization possibilities;
//   - extract their decision trees by instantiating each classifier in
//     a harness configuration (so classifier syntax is implemented
//     exactly once, in the classifiers themselves) and reading the tree
//     the element built;
//   - generate one specialized, compiled class per distinct tree
//     (classifiers with identical trees share a class);
//   - rewrite the configuration to use the generated classes and attach
//     the generated source plus a machine-readable program list to the
//     archive.
func FastClassifier(g *graph.Router, reg *core.Registry) error {
	report := &PassReport{
		Pass:                "fastclassifier",
		ClassifiersCombined: combineAdjacentClassifiers(g, reg),
	}

	// Collect classifier elements in deterministic order.
	var targets []int
	for _, i := range g.LiveIndices() {
		if classifierClasses[g.Element(i).Class] {
			targets = append(targets, i)
		}
	}
	if len(targets) == 0 {
		attachReport(g, report)
		return nil
	}

	type genClass struct {
		name     string
		program  *classifier.Program
		compiled *classifier.Compiled
	}
	var gens []*genClass
	var programsDoc strings.Builder
	var sources = map[string][]byte{}
	classMembers := map[string][]string{}

	for _, i := range targets {
		e := g.Element(i)
		prog, err := extractProgram(e.Class, e.Config, reg)
		if err != nil {
			return fmt.Errorf("opt: fastclassifier: element %q: %v", e.Name, err)
		}
		// Classifiers with identical decision trees share a class.
		var gen *genClass
		for _, prev := range gens {
			if prev.program.Equal(prog) {
				gen = prev
				break
			}
		}
		if gen == nil {
			gen = &genClass{
				name:     "FastClassifier@@" + e.Name,
				program:  prog,
				compiled: classifier.Compile(prog),
			}
			gens = append(gens, gen)
			goName := strings.NewReplacer("@", "_", "/", "_").Replace(gen.name)
			sources["fastclassifier/"+goName+".go"] = []byte(classifier.GenerateGoSource(goName, prog))
			fmt.Fprintf(&programsDoc, "class %s\n%send\n", gen.name, prog.String())
		}
		e.Class = gen.name
		classMembers[gen.name] = append(classMembers[gen.name], e.Name)
		// The generated class ignores configuration; keep the original
		// rules as documentation, exactly as the C++ tool does.
	}

	for _, gen := range gens {
		registerFastClassifierSpec(reg, gen.name, gen.compiled)
	}
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g.Archive[n] = sources[n]
	}
	g.Archive["fastclassifier/programs"] = []byte(programsDoc.String())
	g.Require("fastclassifier")
	report.ClassesGenerated = len(gens)
	report.ElementsSpecialized = len(targets)
	report.Classes = classMembers
	attachReport(g, report)
	return nil
}

// extractProgram runs a classifier in a harness configuration and reads
// back its decision tree. The harness contains only the classifier plus
// generated boilerplate, avoiding side effects from running the input
// configuration (§4).
// extractCache memoizes extracted programs for the builtin classifier
// classes, whose decision tree is a pure function of (class, config) —
// unlike archive-generated classes, whose meaning depends on the
// registry they ride in. Extraction builds a harness router and
// round-trips the program through text, which is the dominant cost of
// re-optimizing a configuration whose classifiers have been seen
// before (the management plane admits hundreds of those).
var extractCache sync.Map

func extractProgram(class, config string, reg *core.Registry) (*classifier.Program, error) {
	cacheKey := class + "\x00" + config
	if classifierClasses[class] {
		if v, ok := extractCache.Load(cacheKey); ok {
			return v.(*classifier.Program).Clone(), nil
		}
	}
	_, nout, ok := reg.PortCounts(class, config)
	if !ok {
		return nil, fmt.Errorf("unknown classifier class %q", class)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "harness :: %s(%s);\n", class, config)
	fmt.Fprintf(&b, "Idle -> harness;\n")
	for p := 0; p < nout.Min; p++ {
		fmt.Fprintf(&b, "harness [%d] -> Discard;\n", p)
	}
	rt, err := core.BuildFromText(b.String(), "fastclassifier-harness", reg, core.BuildOptions{})
	if err != nil {
		return nil, err
	}
	h := rt.Find("harness")
	progEl, ok := h.(interface{ Program() *classifier.Program })
	if !ok {
		return nil, fmt.Errorf("class %q does not expose a decision tree", class)
	}
	// Round-trip through the textual form — the real tool parses the
	// harness's printed output, so we do too, keeping that path honest.
	prog, err := classifier.ParseProgram(progEl.Program().String())
	if err != nil {
		return nil, fmt.Errorf("reparsing harness output: %v", err)
	}
	prog.Optimize()
	if classifierClasses[class] {
		extractCache.Store(cacheKey, prog.Clone())
	}
	return prog, nil
}

// registerFastClassifierSpec registers the dynamic spec for a generated
// class.
func registerFastClassifierSpec(reg *core.Registry, name string, comp *classifier.Compiled) {
	nout := comp.Program().NOutputs
	reg.RegisterDynamic(&core.Spec{
		Name:       name,
		Processing: "h/h",
		Ports: func(string) (graph.PortRange, graph.PortRange) {
			return graph.Exactly(1), graph.Exactly(nout)
		},
		Make:       elements.NewFastClassifier(comp),
		WorkCycles: fastClassWorkCycles,
	})
}

// fastClassWorkCycles mirrors elements' internal cost constant for
// generated classifier classes (compiled entry/exit).
const fastClassWorkCycles = 14

// combineAdjacentClassifiers merges Classifier pairs where one
// Classifier's output feeds another Classifier's sole input: the
// downstream tree is grafted onto the upstream leaf, widening
// optimization scope (§4 "combines adjacent Classifiers").
// Only raw Classifiers combine — IPClassifier operates on different
// packet framing. Returns the number of pairs merged.
func combineAdjacentClassifiers(g *graph.Router, reg *core.Registry) int {
	merged := 0
	for {
		combined := false
		for _, up := range g.LiveIndices() {
			if g.Element(up).Class != "Classifier" {
				continue
			}
			for p := 0; p < g.NOutputs(up); p++ {
				outs := g.OutputConns(up, p)
				if len(outs) != 1 {
					continue
				}
				down := outs[0].To
				if down == up || g.Element(down).Class != "Classifier" {
					continue
				}
				// The downstream classifier must be fed only by this
				// connection.
				if len(g.ConnsTo(down)) != 1 {
					continue
				}
				if mergeClassifierPair(g, up, p, down) {
					combined = true
					merged++
					break
				}
			}
			if combined {
				break
			}
		}
		if !combined {
			return merged
		}
	}
}

// mergeClassifierPair rewrites up so that its output p classifies with
// down's patterns: up's patterns stay, but the packets that matched
// pattern p continue into down's pattern list. Since Classifier configs
// are pattern lists, the merge concatenates pattern lists with the
// upstream pattern's terms prefixed onto each downstream pattern
// (logical AND), preserving first-match-wins order.
func mergeClassifierPair(g *graph.Router, up, p int, down int) bool {
	upArgs := lang.SplitConfig(g.Element(up).Config)
	downArgs := lang.SplitConfig(g.Element(down).Config)
	if p >= len(upArgs) {
		return false
	}
	// Safety: a packet matching up's pattern p but none of down's
	// patterns must still drop after the merge. That holds when down
	// ends in a catch-all (nothing falls through) or when p is up's
	// last pattern (fallthrough drops either way).
	if strings.TrimSpace(downArgs[len(downArgs)-1]) != "-" && p != len(upArgs)-1 {
		return false
	}
	prefix := strings.TrimSpace(upArgs[p])
	if prefix == "-" {
		prefix = ""
	}
	// The merged element's pattern list keeps first-match-wins order:
	// up's pre-p patterns, then down's patterns each guarded by up's
	// pattern p (conjunction by term concatenation), then up's post-p
	// patterns.
	var newArgs []string
	type portRef struct{ elem, port int }
	newPortOf := map[portRef]int{}
	appendPattern := func(pat string, ref portRef) {
		newArgs = append(newArgs, pat)
		newPortOf[ref] = len(newArgs) - 1
	}
	for q := 0; q < p; q++ {
		appendPattern(upArgs[q], portRef{up, q})
	}
	for q, d := range downArgs {
		merged := strings.TrimSpace(prefix + " " + strings.TrimSpace(d))
		if merged == "" {
			merged = "-"
		}
		// "A -" is not a valid term list; a catch-all term after real
		// terms is simply redundant.
		if merged != "-" && strings.HasSuffix(merged, " -") {
			merged = strings.TrimSpace(strings.TrimSuffix(merged, " -"))
		}
		appendPattern(merged, portRef{down, q})
	}
	for q := p + 1; q < len(upArgs); q++ {
		appendPattern(upArgs[q], portRef{up, q})
	}

	// Rewire: collect all old output connections, then reconnect.
	var rewires []struct {
		newPort int
		to      int
		toPort  int
	}
	for q := 0; q < len(upArgs); q++ {
		if q == p {
			continue
		}
		for _, c := range g.OutputConns(up, q) {
			rewires = append(rewires, struct {
				newPort int
				to      int
				toPort  int
			}{newPortOf[portRef{up, q}], c.To, c.ToPort})
		}
	}
	for q := 0; q < len(downArgs); q++ {
		for _, c := range g.OutputConns(down, q) {
			rewires = append(rewires, struct {
				newPort int
				to      int
				toPort  int
			}{newPortOf[portRef{down, q}], c.To, c.ToPort})
		}
	}
	// Drop all old connections from up and remove down.
	for _, c := range g.ConnsFrom(up) {
		g.Disconnect(c.From, c.FromPort, c.To, c.ToPort)
	}
	g.RemoveElement(down)
	g.Element(up).Config = lang.JoinConfig(newArgs)
	for _, rw := range rewires {
		g.Connect(up, rw.newPort, rw.to, rw.toPort)
	}
	return true
}

// InstallFastClassifiers re-registers generated classifier specs from an
// archive (the driver-side analogue of compiling and linking the
// attached source).
func InstallFastClassifiers(g *graph.Router, reg *core.Registry) error {
	data, ok := g.Archive["fastclassifier/programs"]
	if !ok {
		return nil
	}
	progs, err := parseProgramsArchive(data)
	if err != nil {
		return fmt.Errorf("opt: fastclassifier: %v", err)
	}
	for _, np := range progs {
		registerFastClassifierSpec(reg, np.name, classifier.Compile(np.program))
	}
	return nil
}

// InstallArchive registers all dynamic specifications an optimized
// configuration carries. The click driver calls this after unpacking a
// configuration archive, mirroring Click's compile-and-link of attached
// code before parsing the configuration (§5.2).
func InstallArchive(g *graph.Router, reg *core.Registry) error {
	if err := InstallFastClassifiers(g, reg); err != nil {
		return err
	}
	// Fused classes may wrap fastclassifier output, and a devirtualized
	// classmap may reference fused classes: install in that order.
	if err := InstallFused(g, reg); err != nil {
		return err
	}
	return InstallDevirtualized(g, reg)
}
