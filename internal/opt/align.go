package opt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lang"
)

// Alignment describes what is known about packet data alignment at some
// point in a configuration: data offsets are congruent to Offset modulo
// Modulus. Modulus 1 means nothing is known; Modulus 0 is the "no
// packets reach here" top element of the lattice.
type Alignment struct {
	Modulus int
	Offset  int
}

// Unknown is the bottom lattice element (no alignment guarantee).
var Unknown = Alignment{Modulus: 1}

// Unreached marks edges no packet traverses.
var Unreached = Alignment{Modulus: 0}

// Known reports whether the alignment carries information.
func (a Alignment) Known() bool { return a.Modulus > 1 }

// Shift returns the alignment after the data pointer moves forward by n
// bytes (Strip) — or backward for negative n (encapsulation).
func (a Alignment) Shift(n int) Alignment {
	if a.Modulus <= 1 {
		return a
	}
	off := (a.Offset + n) % a.Modulus
	if off < 0 {
		off += a.Modulus
	}
	return Alignment{Modulus: a.Modulus, Offset: off}
}

// Join combines alignments from converging paths: the strongest claim
// implied by both.
func (a Alignment) Join(b Alignment) Alignment {
	if a == Unreached {
		return b
	}
	if b == Unreached {
		return a
	}
	m := gcd(a.Modulus, b.Modulus)
	for m > 1 && a.Offset%m != b.Offset%m {
		m /= 2
	}
	if m <= 1 {
		return Unknown
	}
	return Alignment{Modulus: m, Offset: a.Offset % m}
}

// Satisfies reports whether data aligned as a is necessarily aligned as
// requirement want.
func (a Alignment) Satisfies(want Alignment) bool {
	if !want.Known() {
		return true
	}
	if a == Unreached {
		return true
	}
	return a.Modulus%want.Modulus == 0 && a.Offset%want.Modulus == want.Offset
}

func (a Alignment) String() string {
	if a == Unreached {
		return "unreached"
	}
	return fmt.Sprintf("%d/%d", a.Modulus, a.Offset)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// alignClassInfo is the per-class alignment knowledge click-align
// carries. The paper notes (§5.3, §7.1) that alignment behaviour
// couldn't be specified textually in the element source, so the tool
// contains explicit code for the relevant classes; this table is that
// code.
type alignClassInfo struct {
	// want is the alignment the element requires on its inputs
	// (zero value = no requirement).
	want Alignment
	// xfer transforms the (joined) input alignment into each output's
	// alignment. Nil means identity on all outputs.
	xfer func(in Alignment, g *graph.Router, i int, out int) Alignment
}

// deviceAlignment is what simulated devices deliver: Ethernet header at
// a 4-byte boundary, so after Strip(14) the IP header is at offset 2
// mod 4 — the misalignment click-align exists to fix on strict
// architectures.
var deviceAlignment = Alignment{Modulus: 4, Offset: 0}

// wordAligned is the common requirement of word-loading elements.
var wordAligned = Alignment{Modulus: 4, Offset: 0}

func alignTable() map[string]alignClassInfo {
	shiftBy := func(n int) func(Alignment, *graph.Router, int, int) Alignment {
		return func(in Alignment, g *graph.Router, i, out int) Alignment { return in.Shift(n) }
	}
	configShift := func(sign int) func(Alignment, *graph.Router, int, int) Alignment {
		return func(in Alignment, g *graph.Router, i, out int) Alignment {
			args := lang.SplitConfig(g.Element(i).Config)
			if len(args) == 0 {
				return in
			}
			n, err := strconv.Atoi(strings.TrimSpace(args[0]))
			if err != nil {
				return Unknown
			}
			return in.Shift(sign * n)
		}
	}
	fresh := func(a Alignment) func(Alignment, *graph.Router, int, int) Alignment {
		return func(Alignment, *graph.Router, int, int) Alignment { return a }
	}
	return map[string]alignClassInfo{
		"PollDevice":     {xfer: fresh(deviceAlignment)},
		"FromDevice":     {xfer: fresh(deviceAlignment)},
		"InfiniteSource": {xfer: fresh(deviceAlignment)},
		// Classifier loads words relative to the data start.
		"Classifier":   {want: wordAligned},
		"IPClassifier": {want: wordAligned},
		"IPFilter":     {want: wordAligned},
		// IP elements load header words; packets reaching them start
		// at the IP header.
		"CheckIPHeader": {want: wordAligned},
		"IPInputCombo":  {want: Alignment{Modulus: 4, Offset: 2}, xfer: shiftBy(14)},
		"IPOutputCombo": {want: wordAligned},
		"GetIPAddress":  {want: wordAligned},
		"LookupIPRoute": {want: wordAligned},
		"DecIPTTL":      {want: wordAligned},
		"IPGWOptions":   {want: wordAligned},
		"FixIPSrc":      {want: wordAligned},
		"IPFragmenter":  {want: wordAligned},
		"ICMPError":     {want: wordAligned, xfer: fresh(Alignment{Modulus: 4, Offset: 0})},
		// Data-pointer movers.
		"Strip":      {xfer: configShift(1)},
		"Unstrip":    {xfer: configShift(-1)},
		"EtherEncap": {xfer: shiftBy(-14)},
		"ARPQuerier": {xfer: func(in Alignment, g *graph.Router, i, out int) Alignment {
			// Output carries both encapsulated packets (shifted -14)
			// and self-generated queries (fresh device alignment).
			return in.Shift(-14).Join(deviceAlignment)
		}},
		"ARPResponder": {xfer: fresh(deviceAlignment)},
		"Align": {xfer: func(in Alignment, g *graph.Router, i, out int) Alignment {
			args := lang.SplitConfig(g.Element(i).Config)
			if len(args) != 2 {
				return Unknown
			}
			m, err1 := strconv.Atoi(strings.TrimSpace(args[0]))
			o, err2 := strconv.Atoi(strings.TrimSpace(args[1]))
			if err1 != nil || err2 != nil {
				return Unknown
			}
			return Alignment{Modulus: m, Offset: o}
		}},
	}
}

// AlignResult reports what the pass did.
type AlignResult struct {
	Inserted int
	Removed  int
	// Final maps element names to the alignment of data arriving at
	// them (the AlignmentInfo content).
	Final map[string]Alignment
}

// AlignPass implements click-align (§7.1): a forward data-flow analysis
// over the configuration computes the alignment of packet data entering
// every element; an Align element is inserted wherever the computed
// alignment fails an element's requirement; redundant Align elements
// (whose input already satisfies their output spec) are removed; and an
// AlignmentInfo element records the final facts.
func AlignPass(g *graph.Router, reg *core.Registry) (*AlignResult, error) {
	table := alignTable()
	res := &AlignResult{Final: map[string]Alignment{}}

	// Pass 1: remove existing redundant Aligns after computing flow
	// with them in place; then insert missing Aligns. We iterate the
	// dataflow to fixpoint each time the graph changes.
	flow := func() (map[int]Alignment, error) {
		in := map[int]Alignment{}
		for _, i := range g.LiveIndices() {
			in[i] = Unreached
		}
		// Iterate to fixpoint: graphs can have cycles (ICMPError loops
		// back to the routing table).
		for round := 0; round < 4*len(g.Elements)+8; round++ {
			changed := false
			for _, i := range g.LiveIndices() {
				e := g.Element(i)
				info := table[e.Class]
				inAl := in[i]
				nout := g.NOutputs(i)
				for p := 0; p < nout; p++ {
					outAl := inAl
					if info.xfer != nil {
						outAl = info.xfer(inAl, g, i, p)
					} else if g.NInputs(i) == 0 {
						// Source class without a transfer entry:
						// unknown output alignment.
						outAl = Unknown
					}
					for _, c := range g.OutputConns(i, p) {
						j := c.To
						nv := in[j].Join(outAl)
						if nv != in[j] {
							in[j] = nv
							changed = true
						}
					}
				}
			}
			if !changed {
				return in, nil
			}
		}
		return nil, fmt.Errorf("opt: align dataflow did not converge")
	}

	// removeRedundant strips Aligns whose input already satisfies their
	// spec; onlyOurs limits it to Aligns this pass inserted (the final
	// cleanup). It returns how many it removed.
	inserted := map[string]bool{}
	removeRedundant := func(onlyOurs bool) (int, error) {
		n := 0
		for {
			in, err := flow()
			if err != nil {
				return n, err
			}
			removed := false
			for _, i := range g.LiveIndices() {
				e := g.Element(i)
				if e.Class != "Align" {
					continue
				}
				if onlyOurs && !inserted[e.Name] {
					continue
				}
				args := lang.SplitConfig(e.Config)
				if len(args) != 2 {
					continue
				}
				m, _ := strconv.Atoi(strings.TrimSpace(args[0]))
				o, _ := strconv.Atoi(strings.TrimSpace(args[1]))
				if in[i].Satisfies(Alignment{Modulus: m, Offset: o}) {
					g.RemoveAndSplice(i)
					n++
					removed = true
					break
				}
			}
			if !removed {
				return n, nil
			}
		}
	}
	n, err := removeRedundant(false)
	if err != nil {
		return nil, err
	}
	res.Removed += n

	// Insert Aligns where requirements fail.
	for {
		in, err := flow()
		if err != nil {
			return nil, err
		}
		didInsert := false
		for _, i := range g.LiveIndices() {
			e := g.Element(i)
			info := table[e.Class]
			if !info.want.Known() || in[i].Satisfies(info.want) {
				continue
			}
			if g.NInputs(i) > 1 {
				// All word-loading classes take one input; skip
				// anything unusual rather than merge its ports.
				continue
			}
			al := g.MustAddElement("", "Align",
				fmt.Sprintf("%d, %d", info.want.Modulus, info.want.Offset), "click-align")
			inserted[g.Element(al).Name] = true
			for _, c := range g.ConnsTo(i) {
				g.Disconnect(c.From, c.FromPort, c.To, c.ToPort)
				g.Connect(c.From, c.FromPort, al, 0)
			}
			g.Connect(al, 0, i, 0)
			res.Inserted++
			didInsert = true
			break
		}
		if !didInsert {
			break
		}
	}

	// Cleanup: an Align inserted early (e.g. before a join point) can
	// become redundant once upstream paths are fixed; strip those.
	n, err = removeRedundant(true)
	if err != nil {
		return nil, err
	}
	res.Inserted -= n

	// Record final alignments in an AlignmentInfo element.
	in, err := flow()
	if err != nil {
		return nil, err
	}
	var entries []string
	for _, i := range g.LiveIndices() {
		e := g.Element(i)
		if e.Class == "AlignmentInfo" {
			g.RemoveElement(i)
			continue
		}
		a := in[i]
		res.Final[e.Name] = a
		if a.Known() {
			entries = append(entries, fmt.Sprintf("%s %d %d", e.Name, a.Modulus, a.Offset))
		}
	}
	sort.Strings(entries)
	if len(entries) > 0 {
		g.MustAddElement("AlignmentInfo@@", "AlignmentInfo", lang.JoinConfig(entries), "click-align")
	}
	return res, nil
}
