package opt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// InstallFlowCache splices a FlowCache element into a configuration:
// every device ingress edge is rerouted through a cache ingress port,
// and every edge entering an egress queue (or a RED dropper guarding
// one) is rerouted through a record tap. The element itself
// (elements.FlowCache) then learns per-flow transformations on the
// first packet and short-circuits the pipeline for the rest — see its
// documentation for the recording, verification, and guard mechanics.
//
// The pass is purely structural — no element is removed or replaced, so
// it composes with undead/fastclassifier/fuse/devirtualize in any
// order. It is idempotent: a configuration already carrying a FlowCache
// is left alone (the adaptive controller re-runs pass pipelines on
// unparsed configurations, which must not stack caches).
//
// Tap placement deliberately targets RED inputs as well as Queue
// inputs: the fast path must re-enter the pipeline *before* any
// drop-decision element, otherwise cached packets would bypass the
// dropper the slow path went through.
func InstallFlowCache(g *graph.Router, reg *core.Registry) error {
	report := &PassReport{Pass: "flowcache"}
	for _, i := range g.LiveIndices() {
		if stripDevirt(g.Elements[i].Class) == "FlowCache" {
			attachReport(g, report)
			return nil
		}
	}

	isIngressSrc := func(class string) bool {
		switch stripDevirt(class) {
		case "PollDevice", "FromDevice":
			return true
		}
		return false
	}
	isEgressSink := func(class string) bool {
		switch stripDevirt(class) {
		case "Queue", "RED":
			return true
		}
		return false
	}

	// Ingress edges: the single output edge of each device source.
	var ingress []graph.Connection
	for _, i := range g.LiveIndices() {
		if !isIngressSrc(g.Elements[i].Class) {
			continue
		}
		for p := 0; p < g.NOutputs(i); p++ {
			ingress = append(ingress, g.OutputConns(i, p)...)
		}
	}
	if len(ingress) == 0 {
		attachReport(g, report)
		return nil
	}

	// Tap edges: every edge entering a Queue or RED from anything that
	// is not itself a Queue or RED (a Queue -> RED edge is the pull
	// side; a RED -> Queue edge is already covered by the tap in front
	// of the RED). Collected before rewiring so the FlowCache's own
	// miss outputs — which may feed a queue directly — are included,
	// while the tap pass-through edges added below are not.
	var taps []graph.Connection
	collectTaps := func() {
		taps = taps[:0]
		for _, c := range g.Conns {
			if isEgressSink(g.Elements[c.To].Class) && !isIngressSrc(g.Elements[c.From].Class) && !isEgressSink(g.Elements[c.From].Class) {
				taps = append(taps, c)
			}
		}
	}

	name := "flow_cache"
	if g.FindElement(name) >= 0 {
		name = "" // collision: fall back to an anonymous name
	}
	// The element is added after counting ingresses but its config needs
	// the tap count, which includes edges from its own miss outputs; do
	// the ingress rewiring first against a provisional index.
	fcIdx, err := g.AddElement(name, "FlowCache", "", "flowcache")
	if err != nil {
		return fmt.Errorf("opt: flowcache: %v", err)
	}
	for i, c := range ingress {
		g.Disconnect(c.From, c.FromPort, c.To, c.ToPort)
		g.Connect(c.From, c.FromPort, fcIdx, i)
		g.Connect(fcIdx, i, c.To, c.ToPort)
	}
	collectTaps()
	for j, c := range taps {
		port := len(ingress) + j
		g.Disconnect(c.From, c.FromPort, c.To, c.ToPort)
		g.Connect(c.From, c.FromPort, fcIdx, port)
		g.Connect(fcIdx, port, c.To, c.ToPort)
	}
	g.Elements[fcIdx].Config = fmt.Sprintf("%d, %d", len(ingress), len(taps))

	report.FlowIngresses = len(ingress)
	report.FlowTaps = len(taps)
	attachReport(g, report)
	return nil
}
