package opt

import (
	"strings"
	"testing"

	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/packet"
)

// twoRouterNetwork builds routers A and B joined back-to-back:
// A's eth1 connects to B's eth0 (both directions).
func twoRouterNetwork(t *testing.T) (*graph.Router, []iprouter.Interface, []iprouter.Interface) {
	t.Helper()
	// Router A: interfaces 10.0.0.1 (edge) and 10.0.1.1 (link side).
	// Router B: interfaces 10.0.1.2-equivalent... use distinct subnets:
	// B gets 10.0.2.x and 10.0.3.x; the A.eth1 <-> B.eth0 link is
	// point-to-point, addressing doesn't matter for combination.
	ifsA := iprouter.Interfaces(2)
	ifsB := []iprouter.Interface{
		{
			Device: "eth0", Addr: mustIP(t, "10.0.2.1"),
			Ether:    mustEth(t, "00:00:c0:00:02:01"),
			HostAddr: mustIP(t, "10.0.2.2"), HostEth: mustEth(t, "00:00:c0:00:02:02"),
		},
		{
			Device: "eth1", Addr: mustIP(t, "10.0.3.1"),
			Ether:    mustEth(t, "00:00:c0:00:03:01"),
			HostAddr: mustIP(t, "10.0.3.2"), HostEth: mustEth(t, "00:00:c0:00:03:02"),
		},
	}
	ga, err := lang.ParseRouter(iprouter.Config(ifsA), "routerA")
	if err != nil {
		t.Fatal(err)
	}
	gb, err := lang.ParseRouter(iprouter.Config(ifsB), "routerB")
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Combine(
		[]RouterInput{{Name: "a", Config: ga}, {Name: "b", Config: gb}},
		[]Link{
			{FromRouter: "a", FromDev: "eth1", ToRouter: "b", ToDev: "eth0"},
			{FromRouter: "b", FromDev: "eth0", ToRouter: "a", ToDev: "eth1"},
		})
	if err != nil {
		t.Fatal(err)
	}
	return combined, ifsA, ifsB
}

func mustIP(t *testing.T, s string) packet.IP4 {
	t.Helper()
	ip, err := packet.ParseIP4(s)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}

func TestParseLink(t *testing.T) {
	l, err := ParseLink("a.eth0 -> b.eth1")
	if err != nil {
		t.Fatal(err)
	}
	if l.FromRouter != "a" || l.FromDev != "eth0" || l.ToRouter != "b" || l.ToDev != "eth1" {
		t.Errorf("link = %+v", l)
	}
	for _, bad := range []string{"", "a.eth0", "a -> b", ".eth0 -> b.eth1", "a.eth0 -> b."} {
		if _, err := ParseLink(bad); err == nil {
			t.Errorf("ParseLink(%q) succeeded", bad)
		}
	}
}

func TestCombineStructure(t *testing.T) {
	combined, _, _ := twoRouterNetwork(t)
	// RouterLinks exist for both directions.
	if combined.FindElement("link@a/eth1@b/eth0") < 0 || combined.FindElement("link@b/eth0@a/eth1") < 0 {
		t.Fatalf("RouterLinks missing:\n%s", lang.Unparse(combined))
	}
	// The linked ToDevice/PollDevice pairs are gone; edge devices stay.
	if combined.FindElement("a/td1") >= 0 || combined.FindElement("b/fd0") >= 0 {
		t.Error("linked device elements survived")
	}
	if combined.FindElement("a/fd0") < 0 || combined.FindElement("b/td1") < 0 {
		t.Error("edge device elements removed")
	}
	// Prefixed element names from both routers.
	if combined.FindElement("a/rt") < 0 || combined.FindElement("b/rt") < 0 {
		t.Error("router elements not prefixed")
	}
	// The combined configuration still validates (RouterLink takes the
	// absorbed Queue's place).
	if errs := Check(combined, elements.NewRegistry()); len(errs) > 0 {
		t.Errorf("combined config errors: %v\n%s", errs, lang.Unparse(combined))
	}
}

func TestUncombineRoundTrip(t *testing.T) {
	combined, ifsA, _ := twoRouterNetwork(t)
	ga, err := Uncombine(combined, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Element names restored without prefix.
	if ga.FindElement("rt") < 0 || ga.FindElement("c0") < 0 {
		t.Fatalf("uncombined router missing elements:\n%s", lang.Unparse(ga))
	}
	// Device elements reinstated.
	foundTD, foundPD := false, false
	for _, i := range ga.LiveIndices() {
		e := ga.Element(i)
		if e.Class == "ToDevice" && strings.Contains(e.Config, "eth1") {
			foundTD = true
		}
		if e.Class == "PollDevice" && strings.Contains(e.Config, "eth1") {
			foundPD = true
		}
	}
	if !foundTD || !foundPD {
		t.Errorf("device elements not restored (td=%v pd=%v)", foundTD, foundPD)
	}
	if errs := Check(ga, elements.NewRegistry()); len(errs) > 0 {
		t.Errorf("uncombined config errors: %v\n%s", errs, lang.Unparse(ga))
	}
	// It should be runnable and forward packets like the original.
	r := buildRig(t, ga, elements.NewRegistry(), 2)
	warmARP(r.rt, ifsA)
	r.inject("eth0", testPacket(ifsA))
	if got := len(r.devs["eth1"].tx); got != 1 {
		t.Errorf("uncombined router forwarded %d packets, want 1", got)
	}
}

func TestUncombineUnknownRouter(t *testing.T) {
	combined, _, _ := twoRouterNetwork(t)
	if _, err := Uncombine(combined, "zzz"); err == nil {
		t.Error("unknown router name accepted")
	}
	plain := graph.New()
	if _, err := Uncombine(plain, "a"); err == nil {
		t.Error("uncombine without manifest accepted")
	}
}

func TestARPEliminationPattern(t *testing.T) {
	combined, _, _ := twoRouterNetwork(t)
	pairs, err := ParsePatterns(iprouter.ARPElimPatterns, "arpelim")
	if err != nil {
		t.Fatal(err)
	}
	n := Xform(combined, pairs)
	// Two directions on one inter-router link: two eliminations.
	if n != 2 {
		t.Fatalf("ARP elimination applied %d times, want 2\n%s", n, lang.Unparse(combined))
	}
	// The link-facing ARPQueriers are gone, replaced by static
	// encapsulation carrying the peer's MAC.
	if combined.FindElement("a/arpq1") < 0 {
		t.Fatal("a/arpq1 name lost")
	}
	e := combined.Element(combined.FindElement("a/arpq1"))
	if e.Class != "EtherEncapARP" {
		t.Errorf("a/arpq1 class = %s, want EtherEncapARP", e.Class)
	}
	args := lang.SplitConfig(e.Config)
	if len(args) != 2 || args[0] != "00:00:c0:00:01:01" || args[1] != "00:00:c0:00:02:01" {
		t.Errorf("EtherEncapARP config = %q (want our MAC, peer MAC)", e.Config)
	}
	// Edge-facing ARPQueriers survive.
	if combined.Element(combined.FindElement("a/arpq0")).Class != "ARPQuerier" {
		t.Error("edge ARPQuerier eliminated")
	}
	// RouterLink names preserved for uncombine.
	if combined.FindElement("link@a/eth1@b/eth0") < 0 {
		t.Fatal("RouterLink name lost in replacement")
	}
	// Still valid, and uncombine still works.
	if errs := Check(combined, elements.NewRegistry()); len(errs) > 0 {
		t.Fatalf("post-elimination errors: %v", errs)
	}
	ga, err := Uncombine(combined, "a")
	if err != nil {
		t.Fatal(err)
	}
	if errs := Check(ga, elements.NewRegistry()); len(errs) > 0 {
		t.Errorf("uncombined post-elimination errors: %v\n%s", errs, lang.Unparse(ga))
	}
	found := false
	for _, i := range ga.LiveIndices() {
		if ga.Element(i).Class == "EtherEncapARP" {
			found = true
		}
	}
	if !found {
		t.Error("extracted router lost its EtherEncapARP")
	}
}

func mustEth(t *testing.T, s string) packet.EtherAddr {
	t.Helper()
	e, err := packet.ParseEther(s)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
