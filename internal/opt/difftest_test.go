package opt

// Differential behavior-preservation harness: every optimizer pass, and
// every runtime execution mode (scalar, batched, parallel), must leave
// a router's observable behavior untouched — identical per-output-port
// packet sequences for the same input trace. The harness generates
// random push-mode configurations, replays a deterministic trace
// through the unmodified router and through each transformed or
// batched/parallel variant, and compares transmitted packets byte for
// byte. It doubles as the correctness oracle for the batch transfer
// path and the work-stealing scheduler.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/packet"
)

// diffTrace builds the deterministic input trace for one seed: UDP
// packets whose destination-port low byte steers classifiers and whose
// payload carries a sequence number, so output sequences expose both
// misrouting and reordering.
func diffTrace(seed int64, n int) []*packet.Packet {
	r := rand.New(rand.NewSource(seed))
	src := packet.EtherAddr{0, 160, 201, 1, 1, 1}
	dst := packet.EtherAddr{0, 160, 201, 2, 2, 2}
	ps := make([]*packet.Packet, n)
	for i := range ps {
		payload := make([]byte, 14+r.Intn(32))
		payload[0], payload[1] = byte(i>>8), byte(i)
		ps[i] = packet.BuildUDP4(src, dst,
			packet.MakeIP4(10, 0, 0, 2), packet.MakeIP4(10, 0, 2, 2),
			uint16(1024+r.Intn(64)), uint16(r.Intn(3)+1), payload)
	}
	return ps
}

// randomPushConfig generates a random push-mode configuration: a
// PollDevice entry, a random tree of Null/Counter/Paint/Tee/Classifier/
// StaticSwitch stages, and Queue → ToDevice sinks, one device per sink.
// It returns the configuration text and the number of sink devices.
func randomPushConfig(seed int64) (string, int) {
	r := rand.New(rand.NewSource(seed))
	var lines []string
	id := 0
	fresh := func(prefix string) string {
		id++
		return fmt.Sprintf("%s%d", prefix, id)
	}
	type stream struct {
		from string
		port int
	}
	lines = append(lines, "pd :: PollDevice(eth0);")
	open := []stream{{"pd", 0}}
	sinks := 0
	budget := 4 + r.Intn(10)
	for len(open) > 0 {
		s := open[0]
		open = open[1:]
		// Terminate when the budget runs out or when letting every open
		// stream terminate would exceed 8 sinks (devices eth1..eth8).
		if budget <= 0 || sinks+len(open) >= 7 || r.Intn(4) == 0 {
			sinks++
			q, td := fresh("q"), fresh("td")
			lines = append(lines,
				fmt.Sprintf("%s :: Queue; %s :: ToDevice(eth%d);", q, td, sinks),
				fmt.Sprintf("%s [%d] -> %s -> %s;", s.from, s.port, q, td))
			continue
		}
		budget--
		switch r.Intn(5) {
		case 0: // pass-through stage
			n := fresh("n")
			cls := "Null"
			if r.Intn(2) == 0 {
				cls = "Counter"
			}
			lines = append(lines,
				fmt.Sprintf("%s :: %s;", n, cls),
				fmt.Sprintf("%s [%d] -> %s;", s.from, s.port, n))
			open = append(open, stream{n, 0})
		case 1: // Paint
			n := fresh("pt")
			lines = append(lines,
				fmt.Sprintf("%s :: Paint(%d);", n, r.Intn(4)),
				fmt.Sprintf("%s [%d] -> %s;", s.from, s.port, n))
			open = append(open, stream{n, 0})
		case 2: // Tee duplicates the stream
			n := fresh("t")
			lines = append(lines,
				fmt.Sprintf("%s :: Tee;", n),
				fmt.Sprintf("%s [%d] -> %s;", s.from, s.port, n))
			open = append(open, stream{n, 0}, stream{n, 1})
		case 3: // Classifier splits on the UDP destination-port byte
			n := fresh("c")
			lines = append(lines,
				fmt.Sprintf("%s :: Classifier(37/01, 37/02, -);", n),
				fmt.Sprintf("%s [%d] -> %s;", s.from, s.port, n))
			open = append(open, stream{n, 0}, stream{n, 1}, stream{n, 2})
		case 4: // StaticSwitch routes everything one way
			n := fresh("sw")
			lines = append(lines,
				fmt.Sprintf("%s :: StaticSwitch(%d);", n, r.Intn(2)),
				fmt.Sprintf("%s [%d] -> %s;", s.from, s.port, n))
			open = append(open, stream{n, 0}, stream{n, 1})
		}
	}
	return strings.Join(lines, "\n"), sinks
}

// diffPasses are the optimizer passes under differential test.
var diffPasses = []struct {
	name  string
	apply func(g *graph.Router, reg *core.Registry) error
}{
	{"fastclassifier", func(g *graph.Router, reg *core.Registry) error { return FastClassifier(g, reg) }},
	{"fuse", func(g *graph.Router, reg *core.Registry) error { return Fuse(g, reg) }},
	{"devirtualize", func(g *graph.Router, reg *core.Registry) error { return Devirtualize(g, reg, nil) }},
	{"xform", func(g *graph.Router, reg *core.Registry) error {
		pairs, err := ParsePatterns(iprouter.ComboPatterns, "combopatterns")
		if err != nil {
			return err
		}
		Xform(g, pairs)
		return nil
	}},
	{"undead", func(g *graph.Router, reg *core.Registry) error { Undead(g, reg); return nil }},
	{"flowcache", func(g *graph.Router, reg *core.Registry) error { return InstallFlowCache(g, reg) }},
}

// diffRun parses the configuration, optionally applies a pass, builds
// the router over fake devices eth0..eth<ndev-1> with the given burst,
// replays the trace into eth0, runs to idle (on `workers` scheduler
// workers), and returns each device's transmitted payload sequence.
func diffRun(t *testing.T, text string, ndev int,
	pass func(*graph.Router, *core.Registry) error,
	burst, workers int, ifs []iprouter.Interface, trace []*packet.Packet) map[string][][]byte {
	t.Helper()
	g, err := lang.ParseRouter(text, "difftest")
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	reg := elements.NewRegistry()
	if pass != nil {
		if err := pass(g, reg); err != nil {
			t.Fatalf("pass: %v\n%s", err, text)
		}
	}
	devs := map[string]*fakeDevice{}
	env := map[string]interface{}{}
	for i := 0; i < ndev; i++ {
		name := fmt.Sprintf("eth%d", i)
		d := &fakeDevice{name: name}
		devs[name] = d
		env["device:"+name] = d
	}
	rt, err := core.Build(g, reg, core.BuildOptions{Env: env, Burst: burst})
	if err != nil {
		t.Fatalf("build: %v\n%s", err, lang.Unparse(g))
	}
	if ifs != nil {
		warmARP(rt, ifs)
	}
	for _, p := range trace {
		devs["eth0"].rx = append(devs["eth0"].rx, p.Clone())
	}
	if workers > 1 {
		if _, err := rt.RunParallelUntilIdle(workers, 100000); err != nil {
			t.Fatalf("parallel run: %v", err)
		}
	} else {
		rt.RunUntilIdle(100000)
	}
	out := map[string][][]byte{}
	for name, d := range devs {
		seq := make([][]byte, 0, len(d.tx))
		for _, p := range d.tx {
			seq = append(seq, append([]byte(nil), p.Data()...))
		}
		out[name] = seq
	}
	return out
}

// diffCompare asserts two per-device output captures are identical:
// same devices, same packet count per device, same bytes in the same
// order.
func diffCompare(t *testing.T, label string, want, got map[string][][]byte) {
	t.Helper()
	for dev, ws := range want {
		gs := got[dev]
		if len(ws) != len(gs) {
			t.Errorf("%s: %s sent %d packets, want %d", label, dev, len(gs), len(ws))
			continue
		}
		for i := range ws {
			if !bytes.Equal(ws[i], gs[i]) {
				t.Errorf("%s: %s packet %d differs\nwant %x\ngot  %x", label, dev, i, ws[i], gs[i])
				break
			}
		}
	}
}

// diffModes are the runtime execution modes checked against the scalar
// single-worker baseline.
var diffModes = []struct {
	name    string
	burst   int
	workers int
}{
	{"batch8", 8, 1},
	{"batch32", 32, 1},
	{"parallel2", 0, 2},
	{"parallel2batch8", 8, 2},
}

// TestDifferentialRandomConfigs replays a deterministic trace through
// random configurations and asserts that every optimizer pass and every
// execution mode preserves per-port output sequences.
func TestDifferentialRandomConfigs(t *testing.T) {
	const nseeds = 12
	const npkts = 60
	for seed := int64(1); seed <= nseeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			text, sinks := randomPushConfig(seed)
			ndev := sinks + 1
			trace := diffTrace(seed, npkts)
			base := diffRun(t, text, ndev, nil, 0, 1, nil, trace)
			total := 0
			for _, seq := range base {
				total += len(seq)
			}
			if total == 0 {
				t.Fatalf("seed %d forwarded nothing:\n%s", seed, text)
			}
			for _, p := range diffPasses {
				got := diffRun(t, text, ndev, p.apply, 0, 1, nil, trace)
				diffCompare(t, p.name, base, got)
			}
			for _, m := range diffModes {
				got := diffRun(t, text, ndev, nil, m.burst, m.workers, nil, trace)
				diffCompare(t, m.name, base, got)
			}
		})
	}
}

// ipTrace builds transit traffic for the 2-interface IP router: UDP
// packets from interface 0's host to interface 1's host with varied
// ports and payloads.
func ipTrace(ifs []iprouter.Interface, n int) []*packet.Packet {
	r := rand.New(rand.NewSource(99))
	ps := make([]*packet.Packet, n)
	for i := range ps {
		payload := make([]byte, 14+r.Intn(64))
		payload[0], payload[1] = byte(i>>8), byte(i)
		ps[i] = packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
			ifs[0].HostAddr, ifs[1].HostAddr,
			uint16(1024+r.Intn(512)), uint16(1+r.Intn(512)), payload)
	}
	return ps
}

// TestDifferentialIPRouter replays transit traffic through the full
// 2-interface IP router and asserts every optimizer pass and execution
// mode preserves the transmitted packet sequences — this is where
// xform's combo substitutions and fastclassifier's compiled classifiers
// actually fire.
func TestDifferentialIPRouter(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	text := iprouter.Config(ifs)
	trace := ipTrace(ifs, 80)
	base := diffRun(t, text, 2, nil, 0, 1, ifs, trace)
	if len(base["eth1"]) == 0 {
		t.Fatal("baseline IP router forwarded nothing")
	}
	for _, p := range diffPasses {
		got := diffRun(t, text, 2, p.apply, 0, 1, ifs, trace)
		diffCompare(t, p.name, base, got)
	}
	// All passes together, then each execution mode over that fully
	// optimized router.
	got := diffRun(t, text, 2, applyAllPasses, 0, 1, ifs, trace)
	diffCompare(t, "all", base, got)
	for _, m := range diffModes {
		got := diffRun(t, text, 2, applyAllPasses, m.burst, m.workers, ifs, trace)
		diffCompare(t, "all+"+m.name, base, got)
	}
}

// applyAllPasses is the full optimizer chain (§8.2 "All"): xform combo
// substitutions, compiled classifiers, devirtualized transfers.
func applyAllPasses(g *graph.Router, reg *core.Registry) error {
	pairs, err := ParsePatterns(iprouter.ComboPatterns, "combopatterns")
	if err != nil {
		return err
	}
	Xform(g, pairs)
	if err := FastClassifier(g, reg); err != nil {
		return err
	}
	return Devirtualize(g, reg, nil)
}

// diffRunSwap replays the trace like diffRun, but starts on the
// unoptimized router, runs swapAfter task rounds mid-trace, hot-swaps to
// the pass-transformed variant of the same configuration (same devices,
// state transplanted), and drains to idle. Output must be packet-for-
// packet identical to a run that never swapped.
func diffRunSwap(t *testing.T, text string, ndev int,
	pass func(*graph.Router, *core.Registry) error,
	swapAfter, workers int, ifs []iprouter.Interface, trace []*packet.Packet) map[string][][]byte {
	t.Helper()
	g1, err := lang.ParseRouter(text, "difftest")
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	devs := map[string]*fakeDevice{}
	env := map[string]interface{}{}
	for i := 0; i < ndev; i++ {
		name := fmt.Sprintf("eth%d", i)
		d := &fakeDevice{name: name}
		devs[name] = d
		env["device:"+name] = d
	}
	rt1, err := core.Build(g1, elements.NewRegistry(), core.BuildOptions{Env: env})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if ifs != nil {
		warmARP(rt1, ifs)
	}
	for _, p := range trace {
		devs["eth0"].rx = append(devs["eth0"].rx, p.Clone())
	}
	s, err := core.NewScheduler(rt1, workers)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < swapAfter; i++ {
		s.RunRound()
	}
	// Build the optimized replacement over the same devices; transplant
	// (not re-warming) must carry the ARP tables and queue contents.
	g2, err := lang.ParseRouter(text, "difftest")
	if err != nil {
		t.Fatal(err)
	}
	reg2 := elements.NewRegistry()
	if pass != nil {
		if err := pass(g2, reg2); err != nil {
			t.Fatalf("pass: %v", err)
		}
	}
	rt2, err := core.Build(g2, reg2, core.BuildOptions{Env: env})
	if err != nil {
		t.Fatalf("build replacement: %v\n%s", err, lang.Unparse(g2))
	}
	if err := s.Hotswap(rt2); err != nil {
		t.Fatalf("hotswap: %v", err)
	}
	for rounds := 0; rounds < 100000 && s.RunRound(); rounds++ {
	}
	out := map[string][][]byte{}
	for name, d := range devs {
		seq := make([][]byte, 0, len(d.tx))
		for _, p := range d.tx {
			seq = append(seq, append([]byte(nil), p.Data()...))
		}
		out[name] = seq
	}
	return out
}

// TestDifferentialHotswapIPRouter: hot-swapping the IP router to its
// fully optimized variant mid-trace — on the scalar and on the parallel
// scheduler, at several swap points — must preserve the transmitted
// packet sequences exactly.
func TestDifferentialHotswapIPRouter(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	text := iprouter.Config(ifs)
	trace := ipTrace(ifs, 80)
	base := diffRun(t, text, 2, nil, 0, 1, ifs, trace)
	if len(base["eth1"]) == 0 {
		t.Fatal("baseline IP router forwarded nothing")
	}
	for _, workers := range []int{1, 2} {
		for _, swapAfter := range []int{1, 3, 10} {
			got := diffRunSwap(t, text, 2, applyAllPasses, swapAfter, workers, ifs, trace)
			diffCompare(t, fmt.Sprintf("hotswap-w%d-after%d", workers, swapAfter), base, got)
		}
	}
}

// TestDifferentialHotswapRandomConfigs: mid-trace hot-swap across the
// random configuration corpus, against each optimizer pass, scalar and
// parallel.
func TestDifferentialHotswapRandomConfigs(t *testing.T) {
	const npkts = 60
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			text, sinks := randomPushConfig(seed)
			ndev := sinks + 1
			trace := diffTrace(seed, npkts)
			base := diffRun(t, text, ndev, nil, 0, 1, nil, trace)
			for _, p := range diffPasses {
				for _, workers := range []int{1, 2} {
					got := diffRunSwap(t, text, ndev, p.apply, 2, workers, nil, trace)
					diffCompare(t, fmt.Sprintf("hotswap-%s-w%d", p.name, workers), base, got)
				}
			}
		})
	}
}
