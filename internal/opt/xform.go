package opt

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/lang"
)

// Xform is the pattern-replacement engine of click-xform (§6.2): it
// searches a configuration for occurrences of pattern subgraphs and
// replaces each with the corresponding replacement subgraph, repeating
// until no pattern matches. Patterns and replacements are written as
// compound element classes; a class named N pairs with the class named
// N_Replacement. Configuration arguments beginning with '$' are
// wildcards that bind the matched element's argument and may be used in
// replacement configurations.
//
// A pattern matches a subset of the configuration graph when the subset
// contains corresponding elements connected the same way, and
// connections into or out of the subset occur only at the places the
// pattern's input/output pseudoelements allow.
//
// Matching is subgraph isomorphism — NP-complete in general; like the
// tool, we implement Ullman's algorithm (refinement plus backtracking),
// which works well for the patterns and configurations seen in
// practice.

// PatternPair is one compiled pattern-replacement rule.
type PatternPair struct {
	Name        string
	Pattern     *graph.Router // with materialized input/output pseudoelements
	Replacement *graph.Router
}

// ParsePatterns compiles a pattern file: every elementclass N with a
// companion N_Replacement forms a pair, in source order.
func ParsePatterns(src, file string) ([]*PatternPair, error) {
	f, err := lang.Parse(src, file)
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	var order []string
	for _, st := range f.Stmts {
		if cd, ok := st.(*lang.ClassDefStmt); ok {
			names[cd.Name] = true
			order = append(order, cd.Name)
		}
	}
	var pairs []*PatternPair
	for _, n := range order {
		if strings.HasSuffix(n, "_Replacement") {
			continue
		}
		if !names[n+"_Replacement"] {
			continue
		}
		pat, err := lang.ElaborateClassBody(src, n, file)
		if err != nil {
			return nil, err
		}
		rep, err := lang.ElaborateClassBody(src, n+"_Replacement", file)
		if err != nil {
			return nil, err
		}
		if err := validatePattern(pat, n); err != nil {
			return nil, err
		}
		pairs = append(pairs, &PatternPair{Name: n, Pattern: pat, Replacement: rep})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("%s: no pattern/replacement pairs found", file)
	}
	return pairs, nil
}

func isPseudo(e *graph.Element) bool {
	return e.Class == lang.InputPseudoClass || e.Class == lang.OutputPseudoClass
}

func validatePattern(pat *graph.Router, name string) error {
	real := 0
	for _, i := range pat.LiveIndices() {
		if !isPseudo(pat.Element(i)) {
			real++
		}
	}
	if real == 0 {
		return fmt.Errorf("pattern %q has no concrete elements", name)
	}
	return nil
}

// bindings maps wildcard names ("$x") to matched argument text.
type bindings map[string]string

// matchConfig matches a pattern element's configuration against a graph
// element's, binding wildcards. Arguments must agree in count; a
// pattern argument "$name" binds (consistently across the whole match),
// anything else must match exactly after whitespace trimming.
func matchConfig(patCfg, gotCfg string, b bindings) (bindings, bool) {
	pargs := lang.SplitConfig(patCfg)
	gargs := lang.SplitConfig(gotCfg)
	if len(pargs) != len(gargs) {
		return nil, false
	}
	for i := range pargs {
		pa, ga := strings.TrimSpace(pargs[i]), strings.TrimSpace(gargs[i])
		if strings.HasPrefix(pa, "$") && !strings.ContainsAny(pa, " \t") {
			if prev, ok := b[pa]; ok {
				if prev != ga {
					return nil, false
				}
				continue
			}
			nb := bindings{}
			for k, v := range b {
				nb[k] = v
			}
			nb[pa] = ga
			b = nb
			continue
		}
		if pa != ga {
			return nil, false
		}
	}
	return b, true
}

// substBindings replaces bound wildcards in a replacement config.
func substBindings(cfg string, b bindings) string {
	args := lang.SplitConfig(cfg)
	for i, a := range args {
		a = strings.TrimSpace(a)
		if v, ok := b[a]; ok {
			args[i] = v
		}
	}
	return lang.JoinConfig(args)
}

// match is one found occurrence.
type match struct {
	pair *PatternPair
	// m maps pattern element index -> graph element index (concrete
	// elements only).
	m map[int]int
	b bindings
}

// findMatch searches g for an occurrence of the pattern, excluding
// graph elements in the tabu set (elements created by replacements are
// never re-matched by the same pair to guarantee termination).
func findMatch(g *graph.Router, pair *PatternPair, tabu map[string]bool) *match {
	pat := pair.Pattern
	var pelems []int
	for _, i := range pat.LiveIndices() {
		if !isPseudo(pat.Element(i)) {
			pelems = append(pelems, i)
		}
	}

	// Ullman candidate sets: class equality and config compatibility.
	cands := make([][]int, len(pelems))
	for pi, p := range pelems {
		pe := pat.Element(p)
		for _, gidx := range g.LiveIndices() {
			ge := g.Element(gidx)
			if ge.Class != pe.Class || tabu[pair.Name+"\x00"+ge.Name] {
				continue
			}
			if _, ok := matchConfig(pe.Config, ge.Config, bindings{}); !ok {
				continue
			}
			cands[pi] = append(cands[pi], gidx)
		}
		if len(cands[pi]) == 0 {
			return nil
		}
	}

	// Ullman refinement: a candidate g for pattern element p must have,
	// for every pattern edge p->p' (or p'<-p), a graph edge to some
	// candidate of p'. Iterate to fixpoint.
	patIdx := map[int]int{}
	for pi, p := range pelems {
		patIdx[p] = pi
	}
	inCand := make([]map[int]bool, len(pelems))
	rebuild := func() {
		for pi := range cands {
			inCand[pi] = map[int]bool{}
			for _, c := range cands[pi] {
				inCand[pi][c] = true
			}
		}
	}
	rebuild()
	for changed := true; changed; {
		changed = false
		for pi, p := range pelems {
			kept := cands[pi][:0]
		cand:
			for _, gc := range cands[pi] {
				for _, pc := range pat.ConnsFrom(p) {
					ti, ok := patIdx[pc.To]
					if !ok {
						continue // edge to pseudo
					}
					found := false
					for _, gcc := range g.OutputConns(gc, pc.FromPort) {
						if gcc.ToPort == pc.ToPort && inCand[ti][gcc.To] {
							found = true
							break
						}
					}
					if !found {
						continue cand
					}
				}
				for _, pc := range pat.ConnsTo(p) {
					fi, ok := patIdx[pc.From]
					if !ok {
						continue
					}
					found := false
					for _, gcc := range g.InputConns(gc, pc.ToPort) {
						if gcc.FromPort == pc.FromPort && inCand[fi][gcc.From] {
							found = true
							break
						}
					}
					if !found {
						continue cand
					}
				}
				kept = append(kept, gc)
			}
			if len(kept) != len(cands[pi]) {
				cands[pi] = kept
				changed = true
				if len(kept) == 0 {
					return nil
				}
			}
		}
		if changed {
			rebuild()
		}
	}

	// Backtracking search over refined candidates.
	assign := map[int]int{} // pattern elem -> graph elem
	used := map[int]bool{}  // graph elems already assigned
	var try func(k int, b bindings) *match
	try = func(k int, b bindings) *match {
		if k == len(pelems) {
			if mm := verifyMatch(g, pair, pelems, assign, b); mm != nil {
				return mm
			}
			return nil
		}
		p := pelems[k]
		pe := pat.Element(p)
		for _, gc := range cands[k] {
			if used[gc] {
				continue
			}
			nb, ok := matchConfig(pe.Config, g.Element(gc).Config, b)
			if !ok {
				continue
			}
			assign[p] = gc
			used[gc] = true
			if mm := try(k+1, nb); mm != nil {
				return mm
			}
			delete(assign, p)
			delete(used, gc)
		}
		return nil
	}
	return try(0, bindings{})
}

// verifyMatch checks the full structural conditions for an assignment:
// every pattern-internal connection exists in the graph, and every
// graph connection incident to a matched element is licensed — either
// it corresponds to a pattern-internal connection, or the pattern
// routes that port to an input/output pseudoelement.
func verifyMatch(g *graph.Router, pair *PatternPair, pelems []int, assign map[int]int, b bindings) *match {
	pat := pair.Pattern
	inSet := map[int]bool{}
	for _, p := range pelems {
		inSet[assign[p]] = true
	}

	// Pattern-internal edges must exist (refinement checked per-edge
	// reachability into candidate sets, not the final assignment).
	patConnSet := map[graph.Connection]bool{}
	borderIn := map[[2]int]bool{}  // (graph elem, port) allowed external input
	borderOut := map[[2]int]bool{} // (graph elem, port) allowed external output
	for _, pc := range pat.Conns {
		fromPseudo := isPseudo(pat.Element(pc.From))
		toPseudo := isPseudo(pat.Element(pc.To))
		switch {
		case fromPseudo && toPseudo:
			return nil // degenerate pattern
		case fromPseudo:
			borderIn[[2]int{assign[pc.To], pc.ToPort}] = true
		case toPseudo:
			borderOut[[2]int{assign[pc.From], pc.FromPort}] = true
		default:
			gc := graph.Connection{From: assign[pc.From], FromPort: pc.FromPort, To: assign[pc.To], ToPort: pc.ToPort}
			patConnSet[gc] = true
			found := false
			for _, c := range g.Conns {
				if c == gc {
					found = true
					break
				}
			}
			if !found {
				return nil
			}
		}
	}

	// License check for all graph connections touching the set.
	for _, c := range g.Conns {
		fromIn, toIn := inSet[c.From], inSet[c.To]
		if !fromIn && !toIn {
			continue
		}
		if fromIn && toIn {
			if patConnSet[c] {
				continue
			}
			// An internal connection the pattern doesn't mention is
			// allowed only if the pattern exposes both endpoints as
			// border ports (it then survives as an external path).
			if borderOut[[2]int{c.From, c.FromPort}] && borderIn[[2]int{c.To, c.ToPort}] {
				continue
			}
			return nil
		}
		if fromIn && !borderOut[[2]int{c.From, c.FromPort}] {
			return nil
		}
		if toIn && !borderIn[[2]int{c.To, c.ToPort}] {
			return nil
		}
	}
	m := &match{pair: pair, m: map[int]int{}, b: b}
	for _, p := range pelems {
		m.m[p] = assign[p]
	}
	return m
}

// applyMatch splices the replacement into g, returning the names of the
// created elements. A replacement element that shares its name with a
// pattern element inherits the matched graph element's name (and thus
// its identity for later tools — the ARP-elimination patterns use this
// to keep RouterLinks addressable by click-uncombine).
func applyMatch(g *graph.Router, mm *match) []string {
	pat, rep := mm.pair.Pattern, mm.pair.Replacement

	// Pattern element name -> matched graph element name, for name
	// inheritance.
	patNameOf := map[string]string{}
	for p, gi := range mm.m {
		patNameOf[pat.Element(p).Name] = g.Element(gi).Name
	}

	// Border ports of the pattern, mapped onto matched graph elements.
	patBorderIn := map[[2]int]int{}  // (graph elem, port) -> pseudo input port
	patBorderOut := map[[2]int]int{} // (graph elem, port) -> pseudo output port
	for _, pc := range pat.Conns {
		if isPseudo(pat.Element(pc.From)) {
			patBorderIn[[2]int{mm.m[pc.To], pc.ToPort}] = pc.FromPort
		}
		if isPseudo(pat.Element(pc.To)) {
			patBorderOut[[2]int{mm.m[pc.From], pc.FromPort}] = pc.ToPort
		}
	}

	inSet := map[int]bool{}
	for _, gi := range mm.m {
		inSet[gi] = true
	}

	// Snapshot external attachment points before removing anything.
	type attach struct {
		elem, port int // external endpoint
		pseudoPort int // pattern border port
	}
	var extIn, extOut []attach // external conns into/out of the set
	type bridge struct{ outPort, inPort int }
	var bridges []bridge // set-internal conns licensed as external paths
	for _, c := range g.Conns {
		fromIn, toIn := inSet[c.From], inSet[c.To]
		switch {
		case fromIn && toIn:
			op, okO := patBorderOut[[2]int{c.From, c.FromPort}]
			ip, okI := patBorderIn[[2]int{c.To, c.ToPort}]
			if okO && okI {
				bridges = append(bridges, bridge{op, ip})
			}
		case toIn:
			if ip, ok := patBorderIn[[2]int{c.To, c.ToPort}]; ok {
				extIn = append(extIn, attach{c.From, c.FromPort, ip})
			}
		case fromIn:
			if op, ok := patBorderOut[[2]int{c.From, c.FromPort}]; ok {
				extOut = append(extOut, attach{c.To, c.ToPort, op})
			}
		}
	}

	// Remove the matched elements first so inherited names are free.
	for gi := range inSet {
		g.RemoveElement(gi)
	}

	// Instantiate the replacement.
	type end struct{ elem, port int }
	repInputs := map[int][]end{}
	repOutputs := map[int][]end{}
	created := map[int]int{}
	var createdNames []string
	for _, ri := range rep.LiveIndices() {
		re := rep.Element(ri)
		if isPseudo(re) {
			continue
		}
		cfg := substBindings(re.Config, mm.b)
		name := ""
		if inherited, ok := patNameOf[re.Name]; ok {
			name = inherited
		}
		idx := g.MustAddElement(name, re.Class, cfg, "click-xform:"+mm.pair.Name)
		created[ri] = idx
		createdNames = append(createdNames, g.Element(idx).Name)
	}
	for _, rc := range rep.Conns {
		fromPseudo := isPseudo(rep.Element(rc.From))
		toPseudo := isPseudo(rep.Element(rc.To))
		switch {
		case fromPseudo:
			repInputs[rc.FromPort] = append(repInputs[rc.FromPort], end{created[rc.To], rc.ToPort})
		case toPseudo:
			repOutputs[rc.ToPort] = append(repOutputs[rc.ToPort], end{created[rc.From], rc.FromPort})
		default:
			g.Connect(created[rc.From], rc.FromPort, created[rc.To], rc.ToPort)
		}
	}

	// Reattach the outside world through the replacement's border.
	for _, a := range extIn {
		for _, t := range repInputs[a.pseudoPort] {
			g.Connect(a.elem, a.port, t.elem, t.port)
		}
	}
	for _, a := range extOut {
		for _, s := range repOutputs[a.pseudoPort] {
			g.Connect(s.elem, s.port, a.elem, a.port)
		}
	}
	for _, br := range bridges {
		for _, s := range repOutputs[br.outPort] {
			for _, t := range repInputs[br.inPort] {
				g.Connect(s.elem, s.port, t.elem, t.port)
			}
		}
	}
	return createdNames
}

// Xform applies pattern pairs to the configuration until none matches,
// returning the number of replacements performed. Elements created by a
// pair are excluded from re-matching by that same pair, which, with the
// fixpoint bound, guarantees termination.
func Xform(g *graph.Router, pairs []*PatternPair) int {
	applied := 0
	patternCounts := map[string]int{}
	tabu := map[string]bool{}
	const maxApplications = 10000
	for applied < maxApplications {
		var mm *match
		for _, pair := range pairs {
			if mm = findMatch(g, pair, tabu); mm != nil {
				break
			}
		}
		if mm == nil {
			break
		}
		for _, name := range applyMatch(g, mm) {
			tabu[mm.pair.Name+"\x00"+name] = true
		}
		patternCounts[mm.pair.Name]++
		applied++
	}
	attachReport(g, &PassReport{
		Pass:          "xform",
		Replacements:  applied,
		PatternCounts: patternCounts,
	})
	return applied
}
