package opt_test

import (
	"fmt"
	"strings"

	"repro/internal/elements"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/opt"
)

// Running click-xform's pattern replacement over the standard IP
// router: the Figure 5 fragment collapses into combination elements.
func ExampleXform() {
	g, err := lang.ParseRouter(iprouter.Config(iprouter.Interfaces(2)), "iprouter")
	if err != nil {
		panic(err)
	}
	pairs, err := opt.ParsePatterns(iprouter.ComboPatterns, "patterns")
	if err != nil {
		panic(err)
	}
	before := g.NumElements()
	n := opt.Xform(g, pairs)
	fmt.Printf("%d replacements: %d -> %d elements\n", n, before, g.NumElements())
	// Output:
	// 6 replacements: 44 -> 28 elements
}

// Devirtualizing the IP router: analogous elements on different
// interface paths share generated code (§6.1).
func ExampleDevirtualize() {
	g, err := lang.ParseRouter(iprouter.Config(iprouter.Interfaces(2)), "iprouter")
	if err != nil {
		panic(err)
	}
	reg := elements.NewRegistry()
	if err := opt.Devirtualize(g, reg, nil); err != nil {
		panic(err)
	}
	c0 := g.Element(g.FindElement("c0")).Class
	c1 := g.Element(g.FindElement("c1")).Class
	fmt.Println("classifiers share code:", c0 == c1)
	fmt.Println("generated class prefix:", strings.Split(c0, "_dv")[0])
	// Output:
	// classifiers share code: true
	// generated class prefix: Classifier
}

// click-check reports problems instead of panicking later.
func ExampleCheck() {
	g, _ := lang.ParseRouter("src :: InfiniteSource -> td :: ToDevice(eth0);", "bad")
	errs := opt.Check(g, elements.NewRegistry())
	fmt.Println(len(errs) > 0)
	// Output:
	// true
}
