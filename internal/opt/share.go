package opt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/graph"
)

// ShareFusedPrograms rewrites a fused configuration to use a
// process-wide hash-cons table: every generated FusedClassifier_N (or
// previously shared) class in g is interned, renamed to the table's
// content-addressed FusedShared_<hash> class, and registered in reg
// against the table's single shared Compiled matcher. Tenants whose
// rulesets compose to equal diagrams thereby share one read-only
// decision diagram instead of carrying per-namespace copies, and —
// because the shared names depend only on program content — the
// rewritten graph is identical regardless of which tenant was admitted
// first.
//
// It returns the sorted shared class names g uses, for the caller's
// reference counting (classifier.InternTable.Retain/Release). A graph
// with no fused programs returns nil, nil.
func ShareFusedPrograms(g *graph.Router, reg *core.Registry, table *classifier.InternTable) ([]string, error) {
	data, ok := g.Archive["fuse/programs"]
	if !ok {
		return nil, nil
	}
	progs, err := parseProgramsArchive(data)
	if err != nil {
		return nil, fmt.Errorf("opt: share: %v", err)
	}
	if len(progs) == 0 {
		return nil, nil
	}
	rename := map[string]string{}
	entry := map[string]*classifier.InternEntry{}
	for _, np := range progs {
		e := table.Intern(np.program)
		rename[np.name] = e.Name
		entry[e.Name] = e
	}

	// Rewrite element classes; only names actually instantiated count
	// as used (the archive may carry programs from superseded runs).
	used := map[string]bool{}
	for _, i := range g.LiveIndices() {
		el := g.Element(i)
		if nn, ok := rename[el.Class]; ok {
			el.Class = nn
			used[nn] = true
		}
	}
	names := make([]string, 0, len(used))
	for n := range used {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		registerFusedSpec(reg, n, entry[n].Compiled)
	}

	// Rewrite the archive so InstallFused round-trips on the shared
	// names: the programs member lists only the used canonical entries,
	// and the per-class generated sources follow the rename.
	var doc strings.Builder
	for _, n := range names {
		fmt.Fprintf(&doc, "class %s\n%send\n", n, entry[n].Program.String())
	}
	g.Archive["fuse/programs"] = []byte(doc.String())
	for old, nn := range rename {
		if src, ok := g.Archive["fuse/"+old+".go"]; ok {
			delete(g.Archive, "fuse/"+old+".go")
			if used[nn] {
				if _, have := g.Archive["fuse/"+nn+".go"]; !have {
					g.Archive["fuse/"+nn+".go"] = []byte(strings.ReplaceAll(string(src), old, nn))
				}
			}
		}
	}
	return names, nil
}
