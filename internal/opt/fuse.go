package opt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
)

// Fuse applies whole-path classifier fusion: it walks the push graph,
// collects maximal runs of consecutive classification-only elements
// (classifiers, filters, generated fast/fused classifiers, and the
// StaticSwitches between them), composes each run's decision trees into
// one program, canonicalizes the composition into a forwarding decision
// diagram with shared subtrees (classifier.SpecializeFDD), and replaces
// the run with a single generated FusedClassifier_N element whose
// output ports are the run's exit edges. N inspections of the packet
// become one multi-way dispatch, and tests an upstream stage already
// decided vanish from the downstream diagram.
//
// The pass follows the fastclassifier/devirtualize conventions: the
// generated class sources and a machine-readable program list ride in
// the configuration archive (package "fuse"), diagnostics go to
// reports/fuse, and the rewritten configuration survives an
// unparse/re-parse round trip. Fusing a StaticSwitch freezes its
// configured port into the diagram, exactly as devirtualization freezes
// a class: re-optimize after changing the switch.
//
// Like the other passes, Fuse analyzes against the supplied registry,
// which must already include archive-generated classes (_dvN, _fcN,
// FusedClassifier_N) — tool.ReadConfig arranges this via
// InstallArchive — so fusion composes with fastclassifier and
// devirtualize output in either order.
func Fuse(g *graph.Router, reg *core.Registry) error {
	report := &PassReport{Pass: "fuse"}

	// Stage 1: which live elements can be a fusion stage?
	fusable := map[int]bool{}
	for _, i := range g.LiveIndices() {
		if isFuseStage(g, i, reg) {
			fusable[i] = true
		}
	}

	// Stage 2: the absorption forest. Edge (u,p)->d is absorbable when
	// both ends are fusable and d's sole input is exactly that edge into
	// its port 0 — then every packet entering d came through u's port p
	// and the pair can be composed. Each element is absorbed at most
	// once; the sole-input requirement keeps absorption chains acyclic
	// from any root. Iteration order (live order, ascending ports) makes
	// the forest deterministic.
	absorb := map[[2]int]int{}
	absorbed := map[int]bool{}
	for _, u := range g.LiveIndices() {
		if !fusable[u] {
			continue
		}
		for p := 0; p < g.NOutputs(u); p++ {
			outs := g.OutputConns(u, p)
			if len(outs) != 1 {
				continue
			}
			d := outs[0].To
			if d == u || !fusable[d] || absorbed[d] || outs[0].ToPort != 0 {
				continue
			}
			if len(g.ConnsTo(d)) != 1 {
				continue
			}
			absorb[[2]int{u, p}] = d
			absorbed[d] = true
		}
	}

	// Roots: fusable, not themselves absorbed, absorbing at least one
	// element (a run of one is just the element itself — skip).
	var roots []int
	for _, u := range g.LiveIndices() {
		if !fusable[u] || absorbed[u] {
			continue
		}
		for p := 0; p < g.NOutputs(u); p++ {
			if _, ok := absorb[[2]int{u, p}]; ok {
				roots = append(roots, u)
				break
			}
		}
	}
	if len(roots) == 0 {
		attachReport(g, report)
		return nil
	}

	// Existing generated classes (from a previous fuse run riding in the
	// archive): reuse their names for equal programs and continue the
	// numbering after them.
	type genClass struct {
		name     string
		program  *classifier.Program
		existing bool
		used     bool
	}
	var gens []*genClass
	next := 0
	if data, ok := g.Archive["fuse/programs"]; ok {
		prev, err := parseProgramsArchive(data)
		if err != nil {
			return fmt.Errorf("opt: fuse: %v", err)
		}
		for _, np := range prev {
			gens = append(gens, &genClass{name: np.name, program: np.program, existing: true})
			var n int
			if _, err := fmt.Sscanf(np.name, "FusedClassifier_%d", &n); err == nil && n >= next {
				next = n + 1
			}
		}
	}

	// Stage 3: compose and rewrite each run.
	for _, root := range roots {
		var members []int
		var exits [][]graph.Connection

		// buildFused composes the run rooted at m bottom-up. Exit ports
		// are allocated globally across the run in DFS port order, so
		// the composed program's output numbering is deterministic. A
		// continuation's leaves are already final exit ports when its
		// Splice returns, which is exactly the contract Splice requires.
		var buildFused func(m int) (*classifier.Program, error)
		buildFused = func(m int) (*classifier.Program, error) {
			members = append(members, m)
			prog, err := fuseStageProgram(g, m, reg)
			if err != nil {
				return nil, fmt.Errorf("opt: fuse: element %q: %v", g.Element(m).Name, err)
			}
			cont := make([]*classifier.Program, prog.NOutputs)
			exitPort := make([]int, prog.NOutputs)
			for p := 0; p < prog.NOutputs; p++ {
				exitPort[p] = -1
				if d, ok := absorb[[2]int{m, p}]; ok {
					cp, err := buildFused(d)
					if err != nil {
						return nil, err
					}
					cont[p] = cp
					continue
				}
				conns := g.OutputConns(m, p)
				if len(conns) == 0 {
					continue // unconnected output: packets would drop
				}
				exitPort[p] = len(exits)
				exits = append(exits, conns)
			}
			return classifier.Splice(prog, cont, exitPort), nil
		}

		composed, err := buildFused(root)
		if err != nil {
			return err
		}
		composed.NOutputs = len(exits)
		composed.Optimize()
		report.TreeNodes += len(composed.Exprs)
		// The FDD rebuild enumerates fact contexts; budget it so
		// adversarial compositions degrade to the (correct, merely
		// larger) optimized tree instead of blowing up the tool. Long
		// rule chains need quadratically many visits (each pinned-field
		// context walks the remaining chain deciding tests), so the
		// budget is quadratic with a hard cap; visits are O(1) each, so
		// the cap bounds the pass at roughly a second per run.
		budget := 100_000 + len(composed.Exprs)*len(composed.Exprs)/4
		if budget > 100_000_000 {
			budget = 100_000_000
		}
		if composed.SpecializeFDD(budget) {
			composed.Optimize()
		}
		report.DiagramNodes += len(composed.Exprs)
		if err := composed.Validate(); err != nil {
			return fmt.Errorf("opt: fuse: composed program for %q invalid: %v", g.Element(root).Name, err)
		}

		// Runs with identical diagrams share a generated class.
		var gen *genClass
		for _, prev := range gens {
			if prev.program.Equal(composed) {
				gen = prev
				break
			}
		}
		if gen == nil {
			gen = &genClass{name: fmt.Sprintf("FusedClassifier_%d", next), program: composed}
			next++
			gens = append(gens, gen)
		}
		gen.used = true
		if report.Classes == nil {
			report.Classes = map[string][]string{}
		}

		// Rewrite the graph: the root becomes the fused element (keeping
		// its name and, as documentation, its original configuration);
		// the other members disappear; the run's exit edges reattach to
		// the root's new output ports. Exit connections never target a
		// non-root member (members have a single, absorbed input), so
		// removal is safe.
		for _, m := range members {
			for _, c := range g.ConnsFrom(m) {
				g.Disconnect(c.From, c.FromPort, c.To, c.ToPort)
			}
			report.Classes[gen.name] = append(report.Classes[gen.name], g.Element(m).Name)
		}
		for _, m := range members[1:] {
			g.RemoveElement(m)
		}
		g.Element(root).Class = gen.name
		for xi, conns := range exits {
			for _, c := range conns {
				g.Connect(root, xi, c.To, c.ToPort)
			}
		}
		report.RunsFused++
		report.ElementsFused += len(members)
	}

	// Stage 4: archive members, dynamic specs, report.
	var programsDoc strings.Builder
	newSources := map[string][]byte{}
	generated := 0
	for _, gen := range gens {
		if !gen.existing && !gen.used {
			continue
		}
		fmt.Fprintf(&programsDoc, "class %s\n%send\n", gen.name, gen.program.String())
		if gen.used {
			registerFusedSpec(reg, gen.name, classifier.Compile(gen.program))
		}
		if !gen.existing {
			newSources["fuse/"+gen.name+".go"] = []byte(classifier.GenerateGoSourcePkg("fuse", gen.name, gen.program))
			generated++
		}
	}
	names := make([]string, 0, len(newSources))
	for n := range newSources {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g.Archive[n] = newSources[n]
	}
	g.Archive["fuse/programs"] = []byte(programsDoc.String())
	g.Require("fuse")
	report.ClassesGenerated = generated
	attachReport(g, report)
	return nil
}

// stripDevirt removes a click-devirtualize "_dvN" suffix, exposing the
// base class a devirtualized element specializes.
func stripDevirt(class string) string {
	i := strings.LastIndex(class, "_dv")
	if i < 0 || i+3 >= len(class) {
		return class
	}
	for _, c := range class[i+3:] {
		if c < '0' || c > '9' {
			return class
		}
	}
	return class[:i]
}

// isFuseStage reports whether element i is classification-only: its
// entire effect is routing the unmodified packet to an output chosen by
// header inspection, expressible as a decision-tree program. That is
// the generic classifiers (and their devirtualized variants), any
// generated class whose instances expose a decision tree (fast and
// fused classifiers), and StaticSwitch, whose constant choice is a
// degenerate program.
func isFuseStage(g *graph.Router, i int, reg *core.Registry) bool {
	class := stripDevirt(g.Element(i).Class)
	if class == "StaticSwitch" || classifierClasses[class] {
		return true
	}
	spec, ok := reg.Lookup(g.Element(i).Class)
	if !ok || spec.Make == nil {
		return false
	}
	ph, ok := spec.Make().(interface{ Program() *classifier.Program })
	return ok && ph.Program() != nil
}

// fuseStageProgram returns a private copy of element i's decision-tree
// program, with leaf ports in the element's own output space.
func fuseStageProgram(g *graph.Router, i int, reg *core.Registry) (*classifier.Program, error) {
	e := g.Element(i)
	if stripDevirt(e.Class) == "StaticSwitch" {
		k, err := strconv.Atoi(strings.TrimSpace(e.Config))
		if err != nil {
			return nil, fmt.Errorf("bad StaticSwitch port %q", e.Config)
		}
		pr := &classifier.Program{Entry: classifier.Drop, NOutputs: g.NOutputs(i)}
		if k >= 0 && k < pr.NOutputs {
			pr.Entry = classifier.LeafPort(k)
		}
		return pr, nil
	}
	if classifierClasses[stripDevirt(e.Class)] {
		return extractProgram(e.Class, e.Config, reg)
	}
	if spec, ok := reg.Lookup(e.Class); ok && spec.Make != nil {
		if ph, ok := spec.Make().(interface{ Program() *classifier.Program }); ok {
			if pr := ph.Program(); pr != nil {
				return pr.Clone(), nil
			}
		}
	}
	return nil, fmt.Errorf("class %q does not expose a decision tree", e.Class)
}

// registerFusedSpec registers the dynamic spec for a generated fused
// class. WorkCycles matches the fastclassifier calibration: the fused
// matcher is byte-for-byte FastClassifier's, so Figure 8/9 calibration
// is unchanged and the measured win comes from removed per-stage
// dispatch and the smaller diagram.
func registerFusedSpec(reg *core.Registry, name string, comp *classifier.Compiled) {
	nout := comp.Program().NOutputs
	reg.RegisterDynamic(&core.Spec{
		Name:       name,
		Processing: "h/h",
		Ports: func(string) (graph.PortRange, graph.PortRange) {
			return graph.Exactly(1), graph.Exactly(nout)
		},
		Make:       elements.NewFusedClassifier(comp),
		WorkCycles: fastClassWorkCycles,
	})
}

// InstallFused re-registers generated fused-classifier specs from an
// archive, the driver-side analogue of compiling and linking the
// attached source. It must run before InstallDevirtualized (a
// devirtualized classmap may reference FusedClassifier_N classes).
func InstallFused(g *graph.Router, reg *core.Registry) error {
	data, ok := g.Archive["fuse/programs"]
	if !ok {
		return nil
	}
	progs, err := parseProgramsArchive(data)
	if err != nil {
		return fmt.Errorf("opt: fuse: %v", err)
	}
	for _, np := range progs {
		registerFusedSpec(reg, np.name, classifier.Compile(np.program))
	}
	return nil
}

// namedProgram is one entry of a "programs" archive member.
type namedProgram struct {
	name    string
	program *classifier.Program
}

// parseProgramsArchive parses the "class NAME\n<program>end\n" list
// format shared by the fastclassifier and fuse archive members.
func parseProgramsArchive(data []byte) ([]namedProgram, error) {
	var out []namedProgram
	text := string(data)
	for len(text) > 0 {
		text = strings.TrimLeft(text, "\n")
		if text == "" {
			break
		}
		if !strings.HasPrefix(text, "class ") {
			return nil, fmt.Errorf("bad programs archive member")
		}
		nl := strings.IndexByte(text, '\n')
		name := strings.TrimSpace(text[len("class "):nl])
		text = text[nl+1:]
		end := strings.Index(text, "end\n")
		if end < 0 {
			end = len(text)
		}
		progText := text[:end]
		if end+4 <= len(text) {
			text = text[end+4:]
		} else {
			text = ""
		}
		prog, err := classifier.ParseProgram(progText)
		if err != nil {
			return nil, fmt.Errorf("program %q: %v", name, err)
		}
		out = append(out, namedProgram{name, prog})
	}
	return out, nil
}
