package opt

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/iprouter"
	"repro/internal/lang"
)

// fakeStats builds a stats report with the given per-element input
// packet counts.
func fakeStats(in map[string]int64) []core.ElementStatsReport {
	var reps []core.ElementStatsReport
	for name, n := range in {
		reps = append(reps, core.ElementStatsReport{Name: name, PacketsIn: n})
	}
	return reps
}

func TestAdaptiveIdleRouterDecidesNothing(t *testing.T) {
	g, err := lang.ParseRouter(iprouter.Config(iprouter.Interfaces(2)), "iprouter")
	if err != nil {
		t.Fatal(err)
	}
	a := NewAdaptive(AdaptiveOptions{MinPackets: 100, ColdSamples: 2})
	for i := 0; i < 5; i++ {
		if d := a.Observe(g, fakeStats(nil)); d.Any() {
			t.Fatalf("idle router produced decision %+v", d)
		}
	}
}

func TestAdaptiveHotClassifierTriggersFastClassifier(t *testing.T) {
	g, err := lang.ParseRouter(iprouter.Config(iprouter.Interfaces(2)), "iprouter")
	if err != nil {
		t.Fatal(err)
	}
	// Find a Classifier element name in the configuration.
	var cls string
	for _, i := range g.LiveIndices() {
		if g.Element(i).Class == "Classifier" {
			cls = g.Element(i).Name
			break
		}
	}
	if cls == "" {
		t.Fatal("no Classifier in the IP router config")
	}
	a := NewAdaptive(AdaptiveOptions{MinPackets: 100, ColdSamples: 2})
	d := a.Observe(g, fakeStats(map[string]int64{cls: 500}))
	if !d.FastClassifier {
		t.Errorf("hot classifier (%s, 500 pkts) did not trigger fastclassifier: %+v", cls, d)
	}
	if !d.Devirtualize {
		t.Errorf("500 packets did not justify devirtualize: %+v", d)
	}
	// Below threshold: neither.
	b := NewAdaptive(AdaptiveOptions{MinPackets: 1000, ColdSamples: 2})
	if d := b.Observe(g, fakeStats(map[string]int64{cls: 500})); d.FastClassifier || d.Devirtualize {
		t.Errorf("cold classifier triggered passes: %+v", d)
	}
}

func TestAdaptiveColdSwitchBranchTriggersUndead(t *testing.T) {
	text := `
src :: InfiniteSource(0) -> sw :: StaticSwitch(0);
sw [0] -> c0 :: Counter -> q0 :: Queue -> i0 :: Idle;
sw [1] -> c1 :: Counter -> q1 :: Queue -> i1 :: Idle;`
	g, err := lang.ParseRouter(text, "adaptive_test")
	if err != nil {
		t.Fatal(err)
	}
	a := NewAdaptive(AdaptiveOptions{MinPackets: 100, ColdSamples: 3})
	// Branch 1 never sees a packet while the switch forwards; after
	// ColdSamples observations undead fires — not before.
	for round := 1; round <= 3; round++ {
		d := a.Observe(g, fakeStats(map[string]int64{
			"sw": int64(200 * round), "c0": int64(200 * round), "c1": 0,
		}))
		if round < 3 && d.Undead {
			t.Errorf("undead fired after only %d samples", round)
		}
		if round == 3 {
			if !d.Undead {
				t.Fatalf("undead did not fire after %d cold samples: %+v", round, d)
			}
			if len(d.Reasons) == 0 || !strings.Contains(strings.Join(d.Reasons, ";"), "undead") {
				t.Errorf("undead reason missing: %v", d.Reasons)
			}
		}
	}
	// A branch that receives traffic resets its cold streak.
	b := NewAdaptive(AdaptiveOptions{MinPackets: 100, ColdSamples: 2})
	b.Observe(g, fakeStats(map[string]int64{"sw": 100, "c0": 50, "c1": 50}))
	b.Observe(g, fakeStats(map[string]int64{"sw": 200, "c0": 100, "c1": 100}))
	if d := b.Observe(g, fakeStats(map[string]int64{"sw": 300, "c0": 150, "c1": 150})); d.Undead {
		t.Errorf("branch with traffic marked dead: %+v", d)
	}
}

func TestReoptimizeAppliesDecisionAndReports(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	g, err := lang.ParseRouter(iprouter.Config(ifs), "iprouter")
	if err != nil {
		t.Fatal(err)
	}
	// Build the live router, as the controller would see it.
	rt, err := core.Build(g, elements.NewRegistry(), core.BuildOptions{Env: fakeEnv(2)})
	if err != nil {
		t.Fatal(err)
	}
	d := Decision{FastClassifier: true, Devirtualize: true,
		Reasons: []string{"fastclassifier: test", "devirtualize: test"}}
	ng, reg, err := Reoptimize(rt.Graph, d)
	if err != nil {
		t.Fatal(err)
	}
	// The re-optimized graph builds and runs.
	if _, err := core.Build(ng, reg, core.BuildOptions{Env: fakeEnv(2)}); err != nil {
		t.Fatalf("re-optimized config does not build: %v", err)
	}
	// Passes actually fired: generated classes appear.
	hasFC, hasDV := false, false
	for _, i := range ng.LiveIndices() {
		c := ng.Element(i).Class
		if strings.HasPrefix(c, "FastClassifier@@") {
			hasFC = true
		}
		if strings.Contains(c, "_dv") {
			hasDV = true
		}
	}
	if !hasFC || !hasDV {
		t.Errorf("generated classes missing: fastclassifier=%v devirtualize=%v", hasFC, hasDV)
	}
	// The adaptive report landed under reports/adaptive with the
	// decision recorded.
	if _, ok := ng.Archive["reports/adaptive"]; !ok {
		t.Fatal("reports/adaptive missing from archive")
	}
	reps, err := Reports(ng)
	if err != nil {
		t.Fatal(err)
	}
	var adaptive *PassReport
	for _, r := range reps {
		if r.Pass == "adaptive" {
			adaptive = r
		}
	}
	if adaptive == nil {
		t.Fatal("no adaptive pass report")
	}
	if len(adaptive.PassesApplied) != 2 || adaptive.PassesApplied[0] != "fastclassifier" ||
		adaptive.PassesApplied[1] != "devirtualize" {
		t.Errorf("PassesApplied = %v", adaptive.PassesApplied)
	}
	if len(adaptive.Reasons) != 2 {
		t.Errorf("Reasons = %v", adaptive.Reasons)
	}
}

// TestReoptimizeIsIdempotentOnOptimizedConfig: running Reoptimize over
// an already-optimized live graph must not fail or stack duplicate
// generated classes (fastclassifier skips generated classes,
// devirtualize skips Devirtualized specs).
func TestReoptimizeTwiceBuilds(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	g, err := lang.ParseRouter(iprouter.Config(ifs), "iprouter")
	if err != nil {
		t.Fatal(err)
	}
	d := Decision{FastClassifier: true, Devirtualize: true}
	ng, reg, err := Reoptimize(g, d)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.Build(ng, reg, core.BuildOptions{Env: fakeEnv(2)})
	if err != nil {
		t.Fatal(err)
	}
	ng2, reg2, err := Reoptimize(rt.Graph, d)
	if err != nil {
		t.Fatalf("second Reoptimize failed: %v", err)
	}
	if _, err := core.Build(ng2, reg2, core.BuildOptions{Env: fakeEnv(2)}); err != nil {
		t.Fatalf("twice-optimized config does not build: %v", err)
	}
}

// fakeEnv builds a device environment for eth0..eth<n-1>.
func fakeEnv(n int) map[string]interface{} {
	env := map[string]interface{}{}
	for i := 0; i < n; i++ {
		name := fakeDeviceName(i)
		env["device:"+name] = &fakeDevice{name: name}
	}
	return env
}

func fakeDeviceName(i int) string { return "eth" + string(rune('0'+i)) }
