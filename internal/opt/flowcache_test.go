package opt

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/packet"
)

// flowCachePass is the install pass in diffPasses shape.
func flowCachePass(g *graph.Router, reg *core.Registry) error {
	return InstallFlowCache(g, reg)
}

// flowTrace builds n transit packets cycling over `flows` distinct
// 5-tuples: interface 0's host sending UDP to the other interfaces'
// hosts, one fixed payload size per flow so every packet after a flow's
// first is fast-path eligible.
func flowTrace(ifs []iprouter.Interface, flows, n int) []*packet.Packet {
	out := make([]*packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		f := i % flows
		dst := ifs[1+f%(len(ifs)-1)]
		out = append(out, packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
			ifs[0].HostAddr, dst.HostAddr,
			uint16(2000+f), uint16(7000+f), make([]byte, 18+2*(f%8))))
	}
	return out
}

// zipfTrace draws the flow of each packet from a Zipf(1.1) distribution
// over `flows` flows — the skewed traffic the flow fast path is built
// for (a few elephants, a long tail of mice).
func zipfTrace(ifs []iprouter.Interface, seed int64, flows, n int) []*packet.Packet {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.1, 1, uint64(flows-1))
	out := make([]*packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		f := int(z.Uint64())
		dst := ifs[1+f%(len(ifs)-1)]
		out = append(out, packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
			ifs[0].HostAddr, dst.HostAddr,
			uint16(2000+f), uint16(7000+f), make([]byte, 18+2*(f%8))))
	}
	return out
}

// flowRig is a built router plus its devices, with a handle on the
// FlowCache element when one is installed.
type flowRig struct {
	rt   *core.Router
	devs map[string]*fakeDevice
	fc   *elements.FlowCache
}

func buildFlowRig(t *testing.T, text string, ndev int,
	pass func(*graph.Router, *core.Registry) error, ifs []iprouter.Interface) *flowRig {
	t.Helper()
	g, err := lang.ParseRouter(text, "flowtest")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	reg := elements.NewRegistry()
	if pass != nil {
		if err := pass(g, reg); err != nil {
			t.Fatalf("pass: %v", err)
		}
	}
	devs := map[string]*fakeDevice{}
	env := map[string]interface{}{}
	for i := 0; i < ndev; i++ {
		name := fmt.Sprintf("eth%d", i)
		d := &fakeDevice{name: name}
		devs[name] = d
		env["device:"+name] = d
	}
	rt, err := core.Build(g, reg, core.BuildOptions{Env: env})
	if err != nil {
		t.Fatalf("build: %v\n%s", err, lang.Unparse(g))
	}
	if ifs != nil {
		warmARP(rt, ifs)
	}
	r := &flowRig{rt: rt, devs: devs}
	for _, e := range rt.Elements() {
		if fc, ok := e.(*elements.FlowCache); ok {
			r.fc = fc
		}
	}
	return r
}

// send replays a trace into eth0 and runs the router to idle.
func (r *flowRig) send(trace []*packet.Packet) {
	for _, p := range trace {
		r.devs["eth0"].rx = append(r.devs["eth0"].rx, p.Clone())
	}
	r.rt.RunUntilIdle(100000)
}

// write drives a write handler, failing the test on error.
func (r *flowRig) write(t *testing.T, path, value string) {
	t.Helper()
	if err := r.rt.WriteHandler(path, value); err != nil {
		t.Fatalf("write %s %q: %v", path, value, err)
	}
}

// tx snapshots the per-device transmitted byte sequences.
func (r *flowRig) tx() map[string][][]byte {
	out := map[string][][]byte{}
	for name, d := range r.devs {
		seq := make([][]byte, 0, len(d.tx))
		for _, p := range d.tx {
			seq = append(seq, append([]byte(nil), p.Data()...))
		}
		out[name] = seq
	}
	return out
}

// TestFlowCacheInstallPass checks the graph surgery: one FlowCache
// element, one ingress port per device feed, one tap per queue-entering
// edge, a pass report with the counts, and idempotency.
func TestFlowCacheInstallPass(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	g, err := lang.ParseRouter(iprouter.Config(ifs), "iprouter")
	if err != nil {
		t.Fatal(err)
	}
	reg := elements.NewRegistry()
	if err := InstallFlowCache(g, reg); err != nil {
		t.Fatal(err)
	}
	count := 0
	var cfg string
	for _, i := range g.LiveIndices() {
		if g.Element(i).Class == "FlowCache" {
			count++
			cfg = g.Element(i).Config
		}
	}
	if count != 1 {
		t.Fatalf("installed %d FlowCache elements, want 1", count)
	}
	// 2 PollDevice feeds; each out queue has two inbound edges (ARPQuerier
	// and ARPResponder), so 4 taps.
	if cfg != "2, 4" {
		t.Errorf("FlowCache config = %q, want \"2, 4\"", cfg)
	}
	reps, err := Reports(g)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range reps {
		if r.Pass == "flowcache" {
			found = true
			if r.FlowIngresses != 2 || r.FlowTaps != 4 {
				t.Errorf("report counts %d/%d, want 2/4", r.FlowIngresses, r.FlowTaps)
			}
		}
	}
	if !found {
		t.Error("no flowcache pass report in archive")
	}
	// Idempotent: a second run must not stack a second cache.
	if err := InstallFlowCache(g, reg); err != nil {
		t.Fatal(err)
	}
	count = 0
	for _, i := range g.LiveIndices() {
		if g.Element(i).Class == "FlowCache" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("re-install stacked caches: %d FlowCache elements", count)
	}
}

// TestFlowCacheHitsAndEquality: repeated-flow traffic through the
// cached IP router must be forwarded byte-for-byte like the uncached
// router, with the bulk of packets taken by the fast path.
func TestFlowCacheHitsAndEquality(t *testing.T) {
	ifs := iprouter.Interfaces(3)
	text := iprouter.Config(ifs)
	trace := flowTrace(ifs, 8, 240)
	base := diffRun(t, text, 3, nil, 0, 1, ifs, trace)
	if len(base["eth1"]) == 0 || len(base["eth2"]) == 0 {
		t.Fatal("baseline forwarded nothing")
	}

	r := buildFlowRig(t, text, 3, flowCachePass, ifs)
	if r.fc == nil {
		t.Fatal("no FlowCache element in the installed router")
	}
	r.send(trace)
	diffCompare(t, "flowcache", base, r.tx())

	if r.fc.Entries() != 8 {
		t.Errorf("cache holds %d entries, want 8", r.fc.Entries())
	}
	// 8 flows, one recording miss each: 232 of 240 packets should hit.
	if r.fc.Hits < 216 {
		t.Errorf("only %d/240 hits; fast path not engaging", r.fc.Hits)
	}
	if r.fc.Uncacheable != 0 {
		t.Errorf("%d flows marked uncacheable on a pure transit trace", r.fc.Uncacheable)
	}
	// Read handlers see the same counters.
	hs, err := r.rt.ReadHandler("flow_cache.hits")
	if err != nil {
		t.Fatalf("flow_cache.hits: %v", err)
	}
	if n, _ := strconv.ParseInt(hs, 10, 64); n != r.fc.Hits {
		t.Errorf("hits handler reads %q, counter is %d", hs, r.fc.Hits)
	}
}

// TestDifferentialFlowCacheModes: cached-vs-uncached equality must hold
// with real cache hits in every execution mode (batching, parallel
// scheduling) and stacked on the full optimizer chain.
func TestDifferentialFlowCacheModes(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	text := iprouter.Config(ifs)
	trace := flowTrace(ifs, 6, 120)
	base := diffRun(t, text, 2, nil, 0, 1, ifs, trace)
	if len(base["eth1"]) == 0 {
		t.Fatal("baseline forwarded nothing")
	}
	allPlusFlow := func(g *graph.Router, reg *core.Registry) error {
		if err := applyAllPasses(g, reg); err != nil {
			return err
		}
		return InstallFlowCache(g, reg)
	}
	got := diffRun(t, text, 2, flowCachePass, 0, 1, ifs, trace)
	diffCompare(t, "flowcache-scalar", base, got)
	got = diffRun(t, text, 2, allPlusFlow, 0, 1, ifs, trace)
	diffCompare(t, "flowcache-allpasses", base, got)
	for _, m := range diffModes {
		got := diffRun(t, text, 2, flowCachePass, m.burst, m.workers, ifs, trace)
		diffCompare(t, "flowcache-"+m.name, base, got)
		got = diffRun(t, text, 2, allPlusFlow, m.burst, m.workers, ifs, trace)
		diffCompare(t, "flowcache-allpasses-"+m.name, base, got)
	}
}

// TestFlowCacheGuardInvalidation drives the same traffic and the same
// runtime mutations — route add/remove, ARP table update, queue
// reconfiguration — through a cached and an uncached router. Each
// mutation must take effect on the very next packet of an already-warm
// flow (no stale fast path), which the byte-for-byte comparison
// enforces and the Invalidated counter attributes to the guards.
func TestFlowCacheGuardInvalidation(t *testing.T) {
	ifs := iprouter.Interfaces(3)
	text := iprouter.Config(ifs)
	burst := func() []*packet.Packet {
		var ps []*packet.Packet
		for i := 0; i < 6; i++ {
			ps = append(ps, packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
				ifs[0].HostAddr, ifs[1].HostAddr, 2000, 7000, make([]byte, 20)))
		}
		return ps
	}

	cached := buildFlowRig(t, text, 3, flowCachePass, ifs)
	plain := buildFlowRig(t, text, 3, nil, ifs)
	if cached.fc == nil {
		t.Fatal("no FlowCache element")
	}
	step := func(label string) {
		t.Helper()
		diffCompare(t, label, plain.tx(), cached.tx())
	}

	// Warm the flow: host0 -> host1 leaves on eth1.
	cached.send(burst())
	plain.send(burst())
	step("warm")
	if cached.fc.Hits < 4 {
		t.Fatalf("flow did not warm: %d hits", cached.fc.Hits)
	}
	if n := len(cached.devs["eth1"].tx); n != 6 {
		t.Fatalf("warm flow forwarded %d packets out eth1, want 6", n)
	}

	// A more-specific route moves the flow to interface 2. The cached
	// router must not keep forwarding out eth1 on its stale entry.
	cached.write(t, "rt.add", "10.0.1.2/32 2")
	plain.write(t, "rt.add", "10.0.1.2/32 2")
	cached.send(burst())
	plain.send(burst())
	step("route-add")
	if n := len(cached.devs["eth2"].tx); n != 6 {
		t.Fatalf("redirected flow sent %d packets out eth2, want 6", n)
	}

	// Removing the route moves it back.
	cached.write(t, "rt.remove", "10.0.1.2/32")
	plain.write(t, "rt.remove", "10.0.1.2/32")
	cached.send(burst())
	plain.send(burst())
	step("route-remove")
	if n := len(cached.devs["eth1"].tx); n != 12 {
		t.Fatalf("restored flow: eth1 has %d packets, want 12", n)
	}

	// An ARP update rewrites the next-hop MAC; warm entries recorded the
	// old Ethernet header and must re-record.
	const newMAC = "02:aa:bb:cc:dd:ee"
	cached.write(t, "arpq1.insert", "10.0.1.2 "+newMAC)
	plain.write(t, "arpq1.insert", "10.0.1.2 "+newMAC)
	cached.send(burst())
	plain.send(burst())
	step("arp-update")
	etx := cached.devs["eth1"].tx
	last := etx[len(etx)-1].Data()
	want := [6]byte{0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee}
	for i := 0; i < 6; i++ {
		if last[i] != want[i] {
			t.Fatalf("egress dst MAC after ARP update = % x, want % x", last[:6], want[:])
		}
	}

	// A queue reconfiguration bumps the config guard.
	cached.write(t, "out1.capacity", "600")
	plain.write(t, "out1.capacity", "600")
	cached.send(burst())
	plain.send(burst())
	step("queue-config")

	// Each of the four mutations should have invalidated the warm entry
	// exactly once on its next arrival.
	if cached.fc.Invalidated < 4 {
		t.Errorf("Invalidated = %d after 4 guarded mutations, want >= 4", cached.fc.Invalidated)
	}
	if cached.fc.Hits < 20 {
		t.Errorf("fast path stopped engaging: %d hits total", cached.fc.Hits)
	}
}

// TestFlowCacheHotswapZipf hot-swaps a cached router to a fresh cached
// build mid-trace under Zipf-distributed flow traffic. The transplanted
// entries are demoted (SwapDemoted accounts for them), every flow
// re-verifies with one slow-path traversal, and the transmitted
// sequences must equal a run that never swapped — zero loss, zero
// divergence.
func TestFlowCacheHotswapZipf(t *testing.T) {
	ifs := iprouter.Interfaces(3)
	text := iprouter.Config(ifs)
	trace := zipfTrace(ifs, 7, 64, 600)
	base := diffRun(t, text, 3, nil, 0, 1, ifs, trace)
	total := 0
	for _, seq := range base {
		total += len(seq)
	}
	if total == 0 {
		t.Fatal("baseline forwarded nothing")
	}
	for _, workers := range []int{1, 2} {
		for _, swapAfter := range []int{3, 10} {
			label := fmt.Sprintf("w%d-after%d", workers, swapAfter)
			devs := map[string]*fakeDevice{}
			env := map[string]interface{}{}
			for i := 0; i < 3; i++ {
				name := fmt.Sprintf("eth%d", i)
				d := &fakeDevice{name: name}
				devs[name] = d
				env["device:"+name] = d
			}
			build := func() *core.Router {
				g, err := lang.ParseRouter(text, "flowswap")
				if err != nil {
					t.Fatal(err)
				}
				reg := elements.NewRegistry()
				if err := InstallFlowCache(g, reg); err != nil {
					t.Fatal(err)
				}
				rt, err := core.Build(g, reg, core.BuildOptions{Env: env})
				if err != nil {
					t.Fatalf("%s: build: %v", label, err)
				}
				return rt
			}
			rt1 := build()
			warmARP(rt1, ifs)
			for _, p := range trace {
				devs["eth0"].rx = append(devs["eth0"].rx, p.Clone())
			}
			s, err := core.NewScheduler(rt1, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < swapAfter; i++ {
				s.RunRound()
			}
			rt2 := build() // ARP state transplants; do not re-warm
			if err := s.Hotswap(rt2); err != nil {
				t.Fatalf("%s: hotswap: %v", label, err)
			}
			for rounds := 0; rounds < 100000 && s.RunRound(); rounds++ {
			}
			got := map[string][][]byte{}
			for name, d := range devs {
				seq := make([][]byte, 0, len(d.tx))
				for _, p := range d.tx {
					seq = append(seq, append([]byte(nil), p.Data()...))
				}
				got[name] = seq
			}
			diffCompare(t, label, base, got)
			fc2, _ := rt2.Find("flow_cache").(*elements.FlowCache)
			if fc2 == nil {
				t.Fatalf("%s: replacement router lost its FlowCache", label)
			}
			if swapAfter >= 10 && fc2.SwapDemoted == 0 {
				t.Errorf("%s: no entries transplanted across the swap", label)
			}
			if fc2.Hits == 0 {
				t.Errorf("%s: fast path never re-engaged after the swap", label)
			}
		}
	}
}

// TestAdaptiveFuseSurvives is the regression for the controller's fuse
// blindness: an adapt cycle over an already-fused router must keep the
// generated decision-diagram classes (InstallArchive re-registers
// them), and a hot classification run must make the controller decide
// to fuse in the first place.
func TestAdaptiveFuseSurvives(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	text := fuseChainConfig(ifs, []string{"allow udp", "deny all"})
	trace := flowTrace(ifs, 4, 40)

	// Decision: a hot IPFilter -> IPClassifier run triggers fuse.
	g, err := lang.ParseRouter(text, "t")
	if err != nil {
		t.Fatal(err)
	}
	a := NewAdaptive(AdaptiveOptions{MinPackets: 10, ColdSamples: 2})
	d := a.Observe(g, fakeStats(map[string]int64{"flt": 500, "fc": 500}))
	if !d.Fuse {
		t.Fatalf("hot classification run did not trigger fuse: %+v", d)
	}
	ng, nreg, err := Reoptimize(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFusedClass(ng) {
		t.Fatalf("Reoptimize with Fuse decision generated no diagram:\n%s", lang.Unparse(ng))
	}

	// Survival: adapt the fused router with a fuse-less decision; the
	// diagram classes must ride through on the archive, and forwarding
	// must be unchanged.
	fusedRun := diffRunCustom(t, ng, nreg, ifs, trace)
	d2 := Decision{Devirtualize: true, Reasons: []string{"devirtualize: test"}}
	ng2, nreg2, err := Reoptimize(ng, d2)
	if err != nil {
		t.Fatal(err)
	}
	if !hasFusedClass(ng2) {
		t.Fatalf("fused classes lost across adapt cycle:\n%s", lang.Unparse(ng2))
	}
	adaptedRun := diffRunCustom(t, ng2, nreg2, ifs, trace)
	diffCompare(t, "adapted-fused", fusedRun, adaptedRun)
}

// hasFusedClass reports whether a graph still carries a fuse-generated
// element (possibly devirtualize-specialized).
func hasFusedClass(g *graph.Router) bool {
	for _, i := range g.LiveIndices() {
		if generatedFusedClassifier(g.Element(i).Class) {
			return true
		}
	}
	return false
}

// diffRunCustom is diffRun for an already-transformed graph.
func diffRunCustom(t *testing.T, g *graph.Router, reg *core.Registry,
	ifs []iprouter.Interface, trace []*packet.Packet) map[string][][]byte {
	t.Helper()
	devs := map[string]*fakeDevice{}
	env := map[string]interface{}{}
	for i := range ifs {
		name := fmt.Sprintf("eth%d", i)
		d := &fakeDevice{name: name}
		devs[name] = d
		env["device:"+name] = d
	}
	rt, err := core.Build(g, reg, core.BuildOptions{Env: env})
	if err != nil {
		t.Fatalf("build: %v\n%s", err, lang.Unparse(g))
	}
	warmARP(rt, ifs)
	for _, p := range trace {
		devs["eth0"].rx = append(devs["eth0"].rx, p.Clone())
	}
	rt.RunUntilIdle(100000)
	out := map[string][][]byte{}
	for name, d := range devs {
		seq := make([][]byte, 0, len(d.tx))
		for _, p := range d.tx {
			seq = append(seq, append([]byte(nil), p.Data()...))
		}
		out[name] = seq
	}
	return out
}

// FuzzFlowCacheMutations interleaves random flow traffic with random
// write-handler mutations of guarded state (routes, ARP bindings, queue
// capacity) and asserts the cached router stays byte-for-byte
// equivalent to the uncached one throughout.
func FuzzFlowCacheMutations(f *testing.F) {
	for seed := int64(1); seed <= 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		ifs := iprouter.Interfaces(3)
		text := iprouter.Config(ifs)
		cached := buildFlowRig(t, text, 3, flowCachePass, ifs)
		plain := buildFlowRig(t, text, 3, nil, ifs)
		if cached.fc == nil {
			t.Fatal("no FlowCache element")
		}

		mutate := func(path, value string) {
			// Apply to both routers; errors (e.g. removing an absent
			// route) must simply agree, not diverge.
			errC := cached.rt.WriteHandler(path, value)
			errP := plain.rt.WriteHandler(path, value)
			if (errC == nil) != (errP == nil) {
				t.Fatalf("mutation %s %q diverged: cached=%v plain=%v", path, value, errC, errP)
			}
		}
		for op := 0; op < 30; op++ {
			switch k := rng.Intn(10); {
			case k < 6:
				// A short burst of one of six flows.
				fl := rng.Intn(6)
				dst := ifs[1+fl%2]
				var ps []*packet.Packet
				for i := 0; i < 1+rng.Intn(3); i++ {
					ps = append(ps, packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
						ifs[0].HostAddr, dst.HostAddr,
						uint16(3000+fl), uint16(9000+fl), make([]byte, 16+4*(fl%4))))
				}
				cached.send(ps)
				plain.send(ps)
			case k < 7:
				host := 1 + rng.Intn(2)
				mutate("rt.add", fmt.Sprintf("10.0.%d.2/32 %d", host, rng.Intn(4)))
			case k < 8:
				host := 1 + rng.Intn(2)
				mutate("rt.remove", fmt.Sprintf("10.0.%d.2/32", host))
			case k < 9:
				host := 1 + rng.Intn(2)
				mac := fmt.Sprintf("02:00:00:00:%02x:%02x", rng.Intn(256), rng.Intn(256))
				mutate(fmt.Sprintf("arpq%d.insert", 1+rng.Intn(2)),
					fmt.Sprintf("10.0.%d.2 %s", host, mac))
			default:
				mutate(fmt.Sprintf("out%d.capacity", rng.Intn(3)),
					strconv.Itoa(200+rng.Intn(800)))
			}
		}
		diffCompare(t, fmt.Sprintf("seed%d", seed), plain.tx(), cached.tx())
	})
}
