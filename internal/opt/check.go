// Package opt implements the Click optimization tools as library passes
// over configuration graphs: click-fastclassifier, click-devirtualize,
// click-xform, click-undead, click-align, click-check,
// click-mkmindriver, click-pretty, and click-combine/click-uncombine.
// Each pass reads a graph, analyzes and transforms it, and leaves the
// result ready to unparse — the cmd/ wrappers pipe them together like
// compiler passes (§5).
package opt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Check verifies a configuration the way click-check does: every class
// known, port counts legal, push/pull assignment consistent, and
// connection discipline respected (each push output and pull input
// connected exactly once, no dangling ports). It returns all problems
// found.
func Check(g *graph.Router, reg *core.Registry) []error {
	var errs []error
	errs = append(errs, graph.CheckPorts(g, reg)...)
	pr, err := graph.AssignProcessing(g, reg)
	if err != nil {
		errs = append(errs, err)
		return errs
	}
	errs = append(errs, graph.CheckConnectionDiscipline(g, pr)...)
	return errs
}

// CheckInstantiable additionally verifies that every class has a
// runtime factory (specification-only classes cannot run).
func CheckInstantiable(g *graph.Router, reg *core.Registry) []error {
	errs := Check(g, reg)
	for _, i := range g.LiveIndices() {
		e := g.Element(i)
		if spec, ok := reg.Lookup(e.Class); ok && spec.Make == nil {
			errs = append(errs, fmt.Errorf("element class %q is specification-only (element %q)", e.Class, e.Name))
		}
	}
	return errs
}
