package opt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/lang"
)

// Adaptive is the telemetry-driven re-optimization controller: the
// runtime loop the offline tool chain lacks. It periodically samples a
// live router's per-element statistics (the PR 2 telemetry handlers),
// decides which optimizer passes the observed traffic actually
// justifies — fastclassifier only when classifiers are hot, undead only
// when a switch branch has stayed cold for several samples,
// devirtualize once there is enough traffic to specialize for — and
// re-runs the pass pipeline over the unparsed live configuration. The
// result is hot-swapped in by the caller (cmd/click, netsim, or the
// adaptive benchmark).
//
// The controller reads counters and rewrites configurations offline; it
// never charges model cycles, so the calibrated Figure 8/9 numbers are
// unaffected by having it attached.
type Adaptive struct {
	Opts AdaptiveOptions

	samples int
	prevIn  map[string]int64
	cold    map[string]int
}

// AdaptiveOptions tune the controller's decision thresholds.
type AdaptiveOptions struct {
	// MinPackets is the packet count an element must have seen before
	// the controller considers it hot (and before devirtualization is
	// judged worthwhile at all).
	MinPackets int64
	// ColdSamples is the number of consecutive Observe calls an element
	// must go without receiving a packet to be considered dead traffic
	// ("zero packets for N rounds").
	ColdSamples int
	// EnableFlowCache lets the controller decide to install the flow
	// fast path once the router is hot. Off by default: FlowCache is a
	// data-dependent optimization the operator opts into (it changes
	// which elements see which packets, unlike the structure-preserving
	// code passes).
	EnableFlowCache bool
}

// DefaultAdaptiveOptions returns the thresholds the click driver uses.
func DefaultAdaptiveOptions() AdaptiveOptions {
	return AdaptiveOptions{MinPackets: 1000, ColdSamples: 3}
}

// NewAdaptive builds a controller; zero-valued options fall back to the
// defaults.
func NewAdaptive(opts AdaptiveOptions) *Adaptive {
	def := DefaultAdaptiveOptions()
	if opts.MinPackets <= 0 {
		opts.MinPackets = def.MinPackets
	}
	if opts.ColdSamples <= 0 {
		opts.ColdSamples = def.ColdSamples
	}
	return &Adaptive{
		Opts:   opts,
		prevIn: map[string]int64{},
		cold:   map[string]int{},
	}
}

// Decision is the controller's verdict on one telemetry sample: which
// passes the observed traffic justifies, with human-readable reasons.
type Decision struct {
	FastClassifier bool
	Devirtualize   bool
	Undead         bool
	Fuse           bool
	FlowCache      bool
	Reasons        []string
}

// Any reports whether the decision selects at least one pass.
func (d Decision) Any() bool {
	return d.FastClassifier || d.Devirtualize || d.Undead || d.Fuse || d.FlowCache
}

// generatedFastClassifier and generatedFusedClassifier recognize the
// class names the fastclassifier and fuse passes generate (possibly
// wearing a devirtualize "_dvN" suffix).
func generatedFastClassifier(class string) bool {
	return strings.HasPrefix(stripDevirt(class), "FastClassifier@@")
}

func generatedFusedClassifier(class string) bool {
	return strings.HasPrefix(stripDevirt(class), "FusedClassifier_")
}

// Observe feeds the controller one telemetry sample: the live router's
// configuration graph and its stats report (core.Router.StatsReport).
// It updates the per-element cold streaks and returns the passes the
// traffic seen so far justifies.
func (a *Adaptive) Observe(g *graph.Router, stats []core.ElementStatsReport) Decision {
	a.samples++
	byName := map[string]core.ElementStatsReport{}
	var maxIn int64
	for _, r := range stats {
		byName[r.Name] = r
		if r.PacketsIn > maxIn {
			maxIn = r.PacketsIn
		}
		// Cold streak: one more sample without a new packet arriving.
		if r.PacketsIn == a.prevIn[r.Name] {
			a.cold[r.Name]++
		} else {
			a.cold[r.Name] = 0
		}
		a.prevIn[r.Name] = r.PacketsIn
	}

	var d Decision

	// fastclassifier: only when a tree-walking classifier is hot. A cold
	// classifier is not worth a generated class (the paper's tools apply
	// it unconditionally; the controller has traffic counts to be
	// choosier with).
	for _, i := range g.LiveIndices() {
		e := g.Element(i)
		if !classifierClasses[e.Class] {
			continue
		}
		if r, ok := byName[e.Name]; ok && r.PacketsIn >= a.Opts.MinPackets {
			d.FastClassifier = true
			d.Reasons = append(d.Reasons,
				fmt.Sprintf("fastclassifier: %s (%s) is hot with %d packets", e.Name, e.Class, r.PacketsIn))
			break
		}
	}

	// fuse: a hot run of two or more adjacent classification-only
	// elements collapses into one decision diagram. Detection is by
	// class name (stripDevirt'd, so specialized variants count);
	// already-fused FusedClassifier_N stages are classification-only
	// too, so a hot diagram adjacent to a fresh classifier re-fuses.
	fusable := func(class string) bool {
		base := stripDevirt(class)
		return base == "StaticSwitch" || classifierClasses[base] ||
			generatedFastClassifier(class) || generatedFusedClassifier(class)
	}
fuse:
	for _, c := range g.Conns {
		u, v := g.Element(c.From), g.Element(c.To)
		if !fusable(u.Class) || !fusable(v.Class) {
			continue
		}
		if r, ok := byName[u.Name]; ok && r.PacketsIn >= a.Opts.MinPackets {
			d.Fuse = true
			d.Reasons = append(d.Reasons,
				fmt.Sprintf("fuse: classification run %s -> %s is hot with %d packets", u.Name, v.Name, r.PacketsIn))
			break fuse
		}
	}

	// flowcache: once the router is hot, install the flow fast path —
	// but only when the operator opted in, and never twice.
	if a.Opts.EnableFlowCache && maxIn >= a.Opts.MinPackets {
		has := false
		for _, i := range g.LiveIndices() {
			if stripDevirt(g.Element(i).Class) == "FlowCache" {
				has = true
				break
			}
		}
		if !has {
			d.FlowCache = true
			d.Reasons = append(d.Reasons,
				fmt.Sprintf("flowcache: %d packets through the hottest element", maxIn))
		}
	}

	// devirtualize: worthwhile once the router carries real traffic —
	// specializing transfer paths for an idle router buys nothing.
	if maxIn >= a.Opts.MinPackets {
		d.Devirtualize = true
		d.Reasons = append(d.Reasons,
			fmt.Sprintf("devirtualize: %d packets through the hottest element", maxIn))
	}

	// undead: a StaticSwitch branch that has stayed cold for
	// ColdSamples consecutive samples is dead traffic; splicing the
	// switch out and removing the branch shortens the hot path.
	if a.samples >= a.Opts.ColdSamples {
	undead:
		for _, i := range g.LiveIndices() {
			e := g.Element(i)
			if e.Class != "StaticSwitch" {
				continue
			}
			if byName[e.Name].PacketsIn == 0 {
				continue // the switch itself carries nothing yet
			}
			for p := 0; p < g.NOutputs(i); p++ {
				for _, c := range g.OutputConns(i, p) {
					tgt := g.Element(c.To)
					if a.cold[tgt.Name] >= a.Opts.ColdSamples {
						d.Undead = true
						d.Reasons = append(d.Reasons,
							fmt.Sprintf("undead: %s branch %d (-> %s) cold for %d samples",
								e.Name, p, tgt.Name, a.cold[tgt.Name]))
						break undead
					}
				}
			}
		}
	}
	sort.Strings(d.Reasons)
	return d
}

// Reoptimize applies a decision to a live router's configuration: the
// graph is unparsed back to the configuration language (lang is the
// round-trip that makes runtime re-optimization possible), re-parsed,
// the archive (generated classes from earlier passes) carried over and
// re-installed into a fresh registry, and the selected passes applied
// in the canonical order: undead, fuse, fastclassifier, flowcache,
// devirtualize — fuse early so diagrams compose over the original
// classifiers, devirtualize last, since it cements element order. The
// adaptive report lands in the archive under "reports/adaptive"
// alongside the per-pass reports.
//
// InstallArchive re-registers every generated class the configuration
// already carries — fastclassifier programs, fuse decision diagrams
// ("fuse/programs"), devirtualized clones — so an adapt cycle on an
// already-fused router preserves its FusedClassifier_N specialization
// even when the cycle itself selects no fuse re-run.
//
// The returned graph and registry are what core.Build (or a testbed
// Hotswap) needs to assemble the replacement router.
func Reoptimize(g *graph.Router, d Decision) (*graph.Router, *core.Registry, error) {
	text := lang.Unparse(g)
	ng, err := lang.ParseRouter(text, "adaptive")
	if err != nil {
		return nil, nil, fmt.Errorf("opt: adaptive: re-parse of live config failed: %v", err)
	}
	for k, v := range g.Archive {
		ng.Archive[k] = v
	}
	for _, r := range g.Requirements {
		ng.Require(r)
	}
	reg := elements.NewRegistry()
	if err := InstallArchive(ng, reg); err != nil {
		return nil, nil, fmt.Errorf("opt: adaptive: %v", err)
	}
	var applied []string
	report := &PassReport{Pass: "adaptive", Reasons: d.Reasons}
	if d.Undead {
		report.ElementsRemoved = Undead(ng, reg)
		applied = append(applied, "undead")
	}
	if d.Fuse {
		if err := Fuse(ng, reg); err != nil {
			return nil, nil, fmt.Errorf("opt: adaptive: %v", err)
		}
		applied = append(applied, "fuse")
	}
	if d.FastClassifier {
		if err := FastClassifier(ng, reg); err != nil {
			return nil, nil, fmt.Errorf("opt: adaptive: %v", err)
		}
		applied = append(applied, "fastclassifier")
	}
	if d.FlowCache {
		if err := InstallFlowCache(ng, reg); err != nil {
			return nil, nil, fmt.Errorf("opt: adaptive: %v", err)
		}
		applied = append(applied, "flowcache")
	}
	if d.Devirtualize {
		if err := Devirtualize(ng, reg, nil); err != nil {
			return nil, nil, fmt.Errorf("opt: adaptive: %v", err)
		}
		applied = append(applied, "devirtualize")
	}
	report.PassesApplied = applied
	attachReport(ng, report)
	return ng, reg, nil
}
