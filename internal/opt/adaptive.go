package opt

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/lang"
)

// Adaptive is the telemetry-driven re-optimization controller: the
// runtime loop the offline tool chain lacks. It periodically samples a
// live router's per-element statistics (the PR 2 telemetry handlers),
// decides which optimizer passes the observed traffic actually
// justifies — fastclassifier only when classifiers are hot, undead only
// when a switch branch has stayed cold for several samples,
// devirtualize once there is enough traffic to specialize for — and
// re-runs the pass pipeline over the unparsed live configuration. The
// result is hot-swapped in by the caller (cmd/click, netsim, or the
// adaptive benchmark).
//
// The controller reads counters and rewrites configurations offline; it
// never charges model cycles, so the calibrated Figure 8/9 numbers are
// unaffected by having it attached.
type Adaptive struct {
	Opts AdaptiveOptions

	samples int
	prevIn  map[string]int64
	cold    map[string]int
}

// AdaptiveOptions tune the controller's decision thresholds.
type AdaptiveOptions struct {
	// MinPackets is the packet count an element must have seen before
	// the controller considers it hot (and before devirtualization is
	// judged worthwhile at all).
	MinPackets int64
	// ColdSamples is the number of consecutive Observe calls an element
	// must go without receiving a packet to be considered dead traffic
	// ("zero packets for N rounds").
	ColdSamples int
}

// DefaultAdaptiveOptions returns the thresholds the click driver uses.
func DefaultAdaptiveOptions() AdaptiveOptions {
	return AdaptiveOptions{MinPackets: 1000, ColdSamples: 3}
}

// NewAdaptive builds a controller; zero-valued options fall back to the
// defaults.
func NewAdaptive(opts AdaptiveOptions) *Adaptive {
	def := DefaultAdaptiveOptions()
	if opts.MinPackets <= 0 {
		opts.MinPackets = def.MinPackets
	}
	if opts.ColdSamples <= 0 {
		opts.ColdSamples = def.ColdSamples
	}
	return &Adaptive{
		Opts:   opts,
		prevIn: map[string]int64{},
		cold:   map[string]int{},
	}
}

// Decision is the controller's verdict on one telemetry sample: which
// passes the observed traffic justifies, with human-readable reasons.
type Decision struct {
	FastClassifier bool
	Devirtualize   bool
	Undead         bool
	Reasons        []string
}

// Any reports whether the decision selects at least one pass.
func (d Decision) Any() bool { return d.FastClassifier || d.Devirtualize || d.Undead }

// Observe feeds the controller one telemetry sample: the live router's
// configuration graph and its stats report (core.Router.StatsReport).
// It updates the per-element cold streaks and returns the passes the
// traffic seen so far justifies.
func (a *Adaptive) Observe(g *graph.Router, stats []core.ElementStatsReport) Decision {
	a.samples++
	byName := map[string]core.ElementStatsReport{}
	var maxIn int64
	for _, r := range stats {
		byName[r.Name] = r
		if r.PacketsIn > maxIn {
			maxIn = r.PacketsIn
		}
		// Cold streak: one more sample without a new packet arriving.
		if r.PacketsIn == a.prevIn[r.Name] {
			a.cold[r.Name]++
		} else {
			a.cold[r.Name] = 0
		}
		a.prevIn[r.Name] = r.PacketsIn
	}

	var d Decision

	// fastclassifier: only when a tree-walking classifier is hot. A cold
	// classifier is not worth a generated class (the paper's tools apply
	// it unconditionally; the controller has traffic counts to be
	// choosier with).
	for _, i := range g.LiveIndices() {
		e := g.Element(i)
		if !classifierClasses[e.Class] {
			continue
		}
		if r, ok := byName[e.Name]; ok && r.PacketsIn >= a.Opts.MinPackets {
			d.FastClassifier = true
			d.Reasons = append(d.Reasons,
				fmt.Sprintf("fastclassifier: %s (%s) is hot with %d packets", e.Name, e.Class, r.PacketsIn))
			break
		}
	}

	// devirtualize: worthwhile once the router carries real traffic —
	// specializing transfer paths for an idle router buys nothing.
	if maxIn >= a.Opts.MinPackets {
		d.Devirtualize = true
		d.Reasons = append(d.Reasons,
			fmt.Sprintf("devirtualize: %d packets through the hottest element", maxIn))
	}

	// undead: a StaticSwitch branch that has stayed cold for
	// ColdSamples consecutive samples is dead traffic; splicing the
	// switch out and removing the branch shortens the hot path.
	if a.samples >= a.Opts.ColdSamples {
	undead:
		for _, i := range g.LiveIndices() {
			e := g.Element(i)
			if e.Class != "StaticSwitch" {
				continue
			}
			if byName[e.Name].PacketsIn == 0 {
				continue // the switch itself carries nothing yet
			}
			for p := 0; p < g.NOutputs(i); p++ {
				for _, c := range g.OutputConns(i, p) {
					tgt := g.Element(c.To)
					if a.cold[tgt.Name] >= a.Opts.ColdSamples {
						d.Undead = true
						d.Reasons = append(d.Reasons,
							fmt.Sprintf("undead: %s branch %d (-> %s) cold for %d samples",
								e.Name, p, tgt.Name, a.cold[tgt.Name]))
						break undead
					}
				}
			}
		}
	}
	sort.Strings(d.Reasons)
	return d
}

// Reoptimize applies a decision to a live router's configuration: the
// graph is unparsed back to the configuration language (lang is the
// round-trip that makes runtime re-optimization possible), re-parsed,
// the archive (generated classes from earlier passes) carried over and
// re-installed into a fresh registry, and the selected passes applied
// in the canonical order: undead, fastclassifier, devirtualize —
// devirtualize last, since it cements element order. The adaptive
// report lands in the archive under "reports/adaptive" alongside the
// per-pass reports.
//
// The returned graph and registry are what core.Build (or a testbed
// Hotswap) needs to assemble the replacement router.
func Reoptimize(g *graph.Router, d Decision) (*graph.Router, *core.Registry, error) {
	text := lang.Unparse(g)
	ng, err := lang.ParseRouter(text, "adaptive")
	if err != nil {
		return nil, nil, fmt.Errorf("opt: adaptive: re-parse of live config failed: %v", err)
	}
	for k, v := range g.Archive {
		ng.Archive[k] = v
	}
	for _, r := range g.Requirements {
		ng.Require(r)
	}
	reg := elements.NewRegistry()
	if err := InstallArchive(ng, reg); err != nil {
		return nil, nil, fmt.Errorf("opt: adaptive: %v", err)
	}
	var applied []string
	report := &PassReport{Pass: "adaptive", Reasons: d.Reasons}
	if d.Undead {
		report.ElementsRemoved = Undead(ng, reg)
		applied = append(applied, "undead")
	}
	if d.FastClassifier {
		if err := FastClassifier(ng, reg); err != nil {
			return nil, nil, fmt.Errorf("opt: adaptive: %v", err)
		}
		applied = append(applied, "fastclassifier")
	}
	if d.Devirtualize {
		if err := Devirtualize(ng, reg, nil); err != nil {
			return nil, nil, fmt.Errorf("opt: adaptive: %v", err)
		}
		applied = append(applied, "devirtualize")
	}
	report.PassesApplied = applied
	attachReport(ng, report)
	return ng, reg, nil
}
