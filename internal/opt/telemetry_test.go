package opt

// Telemetry tests over real router configurations: every packet a
// router element receives must be accounted for (forwarded, delivered,
// or dropped) in every execution mode, the implicit stats handlers must
// survive every optimizer pass, and the passes must leave structured
// diagnostic reports behind.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/iprouter"
	"repro/internal/lang"
)

// expanderClasses may legitimately emit more packets than they receive
// (clones, fragments, generated queries/replies); for them conservation
// is the weaker "nothing vanishes" inequality.
var expanderClasses = map[string]bool{
	"Tee":           true,
	"PaintTee":      true,
	"CheckPaint":    true,
	"ARPQuerier":    true,
	"ICMPError":     true,
	"IPFragmenter":  true,
	"IPOutputCombo": true,
}

// sourceClasses originate packets from outside the graph (device rings),
// so their input counters stay zero.
var sourceClasses = map[string]bool{
	"PollDevice": true,
	"FromDevice": true,
}

// telemetryBaseClass sees through the class names the optimizers
// synthesize: click-devirtualize's "_dvN" suffix and
// click-fastclassifier's "FastClassifier@@name" generated classes.
func telemetryBaseClass(class string) string {
	if strings.HasPrefix(class, "FastClassifier@@") {
		return "FastClassifier"
	}
	if i := strings.LastIndex(class, "_dv"); i > 0 {
		if _, err := strconv.Atoi(class[i+3:]); err == nil {
			return class[:i]
		}
	}
	return class
}

// checkConservation asserts, for every element of a drained router,
// packets_in == packets_out + drops (sources must have packets_in == 0;
// expanders may emit extra packets but must not lose any).
func checkConservation(t *testing.T, label string, rt *core.Router) {
	t.Helper()
	reps := rt.StatsReport()
	sawTraffic := false
	for _, r := range reps {
		if r.PacketsIn > 0 || r.PacketsOut > 0 {
			sawTraffic = true
		}
		base := telemetryBaseClass(r.Class)
		switch {
		case sourceClasses[base]:
			if r.PacketsIn != 0 {
				t.Errorf("%s: source %s (%s) has packets_in = %d", label, r.Name, r.Class, r.PacketsIn)
			}
		case expanderClasses[base]:
			if r.PacketsOut+r.Drops < r.PacketsIn {
				t.Errorf("%s: %s (%s) lost packets: in=%d out=%d drops=%d",
					label, r.Name, r.Class, r.PacketsIn, r.PacketsOut, r.Drops)
			}
		default:
			if r.PacketsIn != r.PacketsOut+r.Drops {
				t.Errorf("%s: %s (%s) violates conservation: in=%d out=%d drops=%d",
					label, r.Name, r.Class, r.PacketsIn, r.PacketsOut, r.Drops)
			}
		}
		if r.PacketsIn == 0 && r.BytesIn != 0 {
			t.Errorf("%s: %s has bytes_in without packets_in", label, r.Name)
		}
	}
	if !sawTraffic {
		t.Errorf("%s: no element saw any traffic", label)
	}
}

// telemetryRun builds the 2-interface IP router (optionally optimized),
// replays transit traffic, and returns the drained router.
func telemetryRun(t *testing.T, pass func(*graph.Router, *core.Registry) error,
	burst, workers, npkts int) (*core.Router, []iprouter.Interface) {
	t.Helper()
	ifs := iprouter.Interfaces(2)
	g, err := lang.ParseRouter(iprouter.Config(ifs), "telemetry")
	if err != nil {
		t.Fatal(err)
	}
	reg := elements.NewRegistry()
	if pass != nil {
		if err := pass(g, reg); err != nil {
			t.Fatal(err)
		}
	}
	devs := map[string]*fakeDevice{}
	env := map[string]interface{}{}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("eth%d", i)
		d := &fakeDevice{name: name}
		devs[name] = d
		env["device:"+name] = d
	}
	rt, err := core.Build(g, reg, core.BuildOptions{Env: env, Burst: burst})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	warmARP(rt, ifs)
	for _, p := range ipTrace(ifs, npkts) {
		devs["eth0"].rx = append(devs["eth0"].rx, p)
	}
	if workers > 1 {
		if _, err := rt.RunParallelUntilIdle(workers, 100000); err != nil {
			t.Fatalf("parallel run: %v", err)
		}
	} else {
		rt.RunUntilIdle(100000)
	}
	if got := len(devs["eth1"].tx); got == 0 {
		t.Fatal("router forwarded nothing")
	}
	return rt, ifs
}

// allPasses runs the full optimizer chain.
func allPasses(g *graph.Router, reg *core.Registry) error {
	pairs, err := ParsePatterns(iprouter.ComboPatterns, "combopatterns")
	if err != nil {
		return err
	}
	Xform(g, pairs)
	if err := FastClassifier(g, reg); err != nil {
		return err
	}
	return Devirtualize(g, reg, nil)
}

// TestTelemetryConservation drives the IP router in every execution
// mode, unoptimized and fully optimized, and asserts the per-element
// conservation law packets_in == packets_out + drops.
func TestTelemetryConservation(t *testing.T) {
	modes := []struct {
		name    string
		burst   int
		workers int
	}{
		{"scalar", 0, 1},
		{"batch8", 8, 1},
		{"batch32", 32, 1},
		{"parallel2", 0, 2},
		{"parallel2batch8", 8, 2},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			rt, _ := telemetryRun(t, nil, m.burst, m.workers, 200)
			checkConservation(t, "plain/"+m.name, rt)
		})
		t.Run(m.name+"+opt", func(t *testing.T) {
			rt, _ := telemetryRun(t, allPasses, m.burst, m.workers, 200)
			checkConservation(t, "opt/"+m.name, rt)
		})
	}
}

// TestStatsHandlersSurvivePasses asserts every element still answers
// the implicit telemetry handlers after each optimizer pass rewrote the
// configuration.
func TestStatsHandlersSurvivePasses(t *testing.T) {
	passes := append([]struct {
		name  string
		apply func(g *graph.Router, reg *core.Registry) error
	}{{"none", nil}, {"all", allPasses}}, diffPasses...)
	handlers := []string{"packets_in", "bytes_in", "packets_out", "bytes_out", "drops", "cycles"}
	for _, p := range passes {
		t.Run(p.name, func(t *testing.T) {
			rt, _ := telemetryRun(t, p.apply, 0, 1, 50)
			anyIn := false
			for _, i := range rt.Graph.LiveIndices() {
				name := rt.Graph.Element(i).Name
				for _, h := range handlers {
					v, err := rt.ReadHandler(name + "." + h)
					if err != nil {
						t.Fatalf("pass %s: %s.%s: %v", p.name, name, h, err)
					}
					if _, err := strconv.ParseInt(v, 10, 64); err != nil {
						// An element-provided handler of the same name may
						// answer differently; it still must answer a number.
						t.Fatalf("pass %s: %s.%s = %q, not an integer", p.name, name, h, v)
					}
				}
				if v, _ := rt.ReadHandler(name + ".packets_in"); v != "0" && v != "" {
					anyIn = true
				}
			}
			if !anyIn {
				t.Fatalf("pass %s: all packets_in handlers read zero", p.name)
			}
		})
	}
}

// TestTracingOptimizedRouter records per-packet paths through the fully
// optimized router and checks the trace names live elements in a
// plausible forwarding order.
func TestTracingOptimizedRouter(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	g, err := lang.ParseRouter(iprouter.Config(ifs), "telemetry")
	if err != nil {
		t.Fatal(err)
	}
	reg := elements.NewRegistry()
	if err := allPasses(g, reg); err != nil {
		t.Fatal(err)
	}
	devs := map[string]*fakeDevice{}
	env := map[string]interface{}{}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("eth%d", i)
		d := &fakeDevice{name: name}
		devs[name] = d
		env["device:"+name] = d
	}
	rt, err := core.Build(g, reg, core.BuildOptions{Env: env})
	if err != nil {
		t.Fatal(err)
	}
	tracer := rt.EnableTracing(4096)
	warmARP(rt, ifs)
	for _, p := range ipTrace(ifs, 5) {
		devs["eth0"].rx = append(devs["eth0"].rx, p)
	}
	rt.RunUntilIdle(100000)

	live := map[string]bool{}
	for _, i := range rt.Graph.LiveIndices() {
		live[rt.Graph.Element(i).Name] = true
	}
	paths := tracer.Paths()
	if len(paths) != 5 {
		t.Fatalf("traced %d packets, want 5", len(paths))
	}
	for id, path := range paths {
		if len(path) < 3 {
			t.Errorf("packet %d path too short: %v", id, path)
		}
		for _, elem := range path {
			if !live[elem] {
				t.Errorf("packet %d path names unknown element %q", id, elem)
			}
		}
		// Transit traffic must end at the transmitting device element.
		last := path[len(path)-1]
		if !strings.HasPrefix(last, "td") {
			t.Errorf("packet %d path ends at %q, want a ToDevice: %v", id, last, path)
		}
	}
}

// TestPassReports runs the optimizer chain and asserts each pass left a
// structured report in the archive, with counts matching its visible
// effect, and that reports survive a configuration round trip.
func TestPassReports(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	g, err := lang.ParseRouter(iprouter.Config(ifs), "telemetry")
	if err != nil {
		t.Fatal(err)
	}
	reg := elements.NewRegistry()
	pairs, err := ParsePatterns(iprouter.ComboPatterns, "combopatterns")
	if err != nil {
		t.Fatal(err)
	}
	nx := Xform(g, pairs)
	if err := FastClassifier(g, reg); err != nil {
		t.Fatal(err)
	}
	if err := Devirtualize(g, reg, nil); err != nil {
		t.Fatal(err)
	}
	nu := Undead(g, reg)

	reps, err := Reports(g)
	if err != nil {
		t.Fatal(err)
	}
	byPass := map[string]*PassReport{}
	for _, r := range reps {
		byPass[r.Pass] = r
	}
	for _, want := range []string{"xform", "fastclassifier", "devirtualize", "undead"} {
		if byPass[want] == nil {
			t.Fatalf("no report for pass %q (have %d reports)", want, len(reps))
		}
	}
	if got := byPass["xform"].Replacements; got != nx {
		t.Errorf("xform report says %d replacements, pass returned %d", got, nx)
	}
	total := 0
	for _, n := range byPass["xform"].PatternCounts {
		total += n
	}
	if total != nx {
		t.Errorf("xform pattern counts sum to %d, want %d", total, nx)
	}
	if byPass["fastclassifier"].ClassesGenerated == 0 ||
		byPass["fastclassifier"].ElementsSpecialized < byPass["fastclassifier"].ClassesGenerated {
		t.Errorf("implausible fastclassifier report: %+v", byPass["fastclassifier"])
	}
	if byPass["devirtualize"].ClassesGenerated == 0 {
		t.Errorf("devirtualize generated no classes: %+v", byPass["devirtualize"])
	}
	specialized := 0
	for _, members := range byPass["devirtualize"].Classes {
		specialized += len(members)
	}
	if specialized != byPass["devirtualize"].ElementsSpecialized {
		t.Errorf("devirtualize class map lists %d elements, report says %d",
			specialized, byPass["devirtualize"].ElementsSpecialized)
	}
	if byPass["undead"].ElementsRemoved != nu || len(byPass["undead"].Removed) != nu {
		t.Errorf("undead report (%d removed, %d names) disagrees with pass return %d",
			byPass["undead"].ElementsRemoved, len(byPass["undead"].Removed), nu)
	}

	// Reports survive the textual archive round trip the tools use.
	text := lang.Unparse(g)
	var members []lang.ArchiveMember
	for name, data := range g.Archive {
		members = append(members, lang.ArchiveMember{Name: name, Data: data})
	}
	packed := lang.PackConfig(text, members)
	config, extra, err := lang.UnpackConfig(packed)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := lang.ParseRouter(config, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range extra {
		g2.Archive[m.Name] = m.Data
	}
	reps2, err := Reports(g2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps2) != len(reps) {
		t.Fatalf("round trip kept %d reports, want %d", len(reps2), len(reps))
	}

	// Undead names what it removed on a config with known dead code.
	g3, err := lang.ParseRouter(
		"src :: InfiniteSource(64, 5) -> sw :: StaticSwitch(0);"+
			"sw [0] -> cnt :: Counter -> Discard; sw [1] -> dead :: Counter -> Discard;",
		"undead-test")
	if err != nil {
		t.Fatal(err)
	}
	Undead(g3, elements.NewRegistry())
	reps3, err := Reports(g3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps3) != 1 || reps3[0].Pass != "undead" {
		t.Fatalf("expected one undead report, got %v", reps3)
	}
	found := false
	for _, n := range reps3[0].Removed {
		if n == "dead" {
			found = true
		}
	}
	if !found {
		t.Errorf("undead report does not name removed element %q: %v", "dead", reps3[0].Removed)
	}
}
