package opt

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/packet"
)

// fakeDevice is an in-memory Device for driving routers in tests.
type fakeDevice struct {
	name string
	rx   []*packet.Packet
	tx   []*packet.Packet
}

func (d *fakeDevice) DeviceName() string { return d.name }

func (d *fakeDevice) RxDequeue() *packet.Packet {
	if len(d.rx) == 0 {
		return nil
	}
	p := d.rx[0]
	d.rx = d.rx[1:]
	return p
}

func (d *fakeDevice) TxEnqueue(p *packet.Packet) bool {
	d.tx = append(d.tx, p)
	return true
}

func (d *fakeDevice) TxRoom() bool { return true }
func (d *fakeDevice) TxClean() int { return 0 }

// rig is a built router plus its fake devices.
type rig struct {
	rt   *core.Router
	devs map[string]*fakeDevice
}

// buildRig assembles a graph whose PollDevice/ToDevice elements bind to
// fake devices named eth0..eth<n-1>.
func buildRig(t *testing.T, g *graph.Router, reg *core.Registry, ndev int) *rig {
	t.Helper()
	devs := map[string]*fakeDevice{}
	env := map[string]interface{}{}
	for i := 0; i < ndev; i++ {
		name := "eth" + string(rune('0'+i))
		d := &fakeDevice{name: name}
		devs[name] = d
		env["device:"+name] = d
	}
	rt, err := core.Build(g, reg, core.BuildOptions{Env: env})
	if err != nil {
		t.Fatalf("build failed: %v\n%s", err, lang.Unparse(g))
	}
	return &rig{rt: rt, devs: devs}
}

// inject queues a packet for reception on a device and runs the router
// until idle.
func (r *rig) inject(dev string, p *packet.Packet) {
	r.devs[dev].rx = append(r.devs[dev].rx, p)
	r.rt.RunUntilIdle(10000)
}

// testPacket builds a transit UDP packet arriving on interface 0
// destined for the host on interface 1.
func testPacket(ifs []iprouter.Interface) *packet.Packet {
	p := packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
		ifs[0].HostAddr, ifs[1].HostAddr, 1234, 5678, make([]byte, 14))
	return p
}

// warmARP preloads the router's ARP tables so forwarding needs no
// queries (the evaluation measures a converged network).
func warmARP(rt *core.Router, ifs []iprouter.Interface) {
	for _, e := range rt.Elements() {
		if aq, ok := e.(*elements.ARPQuerier); ok {
			for _, itf := range ifs {
				aq.InsertEntry(itf.HostAddr, itf.HostEth)
			}
		}
	}
}

func parseIPRouter(t *testing.T, n int) (*graph.Router, []iprouter.Interface) {
	t.Helper()
	ifs := iprouter.Interfaces(n)
	g, err := lang.ParseRouter(iprouter.Config(ifs), "iprouter")
	if err != nil {
		t.Fatal(err)
	}
	return g, ifs
}

func TestIPRouterConfigChecks(t *testing.T) {
	g, _ := parseIPRouter(t, 2)
	reg := elements.NewRegistry()
	if errs := Check(g, reg); len(errs) > 0 {
		t.Fatalf("IP router config has errors: %v", errs)
	}
	// The forwarding path crosses 16 elements (§3): count the
	// elements a transit packet visits.
	if n := g.NumElements(); n < 30 {
		t.Errorf("2-interface router has only %d elements", n)
	}
}

func TestIPRouterForwards(t *testing.T) {
	g, ifs := parseIPRouter(t, 2)
	r := buildRig(t, g, elements.NewRegistry(), 2)
	warmARP(r.rt, ifs)
	r.inject("eth0", testPacket(ifs))
	out := r.devs["eth1"].tx
	if len(out) != 1 {
		t.Fatalf("forwarded %d packets, want 1", len(out))
	}
	p := out[0]
	eh, _ := p.EtherHeader()
	if eh.Dst() != ifs[1].HostEth || eh.Src() != ifs[1].Ether {
		t.Errorf("Ethernet addressing wrong: dst=%v src=%v", eh.Dst(), eh.Src())
	}
	p.Anno.NetworkOffset = 14
	ih, ok := p.IPHeader()
	if !ok {
		t.Fatal("no IP header on output")
	}
	if ih.TTL() != 63 {
		t.Errorf("TTL = %d, want 63", ih.TTL())
	}
	if !ih.ChecksumOK() {
		t.Error("bad checksum on forwarded packet")
	}
}

func TestIPRouterAnswersARP(t *testing.T) {
	g, ifs := parseIPRouter(t, 2)
	r := buildRig(t, g, elements.NewRegistry(), 2)
	req := packet.Make(packet.DefaultHeadroom, packet.EtherHeaderLen+packet.ARPHeaderLen, 0)
	eh, _ := req.EtherHeader()
	eh.SetDst(packet.BroadcastEther)
	eh.SetSrc(ifs[0].HostEth)
	eh.SetType(packet.EtherTypeARP)
	ah, _ := req.ARPHeader(true)
	ah.InitARP()
	ah.SetOp(packet.ARPOpRequest)
	ah.SetSenderEther(ifs[0].HostEth)
	ah.SetSenderIP(ifs[0].HostAddr)
	ah.SetTargetIP(ifs[0].Addr)
	r.inject("eth0", req)
	out := r.devs["eth0"].tx
	if len(out) != 1 {
		t.Fatalf("ARP request produced %d packets, want 1 reply", len(out))
	}
	rh, _ := out[0].ARPHeader(true)
	if rh.Op() != packet.ARPOpReply || rh.SenderIP() != ifs[0].Addr {
		t.Error("ARP reply wrong")
	}
}

func TestIPRouterTTLExpiry(t *testing.T) {
	g, ifs := parseIPRouter(t, 2)
	r := buildRig(t, g, elements.NewRegistry(), 2)
	warmARP(r.rt, ifs)
	p := testPacket(ifs)
	p.Anno.NetworkOffset = 14
	ih, _ := p.IPHeader()
	ih.SetTTL(1)
	ih.UpdateChecksum()
	p.Anno.NetworkOffset = -1
	r.inject("eth0", p)
	// Expect an ICMP time-exceeded back out interface 0.
	back := r.devs["eth0"].tx
	if len(back) != 1 {
		t.Fatalf("expired packet produced %d packets on eth0, want 1 ICMP error", len(back))
	}
	icmp := back[0]
	icmp.Anno.NetworkOffset = 14
	ih2, ok := icmp.IPHeader()
	if !ok || ih2.Proto() != packet.IPProtoICMP {
		t.Fatal("response is not ICMP")
	}
	if ih2.Dst() != ifs[0].HostAddr {
		t.Errorf("ICMP error addressed to %v, want %v", ih2.Dst(), ifs[0].HostAddr)
	}
	if ih2.Src() != ifs[0].Addr {
		t.Errorf("ICMP error source %v, want interface address %v (FixIPSrc)", ih2.Src(), ifs[0].Addr)
	}
	if len(r.devs["eth1"].tx) != 0 {
		t.Error("expired packet was forwarded anyway")
	}
}

func TestCheckCatchesBrokenConfigs(t *testing.T) {
	reg := elements.NewRegistry()
	bad := []string{
		"x :: Nonexistent -> Discard;",
		"s :: InfiniteSource -> d :: ToDevice(e);",                                              // push into pull
		"i :: Idle -> q :: Queue; q2 :: Queue; i2 :: Idle -> q2 -> td :: ToDevice(e); q -> td;", // pull input twice
	}
	for _, cfg := range bad {
		g, err := lang.ParseRouter(cfg, "test")
		if err != nil {
			continue // parse errors also count as caught
		}
		if errs := Check(g, reg); len(errs) == 0 {
			t.Errorf("Check accepted broken config %q", cfg)
		}
	}
	// Specification-only classes flagged by CheckInstantiable.
	reg.Register(&core.Spec{Name: "SpecOnly", Processing: "a/a"})
	g, err := lang.ParseRouter("i :: Idle -> s :: SpecOnly -> x :: Idle;", "test")
	if err != nil {
		t.Fatal(err)
	}
	if errs := CheckInstantiable(g, reg); len(errs) == 0 {
		t.Error("specification-only class not flagged")
	}
}

func TestXformComboPatternsOnIPRouter(t *testing.T) {
	g, ifs := parseIPRouter(t, 2)
	pairs, err := ParsePatterns(iprouter.ComboPatterns, "combopatterns")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("parsed %d pattern pairs, want 3", len(pairs))
	}
	before := g.NumElements()
	n := Xform(g, pairs)
	// Two interfaces: each interface's input path (Paint, Strip,
	// CheckIPHeader, then +GetIPAddress) and output path (6 elements)
	// collapse: 3 applications per interface.
	if n != 6 {
		t.Errorf("applied %d replacements, want 6\n%s", n, lang.Unparse(g))
	}
	after := g.NumElements()
	// Per interface: 4 input elements -> 1 combo, 6 output elements ->
	// 1 combo: net -8 per interface, -16 total.
	if before-after != 16 {
		t.Errorf("element count %d -> %d (removed %d, want 16)", before, after, before-after)
	}
	for _, class := range []string{"IPInputCombo", "IPOutputCombo"} {
		found := 0
		for _, i := range g.LiveIndices() {
			if g.Element(i).Class == class {
				found++
			}
		}
		if found != 2 {
			t.Errorf("%d %s elements, want 2", found, class)
		}
	}
	for _, gone := range []string{"Paint", "Strip", "CheckIPHeader", "GetIPAddress", "DropBroadcasts", "CheckPaint", "IPGWOptions", "FixIPSrc", "DecIPTTL", "IPFragmenter"} {
		for _, i := range g.LiveIndices() {
			if g.Element(i).Class == gone {
				t.Errorf("general-purpose element %s survived xform", gone)
			}
		}
	}
	// IPInputCombo configs carry the folded GetIPAddress offset.
	for _, i := range g.LiveIndices() {
		if g.Element(i).Class == "IPInputCombo" {
			if args := lang.SplitConfig(g.Element(i).Config); len(args) != 3 || args[2] != "16" {
				t.Errorf("IPInputCombo config = %q", g.Element(i).Config)
			}
		}
	}
	if errs := Check(g, elements.NewRegistry()); len(errs) > 0 {
		t.Fatalf("xformed config has errors: %v\n%s", errs, lang.Unparse(g))
	}

	// Behaviour must be preserved.
	r := buildRig(t, g, elements.NewRegistry(), 2)
	warmARP(r.rt, ifs)
	r.inject("eth0", testPacket(ifs))
	if len(r.devs["eth1"].tx) != 1 {
		t.Fatalf("xformed router forwarded %d packets, want 1", len(r.devs["eth1"].tx))
	}
	p := r.devs["eth1"].tx[0]
	p.Anno.NetworkOffset = 14
	ih, _ := p.IPHeader()
	if ih.TTL() != 63 || !ih.ChecksumOK() {
		t.Error("xformed router corrupted packet")
	}
}

func TestXformIdempotentAtFixpoint(t *testing.T) {
	g, _ := parseIPRouter(t, 2)
	pairs, _ := ParsePatterns(iprouter.ComboPatterns, "combopatterns")
	Xform(g, pairs)
	if n := Xform(g, pairs); n != 0 {
		t.Errorf("second Xform applied %d more replacements", n)
	}
}

func TestXformWildcardConsistency(t *testing.T) {
	// A pattern whose wildcard appears twice must only match elements
	// with equal arguments.
	src := `
elementclass P {
	input -> a :: Paint($x) -> b :: Paint($x) -> output;
}
elementclass P_Replacement {
	input -> Paint($x) -> output;
}
`
	pairs, err := ParsePatterns(src, "test")
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := lang.ParseRouter("i :: Idle -> Paint(1) -> Paint(1) -> d :: Discard;", "t")
	if n := Xform(g1, pairs); n != 1 {
		t.Errorf("equal args: %d applications, want 1", n)
	}
	g2, _ := lang.ParseRouter("i :: Idle -> Paint(1) -> Paint(2) -> d :: Discard;", "t")
	if n := Xform(g2, pairs); n != 0 {
		t.Errorf("unequal args: %d applications, want 0", n)
	}
}

func TestXformRespectsBoundary(t *testing.T) {
	// Pattern: Strip(14) -> CheckIPHeader() with only the chain's ends
	// exposed. A config where something else also pushes into
	// CheckIPHeader must NOT match.
	src := `
elementclass P {
	input -> Strip(14) -> CheckIPHeader($b) -> output;
}
elementclass P_Replacement {
	input -> IPInputCombo(0, $b) -> output;
}
`
	pairs, err := ParsePatterns(src, "test")
	if err != nil {
		t.Fatal(err)
	}
	g, _ := lang.ParseRouter(`
i :: Idle -> Strip(14) -> chk :: CheckIPHeader(10.0.0.255) -> d :: Discard;
j :: Idle -> chk;
`, "t")
	if n := Xform(g, pairs); n != 0 {
		t.Errorf("boundary violation matched anyway (%d applications)", n)
	}
	// Without the interloper it matches.
	g2, _ := lang.ParseRouter(`i :: Idle -> Strip(14) -> chk :: CheckIPHeader(10.0.0.255) -> d :: Discard;`, "t")
	if n := Xform(g2, pairs); n != 1 {
		t.Errorf("clean config: %d applications, want 1", n)
	}
}

func TestFastClassifierOnIPRouter(t *testing.T) {
	g, ifs := parseIPRouter(t, 2)
	reg := elements.NewRegistry()
	if err := FastClassifier(g, reg); err != nil {
		t.Fatal(err)
	}
	fast := 0
	for _, i := range g.LiveIndices() {
		e := g.Element(i)
		if e.Class == "Classifier" {
			t.Error("generic Classifier survived")
		}
		if strings.HasPrefix(e.Class, "FastClassifier@@") {
			fast++
		}
	}
	if fast != 2 {
		t.Errorf("%d FastClassifier elements, want 2", fast)
	}
	// Both classifiers have identical trees, so they share one
	// generated class.
	classes := map[string]bool{}
	for _, i := range g.LiveIndices() {
		if strings.HasPrefix(g.Element(i).Class, "FastClassifier@@") {
			classes[g.Element(i).Class] = true
		}
	}
	if len(classes) != 1 {
		t.Errorf("identical trees got %d generated classes, want 1 (shared)", len(classes))
	}
	if _, ok := g.Archive["fastclassifier/programs"]; !ok {
		t.Error("no programs member in archive")
	}
	srcFound := false
	for name := range g.Archive {
		if strings.HasPrefix(name, "fastclassifier/") && strings.HasSuffix(name, ".go") {
			srcFound = true
		}
	}
	if !srcFound {
		t.Error("no generated source in archive")
	}

	// Semantics preserved.
	r := buildRig(t, g, reg, 2)
	warmARP(r.rt, ifs)
	r.inject("eth0", testPacket(ifs))
	if len(r.devs["eth1"].tx) != 1 {
		t.Fatalf("fastclassified router forwarded %d packets", len(r.devs["eth1"].tx))
	}
}

func TestFastClassifierArchiveRoundTrip(t *testing.T) {
	g, ifs := parseIPRouter(t, 2)
	reg := elements.NewRegistry()
	if err := FastClassifier(g, reg); err != nil {
		t.Fatal(err)
	}
	// Unparse to an archive and reload with a fresh registry — the
	// click driver's path.
	text := lang.Unparse(g)
	var members []lang.ArchiveMember
	for name, data := range g.Archive {
		members = append(members, lang.ArchiveMember{Name: name, Data: data})
	}
	packed := lang.PackConfig(text, members)

	cfg, extra, err := lang.UnpackConfig(packed)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := lang.ParseRouter(cfg, "reloaded")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range extra {
		g2.Archive[m.Name] = m.Data
	}
	reg2 := elements.NewRegistry()
	if err := InstallArchive(g2, reg2); err != nil {
		t.Fatal(err)
	}
	r := buildRig(t, g2, reg2, 2)
	warmARP(r.rt, ifs)
	r.inject("eth0", testPacket(ifs))
	if len(r.devs["eth1"].tx) != 1 {
		t.Fatalf("reloaded router forwarded %d packets", len(r.devs["eth1"].tx))
	}
}

func TestCombineAdjacentClassifiers(t *testing.T) {
	g, err := lang.ParseRouter(`
i :: Idle -> a :: Classifier(12/0800, -);
a [0] -> b :: Classifier(23/11, 23/06, -);
a [1] -> d0 :: Discard;
b [0] -> d1 :: Discard;
b [1] -> d2 :: Discard;
b [2] -> d3 :: Discard;
`, "t")
	if err != nil {
		t.Fatal(err)
	}
	reg := elements.NewRegistry()
	combineAdjacentClassifiers(g, reg)
	// b merged into a.
	if g.FindElement("b") != -1 {
		t.Fatalf("downstream classifier not merged:\n%s", lang.Unparse(g))
	}
	a := g.FindElement("a")
	args := lang.SplitConfig(g.Element(a).Config)
	if len(args) != 4 {
		t.Fatalf("merged config = %q, want 4 patterns", g.Element(a).Config)
	}
	// Semantics: UDP packet (proto 17 = 0x11) must reach d1.
	prAfter, err := lang.ParseRouter(lang.Unparse(g), "reparse")
	if err != nil {
		t.Fatal(err)
	}
	if errs := Check(prAfter, reg); len(errs) > 0 {
		t.Fatalf("merged config invalid: %v", errs)
	}
	rt, err := core.Build(g, reg, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	udp := packet.BuildUDP4(packet.EtherAddr{}, packet.EtherAddr{},
		packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 1, 2, make([]byte, 14))
	rt.Find("a").(core.Element).Push(0, udp)
	if d1 := rt.Find("d1").(*elements.Discard); d1.Count != 1 {
		t.Errorf("UDP packet did not reach d1 (count=%d)", d1.Count)
	}
	arp := packet.Make(packet.DefaultHeadroom, 60, 0)
	eh, _ := arp.EtherHeader()
	eh.SetType(packet.EtherTypeARP)
	rt.Find("a").(core.Element).Push(0, arp)
	if d0 := rt.Find("d0").(*elements.Discard); d0.Count != 1 {
		t.Errorf("non-IP packet did not reach d0 (count=%d)", d0.Count)
	}
}

func TestDevirtualizeSharing(t *testing.T) {
	g, ifs := parseIPRouter(t, 2)
	reg := elements.NewRegistry()
	if err := Devirtualize(g, reg, nil); err != nil {
		t.Fatal(err)
	}
	// "In our IP router configurations, analogous elements in
	// different interface paths can always share code" (§6.1).
	analogous := [][2]string{
		{"fd0", "fd1"}, {"c0", "c1"}, {"arpq0", "arpq1"},
		{"out0", "out1"}, {"td0", "td1"}, {"cp0", "cp1"},
		{"dt0", "dt1"}, {"fr0", "fr1"},
	}
	for _, pair := range analogous {
		a, b := g.FindElement(pair[0]), g.FindElement(pair[1])
		if a < 0 || b < 0 {
			t.Fatalf("missing elements %v", pair)
		}
		ca, cb := g.Element(a).Class, g.Element(b).Class
		if ca != cb {
			t.Errorf("%s (%s) and %s (%s) do not share code", pair[0], ca, pair[1], cb)
		}
		if !strings.Contains(ca, "_dv") {
			t.Errorf("%s not devirtualized: %s", pair[0], ca)
		}
	}
	if errs := Check(g, reg); len(errs) > 0 {
		t.Fatalf("devirtualized config has errors: %v", errs)
	}

	// Behaviour preserved, and transfers now direct.
	r := buildRig(t, g, reg, 2)
	warmARP(r.rt, ifs)
	r.inject("eth0", testPacket(ifs))
	if len(r.devs["eth1"].tx) != 1 {
		t.Fatalf("devirtualized router forwarded %d packets", len(r.devs["eth1"].tx))
	}
}

func TestDevirtualizeSplitsDifferentTargets(t *testing.T) {
	// Figure 2's configuration: two same-class elements connecting to
	// different classes must NOT share code (rule 4).
	g, err := lang.ParseRouter(`
i :: Idle -> a1 :: Paint(1) -> ctr :: Counter -> d0 :: Discard;
j :: Idle -> a2 :: Paint(1) -> d1 :: Discard;
`, "t")
	if err != nil {
		t.Fatal(err)
	}
	reg := elements.NewRegistry()
	if err := Devirtualize(g, reg, nil); err != nil {
		t.Fatal(err)
	}
	c1 := g.Element(g.FindElement("a1")).Class
	c2 := g.Element(g.FindElement("a2")).Class
	if c1 == c2 {
		t.Errorf("Paints with different successors share class %q", c1)
	}
	// The two Discards share (same class, same ports).
	d0 := g.Element(g.FindElement("d0")).Class
	d1 := g.Element(g.FindElement("d1")).Class
	if d0 != d1 {
		t.Errorf("Discards do not share: %q vs %q", d0, d1)
	}
}

func TestDevirtualizeExclusion(t *testing.T) {
	g, _ := parseIPRouter(t, 2)
	reg := elements.NewRegistry()
	if err := Devirtualize(g, reg, map[string]bool{"rt": true}); err != nil {
		t.Fatal(err)
	}
	rt := g.Element(g.FindElement("rt"))
	if rt.Class != "LookupIPRoute" {
		t.Errorf("excluded element was devirtualized: %s", rt.Class)
	}
}

func TestUndeadStaticSwitch(t *testing.T) {
	g, err := lang.ParseRouter(`
i :: InfiniteSource -> sw :: StaticSwitch(1);
sw [0] -> p0 :: Paint(1) -> d0 :: Discard;
sw [1] -> p1 :: Paint(2) -> d1 :: Discard;
`, "t")
	if err != nil {
		t.Fatal(err)
	}
	reg := elements.NewRegistry()
	removed := Undead(g, reg)
	if removed == 0 {
		t.Fatal("nothing removed")
	}
	if g.FindElement("sw") != -1 {
		t.Error("StaticSwitch survived")
	}
	if g.FindElement("p0") != -1 || g.FindElement("d0") != -1 {
		t.Errorf("dead branch survived:\n%s", lang.Unparse(g))
	}
	if g.FindElement("p1") == -1 || g.FindElement("d1") == -1 {
		t.Error("live branch removed")
	}
	if errs := Check(g, reg); len(errs) > 0 {
		t.Errorf("undead output has errors: %v\n%s", errs, lang.Unparse(g))
	}
}

func TestUndeadKeepsLiveConfig(t *testing.T) {
	g, _ := parseIPRouter(t, 2)
	reg := elements.NewRegistry()
	before := g.NumElements()
	removed := Undead(g, reg)
	// None of the IP router's elements are dead code (§6.3).
	if removed != 0 {
		t.Errorf("Undead removed %d elements from the IP router (%d -> %d)", removed, before, g.NumElements())
	}
}

func TestAlignPassInsertsAligns(t *testing.T) {
	g, ifs := parseIPRouter(t, 2)
	reg := elements.NewRegistry()
	res, err := AlignPass(g, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Devices deliver Ethernet frames word-aligned, so after Strip(14)
	// the IP header is off by two: one Align per interface input path.
	if res.Inserted != 2 {
		t.Errorf("inserted %d Aligns, want 2\n%s", res.Inserted, lang.Unparse(g))
	}
	if g.FindElement("AlignmentInfo@@") == -1 {
		t.Error("no AlignmentInfo element added")
	}
	if errs := Check(g, reg); len(errs) > 0 {
		t.Fatalf("aligned config has errors: %v", errs)
	}
	// Re-running is a no-op: the inserted Aligns satisfy everything.
	res2, err := AlignPass(g, reg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Inserted != 0 {
		t.Errorf("second pass inserted %d more Aligns", res2.Inserted)
	}

	// Behaviour preserved, and packets at CheckIPHeader's position are
	// word-aligned at runtime.
	r := buildRig(t, g, reg, 2)
	warmARP(r.rt, ifs)
	r.inject("eth0", testPacket(ifs))
	if len(r.devs["eth1"].tx) != 1 {
		t.Fatalf("aligned router forwarded %d packets", len(r.devs["eth1"].tx))
	}
}

func TestAlignRemovesRedundant(t *testing.T) {
	g, err := lang.ParseRouter(`
i :: InfiniteSource -> a1 :: Align(4, 0) -> a2 :: Align(4, 0) -> d :: Discard;
`, "t")
	if err != nil {
		t.Fatal(err)
	}
	res, err := AlignPass(g, elements.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed < 1 {
		t.Errorf("removed %d redundant Aligns, want >= 1\n%s", res.Removed, lang.Unparse(g))
	}
}

func TestAlignmentLattice(t *testing.T) {
	a42 := Alignment{4, 2}
	a40 := Alignment{4, 0}
	a20 := Alignment{2, 0}
	if got := a42.Shift(14); got != a40 {
		t.Errorf("shift(4/2, 14) = %v", got)
	}
	if got := a40.Shift(-14); got != a42 {
		t.Errorf("shift(4/0, -14) = %v", got)
	}
	if got := a40.Join(a42); got != a20 {
		t.Errorf("join(4/0, 4/2) = %v, want 2/0", got)
	}
	if got := a40.Join(Unreached); got != a40 {
		t.Errorf("join with unreached = %v", got)
	}
	if !a40.Satisfies(a20) {
		t.Error("4/0 should satisfy 2/0")
	}
	if a20.Satisfies(a40) {
		t.Error("2/0 should not satisfy 4/0")
	}
	if !(Alignment{8, 4}).Satisfies(a40) {
		t.Error("8/4 should satisfy 4/0")
	}
	if got := (Alignment{8, 1}).Join(Alignment{8, 5}); got != (Alignment{4, 1}) {
		t.Errorf("join(8/1, 8/5) = %v, want 4/1", got)
	}
}

func TestMinDriver(t *testing.T) {
	g, _ := parseIPRouter(t, 2)
	classes, src, err := MinDriver(g, elements.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ARPQuerier", "CheckIPHeader", "Classifier", "LookupIPRoute", "PollDevice", "Queue", "ToDevice"}
	for _, w := range want {
		found := false
		for _, c := range classes {
			if c == w {
				found = true
			}
		}
		if !found {
			t.Errorf("MinDriver missing %s (got %v)", w, classes)
		}
	}
	if !strings.Contains(src, "package mindriver") {
		t.Error("generated source malformed")
	}
}

func TestPretty(t *testing.T) {
	g, _ := parseIPRouter(t, 2)
	htmlOut := Pretty(g, "IP Router")
	for _, want := range []string{"<html>", "IP Router", "LookupIPRoute", "rt", "&rarr;"} {
		if !strings.Contains(htmlOut, want) {
			t.Errorf("pretty output missing %q", want)
		}
	}
	// Configs with special characters must be escaped.
	g2 := graph.New()
	g2.MustAddElement("x", "Classifier", "12/0800 <script>", "t")
	out := Pretty(g2, "t")
	if strings.Contains(out, "<script>") {
		t.Error("unescaped HTML in pretty output")
	}
}

// TestPrettyHostileNames: element names flow into both HTML text and
// href anchor fragments; hostile characters must survive neither raw in
// the markup nor unencoded in the URL fragment.
func TestPrettyHostileNames(t *testing.T) {
	g := graph.New()
	hostile := `a b&"<x>%`
	src := g.MustAddElement(hostile, "Null", `cfg "quoted" & <scr>`, "t")
	dst := g.MustAddElement("dst", "Discard", "", "t")
	g.Connect(src, 0, dst, 0)
	out := Pretty(g, `title & "quotes" <tag>`)
	for _, raw := range []string{"<x>", "<scr>", "<tag>", `"quoted"`} {
		if strings.Contains(out, raw) {
			t.Errorf("hostile string %q survived unescaped", raw)
		}
	}
	// The href fragment must be URL-escaped: space, '%', and '<' cannot
	// appear raw inside href="#e-...".
	if !strings.Contains(out, `href="#e-a%20b&amp;%22%3Cx%3E%25"`) {
		t.Errorf("href fragment not URL-escaped:\n%s", out)
	}
	// The visible anchor text keeps the name readable (HTML-escaped only).
	if !strings.Contains(out, `a b&amp;&#34;&lt;x&gt;%`) {
		t.Errorf("anchor text over-escaped:\n%s", out)
	}
}

func TestUndeadSplicesNull(t *testing.T) {
	g, err := lang.ParseRouter(`
i :: InfiniteSource -> n :: Null -> c :: Counter -> d :: Discard;
`, "t")
	if err != nil {
		t.Fatal(err)
	}
	reg := elements.NewRegistry()
	Undead(g, reg)
	if g.FindElement("n") != -1 {
		t.Error("Null survived undead")
	}
	src, ctr := g.FindElement("i"), g.FindElement("c")
	found := false
	for _, c := range g.OutputConns(src, 0) {
		if c.To == ctr {
			found = true
		}
	}
	if !found {
		t.Errorf("splice lost the connection:\n%s", lang.Unparse(g))
	}
	if errs := Check(g, reg); len(errs) > 0 {
		t.Errorf("spliced config invalid: %v", errs)
	}
}

func TestXformDeterministic(t *testing.T) {
	pairs, err := ParsePatterns(iprouter.ComboPatterns, "combo")
	if err != nil {
		t.Fatal(err)
	}
	var ref string
	for trial := 0; trial < 5; trial++ {
		g, _ := parseIPRouter(t, 4)
		Xform(g, pairs)
		g.SortConns()
		text := lang.Unparse(g)
		if trial == 0 {
			ref = text
			continue
		}
		if text != ref {
			t.Fatal("Xform output differs between runs on identical input")
		}
	}
}

func TestXformInternalFanoutPattern(t *testing.T) {
	// A pattern with an internal branching element: Tee feeding two
	// Counters, replaced by one Counter (contrived, but exercises the
	// matcher on non-chain shapes).
	src := `
elementclass P {
	input -> t :: Tee;
	t [0] -> a :: Counter -> output;
	t [1] -> b :: Counter -> [1] output;
}
elementclass P_Replacement {
	input -> t :: Tee;
	t [0] -> c :: Counter -> output;
	t [1] -> [1] output;
}
`
	pairs, err := ParsePatterns(src, "fanout")
	if err != nil {
		t.Fatal(err)
	}
	g, err := lang.ParseRouter(`
i :: InfiniteSource -> t :: Tee;
t [0] -> x :: Counter -> d0 :: Discard;
t [1] -> y :: Counter -> d1 :: Discard;
`, "t")
	if err != nil {
		t.Fatal(err)
	}
	if n := Xform(g, pairs); n != 1 {
		t.Fatalf("applied %d, want 1\n%s", n, lang.Unparse(g))
	}
	// One Counter remains, wired from the Tee to d0; d1 fed by Tee[1].
	counters := 0
	for _, i := range g.LiveIndices() {
		if g.Element(i).Class == "Counter" {
			counters++
		}
	}
	if counters != 1 {
		t.Errorf("%d Counters after replacement, want 1:\n%s", counters, lang.Unparse(g))
	}
	if errs := Check(g, elements.NewRegistry()); len(errs) > 0 {
		t.Errorf("result invalid: %v", errs)
	}
}

func TestXformNoFalsePositiveOnPortMismatch(t *testing.T) {
	// Pattern matches a[1]->b; config connects a[0]->b: no match.
	src := `
elementclass P {
	input -> a :: Tee;
	a [1] -> b :: Counter -> output;
	a [0] -> [1] output;
}
elementclass P_Replacement {
	input -> a :: Tee;
	a [1] -> c :: Null -> output;
	a [0] -> [1] output;
}
`
	pairs, err := ParsePatterns(src, "ports")
	if err != nil {
		t.Fatal(err)
	}
	g, _ := lang.ParseRouter(`
i :: InfiniteSource -> a :: Tee;
a [0] -> b :: Counter -> d0 :: Discard;
a [1] -> d1 :: Discard;
`, "t")
	if n := Xform(g, pairs); n != 0 {
		t.Errorf("port-mismatched pattern applied %d times", n)
	}
}

func TestXformScalesToThousandsOfElements(t *testing.T) {
	// §6.2: "click-xform takes about one minute to run several hundred
	// replacements on a router graph with thousands of elements". Our
	// machine budget is tighter: 300 pattern instances (3,3xx elements)
	// must finish in seconds.
	if testing.Short() {
		t.Skip("scalability test")
	}
	pairs, err := ParsePatterns(iprouter.ComboPatterns, "combo")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	const n = 300
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "s%d :: InfiniteSource -> Paint(%d) -> Strip(14) -> CheckIPHeader(10.0.0.255) -> GetIPAddress(16) -> dt%d :: DecIPTTL -> d%d :: Discard;\n",
			i, i%250+1, i, i)
	}
	g, err := lang.ParseRouter(b.String(), "big")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumElements() < 2000 {
		t.Fatalf("test graph too small: %d", g.NumElements())
	}
	start := time.Now()
	// Patterns 1+2 apply per chain: 600 replacements.
	applied := Xform(g, pairs)
	elapsed := time.Since(start)
	if applied != 2*n {
		t.Errorf("applied %d replacements, want %d", applied, 2*n)
	}
	t.Logf("%d replacements over %d elements in %v", applied, 7*n, elapsed)
	if elapsed > 60*time.Second {
		t.Errorf("xform took %v", elapsed)
	}
}

func TestUndeadCompoundStaticSwitch(t *testing.T) {
	// §6.3's motivating case: a compound element uses StaticSwitch to
	// select one of several paths from a configuration argument; the
	// untaken path is dead code only click-undead can remove.
	src := `
elementclass MaybeCount {
	$which |
	input -> sw :: StaticSwitch($which);
	sw [0] -> output;
	sw [1] -> c :: Counter -> output;
}
src :: InfiniteSource -> m :: MaybeCount(0) -> d :: Discard;
`
	g, err := lang.ParseRouter(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	reg := elements.NewRegistry()
	removed := Undead(g, reg)
	if removed == 0 {
		t.Fatal("nothing removed")
	}
	if g.FindElement("m/c") != -1 {
		t.Errorf("dead Counter survived:\n%s", lang.Unparse(g))
	}
	if g.FindElement("m/sw") != -1 {
		t.Error("StaticSwitch survived")
	}
	// The live path src -> d still exists.
	si, di := g.FindElement("src"), g.FindElement("d")
	ok := false
	for _, c := range g.OutputConns(si, 0) {
		if c.To == di {
			ok = true
		}
	}
	if !ok {
		t.Errorf("live path broken:\n%s", lang.Unparse(g))
	}
	if errs := Check(g, reg); len(errs) > 0 {
		t.Errorf("result invalid: %v", errs)
	}
}

func TestUndeadLeavesRuntimeSwitchAlone(t *testing.T) {
	// StaticSwitch is compile-time constant and gets spliced; Switch is
	// runtime-mutable (its port has a write handler) and must survive
	// click-undead.
	g, err := lang.ParseRouter(`
i :: InfiniteSource -> sw :: Switch(0);
sw [0] -> d0 :: Discard;
sw [1] -> d1 :: Discard;
`, "t")
	if err != nil {
		t.Fatal(err)
	}
	Undead(g, elements.NewRegistry())
	if g.FindElement("sw") < 0 {
		t.Error("runtime Switch was removed")
	}
	if g.FindElement("d1") < 0 {
		t.Error("runtime-selectable branch was removed")
	}
}

func TestFullChainOn32InterfaceRouter(t *testing.T) {
	// Stress: the complete optimizer chain over a 32-interface router
	// (673 elements) must stay correct and fast.
	if testing.Short() {
		t.Skip("stress test")
	}
	ifs := iprouter.Interfaces(32)
	g, err := lang.ParseRouter(iprouter.Config(ifs), "big")
	if err != nil {
		t.Fatal(err)
	}
	reg := elements.NewRegistry()
	start := time.Now()
	pairs, err := ParsePatterns(iprouter.ComboPatterns, "combo")
	if err != nil {
		t.Fatal(err)
	}
	if n := Xform(g, pairs); n != 96 { // 3 per interface
		t.Errorf("xform applied %d, want 96", n)
	}
	if err := FastClassifier(g, reg); err != nil {
		t.Fatal(err)
	}
	if err := Devirtualize(g, reg, nil); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("full chain over %d elements in %v", g.NumElements(), elapsed)
	if errs := CheckInstantiable(g, reg); len(errs) > 0 {
		t.Fatalf("optimized 32-interface router invalid: %v", errs[0])
	}
	// All 32 classifiers share one generated class (identical trees),
	// and analogous elements share devirtualized classes: the class
	// count must stay far below the element count.
	classes := map[string]bool{}
	for _, i := range g.LiveIndices() {
		classes[g.Element(i).Class] = true
	}
	if len(classes) > 25 {
		t.Errorf("%d distinct classes; sharing failed", len(classes))
	}
	if elapsed > 30*time.Second {
		t.Errorf("chain took %v", elapsed)
	}
}

func TestPacketsForRouterReachHost(t *testing.T) {
	// Figure 1's "to Linux" arrow: packets addressed to the router's
	// own interface address are delivered to ToHost, not forwarded.
	g, ifs := parseIPRouter(t, 2)
	r := buildRig(t, g, elements.NewRegistry(), 2)
	warmARP(r.rt, ifs)
	p := packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
		ifs[0].HostAddr, ifs[0].Addr, 1234, 7, make([]byte, 14))
	r.inject("eth0", p)
	th := r.rt.Find("th").(*elements.ToHost)
	if th.Count != 1 {
		t.Errorf("ToHost received %d packets, want 1", th.Count)
	}
	if len(r.devs["eth1"].tx)+len(r.devs["eth0"].tx) != 0 {
		t.Error("router-addressed packet was transmitted")
	}
}
