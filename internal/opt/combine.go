package opt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/lang"
)

// Combine and Uncombine implement click-combine/click-uncombine (§7.2):
// building one configuration that encapsulates several routers plus the
// links between them, so cross-router analyses and optimizations (like
// ARP elimination) can run; and splitting such a configuration back
// into its component routers.

// RouterInput names one router going into a combination.
type RouterInput struct {
	Name   string // prefix for element names ("a")
	Config *graph.Router
}

// Link describes one inter-router connection: fromRouter's
// ToDevice(fromDev) feeds toRouter's PollDevice/FromDevice(toDev).
type Link struct {
	FromRouter string
	FromDev    string
	ToRouter   string
	ToDev      string
}

// ParseLink parses "a.eth0 -> b.eth1".
func ParseLink(s string) (Link, error) {
	parts := strings.Split(s, "->")
	if len(parts) != 2 {
		return Link{}, fmt.Errorf("opt: bad link %q (want \"a.dev -> b.dev\")", s)
	}
	parse := func(side string) (string, string, error) {
		side = strings.TrimSpace(side)
		dot := strings.IndexByte(side, '.')
		if dot <= 0 || dot == len(side)-1 {
			return "", "", fmt.Errorf("opt: bad link endpoint %q", side)
		}
		return side[:dot], side[dot+1:], nil
	}
	fr, fd, err := parse(parts[0])
	if err != nil {
		return Link{}, err
	}
	tr, td, err := parse(parts[1])
	if err != nil {
		return Link{}, err
	}
	return Link{FromRouter: fr, FromDev: fd, ToRouter: tr, ToDev: td}, nil
}

// Combine merges routers into one configuration. Element names gain a
// "router/" prefix; each link's ToDevice and PollDevice pair is
// replaced by a RouterLink element named "router.dev-router.dev". A
// combine manifest is stored in the archive for Uncombine.
func Combine(routers []RouterInput, links []Link) (*graph.Router, error) {
	out := graph.New()
	elemOf := map[string]int{} // "router/name" -> index
	for _, r := range routers {
		if strings.ContainsAny(r.Name, "/. \t") || r.Name == "" {
			return nil, fmt.Errorf("opt: bad router name %q", r.Name)
		}
		g := r.Config.Clone()
		g.Compact()
		remap := make([]int, len(g.Elements))
		for i, e := range g.Elements {
			idx, err := out.AddElement(r.Name+"/"+e.Name, e.Class, e.Config, e.Landmark)
			if err != nil {
				return nil, err
			}
			remap[i] = idx
			elemOf[r.Name+"/"+e.Name] = idx
		}
		for _, c := range g.Conns {
			out.Connect(remap[c.From], c.FromPort, remap[c.To], c.ToPort)
		}
		for _, req := range g.Requirements {
			out.Require(req)
		}
	}

	var manifest strings.Builder
	for _, r := range routers {
		fmt.Fprintf(&manifest, "router %s\n", r.Name)
	}

	for _, l := range links {
		toDev, err := findDeviceElement(out, l.FromRouter, "ToDevice", l.FromDev)
		if err != nil {
			return nil, err
		}
		pollDev, err := findDeviceElement(out, l.ToRouter, "PollDevice", l.ToDev)
		if err != nil {
			// FromDevice is an alias in this driver.
			pollDev, err = findDeviceElement(out, l.ToRouter, "FromDevice", l.ToDev)
			if err != nil {
				return nil, err
			}
		}
		// The link name must survive an Unparse/Parse round trip (the
		// combined configuration is written to disk and read back by
		// click-uncombine), so it may only use identifier characters —
		// letters, digits, '_', '@', and '/'. The "link@" prefix keeps it
		// from matching any "<router>/" element prefix during extraction.
		linkName := fmt.Sprintf("link@%s/%s@%s/%s", l.FromRouter, l.FromDev, l.ToRouter, l.ToDev)
		li := out.MustAddElement(linkName, "RouterLink", "", "click-combine")
		// ToDevice pulled from its upstream; the RouterLink takes that
		// place (push input? ToDevice input is pull). RouterLink is a
		// queue (h/l): it cannot replace a Queue->ToDevice pair
		// directly — instead it *absorbs* the upstream Queue: the
		// queue's inputs feed the link, and the link feeds what the
		// peer's PollDevice fed.
		for _, c := range out.ConnsTo(toDev) {
			up := c.From
			if out.Element(up).Class == "Queue" {
				for _, qc := range out.ConnsTo(up) {
					out.Connect(qc.From, qc.FromPort, li, 0)
				}
				out.RemoveElement(up)
				fmt.Fprintf(&manifest, "absorbedqueue %s %s\n", linkName, l.FromRouter)
			} else {
				out.Connect(up, c.FromPort, li, 0)
			}
		}
		for _, c := range out.ConnsFrom(pollDev) {
			out.Connect(li, 0, c.To, c.ToPort)
		}
		out.RemoveElement(toDev)
		out.RemoveElement(pollDev)
		fmt.Fprintf(&manifest, "link %s %s %s %s %s\n", linkName, l.FromRouter, l.FromDev, l.ToRouter, l.ToDev)
	}
	out.Archive["combine/manifest"] = []byte(manifest.String())
	out.Require("combine")
	attachReport(out, &PassReport{
		Pass:            "combine",
		RoutersCombined: len(routers),
		LinksReplaced:   len(links),
	})
	return out, nil
}

// findDeviceElement locates "<router>/<anything> :: <class>(dev)".
func findDeviceElement(g *graph.Router, router, class, dev string) (int, error) {
	for _, i := range g.LiveIndices() {
		e := g.Element(i)
		if !strings.HasPrefix(e.Name, router+"/") || e.Class != class {
			continue
		}
		args := lang.SplitConfig(e.Config)
		if len(args) >= 1 && strings.TrimSpace(args[0]) == dev {
			return i, nil
		}
	}
	return -1, fmt.Errorf("opt: no %s(%s) in router %q", class, dev, router)
}

// Uncombine extracts one router from a combined configuration: elements
// named "<name>/..." are kept (prefix stripped), and each RouterLink
// the router touches is turned back into the ToDevice or PollDevice it
// replaced (restoring the absorbed Queue on the sending side).
func Uncombine(combined *graph.Router, name string) (*graph.Router, error) {
	manifest, ok := combined.Archive["combine/manifest"]
	if !ok {
		return nil, fmt.Errorf("opt: configuration has no combine manifest")
	}
	type linkInfo struct {
		fromRouter, fromDev, toRouter, toDev string
		absorbed                             bool
	}
	linkOf := map[string]*linkInfo{}
	seenRouter := false
	for _, line := range strings.Split(strings.TrimSpace(string(manifest)), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "router":
			if len(fields) == 2 && fields[1] == name {
				seenRouter = true
			}
		case "link":
			if len(fields) != 6 {
				return nil, fmt.Errorf("opt: bad manifest line %q", line)
			}
			li := linkOf[fields[1]]
			if li == nil {
				li = &linkInfo{}
				linkOf[fields[1]] = li
			}
			li.fromRouter, li.fromDev, li.toRouter, li.toDev = fields[2], fields[3], fields[4], fields[5]
		case "absorbedqueue":
			if len(fields) != 3 {
				return nil, fmt.Errorf("opt: bad manifest line %q", line)
			}
			li := linkOf[fields[1]]
			if li == nil {
				li = &linkInfo{}
				linkOf[fields[1]] = li
			}
			li.absorbed = true
		}
	}
	if !seenRouter {
		return nil, fmt.Errorf("opt: combined configuration has no router %q", name)
	}

	out := graph.New()
	prefix := name + "/"
	newIdx := map[int]int{}
	for _, i := range combined.LiveIndices() {
		e := combined.Element(i)
		if !strings.HasPrefix(e.Name, prefix) {
			continue
		}
		idx, err := out.AddElement(strings.TrimPrefix(e.Name, prefix), e.Class, e.Config, e.Landmark)
		if err != nil {
			return nil, err
		}
		newIdx[i] = idx
	}
	for _, c := range combined.Conns {
		fi, fok := newIdx[c.From]
		ti, tok := newIdx[c.To]
		if fok && tok {
			out.Connect(fi, c.FromPort, ti, c.ToPort)
		}
	}

	// Restore device elements at the router's ends of each link.
	linkNames := make([]string, 0, len(linkOf))
	for ln := range linkOf {
		linkNames = append(linkNames, ln)
	}
	sort.Strings(linkNames)
	for _, ln := range linkNames {
		li := linkOf[ln]
		lidx := combined.FindElement(ln)
		if lidx < 0 {
			continue
		}
		if li.fromRouter == name {
			// This router sends into the link: rebuild Queue ->
			// ToDevice fed by whatever feeds the link from our side.
			td := out.MustAddElement("", "ToDevice", li.fromDev, "click-uncombine")
			feed := td
			if li.absorbed {
				q := out.MustAddElement("", "Queue", "", "click-uncombine")
				out.Connect(q, 0, td, 0)
				feed = q
			}
			for _, c := range combined.ConnsTo(lidx) {
				if fi, ok := newIdx[c.From]; ok {
					out.Connect(fi, c.FromPort, feed, 0)
				}
			}
		}
		if li.toRouter == name {
			pd := out.MustAddElement("", "PollDevice", li.toDev, "click-uncombine")
			for _, c := range combined.ConnsFrom(lidx) {
				if ti, ok := newIdx[c.To]; ok {
					out.Connect(pd, 0, ti, c.ToPort)
				}
			}
		}
	}
	for _, req := range combined.Requirements {
		if req != "combine" {
			out.Require(req)
		}
	}
	return out, nil
}
