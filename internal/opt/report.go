package opt

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// PassReport is the structured diagnostic summary an optimization tool
// leaves behind: what it did to the configuration, in machine-readable
// form. Each pass attaches its report to the configuration archive under
// "reports/<pass>", so reports survive WriteConfig/ReadConfig round
// trips and ride along with the optimized configuration exactly like
// generated source does. Only the fields a pass populates appear in the
// JSON; the rest are omitted.
type PassReport struct {
	Pass string `json:"pass"`
	// click-undead.
	ElementsRemoved int      `json:"elements_removed,omitempty"`
	Removed         []string `json:"removed,omitempty"`
	// click-devirtualize and click-fastclassifier.
	ClassesGenerated    int                 `json:"classes_generated,omitempty"`
	ElementsSpecialized int                 `json:"elements_specialized,omitempty"`
	Classes             map[string][]string `json:"classes,omitempty"`
	// click-fastclassifier.
	ClassifiersCombined int `json:"classifiers_combined,omitempty"`
	// click-xform.
	Replacements  int            `json:"replacements,omitempty"`
	PatternCounts map[string]int `json:"pattern_counts,omitempty"`
	// click-combine.
	RoutersCombined int `json:"routers_combined,omitempty"`
	LinksReplaced   int `json:"links_replaced,omitempty"`
	// click-fuse.
	RunsFused     int `json:"runs_fused,omitempty"`
	ElementsFused int `json:"elements_fused,omitempty"`
	TreeNodes     int `json:"tree_nodes,omitempty"`
	DiagramNodes  int `json:"diagram_nodes,omitempty"`
	// flowcache install pass.
	FlowIngresses int `json:"flow_ingresses,omitempty"`
	FlowTaps      int `json:"flow_taps,omitempty"`
	// adaptive re-optimization controller.
	PassesApplied []string `json:"passes_applied,omitempty"`
	Reasons       []string `json:"reasons,omitempty"`
}

// reportPrefix is the archive namespace pass reports live under.
const reportPrefix = "reports/"

// attachReport stores a pass report in the configuration archive,
// replacing any report a previous run of the same pass left.
func attachReport(g *graph.Router, r *PassReport) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return // no marshal-hostile fields exist in PassReport
	}
	g.Archive[reportPrefix+r.Pass] = append(data, '\n')
}

// Reports reads back every pass report a configuration carries, sorted
// by pass name.
func Reports(g *graph.Router) ([]*PassReport, error) {
	var names []string
	for n := range g.Archive {
		if strings.HasPrefix(n, reportPrefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var reps []*PassReport
	for _, n := range names {
		r := &PassReport{}
		if err := json.Unmarshal(g.Archive[n], r); err != nil {
			return nil, fmt.Errorf("opt: bad pass report %q: %v", n, err)
		}
		reps = append(reps, r)
	}
	return reps, nil
}
