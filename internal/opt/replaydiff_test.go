package opt

// Golden-trace replay harness: the committed pcap fixtures under
// testdata/traces/ replay through real packet-I/O backends
// (internal/io's Pcap devices) instead of the in-memory fakeDevice, and
// the capture files each run produces must be byte-for-byte identical
// across every optimizer pass and every execution mode. Because capture
// timestamps are a deterministic counter, byte-equality of the pcap
// streams is exactly packet-for-packet equality of the transmitted
// sequences — the same oracle `click -backend pcap` exposes from the
// command line.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	pktio "repro/internal/io"
	"repro/internal/iprouter"
	"repro/internal/lang"
)

const (
	ipMixedTrace  = "../../testdata/traces/ip_mixed.pcap"
	udpPortsTrace = "../../testdata/traces/udp_ports.pcap"
	iprouter8Conf = "../../configs/iprouter8.click"
)

// loadTrace reads a committed fixture.
func loadTrace(t *testing.T, path string) []pktio.Record {
	t.Helper()
	recs, err := pktio.ReadPcapFile(path)
	if err != nil {
		t.Fatalf("fixture %s: %v", path, err)
	}
	if len(recs) == 0 {
		t.Fatalf("fixture %s is empty", path)
	}
	return recs
}

// replayRun parses the configuration, optionally applies a pass, builds
// the router over Pcap-backed devices eth0..eth<ndev-1> (the replay
// feeding eth0, a per-device capture sink on every device), runs to
// idle, and returns each device's raw capture stream.
func replayRun(t *testing.T, text string, ndev int,
	pass func(*graph.Router, *core.Registry) error,
	burst, workers int, ifs []iprouter.Interface, recs []pktio.Record) map[string][]byte {
	t.Helper()
	g, err := lang.ParseRouter(text, "replaydiff")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	reg := elements.NewRegistry()
	if pass != nil {
		if err := pass(g, reg); err != nil {
			t.Fatalf("pass: %v", err)
		}
	}
	env := map[string]interface{}{}
	bufs := map[string]*bytes.Buffer{}
	for i := 0; i < ndev; i++ {
		name := fmt.Sprintf("eth%d", i)
		buf := &bytes.Buffer{}
		sink, err := pktio.NewCaptureSink(buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		var src []pktio.Record
		if i == 0 {
			src = recs
		}
		bufs[name] = buf
		env["device:"+name] = pktio.NewDevice(name, pktio.NewPcap(src, sink))
	}
	rt, err := core.Build(g, reg, core.BuildOptions{Env: env, Burst: burst})
	if err != nil {
		t.Fatalf("build: %v\n%s", err, lang.Unparse(g))
	}
	if ifs != nil {
		warmARP(rt, ifs)
	}
	if workers > 1 {
		if _, err := rt.RunParallelUntilIdle(workers, 100000); err != nil {
			t.Fatalf("parallel run: %v", err)
		}
	} else {
		rt.RunUntilIdle(100000)
	}
	out := map[string][]byte{}
	for name, buf := range bufs {
		out[name] = buf.Bytes()
	}
	return out
}

// replayCompare asserts two per-device capture sets are byte-identical,
// dumping both sides to $REPLAY_ARTIFACT_DIR when set (the CI step
// uploads that directory on failure).
func replayCompare(t *testing.T, label string, want, got map[string][]byte) {
	t.Helper()
	for dev, ws := range want {
		gs := got[dev]
		if bytes.Equal(ws, gs) {
			continue
		}
		wn, _ := pktio.ReadPcap(bytes.NewReader(ws))
		gn, _ := pktio.ReadPcap(bytes.NewReader(gs))
		t.Errorf("%s: %s capture differs (%d vs %d frames, %d vs %d bytes)",
			label, dev, len(wn), len(gn), len(ws), len(gs))
		dumpCapture(t, label, dev+"-want", ws)
		dumpCapture(t, label, dev+"-got", gs)
	}
}

// dumpCapture writes a diverging capture where CI can collect it.
func dumpCapture(t *testing.T, label, name string, data []byte) {
	dir := os.Getenv("REPLAY_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%s.pcap", label, name))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Logf("artifact %s: %v", path, err)
		return
	}
	t.Logf("diverging capture saved to %s", path)
}

// TestReplayFixtures sanity-checks the committed fixtures: frame
// counts, parseability, and the deterministic counter timestamps the
// byte-equality oracle depends on.
func TestReplayFixtures(t *testing.T) {
	for _, fx := range []struct {
		path   string
		frames int
	}{
		{ipMixedTrace, 38},
		{udpPortsTrace, 60},
	} {
		recs := loadTrace(t, fx.path)
		if len(recs) != fx.frames {
			t.Errorf("%s: %d frames, want %d", fx.path, len(recs), fx.frames)
		}
		for i, r := range recs {
			if r.TSNanos != int64(i)*1e3 {
				t.Errorf("%s record %d: timestamp %d, want counter %d", fx.path, i, r.TSNanos, int64(i)*1e3)
				break
			}
		}
	}
}

// TestReplayGoldenIPRouter8 replays the mixed IP trace through the
// committed 8-interface router configuration and asserts every
// optimizer pass and every execution mode leaves all eight capture
// files byte-identical to the unoptimized scalar run.
func TestReplayGoldenIPRouter8(t *testing.T) {
	confText, err := os.ReadFile(iprouter8Conf)
	if err != nil {
		t.Fatal(err)
	}
	text := string(confText)
	ifs := iprouter.Interfaces(8)
	recs := loadTrace(t, ipMixedTrace)

	base := replayRun(t, text, 8, nil, 0, 1, ifs, recs)
	baseFrames := 0
	for dev, capt := range base {
		rs, err := pktio.ReadPcap(bytes.NewReader(capt))
		if err != nil {
			t.Fatalf("baseline %s capture unreadable: %v", dev, err)
		}
		baseFrames += len(rs)
	}
	if baseFrames == 0 {
		t.Fatal("baseline replay transmitted nothing")
	}
	t.Logf("baseline: %d frames in, %d frames captured", len(recs), baseFrames)

	passes := append([]struct {
		name  string
		apply func(g *graph.Router, reg *core.Registry) error
	}{{"none", nil}}, diffPasses...)
	for _, p := range passes {
		for _, m := range append([]struct {
			name    string
			burst   int
			workers int
		}{{"scalar", 0, 1}}, diffModes...) {
			label := fmt.Sprintf("iprouter8-%s-%s", p.name, m.name)
			got := replayRun(t, text, 8, p.apply, m.burst, m.workers, ifs, recs)
			replayCompare(t, label, base, got)
		}
	}
}

// TestReplayGoldenRandomConfigs replays the committed port-steering
// trace through the random-configuration corpus, asserting the same
// byte-identical-captures property across passes and modes.
func TestReplayGoldenRandomConfigs(t *testing.T) {
	recs := loadTrace(t, udpPortsTrace)
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			text, sinks := randomPushConfig(seed)
			ndev := sinks + 1
			base := replayRun(t, text, ndev, nil, 0, 1, nil, recs)
			total := 0
			for _, capt := range base {
				rs, _ := pktio.ReadPcap(bytes.NewReader(capt))
				total += len(rs)
			}
			if total == 0 {
				t.Fatalf("seed %d forwarded nothing:\n%s", seed, text)
			}
			for _, p := range diffPasses {
				got := replayRun(t, text, ndev, p.apply, 0, 1, nil, recs)
				replayCompare(t, "seed-"+p.name, base, got)
			}
			for _, m := range diffModes {
				got := replayRun(t, text, ndev, nil, m.burst, m.workers, nil, recs)
				replayCompare(t, "seed-"+m.name, base, got)
			}
		})
	}
}

// replayRunAggregate is replayRun with one shared capture sink across
// every device — the `click -backend pcap -pcap-out file` shape. The
// aggregate interleave is only deterministic on the scalar scheduler,
// which is what the CLI acceptance path runs.
func replayRunAggregate(t *testing.T, text string, ndev int,
	pass func(*graph.Router, *core.Registry) error,
	ifs []iprouter.Interface, recs []pktio.Record) []byte {
	t.Helper()
	g, err := lang.ParseRouter(text, "replaydiff")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	reg := elements.NewRegistry()
	if pass != nil {
		if err := pass(g, reg); err != nil {
			t.Fatalf("pass: %v", err)
		}
	}
	buf := &bytes.Buffer{}
	sink, err := pktio.NewCaptureSink(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]interface{}{}
	for i := 0; i < ndev; i++ {
		name := fmt.Sprintf("eth%d", i)
		var src []pktio.Record
		if i == 0 {
			src = recs
		}
		env["device:"+name] = pktio.NewDevice(name, pktio.NewPcap(src, sink))
	}
	rt, err := core.Build(g, reg, core.BuildOptions{Env: env})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if ifs != nil {
		warmARP(rt, ifs)
	}
	rt.RunUntilIdle(100000)
	return buf.Bytes()
}

// TestReplayCLIAggregate asserts the exact property the acceptance
// command checks: one aggregate capture of the 8-interface router over
// the mixed trace is byte-identical with and without each optimizer
// pass (fuse and flowcache included).
func TestReplayCLIAggregate(t *testing.T) {
	confText, err := os.ReadFile(iprouter8Conf)
	if err != nil {
		t.Fatal(err)
	}
	text := string(confText)
	ifs := iprouter.Interfaces(8)
	recs := loadTrace(t, ipMixedTrace)

	base := replayRunAggregate(t, text, 8, nil, ifs, recs)
	if n, _ := pktio.ReadPcap(bytes.NewReader(base)); len(n) == 0 {
		t.Fatal("aggregate baseline captured nothing")
	}
	for _, p := range diffPasses {
		got := replayRunAggregate(t, text, 8, p.apply, ifs, recs)
		if !bytes.Equal(base, got) {
			t.Errorf("aggregate capture differs under %s", p.name)
			dumpCapture(t, "aggregate-"+p.name, "want", base)
			dumpCapture(t, "aggregate-"+p.name, "got", got)
		}
	}
}
