package lang

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// FuzzParse checks the parse → unparse → parse round trip on arbitrary
// input: any text the parser accepts must unparse to text that parses
// back to an isomorphic graph (same elements by name/class/config, same
// connections, same requirements). This is the §5.2 contract the
// optimizer tools rely on when they rewrite configurations. The corpus
// is seeded with the shipped configurations.
func FuzzParse(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "configs", "*.click"))
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("a :: A; b :: B(1, 2); a -> b;")
	f.Add("elementclass P { input -> Null -> output; }\nx :: P; y :: P;\nx -> y -> x;")
	f.Add("require(fastclassifier);\nc :: Classifier(12/0806, -);\nc [1] -> Discard;\nc -> Discard;")

	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseRouter(src, "fuzz")
		if err != nil {
			return // rejecting malformed input is fine
		}
		text := Unparse(g)
		g2, err := ParseRouter(text, "fuzz-reparse")
		if err != nil {
			t.Fatalf("unparse output does not reparse: %v\ninput: %q\nunparsed:\n%s", err, src, text)
		}
		assertIsomorphic(t, g, g2, src, text)
	})
}

// assertIsomorphic fails the test unless g2 has exactly the elements,
// connections, and requirements of g (matching elements by name).
func assertIsomorphic(t *testing.T, g, g2 *graph.Router, src, text string) {
	t.Helper()
	fail := func(format string, args ...interface{}) {
		t.Helper()
		t.Fatalf(format+"\ninput: %q\nunparsed:\n%s", append(args, src, text)...)
	}
	if g.NumElements() != g2.NumElements() {
		fail("element count %d -> %d", g.NumElements(), g2.NumElements())
	}
	if len(g.Conns) != len(g2.Conns) {
		fail("conn count %d -> %d", len(g.Conns), len(g2.Conns))
	}
	if len(g.Requirements) != len(g2.Requirements) {
		fail("requirements %v -> %v", g.Requirements, g2.Requirements)
	}
	for _, i := range g.LiveIndices() {
		e := g.Element(i)
		j := g2.FindElement(e.Name)
		if j < 0 {
			fail("element %q lost", e.Name)
		}
		e2 := g2.Element(j)
		if e2.Class != e.Class || e2.Config != e.Config {
			fail("element %q changed: %s(%s) -> %s(%s)",
				e.Name, e.Class, e.Config, e2.Class, e2.Config)
		}
	}
	for _, c := range g.Conns {
		f2 := g2.FindElement(g.Element(c.From).Name)
		t2 := g2.FindElement(g.Element(c.To).Name)
		found := false
		for _, c2 := range g2.Conns {
			if c2.From == f2 && c2.FromPort == c.FromPort && c2.To == t2 && c2.ToPort == c.ToPort {
				found = true
				break
			}
		}
		if !found {
			fail("connection %s[%d]->[%d]%s lost",
				g.Element(c.From).Name, c.FromPort, c.ToPort, g.Element(c.To).Name)
		}
	}
}
