package lang

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestUnparseRoundTripProperty generates random router graphs, unparses
// them, reparses the text, and checks graph isomorphism (by element
// name). This is the property §5.2 demands of the language: optimizers
// may arbitrarily transform graphs and must be able to emit
// Click-language files corresponding exactly to the results.
func TestUnparseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20020701))
	classes := []string{"A", "B", "C", "Dlong", "E2"}
	configs := []string{"", "1", "10.0.0.1, 00:02:03:04:05:06", "12/0806 20/0001, -", "a b c"}

	for trial := 0; trial < 200; trial++ {
		g := graph.New()
		n := 2 + rng.Intn(12)
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("e%d", i)
			if rng.Intn(4) == 0 {
				name = "" // anonymous
			}
			g.MustAddElement(name, classes[rng.Intn(len(classes))], configs[rng.Intn(len(configs))], "gen")
		}
		nconn := rng.Intn(2 * n)
		for i := 0; i < nconn; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			g.Connect(from, rng.Intn(3), to, rng.Intn(3))
		}

		text := Unparse(g)
		g2, err := ParseRouter(text, "roundtrip")
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\n%s", trial, err, text)
		}
		if g.NumElements() != g2.NumElements() {
			t.Fatalf("trial %d: element count %d -> %d\n%s", trial, g.NumElements(), g2.NumElements(), text)
		}
		if len(g.Conns) != len(g2.Conns) {
			t.Fatalf("trial %d: conn count %d -> %d\n%s", trial, len(g.Conns), len(g2.Conns), text)
		}
		for _, i := range g.LiveIndices() {
			e := g.Element(i)
			j := g2.FindElement(e.Name)
			if j < 0 {
				t.Fatalf("trial %d: element %q lost\n%s", trial, e.Name, text)
			}
			e2 := g2.Element(j)
			if e2.Class != e.Class || e2.Config != e.Config {
				t.Fatalf("trial %d: element %q changed: %s(%s) -> %s(%s)",
					trial, e.Name, e.Class, e.Config, e2.Class, e2.Config)
			}
		}
		for _, c := range g.Conns {
			f2 := g2.FindElement(g.Element(c.From).Name)
			t2 := g2.FindElement(g.Element(c.To).Name)
			found := false
			for _, c2 := range g2.Conns {
				if c2.From == f2 && c2.FromPort == c.FromPort && c2.To == t2 && c2.ToPort == c.ToPort {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: connection %s[%d]->[%d]%s lost\n%s",
					trial, g.Element(c.From).Name, c.FromPort, c.ToPort, g.Element(c.To).Name, text)
			}
		}
	}
}

// TestUnparseRoundTripWithArchive checks that requirements survive the
// textual round trip (archives are byte-level and tested in
// archive tests).
func TestUnparseRoundTripWithArchive(t *testing.T) {
	g := graph.New()
	a := g.MustAddElement("a", "X", "", "")
	b := g.MustAddElement("b", "Y", "", "")
	g.Connect(a, 0, b, 0)
	g.Require("fastclassifier")
	g.Require("devirtualize")
	g2, err := ParseRouter(Unparse(g), "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Requirements) != 2 {
		t.Errorf("requirements = %v", g2.Requirements)
	}
}
