package lang

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The archive feature (§5.2): a configuration may consist of multiple
// files bundled into a single archive. Tools like click-fastclassifier
// attach generated source code specialized for a single configuration;
// the driver compiles and loads that code before parsing the
// configuration itself. Click uses the Unix ar(1) format; so do we.
//
// The member named "config" holds the router configuration.

const arMagic = "!<arch>\n"

// ArchiveMember is one file in an archive.
type ArchiveMember struct {
	Name string
	Data []byte
}

// IsArchive reports whether data looks like an ar archive.
func IsArchive(data []byte) bool {
	return len(data) >= len(arMagic) && string(data[:len(arMagic)]) == arMagic
}

// ReadArchive parses a Unix ar archive. Member names longer than 15
// bytes use the BSD "#1/<len>" extension.
func ReadArchive(data []byte) ([]ArchiveMember, error) {
	if !IsArchive(data) {
		return nil, fmt.Errorf("lang: not an archive")
	}
	var members []ArchiveMember
	pos := len(arMagic)
	for pos < len(data) {
		if pos+60 > len(data) {
			return nil, fmt.Errorf("lang: truncated archive header at offset %d", pos)
		}
		hdr := data[pos : pos+60]
		if hdr[58] != 0x60 || hdr[59] != 0x0a {
			return nil, fmt.Errorf("lang: bad archive header magic at offset %d", pos)
		}
		name := strings.TrimRight(string(hdr[0:16]), " ")
		sizeStr := strings.TrimRight(string(hdr[48:58]), " ")
		size, err := strconv.Atoi(sizeStr)
		if err != nil || size < 0 {
			return nil, fmt.Errorf("lang: bad archive member size %q", sizeStr)
		}
		pos += 60
		body := data[pos:]
		if len(body) < size {
			return nil, fmt.Errorf("lang: truncated archive member %q", name)
		}
		body = body[:size]
		if strings.HasPrefix(name, "#1/") {
			nameLen, err := strconv.Atoi(name[3:])
			if err != nil || nameLen < 0 || nameLen > len(body) {
				return nil, fmt.Errorf("lang: bad BSD long name header %q", name)
			}
			name = strings.TrimRight(string(body[:nameLen]), "\x00")
			body = body[nameLen:]
		}
		name = strings.TrimSuffix(name, "/") // GNU style stores "name/"
		members = append(members, ArchiveMember{Name: name, Data: append([]byte(nil), body...)})
		pos += size
		if size%2 == 1 { // members are 2-byte aligned
			pos++
		}
	}
	return members, nil
}

// WriteArchive serializes members into a Unix ar archive.
func WriteArchive(members []ArchiveMember) []byte {
	var b bytes.Buffer
	b.WriteString(arMagic)
	for _, m := range members {
		name := m.Name
		data := m.Data
		if len(name) > 15 {
			// BSD long-name extension: name stored at the start of the
			// member body.
			pad := (4 - len(name)%4) % 4
			stored := name + strings.Repeat("\x00", pad)
			hdrName := fmt.Sprintf("#1/%d", len(stored))
			writeArHeader(&b, hdrName, len(stored)+len(data))
			b.WriteString(stored)
			b.Write(data)
			if (len(stored)+len(data))%2 == 1 {
				b.WriteByte('\n')
			}
			continue
		}
		writeArHeader(&b, name, len(data))
		b.Write(data)
		if len(data)%2 == 1 {
			b.WriteByte('\n')
		}
	}
	return b.Bytes()
}

func writeArHeader(b *bytes.Buffer, name string, size int) {
	fmt.Fprintf(b, "%-16s%-12s%-6s%-6s%-8s%-10d`\n", name, "0", "0", "0", "100644", size)
}

// UnpackConfig splits configuration input into the configuration text
// and any archive members. Plain text input yields the text itself and
// no members; archive input must contain a "config" member.
func UnpackConfig(data []byte) (config string, extra []ArchiveMember, err error) {
	if !IsArchive(data) {
		return string(data), nil, nil
	}
	members, err := ReadArchive(data)
	if err != nil {
		return "", nil, err
	}
	found := false
	for _, m := range members {
		if m.Name == "config" {
			config = string(m.Data)
			found = true
		} else {
			extra = append(extra, m)
		}
	}
	if !found {
		return "", nil, fmt.Errorf("lang: archive has no \"config\" member")
	}
	return config, extra, nil
}

// PackConfig bundles configuration text with extra members. With no
// extra members it returns the plain text.
func PackConfig(config string, extra []ArchiveMember) []byte {
	if len(extra) == 0 {
		return []byte(config)
	}
	members := []ArchiveMember{{Name: "config", Data: []byte(config)}}
	sorted := append([]ArchiveMember(nil), extra...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	members = append(members, sorted...)
	return WriteArchive(members)
}
