package lang

// File is a parsed configuration file: an ordered list of statements
// plus any compound element class definitions.
type File struct {
	Stmts        []Stmt
	Requirements []string
}

// Stmt is a configuration statement.
type Stmt interface{ stmt() }

// DeclStmt declares one or more elements of a class:
// "name1, name2 :: Class(config)".
type DeclStmt struct {
	Names  []string
	Class  string
	Config string
	Line   int
}

// ConnStmt is a connection chain "a [1] -> [0] b -> c". Each End may
// carry an inline declaration (anonymous or named).
type ConnStmt struct {
	Ends []ConnEnd
	Line int
}

// ConnEnd is one endpoint in a connection chain.
type ConnEnd struct {
	// Name refers to a previously declared element, unless Decl is
	// non-nil, in which case this end declares the element inline.
	Name string
	Decl *DeclStmt
	// InPort is the "[n]" before the element (port packets arrive on);
	// OutPort is the "[n]" after it. -1 means unspecified.
	InPort  int
	OutPort int
}

// ClassDefStmt defines a compound element class:
// "elementclass Name { $a | body }".
type ClassDefStmt struct {
	Name    string
	Formals []string // "$a", "$b"; empty if no formals clause
	Body    *File
	Line    int
}

// RequireStmt records a "require(feature)" statement.
type RequireStmt struct {
	Feature string
	Line    int
}

func (*DeclStmt) stmt()     {}
func (*ConnStmt) stmt()     {}
func (*ClassDefStmt) stmt() {}
func (*RequireStmt) stmt()  {}

type parser struct {
	lx   *lexer
	tok  token
	peek *token
}

// Parse parses Click-language source into a File. The file name is used
// in error messages only.
func Parse(src, file string) (*File, error) {
	p := &parser{lx: newLexer(src, file)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseFile(tokEOF)
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (token, error) {
	if p.peek == nil {
		t, err := p.lx.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return p.lx.errorf(p.tok.line, p.tok.col, format, args...)
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errorf("expected %v, found %v", k, p.tok.kind)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// parseFile parses statements until the given terminator (tokEOF at top
// level, tokRBrace inside a compound body).
func (p *parser) parseFile(until tokenKind) (*File, error) {
	f := &File{}
	for {
		if p.tok.kind == tokSemi {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		if p.tok.kind == until {
			return f, nil
		}
		if p.tok.kind == tokEOF {
			return nil, p.errorf("expected %v before end of file", until)
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if rq, ok := st.(*RequireStmt); ok {
			f.Requirements = append(f.Requirements, rq.Feature)
		}
		f.Stmts = append(f.Stmts, st)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	switch p.tok.kind {
	case tokElementclass:
		return p.parseClassDef()
	case tokRequire:
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		cfg, err := p.expect(tokLParen)
		if err != nil {
			return nil, err
		}
		return &RequireStmt{Feature: cfg.text, Line: line}, nil
	case tokIdent, tokLBracket, tokDollarIdent:
		return p.parseConnectionOrDecl()
	}
	return nil, p.errorf("expected element declaration or connection, found %v", p.tok.kind)
}

func (p *parser) parseClassDef() (Stmt, error) {
	line := p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	// Check for a formals clause "$a, $b |".
	var formals []string
	if p.tok.kind == tokDollarIdent {
		// Look ahead: formals end with '|'. We must distinguish
		// "$a | ..." (formals) from a body that merely starts with a
		// '$' token, which our grammar doesn't otherwise allow, so a
		// leading $ always means formals.
		for {
			if p.tok.kind != tokDollarIdent {
				return nil, p.errorf("expected '$' formal parameter, found %v", p.tok.kind)
			}
			formals = append(formals, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokBar); err != nil {
			return nil, err
		}
	}
	body, err := p.parseFile(tokRBrace)
	if err != nil {
		return nil, err
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	return &ClassDefStmt{Name: name.text, Formals: formals, Body: body, Line: line}, nil
}

// parseConnectionOrDecl handles both declarations and connection chains,
// which share a prefix ("name ..." may continue ":: Class" or "->").
func (p *parser) parseConnectionOrDecl() (Stmt, error) {
	line := p.tok.line
	end, multi, err := p.parseConnEnd(true)
	if err != nil {
		return nil, err
	}
	if multi != nil {
		// "a, b :: Class" multiple declaration; already complete.
		return multi, nil
	}
	if p.tok.kind != tokArrow {
		// A bare declaration statement.
		if end.Decl != nil && end.InPort < 0 && end.OutPort < 0 {
			return end.Decl, nil
		}
		if end.Decl == nil && end.InPort < 0 && end.OutPort < 0 {
			return nil, p.errorf("expected '->' or '::' after element %q", end.Name)
		}
		return nil, p.errorf("dangling port specification")
	}
	conn := &ConnStmt{Ends: []ConnEnd{end}, Line: line}
	for p.tok.kind == tokArrow {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, multi, err := p.parseConnEnd(false)
		if err != nil {
			return nil, err
		}
		if multi != nil {
			return nil, p.errorf("multiple declaration cannot appear in a connection")
		}
		conn.Ends = append(conn.Ends, next)
	}
	return conn, nil
}

// parseConnEnd parses "[port] name-or-class [port]" optionally with an
// inline ":: Class(config)" declaration or "Class(config)" anonymous
// declaration. If allowMulti and the element turns out to be a multiple
// declaration ("a, b :: C"), it returns (zero, declStmt, nil).
func (p *parser) parseConnEnd(allowMulti bool) (ConnEnd, *DeclStmt, error) {
	end := ConnEnd{InPort: -1, OutPort: -1}
	if p.tok.kind == tokLBracket {
		port, err := p.parsePort()
		if err != nil {
			return end, nil, err
		}
		end.InPort = port
	}
	if p.tok.kind != tokIdent {
		return end, nil, p.errorf("expected element name or class, found %v", p.tok.kind)
	}
	first := p.tok
	if err := p.advance(); err != nil {
		return end, nil, err
	}

	switch p.tok.kind {
	case tokComma:
		if !allowMulti {
			return end, nil, p.errorf("unexpected ','")
		}
		// Multiple declaration: "a, b, c :: Class(config)".
		names := []string{first.text}
		for p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return end, nil, err
			}
			n, err := p.expect(tokIdent)
			if err != nil {
				return end, nil, err
			}
			names = append(names, n.text)
		}
		if _, err := p.expect(tokColonColon); err != nil {
			return end, nil, err
		}
		class, err := p.expect(tokIdent)
		if err != nil {
			return end, nil, err
		}
		config := ""
		if p.tok.kind == tokLParen {
			config = p.tok.text
			if err := p.advance(); err != nil {
				return end, nil, err
			}
		}
		return end, &DeclStmt{Names: names, Class: class.text, Config: config, Line: first.line}, nil

	case tokColonColon:
		// Named inline declaration: "name :: Class(config)".
		if err := p.advance(); err != nil {
			return end, nil, err
		}
		class, err := p.expect(tokIdent)
		if err != nil {
			return end, nil, err
		}
		config := ""
		if p.tok.kind == tokLParen {
			config = p.tok.text
			if err := p.advance(); err != nil {
				return end, nil, err
			}
		}
		end.Name = first.text
		end.Decl = &DeclStmt{Names: []string{first.text}, Class: class.text, Config: config, Line: first.line}

	case tokLParen:
		// Anonymous declaration: "Class(config)". The element name is
		// assigned during elaboration.
		end.Decl = &DeclStmt{Names: []string{""}, Class: first.text, Config: p.tok.text, Line: first.line}
		if err := p.advance(); err != nil {
			return end, nil, err
		}

	default:
		// Plain reference — or an anonymous element without a config
		// string ("... -> Discard;"). The elaborator decides: a name
		// that matches a declared element is a reference; otherwise,
		// if it matches a known class, it is anonymous. We record it
		// as a name and let elaboration resolve.
		end.Name = first.text
	}

	if p.tok.kind == tokLBracket {
		port, err := p.parsePort()
		if err != nil {
			return end, nil, err
		}
		end.OutPort = port
	}
	return end, nil, nil
}

func (p *parser) parsePort() (int, error) {
	if _, err := p.expect(tokLBracket); err != nil {
		return 0, err
	}
	num, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return 0, err
	}
	n := 0
	for i := 0; i < len(num.text); i++ {
		n = n*10 + int(num.text[i]-'0')
	}
	return n, nil
}
