// Package lang implements the Click router configuration language: a
// lexer and parser producing an AST, an elaborator that instantiates
// declarations and compound element classes into a router graph, an
// unparser that regenerates configuration text from a graph, and the
// archive format used to bundle generated element source with a
// configuration.
//
// The language is deliberately static and declarative (paper §5.2): its
// sole function is to describe a set of elements and the connections
// between them, which is what makes standalone optimizer tools possible.
// The grammar understood here:
//
//	name :: Class(config);          // declaration
//	n1, n2 :: Class;                // multiple declaration
//	a -> b -> c;                    // connections
//	a [1] -> [0] b;                 // with explicit ports
//	Class(config) -> b;             // anonymous element
//	elementclass Name { ... };      // compound class
//	elementclass Name { $a | ... }; // compound class with formals
//	input / output                  // compound pseudoelements
//	require(feature);               // requirement statement
//
// Comments are // and /* */. Config strings are kept raw (elements parse
// their own configuration, as in Click); the parser tracks nesting and
// quoting only to find the closing parenthesis.
package lang

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokColonColon // ::
	tokArrow      // ->
	tokComma
	tokSemi
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokLParen // only at a config-string position; the lexer returns the raw config as the token text
	tokBar    // |
	tokDollarIdent
	tokElementclass
	tokRequire
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of file"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokColonColon:
		return "'::'"
	case tokArrow:
		return "'->'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLParen:
		return "configuration string"
	case tokBar:
		return "'|'"
	case tokDollarIdent:
		return "'$' parameter"
	case tokElementclass:
		return "'elementclass'"
	case tokRequire:
		return "'require'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// Error is a configuration language error with source position.
type Error struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	file string
	pos  int
	line int
	col  int
}

func newLexer(src, file string) *lexer {
	return &lexer{src: src, file: file, line: 1, col: 1}
}

func (lx *lexer) errorf(line, col int, format string, args ...interface{}) *Error {
	return &Error{File: lx.file, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() (byte, bool) {
	if lx.pos >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.pos], true
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// skipSpace consumes whitespace and comments.
func (lx *lexer) skipSpace() error {
	for {
		c, ok := lx.peekByte()
		if !ok {
			return nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.advance()
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for {
				c, ok := lx.peekByte()
				if !ok || c == '\n' {
					break
				}
				lx.advance()
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			line, col := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.src[lx.pos] == '*' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return lx.errorf(line, col, "unterminated block comment")
			}
		default:
			return nil
		}
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentByte(c byte) bool {
	// '@' appears in generated class names like FastClassifier@@c and
	// anonymous element names like Queue@3; '/' appears in compound
	// scoping (arp/q).
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '@' || c == '/'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token. A '(' immediately produces a tokLParen
// whose text is the raw configuration string (without the outer
// parentheses); the lexer balances nested parens and respects quotes.
func (lx *lexer) next() (token, error) {
	if err := lx.skipSpace(); err != nil {
		return token{}, err
	}
	line, col := lx.line, lx.col
	c, ok := lx.peekByte()
	if !ok {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentByte(lx.src[lx.pos]) {
			// Don't let an identifier swallow the '/' of a comment.
			if lx.src[lx.pos] == '/' && lx.pos+1 < len(lx.src) && (lx.src[lx.pos+1] == '/' || lx.src[lx.pos+1] == '*') {
				break
			}
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		switch text {
		case "elementclass":
			return token{kind: tokElementclass, text: text, line: line, col: col}, nil
		case "require":
			return token{kind: tokRequire, text: text, line: line, col: col}, nil
		}
		return token{kind: tokIdent, text: text, line: line, col: col}, nil
	case isDigit(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.advance()
		}
		return token{kind: tokNumber, text: lx.src[start:lx.pos], line: line, col: col}, nil
	case c == '$':
		lx.advance()
		start := lx.pos
		for lx.pos < len(lx.src) && (isIdentByte(lx.src[lx.pos]) && lx.src[lx.pos] != '/' || isDigit(lx.src[lx.pos])) {
			lx.advance()
		}
		if lx.pos == start {
			return token{}, lx.errorf(line, col, "'$' must be followed by a parameter name")
		}
		return token{kind: tokDollarIdent, text: "$" + lx.src[start:lx.pos], line: line, col: col}, nil
	case c == ':':
		lx.advance()
		if c2, ok := lx.peekByte(); ok && c2 == ':' {
			lx.advance()
			return token{kind: tokColonColon, text: "::", line: line, col: col}, nil
		}
		return token{}, lx.errorf(line, col, "unexpected ':'")
	case c == '-':
		lx.advance()
		if c2, ok := lx.peekByte(); ok && c2 == '>' {
			lx.advance()
			return token{kind: tokArrow, text: "->", line: line, col: col}, nil
		}
		return token{}, lx.errorf(line, col, "unexpected '-'")
	case c == ',':
		lx.advance()
		return token{kind: tokComma, text: ",", line: line, col: col}, nil
	case c == ';':
		lx.advance()
		return token{kind: tokSemi, text: ";", line: line, col: col}, nil
	case c == '{':
		lx.advance()
		return token{kind: tokLBrace, text: "{", line: line, col: col}, nil
	case c == '}':
		lx.advance()
		return token{kind: tokRBrace, text: "}", line: line, col: col}, nil
	case c == '[':
		lx.advance()
		return token{kind: tokLBracket, text: "[", line: line, col: col}, nil
	case c == ']':
		lx.advance()
		return token{kind: tokRBracket, text: "]", line: line, col: col}, nil
	case c == '|':
		lx.advance()
		return token{kind: tokBar, text: "|", line: line, col: col}, nil
	case c == '(':
		cfg, err := lx.configString()
		if err != nil {
			return token{}, err
		}
		return token{kind: tokLParen, text: cfg, line: line, col: col}, nil
	}
	return token{}, lx.errorf(line, col, "unexpected character %q", string(c))
}

// configString consumes a parenthesized configuration string, returning
// the contents with the outer parentheses removed and leading/trailing
// whitespace trimmed. Nested parentheses, double-quoted strings, and
// comments inside the config are balanced.
func (lx *lexer) configString() (string, error) {
	line, col := lx.line, lx.col
	lx.advance() // '('
	depth := 1
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch c {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				lx.advance()
				return strings.TrimSpace(b.String()), nil
			}
		case '"':
			b.WriteByte(lx.advance())
			for lx.pos < len(lx.src) {
				c2 := lx.src[lx.pos]
				if c2 == '\\' && lx.pos+1 < len(lx.src) {
					b.WriteByte(lx.advance())
					b.WriteByte(lx.advance())
					continue
				}
				b.WriteByte(lx.advance())
				if c2 == '"' {
					break
				}
			}
			continue
		case '/':
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
				for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
					lx.advance()
				}
				continue
			}
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*' {
				lx.advance()
				lx.advance()
				for lx.pos < len(lx.src) {
					if lx.src[lx.pos] == '*' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
						lx.advance()
						lx.advance()
						break
					}
					lx.advance()
				}
				continue
			}
		}
		b.WriteByte(lx.advance())
	}
	return "", lx.errorf(line, col, "unterminated configuration string")
}

// SplitConfig splits a configuration string into its top-level
// comma-separated arguments, respecting quotes and nested parentheses.
// Arguments are whitespace-trimmed. An empty config yields no arguments.
func SplitConfig(config string) []string {
	config = strings.TrimSpace(config)
	if config == "" {
		return nil
	}
	var args []string
	depth := 0
	start := 0
	inQuote := false
	for i := 0; i < len(config); i++ {
		c := config[i]
		switch {
		case inQuote:
			if c == '\\' {
				i++
			} else if c == '"' {
				inQuote = false
			}
		case c == '"':
			inQuote = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			args = append(args, strings.TrimSpace(config[start:i]))
			start = i + 1
		}
	}
	args = append(args, strings.TrimSpace(config[start:]))
	return args
}

// JoinConfig joins arguments into a configuration string.
func JoinConfig(args []string) string { return strings.Join(args, ", ") }
