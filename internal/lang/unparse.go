package lang

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// Unparse regenerates Click-language text from a router graph. The
// optimizers depend on being able to "arbitrarily transform
// configuration graphs and generate Click-language files corresponding
// exactly to the results" (§5.2). The output parses back to an
// isomorphic graph (see TestUnparseRoundTrip).
//
// Connections are emitted as chains where possible for readability:
// a -> b -> c rather than three statements.
func Unparse(r *graph.Router) string {
	var b strings.Builder
	for _, req := range r.Requirements {
		fmt.Fprintf(&b, "require(%s);\n", req)
	}
	if len(r.Requirements) > 0 {
		b.WriteByte('\n')
	}

	live := r.LiveIndices()
	for _, i := range live {
		e := r.Element(i)
		if e.Config != "" {
			fmt.Fprintf(&b, "%s :: %s(%s);\n", e.Name, e.Class, e.Config)
		} else {
			fmt.Fprintf(&b, "%s :: %s;\n", e.Name, e.Class)
		}
	}
	if len(live) > 0 && len(r.Conns) > 0 {
		b.WriteByte('\n')
	}

	// Build chains: follow single connections greedily. A connection
	// can extend a chain if it leaves the chain's tail and is the only
	// unemitted connection considered at that point; we keep it simple
	// and only chain when the link is port 0 -> port 0.
	emitted := make([]bool, len(r.Conns))
	// Index connections by source element for chain building.
	bySource := map[int][]int{}
	for ci, c := range r.Conns {
		bySource[c.From] = append(bySource[c.From], ci)
	}
	for ci := range r.Conns {
		if emitted[ci] {
			continue
		}
		chain := []int{ci}
		emitted[ci] = true
		// Extend forward while the tail has exactly one unemitted
		// outgoing 0->0 connection.
		for {
			tail := r.Conns[chain[len(chain)-1]].To
			next := -1
			for _, cj := range bySource[tail] {
				if !emitted[cj] && r.Conns[cj].FromPort == 0 && r.Conns[cj].ToPort == 0 {
					if next >= 0 {
						next = -1
						break
					}
					next = cj
				}
			}
			if next < 0 {
				break
			}
			emitted[next] = true
			chain = append(chain, next)
		}
		writeChain(&b, r, chain)
	}
	return b.String()
}

func writeChain(b *strings.Builder, r *graph.Router, chain []int) {
	first := r.Conns[chain[0]]
	b.WriteString(r.Element(first.From).Name)
	if first.FromPort != 0 {
		fmt.Fprintf(b, " [%d]", first.FromPort)
	}
	for _, ci := range chain {
		c := r.Conns[ci]
		b.WriteString(" -> ")
		if c.ToPort != 0 {
			fmt.Fprintf(b, "[%d] ", c.ToPort)
		}
		b.WriteString(r.Element(c.To).Name)
	}
	b.WriteString(";\n")
}
