package lang

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src, "test")
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return f
}

func mustRouter(t *testing.T, src string) *routerShim {
	t.Helper()
	r, err := ParseRouter(src, "test")
	if err != nil {
		t.Fatalf("ParseRouter(%q): %v", src, err)
	}
	return &routerShim{t, r}
}

// routerShim adds test conveniences over graph.Router.
type routerShim struct {
	t *testing.T
	r routerLike
}

type routerLike interface {
	FindElement(name string) int
	NumElements() int
}

func (s *routerShim) has(name string) bool { return s.r.FindElement(name) >= 0 }

func TestParseDeclaration(t *testing.T) {
	f := mustParse(t, "q :: Queue(19);")
	if len(f.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
	d, ok := f.Stmts[0].(*DeclStmt)
	if !ok {
		t.Fatalf("stmt type %T", f.Stmts[0])
	}
	if d.Names[0] != "q" || d.Class != "Queue" || d.Config != "19" {
		t.Errorf("decl = %+v", d)
	}
}

func TestParseMultipleDeclaration(t *testing.T) {
	f := mustParse(t, "a, b, c :: Counter;")
	d := f.Stmts[0].(*DeclStmt)
	if !reflect.DeepEqual(d.Names, []string{"a", "b", "c"}) {
		t.Errorf("names = %v", d.Names)
	}
	if d.Config != "" {
		t.Errorf("config = %q", d.Config)
	}
}

func TestParseConnectionChainWithPorts(t *testing.T) {
	f := mustParse(t, "a [1] -> [2] b -> c;")
	conn := f.Stmts[0].(*ConnStmt)
	if len(conn.Ends) != 3 {
		t.Fatalf("ends = %d", len(conn.Ends))
	}
	if conn.Ends[0].OutPort != 1 {
		t.Errorf("a out port = %d", conn.Ends[0].OutPort)
	}
	if conn.Ends[1].InPort != 2 {
		t.Errorf("b in port = %d", conn.Ends[1].InPort)
	}
	if conn.Ends[2].InPort != -1 {
		t.Errorf("c in port = %d", conn.Ends[2].InPort)
	}
}

func TestParseInlineAndAnonymousDeclarations(t *testing.T) {
	f := mustParse(t, "src :: InfiniteSource -> Queue(10) -> sink :: Discard;")
	conn := f.Stmts[0].(*ConnStmt)
	if conn.Ends[0].Decl == nil || conn.Ends[0].Decl.Class != "InfiniteSource" {
		t.Error("inline decl for src missing")
	}
	if conn.Ends[1].Decl == nil || conn.Ends[1].Decl.Names[0] != "" {
		t.Error("anonymous Queue not detected")
	}
	if conn.Ends[2].Decl == nil || conn.Ends[2].Decl.Names[0] != "sink" {
		t.Error("inline decl for sink missing")
	}
}

func TestParseConfigStringNesting(t *testing.T) {
	f := mustParse(t, `c :: Classifier(12/0806 20/0001, 12/0800, -);`)
	d := f.Stmts[0].(*DeclStmt)
	if d.Config != "12/0806 20/0001, 12/0800, -" {
		t.Errorf("config = %q", d.Config)
	}

	f2 := mustParse(t, `x :: Foo(a (b, c), "quoted, paren )" , d);`)
	d2 := f2.Stmts[0].(*DeclStmt)
	args := SplitConfig(d2.Config)
	if len(args) != 3 {
		t.Fatalf("args = %v", args)
	}
	if args[0] != "a (b, c)" || args[1] != `"quoted, paren )"` || args[2] != "d" {
		t.Errorf("args = %q", args)
	}
}

func TestParseComments(t *testing.T) {
	src := `
// line comment
a :: Queue; /* block
   comment */ b :: Queue;
a -> b; // trailing
`
	f := mustParse(t, src)
	if len(f.Stmts) != 3 {
		t.Errorf("stmts = %d", len(f.Stmts))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"a :: ;",
		"a -> ;",
		"a ->",
		"-> b;",
		"a : b;",
		"a :: B(unclosed;",
		"elementclass { }",
		"elementclass X { a :: B ", // unterminated brace
		"/* unterminated",
		"a [x] -> b;",
		"a, b -> c;", // multiple decl in connection
	}
	for _, src := range cases {
		if _, err := Parse(src, "test"); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestElaborateBasic(t *testing.T) {
	r, err := ParseRouter("src :: A -> q :: Queue(5) -> sink :: B;", "test")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumElements() != 3 {
		t.Fatalf("elements = %d", r.NumElements())
	}
	si, qi, ki := r.FindElement("src"), r.FindElement("q"), r.FindElement("sink")
	if si < 0 || qi < 0 || ki < 0 {
		t.Fatal("missing elements")
	}
	if len(r.Conns) != 2 {
		t.Fatalf("conns = %d", len(r.Conns))
	}
	if out := r.OutputConns(si, 0); len(out) != 1 || out[0].To != qi {
		t.Errorf("src conns = %v", out)
	}
}

func TestElaborateForwardReference(t *testing.T) {
	r, err := ParseRouter("a -> b; a :: X; b :: Y;", "test")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumElements() != 2 {
		t.Errorf("elements = %d (forward reference created extra elements)", r.NumElements())
	}
}

func TestElaborateAnonymousBareClass(t *testing.T) {
	r, err := ParseRouter("a :: X; a -> Discard; a [1] -> Discard;", "test")
	if err != nil {
		t.Fatal(err)
	}
	// Two separate anonymous Discards.
	if r.NumElements() != 3 {
		t.Errorf("elements = %d, want 3", r.NumElements())
	}
}

func TestElaborateRedeclarationError(t *testing.T) {
	if _, err := ParseRouter("a :: X; a :: Y;", "test"); err == nil {
		t.Error("redeclaration succeeded")
	}
}

func TestElaborateCompound(t *testing.T) {
	src := `
elementclass Gate {
	input -> f :: Filter -> output;
	f [1] -> Discard;
}
src :: S -> g :: Gate -> sink :: D;
`
	r, err := ParseRouter(src, "test")
	if err != nil {
		t.Fatal(err)
	}
	fi := r.FindElement("g/f")
	if fi < 0 {
		t.Fatal("inner element g/f missing")
	}
	si := r.FindElement("src")
	out := r.OutputConns(si, 0)
	if len(out) != 1 || out[0].To != fi {
		t.Errorf("src -> g wiring = %v", out)
	}
	di := r.FindElement("sink")
	out2 := r.OutputConns(fi, 0)
	if len(out2) != 1 || out2[0].To != di {
		t.Errorf("g -> sink wiring = %v", out2)
	}
}

func TestElaborateCompoundWithFormals(t *testing.T) {
	src := `
elementclass MyQueue {
	$cap |
	input -> q :: Queue($cap) -> output;
}
a :: S -> m :: MyQueue(42) -> b :: D;
`
	r, err := ParseRouter(src, "test")
	if err != nil {
		t.Fatal(err)
	}
	qi := r.FindElement("m/q")
	if qi < 0 {
		t.Fatal("inner queue missing")
	}
	if cfg := r.Element(qi).Config; cfg != "42" {
		t.Errorf("queue config = %q, want 42", cfg)
	}
}

func TestElaborateCompoundArgCountError(t *testing.T) {
	src := `
elementclass C { $a | input -> Queue($a) -> output; }
x :: C(1, 2);
`
	if _, err := ParseRouter(src, "test"); err == nil {
		t.Error("wrong arg count succeeded")
	}
}

func TestElaborateNestedCompound(t *testing.T) {
	src := `
elementclass Inner { input -> n :: N -> output; }
elementclass Outer { input -> i :: Inner -> output; }
a :: S -> o :: Outer -> b :: D;
`
	r, err := ParseRouter(src, "test")
	if err != nil {
		t.Fatal(err)
	}
	if r.FindElement("o/i/n") < 0 {
		t.Errorf("nested inner element missing; have:\n%s", r)
	}
}

func TestElaborateMultiPortCompound(t *testing.T) {
	src := `
elementclass TwoOut {
	input -> s :: Split;
	s [0] -> output;
	s [1] -> [0] output2 :: Null -> [1] output;
}
`
	// Use input [1] and output [1].
	src2 := `
elementclass T {
	input [0] -> a :: A -> [0] output;
	input [1] -> b :: B -> [1] output;
}
x :: S2 -> t :: T -> d1 :: D;
x [1] -> [1] t;
t [1] -> d2 :: D;
`
	_ = src
	r, err := ParseRouter(src2, "test")
	if err != nil {
		t.Fatal(err)
	}
	ai, bi := r.FindElement("t/a"), r.FindElement("t/b")
	xi := r.FindElement("x")
	if len(r.OutputConns(xi, 0)) != 1 || r.OutputConns(xi, 0)[0].To != ai {
		t.Error("port 0 wiring wrong")
	}
	if len(r.OutputConns(xi, 1)) != 1 || r.OutputConns(xi, 1)[0].To != bi {
		t.Error("port 1 wiring wrong")
	}
	d2i := r.FindElement("d2")
	if got := r.OutputConns(bi, 0); len(got) != 1 || got[0].To != d2i {
		t.Error("compound output 1 wiring wrong")
	}
}

func TestSubstituteParams(t *testing.T) {
	params := map[string]string{"$a": "10.0.0.1", "$ab": "XYZ"}
	cases := []struct{ in, want string }{
		{"$a", "10.0.0.1"},
		{"$ab", "XYZ"},
		{"$a $ab", "10.0.0.1 XYZ"},
		{"$abc", "$abc"},
		{"x$a,y", "x10.0.0.1,y"},
		{"no params", "no params"},
	}
	for _, c := range cases {
		if got := substituteParams(c.in, params); got != c.want {
			t.Errorf("substituteParams(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRequire(t *testing.T) {
	r, err := ParseRouter("require(fastclassifier);\na :: B -> c :: D;", "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Requirements) != 1 || r.Requirements[0] != "fastclassifier" {
		t.Errorf("requirements = %v", r.Requirements)
	}
}

func TestUnparseRoundTrip(t *testing.T) {
	srcs := []string{
		"a :: X(1) -> b :: Y -> c :: Z(foo, bar);",
		"a :: X; b :: Y; a [1] -> b; a [0] -> [2] b;",
		"s :: Src -> t :: Tee; t [0] -> d1 :: D; t [1] -> d2 :: D;",
		`c :: Classifier(12/0806 20/0001, 12/0800, -); s :: S -> c; c [0] -> d0 :: D; c [1] -> d1 :: D; c [2] -> d2 :: D;`,
	}
	for _, src := range srcs {
		r1, err := ParseRouter(src, "orig")
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		text := Unparse(r1)
		r2, err := ParseRouter(text, "unparsed")
		if err != nil {
			t.Fatalf("reparse of %q failed: %v\ntext:\n%s", src, err, text)
		}
		if r1.NumElements() != r2.NumElements() {
			t.Errorf("round trip changed element count %d -> %d", r1.NumElements(), r2.NumElements())
		}
		if len(r1.Conns) != len(r2.Conns) {
			t.Errorf("round trip changed conn count %d -> %d", len(r1.Conns), len(r2.Conns))
		}
		// Every original connection must exist by name in the reparse.
		for _, c := range r1.Conns {
			fn, tn := r1.Element(c.From).Name, r1.Element(c.To).Name
			f2, t2 := r2.FindElement(fn), r2.FindElement(tn)
			if f2 < 0 || t2 < 0 {
				t.Fatalf("element names lost in round trip (%s, %s)", fn, tn)
			}
			found := false
			for _, c2 := range r2.Conns {
				if c2.From == f2 && c2.FromPort == c.FromPort && c2.To == t2 && c2.ToPort == c.ToPort {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("connection %s[%d]->[%d]%s lost in round trip:\n%s", fn, c.FromPort, c.ToPort, tn, text)
			}
		}
	}
}

func TestSplitConfigEdgeCases(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a, b", []string{"a", "b"}},
		{"a,, b", []string{"a", "", "b"}},
		{`"a,b", c`, []string{`"a,b"`, "c"}},
		{"f(x, y), z", []string{"f(x, y)", "z"}},
		{"  spaced  ", []string{"spaced"}},
	}
	for _, c := range cases {
		got := SplitConfig(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitConfig(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	members := []ArchiveMember{
		{Name: "config", Data: []byte("a :: B -> c :: D;\n")},
		{Name: "fastclassifier_0.go", Data: []byte("package fc\n// generated\n")},
		{Name: "a-very-long-member-name-over-15-bytes.go", Data: []byte("odd\n1")},
	}
	data := WriteArchive(members)
	if !IsArchive(data) {
		t.Fatal("output not recognized as archive")
	}
	got, err := ReadArchive(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(members) {
		t.Fatalf("member count = %d", len(got))
	}
	for i, m := range members {
		if got[i].Name != m.Name {
			t.Errorf("member %d name = %q, want %q", i, got[i].Name, m.Name)
		}
		if string(got[i].Data) != string(m.Data) {
			t.Errorf("member %d data = %q, want %q", i, got[i].Data, m.Data)
		}
	}
}

func TestUnpackPlainConfig(t *testing.T) {
	cfg, extra, err := UnpackConfig([]byte("a :: B;"))
	if err != nil || cfg != "a :: B;" || extra != nil {
		t.Errorf("UnpackConfig plain = %q, %v, %v", cfg, extra, err)
	}
}

func TestPackUnpackConfig(t *testing.T) {
	extra := []ArchiveMember{{Name: "gen.go", Data: []byte("package gen")}}
	packed := PackConfig("x :: Y;", extra)
	cfg, got, err := UnpackConfig(packed)
	if err != nil {
		t.Fatal(err)
	}
	if cfg != "x :: Y;" {
		t.Errorf("config = %q", cfg)
	}
	if len(got) != 1 || got[0].Name != "gen.go" {
		t.Errorf("extra = %v", got)
	}
	// No extras → plain text passthrough.
	if s := PackConfig("x :: Y;", nil); string(s) != "x :: Y;" {
		t.Errorf("plain pack = %q", s)
	}
}

func TestUnparseIncludesRequirements(t *testing.T) {
	r, err := ParseRouter("a :: X -> b :: Y;", "test")
	if err != nil {
		t.Fatal(err)
	}
	r.Require("fastclassifier")
	text := Unparse(r)
	if !strings.Contains(text, "require(fastclassifier);") {
		t.Errorf("unparse lost requirement:\n%s", text)
	}
}

func TestParserNeverPanics(t *testing.T) {
	// The parser must fail gracefully on arbitrary input.
	rng := rand.New(rand.NewSource(99))
	chars := []byte("abAB01 \t\n(){}[]->::,;$/*\"\\%?!|.&=")
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(120)
		b := make([]byte, n)
		for i := range b {
			b[i] = chars[rng.Intn(len(chars))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", b, r)
				}
			}()
			_, _ = ParseRouter(string(b), "fuzz")
		}()
	}
}

func TestArchiveReaderNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(200)
		b := make([]byte, n)
		rng.Read(b)
		if rng.Intn(2) == 0 && n >= 8 {
			copy(b, "!<arch>\n")
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("archive reader panicked: %v", r)
				}
			}()
			_, _, _ = UnpackConfig(b)
		}()
	}
}

func TestCompoundUndeclaredPortRejected(t *testing.T) {
	// Connecting to a compound input/output port the class never
	// declared must be an error, not a silently dropped connection.
	base := `
elementclass OneIn { input -> n :: N -> output; }
`
	cases := []string{
		base + "x :: S -> [1] g :: OneIn -> d :: D;",    // no input 1
		base + "x :: S -> g :: OneIn; g [1] -> d :: D;", // no output 1
	}
	for _, src := range cases {
		if _, err := ParseRouter(src, "test"); err == nil {
			t.Errorf("undeclared compound port accepted:\n%s", src)
		}
	}
	// The declared ports still work.
	if _, err := ParseRouter(base+"x :: S -> g :: OneIn -> d :: D;", "test"); err != nil {
		t.Errorf("declared port rejected: %v", err)
	}
}
