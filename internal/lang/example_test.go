package lang_test

import (
	"fmt"

	"repro/internal/lang"
)

// Parsing a configuration and inspecting the elaborated graph.
func ExampleParseRouter() {
	g, err := lang.ParseRouter(`
src :: InfiniteSource(100) -> q :: Queue(64) -> sink :: Discard;
`, "example")
	if err != nil {
		panic(err)
	}
	fmt.Println("elements:", g.NumElements())
	fmt.Println("connections:", len(g.Conns))
	i := g.FindElement("q")
	fmt.Printf("%s :: %s(%s)\n", g.Element(i).Name, g.Element(i).Class, g.Element(i).Config)
	// Output:
	// elements: 3
	// connections: 2
	// q :: Queue(64)
}

// Compound element classes are compiled away during elaboration: inner
// elements get scoped names.
func ExampleParseRouter_compound() {
	g, err := lang.ParseRouter(`
elementclass Metered {
	$cap |
	input -> q :: Queue($cap) -> output;
}
a :: InfiniteSource -> m :: Metered(7) -> b :: Discard;
`, "example")
	if err != nil {
		panic(err)
	}
	i := g.FindElement("m/q")
	fmt.Printf("%s configured with %q\n", g.Element(i).Name, g.Element(i).Config)
	// Output:
	// m/q configured with "7"
}

// Unparse regenerates configuration text that parses back to the same
// graph — the property the optimizer tools rely on.
func ExampleUnparse() {
	g, _ := lang.ParseRouter("a :: X(1) -> b :: Y;", "example")
	fmt.Print(lang.Unparse(g))
	// Output:
	// a :: X(1);
	// b :: Y;
	//
	// a -> b;
}
