package lang

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// Pseudo-element class names used inside compound element bodies.
const (
	InputPseudo  = "input"
	OutputPseudo = "output"
)

// Element classes used for materialized pseudoelements in pattern
// graphs (see ElaborateClassBody).
const (
	InputPseudoClass  = "<input>"
	OutputPseudoClass = "<output>"
)

// classScope implements lexical scoping for compound class definitions.
type classScope struct {
	parent  *classScope
	classes map[string]*ClassDefStmt
}

func (s *classScope) lookup(name string) *ClassDefStmt {
	for sc := s; sc != nil; sc = sc.parent {
		if def, ok := sc.classes[name]; ok {
			return def
		}
	}
	return nil
}

// portEnd is one concrete (element, port) endpoint.
type portEnd struct {
	elem int
	port int
}

// handle is what an element name resolves to during elaboration: either
// a concrete graph element or a compound instance with pseudo ports.
type handle struct {
	concrete int // element index, or -1
	comp     *compoundInstance
}

// compoundInstance records how a compound element's inputs and outputs
// splice into the surrounding graph.
type compoundInstance struct {
	// inputs[p] lists the inner endpoints that "input [p]" connects to.
	inputs map[int][]portEnd
	// outputs[p] lists the inner endpoints that connect to "output [p]".
	outputs map[int][]portEnd
}

type elaborator struct {
	r    *graph.Router
	file string
	// materialize makes the input/output pseudoelements real graph
	// elements (classes InputPseudoClass/OutputPseudoClass) instead of
	// splice points; click-xform elaborates pattern bodies this way.
	materialize bool
	pseudoIn    int
	pseudoOut   int
}

// Elaborate instantiates a parsed File into a router graph, expanding
// compound element classes (the optimizers always work on flattened
// configurations, §6.2). Inner elements of a compound instance named
// "arp" get names like "arp/q".
func Elaborate(f *File, file string) (*graph.Router, error) {
	e := &elaborator{r: graph.New(), file: file}
	root := &classScope{classes: map[string]*ClassDefStmt{}}
	if _, err := e.elabFile(f, "", nil, root); err != nil {
		return nil, err
	}
	for _, req := range f.Requirements {
		e.r.Require(req)
	}
	return e.r, nil
}

// ParseRouter parses and elaborates in one step.
func ParseRouter(src, file string) (*graph.Router, error) {
	f, err := Parse(src, file)
	if err != nil {
		return nil, err
	}
	return Elaborate(f, file)
}

// elabFile elaborates the statements of one file or compound body.
// prefix is prepended to element names ("arp/"); params maps formal
// names ("$a") to argument text. It returns the pseudo ports when the
// body uses input/output.
func (e *elaborator) elabFile(f *File, prefix string, params map[string]string, parent *classScope) (*compoundInstance, error) {
	sc := &classScope{parent: parent, classes: map[string]*ClassDefStmt{}}
	inst := &compoundInstance{inputs: map[int][]portEnd{}, outputs: map[int][]portEnd{}}
	handles := map[string]*handle{}

	// Pass 1: collect class definitions and element declarations so
	// connections may reference elements declared later in the file.
	var declErr error
	declare := func(d *DeclStmt) {
		if declErr != nil {
			return
		}
		for _, name := range d.Names {
			if name == "" {
				// A bare anonymous declaration statement
				// ("ScheduleInfo(...);") instantiates an element that
				// is never referenced by name.
				if _, err := e.makeElement("", d.Class, d.Config, params, sc, d.Line); err != nil {
					declErr = err
				}
				continue
			}
			if name == InputPseudo || name == OutputPseudo {
				declErr = e.errf(d.Line, "cannot declare element named %q", name)
				return
			}
			if _, dup := handles[name]; dup {
				declErr = e.errf(d.Line, "redeclaration of element %q", name)
				return
			}
			h, err := e.makeElement(prefix+name, d.Class, d.Config, params, sc, d.Line)
			if err != nil {
				declErr = err
				return
			}
			handles[name] = h
		}
	}
	for _, st := range f.Stmts {
		switch st := st.(type) {
		case *ClassDefStmt:
			if _, dup := sc.classes[st.Name]; dup {
				return nil, e.errf(st.Line, "redefinition of element class %q", st.Name)
			}
			sc.classes[st.Name] = st
		case *DeclStmt:
			declare(st)
		case *ConnStmt:
			for _, end := range st.Ends {
				if end.Decl != nil && end.Decl.Names[0] != "" {
					declare(end.Decl)
				}
			}
		}
		if declErr != nil {
			return nil, declErr
		}
	}

	// Pass 2: wire connections.
	for _, st := range f.Stmts {
		conn, ok := st.(*ConnStmt)
		if !ok {
			continue
		}
		if len(conn.Ends) < 2 {
			return nil, e.errf(conn.Line, "connection needs at least two elements")
		}
		ends := make([]*resolvedEnd, len(conn.Ends))
		for i := range conn.Ends {
			re, err := e.resolveEnd(&conn.Ends[i], handles, prefix, params, sc, conn.Line, inst)
			if err != nil {
				return nil, err
			}
			ends[i] = re
		}
		for i := 0; i+1 < len(ends); i++ {
			if err := e.connect(ends[i], ends[i+1], inst, conn.Line); err != nil {
				return nil, err
			}
		}
	}
	return inst, nil
}

type resolvedEnd struct {
	h       *handle
	pseudo  string // InputPseudo, OutputPseudo, or ""
	inPort  int
	outPort int
}

func (e *elaborator) resolveEnd(end *ConnEnd, handles map[string]*handle, prefix string, params map[string]string, sc *classScope, line int, inst *compoundInstance) (*resolvedEnd, error) {
	re := &resolvedEnd{inPort: end.InPort, outPort: end.OutPort}
	switch {
	case end.Name == InputPseudo || end.Name == OutputPseudo:
		if e.materialize {
			idx, err := e.pseudoElement(end.Name, line)
			if err != nil {
				return nil, err
			}
			re.h = &handle{concrete: idx}
			break
		}
		re.pseudo = end.Name
	case end.Decl != nil && end.Decl.Names[0] == "":
		// Anonymous inline declaration: fresh element per occurrence.
		h, err := e.makeElement("", end.Decl.Class, end.Decl.Config, params, sc, line)
		if err != nil {
			return nil, err
		}
		re.h = h
	case end.Decl != nil:
		re.h = handles[end.Name] // declared in pass 1
	default:
		if h, ok := handles[end.Name]; ok {
			re.h = h
		} else {
			// A bare name that matches no declaration is an anonymous
			// element of that class ("... -> Discard;").
			h, err := e.makeElement("", end.Name, "", params, sc, line)
			if err != nil {
				return nil, err
			}
			re.h = h
			// Repeated bare uses of the same class create separate
			// elements, so do not record the handle.
		}
	}
	return re, nil
}

// makeElement creates a concrete element or expands a compound instance.
// name == "" requests an anonymous element.
func (e *elaborator) makeElement(name, class, config string, params map[string]string, sc *classScope, line int) (*handle, error) {
	config = substituteParams(config, params)
	if def := sc.lookup(class); def != nil {
		args := SplitConfig(config)
		if len(args) != len(def.Formals) {
			return nil, e.errf(line, "compound class %q expects %d argument(s), got %d", class, len(def.Formals), len(args))
		}
		inner := map[string]string{}
		for i, formal := range def.Formals {
			inner[formal] = args[i]
		}
		if name == "" {
			e.r.AnonCounter++
			name = fmt.Sprintf("%s@%d", class, e.r.AnonCounter)
		}
		inst, err := e.elabFile(def.Body, name+"/", inner, sc)
		if err != nil {
			return nil, err
		}
		return &handle{concrete: -1, comp: inst}, nil
	}
	idx, err := e.r.AddElement(name, class, config, fmt.Sprintf("%s:%d", e.file, line))
	if err != nil {
		return nil, e.errf(line, "%v", err)
	}
	return &handle{concrete: idx}, nil
}

// outEnds returns the concrete source endpoints of a resolved end used
// as a connection source with output port p. Connecting from a compound
// output port the class never declared is an error (the connection
// would otherwise vanish silently).
func outEnds(re *resolvedEnd, p int) ([]portEnd, error) {
	if re.h.concrete >= 0 {
		return []portEnd{{re.h.concrete, p}}, nil
	}
	ends := re.h.comp.outputs[p]
	if len(ends) == 0 {
		return nil, fmt.Errorf("compound element has no output port %d", p)
	}
	return ends, nil
}

// inEnds returns the concrete target endpoints of a resolved end used as
// a connection target with input port p.
func inEnds(re *resolvedEnd, p int) ([]portEnd, error) {
	if re.h.concrete >= 0 {
		return []portEnd{{re.h.concrete, p}}, nil
	}
	ends := re.h.comp.inputs[p]
	if len(ends) == 0 {
		return nil, fmt.Errorf("compound element has no input port %d", p)
	}
	return ends, nil
}

func (e *elaborator) connect(from, to *resolvedEnd, inst *compoundInstance, line int) error {
	fp := from.outPort
	if fp < 0 {
		fp = 0
	}
	tp := to.inPort
	if tp < 0 {
		tp = 0
	}
	switch {
	case from.pseudo == OutputPseudo:
		return e.errf(line, "'output' used as connection source")
	case to.pseudo == InputPseudo:
		return e.errf(line, "'input' used as connection target")
	case from.pseudo == InputPseudo && to.pseudo == OutputPseudo:
		return e.errf(line, "direct input -> output connection not supported")
	case from.pseudo == InputPseudo:
		// input [fp] -> [tp] target: packets entering compound port fp
		// go to the target's input tp.
		targets, err := inEnds(to, tp)
		if err != nil {
			return e.errf(line, "%v", err)
		}
		inst.inputs[fp] = append(inst.inputs[fp], targets...)
	case to.pseudo == OutputPseudo:
		sources, err := outEnds(from, fp)
		if err != nil {
			return e.errf(line, "%v", err)
		}
		inst.outputs[tp] = append(inst.outputs[tp], sources...)
	default:
		sources, err := outEnds(from, fp)
		if err != nil {
			return e.errf(line, "%v", err)
		}
		targets, err := inEnds(to, tp)
		if err != nil {
			return e.errf(line, "%v", err)
		}
		for _, s := range sources {
			for _, t := range targets {
				e.r.Connect(s.elem, s.port, t.elem, t.port)
			}
		}
	}
	return nil
}

func (e *elaborator) errf(line int, format string, args ...interface{}) error {
	return &Error{File: e.file, Line: line, Col: 1, Msg: fmt.Sprintf(format, args...)}
}

// pseudoElement lazily creates the singleton materialized input or
// output pseudoelement.
func (e *elaborator) pseudoElement(name string, line int) (int, error) {
	if name == InputPseudo {
		if e.pseudoIn < 0 {
			idx, err := e.r.AddElement(InputPseudo, InputPseudoClass, "", fmt.Sprintf("%s:%d", e.file, line))
			if err != nil {
				return -1, err
			}
			e.pseudoIn = idx
		}
		return e.pseudoIn, nil
	}
	if e.pseudoOut < 0 {
		idx, err := e.r.AddElement(OutputPseudo, OutputPseudoClass, "", fmt.Sprintf("%s:%d", e.file, line))
		if err != nil {
			return -1, err
		}
		e.pseudoOut = idx
	}
	return e.pseudoOut, nil
}

// ElaborateClassBody elaborates the body of the named compound element
// class from src into a standalone graph in which the compound's
// input/output ports appear as real elements named "input" and "output"
// with classes InputPseudoClass and OutputPseudoClass. click-xform uses
// this to turn pattern and replacement definitions into matchable
// graphs. Unknown $parameters in configuration strings are left intact
// (they are click-xform's wildcards).
func ElaborateClassBody(src, className, file string) (*graph.Router, error) {
	f, err := Parse(src, file)
	if err != nil {
		return nil, err
	}
	var def *ClassDefStmt
	for _, st := range f.Stmts {
		if cd, ok := st.(*ClassDefStmt); ok && cd.Name == className {
			def = cd
			break
		}
	}
	if def == nil {
		return nil, fmt.Errorf("%s: no elementclass %q", file, className)
	}
	if len(def.Formals) > 0 {
		return nil, fmt.Errorf("%s: pattern class %q must not declare formals (use $wildcards in configs directly)", file, className)
	}
	e := &elaborator{r: graph.New(), file: file, materialize: true, pseudoIn: -1, pseudoOut: -1}
	root := &classScope{classes: map[string]*ClassDefStmt{}}
	if _, err := e.elabFile(def.Body, "", nil, root); err != nil {
		return nil, err
	}
	return e.r, nil
}

// substituteParams replaces occurrences of formal parameters ("$a") in a
// configuration string. Substitution respects word boundaries: "$ab" is
// not an occurrence of "$a".
func substituteParams(config string, params map[string]string) string {
	if len(params) == 0 || !strings.Contains(config, "$") {
		return config
	}
	var b strings.Builder
	for i := 0; i < len(config); {
		if config[i] != '$' {
			b.WriteByte(config[i])
			i++
			continue
		}
		j := i + 1
		for j < len(config) && (isIdentByte(config[j]) && config[j] != '/' || isDigit(config[j])) {
			j++
		}
		name := config[i:j]
		if val, ok := params[name]; ok {
			b.WriteString(val)
		} else {
			b.WriteString(name)
		}
		i = j
	}
	return b.String()
}
