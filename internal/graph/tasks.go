package graph

import "sort"

// Task-reach analysis. The runtime's unit of concurrency is the task: a
// schedulable element (device driver, Unqueue, source) whose RunTask
// invocation synchronously executes a bounded region of the graph — the
// push chains it drives downstream and the pull chains it drains
// upstream, both of which stop at push/pull boundaries (a Queue's output
// is pull, so a push flood halts there; its input is push, so a pull
// flood halts there too).
//
// The parallel scheduler uses these reach sets to prove sharing
// properties statically: a Queue with one pushing task can use a
// single-producer ring; an element touched by exactly one task can keep
// plain (non-atomic) counters even when the run is parallel.

// PushFlood returns the indices of elements whose code runs
// synchronously downstream of a push leaving element elem. If port >= 0
// only that output port is flooded; otherwise every push-kind output
// floods. The flood crosses intermediate elements and continues out of
// their push-kind outputs, halting at non-push ports (e.g. a Queue's
// pull output). elem itself is not included.
func PushFlood(r *Router, pr *Processing, elem, port int) []int {
	visited := map[int]bool{}
	var expand func(i int, only int)
	expand = func(i int, only int) {
		for p := range pr.Out[i] {
			if only >= 0 && p != only {
				continue
			}
			if pr.Out[i][p] != Push {
				continue
			}
			for _, c := range r.OutputConns(i, p) {
				if r.Elements[c.To].dead || visited[c.To] {
					continue
				}
				visited[c.To] = true
				expand(c.To, -1)
			}
		}
	}
	if elem >= 0 && elem < len(r.Elements) && !r.Elements[elem].dead {
		expand(elem, port)
	}
	return sortedKeys(visited)
}

// PullFlood returns two element sets describing what runs when element
// elem pulls on its inputs: pulled is the upstream chain of pull-kind
// connections (schedulers, queues — the flood halts at a Queue because
// its inputs are push); pushed is the set of elements reached by
// synchronous pushes emitted from those upstream elements (e.g. an
// error port on an element sitting in a pull path pushes into a Discard
// in the puller's task context). elem itself appears in neither set.
func PullFlood(r *Router, pr *Processing, elem int) (pulled, pushed []int) {
	if elem < 0 || elem >= len(r.Elements) || r.Elements[elem].dead {
		return nil, nil
	}
	up := map[int]bool{}
	down := map[int]bool{}
	var expandPush func(i int)
	expandPush = func(i int) {
		for p := range pr.Out[i] {
			if pr.Out[i][p] != Push {
				continue
			}
			for _, c := range r.OutputConns(i, p) {
				if r.Elements[c.To].dead || down[c.To] {
					continue
				}
				down[c.To] = true
				expandPush(c.To)
			}
		}
	}
	var expandPull func(i int)
	expandPull = func(i int) {
		for p := range pr.In[i] {
			if pr.In[i][p] != Pull {
				continue
			}
			for _, c := range r.InputConns(i, p) {
				if r.Elements[c.From].dead || up[c.From] {
					continue
				}
				up[c.From] = true
				expandPush(c.From) // side pushes run in the puller's task
				expandPull(c.From)
			}
		}
	}
	expandPull(elem)
	return sortedKeys(up), sortedKeys(down)
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
