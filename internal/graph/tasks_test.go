package graph

import (
	"reflect"
	"testing"
)

// chain builds s(PushSrc) -> a(Agn) -> q(Q) -> b(Agn2) -> k(PullSink)
// and resolves processing.
func chain(t *testing.T) (r *Router, pr *Processing, s, a, q, b, k int) {
	t.Helper()
	r = New()
	s = r.MustAddElement("s", "PushSrc", "", "")
	a = r.MustAddElement("a", "Agn", "", "")
	q = r.MustAddElement("q", "Q", "", "")
	b = r.MustAddElement("b", "Agn2", "", "")
	k = r.MustAddElement("k", "PullSink", "", "")
	r.Connect(s, 0, a, 0)
	r.Connect(a, 0, q, 0)
	r.Connect(q, 0, b, 0)
	r.Connect(b, 0, k, 0)
	pr, err := AssignProcessing(r, fakeSpecs{})
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestPushFloodHaltsAtQueue(t *testing.T) {
	r, pr, s, a, q, _, _ := chain(t)
	// The source's push region crosses the agnostic element and ends at
	// the queue: its output is pull, so the flood must not continue into
	// the downstream pull chain.
	if got := PushFlood(r, pr, s, -1); !reflect.DeepEqual(got, []int{a, q}) {
		t.Errorf("PushFlood(s) = %v, want [%d %d]", got, a, q)
	}
	if got := PushFlood(r, pr, a, -1); !reflect.DeepEqual(got, []int{q}) {
		t.Errorf("PushFlood(a) = %v, want [%d]", got, q)
	}
	// A pull-side element drives no pushes at all.
	if got := PushFlood(r, pr, q, -1); len(got) != 0 {
		t.Errorf("PushFlood(q) = %v, want empty (output is pull)", got)
	}
}

func TestPushFloodPortSelection(t *testing.T) {
	r := New()
	s := r.MustAddElement("s", "PushSrc", "", "")
	sw := r.MustAddElement("sw", "Agn", "", "")
	x0 := r.MustAddElement("x0", "PushSink", "", "")
	x1 := r.MustAddElement("x1", "PushSink", "", "")
	r.Connect(s, 0, sw, 0)
	r.Connect(sw, 0, x0, 0)
	r.Connect(sw, 1, x1, 0)
	pr, err := AssignProcessing(r, fakeSpecs{})
	if err != nil {
		t.Fatal(err)
	}
	if got := PushFlood(r, pr, sw, 0); !reflect.DeepEqual(got, []int{x0}) {
		t.Errorf("PushFlood(sw, 0) = %v, want [%d]", got, x0)
	}
	if got := PushFlood(r, pr, sw, 1); !reflect.DeepEqual(got, []int{x1}) {
		t.Errorf("PushFlood(sw, 1) = %v, want [%d]", got, x1)
	}
	if got := PushFlood(r, pr, sw, -1); !reflect.DeepEqual(got, []int{x0, x1}) {
		t.Errorf("PushFlood(sw, -1) = %v, want both sinks", got)
	}
}

func TestPullFloodHaltsAtQueueInput(t *testing.T) {
	r, pr, _, _, q, b, k := chain(t)
	pulled, pushed := PullFlood(r, pr, k)
	// The sink's pull region reaches back to the queue and stops: the
	// queue's input is push, so the pushing source's region is foreign.
	if !reflect.DeepEqual(pulled, []int{q, b}) {
		t.Errorf("PullFlood(k) pulled = %v, want [%d %d]", pulled, q, b)
	}
	if len(pushed) != 0 {
		t.Errorf("PullFlood(k) pushed = %v, want empty", pushed)
	}
}

func TestPullFloodSidePushes(t *testing.T) {
	// An element with a push output sitting in a pull path (a CheckPaint
	// error port, say) pushes in the puller's task context: the flood
	// must report the push target in pushed.
	r := New()
	s := r.MustAddElement("s", "PushSrc", "", "")
	q := r.MustAddElement("q", "Q", "", "")
	m := r.MustAddElement("m", "Mixed", "", "") // a/ah: out 0 agnostic, out 1+ push
	k := r.MustAddElement("k", "PullSink", "", "")
	d := r.MustAddElement("d", "PushSink", "", "")
	r.Connect(s, 0, q, 0)
	r.Connect(q, 0, m, 0)
	r.Connect(m, 0, k, 0)
	r.Connect(m, 1, d, 0)
	pr, err := AssignProcessing(r, fakeSpecs{})
	if err != nil {
		t.Fatal(err)
	}
	pulled, pushed := PullFlood(r, pr, k)
	if !reflect.DeepEqual(pulled, []int{q, m}) {
		t.Errorf("pulled = %v, want [%d %d]", pulled, q, m)
	}
	if !reflect.DeepEqual(pushed, []int{d}) {
		t.Errorf("pushed = %v, want [%d] (side push out of the pull chain)", pushed, d)
	}
}
