package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

func build(t *testing.T) (*Router, int, int, int) {
	t.Helper()
	r := New()
	a := r.MustAddElement("a", "A", "", "")
	b := r.MustAddElement("b", "B", "", "")
	c := r.MustAddElement("c", "C", "", "")
	r.Connect(a, 0, b, 0)
	r.Connect(b, 0, c, 0)
	return r, a, b, c
}

func TestAddFindElement(t *testing.T) {
	r, a, _, _ := build(t)
	if r.FindElement("a") != a {
		t.Error("FindElement failed")
	}
	if r.FindElement("nope") != -1 {
		t.Error("FindElement found missing element")
	}
	if _, err := r.AddElement("a", "X", "", ""); err == nil {
		t.Error("duplicate AddElement succeeded")
	}
}

func TestAnonymousNames(t *testing.T) {
	r := New()
	i1, _ := r.AddElement("", "Queue", "", "")
	i2, _ := r.AddElement("", "Queue", "", "")
	n1, n2 := r.Element(i1).Name, r.Element(i2).Name
	if n1 == n2 {
		t.Errorf("anonymous names collide: %q", n1)
	}
	if !strings.HasPrefix(n1, "Queue@") {
		t.Errorf("anonymous name = %q", n1)
	}
}

func TestConnectDeduplicates(t *testing.T) {
	r, a, b, _ := build(t)
	r.Connect(a, 0, b, 0)
	if len(r.Conns) != 2 {
		t.Errorf("conns = %d, want 2", len(r.Conns))
	}
}

func TestDisconnect(t *testing.T) {
	r, a, b, _ := build(t)
	r.Disconnect(a, 0, b, 0)
	if len(r.Conns) != 1 {
		t.Errorf("conns = %d, want 1", len(r.Conns))
	}
	r.Disconnect(a, 0, b, 0) // no-op
	if len(r.Conns) != 1 {
		t.Error("double disconnect removed extra connection")
	}
}

func TestRemoveElement(t *testing.T) {
	r, _, b, _ := build(t)
	r.RemoveElement(b)
	if r.FindElement("b") != -1 {
		t.Error("removed element still findable")
	}
	if len(r.Conns) != 0 {
		t.Errorf("conns = %d, want 0 after removing middle element", len(r.Conns))
	}
	if r.NumElements() != 2 {
		t.Errorf("NumElements = %d", r.NumElements())
	}
}

func TestRemoveAndSplice(t *testing.T) {
	r, a, b, c := build(t)
	r.RemoveAndSplice(b)
	out := r.OutputConns(a, 0)
	if len(out) != 1 || out[0].To != c {
		t.Errorf("splice failed: %v", out)
	}
}

func TestRemoveAndSpliceMultiPort(t *testing.T) {
	r := New()
	s1 := r.MustAddElement("s1", "S", "", "")
	s2 := r.MustAddElement("s2", "S", "", "")
	mid := r.MustAddElement("m", "Null2", "", "")
	d1 := r.MustAddElement("d1", "D", "", "")
	d2 := r.MustAddElement("d2", "D", "", "")
	r.Connect(s1, 0, mid, 0)
	r.Connect(s2, 0, mid, 1)
	r.Connect(mid, 0, d1, 0)
	r.Connect(mid, 1, d2, 0)
	r.RemoveAndSplice(mid)
	if got := r.OutputConns(s1, 0); len(got) != 1 || got[0].To != d1 {
		t.Errorf("port 0 splice: %v", got)
	}
	if got := r.OutputConns(s2, 0); len(got) != 1 || got[0].To != d2 {
		t.Errorf("port 1 splice: %v", got)
	}
}

func TestCompact(t *testing.T) {
	r, a, b, c := build(t)
	r.RemoveElement(a)
	remap := r.Compact()
	if remap[a] != -1 {
		t.Error("removed element not remapped to -1")
	}
	if remap[b] != 0 || remap[c] != 1 {
		t.Errorf("remap = %v", remap)
	}
	if len(r.Conns) != 1 || r.Conns[0].From != 0 || r.Conns[0].To != 1 {
		t.Errorf("conns after compact = %v", r.Conns)
	}
	if r.FindElement("b") != 0 {
		t.Error("name map stale after compact")
	}
}

func TestPortCounts(t *testing.T) {
	r := New()
	x := r.MustAddElement("x", "X", "", "")
	y := r.MustAddElement("y", "Y", "", "")
	r.Connect(x, 3, y, 1)
	if r.NOutputs(x) != 4 {
		t.Errorf("NOutputs = %d", r.NOutputs(x))
	}
	if r.NInputs(y) != 2 {
		t.Errorf("NInputs = %d", r.NInputs(y))
	}
	if r.NInputs(x) != 0 || r.NOutputs(y) != 0 {
		t.Error("unconnected side nonzero")
	}
}

func TestClone(t *testing.T) {
	r, a, b, _ := build(t)
	r.Archive["gen.go"] = []byte("x")
	cp := r.Clone()
	cp.RemoveElement(a)
	cp.Element(b).Config = "changed"
	if r.FindElement("a") != a {
		t.Error("clone removal affected original")
	}
	if r.Element(b).Config == "changed" {
		t.Error("clone element mutation affected original")
	}
	if string(cp.Archive["gen.go"]) != "x" {
		t.Error("archive not cloned")
	}
}

func TestRename(t *testing.T) {
	r, a, _, _ := build(t)
	if err := r.Rename(a, "alpha"); err != nil {
		t.Fatal(err)
	}
	if r.FindElement("alpha") != a || r.FindElement("a") != -1 {
		t.Error("rename bookkeeping wrong")
	}
	if err := r.Rename(a, "b"); err == nil {
		t.Error("rename onto existing name succeeded")
	}
}

func TestParseProcCode(t *testing.T) {
	cases := []struct {
		code    string
		in, out []PortKind
		bad     bool
	}{
		{"h/h", []PortKind{Push}, []PortKind{Push}, false},
		{"l/l", []PortKind{Pull}, []PortKind{Pull}, false},
		{"a/ah", []PortKind{Agnostic}, []PortKind{Agnostic, Push}, false},
		{"h/lh", []PortKind{Push}, []PortKind{Pull, Push}, false},
		{"hl/", []PortKind{Push, Pull}, []PortKind{Agnostic}, false},
		{"x/y", nil, nil, true},
		{"h/h/h", nil, nil, true},
	}
	for _, c := range cases {
		pc, err := ParseProcCode(c.code)
		if c.bad {
			if err == nil {
				t.Errorf("ParseProcCode(%q) succeeded", c.code)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseProcCode(%q): %v", c.code, err)
			continue
		}
		for i, want := range c.in {
			if pc.Input(i) != want {
				t.Errorf("%q input %d = %v, want %v", c.code, i, pc.Input(i), want)
			}
		}
		for i, want := range c.out {
			if pc.Output(i) != want {
				t.Errorf("%q output %d = %v, want %v", c.code, i, pc.Output(i), want)
			}
		}
	}
	// Repetition of the last character.
	pc, _ := ParseProcCode("a/ah")
	if pc.Output(5) != Push {
		t.Error("output code repetition failed")
	}
}

// fakeSpecs provides processing codes by class-name convention:
// PushSrc "/h", PullSink "l/", Agn "a/a", Q "h/l", PushSink "h/".
type fakeSpecs struct{}

func (fakeSpecs) ProcessingCode(class string) (string, bool) {
	switch class {
	case "PushSrc":
		return "/h", true
	case "PullSink":
		return "l/", true
	case "Agn", "Agn2":
		return "a/a", true
	case "Q":
		return "h/l", true
	case "PushSink":
		return "h/", true
	case "Mixed":
		return "a/ah", true
	}
	return "", false
}

func (fakeSpecs) FlowCode(class string) (string, bool) { return "x/x", true }

func (fakeSpecs) PortCounts(class, config string) (PortRange, PortRange, bool) {
	return AtLeast(0), AtLeast(0), true
}

func TestAssignProcessingChain(t *testing.T) {
	r := New()
	s := r.MustAddElement("s", "PushSrc", "", "")
	a := r.MustAddElement("a", "Agn", "", "")
	q := r.MustAddElement("q", "Q", "", "")
	b := r.MustAddElement("b", "Agn2", "", "")
	k := r.MustAddElement("k", "PullSink", "", "")
	r.Connect(s, 0, a, 0)
	r.Connect(a, 0, q, 0)
	r.Connect(q, 0, b, 0)
	r.Connect(b, 0, k, 0)
	pr, err := AssignProcessing(r, fakeSpecs{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.InputKind(a, 0) != Push || pr.OutputKind(a, 0) != Push {
		t.Error("agnostic element before queue should be push")
	}
	if pr.InputKind(b, 0) != Pull || pr.OutputKind(b, 0) != Pull {
		t.Error("agnostic element after queue should be pull")
	}
	if pr.OutputKind(s, 0) != Push || pr.InputKind(k, 0) != Pull {
		t.Error("endpoint kinds wrong")
	}
}

func TestAssignProcessingConflict(t *testing.T) {
	r := New()
	s := r.MustAddElement("s", "PushSrc", "", "")
	k := r.MustAddElement("k", "PullSink", "", "")
	r.Connect(s, 0, k, 0) // push -> pull with no queue: conflict
	if _, err := AssignProcessing(r, fakeSpecs{}); err == nil {
		t.Error("push->pull conflict not detected")
	}
}

func TestAssignProcessingAgnosticPropagatesThroughElement(t *testing.T) {
	// s(push) -> a(agnostic) ; a -> k1(pull sink) must conflict because
	// a's agnostic ports are tied.
	r := New()
	s := r.MustAddElement("s", "PushSrc", "", "")
	a := r.MustAddElement("a", "Agn", "", "")
	k := r.MustAddElement("k", "PullSink", "", "")
	r.Connect(s, 0, a, 0)
	r.Connect(a, 0, k, 0)
	if _, err := AssignProcessing(r, fakeSpecs{}); err == nil {
		t.Error("conflict through agnostic element not detected")
	}
}

func TestAssignProcessingUnknownClass(t *testing.T) {
	r := New()
	r.MustAddElement("x", "Zorp", "", "")
	if _, err := AssignProcessing(r, fakeSpecs{}); err == nil {
		t.Error("unknown class not reported")
	}
}

func TestAssignProcessingMixedCode(t *testing.T) {
	// Mixed is "a/ah": output 1 is hard push, input and output 0
	// agnostic. Feed from a pull context via port 0.
	r := New()
	q := r.MustAddElement("q", "Q", "", "")
	m := r.MustAddElement("m", "Mixed", "", "")
	k := r.MustAddElement("k", "PullSink", "", "")
	p := r.MustAddElement("p", "PushSink", "", "")
	r.Connect(q, 0, m, 0)
	r.Connect(m, 0, k, 0)
	r.Connect(m, 1, p, 0)
	pr, err := AssignProcessing(r, fakeSpecs{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.InputKind(m, 0) != Pull || pr.OutputKind(m, 0) != Pull {
		t.Error("agnostic ports should resolve pull")
	}
	if pr.OutputKind(m, 1) != Push {
		t.Error("hard push port changed")
	}
}

func TestFlowCode(t *testing.T) {
	fc, err := ParseFlowCode("x/x")
	if err != nil {
		t.Fatal(err)
	}
	if !fc.Connects(0, 0) || !fc.Connects(2, 5) {
		t.Error("x/x should connect everything")
	}
	fc2, _ := ParseFlowCode("xy/x")
	if !fc2.Connects(0, 0) || fc2.Connects(1, 0) {
		t.Error("xy/x semantics wrong")
	}
	fc3, _ := ParseFlowCode("#/#")
	if !fc3.Connects(1, 1) || fc3.Connects(0, 1) {
		t.Error("#/# semantics wrong")
	}
	for _, bad := range []string{"", "x", "x/y/z", "/x", "x/"} {
		if _, err := ParseFlowCode(bad); err == nil {
			t.Errorf("ParseFlowCode(%q) succeeded", bad)
		}
	}
}

func TestPortRange(t *testing.T) {
	if !Exactly(2).Contains(2) || Exactly(2).Contains(3) {
		t.Error("Exactly wrong")
	}
	if !AtLeast(1).Contains(100) || AtLeast(1).Contains(0) {
		t.Error("AtLeast wrong")
	}
	if !Between(1, 3).Contains(2) || Between(1, 3).Contains(4) {
		t.Error("Between wrong")
	}
}

type exactSpecs struct{}

func (exactSpecs) ProcessingCode(class string) (string, bool) { return "a/a", true }
func (exactSpecs) FlowCode(class string) (string, bool)       { return "x/x", true }
func (exactSpecs) PortCounts(class, config string) (PortRange, PortRange, bool) {
	if class == "OneOne" {
		return Exactly(1), Exactly(1), true
	}
	return AtLeast(0), AtLeast(0), true
}

func TestCheckPorts(t *testing.T) {
	r := New()
	x := r.MustAddElement("x", "OneOne", "", "")
	y := r.MustAddElement("y", "Any", "", "")
	r.Connect(x, 0, y, 0)
	r.Connect(x, 1, y, 1) // second output: violates Exactly(1)
	errs := CheckPorts(r, exactSpecs{})
	if len(errs) != 2 { // 0 inputs (wants 1) and 2 outputs (wants 1)
		t.Errorf("errors = %v", errs)
	}
}

func TestCheckConnectionDiscipline(t *testing.T) {
	r := New()
	s := r.MustAddElement("s", "PushSrc", "", "")
	k1 := r.MustAddElement("k1", "PushSink", "", "")
	k2 := r.MustAddElement("k2", "PushSink", "", "")
	r.Connect(s, 0, k1, 0)
	r.Connect(s, 0, k2, 0) // two connections from one push output
	pr, err := AssignProcessing(r, fakeSpecs{})
	if err != nil {
		t.Fatal(err)
	}
	errs := CheckConnectionDiscipline(r, pr)
	if len(errs) == 0 {
		t.Error("double push connection not reported")
	}
}

func TestConnectionInvariantProperty(t *testing.T) {
	// Property: after any sequence of connect/disconnect pairs, the
	// connection set has no duplicates.
	f := func(ops []uint8) bool {
		r := New()
		a := r.MustAddElement("a", "A", "", "")
		b := r.MustAddElement("b", "B", "", "")
		for _, op := range ops {
			fp, tp := int(op>>4)&3, int(op>>2)&3
			if op&1 == 0 {
				r.Connect(a, fp, b, tp)
			} else {
				r.Disconnect(a, fp, b, tp)
			}
		}
		seen := map[Connection]bool{}
		for _, c := range r.Conns {
			if seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConnsFromTo(t *testing.T) {
	r, a, b, c := build(t)
	if got := r.ConnsFrom(a); len(got) != 1 || got[0].To != b {
		t.Errorf("ConnsFrom(a) = %v", got)
	}
	if got := r.ConnsTo(c); len(got) != 1 || got[0].From != b {
		t.Errorf("ConnsTo(c) = %v", got)
	}
	if r.ConnsFrom(c) != nil || r.ConnsTo(a) != nil {
		t.Error("endpoint connections wrong")
	}
}

func TestLiveIndicesAndDead(t *testing.T) {
	r, a, b, _ := build(t)
	r.RemoveElement(b)
	if !r.Dead(b) || r.Dead(a) {
		t.Error("Dead flags wrong")
	}
	live := r.LiveIndices()
	if len(live) != 2 {
		t.Fatalf("live = %v", live)
	}
	for _, i := range live {
		if i == b {
			t.Error("dead element listed live")
		}
	}
}

func TestSortConnsDeterministic(t *testing.T) {
	r := New()
	a := r.MustAddElement("a", "A", "", "")
	b := r.MustAddElement("b", "B", "", "")
	r.Connect(b, 1, a, 0)
	r.Connect(a, 1, b, 0)
	r.Connect(a, 0, b, 1)
	r.SortConns()
	want := []Connection{{a, 0, b, 1}, {a, 1, b, 0}, {b, 1, a, 0}}
	for i, c := range r.Conns {
		if c != want[i] {
			t.Fatalf("sorted conns = %v", r.Conns)
		}
	}
}

func TestRequireDeduplicates(t *testing.T) {
	r := New()
	r.Require("x")
	r.Require("x")
	r.Require("y")
	if len(r.Requirements) != 2 {
		t.Errorf("requirements = %v", r.Requirements)
	}
}

func TestStringRendersGraph(t *testing.T) {
	r, _, _, _ := build(t)
	s := r.String()
	for _, want := range []string{"a :: A", "a[0] -> [0]b", "b[0] -> [0]c"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	if Push.String() != "push" || Pull.String() != "pull" || Agnostic.String() != "agnostic" {
		t.Error("PortKind strings wrong")
	}
}
