// Package graph defines the router-configuration graph that the
// optimizer tools analyze and transform. A Router is a set of named
// elements (class + configuration string) and directed port-to-port
// connections. The package provides the "extensive set of graph
// manipulations" the paper describes (§5.1): adding and removing
// elements, rerouting connections, and replacing subgraphs — operations
// that exist for the optimizers, not for the runtime, where
// configurations are static.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Element is one vertex of a router configuration.
type Element struct {
	Name   string
	Class  string
	Config string
	// Landmark records where the element came from (file:line or a
	// tool name) for error messages.
	Landmark string
	// dead marks an element removed but not yet compacted away.
	dead bool
}

// Connection is one directed edge between element ports.
type Connection struct {
	From     int // element index
	FromPort int
	To       int // element index
	ToPort   int
}

// Router is a configuration graph.
type Router struct {
	Elements []*Element
	Conns    []Connection
	// Requirements lists require() statements (package names the
	// configuration needs, e.g. names of generated element packages).
	Requirements []string
	// Archive holds extra files bundled with the configuration —
	// generated source code from tools like click-fastclassifier.
	Archive map[string][]byte
	// AnonCounter numbers anonymous elements (Class@1, Class@2...).
	AnonCounter int

	byName map[string]int
}

// New returns an empty router graph.
func New() *Router {
	return &Router{byName: map[string]int{}, Archive: map[string][]byte{}}
}

// NumElements returns the number of live elements.
func (r *Router) NumElements() int {
	n := 0
	for _, e := range r.Elements {
		if !e.dead {
			n++
		}
	}
	return n
}

// Element returns the element with the given index.
func (r *Router) Element(i int) *Element { return r.Elements[i] }

// Dead reports whether element i has been removed.
func (r *Router) Dead(i int) bool { return r.Elements[i].dead }

// AddElement adds an element and returns its index. An empty name is
// assigned an anonymous name derived from the class ("Class@3").
func (r *Router) AddElement(name, class, config, landmark string) (int, error) {
	if name == "" {
		r.AnonCounter++
		name = fmt.Sprintf("%s@%d", class, r.AnonCounter)
	}
	if _, exists := r.byName[name]; exists {
		return -1, fmt.Errorf("graph: redeclaration of element %q", name)
	}
	idx := len(r.Elements)
	r.Elements = append(r.Elements, &Element{Name: name, Class: class, Config: config, Landmark: landmark})
	r.byName[name] = idx
	return idx, nil
}

// MustAddElement is AddElement for programmatic construction where a
// name collision is a bug.
func (r *Router) MustAddElement(name, class, config, landmark string) int {
	idx, err := r.AddElement(name, class, config, landmark)
	if err != nil {
		panic(err)
	}
	return idx
}

// FindElement returns the index of the named live element, or -1.
func (r *Router) FindElement(name string) int {
	idx, ok := r.byName[name]
	if !ok || r.Elements[idx].dead {
		return -1
	}
	return idx
}

// Connect adds a connection. Duplicate connections are ignored (Click
// treats the connection set as a set).
func (r *Router) Connect(from, fromPort, to, toPort int) {
	for _, c := range r.Conns {
		if c.From == from && c.FromPort == fromPort && c.To == to && c.ToPort == toPort {
			return
		}
	}
	r.Conns = append(r.Conns, Connection{From: from, FromPort: fromPort, To: to, ToPort: toPort})
}

// Disconnect removes the matching connection if present.
func (r *Router) Disconnect(from, fromPort, to, toPort int) {
	for i, c := range r.Conns {
		if c.From == from && c.FromPort == fromPort && c.To == to && c.ToPort == toPort {
			r.Conns = append(r.Conns[:i], r.Conns[i+1:]...)
			return
		}
	}
}

// RemoveElement marks an element dead and deletes all its connections.
func (r *Router) RemoveElement(i int) {
	e := r.Elements[i]
	if e.dead {
		return
	}
	e.dead = true
	delete(r.byName, e.Name)
	kept := r.Conns[:0]
	for _, c := range r.Conns {
		if c.From != i && c.To != i {
			kept = append(kept, c)
		}
	}
	r.Conns = kept
}

// RemoveElements marks every listed element dead in one pass: names are
// dropped from the index and the connection list is filtered once,
// instead of once per element as repeated RemoveElement calls would.
// This is the bulk operation incremental installs use when a whole
// name-prefixed subgraph (a management-plane tenant) leaves the router.
func (r *Router) RemoveElements(idx []int) {
	dead := make(map[int]bool, len(idx))
	for _, i := range idx {
		e := r.Elements[i]
		if e.dead {
			continue
		}
		e.dead = true
		delete(r.byName, e.Name)
		dead[i] = true
	}
	if len(dead) == 0 {
		return
	}
	kept := r.Conns[:0]
	for _, c := range r.Conns {
		if !dead[c.From] && !dead[c.To] {
			kept = append(kept, c)
		}
	}
	r.Conns = kept
}

// AppendFrom bulk-appends another graph's live elements and connections
// to r, returning the index remap (sub index -> new index in r, -1 for
// dead entries). Element names must not collide with r's — the caller
// splices disjoint namespaces (e.g. "tenant/"-prefixed subgraphs) — and
// the whole append is rejected before any mutation if one does. Unlike
// per-element AddElement+Connect loops this never scans the existing
// connection list: disjoint namespaces cannot introduce duplicates.
func (r *Router) AppendFrom(sub *Router) ([]int, error) {
	for _, e := range sub.Elements {
		if e.dead {
			continue
		}
		if _, exists := r.byName[e.Name]; exists {
			return nil, fmt.Errorf("graph: splice collision on element %q", e.Name)
		}
	}
	remap := make([]int, len(sub.Elements))
	for i, e := range sub.Elements {
		if e.dead {
			remap[i] = -1
			continue
		}
		cp := *e
		remap[i] = len(r.Elements)
		r.Elements = append(r.Elements, &cp)
		r.byName[cp.Name] = remap[i]
	}
	for _, c := range sub.Conns {
		if remap[c.From] < 0 || remap[c.To] < 0 {
			continue
		}
		r.Conns = append(r.Conns, Connection{From: remap[c.From], FromPort: c.FromPort, To: remap[c.To], ToPort: c.ToPort})
	}
	for _, req := range sub.Requirements {
		r.Require(req)
	}
	return remap, nil
}

// RemoveAndSplice removes element i, splicing each input connection on
// port p to every output connection on port p. It is the edit used when
// deleting a pass-through element (Null, redundant Align): packets that
// would have entered input p leave via output p's targets.
func (r *Router) RemoveAndSplice(i int) {
	ins := map[int][]Connection{}
	outs := map[int][]Connection{}
	for _, c := range r.Conns {
		if c.To == i {
			ins[c.ToPort] = append(ins[c.ToPort], c)
		}
		if c.From == i {
			outs[c.FromPort] = append(outs[c.FromPort], c)
		}
	}
	r.RemoveElement(i)
	for port, inConns := range ins {
		for _, ic := range inConns {
			for _, oc := range outs[port] {
				r.Connect(ic.From, ic.FromPort, oc.To, oc.ToPort)
			}
		}
	}
}

// Compact removes dead elements from the slice, renumbering indices in
// all connections. It returns the mapping from old index to new index
// (-1 for removed elements).
func (r *Router) Compact() []int {
	remap := make([]int, len(r.Elements))
	live := r.Elements[:0]
	for i, e := range r.Elements {
		if e.dead {
			remap[i] = -1
			continue
		}
		remap[i] = len(live)
		live = append(live, e)
	}
	r.Elements = live
	r.byName = make(map[string]int, len(live))
	for i, e := range live {
		r.byName[e.Name] = i
	}
	for i := range r.Conns {
		r.Conns[i].From = remap[r.Conns[i].From]
		r.Conns[i].To = remap[r.Conns[i].To]
	}
	return remap
}

// OutputConns returns the connections leaving element i's port p.
func (r *Router) OutputConns(i, port int) []Connection {
	var out []Connection
	for _, c := range r.Conns {
		if c.From == i && c.FromPort == port {
			out = append(out, c)
		}
	}
	return out
}

// InputConns returns the connections entering element i's port p.
func (r *Router) InputConns(i, port int) []Connection {
	var in []Connection
	for _, c := range r.Conns {
		if c.To == i && c.ToPort == port {
			in = append(in, c)
		}
	}
	return in
}

// ConnsFrom returns all connections leaving element i.
func (r *Router) ConnsFrom(i int) []Connection {
	var out []Connection
	for _, c := range r.Conns {
		if c.From == i {
			out = append(out, c)
		}
	}
	return out
}

// ConnsTo returns all connections entering element i.
func (r *Router) ConnsTo(i int) []Connection {
	var in []Connection
	for _, c := range r.Conns {
		if c.To == i {
			in = append(in, c)
		}
	}
	return in
}

// NInputs returns the number of input ports element i uses (max port
// number + 1 over all incoming connections).
func (r *Router) NInputs(i int) int {
	n := 0
	for _, c := range r.Conns {
		if c.To == i && c.ToPort+1 > n {
			n = c.ToPort + 1
		}
	}
	return n
}

// NOutputs returns the number of output ports element i uses.
func (r *Router) NOutputs(i int) int {
	n := 0
	for _, c := range r.Conns {
		if c.From == i && c.FromPort+1 > n {
			n = c.FromPort + 1
		}
	}
	return n
}

// LiveIndices returns the indices of all live elements in order.
func (r *Router) LiveIndices() []int {
	var out []int
	for i, e := range r.Elements {
		if !e.dead {
			out = append(out, i)
		}
	}
	return out
}

// SortConns orders the connection list (by from-element, from-port,
// to-element, to-port), for deterministic output.
func (r *Router) SortConns() {
	sort.Slice(r.Conns, func(a, b int) bool {
		x, y := r.Conns[a], r.Conns[b]
		if x.From != y.From {
			return x.From < y.From
		}
		if x.FromPort != y.FromPort {
			return x.FromPort < y.FromPort
		}
		if x.To != y.To {
			return x.To < y.To
		}
		return x.ToPort < y.ToPort
	})
}

// Clone returns a deep copy of the router graph.
func (r *Router) Clone() *Router {
	n := New()
	n.Elements = make([]*Element, len(r.Elements))
	for i, e := range r.Elements {
		cp := *e
		n.Elements[i] = &cp
		if !e.dead {
			n.byName[e.Name] = i
		}
	}
	n.Conns = append([]Connection(nil), r.Conns...)
	n.Requirements = append([]string(nil), r.Requirements...)
	n.AnonCounter = r.AnonCounter
	for k, v := range r.Archive {
		n.Archive[k] = append([]byte(nil), v...)
	}
	return n
}

// Require records a requirement if not already present.
func (r *Router) Require(feature string) {
	for _, f := range r.Requirements {
		if f == feature {
			return
		}
	}
	r.Requirements = append(r.Requirements, feature)
}

// Rename changes an element's name, keeping the index map consistent.
func (r *Router) Rename(i int, name string) error {
	e := r.Elements[i]
	if e.dead {
		return fmt.Errorf("graph: renaming dead element")
	}
	if name == e.Name {
		return nil
	}
	if _, exists := r.byName[name]; exists {
		return fmt.Errorf("graph: rename to existing name %q", name)
	}
	delete(r.byName, e.Name)
	e.Name = name
	r.byName[name] = i
	return nil
}

// String renders a compact description for debugging.
func (r *Router) String() string {
	var b strings.Builder
	for i, e := range r.Elements {
		if e.dead {
			continue
		}
		fmt.Fprintf(&b, "%d: %s :: %s(%s)\n", i, e.Name, e.Class, e.Config)
	}
	for _, c := range r.Conns {
		fmt.Fprintf(&b, "%s[%d] -> [%d]%s\n", r.Elements[c.From].Name, c.FromPort, c.ToPort, r.Elements[c.To].Name)
	}
	return b.String()
}
