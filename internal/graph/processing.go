package graph

import (
	"fmt"
)

// PortKind is the packet-transfer discipline of a port.
type PortKind int

const (
	// Agnostic ports take on the discipline of whatever they are
	// connected to.
	Agnostic PortKind = iota
	// Push ports transfer packets on the initiative of the upstream
	// element.
	Push
	// Pull ports transfer packets on the initiative of the downstream
	// element.
	Pull
)

func (k PortKind) String() string {
	switch k {
	case Push:
		return "push"
	case Pull:
		return "pull"
	}
	return "agnostic"
}

// SpecSource supplies per-class specifications to graph analyses. The
// element library implements it; optimizer tests can supply small fakes.
// This is the paper's "external specification" mechanism (§5.3): tools
// cannot link with element implementations, so element properties are
// published as simple textual codes.
type SpecSource interface {
	// ProcessingCode returns the class's processing code, e.g. "a/ah"
	// (paper §5.3), and whether the class is known.
	ProcessingCode(class string) (string, bool)
	// FlowCode returns the class's packet-flow code, e.g. "x/x".
	FlowCode(class string) (string, bool)
	// PortCounts returns the input and output port count ranges for an
	// element of this class with the given configuration. A count of
	// -1 means "any number".
	PortCounts(class, config string) (nin, nout PortRange, ok bool)
}

// PortRange bounds the legal number of ports. Min == Max for an exact
// count; Max == -1 for unbounded.
type PortRange struct {
	Min int
	Max int
}

// Exactly returns a PortRange requiring exactly n ports.
func Exactly(n int) PortRange { return PortRange{Min: n, Max: n} }

// AtLeast returns a PortRange requiring n or more ports.
func AtLeast(n int) PortRange { return PortRange{Min: n, Max: -1} }

// Between returns a PortRange requiring between lo and hi ports.
func Between(lo, hi int) PortRange { return PortRange{Min: lo, Max: hi} }

// Contains reports whether n ports satisfies the range.
func (r PortRange) Contains(n int) bool {
	return n >= r.Min && (r.Max < 0 || n <= r.Max)
}

// ProcCode is a parsed processing code: the per-port kinds for inputs
// and outputs, with the last entry repeating for higher-numbered ports.
type ProcCode struct {
	In  []PortKind
	Out []PortKind
}

// ParseProcCode parses a textual processing code like "a/ah" or "h/l".
// 'h' is push, 'l' is pull, 'a' is agnostic; the part before '/'
// describes inputs and after '/' outputs; the final character of each
// part repeats for any additional ports.
func ParseProcCode(code string) (ProcCode, error) {
	var pc ProcCode
	part := &pc.In
	for i := 0; i < len(code); i++ {
		switch c := code[i]; c {
		case 'h':
			*part = append(*part, Push)
		case 'l':
			*part = append(*part, Pull)
		case 'a':
			*part = append(*part, Agnostic)
		case '/':
			if part == &pc.Out {
				return ProcCode{}, fmt.Errorf("graph: processing code %q has two '/'", code)
			}
			part = &pc.Out
		default:
			return ProcCode{}, fmt.Errorf("graph: bad character %q in processing code %q", string(c), code)
		}
	}
	if len(pc.In) == 0 {
		pc.In = []PortKind{Agnostic}
	}
	if len(pc.Out) == 0 {
		pc.Out = []PortKind{Agnostic}
	}
	return pc, nil
}

// Input returns the declared kind of input port i.
func (pc ProcCode) Input(i int) PortKind {
	if i >= len(pc.In) {
		return pc.In[len(pc.In)-1]
	}
	return pc.In[i]
}

// Output returns the declared kind of output port i.
func (pc ProcCode) Output(i int) PortKind {
	if i >= len(pc.Out) {
		return pc.Out[len(pc.Out)-1]
	}
	return pc.Out[i]
}

// Processing holds the resolved push/pull assignment for every port of
// every element in a router.
type Processing struct {
	In  [][]PortKind // [element][port]
	Out [][]PortKind
}

// InputKind returns the resolved kind of element e's input port p.
func (pr *Processing) InputKind(e, p int) PortKind { return pr.In[e][p] }

// OutputKind returns the resolved kind of element e's output port p.
func (pr *Processing) OutputKind(e, p int) PortKind { return pr.Out[e][p] }

// portRef identifies one port in the union-find used by AssignProcessing.
type portRef struct {
	elem   int
	output bool
	port   int
}

// AssignProcessing resolves every port of every live element to push or
// pull. Agnostic ports within a single element are tied together
// (packets flow through agnostic elements without changing discipline),
// and connected ports must agree. Unconstrained agnostic ports default
// to push. It returns an error naming the first conflicting connection.
func AssignProcessing(r *Router, specs SpecSource) (*Processing, error) {
	n := len(r.Elements)
	pr := &Processing{In: make([][]PortKind, n), Out: make([][]PortKind, n)}
	codes := make([]ProcCode, n)

	// Assign union-find ids to every port.
	ids := map[portRef]int{}
	parent := []int{}
	value := []PortKind{} // resolved kind of each set root
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	makeSet := func(k PortKind) int {
		id := len(parent)
		parent = append(parent, id)
		value = append(value, k)
		return id
	}
	var conflict error
	union := func(a, b int, where string) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		va, vb := value[ra], value[rb]
		if va != Agnostic && vb != Agnostic && va != vb {
			if conflict == nil {
				conflict = fmt.Errorf("graph: push/pull conflict at %s", where)
			}
			return
		}
		if va == Agnostic {
			value[ra] = vb
		}
		parent[rb] = ra
	}

	for i, e := range r.Elements {
		if e.dead {
			continue
		}
		codeStr, ok := specs.ProcessingCode(e.Class)
		if !ok {
			return nil, fmt.Errorf("graph: unknown element class %q (element %q)", e.Class, e.Name)
		}
		pc, err := ParseProcCode(codeStr)
		if err != nil {
			return nil, fmt.Errorf("graph: element %q: %v", e.Name, err)
		}
		codes[i] = pc
		nin, nout := r.NInputs(i), r.NOutputs(i)
		pr.In[i] = make([]PortKind, nin)
		pr.Out[i] = make([]PortKind, nout)
		var agnosticSet = -1
		for p := 0; p < nin; p++ {
			k := pc.Input(p)
			id := makeSet(k)
			ids[portRef{i, false, p}] = id
			if k == Agnostic {
				if agnosticSet < 0 {
					agnosticSet = id
				} else {
					union(agnosticSet, id, e.Name)
				}
			}
		}
		for p := 0; p < nout; p++ {
			k := pc.Output(p)
			id := makeSet(k)
			ids[portRef{i, true, p}] = id
			if k == Agnostic {
				if agnosticSet < 0 {
					agnosticSet = id
				} else {
					union(agnosticSet, id, e.Name)
				}
			}
		}
	}

	for _, c := range r.Conns {
		a := ids[portRef{c.From, true, c.FromPort}]
		b := ids[portRef{c.To, false, c.ToPort}]
		where := fmt.Sprintf("%s[%d] -> [%d]%s",
			r.Elements[c.From].Name, c.FromPort, c.ToPort, r.Elements[c.To].Name)
		union(a, b, where)
	}
	if conflict != nil {
		return nil, conflict
	}

	resolve := func(ref portRef) PortKind {
		k := value[find(ids[ref])]
		if k == Agnostic {
			return Push // unconstrained agnostic ports default to push
		}
		return k
	}
	for i, e := range r.Elements {
		if e.dead {
			continue
		}
		for p := range pr.In[i] {
			pr.In[i][p] = resolve(portRef{i, false, p})
		}
		for p := range pr.Out[i] {
			pr.Out[i][p] = resolve(portRef{i, true, p})
		}
	}
	return pr, nil
}

// FlowCode is a parsed packet-flow code describing which input ports'
// packets can emerge from which output ports. Ports labeled with the
// same letter are connected; '#' connects only equal port numbers.
type FlowCode struct {
	In  string
	Out string
}

// ParseFlowCode parses codes like "x/x" (any input flows to any output),
// "xy/x" (only input 0 flows to outputs), or "#/#" (input i flows to
// output i).
func ParseFlowCode(code string) (FlowCode, error) {
	slash := -1
	for i := 0; i < len(code); i++ {
		if code[i] == '/' {
			if slash >= 0 {
				return FlowCode{}, fmt.Errorf("graph: flow code %q has two '/'", code)
			}
			slash = i
		}
	}
	if slash < 0 {
		return FlowCode{}, fmt.Errorf("graph: flow code %q missing '/'", code)
	}
	fc := FlowCode{In: code[:slash], Out: code[slash+1:]}
	if fc.In == "" || fc.Out == "" {
		return FlowCode{}, fmt.Errorf("graph: flow code %q has empty side", code)
	}
	return fc, nil
}

func flowChar(s string, port int) byte {
	if port >= len(s) {
		return s[len(s)-1]
	}
	return s[port]
}

// Connects reports whether packets entering input port in can emerge
// from output port out.
func (fc FlowCode) Connects(in, out int) bool {
	a, b := flowChar(fc.In, in), flowChar(fc.Out, out)
	if a == '#' || b == '#' {
		return a == b && in == out
	}
	return a == b
}

// CheckPorts verifies that every live element's used port counts fall in
// its class's declared ranges. It returns one error per violation.
func CheckPorts(r *Router, specs SpecSource) []error {
	var errs []error
	for i, e := range r.Elements {
		if e.dead {
			continue
		}
		nin, nout, ok := specs.PortCounts(e.Class, e.Config)
		if !ok {
			errs = append(errs, fmt.Errorf("unknown element class %q (element %q)", e.Class, e.Name))
			continue
		}
		if got := r.NInputs(i); !nin.Contains(got) {
			errs = append(errs, fmt.Errorf("element %q (%s) has %d input(s), wants %s", e.Name, e.Class, got, rangeString(nin)))
		}
		if got := r.NOutputs(i); !nout.Contains(got) {
			errs = append(errs, fmt.Errorf("element %q (%s) has %d output(s), wants %s", e.Name, e.Class, got, rangeString(nout)))
		}
	}
	return errs
}

func rangeString(pr PortRange) string {
	switch {
	case pr.Max < 0:
		return fmt.Sprintf("at least %d", pr.Min)
	case pr.Min == pr.Max:
		return fmt.Sprintf("exactly %d", pr.Min)
	}
	return fmt.Sprintf("%d-%d", pr.Min, pr.Max)
}

// CheckConnectionDiscipline verifies push/pull connection rules: a push
// output port and a pull input port must each have exactly one
// connection. It assumes processing has been resolved.
func CheckConnectionDiscipline(r *Router, pr *Processing) []error {
	var errs []error
	for i, e := range r.Elements {
		if e.dead {
			continue
		}
		for p := range pr.Out[i] {
			n := len(r.OutputConns(i, p))
			if pr.Out[i][p] == Push && n > 1 {
				errs = append(errs, fmt.Errorf("element %q push output [%d] has %d connections", e.Name, p, n))
			}
			if n == 0 {
				errs = append(errs, fmt.Errorf("element %q output [%d] not connected", e.Name, p))
			}
		}
		for p := range pr.In[i] {
			n := len(r.InputConns(i, p))
			if pr.In[i][p] == Pull && n > 1 {
				errs = append(errs, fmt.Errorf("element %q pull input [%d] has %d connections", e.Name, p, n))
			}
			if n == 0 {
				errs = append(errs, fmt.Errorf("element %q input [%d] not connected", e.Name, p))
			}
		}
	}
	return errs
}
