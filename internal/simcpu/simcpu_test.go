package simcpu

import (
	"testing"
	"testing/quick"
)

func TestCycleNSConversion(t *testing.T) {
	// 700 MHz: 700 cycles = 1000 ns.
	if ns := P0.CyclesToNS(700); ns != 1000 {
		t.Errorf("CyclesToNS(700) = %v, want 1000", ns)
	}
	if cyc := P0.NSToCycles(1000); cyc != 700 {
		t.Errorf("NSToCycles(1000) = %v, want 700", cyc)
	}
}

func TestConversionRoundTripProperty(t *testing.T) {
	f := func(cyc uint16) bool {
		c := int64(cyc)
		return P0.NSToCycles(P0.CyclesToNS(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChargeCategories(t *testing.T) {
	c := New(P0)
	c.SetCategory(CatRxDevice)
	c.Charge(100)
	c.SetCategory(CatForward)
	c.Charge(200)
	prev := c.SetCategory(CatTxDevice)
	if prev != CatForward {
		t.Errorf("SetCategory returned %v", prev)
	}
	c.Charge(300)
	if c.Cycles(CatRxDevice) != 100 || c.Cycles(CatForward) != 200 || c.Cycles(CatTxDevice) != 300 {
		t.Error("category accounting wrong")
	}
	if c.TotalCycles() != 600 {
		t.Errorf("TotalCycles = %d", c.TotalCycles())
	}
}

func TestIndirectCallPrediction(t *testing.T) {
	c := New(P0)
	sites := NewSites()
	site := sites.Site("ARPQuerier", 0, true)
	tgtA := sites.Target("Queue")
	tgtB := sites.Target("ToDevice")

	// First call: cold BTB, mispredict.
	c.IndirectCall(site, tgtA)
	if c.Mispred != 1 {
		t.Fatalf("cold call mispredicts = %d, want 1", c.Mispred)
	}
	// Repeat same target: predicted.
	c.IndirectCall(site, tgtA)
	if c.Mispred != 1 {
		t.Error("repeated call should be predicted")
	}
	// The Figure 2 pathology: same call site alternating targets is
	// always wrong.
	before := c.Mispred
	for i := 0; i < 10; i++ {
		c.IndirectCall(site, tgtB)
		c.IndirectCall(site, tgtA)
	}
	if got := c.Mispred - before; got != 20 {
		t.Errorf("alternating targets mispredicted %d of 20", got)
	}
}

func TestPredictedVsMispredictedCost(t *testing.T) {
	c := New(P0)
	sites := NewSites()
	site := sites.Site("X", 0, true)
	tgt := sites.Target("Y")
	c.IndirectCall(site, tgt) // mispredict
	miss := c.TotalCycles()
	c.Reset()
	c.IndirectCall(site, tgt) // predicted
	hit := c.TotalCycles()
	if hit != P0.PredictedCall {
		t.Errorf("predicted call = %d cycles, want %d", hit, P0.PredictedCall)
	}
	if miss != P0.PredictedCall+P0.MispredictPenalty {
		t.Errorf("mispredicted call = %d cycles", miss)
	}
}

func TestDirectCallCheaperThanIndirect(t *testing.T) {
	c := New(P0)
	c.DirectCall()
	if c.TotalCycles() != P0.DirectCall {
		t.Errorf("direct call = %d cycles", c.TotalCycles())
	}
	if P0.DirectCall >= P0.PredictedCall {
		t.Error("direct call should be cheaper than predicted indirect")
	}
}

func TestSiteSharingByClass(t *testing.T) {
	sites := NewSites()
	// Two elements of the same class share the call site for a given
	// port — the Figure 2 setup.
	s1 := sites.Site("ARPQuerier", 0, true)
	s2 := sites.Site("ARPQuerier", 0, true)
	if s1 != s2 {
		t.Error("same class+port should share a site")
	}
	if sites.Site("ARPQuerier", 1, true) == s1 {
		t.Error("different ports should not share a site")
	}
	if sites.Site("Counter", 0, true) == s1 {
		t.Error("different classes should not share a site")
	}
	if sites.Site("ARPQuerier", 0, false) == s1 {
		t.Error("input and output sites should differ")
	}
}

func TestMemFetch(t *testing.T) {
	c := New(P0)
	c.MemFetch(4)
	want := P0.NSToCycles(4 * P0.MemFetchNS)
	if c.TotalCycles() != want {
		t.Errorf("4 fetches = %d cycles, want %d", c.TotalCycles(), want)
	}
	if c.MemMiss != 4 {
		t.Errorf("MemMiss = %d", c.MemMiss)
	}
}

func TestDisabled(t *testing.T) {
	c := New(P0)
	c.SetDisabled(true)
	c.Charge(100)
	c.IndirectCall(0, 0)
	c.DirectCall()
	c.MemFetch(1)
	if c.TotalCycles() != 0 || c.Calls != 0 {
		t.Error("disabled CPU accumulated charges")
	}
	c.SetDisabled(false)
	c.Charge(1)
	if c.TotalCycles() != 1 {
		t.Error("re-enabled CPU did not charge")
	}
}

func TestResetPreservesPredictor(t *testing.T) {
	c := New(P0)
	sites := NewSites()
	site := sites.Site("X", 0, true)
	tgt := sites.Target("Y")
	c.IndirectCall(site, tgt)
	c.Reset()
	c.IndirectCall(site, tgt)
	if c.Mispred != 0 {
		t.Error("Reset cleared predictor state")
	}
	c.ResetPredictor()
	c.IndirectCall(site, tgt)
	if c.Mispred != 1 {
		t.Error("ResetPredictor did not clear predictor state")
	}
}

func TestPlatformSanity(t *testing.T) {
	for _, pl := range Platforms {
		if pl.MHz <= 0 || pl.MemFetchNS <= 0 || pl.BTBEntries <= 0 || pl.PCIBuses <= 0 {
			t.Errorf("platform %s has non-positive parameters", pl.Name)
		}
	}
	if P3.MHz <= P2.MHz {
		t.Error("P3 should be faster than P2")
	}
	if P2.PCIMBps <= P1.PCIMBps {
		t.Error("P2 should have the faster bus")
	}
}

func TestReclassifyAsOther(t *testing.T) {
	c := New(P0)
	c.SetCategory(CatRxDevice)
	c.Charge(100)
	snap := c.CategorySnapshot()
	c.SetCategory(CatForward)
	c.Charge(50)
	c.SetCategory(CatTxDevice)
	c.Charge(25)
	c.ReclassifyAsOther(snap)
	if c.Cycles(CatForward) != 0 || c.Cycles(CatTxDevice) != 0 {
		t.Error("charges after snapshot not moved")
	}
	if c.Cycles(CatRxDevice) != 100 {
		t.Error("charges before snapshot were moved")
	}
	if c.Cycles(CatOther) != 75 {
		t.Errorf("Other = %d, want 75", c.Cycles(CatOther))
	}
	if c.TotalCycles() != 175 {
		t.Error("total changed during reclassification")
	}
}
