// Package simcpu models the CPU cost of running a Click router, in
// cycles, on the hardware platforms of the paper's evaluation (§8.1,
// §8.5). Go cannot observe Pentium III branch misprediction or cache
// behaviour directly, so the runtime charges this model instead: every
// inter-element packet transfer charges an indirect-call cost through a
// simulated branch target buffer (correctly predicted virtual calls take
// about 7 cycles, mispredicted ones dozens — §3), devirtualized
// transfers charge a direct-call cost, element work charges per-class
// costs, and compulsory cache misses charge a main-memory fetch
// (~112 ns on the 700 MHz platform, §8.2).
//
// The model is deterministic, so experiment output is reproducible.
package simcpu

import "fmt"

// Category classifies charged time, mirroring Figure 8's CPU cost
// breakdown.
type Category int

const (
	// CatRxDevice is receiving-device interaction (DMA ring handling).
	CatRxDevice Category = iota
	// CatForward is the Click forwarding path.
	CatForward
	// CatTxDevice is transmitting-device interaction.
	CatTxDevice
	// CatOther is everything else (task scheduling overhead).
	CatOther
	numCategories
)

func (c Category) String() string {
	switch c {
	case CatRxDevice:
		return "receiving device interactions"
	case CatForward:
		return "Click forwarding path"
	case CatTxDevice:
		return "transmitting device interactions"
	}
	return "other"
}

// Platform describes one evaluation machine. P0 is the paper's primary
// testbed router host; P1–P3 are the hardware-evolution platforms of
// §8.5.
type Platform struct {
	Name string
	// MHz is the CPU clock rate.
	MHz float64
	// MemFetchNS is a main-memory fetch (cache miss) latency.
	MemFetchNS float64
	// PredictedCall is the cycle cost of a correctly predicted
	// indirect (virtual) call.
	PredictedCall int64
	// MispredictPenalty is the additional cost of a mispredicted
	// indirect call.
	MispredictPenalty int64
	// DirectCall is the cycle cost of a conventional (devirtualized)
	// call.
	DirectCall int64
	// BTBEntries is the size of the direct-mapped branch target
	// buffer.
	BTBEntries int
	// PCIBuses is the number of independent PCI buses.
	PCIBuses int
	// PCIMBps is the usable bandwidth of each PCI bus in MB/s.
	PCIMBps float64
	// PCITransOverheadNS is the fixed per-transaction PCI overhead
	// (arbitration, address phase).
	PCITransOverheadNS float64
}

// CyclesToNS converts a cycle count to nanoseconds on this platform.
func (pl *Platform) CyclesToNS(cycles int64) float64 {
	return float64(cycles) * 1e3 / pl.MHz
}

// NSToCycles converts nanoseconds to (rounded) cycles.
func (pl *Platform) NSToCycles(ns float64) int64 {
	return int64(ns*pl.MHz/1e3 + 0.5)
}

// The evaluation platforms. P0: 700 MHz Pentium III, two 32-bit/33 MHz
// PCI buses, Tulip NICs. P1: 800 MHz P-III, 32-bit/33 MHz PCI. P2: same
// CPU, 64-bit/66 MHz PCI. P3: 1.6 GHz Athlon MP, 64-bit/66 MHz PCI.
// Usable PCI bandwidth is set below the theoretical 133 / 533 MB/s to
// account for arbitration and descriptor traffic.
var (
	P0 = &Platform{
		Name: "P0", MHz: 700, MemFetchNS: 112,
		PredictedCall: 7, MispredictPenalty: 40, DirectCall: 2,
		BTBEntries: 512,
		// Two 32-bit/33 MHz buses. Usable bandwidth and per-transaction
		// overhead are calibrated so the bus saturates where Figures 10
		// and 11 show it: "Simple" caps near 470 kpps while the
		// unoptimized IP router stays CPU-limited.
		PCIBuses: 2, PCIMBps: 61, PCITransOverheadNS: 415,
	}
	P1 = &Platform{
		Name: "P1", MHz: 800, MemFetchNS: 110,
		PredictedCall: 7, MispredictPenalty: 40, DirectCall: 2,
		BTBEntries: 512,
		// One 32-bit/33 MHz bus shared by both gigabit NICs; the newer
		// chipset has lower per-transaction overhead than P0's. (The
		// Pro/1000's programmed-I/O CPU cost is a testbed option, not a
		// bus parameter.)
		PCIBuses: 1, PCIMBps: 100, PCITransOverheadNS: 150,
	}
	P2 = &Platform{
		Name: "P2", MHz: 800, MemFetchNS: 110,
		PredictedCall: 7, MispredictPenalty: 40, DirectCall: 2,
		BTBEntries: 512,
		PCIBuses:   1, PCIMBps: 400, PCITransOverheadNS: 60,
	}
	P3 = &Platform{
		Name: "P3", MHz: 1600, MemFetchNS: 90,
		PredictedCall: 7, MispredictPenalty: 30, DirectCall: 2,
		BTBEntries: 2048,
		PCIBuses:   1, PCIMBps: 400, PCITransOverheadNS: 60,
	}
	Platforms = []*Platform{P0, P1, P2, P3}
)

// SiteID identifies an indirect-call site. Elements of the same class
// share call sites (the push in Counter's code is one instruction, no
// matter how many Counters a configuration has) — this sharing is what
// defeats the branch predictor in Figure 2.
type SiteID int32

// TargetID identifies an indirect-call target (a class's packet-handling
// function).
type TargetID int32

// Sites allocates call-site and target identifiers. One Sites table is
// shared by a router so that same-class elements share sites.
type Sites struct {
	sites   map[string]SiteID
	targets map[string]TargetID
}

// NewSites returns an empty site table.
func NewSites() *Sites {
	return &Sites{sites: map[string]SiteID{}, targets: map[string]TargetID{}}
}

// Site returns the call-site ID for the given class's output port
// (e.g. "ARPQuerier/out0").
func (s *Sites) Site(class string, port int, output bool) SiteID {
	dir := "out"
	if !output {
		dir = "in"
	}
	key := fmt.Sprintf("%s/%s%d", class, dir, port)
	id, ok := s.sites[key]
	if !ok {
		id = SiteID(len(s.sites))
		s.sites[key] = id
	}
	return id
}

// Target returns the target ID for a class's handler function.
func (s *Sites) Target(class string) TargetID {
	id, ok := s.targets[class]
	if !ok {
		id = TargetID(len(s.targets))
		s.targets[class] = id
	}
	return id
}

type btbEntry struct {
	site   SiteID
	target TargetID
	valid  bool
}

// CPU accumulates simulated cycles. It is not safe for concurrent use;
// the Click task loop is single-threaded, as in the paper.
type CPU struct {
	Plat     *Platform
	cycles   [numCategories]int64
	current  Category
	btb      []btbEntry
	Calls    int64
	Mispred  int64
	MemMiss  int64
	Direct   int64
	disabled bool
	// BatchTransfers and BatchPackets count batched packet transfers:
	// each batch crosses an element boundary in a single dispatch
	// (charged by IndirectCall/DirectCall as usual), so the per-packet
	// dispatch cost shrinks by the batch size. Zero in the calibrated
	// Figure 8/9 runs, which use per-packet transfers.
	BatchTransfers int64
	BatchPackets   int64
}

// New returns a CPU for the given platform.
func New(pl *Platform) *CPU {
	return &CPU{Plat: pl, btb: make([]btbEntry, pl.BTBEntries), current: CatForward}
}

// SetCategory switches the accounting category for subsequent charges
// and returns the previous category.
func (c *CPU) SetCategory(cat Category) Category {
	prev := c.current
	c.current = cat
	return prev
}

// Charge adds cycles to the current category.
func (c *CPU) Charge(cycles int64) {
	if c.disabled {
		return
	}
	c.cycles[c.current] += cycles
}

// ChargeNS adds a nanosecond-denominated cost (converted to cycles).
func (c *CPU) ChargeNS(ns float64) {
	c.Charge(c.Plat.NSToCycles(ns))
}

// MemFetch charges n main-memory fetches (cache misses).
func (c *CPU) MemFetch(n int) {
	if c.disabled {
		return
	}
	c.MemMiss += int64(n)
	c.ChargeNS(float64(n) * c.Plat.MemFetchNS)
}

// IndirectCall charges one virtual packet-transfer call through the
// branch target buffer. The BTB is direct-mapped by site; a lookup hits
// when the entry holds this site and predicted the right target.
func (c *CPU) IndirectCall(site SiteID, target TargetID) {
	if c.disabled {
		return
	}
	c.Calls++
	e := &c.btb[int(site)%len(c.btb)]
	hit := e.valid && e.site == site && e.target == target
	e.site, e.target, e.valid = site, target, true
	cost := c.Plat.PredictedCall
	if !hit {
		c.Mispred++
		cost += c.Plat.MispredictPenalty
	}
	c.cycles[c.current] += cost
}

// BatchTransfer records that the preceding dispatch charge carried a
// batch of n packets instead of one. The dispatch itself is charged by
// the caller (IndirectCall or DirectCall, once per batch); this only
// keeps the amortization observable.
func (c *CPU) BatchTransfer(n int) {
	if c.disabled {
		return
	}
	c.BatchTransfers++
	c.BatchPackets += int64(n)
}

// DirectCall charges one devirtualized (conventional) call.
func (c *CPU) DirectCall() {
	if c.disabled {
		return
	}
	c.Direct++
	c.cycles[c.current] += c.Plat.DirectCall
}

// Cycles returns the total cycles charged to a category.
func (c *CPU) Cycles(cat Category) int64 { return c.cycles[cat] }

// TotalCycles returns all cycles charged.
func (c *CPU) TotalCycles() int64 {
	var t int64
	for _, v := range c.cycles {
		t += v
	}
	return t
}

// NS returns the nanoseconds charged to a category.
func (c *CPU) NS(cat Category) float64 { return c.Plat.CyclesToNS(c.cycles[cat]) }

// TotalNS returns all charged time in nanoseconds.
func (c *CPU) TotalNS() float64 { return c.Plat.CyclesToNS(c.TotalCycles()) }

// CatSnapshot captures per-category cycle totals.
type CatSnapshot [numCategories]int64

// CategorySnapshot returns the current per-category totals.
func (c *CPU) CategorySnapshot() CatSnapshot { return c.cycles }

// ReclassifyAsOther moves everything charged since the snapshot into
// the Other category. The simulator uses this for task-loop rounds that
// did no packet work: the cycles are real (the loop polled and found
// nothing) but they are scheduler idling, not per-packet path cost —
// exactly what the paper's per-block cycle counters exclude.
func (c *CPU) ReclassifyAsOther(snap CatSnapshot) {
	for cat := Category(0); cat < numCategories; cat++ {
		if cat == CatOther {
			continue
		}
		d := c.cycles[cat] - snap[cat]
		if d != 0 {
			c.cycles[cat] -= d
			c.cycles[CatOther] += d
		}
	}
}

// Reset zeroes accumulated counts but preserves predictor state, so a
// warmed-up predictor can be measured over a clean window.
func (c *CPU) Reset() {
	c.cycles = [numCategories]int64{}
	c.Calls, c.Mispred, c.MemMiss, c.Direct = 0, 0, 0, 0
	c.BatchTransfers, c.BatchPackets = 0, 0
}

// ResetPredictor clears BTB state.
func (c *CPU) ResetPredictor() {
	for i := range c.btb {
		c.btb[i] = btbEntry{}
	}
}

// SetDisabled turns charging off (used by wall-clock benchmarks that
// measure real time instead of model time) and returns the previous
// state.
func (c *CPU) SetDisabled(d bool) bool {
	prev := c.disabled
	c.disabled = d
	return prev
}
