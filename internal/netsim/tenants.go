package netsim

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/elements"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/opt"
	"repro/internal/packet"
)

// The N-tenant testbed: many tenant forwarding configurations combined
// into one router (zero links — pure namespacing, the management
// plane's shape) on one simulated host, each tenant with its own pair
// of NICs and its own offered load. This is the isolation instrument:
// one tenant driven past its egress wire rate saturates only its own
// queue, and the per-tenant queue-latency percentiles quantify how far
// (if at all) a neighbor's overload moves a quiet tenant's tail.

// TenantSpec describes one tenant in a combined testbed.
type TenantSpec struct {
	// Name is the tenant ID (element-name prefix).
	Name string
	// PPS is the offered load on each of the tenant's ingress
	// interfaces. A source never exceeds its ingress link's wire rate.
	PPS float64
	// QueueCap overrides the tenant's queue capacity (0 = default).
	QueueCap int
	// Ingress is the number of ingress interfaces (0 means 1). With
	// more than one, all ingress paths converge on the tenant's single
	// egress queue — the overload configuration: two full ingress
	// wires into one egress wire saturate the queue no matter how fast
	// the CPU is.
	Ingress int
}

func (sp TenantSpec) ingress() int {
	if sp.Ingress <= 0 {
		return 1
	}
	return sp.Ingress
}

// TenantBed is a combined N-tenant testbed.
type TenantBed struct {
	*Testbed
	Specs []TenantSpec

	// base[k] is tenant k's first interface index; its ingress NICs
	// are base[k]..base[k]+ingress-1 and its egress NIC is
	// base[k]+ingress.
	base []int
	// srcs[k] holds tenant k's sources, one per ingress interface
	// (empty when the spec offered no load).
	srcs [][]*Source
	// samples[k] holds tenant k's queue-occupancy samples from the
	// most recent MeasureTenants window.
	samples [][]int
}

// TenantResult is one tenant's share of a measurement window.
type TenantResult struct {
	Name       string  `json:"name"`
	OfferedPPS float64 `json:"offered_pps"`
	ForwardPPS float64 `json:"forward_pps"`
	QueueDrops int64   `json:"queue_drops"`
	// P50QueueLen / P99QueueLen are queue-occupancy percentiles over
	// the window's periodic samples.
	P50QueueLen int `json:"p50_queue_len"`
	P99QueueLen int `json:"p99_queue_len"`
	// P99LatencyNS estimates the p99 queueing delay by Little's law:
	// p99 occupancy over the tenant's forwarding rate.
	P99LatencyNS float64 `json:"p99_latency_ns"`
}

// tenantIfs builds tenant k's n-interface addressing plan with
// tenant-scoped device names, so N tenants coexist in one environment.
func tenantIfs(name string, k, n int) []iprouter.Interface {
	out := make([]iprouter.Interface, n)
	for i := range out {
		out[i] = iprouter.Interface{
			Device:   fmt.Sprintf("%s_eth%d", name, i),
			Addr:     packet.MakeIP4(10, byte(k+1), byte(i), 1),
			Ether:    packet.EtherAddr{0x00, 0x02, 0xc0, byte(k + 1), byte(i), 0x01},
			HostAddr: packet.MakeIP4(10, byte(k+1), byte(i), 2),
			HostEth:  packet.EtherAddr{0x00, 0x02, 0xc0, byte(k + 1), byte(i), 0x02},
		}
	}
	return out
}

// tenantForwarder writes one tenant's configuration: every ingress
// interface polls into the single shared queue, which drains to the
// egress device. With one ingress this is iprouter.SimpleConfig's
// minimal forwarding path; with more it is the fan-in that can
// overload the egress wire.
func tenantForwarder(ifs []iprouter.Interface, queueCap int) string {
	q := "Queue"
	if queueCap > 0 {
		q = fmt.Sprintf("Queue(%d)", queueCap)
	}
	egress := ifs[len(ifs)-1]
	cfg := fmt.Sprintf("fd0 :: PollDevice(%s) -> q0 :: %s -> td0 :: ToDevice(%s);\n",
		ifs[0].Device, q, egress.Device)
	for i := 1; i < len(ifs)-1; i++ {
		cfg += fmt.Sprintf("fd%d :: PollDevice(%s) -> q0;\n", i, ifs[i].Device)
	}
	return cfg
}

// NewTenantBed combines one forwarder per tenant (PollDevice -> Queue
// -> ToDevice across its interfaces) into a single router — zero
// links, exactly the management plane's namespacing — and wires it to
// per-tenant NICs with per-tenant sources. Tenant k's elements are
// named "<name>/fd0", "<name>/q0", "<name>/td0".
func NewTenantBed(specs []TenantSpec, o TestbedOptions) (*TenantBed, error) {
	var inputs []opt.RouterInput
	var allIfs []iprouter.Interface
	base := make([]int, len(specs))
	for k, sp := range specs {
		ifs := tenantIfs(sp.Name, k, sp.ingress()+1)
		g, err := lang.ParseRouter(tenantForwarder(ifs, sp.QueueCap), sp.Name+".click")
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, opt.RouterInput{Name: sp.Name, Config: g})
		base[k] = len(allIfs)
		allIfs = append(allIfs, ifs...)
	}
	combined, err := opt.Combine(inputs, nil)
	if err != nil {
		return nil, err
	}
	o.Ifs = allIfs
	tb, err := NewTestbed(combined, o)
	if err != nil {
		return nil, err
	}
	bed := &TenantBed{Testbed: tb, Specs: specs, base: base, srcs: make([][]*Source, len(specs))}
	// Per-tenant load: each ingress interface's host sends toward the
	// tenant's egress host.
	for k, sp := range specs {
		if sp.PPS <= 0 {
			continue
		}
		out := allIfs[base[k]+sp.ingress()]
		for i := 0; i < sp.ingress(); i++ {
			in := allIfs[base[k]+i]
			seq := 0
			build := func() *packet.Packet {
				seq++
				return packet.BuildUDP4(in.HostEth, in.Ether, in.HostAddr, out.HostAddr,
					uint16(1024+seq%64), 1234, make([]byte, 14))
			}
			s := NewSource(tb.Sim, tb.NICs[base[k]+i], sp.PPS, build)
			tb.sources = append(tb.sources, s)
			bed.srcs[k] = append(bed.srcs[k], s)
			s.Start(float64(k*7+i) * 100) // slight stagger
		}
	}
	return bed, nil
}

// queueOf finds tenant k's queue element in the live router.
func (bed *TenantBed) queueOf(k int) *elements.Queue {
	e := bed.Router.Find(bed.Specs[k].Name + "/q0")
	if e == nil {
		return nil
	}
	q, _ := e.(*elements.Queue)
	return q
}

// egressNIC is tenant k's output NIC.
func (bed *TenantBed) egressNIC(k int) *NIC {
	return bed.NICs[bed.base[k]+bed.Specs[k].ingress()]
}

// MeasureTenants runs warmup then a measurement window, sampling every
// tenant's queue occupancy each sampleNS, and returns per-tenant
// results.
func (bed *TenantBed) MeasureTenants(warmupNS, windowNS, sampleNS float64) []TenantResult {
	bed.Sim.RunUntil(bed.Sim.Now() + warmupNS)
	n := len(bed.Specs)
	bed.samples = make([][]int, n)
	sent0 := make([]int64, n)
	drops0 := make([]int64, n)
	src0 := make([]int64, n)
	for k := range bed.Specs {
		sent0[k] = bed.egressNIC(k).SentWire
		if q := bed.queueOf(k); q != nil {
			drops0[k] = atomic.LoadInt64(&q.Drops)
		}
		for _, s := range bed.srcs[k] {
			src0[k] += s.Emitted
		}
	}
	start := bed.Sim.Now()
	var tick func()
	tick = func() {
		for k := range bed.Specs {
			if q := bed.queueOf(k); q != nil {
				bed.samples[k] = append(bed.samples[k], q.Len())
			}
		}
		if bed.Sim.Now()-start < windowNS {
			bed.Sim.After(sampleNS, tick)
		}
	}
	bed.Sim.After(sampleNS, tick)
	bed.Sim.RunUntil(start + windowNS)

	out := make([]TenantResult, n)
	for k, sp := range bed.Specs {
		sent := bed.egressNIC(k).SentWire - sent0[k]
		res := TenantResult{
			Name:       sp.Name,
			ForwardPPS: float64(sent) * 1e9 / windowNS,
		}
		var emitted int64
		for _, s := range bed.srcs[k] {
			emitted += s.Emitted
		}
		res.OfferedPPS = float64(emitted-src0[k]) * 1e9 / windowNS
		if q := bed.queueOf(k); q != nil {
			res.QueueDrops = atomic.LoadInt64(&q.Drops) - drops0[k]
		}
		res.P50QueueLen = percentileInt(bed.samples[k], 50)
		res.P99QueueLen = percentileInt(bed.samples[k], 99)
		if res.ForwardPPS > 0 {
			res.P99LatencyNS = float64(res.P99QueueLen) / res.ForwardPPS * 1e9
		} else {
			res.P99LatencyNS = math.Inf(1)
			if res.P99QueueLen == 0 {
				res.P99LatencyNS = 0
			}
		}
		out[k] = res
	}
	return out
}

// percentileInt returns the pth percentile (nearest-rank) of xs.
func percentileInt(xs []int, p int) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
