package netsim

import (
	"repro/internal/packet"
)

// NICParams model one Ethernet controller family.
type NICParams struct {
	Name string
	// FIFOPackets is the on-card receive FIFO capacity.
	FIFOPackets int
	// RxRing and TxRing are DMA descriptor ring sizes.
	RxRing int
	TxRing int
	// DescBytes is the PCI size of a descriptor read or write.
	DescBytes int
	// LinkMbps is the link speed. Wire time per frame is computed from
	// the packet length: payload + 4-byte CRC (padded to the 64-byte
	// minimum frame) + 8-byte preamble + 12-byte inter-frame gap, so a
	// 100 Mbit/s link carries at most 148,800 minimum-size packets per
	// second (§8.1).
	LinkMbps float64
	// RetryDelayNS separates the two descriptor-check attempts.
	RetryDelayNS float64
	// MissHoldoffNS throttles receive polling after a missed frame:
	// the engine waits this long before re-checking descriptors. The
	// throttle bounds how much PCI bandwidth failed descriptor checks
	// can consume under overload (§8.4), so forwarding plateaus instead
	// of collapsing once FIFO overflows absorb the excess.
	MissHoldoffNS float64
	// Batched marks controllers that amortize descriptor traffic
	// (the Pro/1000 fetches descriptors in cache-line bursts), halving
	// per-packet descriptor transactions.
	Batched bool
}

// Tulip models the DEC 21140's behaviour per §8.1/§8.4.
var Tulip = &NICParams{
	Name:          "Tulip",
	FIFOPackets:   32,
	RxRing:        64,
	TxRing:        64,
	DescBytes:     16,
	LinkMbps:      100,
	RetryDelayNS:  500,
	MissHoldoffNS: 10000,
	Batched:       false,
}

// Pro1000 models the Intel Pro/1000 F gigabit controller (§8.5).
var Pro1000 = &NICParams{
	Name:          "Pro1000",
	FIFOPackets:   64,
	RxRing:        128,
	TxRing:        128,
	DescBytes:     16,
	LinkMbps:      1000,
	RetryDelayNS:  200,
	MissHoldoffNS: 10000,
	Batched:       true,
}

// rxSlot states for the DMA ring.
const (
	slotFree = iota // CPU refilled; NIC may write a packet
	slotFull        // NIC wrote a packet; CPU may take it
)

// NIC is one simulated Ethernet controller. It implements
// elements.Device for the CPU side (RxDequeue/TxEnqueue/TxClean run
// synchronously during Click task execution) and runs its own
// event-driven RX and TX engines against the PCI bus.
type NIC struct {
	sim    *Sim
	params *NICParams
	bus    *Bus
	name   string

	// RX.
	fifo      []*packet.Packet
	rxState   []int
	rxPkt     []*packet.Packet
	rxNICHead int // next ring slot the NIC fills
	rxCPUTail int // next ring slot the CPU drains
	rxBusy    bool

	// TX.
	txQueue   []*packet.Packet // CPU-enqueued, not yet fetched by NIC
	txPending int              // descriptors awaiting NIC completion
	txDone    int              // completed, awaiting CPU reclaim
	txBusy    bool
	wireFree  float64

	// Outcome counters (§8.4).
	FIFOOverflows int64
	MissedFrames  int64
	Delivered     int64 // packets handed to the CPU
	SentWire      int64
	// OnWire receives transmitted packets (the destination host).
	OnWire func(p *packet.Packet)
}

// WireNS returns the wire occupancy of a frame carrying n bytes of
// packet data.
func (p *NICParams) WireNS(n int) float64 {
	frame := n + 4 // CRC
	if frame < 64 {
		frame = 64 // Ethernet minimum frame
	}
	return float64(frame+8+12) * 8e3 / p.LinkMbps
}

// NewNIC creates a NIC attached to a bus.
func NewNIC(sim *Sim, name string, params *NICParams, bus *Bus) *NIC {
	return &NIC{
		sim:     sim,
		params:  params,
		bus:     bus,
		name:    name,
		rxState: make([]int, params.RxRing),
		rxPkt:   make([]*packet.Packet, params.RxRing),
	}
}

// DeviceName implements elements.Device.
func (n *NIC) DeviceName() string { return n.name }

// Arrive delivers a packet from the wire. A full FIFO drops it
// immediately — the cheapest outcome, costing no PCI bandwidth (§8.4).
func (n *NIC) Arrive(p *packet.Packet) {
	if len(n.fifo) >= n.params.FIFOPackets {
		n.FIFOOverflows++
		p.Kill()
		return
	}
	n.fifo = append(n.fifo, p)
	n.maybeStartRx()
}

// maybeStartRx launches the RX engine if it is idle and work exists.
func (n *NIC) maybeStartRx() {
	if n.rxBusy || len(n.fifo) == 0 {
		return
	}
	n.rxBusy = true
	n.rxDescCheck(1)
}

// rxDescCheck reads the next RX descriptor over the bus; attempt is 1
// or 2. A batched controller checks once per ring batch, modeled as a
// half-size transaction.
func (n *NIC) rxDescCheck(attempt int) {
	bytes := n.params.DescBytes
	if n.params.Batched {
		bytes = n.params.DescBytes / 2
	}
	// The descriptor is read when the NIC issues the request; a slot
	// the CPU frees while the transaction crosses the bus is not seen
	// until the next check.
	free := n.rxState[n.rxNICHead] == slotFree
	n.bus.Transact(bytes, func() {
		if len(n.fifo) == 0 {
			n.rxBusy = false
			return
		}
		if free {
			n.rxDMA()
			return
		}
		if attempt == 1 {
			n.sim.After(n.params.RetryDelayNS, func() { n.rxDescCheck(2) })
			return
		}
		// Not free twice in a row: missed frame. The Tulip flushes the
		// failed frame (§8.4), then throttles its descriptor polling.
		n.MissedFrames++
		p := n.fifo[0]
		n.fifo = n.fifo[1:]
		p.Kill()
		n.sim.After(n.params.MissHoldoffNS, func() {
			n.rxBusy = false
			n.maybeStartRx()
		})
	})
}

// rxDMA transfers the packet into memory and marks the descriptor.
func (n *NIC) rxDMA() {
	p := n.fifo[0]
	bytes := p.Len() + n.params.DescBytes // data plus descriptor writeback
	n.bus.Transact(bytes, func() {
		if len(n.fifo) > 0 && n.fifo[0] == p {
			n.fifo = n.fifo[1:]
		}
		n.rxState[n.rxNICHead] = slotFull
		n.rxPkt[n.rxNICHead] = p
		n.rxNICHead = (n.rxNICHead + 1) % n.params.RxRing
		n.Delivered++
		n.rxBusy = false
		n.maybeStartRx()
	})
}

// RxDequeue implements elements.Device: the CPU takes the next received
// packet and refills the descriptor.
func (n *NIC) RxDequeue() *packet.Packet {
	if n.rxState[n.rxCPUTail] != slotFull {
		return nil
	}
	p := n.rxPkt[n.rxCPUTail]
	n.rxPkt[n.rxCPUTail] = nil
	n.rxState[n.rxCPUTail] = slotFree
	n.rxCPUTail = (n.rxCPUTail + 1) % n.params.RxRing
	return p
}

// RxDequeueBatch implements elements.BatchDevice: the CPU drains up to
// len(buf) received packets in one ring walk, refilling descriptors as
// it goes.
func (n *NIC) RxDequeueBatch(buf []*packet.Packet) int {
	k := 0
	for k < len(buf) && n.rxState[n.rxCPUTail] == slotFull {
		buf[k] = n.rxPkt[n.rxCPUTail]
		n.rxPkt[n.rxCPUTail] = nil
		n.rxState[n.rxCPUTail] = slotFree
		n.rxCPUTail = (n.rxCPUTail + 1) % n.params.RxRing
		k++
	}
	return k
}

// TxRoom implements elements.Device.
func (n *NIC) TxRoom() bool {
	return len(n.txQueue)+n.txPending+n.txDone < n.params.TxRing
}

// TxEnqueue implements elements.Device: the CPU appends a packet to the
// transmit ring.
func (n *NIC) TxEnqueue(p *packet.Packet) bool {
	if !n.TxRoom() {
		return false
	}
	n.txQueue = append(n.txQueue, p)
	n.maybeStartTx()
	return true
}

// TxEnqueueBatch implements elements.BatchDevice: the CPU appends
// packets until the ring fills, returning how many were accepted.
func (n *NIC) TxEnqueueBatch(ps []*packet.Packet) int {
	k := 0
	for _, p := range ps {
		if !n.TxRoom() {
			break
		}
		n.txQueue = append(n.txQueue, p)
		k++
	}
	if k > 0 {
		n.maybeStartTx()
	}
	return k
}

// TxClean implements elements.Device: reclaim descriptors the NIC
// finished with.
func (n *NIC) TxClean() int {
	c := n.txDone
	n.txDone = 0
	return c
}

// maybeStartTx launches the TX engine if idle and work exists.
func (n *NIC) maybeStartTx() {
	if n.txBusy || len(n.txQueue) == 0 {
		return
	}
	n.txBusy = true
	p := n.txQueue[0]
	n.txQueue = n.txQueue[1:]
	n.txPending++
	bytes := p.Len() + n.params.DescBytes*2 // descriptor fetch + data + status writeback
	if n.params.Batched {
		bytes = p.Len() + n.params.DescBytes
	}
	n.bus.Transact(bytes, func() {
		// The descriptor/data fetch is done; the frame serializes on
		// the wire while the engine pipelines the next fetch.
		start := n.sim.now
		if n.wireFree > start {
			start = n.wireFree
		}
		n.wireFree = start + n.params.WireNS(p.Len())
		n.sim.Schedule(n.wireFree, func() {
			n.SentWire++
			n.txPending--
			n.txDone++
			if n.OnWire != nil {
				n.OnWire(p)
			} else {
				p.Kill()
			}
		})
		n.txBusy = false
		n.maybeStartTx()
	})
}

// Source generates an even flow of packets onto a NIC, as the
// evaluation's source hosts do (§8.1). Build supplies each packet.
type Source struct {
	sim      *Sim
	nic      *NIC
	interval float64
	Build    func() *packet.Packet
	Emitted  int64
	stopped  bool
}

// NewSource creates a source emitting pps packets per second. The
// source respects the wire: it will not exceed the link's rate for
// minimum-size frames (callers emitting larger packets should pick pps
// accordingly; the NIC's own wire model still serializes transmission).
func NewSource(sim *Sim, nic *NIC, pps float64, build func() *packet.Packet) *Source {
	interval := 1e9 / pps
	if min := nic.params.WireNS(60); interval < min {
		interval = min
	}
	return &Source{sim: sim, nic: nic, interval: interval, Build: build}
}

// Start begins emission at the given time.
func (s *Source) Start(at float64) {
	s.sim.Schedule(at, s.emit)
}

// Stop halts the source after the current event.
func (s *Source) Stop() { s.stopped = true }

func (s *Source) emit() {
	if s.stopped {
		return
	}
	s.Emitted++
	s.nic.Arrive(s.Build())
	s.sim.After(s.interval, s.emit)
}
