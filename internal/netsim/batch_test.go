package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/simcpu"
)

// TestTestbedBatchedForwardsLossFree runs the base IP router on the
// simulated testbed with the batched device paths enabled (Burst > 1)
// and checks it forwards a low-rate load as losslessly as the scalar
// runtime does. The cost model charges batched transfers per packet, so
// throughput results stay comparable between the two modes.
func TestTestbedBatchedForwardsLossFree(t *testing.T) {
	variants, ifs, err := PrepareVariants(2)
	if err != nil {
		t.Fatal(err)
	}
	base := variants[0]
	for _, burst := range []int{1, 8, 32} {
		res, err := RunPoint(base.Graph, TestbedOptions{
			Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: base.Registry,
			Burst: burst,
		}, 50000, 5e6, 20e6)
		if err != nil {
			t.Fatalf("burst %d: %v", burst, err)
		}
		loss := 1 - res.ForwardPPS/res.InputPPS
		if loss > 0.01 {
			t.Errorf("burst %d: %.1f%% loss at 50 kpps (fwd %.0f of %.0f)",
				burst, loss*100, res.ForwardPPS, res.InputPPS)
		}
	}
}

// TestNICBatchTransfers exercises the ring-level batch paths directly:
// RxDequeueBatch must drain in arrival order and free descriptors,
// TxEnqueueBatch must accept up to the available ring room.
func TestNICBatchTransfers(t *testing.T) {
	s := NewSim()
	bus := NewBus(s, 100, 100)
	nic := NewNIC(s, "eth0", Tulip, bus)
	for i := 0; i < 10; i++ {
		p := mkPkt()
		p.Data()[0] = byte(i)
		nic.Arrive(p)
	}
	s.RunUntil(1e6)
	buf := make([]*packet.Packet, 16)
	n := nic.RxDequeueBatch(buf)
	if n != 10 {
		t.Fatalf("RxDequeueBatch drained %d packets, want 10", n)
	}
	for i := 0; i < n; i++ {
		if buf[i].Data()[0] != byte(i) {
			t.Fatalf("packet %d out of order", i)
		}
	}
	if nic.RxDequeueBatch(buf) != 0 {
		t.Error("drained ring returned packets")
	}
	if accepted := nic.TxEnqueueBatch(buf[:n]); accepted != n {
		t.Fatalf("TxEnqueueBatch accepted %d of %d", accepted, n)
	}
	// Overfill: the ring bounds acceptance.
	big := make([]*packet.Packet, Tulip.TxRing+8)
	for i := range big {
		big[i] = mkPkt()
	}
	accepted := nic.TxEnqueueBatch(big)
	if accepted >= len(big) {
		t.Errorf("TxEnqueueBatch accepted %d, want fewer than %d (ring bound)", accepted, len(big))
	}
	for _, p := range big[accepted:] {
		p.Kill()
	}
}
