package netsim

import (
	"testing"

	"repro/internal/simcpu"
)

// TestTenantBedIsolation is the tenancy claim at netsim fidelity: one
// tenant driven past its egress wire rate (two full ingress wires
// converging on one 100 Mbit egress) saturates its own queue and
// tail-drops, while a quiet tenant's forwarding rate and p99 queue
// occupancy stay at their solo baseline.
func TestTenantBedIsolation(t *testing.T) {
	const quietPPS = 20000
	opts := TestbedOptions{Platform: simcpu.P0, NIC: Tulip}

	// Baseline: the quiet tenants alone.
	solo, err := NewTenantBed([]TenantSpec{
		{Name: "q1", PPS: quietPPS, QueueCap: 128},
		{Name: "q2", PPS: quietPPS, QueueCap: 128},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	soloRes := solo.MeasureTenants(5e6, 50e6, 0.5e6)

	// Same quiet tenants next to an overloaded neighbor.
	mixed, err := NewTenantBed([]TenantSpec{
		{Name: "q1", PPS: quietPPS, QueueCap: 128},
		{Name: "q2", PPS: quietPPS, QueueCap: 128},
		{Name: "hog", PPS: 1e9, QueueCap: 128, Ingress: 2},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	mixedRes := mixed.MeasureTenants(5e6, 50e6, 0.5e6)

	hog := mixedRes[2]
	// The hog is genuinely overloaded: offered well above forwarded,
	// sustained tail drops, queue pinned at capacity.
	if hog.OfferedPPS < 1.5*hog.ForwardPPS {
		t.Errorf("hog not overloaded: offered %.0f pps vs forwarded %.0f pps",
			hog.OfferedPPS, hog.ForwardPPS)
	}
	if hog.QueueDrops == 0 {
		t.Error("hog queue never tail-dropped under 2x overload")
	}
	if hog.P99QueueLen < 100 {
		t.Errorf("hog p99 queue length %d, want near capacity 128", hog.P99QueueLen)
	}

	// The quiet tenants are untouched: same forwarding rate and no
	// tail inflation relative to running alone.
	for i := 0; i < 2; i++ {
		sr, mr := soloRes[i], mixedRes[i]
		if mr.ForwardPPS < 0.99*sr.ForwardPPS {
			t.Errorf("%s: forward %.0f pps beside hog vs %.0f solo",
				mr.Name, mr.ForwardPPS, sr.ForwardPPS)
		}
		if mr.QueueDrops != 0 {
			t.Errorf("%s: %d queue drops beside hog", mr.Name, mr.QueueDrops)
		}
		if mr.P99QueueLen > sr.P99QueueLen+2 {
			t.Errorf("%s: p99 queue len %d beside hog vs %d solo",
				mr.Name, mr.P99QueueLen, sr.P99QueueLen)
		}
	}
}
