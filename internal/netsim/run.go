package netsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/opt"
	"repro/internal/packet"
	"repro/internal/simcpu"
)

// Testbed wires a router configuration to simulated hardware: one NIC
// per interface, PCI buses per the platform, traffic sources on the
// first half of the interfaces, and the CPU task loop.
type Testbed struct {
	Sim    *Sim
	CPU    *simcpu.CPU
	Router *core.Router
	NICs   []*NIC
	Buses  []*Bus
	Ifs    []iprouter.Interface

	sources []*Source
	replays []*ReplaySource
	// env and burst are kept from construction so a hot-swapped
	// replacement router binds to the same simulated NICs with the same
	// batching configuration.
	env   map[string]interface{}
	burst int
	// Received counts packets that reached their destination host.
	Received []int64
	// PIOAccessNS is extra CPU time per device access (the Pro/1000's
	// programmed I/O, §8.5).
	PIOAccessNS float64
	// IdleTickNS paces the task loop when no task has work.
	IdleTickNS float64
}

// TestbedOptions configure construction.
type TestbedOptions struct {
	Platform *simcpu.Platform
	NIC      *NICParams
	// Interfaces in the router (must match the configuration).
	Ifs []iprouter.Interface
	// Registry to build with (defaults to the builtin registry; pass
	// the registry the optimizers registered generated classes into).
	Registry *core.Registry
	// PIOAccessNS adds per-packet CPU cost for programmed-I/O NICs.
	PIOAccessNS float64
	// Burst is the router Burst build option: device and Unqueue
	// elements move up to Burst packets per task run through the
	// batched transfer path (0 or 1 keeps the calibrated scalar path).
	Burst int
}

// NewTestbed builds the testbed for a configuration graph. NIC i is
// named after interface i's device and placed on bus i*buses/n (the P0
// motherboard splits its multiport cards across two buses, §8.1).
func NewTestbed(g *graph.Router, o TestbedOptions) (*Testbed, error) {
	reg := o.Registry
	if reg == nil {
		reg = elements.NewRegistry()
	}
	tb := &Testbed{
		Sim:         NewSim(),
		CPU:         simcpu.New(o.Platform),
		Ifs:         o.Ifs,
		PIOAccessNS: o.PIOAccessNS,
		IdleTickNS:  200,
	}
	for i := 0; i < o.Platform.PCIBuses; i++ {
		tb.Buses = append(tb.Buses, NewBus(tb.Sim, o.Platform.PCIMBps, o.Platform.PCITransOverheadNS))
	}
	env := map[string]interface{}{}
	tb.Received = make([]int64, len(o.Ifs))
	for i, itf := range o.Ifs {
		// The multiport cards interleave across buses (§8.1's split),
		// so each bus carries both receive and transmit traffic.
		bus := tb.Buses[i%len(tb.Buses)]
		nic := NewNIC(tb.Sim, itf.Device, o.NIC, bus)
		idx := i
		nic.OnWire = func(p *packet.Packet) {
			tb.Received[idx]++
			p.Kill()
		}
		tb.NICs = append(tb.NICs, nic)
		env["device:"+itf.Device] = nic
	}
	tb.env = env
	tb.burst = o.Burst
	rt, err := core.Build(g, reg, core.BuildOptions{CPU: tb.CPU, Env: env, Burst: o.Burst})
	if err != nil {
		return nil, err
	}
	tb.Router = rt
	tb.warmARP()
	tb.startCPULoop()
	return tb, nil
}

// Hotswap replaces the live router with a new configuration, keeping
// the testbed running: the replacement is built against the same NIC
// environment (so device endpoints rebind to the simulated hardware the
// old router used), element state transplants across by name, and the
// CPU loop picks the new router up on its next scheduled round — it
// reads tb.Router each iteration, so the swap lands exactly at a
// task-round boundary. In-flight packets sit in NIC rings (shared) or
// transplanted Queues/ARP holds, so none are lost.
//
// The swap itself charges no model cycles: it happens between CPU-loop
// events, outside any element's processing code.
func (tb *Testbed) Hotswap(g *graph.Router, reg *core.Registry) error {
	if reg == nil {
		reg = elements.NewRegistry()
	}
	rt, err := core.Build(g.Clone(), reg, core.BuildOptions{CPU: tb.CPU, Env: tb.env, Burst: tb.burst})
	if err != nil {
		return err
	}
	if err := tb.Router.Hotswap(rt); err != nil {
		return err
	}
	// No warmARP: the transplanted ARP tables already hold the learned
	// entries, and re-warming would mask a transplant failure.
	tb.Router = rt
	return nil
}

// HotswapAt schedules a hot-swap at simulated time `at`, returning a
// pointer that carries the swap error (nil until the event fires and on
// success). Scheduling through the simulator guarantees the swap runs
// between CPU-loop events — never inside a task round.
func (tb *Testbed) HotswapAt(at float64, g *graph.Router, reg *core.Registry) *error {
	errp := new(error)
	tb.Sim.Schedule(at, func() { *errp = tb.Hotswap(g, reg) })
	return errp
}

// warmARP preloads every ARPQuerier with all host addresses so the
// measured steady state has no ARP traffic (the testbed's network is
// converged during a run).
func (tb *Testbed) warmARP() {
	for _, e := range tb.Router.Elements() {
		if aq, ok := e.(*elements.ARPQuerier); ok {
			for _, itf := range tb.Ifs {
				aq.InsertEntry(itf.HostAddr, itf.HostEth)
			}
		}
	}
}

// startCPULoop schedules the Click kernel-thread loop: run one round of
// tasks, advance simulated time by the cycles the round charged.
func (tb *Testbed) startCPULoop() {
	var loop func()
	loop = func() {
		before := tb.CPU.TotalCycles()
		snap := tb.CPU.CategorySnapshot()
		handledBefore := tb.handled()
		did := tb.Router.RunTaskRound()
		if !did {
			// Idle polling costs real time but is not per-packet path
			// cost; keep the Figure 8 categories clean.
			tb.CPU.ReclassifyAsOther(snap)
		}
		dt := tb.CPU.Plat.CyclesToNS(tb.CPU.TotalCycles() - before)
		if tb.PIOAccessNS > 0 {
			pio := float64(tb.handled()-handledBefore) * tb.PIOAccessNS
			prev := tb.CPU.SetCategory(simcpu.CatOther)
			tb.CPU.ChargeNS(pio)
			tb.CPU.SetCategory(prev)
			dt += pio
		}
		if !did && dt < tb.IdleTickNS {
			dt = tb.IdleTickNS
		}
		tb.Sim.After(dt, loop)
	}
	tb.Sim.Schedule(0, loop)
}

// handled counts CPU-side device interactions (for PIO accounting).
func (tb *Testbed) handled() int64 {
	var n int64
	for _, e := range tb.Router.Elements() {
		switch d := e.(type) {
		case *elements.PollDevice:
			n += d.Recv
		case *elements.FromDevice:
			n += d.Recv
		case *elements.ToDevice:
			n += d.Sent
		}
	}
	return n
}

// AddUniformLoad attaches sources to the first half of the interfaces,
// each sending an even flow of 64-byte packets addressed to the host
// across the router (source on interface i sends to interface i + n/2's
// host, §8.1). totalPPS is divided evenly among sources.
func (tb *Testbed) AddUniformLoad(totalPPS float64) {
	tb.AddUniformLoadSized(totalPPS, 14)
}

// AddUniformLoadSized is AddUniformLoad with a chosen UDP payload size
// (14 bytes yields the paper's 64-byte wire frames; larger payloads
// exercise the wire- and bus-limited regimes, since minimum-size
// packets stress the CPU the most, §8.3).
func (tb *Testbed) AddUniformLoadSized(totalPPS float64, payload int) {
	n := len(tb.Ifs)
	half := n / 2
	for i := 0; i < half; i++ {
		src, dst := tb.Ifs[i], tb.Ifs[i+half]
		seq := 0
		build := func() *packet.Packet {
			seq++
			p := packet.BuildUDP4(src.HostEth, src.Ether, src.HostAddr, dst.HostAddr,
				uint16(1024+seq%64), 1234, make([]byte, payload))
			return p
		}
		s := NewSource(tb.Sim, tb.NICs[i], totalPPS/float64(half), build)
		tb.sources = append(tb.sources, s)
		s.Start(float64(i) * 100) // slight stagger
	}
}

// Outcomes aggregates the §8.4 packet-outcome taxonomy over a run.
type Outcomes struct {
	Offered       int64
	Sent          int64
	QueueDrops    int64
	MissedFrames  int64
	FIFOOverflows int64
}

// snapshot reads the current totals.
func (tb *Testbed) snapshot() Outcomes {
	var o Outcomes
	for _, s := range tb.sources {
		o.Offered += s.Emitted
	}
	for _, s := range tb.replays {
		o.Offered += s.Emitted
	}
	for _, nic := range tb.NICs {
		o.MissedFrames += nic.MissedFrames
		o.FIFOOverflows += nic.FIFOOverflows
		o.Sent += nic.SentWire
	}
	for _, e := range tb.Router.Elements() {
		if q, ok := e.(*elements.Queue); ok {
			o.QueueDrops += q.Drops
		}
	}
	return o
}

func (o Outcomes) sub(b Outcomes) Outcomes {
	return Outcomes{
		Offered:       o.Offered - b.Offered,
		Sent:          o.Sent - b.Sent,
		QueueDrops:    o.QueueDrops - b.QueueDrops,
		MissedFrames:  o.MissedFrames - b.MissedFrames,
		FIFOOverflows: o.FIFOOverflows - b.FIFOOverflows,
	}
}

// Result is one measured operating point.
type Result struct {
	InputPPS   float64
	ForwardPPS float64
	Outcomes   Outcomes
	WindowNS   float64
	// Per-packet CPU time by category over the measurement window
	// (Figure 8's breakdown), in nanoseconds.
	RxDeviceNS     float64
	ForwardNS      float64
	TxDeviceNS     float64
	TotalCPUNS     float64
	MispredRate    float64
	BusUtilization []float64
}

// Measure runs the testbed at the configured load: warmupNS to reach
// steady state, then windowNS of measurement.
func (tb *Testbed) Measure(warmupNS, windowNS float64) Result {
	tb.Sim.RunUntil(tb.Sim.Now() + warmupNS)
	startOutcomes := tb.snapshot()
	tb.CPU.Reset()
	startBusy := make([]float64, len(tb.Buses))
	for i, b := range tb.Buses {
		startBusy[i] = b.BusyNS
	}
	start := tb.Sim.Now()
	tb.Sim.RunUntil(start + windowNS)
	o := tb.snapshot().sub(startOutcomes)

	res := Result{
		Outcomes:   o,
		WindowNS:   windowNS,
		InputPPS:   float64(o.Offered) * 1e9 / windowNS,
		ForwardPPS: float64(o.Sent) * 1e9 / windowNS,
	}
	if o.Sent > 0 {
		res.RxDeviceNS = tb.CPU.NS(simcpu.CatRxDevice) / float64(o.Sent)
		res.ForwardNS = tb.CPU.NS(simcpu.CatForward) / float64(o.Sent)
		res.TxDeviceNS = tb.CPU.NS(simcpu.CatTxDevice) / float64(o.Sent)
		// Total per-packet cost including device drivers (Figure 9's
		// white bars): the three per-packet categories; idle-loop time
		// (CatOther) is not per-packet cost.
		res.TotalCPUNS = res.RxDeviceNS + res.ForwardNS + res.TxDeviceNS
	}
	if tb.CPU.Calls > 0 {
		res.MispredRate = float64(tb.CPU.Mispred) / float64(tb.CPU.Calls)
	}
	for i, b := range tb.Buses {
		util := (b.BusyNS - startBusy[i]) / windowNS
		res.BusUtilization = append(res.BusUtilization, util)
	}
	return res
}

// RunPoint builds a fresh testbed for the graph and measures one input
// rate. Graphs are cloned per point so state never leaks between
// operating points.
func RunPoint(g *graph.Router, o TestbedOptions, inputPPS, warmupNS, windowNS float64) (Result, error) {
	tb, err := NewTestbed(g.Clone(), o)
	if err != nil {
		return Result{}, err
	}
	tb.AddUniformLoad(inputPPS)
	res := tb.Measure(warmupNS, windowNS)
	res.InputPPS = inputPPS
	return res, nil
}

// MLFFR finds the maximum loss-free forwarding rate by bisection: the
// highest input rate at which losses stay below lossTolerance
// (fractional), searched between lo and hi pps to within tolPPS.
func MLFFR(g *graph.Router, o TestbedOptions, lo, hi, tolPPS float64) (float64, error) {
	const lossTolerance = 0.002
	const warmup, window = 20e6, 50e6 // 20 ms warmup, 50 ms window
	lossFree := func(pps float64) (bool, error) {
		res, err := RunPoint(g, o, pps, warmup, window)
		if err != nil {
			return false, err
		}
		loss := 1 - res.ForwardPPS/res.InputPPS
		return loss <= lossTolerance, nil
	}
	ok, err := lossFree(lo)
	if err != nil {
		return 0, err
	}
	if !ok {
		return lo, fmt.Errorf("netsim: loss even at the lower bound %.0f pps", lo)
	}
	if ok, err = lossFree(hi); err != nil {
		return 0, err
	} else if ok {
		return hi, nil
	}
	for hi-lo > tolPPS {
		mid := (lo + hi) / 2
		ok, err := lossFree(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// ConfigVariant names a prepared configuration for the evaluation.
type ConfigVariant struct {
	Name     string
	Graph    *graph.Router
	Registry *core.Registry
}

// PrepareVariants builds the Figure 9/10 configuration set for n
// interfaces: Base, FC, DV, XF, All, MR+All (approximated by replacing
// ARPQueriers per the combined-network optimization), and Simple.
func PrepareVariants(n int) ([]ConfigVariant, []iprouter.Interface, error) {
	ifs := iprouter.Interfaces(n)
	parse := func() (*graph.Router, error) {
		return lang.ParseRouter(iprouter.Config(ifs), "iprouter")
	}
	var out []ConfigVariant

	base, err := parse()
	if err != nil {
		return nil, nil, err
	}
	out = append(out, ConfigVariant{Name: "Base", Graph: base, Registry: elements.NewRegistry()})

	fc, err := parse()
	if err != nil {
		return nil, nil, err
	}
	fcReg := elements.NewRegistry()
	if err := opt.FastClassifier(fc, fcReg); err != nil {
		return nil, nil, err
	}
	out = append(out, ConfigVariant{Name: "FC", Graph: fc, Registry: fcReg})

	dv, err := parse()
	if err != nil {
		return nil, nil, err
	}
	dvReg := elements.NewRegistry()
	if err := opt.Devirtualize(dv, dvReg, nil); err != nil {
		return nil, nil, err
	}
	out = append(out, ConfigVariant{Name: "DV", Graph: dv, Registry: dvReg})

	xf, err := parse()
	if err != nil {
		return nil, nil, err
	}
	pairs, err := opt.ParsePatterns(iprouter.ComboPatterns, "combopatterns")
	if err != nil {
		return nil, nil, err
	}
	opt.Xform(xf, pairs)
	out = append(out, ConfigVariant{Name: "XF", Graph: xf, Registry: elements.NewRegistry()})

	all, allReg, err := buildAll(ifs, false)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, ConfigVariant{Name: "All", Graph: all, Registry: allReg})

	mrall, mrallReg, err := buildAll(ifs, true)
	if err != nil {
		return nil, nil, err
	}
	out = append(out, ConfigVariant{Name: "MR+All", Graph: mrall, Registry: mrallReg})

	simple, err := lang.ParseRouter(iprouter.SimpleConfig(ifs, iprouter.ForwardPairs(n)), "simple")
	if err != nil {
		return nil, nil, err
	}
	out = append(out, ConfigVariant{Name: "Simple", Graph: simple, Registry: elements.NewRegistry()})
	return out, ifs, nil
}

// buildAll applies xform + fastclassifier + devirtualize (§8.2's "All"),
// optionally with the multiple-router ARP elimination first
// (point-to-point links let EtherEncapARP replace the ARPQuerier, §7.2).
func buildAll(ifs []iprouter.Interface, arpElim bool) (*graph.Router, *core.Registry, error) {
	g, err := lang.ParseRouter(iprouter.Config(ifs), "iprouter")
	if err != nil {
		return nil, nil, err
	}
	reg := elements.NewRegistry()
	if arpElim {
		// On the evaluation testbed every link is point-to-point, so
		// the combined-configuration analysis replaces each ARPQuerier
		// with a static encapsulation of the known peer address.
		if err := eliminateARPPointToPoint(g, ifs); err != nil {
			return nil, nil, err
		}
	}
	pairs, err := opt.ParsePatterns(iprouter.ComboPatterns, "combopatterns")
	if err != nil {
		return nil, nil, err
	}
	opt.Xform(g, pairs)
	if err := opt.FastClassifier(g, reg); err != nil {
		return nil, nil, err
	}
	if err := opt.Devirtualize(g, reg, nil); err != nil {
		return nil, nil, err
	}
	return g, reg, nil
}

// eliminateARPPointToPoint rewrites arpq<i> elements to EtherEncapARP
// with the link peer's address — the effect of the click-combine |
// click-xform | click-uncombine chain when the "peer routers" are the
// test hosts themselves.
func eliminateARPPointToPoint(g *graph.Router, ifs []iprouter.Interface) error {
	for i, itf := range ifs {
		name := fmt.Sprintf("arpq%d", i)
		idx := g.FindElement(name)
		if idx < 0 {
			return fmt.Errorf("netsim: no %s in configuration", name)
		}
		e := g.Element(idx)
		e.Class = "EtherEncapARP"
		e.Config = fmt.Sprintf("%s, %s", itf.Ether, itf.HostEth)
	}
	return nil
}
