// Package netsim is the hardware substrate for the paper's evaluation
// (§8): a discrete-event simulation of the testbed the authors used —
// traffic sources feeding Tulip-like Ethernet controllers over
// point-to-point links, DMA descriptor rings crossing shared PCI buses,
// and a CPU running the Click task loop whose time is charged by the
// simcpu cost model. It reproduces the evaluation's packet-outcome
// taxonomy (§8.4): a packet is dropped in the NIC FIFO ("FIFO
// overflow"), dropped because the NIC could not get a ready DMA
// descriptor after two tries ("missed frame"), dropped at a Click Queue
// ("Queue drop"), or sent.
package netsim

import "container/heap"

// Sim is a discrete-event simulator. Time is in nanoseconds.
type Sim struct {
	now    float64
	seq    int64
	events eventHeap
}

type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewSim returns a simulator at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulation time in nanoseconds.
func (s *Sim) Now() float64 { return s.now }

// Schedule runs fn at the given absolute time (events at equal times run
// in scheduling order).
func (s *Sim) Schedule(at float64, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, fn: fn})
}

// After schedules fn delay nanoseconds from now.
func (s *Sim) After(delay float64, fn func()) { s.Schedule(s.now+delay, fn) }

// RunUntil processes events until the given time (events at exactly the
// end time run).
func (s *Sim) RunUntil(end float64) {
	for len(s.events) > 0 {
		if s.events[0].at > end {
			break
		}
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
	}
	if s.now < end {
		s.now = end
	}
}

// Bus models one shared PCI bus: transactions serialize, each costing a
// fixed overhead (arbitration, address phase, turnaround) plus data
// time. Failed descriptor checks are transactions too, which is how
// missed frames consume bandwidth other NICs could have used (§8.4).
type Bus struct {
	sim *Sim
	// PerByteNS is the data transfer cost per byte.
	PerByteNS float64
	// OverheadNS is the fixed per-transaction cost.
	OverheadNS float64

	busyUntil float64
	// BusyNS accumulates total occupied time (utilization statistics).
	BusyNS       float64
	Transactions int64
}

// NewBus creates a bus on the simulator. mbps is usable bandwidth in
// megabytes per second.
func NewBus(sim *Sim, mbps, overheadNS float64) *Bus {
	return &Bus{sim: sim, PerByteNS: 1e3 / mbps, OverheadNS: overheadNS}
}

// Transact schedules fn for when a transaction of the given size
// completes, after queueing behind earlier transactions.
func (b *Bus) Transact(bytes int, fn func()) {
	start := b.sim.now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	dur := b.OverheadNS + float64(bytes)*b.PerByteNS
	b.busyUntil = start + dur
	b.BusyNS += dur
	b.Transactions++
	b.sim.Schedule(b.busyUntil, fn)
}

// Utilization returns the fraction of elapsed time the bus was busy.
func (b *Bus) Utilization() float64 {
	if b.sim.now == 0 {
		return 0
	}
	return b.BusyNS / b.sim.now
}
