package netsim

import (
	"testing"

	"repro/internal/elements"
	"repro/internal/iprouter"
	"repro/internal/packet"
	"repro/internal/simcpu"
)

// Failure injection: corrupted packets must be dropped by
// CheckIPHeader, not forwarded, and must not destabilize the router.
func TestCorruptTrafficDropsAtCheckIPHeader(t *testing.T) {
	variants, ifs, err := PrepareVariants(2)
	if err != nil {
		t.Fatal(err)
	}
	base := variants[0]
	tb, err := NewTestbed(base.Graph.Clone(), TestbedOptions{
		Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: base.Registry,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A custom source: every 4th packet has a corrupted IP checksum.
	seq := 0
	src := NewSource(tb.Sim, tb.NICs[0], 50000, func() *packet.Packet {
		seq++
		p := packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
			ifs[0].HostAddr, ifs[1].HostAddr, 1234, 99, make([]byte, 14))
		if seq%4 == 0 {
			p.Data()[packet.EtherHeaderLen+10] ^= 0xff
		}
		return p
	})
	tb.sources = append(tb.sources, src)
	src.Start(0)
	tb.Sim.RunUntil(40e6) // 40 ms at 50 kpps = ~2000 packets

	var bad, good int64
	for _, e := range tb.Router.Elements() {
		if c, ok := e.(*elements.CheckIPHeader); ok {
			bad += c.Bad
			good += c.Good
		}
	}
	if bad == 0 {
		t.Fatal("no corrupted packets detected")
	}
	ratio := float64(bad) / float64(bad+good)
	if ratio < 0.2 || ratio > 0.3 {
		t.Errorf("corruption drop ratio %.2f, want ~0.25", ratio)
	}
	// Only the valid 3/4 are forwarded.
	sent := tb.NICs[1].SentWire
	if sent == 0 {
		t.Fatal("nothing forwarded")
	}
	if float64(sent) > float64(src.Emitted)*0.78 || float64(sent) < float64(src.Emitted)*0.70 {
		t.Errorf("forwarded %d of %d (want ~75%%)", sent, src.Emitted)
	}
}

// TTL-1 traffic generates ICMP errors back toward the source — the slow
// path must hold up under a stream of them.
func TestTTLExpiryStream(t *testing.T) {
	variants, ifs, err := PrepareVariants(2)
	if err != nil {
		t.Fatal(err)
	}
	base := variants[0]
	tb, err := NewTestbed(base.Graph.Clone(), TestbedOptions{
		Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: base.Registry,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(tb.Sim, tb.NICs[0], 20000, func() *packet.Packet {
		p := packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
			ifs[0].HostAddr, ifs[1].HostAddr, 1234, 99, make([]byte, 14))
		h := packet.IP4Header(p.Data()[packet.EtherHeaderLen:])
		h.SetTTL(1)
		h.UpdateChecksum()
		return p
	})
	tb.sources = append(tb.sources, src)
	src.Start(0)
	tb.Sim.RunUntil(20e6)

	// ICMP time-exceeded errors return on interface 0; nothing leaves
	// interface 1.
	if tb.NICs[1].SentWire != 0 {
		t.Errorf("%d expired packets were forwarded", tb.NICs[1].SentWire)
	}
	if tb.NICs[0].SentWire == 0 {
		t.Error("no ICMP errors generated")
	}
	// Roughly one error per packet (rate limiting is not modeled).
	if float64(tb.NICs[0].SentWire) < float64(src.Emitted)*0.9 {
		t.Errorf("only %d errors for %d expired packets", tb.NICs[0].SentWire, src.Emitted)
	}
}

// PIO accounting: the Pro/1000's programmed-I/O cost must appear in the
// per-packet CPU time on P1 but not P0.
func TestPIOAccounting(t *testing.T) {
	variants, _, err := PrepareVariants(2)
	if err != nil {
		t.Fatal(err)
	}
	base := variants[0]
	ifs2 := iprouter.Interfaces(2)
	run := func(pio float64) float64 {
		tb, err := NewTestbed(base.Graph.Clone(), TestbedOptions{
			Platform: simcpu.P1, NIC: Pro1000, Ifs: ifs2,
			Registry: base.Registry, PIOAccessNS: pio,
		})
		if err != nil {
			t.Fatal(err)
		}
		tb.AddUniformLoad(50000)
		res := tb.Measure(5e6, 20e6)
		// Total CPU time per packet including the Other category where
		// PIO is charged.
		return tb.CPU.TotalNS() / float64(res.Outcomes.Sent)
	}
	without := run(0)
	with := run(300)
	delta := with - without
	// Each forwarded packet involves one receive and one send: ~600 ns.
	if delta < 450 || delta > 750 {
		t.Errorf("PIO delta = %.0f ns/packet, want ~600", delta)
	}
}

func TestReceivedCountersMatchWire(t *testing.T) {
	variants, ifs, err := PrepareVariants(2)
	if err != nil {
		t.Fatal(err)
	}
	simple := variants[len(variants)-1] // Simple
	tb, err := NewTestbed(simple.Graph.Clone(), TestbedOptions{
		Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: simple.Registry,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.AddUniformLoad(50000)
	tb.Sim.RunUntil(20e6)
	if tb.Received[1] == 0 {
		t.Fatal("destination host received nothing")
	}
	if tb.Received[1] != tb.NICs[1].SentWire {
		t.Errorf("host received %d but wire sent %d", tb.Received[1], tb.NICs[1].SentWire)
	}
}
