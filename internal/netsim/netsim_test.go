package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/simcpu"
)

func TestSimEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.Schedule(100, func() { order = append(order, 2) })
	s.Schedule(50, func() { order = append(order, 1) })
	s.Schedule(100, func() { order = append(order, 3) }) // same time: FIFO
	s.RunUntil(200)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 200 {
		t.Errorf("now = %v", s.Now())
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim()
	count := 0
	var rec func()
	rec = func() {
		count++
		if count < 5 {
			s.After(10, rec)
		}
	}
	s.Schedule(0, rec)
	s.RunUntil(100)
	if count != 5 {
		t.Errorf("count = %d", count)
	}
}

func TestBusSerializes(t *testing.T) {
	s := NewSim()
	b := NewBus(s, 100, 100) // 10 ns/byte, 100 ns overhead
	var done []float64
	b.Transact(10, func() { done = append(done, s.Now()) }) // 100+100 = 200
	b.Transact(10, func() { done = append(done, s.Now()) }) // queued: 400
	s.RunUntil(1000)
	if len(done) != 2 || done[0] != 200 || done[1] != 400 {
		t.Errorf("completion times = %v", done)
	}
	if b.Transactions != 2 {
		t.Errorf("transactions = %d", b.Transactions)
	}
	if got := b.BusyNS; got != 400 {
		t.Errorf("busy = %v", got)
	}
}

func mkPkt() *packet.Packet {
	return packet.BuildUDP4(packet.EtherAddr{1}, packet.EtherAddr{2},
		packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 1, 2, make([]byte, 14))
}

func TestNICRxPath(t *testing.T) {
	s := NewSim()
	bus := NewBus(s, 100, 100)
	nic := NewNIC(s, "eth0", Tulip, bus)
	nic.Arrive(mkPkt())
	s.RunUntil(10000)
	if nic.Delivered != 1 {
		t.Fatalf("delivered = %d", nic.Delivered)
	}
	p := nic.RxDequeue()
	if p == nil {
		t.Fatal("RxDequeue returned nil after delivery")
	}
	if nic.RxDequeue() != nil {
		t.Error("second RxDequeue should be nil")
	}
}

func TestNICFIFOOverflow(t *testing.T) {
	s := NewSim()
	bus := NewBus(s, 100, 100)
	nic := NewNIC(s, "eth0", Tulip, bus)
	// Fill the FIFO beyond capacity without running the simulator (the
	// RX engine can't drain without event processing).
	for i := 0; i < Tulip.FIFOPackets+5; i++ {
		nic.Arrive(mkPkt())
	}
	if nic.FIFOOverflows < 4 {
		t.Errorf("overflows = %d (first arrival may start the engine)", nic.FIFOOverflows)
	}
}

func TestNICMissedFrames(t *testing.T) {
	s := NewSim()
	bus := NewBus(s, 100, 100)
	nic := NewNIC(s, "eth0", Tulip, bus)
	// Fill the entire RX ring without the CPU draining it.
	for i := 0; i < Tulip.RxRing; i++ {
		nic.Arrive(mkPkt())
		s.RunUntil(s.Now() + 10000)
	}
	if nic.Delivered != int64(Tulip.RxRing) {
		t.Fatalf("delivered = %d, want full ring", nic.Delivered)
	}
	// Next packet: descriptor never free -> missed frame after two
	// checks.
	txBefore := bus.Transactions
	nic.Arrive(mkPkt())
	s.RunUntil(s.Now() + 10000)
	if nic.MissedFrames != 1 {
		t.Errorf("missed frames = %d, want 1", nic.MissedFrames)
	}
	if bus.Transactions-txBefore != 2 {
		t.Errorf("missed frame used %d bus transactions, want 2 (both checks)", bus.Transactions-txBefore)
	}
	// Draining one slot lets the next packet through.
	if nic.RxDequeue() == nil {
		t.Fatal("ring should have packets")
	}
	nic.Arrive(mkPkt())
	s.RunUntil(s.Now() + 10000)
	if nic.Delivered != int64(Tulip.RxRing)+1 {
		t.Errorf("delivered = %d after refill", nic.Delivered)
	}
}

func TestNICTxPath(t *testing.T) {
	s := NewSim()
	bus := NewBus(s, 100, 100)
	nic := NewNIC(s, "eth0", Tulip, bus)
	var got []*packet.Packet
	nic.OnWire = func(p *packet.Packet) { got = append(got, p) }
	if !nic.TxEnqueue(mkPkt()) {
		t.Fatal("TxEnqueue refused")
	}
	s.RunUntil(100000)
	if len(got) != 1 || nic.SentWire != 1 {
		t.Fatalf("sent = %d", nic.SentWire)
	}
	if nic.TxClean() != 1 {
		t.Error("TxClean did not reclaim")
	}
	if nic.TxClean() != 0 {
		t.Error("TxClean reclaimed twice")
	}
}

func TestNICWireRateLimits(t *testing.T) {
	s := NewSim()
	bus := NewBus(s, 10000, 1) // effectively infinite bus
	nic := NewNIC(s, "eth0", Tulip, bus)
	sent := 0
	nic.OnWire = func(p *packet.Packet) { sent++; p.Kill() }
	// Enqueue continuously for 10 ms; the 100 Mbit/s wire caps at
	// 148,800 pps -> 1488 packets.
	var feed func()
	feed = func() {
		nic.TxClean() // reclaim, as ToDevice does each task round
		nic.TxEnqueue(mkPkt())
		s.After(1000, feed) // 1M pps offered
	}
	s.Schedule(0, feed)
	s.RunUntil(10e6)
	if sent < 1400 || sent > 1500 {
		t.Errorf("wire carried %d packets in 10 ms, want ~1488", sent)
	}
}

func TestSourceRate(t *testing.T) {
	s := NewSim()
	bus := NewBus(s, 10000, 1)
	nic := NewNIC(s, "eth0", Tulip, bus)
	src := NewSource(s, nic, 100000, mkPkt)
	src.Start(0)
	s.RunUntil(10e6) // 10 ms at 100 kpps -> ~1000 packets
	if src.Emitted < 990 || src.Emitted > 1010 {
		t.Errorf("emitted %d, want ~1000", src.Emitted)
	}
	src.Stop()
	before := src.Emitted
	s.RunUntil(20e6)
	if src.Emitted != before {
		t.Error("source kept emitting after Stop")
	}
}

func TestTestbedForwardsAtLowRate(t *testing.T) {
	variants, ifs, err := PrepareVariants(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		res, err := RunPoint(v.Graph, TestbedOptions{
			Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: v.Registry,
		}, 50000, 5e6, 20e6)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		loss := 1 - res.ForwardPPS/res.InputPPS
		if loss > 0.01 {
			t.Errorf("%s: %.1f%% loss at 50 kpps (fwd %.0f of %.0f)",
				v.Name, loss*100, res.ForwardPPS, res.InputPPS)
		}
	}
}

func TestTestbedCPUBreakdownShape(t *testing.T) {
	variants, ifs, err := PrepareVariants(2)
	if err != nil {
		t.Fatal(err)
	}
	base := variants[0]
	res, err := RunPoint(base.Graph, TestbedOptions{
		Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: base.Registry,
	}, 100000, 5e6, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 8 shape: forwarding dominates; receive > transmit.
	if res.ForwardNS <= res.RxDeviceNS || res.ForwardNS <= res.TxDeviceNS {
		t.Errorf("forwarding path (%.0f ns) should dominate rx (%.0f) and tx (%.0f)",
			res.ForwardNS, res.RxDeviceNS, res.TxDeviceNS)
	}
	if res.RxDeviceNS <= res.TxDeviceNS {
		t.Errorf("rx device (%.0f ns) should cost more than tx (%.0f ns)", res.RxDeviceNS, res.TxDeviceNS)
	}
	t.Logf("Base @100kpps: rx=%.0f fwd=%.0f tx=%.0f total=%.0f ns/packet",
		res.RxDeviceNS, res.ForwardNS, res.TxDeviceNS, res.TotalCPUNS)
}

func TestOptimizedBeatsBase(t *testing.T) {
	variants, ifs, err := PrepareVariants(2)
	if err != nil {
		t.Fatal(err)
	}
	costs := map[string]float64{}
	for _, v := range variants {
		res, err := RunPoint(v.Graph, TestbedOptions{
			Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: v.Registry,
		}, 100000, 5e6, 20e6)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		costs[v.Name] = res.ForwardNS
		t.Logf("%-7s forwarding path %.0f ns/packet (total %.0f)", v.Name, res.ForwardNS, res.TotalCPUNS)
	}
	if costs["All"] >= costs["Base"]*0.75 {
		t.Errorf("All (%.0f ns) should be well below Base (%.0f ns)", costs["All"], costs["Base"])
	}
	if costs["MR+All"] >= costs["All"] {
		t.Errorf("MR+All (%.0f) should beat All (%.0f)", costs["MR+All"], costs["All"])
	}
	for _, name := range []string{"FC", "DV", "XF"} {
		if costs[name] >= costs["Base"] {
			t.Errorf("%s (%.0f) not better than Base (%.0f)", name, costs[name], costs["Base"])
		}
	}
	if costs["Simple"] >= costs["All"] {
		t.Errorf("Simple (%.0f) should be the cheapest forwarding path (All %.0f)", costs["Simple"], costs["All"])
	}
}

func TestBusUtilization(t *testing.T) {
	s := NewSim()
	b := NewBus(s, 100, 100)
	b.Transact(10, func() {}) // 200 ns busy
	s.RunUntil(400)
	if got := b.Utilization(); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
	if NewNIC(s, "ethX", Tulip, b).DeviceName() != "ethX" {
		t.Error("DeviceName wrong")
	}
}

func TestWireNS(t *testing.T) {
	// 56-byte packet: frame padded to 64, +20 preamble/gap = 84 bytes at
	// 100 Mbit/s = 6.72 us (§8.1's 148,800 pps).
	if got := Tulip.WireNS(56); got != 6720 {
		t.Errorf("WireNS(56) = %v, want 6720", got)
	}
	// Large frame scales with length: 996+42 data bytes -> 1042+20.
	if got := Tulip.WireNS(1038); got != 1062*80 {
		t.Errorf("WireNS(1038) = %v, want %v", got, 1062*80)
	}
	// Gigabit is 10x faster.
	if got := Pro1000.WireNS(56); got != 672 {
		t.Errorf("Pro1000 WireNS(56) = %v", got)
	}
}

func TestSimulationDeterminism(t *testing.T) {
	// Identical inputs must produce identical outcomes — EXPERIMENTS.md
	// promises exact reproducibility.
	variants, ifs, err := PrepareVariants(2)
	if err != nil {
		t.Fatal(err)
	}
	base := variants[0]
	var ref Result
	for trial := 0; trial < 3; trial++ {
		res, err := RunPoint(base.Graph, TestbedOptions{
			Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: base.Registry,
		}, 120000, 5e6, 20e6)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			ref = res
			continue
		}
		if res.ForwardPPS != ref.ForwardPPS || res.Outcomes != ref.Outcomes ||
			res.ForwardNS != ref.ForwardNS {
			t.Fatalf("trial %d diverged: %+v vs %+v", trial, res, ref)
		}
	}
}

func TestPrepareVariantsIsolation(t *testing.T) {
	variants, _, err := PrepareVariants(2)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"Base", "FC", "DV", "XF", "All", "MR+All", "Simple"}
	if len(variants) != len(names) {
		t.Fatalf("%d variants", len(variants))
	}
	for i, v := range variants {
		if v.Name != names[i] {
			t.Errorf("variant %d = %s, want %s", i, v.Name, names[i])
		}
	}
	// FC's generated classes must not leak into Base's registry.
	if _, ok := variants[0].Registry.Lookup("FastClassifier@@c0"); ok {
		t.Error("generated class leaked into Base registry")
	}
	if _, ok := variants[1].Registry.Lookup("FastClassifier@@c0"); !ok {
		t.Error("FC registry missing its generated class")
	}
	// Graphs are independent: mutating one must not affect another.
	variants[0].Graph.MustAddElement("zzz", "Idle", "", "t")
	if variants[1].Graph.FindElement("zzz") != -1 {
		t.Error("variant graphs share state")
	}
}
