package netsim

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/iprouter"
	"repro/internal/mgmt"
	"repro/internal/packet"
)

// The incremental-install difftest: a randomized create/swap/delete
// sequence applied simultaneously to an incremental plane and a
// from-scratch FullRebuild plane, with frames injected between every
// operation, must produce packet-for-packet identical egress on every
// tenant device. This is the replay-corpus methodology pointed at the
// control plane — the baseline plane rebuilds the world each time, so
// any splice/remove/transplant bug shows up as a byte diff, not a
// flaky counter.

// planeTestConfig is a classifier-chain tenant (the shape fusion and
// sharing act on): filter, classify, queue, transmit.
func planeTestConfig(variant int) string {
	rules := append([]string(nil), iprouter.FirewallRules()...)
	if variant > 0 {
		rules[10] = fmt.Sprintf("deny udp && dst port %d", 2000+variant%60000)
	}
	return fmt.Sprintf(`pd :: PollDevice(eth0) -> flt :: IPFilter(%s) -> fc :: IPClassifier(udp, tcp, -);
fc [0] -> q :: Queue(64) -> td :: ToDevice(eth1);
fc [1] -> q;
fc [2] -> ds :: Discard;
`, strings.Join(rules, ", "))
}

// planeTestFrame builds the rule-16 frame with a distinguishing
// sequence byte, so captured streams detect reordering and cross-tenant
// leaks, not just counts.
func planeTestFrame(seq int) []byte {
	f := IPFrame(packet.MakeIP4(192, 0, 2, 7), packet.MakeIP4(10, 0, 0, 2), 3456, 53, 26)
	f[len(f)-2] = byte(seq >> 8)
	f[len(f)-1] = byte(seq)
	return f
}

// diffPlanes drives the same randomized operation sequence on two
// PlaneBeds and fails on any divergence: operation outcome, forwarded
// frame bytes per device, or tenant survivor set.
func diffPlanes(t *testing.T, a, b *PlaneBed, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const idPool = 6
	live := map[string]bool{}
	seq := 0

	inject := func(bed *PlaneBed, id string, n int) {
		frames := make([][]byte, n)
		for k := range frames {
			frames[k] = planeTestFrame(seq + k)
		}
		bed.Device(id, "eth0").Inject(frames...)
	}
	settle := func() {
		t.Helper()
		if err := a.Settle(1 << 16); err != nil {
			t.Fatal(err)
		}
		if err := b.Settle(1 << 16); err != nil {
			t.Fatal(err)
		}
	}

	for step := 0; step < steps; step++ {
		id := fmt.Sprintf("t%d", rng.Intn(idPool))
		variant := rng.Intn(4) // small pool: collisions exercise sharing and the config cache
		var errA, errB error
		var op string
		switch {
		case !live[id]:
			op = "create"
			errA = a.Plane.Create(id, planeTestConfig(variant), mgmt.Limits{})
			errB = b.Plane.Create(id, planeTestConfig(variant), mgmt.Limits{})
			live[id] = true
		case rng.Intn(3) == 0:
			op = "delete"
			errA = a.Plane.Delete(id)
			errB = b.Plane.Delete(id)
			delete(live, id)
		default:
			op = "swap"
			errA = a.Plane.Swap(id, planeTestConfig(variant))
			errB = b.Plane.Swap(id, planeTestConfig(variant))
		}
		if (errA == nil) != (errB == nil) {
			t.Fatalf("step %d: %s %s diverged: %v vs %v", step, op, id, errA, errB)
		}
		if errA != nil {
			t.Fatalf("step %d: %s %s: %v", step, op, id, errA)
		}
		// Load every live tenant after each operation; the same frames
		// go to both planes.
		for tid := range live {
			inject(a, tid, 2)
			inject(b, tid, 2)
		}
		seq += 2
		settle()
	}

	// Final comparison: every device either plane ever bound must have
	// emitted identical byte streams.
	for i := 0; i < idPool; i++ {
		id := fmt.Sprintf("t%d", i)
		capA := a.Device(id, "eth1").Captured()
		capB := b.Device(id, "eth1").Captured()
		if len(capA) != len(capB) {
			t.Fatalf("%s: %d frames on incremental plane, %d on baseline", id, len(capA), len(capB))
		}
		for k := range capA {
			if !bytes.Equal(capA[k], capB[k]) {
				t.Fatalf("%s frame %d differs:\n  inc  %x\n  base %x", id, k, capA[k], capB[k])
			}
		}
		if live[id] && len(capA) == 0 {
			t.Errorf("%s: live tenant forwarded nothing", id)
		}
	}
}

// TestIncrementalInstallEquivalence is the scalar difftest:
// incremental splice/swap/remove versus full rebuild.
func TestIncrementalInstallEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a, err := NewPlaneBed(PlaneBedOptions{Capture: true})
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewPlaneBed(PlaneBedOptions{Capture: true, FullRebuild: true})
			if err != nil {
				t.Fatal(err)
			}
			diffPlanes(t, a, b, seed, 40)
		})
	}
}

// TestIncrementalInstallEquivalenceParallel runs the same difftest on
// the 2-worker parallel scheduler — the race tier runs this under
// -race, where a splice racing the epoch machinery would surface.
func TestIncrementalInstallEquivalenceParallel(t *testing.T) {
	a, err := NewPlaneBed(PlaneBedOptions{Capture: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlaneBed(PlaneBedOptions{Capture: true, Workers: 2, FullRebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	diffPlanes(t, a, b, 42, 30)
}

// TestSharedFDDEquivalence checks that cross-tenant classifier sharing
// is purely an optimization: a sharing plane and a NoShare plane fed
// the same operations and frames emit identical egress.
func TestSharedFDDEquivalence(t *testing.T) {
	a, err := NewPlaneBed(PlaneBedOptions{Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlaneBed(PlaneBedOptions{Capture: true, NoShare: true})
	if err != nil {
		t.Fatal(err)
	}
	diffPlanes(t, a, b, 99, 40)

	// The sharing plane must actually have shared something: more
	// references than resident programs means tenants are pointing at
	// one canonical diagram. (Identical config *texts* are deduplicated
	// by the parse cache before ever reaching the intern table, so
	// intern hits are not the signal — reference counts are.)
	if s := a.Plane.SharingStats(); s.Refs <= s.Programs || s.UnsharedNodes <= s.ResidentNodes {
		t.Errorf("sharing plane shows no cross-tenant sharing: %+v", s)
	}
	if s := b.Plane.SharingStats(); s.Programs != 0 {
		t.Errorf("NoShare plane interned %d programs", s.Programs)
	}
}
