package netsim

import (
	pktio "repro/internal/io"
	"repro/internal/packet"
)

// ReplaySource injects a recorded frame sequence into a NIC at a fixed
// rate, driving the simulated testbed from a real capture instead of a
// synthetic generator. Recorded inter-arrival times are deliberately
// ignored: replay experiments sweep offered load, and the capture
// supplies the packet mix, not the pacing.
type ReplaySource struct {
	sim      *Sim
	nic      *NIC
	frames   [][]byte
	pos      int
	interval float64
	loop     bool
	// Emitted counts frames delivered to the NIC.
	Emitted int64
	stopped bool
}

// NewReplaySource creates a source replaying frames at pps packets per
// second (clamped to the wire rate for minimum-size frames, like
// Source). With loop set the sequence repeats; otherwise the source
// stops after the last frame.
func NewReplaySource(sim *Sim, nic *NIC, frames [][]byte, pps float64, loop bool) *ReplaySource {
	interval := 1e9 / pps
	if min := nic.params.WireNS(60); interval < min {
		interval = min
	}
	return &ReplaySource{sim: sim, nic: nic, frames: frames, interval: interval, loop: loop}
}

// Start begins replay at the given simulated time.
func (s *ReplaySource) Start(at float64) {
	s.sim.Schedule(at, s.emit)
}

// Stop halts the replay after the current event.
func (s *ReplaySource) Stop() { s.stopped = true }

// Done reports whether a non-looping replay has delivered every frame.
func (s *ReplaySource) Done() bool { return !s.loop && s.pos >= len(s.frames) }

func (s *ReplaySource) emit() {
	if s.stopped || len(s.frames) == 0 {
		return
	}
	if s.pos >= len(s.frames) {
		if !s.loop {
			return
		}
		s.pos = 0
	}
	s.Emitted++
	s.nic.Arrive(packet.New(s.frames[s.pos]))
	s.pos++
	if s.pos < len(s.frames) || s.loop {
		s.sim.After(s.interval, s.emit)
	}
}

// AddReplay attaches a replay source feeding the named interface's NIC
// at pps packets per second, starting at simulated time 0. It returns
// the source so callers can Stop it or poll Done.
func (tb *Testbed) AddReplay(iface string, frames [][]byte, pps float64, loop bool) *ReplaySource {
	for i, itf := range tb.Ifs {
		if itf.Device != iface {
			continue
		}
		s := NewReplaySource(tb.Sim, tb.NICs[i], frames, pps, loop)
		tb.replays = append(tb.replays, s)
		s.Start(0)
		return s
	}
	return nil
}

// AddReplayPcap is AddReplay fed from a capture file.
func (tb *Testbed) AddReplayPcap(iface, path string, pps float64, loop bool) (*ReplaySource, error) {
	recs, err := pktio.ReadPcapFile(path)
	if err != nil {
		return nil, err
	}
	frames := make([][]byte, len(recs))
	for i, r := range recs {
		frames[i] = r.Data
	}
	s := tb.AddReplay(iface, frames, pps, loop)
	return s, nil
}
