package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mgmt"
	"repro/internal/packet"
)

// The plane testbed drives a real mgmt.Plane — the incremental
// multi-tenant control plane — with scripted packet I/O. Unlike the
// event-driven Testbed (which models NIC timing on the simulated CPU),
// PlaneBed binds plain in-memory devices to each tenant: ingress
// frames are queued by the test or benchmark, egress frames are
// counted and optionally captured byte-for-byte. That makes it both
// the load generator for the mgmtscale experiment (is the dataplane
// still forwarding while tenants come and go?) and the oracle for the
// incremental-vs-rebuild equivalence difftests (did the spliced router
// emit exactly the frames the from-scratch router does?).

// PlaneDevice is one tenant interface: a scripted RX queue and a
// counting (optionally capturing) TX sink. It is safe for concurrent
// use — the dataplane workers dequeue/enqueue while the test injects
// and inspects.
type PlaneDevice struct {
	name    string
	capture bool

	mu sync.Mutex
	rx [][]byte
	tx [][]byte

	rxCount int64
	txCount int64
}

// DeviceName returns the scoped device name ("tenant:eth0").
func (d *PlaneDevice) DeviceName() string { return d.name }

// Inject queues frames for the tenant's PollDevice to receive, in
// order. The slices are used as packet payloads directly; callers must
// not mutate them afterwards.
func (d *PlaneDevice) Inject(frames ...[]byte) {
	d.mu.Lock()
	d.rx = append(d.rx, frames...)
	d.mu.Unlock()
}

// Pending returns the number of injected frames not yet received.
func (d *PlaneDevice) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.rx)
}

// RxDequeue pops the next scripted frame as a fresh packet.
func (d *PlaneDevice) RxDequeue() *packet.Packet {
	d.mu.Lock()
	if len(d.rx) == 0 {
		d.mu.Unlock()
		return nil
	}
	frame := d.rx[0]
	d.rx = d.rx[1:]
	d.mu.Unlock()
	atomic.AddInt64(&d.rxCount, 1)
	return packet.New(frame)
}

// TxEnqueue accepts every transmitted packet, copying its bytes when
// capture is on.
func (d *PlaneDevice) TxEnqueue(p *packet.Packet) bool {
	if d.capture {
		frame := append([]byte(nil), p.Data()...)
		d.mu.Lock()
		d.tx = append(d.tx, frame)
		d.mu.Unlock()
	}
	atomic.AddInt64(&d.txCount, 1)
	p.Kill()
	return true
}

// TxRoom reports the bottomless TX ring is never full.
func (d *PlaneDevice) TxRoom() bool { return true }

// TxClean reclaims nothing; transmits complete immediately.
func (d *PlaneDevice) TxClean() int { return 0 }

// TxCount returns the number of frames transmitted so far.
func (d *PlaneDevice) TxCount() int64 { return atomic.LoadInt64(&d.txCount) }

// Captured snapshots the transmitted frames (capture mode only).
func (d *PlaneDevice) Captured() [][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([][]byte(nil), d.tx...)
}

// PlaneBedOptions configure a plane testbed.
type PlaneBedOptions struct {
	// Workers and Burst configure the plane's dataplane.
	Workers int
	Burst   int
	// FullRebuild and NoShare select the plane's baseline modes.
	FullRebuild bool
	NoShare     bool
	// Capture records every egress frame byte-for-byte (the
	// equivalence difftests need it; the scale benchmark leaves it off
	// and uses counts).
	Capture bool
}

// PlaneBed is a mgmt.Plane wired to PlaneDevices. Devices are memoized
// per (tenant, device) name, so a tenant hot-swap rebinds the same
// rings and its ingress backlog and egress capture survive the swap —
// the same device identity a real NIC would keep.
type PlaneBed struct {
	Plane *mgmt.Plane

	mu   sync.Mutex
	devs map[string]*PlaneDevice
	opts PlaneBedOptions
}

// NewPlaneBed builds a plane whose device provider hands out
// PlaneDevices.
func NewPlaneBed(o PlaneBedOptions) (*PlaneBed, error) {
	b := &PlaneBed{devs: map[string]*PlaneDevice{}, opts: o}
	p, err := mgmt.NewPlane(mgmt.Options{
		Workers:     o.Workers,
		Burst:       o.Burst,
		FullRebuild: o.FullRebuild,
		NoShare:     o.NoShare,
		Devices:     func(tenant, dev string) interface{} { return b.Device(tenant, dev) },
	})
	if err != nil {
		return nil, err
	}
	b.Plane = p
	return b, nil
}

// Device returns the tenant's named device, creating it on first use
// (the plane's provider calls this at admission; tests may call it
// before or after).
func (b *PlaneBed) Device(tenant, dev string) *PlaneDevice {
	key := tenant + ":" + dev
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.devs[key]
	if !ok {
		d = &PlaneDevice{name: key, capture: b.opts.Capture}
		b.devs[key] = d
	}
	return d
}

// PendingRx sums the undelivered ingress backlog across every device.
func (b *PlaneBed) PendingRx() int {
	b.mu.Lock()
	devs := make([]*PlaneDevice, 0, len(b.devs))
	for _, d := range b.devs {
		devs = append(devs, d)
	}
	b.mu.Unlock()
	n := 0
	for _, d := range devs {
		n += d.Pending()
	}
	return n
}

// TotalTx sums transmitted frames across every device.
func (b *PlaneBed) TotalTx() int64 {
	b.mu.Lock()
	devs := make([]*PlaneDevice, 0, len(b.devs))
	for _, d := range b.devs {
		devs = append(devs, d)
	}
	b.mu.Unlock()
	var n int64
	for _, d := range devs {
		n += d.TxCount()
	}
	return n
}

// Settle drives the plane's scheduler directly (the pump must not be
// running) until the ingress backlog drains and the router goes idle,
// bounded by maxRounds scheduling quanta. It returns an error if work
// remains — a dropped backlog here means a tenant's path is wired
// wrong, not that the bed should wait longer.
func (b *PlaneBed) Settle(maxRounds int) error {
	sched := b.Plane.Scheduler()
	for i := 0; i < maxRounds; i++ {
		moved := sched.RunUntilIdle(4096)
		if moved == 0 && b.PendingRx() == 0 {
			return nil
		}
	}
	if pending := b.PendingRx(); pending > 0 {
		return fmt.Errorf("netsim: planebed did not settle: %d frames still pending after %d rounds", pending, maxRounds)
	}
	return nil
}

// IPFrame builds an IP-first UDP frame — the presentation IPFilter and
// IPClassifier match on (network header at offset zero), so scripted
// tenants need no decapsulation stage in front of their classifiers.
func IPFrame(src, dst packet.IP4, sport, dport uint16, payload int) []byte {
	p := packet.BuildUDP4(packet.EtherAddr{}, packet.EtherAddr{}, src, dst, sport, dport, make([]byte, payload))
	p.Pull(packet.EtherHeaderLen)
	frame := append([]byte(nil), p.Data()...)
	p.Kill()
	return frame
}
