package netsim

import (
	"sync/atomic"
	"testing"

	"repro/internal/elements"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/packet"
	"repro/internal/simcpu"
)

// queueOccupancy sums the live Queue occupancy of the testbed's router.
func queueOccupancy(tb *Testbed) int {
	total := 0
	for _, e := range tb.Router.Elements() {
		if q, ok := e.(*elements.Queue); ok {
			total += q.Len()
		}
	}
	return total
}

// TestHotswapUnderLoadLosesNothing is the tentpole acceptance test: a
// router forwarding live traffic is hot-swapped to its fully optimized
// variant mid-run, and every offered packet still makes it to the wire
// — zero queue drops, zero missed frames, zero FIFO overflows — with
// Queue occupancy and warmed ARP state carried across the swap.
func TestHotswapUnderLoadLosesNothing(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	g, err := lang.ParseRouter(iprouter.Config(ifs), "iprouter")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(g, TestbedOptions{Platform: simcpu.P0, NIC: Tulip, Ifs: ifs})
	if err != nil {
		t.Fatal(err)
	}
	tb.AddUniformLoad(30000) // comfortably loss-free for the Base config

	allG, allReg, err := buildAll(ifs, false)
	if err != nil {
		t.Fatal(err)
	}

	// Swap mid-run, capturing queue occupancy on both sides of the
	// boundary inside one simulator event so nothing runs in between.
	// To make the occupancy check bite, seed the old router's output
	// queue with fully formed frames right before the swap — they must
	// come out of the NEW router's ToDevice after the transplant.
	const injected = 5
	var preOcc, postOcc int
	var swapErr error
	oldRouter := tb.Router
	tb.Sim.Schedule(10e6, func() {
		q := tb.Router.Find("out1").(*elements.Queue)
		for i := 0; i < injected; i++ {
			q.Push(0, packet.BuildUDP4(ifs[1].Ether, ifs[1].HostEth,
				ifs[0].HostAddr, ifs[1].HostAddr, 4000, 4001, make([]byte, 14)))
		}
		preOcc = queueOccupancy(tb)
		swapErr = tb.Hotswap(allG, allReg)
		postOcc = queueOccupancy(tb)
	})
	tb.Sim.RunUntil(20e6)
	if swapErr != nil {
		t.Fatal(swapErr)
	}
	if tb.Router == oldRouter {
		t.Fatal("router was not replaced")
	}
	if preOcc < injected {
		t.Fatalf("pre-swap occupancy %d, want at least the %d seeded packets", preOcc, injected)
	}
	if postOcc != preOcc {
		t.Errorf("queue occupancy %d before swap, %d after — packets lost or duplicated in transplant", preOcc, postOcc)
	}

	// The replacement must inherit the warmed ARP tables: traffic keeps
	// flowing without a single new ARP query.
	sawARP := false
	for _, e := range tb.Router.Elements() {
		if aq, ok := e.(*elements.ARPQuerier); ok {
			sawARP = true
			if got, err := tb.Router.ReadHandler(aq.Name() + ".table_size"); err != nil || got == "0" {
				t.Errorf("%s table_size = %q (%v), want warmed entries transplanted", aq.Name(), got, err)
			}
			if q := atomic.LoadInt64(&aq.Queries); q != 0 {
				t.Errorf("%s issued %d ARP queries after swap — table did not transplant", aq.Name(), q)
			}
		}
	}
	if !sawARP {
		t.Fatal("optimized configuration has no ARPQuerier; test needs updating")
	}

	// Stop the load and drain completely: every offered packet must
	// reach the wire.
	for _, s := range tb.sources {
		s.Stop()
	}
	tb.Sim.RunUntil(60e6)
	o := tb.snapshot()
	if o.Offered == 0 {
		t.Fatal("no traffic offered")
	}
	if o.QueueDrops != 0 || o.MissedFrames != 0 || o.FIFOOverflows != 0 {
		t.Errorf("losses across hot-swap: queue=%d missed=%d fifo=%d",
			o.QueueDrops, o.MissedFrames, o.FIFOOverflows)
	}
	if want := o.Offered + injected; o.Sent != want {
		t.Errorf("sent %d, want %d (offered %d + %d seeded) — hot-swap lost %d",
			o.Sent, want, o.Offered, injected, want-o.Sent)
	}
	t.Logf("hot-swap under load: %d offered, %d sent, occupancy %d across swap", o.Offered, o.Sent, preOcc)
}

// TestHotswapBuildFailureKeepsOldRouter: a replacement that fails to
// build must leave the running router untouched and report the error.
func TestHotswapBuildFailureKeepsOldRouter(t *testing.T) {
	ifs := iprouter.Interfaces(2)
	g, err := lang.ParseRouter(iprouter.Config(ifs), "iprouter")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTestbed(g, TestbedOptions{Platform: simcpu.P0, NIC: Tulip, Ifs: ifs})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := lang.ParseRouter("src :: InfiniteSource(5) -> q :: Queue -> td :: ToDevice(nonexistent0);", "bad")
	if err != nil {
		t.Fatal(err)
	}
	old := tb.Router
	errp := tb.HotswapAt(1e6, bad, nil)
	tb.Sim.RunUntil(2e6)
	if *errp == nil {
		t.Fatal("swap to an unbuildable configuration reported success")
	}
	if tb.Router != old {
		t.Fatal("failed swap replaced the router")
	}
}
