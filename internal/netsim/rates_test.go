package netsim

import (
	"testing"

	"repro/internal/iprouter"
	"repro/internal/simcpu"
)

// Rate-domain tests: these exercise the Figure 10/11 machinery on the
// 8-interface evaluation topology. They assert the qualitative shape
// the paper reports; exact rates are checked loosely because they are
// calibration, not correctness.

func variantsByName(t *testing.T, n int) (map[string]ConfigVariant, []iprouter.Interface) {
	t.Helper()
	vs, ifs, err := PrepareVariants(n)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]ConfigVariant{}
	for _, v := range vs {
		m[v.Name] = v
	}
	return m, ifs
}

func TestBaseIsCPULimited(t *testing.T) {
	if testing.Short() {
		t.Skip("rate sweep")
	}
	vs, ifs := variantsByName(t, 8)
	base := vs["Base"]
	o := TestbedOptions{Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: base.Registry}

	// Below the CPU limit: essentially no loss.
	low, err := RunPoint(base.Graph, o, 300000, 20e6, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if loss := 1 - low.ForwardPPS/low.InputPPS; loss > 0.005 {
		t.Errorf("Base lost %.1f%% at 300 kpps", loss*100)
	}

	// Above it: loss appears, and every drop is a missed frame (§8.4:
	// "the baseline IP router configuration is clearly CPU-limited").
	high, err := RunPoint(base.Graph, o, 500000, 20e6, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if high.ForwardPPS > 400000 {
		t.Errorf("Base forwarded %.0f pps at 500 kpps input; should be CPU-capped near 345 kpps", high.ForwardPPS)
	}
	oc := high.Outcomes
	if oc.MissedFrames == 0 {
		t.Error("overloaded Base produced no missed frames")
	}
	if oc.FIFOOverflows > oc.MissedFrames/10 {
		t.Errorf("Base drops should be missed frames, got %d FIFO overflows vs %d missed",
			oc.FIFOOverflows, oc.MissedFrames)
	}
	if oc.QueueDrops > oc.MissedFrames/10 {
		t.Errorf("Base should not drop at Queues (CPU-limited): %d queue drops", oc.QueueDrops)
	}
	t.Logf("Base @500k: fwd=%.0f missed=%d fifo=%d queue=%d",
		high.ForwardPPS, oc.MissedFrames, oc.FIFOOverflows, oc.QueueDrops)
}

func TestSimpleIsBusLimited(t *testing.T) {
	if testing.Short() {
		t.Skip("rate sweep")
	}
	vs, ifs := variantsByName(t, 8)
	simple := vs["Simple"]
	o := TestbedOptions{Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: simple.Registry}
	res, err := RunPoint(simple.Graph, o, 580000, 20e6, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	oc := res.Outcomes
	// §8.4: "None of the packets dropped by Simple are missed frames;
	// they are either FIFO overflows or Queue drops."
	nonCPU := oc.FIFOOverflows + oc.QueueDrops
	if nonCPU == 0 {
		t.Errorf("Simple at 580 kpps should drop at FIFOs/Queues (fwd=%.0f of %.0f)",
			res.ForwardPPS, res.InputPPS)
	}
	if oc.MissedFrames > nonCPU/5 {
		t.Errorf("Simple drops should not be missed frames: missed=%d fifo=%d queue=%d",
			oc.MissedFrames, oc.FIFOOverflows, oc.QueueDrops)
	}
	t.Logf("Simple @580k: fwd=%.0f missed=%d fifo=%d queue=%d busutil=%v",
		res.ForwardPPS, oc.MissedFrames, oc.FIFOOverflows, oc.QueueDrops, res.BusUtilization)
}

func TestMLFFROrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("rate sweep")
	}
	vs, ifs := variantsByName(t, 8)
	mlffr := map[string]float64{}
	for _, name := range []string{"Base", "All", "MR+All"} {
		v := vs[name]
		o := TestbedOptions{Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: v.Registry}
		rate, err := MLFFR(v.Graph, o, 150000, 600000, 8000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mlffr[name] = rate
		t.Logf("MLFFR %-7s %.0f pps", name, rate)
	}
	// Figure 10/12 shape on P0: Base ~357k, All ~446k, MR+All ~457k.
	if mlffr["Base"] < 300000 || mlffr["Base"] > 400000 {
		t.Errorf("Base MLFFR %.0f out of the expected band (300k-400k)", mlffr["Base"])
	}
	ratio := mlffr["All"] / mlffr["Base"]
	if ratio < 1.15 || ratio > 1.40 {
		t.Errorf("All/Base MLFFR ratio %.2f outside 1.15-1.40 (paper: 1.25)", ratio)
	}
	if mlffr["MR+All"] < mlffr["All"] {
		t.Errorf("MR+All MLFFR (%.0f) below All (%.0f)", mlffr["MR+All"], mlffr["All"])
	}
}

func TestOptimizedSaturationBehaviour(t *testing.T) {
	if testing.Short() {
		t.Skip("rate sweep")
	}
	// §8.3/§8.4: past its peak the optimized router must not collapse:
	// FIFO overflows absorb the excess "without any impact on the PCI
	// bus", so high input rates do not reduce forwarding. (The paper
	// additionally observes a ~10% dip between the MLFFR and the
	// protected plateau; this model under-reproduces that dip — see
	// EXPERIMENTS.md — but reproduces the protection.)
	vs, ifs := variantsByName(t, 8)
	all := vs["All"]
	o := TestbedOptions{Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: all.Registry}
	peak, err := RunPoint(all.Graph, o, 450000, 20e6, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	over, err := RunPoint(all.Graph, o, 590000, 20e6, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("All: fwd(450k)=%.0f fwd(590k)=%.0f fifo=%d", peak.ForwardPPS, over.ForwardPPS, over.Outcomes.FIFOOverflows)
	if over.ForwardPPS < peak.ForwardPPS*0.90 {
		t.Errorf("forwarding collapsed past peak: %.0f -> %.0f", peak.ForwardPPS, over.ForwardPPS)
	}
	if over.Outcomes.FIFOOverflows == 0 && over.Outcomes.MissedFrames == 0 {
		t.Error("overload produced no NIC-level drops")
	}
}

func TestFigure10CurveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("rate sweep")
	}
	vs, ifs := variantsByName(t, 8)
	all := vs["All"]
	o := TestbedOptions{Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: all.Registry}
	var fwd []float64
	for _, rate := range []float64{200000, 300000, 430000, 470000, 550000, 590000} {
		res, err := RunPoint(all.Graph, o, rate, 20e6, 50e6)
		if err != nil {
			t.Fatal(err)
		}
		fwd = append(fwd, res.ForwardPPS)
		t.Logf("All: in=%.0f fwd=%.0f missed=%d fifo=%d",
			res.InputPPS, res.ForwardPPS, res.Outcomes.MissedFrames, res.Outcomes.FIFOOverflows)
	}
	// Below MLFFR the curve tracks y = x.
	if fwd[0] < 195000 || fwd[1] < 295000 {
		t.Errorf("All loses packets below MLFFR: %v", fwd)
	}
	// Past the peak the curve plateaus near the MLFFR instead of
	// collapsing (§8.4's FIFO-overflow protection); the paper's curves
	// settle near 400 kpps, ours near the 442 kpps peak.
	peak := fwd[2]
	if fwd[5] < peak*0.88 {
		t.Errorf("overload forwarding %.0f collapsed well below peak %.0f", fwd[5], peak)
	}
	if fwd[5] > fwd[4]*1.02 || fwd[5] < fwd[4]*0.95 {
		t.Errorf("no plateau: %.0f vs %.0f", fwd[4], fwd[5])
	}
}

func TestLargePacketsAreWireLimited(t *testing.T) {
	if testing.Short() {
		t.Skip("rate sweep")
	}
	// §8.3 motivates measuring with minimum-size packets: they stress
	// the CPU most. With 1000-byte frames the 100 Mbit/s wire itself
	// caps each link near 12 kpps, far below the CPU limit, so the
	// router forwards at the wire rate with no missed frames.
	vs, ifs := variantsByName(t, 8)
	base := vs["Base"]
	tb, err := NewTestbed(base.Graph.Clone(), TestbedOptions{
		Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: base.Registry,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 996-byte UDP payload -> 1038-byte frames; per-link wire cap
	// ~= 100e6 / (1042+20)*8 ~= 11.8 kpps; 4 links ~= 47 kpps.
	tb.AddUniformLoadSized(80000, 996)
	res := tb.Measure(20e6, 50e6)
	if res.Outcomes.MissedFrames > 0 {
		t.Errorf("wire-limited run should not miss frames (CPU idle): %d", res.Outcomes.MissedFrames)
	}
	if res.ForwardPPS < 40000 || res.ForwardPPS > 50000 {
		t.Errorf("forwarded %.0f pps; want the ~47 kpps wire limit", res.ForwardPPS)
	}
}
