package netsim

import (
	"path/filepath"
	"testing"

	pktio "repro/internal/io"
	"repro/internal/packet"
	"repro/internal/simcpu"
)

// A testbed driven from a replayed capture instead of a synthetic
// source forwards the trace's valid transit packets and accounts the
// replay in the offered-load snapshot.
func TestReplayDrivesTestbed(t *testing.T) {
	variants, ifs, err := PrepareVariants(2)
	if err != nil {
		t.Fatal(err)
	}
	base := variants[0]
	tb, err := NewTestbed(base.Graph.Clone(), TestbedOptions{
		Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: base.Registry,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Record a small trace: transit UDP frames from interface 0's host
	// across the router to interface 1's host.
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.pcap")
	sink, err := pktio.CreateCaptureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		p := packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
			ifs[0].HostAddr, ifs[1].HostAddr, uint16(1024+i), 99, make([]byte, 14))
		if err := sink.WriteFrame(p.Data()); err != nil {
			t.Fatal(err)
		}
		p.Kill()
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	src, err := tb.AddReplayPcap(ifs[0].Device, path, 50000, false)
	if err != nil {
		t.Fatal(err)
	}
	if src == nil {
		t.Fatalf("no NIC for interface %s", ifs[0].Device)
	}
	tb.Sim.RunUntil(20e6) // 20 ms: ample for 50 packets at 50 kpps

	if !src.Done() {
		t.Fatalf("replay not exhausted: emitted %d of %d", src.Emitted, n)
	}
	if src.Emitted != n {
		t.Fatalf("replay emitted %d frames, want %d", src.Emitted, n)
	}
	if got := tb.snapshot().Offered; got != n {
		t.Errorf("snapshot offered %d, want %d (replay not accounted)", got, n)
	}
	if sent := tb.NICs[1].SentWire; sent != n {
		t.Errorf("forwarded %d of %d replayed packets", sent, n)
	}
	if tb.Received[1] != n {
		t.Errorf("destination host received %d of %d", tb.Received[1], n)
	}
}

// A looping replay keeps offering the trace until stopped.
func TestReplayLoops(t *testing.T) {
	variants, ifs, err := PrepareVariants(2)
	if err != nil {
		t.Fatal(err)
	}
	base := variants[0]
	tb, err := NewTestbed(base.Graph.Clone(), TestbedOptions{
		Platform: simcpu.P0, NIC: Tulip, Ifs: ifs, Registry: base.Registry,
	})
	if err != nil {
		t.Fatal(err)
	}
	var frames [][]byte
	for i := 0; i < 5; i++ {
		p := packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
			ifs[0].HostAddr, ifs[1].HostAddr, uint16(2048+i), 99, make([]byte, 14))
		frames = append(frames, append([]byte(nil), p.Data()...))
		p.Kill()
	}
	src := tb.AddReplay(ifs[0].Device, frames, 50000, true)
	tb.Sim.RunUntil(10e6)
	if src.Emitted <= int64(len(frames)) {
		t.Fatalf("looping replay emitted only %d frames", src.Emitted)
	}
	if src.Done() {
		t.Error("looping replay reports Done")
	}
}
