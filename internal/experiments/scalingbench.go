package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
)

// The scaling experiment sweeps the parallel scheduler's worker count
// over the fully optimized IP router and reports throughput per point:
// the multi-core payoff of the lock-free dataplane (sharded rings,
// flow-affine placement, epoch scheduling). Like the parallel
// experiment it measures this implementation's own wall clock, not the
// simulated Pentium III — the cost model is single-threaded by design.

// ScalingWorkerCounts is the worker sweep the scaling experiment runs.
var ScalingWorkerCounts = []int{1, 2, 4, 8}

// ScalingPoint is one worker count's measurement.
type ScalingPoint struct {
	Workers     int     `json:"workers"`
	Burst       int     `json:"burst"`
	Packets     int64   `json:"packets"`
	NSPerPacket float64 `json:"ns_per_packet"`
	PPS         float64 `json:"pps"`
	Speedup     float64 `json:"speedup"` // vs the 1-worker point
	// ValidSpeedup marks whether the speedup ratio means anything: a
	// point run with more workers than the machine has cores measures
	// scheduling overhead, not parallel speedup, and must not be quoted
	// as a multicore result.
	ValidSpeedup bool `json:"valid_speedup"`
}

// ScalingResults is the document click-bench -json writes for the
// scaling experiment.
type ScalingResults struct {
	CPUs int `json:"cpus"` // cores on the measuring machine
	// SpeedupClaimsValid is true only when every swept worker count had
	// a core to run on; downstream tooling (and the committed-benchmark
	// honesty test) refuse speedup claims when it is false.
	SpeedupClaimsValid bool           `json:"speedup_claims_valid"`
	Points             []ScalingPoint `json:"points"`
}

// ScalingBench measures forwarding throughput at each worker count and
// prints (and optionally JSON-dumps) the sweep. Speedups are honest
// wall-clock ratios: on a machine with fewer cores than workers the
// curve flattens, the point is flagged invalid, and the report says how
// many cores it had rather than asserting a multicore win it never
// measured.
func ScalingBench(w io.Writer) error {
	const npkts = 40000
	const burst = 32
	results := ScalingResults{CPUs: runtime.NumCPU(), SpeedupClaimsValid: true}
	fmt.Fprintf(w, "Worker scaling, optimized IP router (wall clock, %d-core machine)\n", results.CPUs)
	fmt.Fprintf(w, "%-8s %10s %12s %12s %8s\n", "workers", "packets", "ns/packet", "pps", "speedup")
	var base float64
	for _, workers := range ScalingWorkerCounts {
		pt, _, err := runParallelPoint("scaling", workers, burst, npkts)
		if err != nil {
			return err
		}
		if workers == 1 {
			base = pt.PPS
		}
		sp := ScalingPoint{
			Workers:      workers,
			Burst:        burst,
			Packets:      pt.Packets,
			NSPerPacket:  pt.NSPerPacket,
			PPS:          pt.PPS,
			Speedup:      pt.PPS / base,
			ValidSpeedup: workers <= results.CPUs,
		}
		if !sp.ValidSpeedup {
			results.SpeedupClaimsValid = false
		}
		results.Points = append(results.Points, sp)
		note := ""
		if !sp.ValidSpeedup {
			note = "  (oversubscribed: not a speedup claim)"
		}
		fmt.Fprintf(w, "%-8d %10d %12.1f %12.0f %7.2fx%s\n",
			sp.Workers, sp.Packets, sp.NSPerPacket, sp.PPS, sp.Speedup, note)
	}
	if !results.SpeedupClaimsValid {
		fmt.Fprintf(w, "note: %d cores < %d workers at the widest point; the curve measures scheduler overhead, not multicore speedup\n",
			results.CPUs, ScalingWorkerCounts[len(ScalingWorkerCounts)-1])
	}
	if JSONPath != "" {
		blob, err := json.MarshalIndent(&results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", JSONPath)
	}
	return nil
}
