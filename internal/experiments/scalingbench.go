package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/elements"
	pktio "repro/internal/io"
	"repro/internal/packet"
)

// The scaling experiment sweeps the parallel scheduler's worker count
// over the fully optimized IP router and reports throughput per point:
// the multi-core payoff of the lock-free dataplane (sharded rings,
// flow-affine placement, epoch scheduling). Like the parallel
// experiment it measures this implementation's own wall clock, not the
// simulated Pentium III — the cost model is single-threaded by design.

// ScalingWorkerCounts is the worker sweep the scaling experiment runs.
var ScalingWorkerCounts = []int{1, 2, 4, 8}

// ScalingPoint is one worker count's measurement.
type ScalingPoint struct {
	Workers     int     `json:"workers"`
	Burst       int     `json:"burst"`
	Packets     int64   `json:"packets"`
	NSPerPacket float64 `json:"ns_per_packet"`
	PPS         float64 `json:"pps"`
	Speedup     float64 `json:"speedup"` // vs the 1-worker point
	// ValidSpeedup marks whether the speedup ratio means anything: a
	// point run with more workers than the machine has cores measures
	// scheduling overhead, not parallel speedup, and must not be quoted
	// as a multicore result.
	ValidSpeedup bool `json:"valid_speedup"`
}

// ScalingUDPPoint is one wall-clock forwarding measurement over real
// localhost sockets — the UDP backend pumping a live router, not the
// simulated cost model and not the in-memory parallel harness. It
// anchors the sweep to an end-to-end number a packet actually
// traversed the kernel for.
type ScalingUDPPoint struct {
	// Ran records whether the point was measured; a machine without a
	// usable loopback records why instead of fabricating a number.
	Ran   bool   `json:"ran"`
	Error string `json:"error,omitempty"`
	// Wallclock marks the measurement as real elapsed time over real
	// sockets, distinguishing it from model-cycle points.
	Wallclock  bool    `json:"wallclock"`
	Workers    int     `json:"workers"`
	Packets    int64   `json:"packets"`
	DurationNS int64   `json:"duration_ns"`
	PPS        float64 `json:"pps"`
}

// ScalingResults is the document click-bench -json writes for the
// scaling experiment.
type ScalingResults struct {
	CPUs int `json:"cpus"` // cores on the measuring machine
	// SpeedupClaimsValid is true only when every swept worker count had
	// a core to run on; downstream tooling (and the committed-benchmark
	// honesty test) refuse speedup claims when it is false.
	SpeedupClaimsValid bool            `json:"speedup_claims_valid"`
	Points             []ScalingPoint  `json:"points"`
	UDP                ScalingUDPPoint `json:"udp"`
}

// ScalingUDPDuration is the UDP point's measurement window; a variable
// so the smoke test can shrink it.
var ScalingUDPDuration = 500 * time.Millisecond

// scalingUDPConfig is the forwarding path the UDP point drives.
const scalingUDPConfig = `
pd :: PollDevice(eth0) -> cnt :: Counter -> q :: Queue(1024) -> td :: ToDevice(eth1);
`

// scalingUDPPoint forwards real frames injector → eth0 → router →
// eth1 → collector over localhost UDP sockets for the measurement
// window and reports delivered packets per wall-clock second. Failures
// to set up sockets are recorded, not fatal — the rest of the sweep
// stands on its own.
func scalingUDPPoint(duration time.Duration) ScalingUDPPoint {
	pt := ScalingUDPPoint{Wallclock: true, Workers: 1}
	fail := func(err error) ScalingUDPPoint {
		pt.Error = err.Error()
		return pt
	}
	rx, tx := pktio.NewUDP("127.0.0.1:0", ""), pktio.NewUDP("127.0.0.1:0", "")
	if err := rx.Open(); err != nil {
		return fail(err)
	}
	defer rx.Close()
	if err := tx.Open(); err != nil {
		return fail(err)
	}
	defer tx.Close()
	collector, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return fail(err)
	}
	defer collector.Close()
	if err := tx.SetPeer(collector.LocalAddr().String()); err != nil {
		return fail(err)
	}
	injector, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return fail(err)
	}
	defer injector.Close()

	env := map[string]interface{}{
		"device:eth0": pktio.NewDevice("eth0", rx),
		"device:eth1": pktio.NewDevice("eth1", tx),
	}
	rt, err := core.BuildFromText(scalingUDPConfig, "udp-scaling", elements.NewRegistry(),
		core.BuildOptions{Env: env, Burst: 32})
	if err != nil {
		return fail(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if !rt.RunTaskRound() {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	p := packet.BuildUDP4(
		packet.EtherAddr{0, 0, 0xc0, 0, 0, 2}, packet.EtherAddr{0, 0, 0xc0, 0, 0, 1},
		packet.MakeIP4(10, 0, 0, 2), packet.MakeIP4(10, 0, 1, 2), 1024, 1234, make([]byte, 14))
	frame := append([]byte(nil), p.Data()...)
	p.Kill()
	dst := rx.LocalAddr().(*net.UDPAddr)
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Modest pacing so the injector cannot starve the router
		// goroutine on a small machine; overload is not the question
		// here, end-to-end delivery rate is.
		for i := 0; !stop.Load(); i++ {
			injector.WriteToUDP(frame, dst)
			if i%64 == 63 {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	start := time.Now()
	deadline := start.Add(duration)
	rbuf := make([]byte, 65536)
	var got int64
	for time.Now().Before(deadline) {
		collector.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		if _, _, err := collector.ReadFromUDP(rbuf); err != nil {
			continue // poll timeout; keep waiting out the window
		}
		got++
	}
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()

	pt.Packets = got
	pt.DurationNS = elapsed.Nanoseconds()
	pt.PPS = float64(got) / elapsed.Seconds()
	if got == 0 {
		return fail(fmt.Errorf("no frames delivered end to end"))
	}
	pt.Ran = true
	return pt
}

// ScalingBench measures forwarding throughput at each worker count and
// prints (and optionally JSON-dumps) the sweep. Speedups are honest
// wall-clock ratios: on a machine with fewer cores than workers the
// curve flattens, the point is flagged invalid, and the report says how
// many cores it had rather than asserting a multicore win it never
// measured.
func ScalingBench(w io.Writer) error {
	const npkts = 40000
	const burst = 32
	results := ScalingResults{CPUs: runtime.NumCPU(), SpeedupClaimsValid: true}
	fmt.Fprintf(w, "Worker scaling, optimized IP router (wall clock, %d-core machine)\n", results.CPUs)
	fmt.Fprintf(w, "%-8s %10s %12s %12s %8s\n", "workers", "packets", "ns/packet", "pps", "speedup")
	var base float64
	for _, workers := range ScalingWorkerCounts {
		pt, _, err := runParallelPoint("scaling", workers, burst, npkts)
		if err != nil {
			return err
		}
		if workers == 1 {
			base = pt.PPS
		}
		sp := ScalingPoint{
			Workers:      workers,
			Burst:        burst,
			Packets:      pt.Packets,
			NSPerPacket:  pt.NSPerPacket,
			PPS:          pt.PPS,
			Speedup:      pt.PPS / base,
			ValidSpeedup: workers <= results.CPUs,
		}
		if !sp.ValidSpeedup {
			results.SpeedupClaimsValid = false
		}
		results.Points = append(results.Points, sp)
		note := ""
		if !sp.ValidSpeedup {
			note = "  (oversubscribed: not a speedup claim)"
		}
		fmt.Fprintf(w, "%-8d %10d %12.1f %12.0f %7.2fx%s\n",
			sp.Workers, sp.Packets, sp.NSPerPacket, sp.PPS, sp.Speedup, note)
	}
	if !results.SpeedupClaimsValid {
		fmt.Fprintf(w, "note: %d cores < %d workers at the widest point; the curve measures scheduler overhead, not multicore speedup\n",
			results.CPUs, ScalingWorkerCounts[len(ScalingWorkerCounts)-1])
	}
	results.UDP = scalingUDPPoint(ScalingUDPDuration)
	if results.UDP.Ran {
		fmt.Fprintf(w, "udp backend (real sockets): %d packets in %.1f ms wall clock, %.0f pps\n",
			results.UDP.Packets, float64(results.UDP.DurationNS)/1e6, results.UDP.PPS)
	} else {
		fmt.Fprintf(w, "udp backend point not measured: %s\n", results.UDP.Error)
	}
	if JSONPath != "" {
		blob, err := json.MarshalIndent(&results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", JSONPath)
	}
	return nil
}
