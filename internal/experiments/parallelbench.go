package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/opt"
	"repro/internal/packet"
)

// The parallel benchmark measures this implementation's own wall-clock
// forwarding speed (no simulated CPU — the cost model is a
// single-threaded Pentium III and cannot run under the parallel
// scheduler): the fully optimized IP router driven scalar, batched, and
// on 1/2/4 scheduler workers.

// JSONPath, when non-empty, is where ParallelBench also writes its
// results as JSON (set by cmd/click-bench -json).
var JSONPath string

// ParallelPoint is one measured operating mode.
type ParallelPoint struct {
	Mode        string  `json:"mode"`
	Workers     int     `json:"workers"`
	Burst       int     `json:"burst"`
	Packets     int64   `json:"packets"`
	NSPerPacket float64 `json:"ns_per_packet"`
	PPS         float64 `json:"pps"`
}

// memDevice is an in-memory elements.Device: a preloaded RX queue and a
// TX counter. It also implements elements.BatchDevice so the batched
// device paths are exercised.
type memDevice struct {
	name string
	rx   []*packet.Packet
	sent int64
}

func (d *memDevice) DeviceName() string { return d.name }

func (d *memDevice) RxDequeue() *packet.Packet {
	if len(d.rx) == 0 {
		return nil
	}
	p := d.rx[0]
	d.rx = d.rx[1:]
	return p
}

func (d *memDevice) RxDequeueBatch(buf []*packet.Packet) int {
	n := copy(buf, d.rx)
	d.rx = d.rx[n:]
	return n
}

func (d *memDevice) TxEnqueue(p *packet.Packet) bool {
	d.sent++
	p.Kill()
	return true
}

func (d *memDevice) TxEnqueueBatch(ps []*packet.Packet) int {
	d.sent += int64(len(ps))
	for _, p := range ps {
		p.Kill()
	}
	return len(ps)
}

func (d *memDevice) TxRoom() bool { return true }
func (d *memDevice) TxClean() int { return 0 }

// buildParallelRouter assembles the fully optimized (§8.2 "All") IP
// router for n interfaces on memDevices, with the given burst and no
// cost model.
func buildParallelRouter(n, burst int) (*core.Router, []*memDevice, []iprouter.Interface, error) {
	ifs := iprouter.Interfaces(n)
	g, err := lang.ParseRouter(iprouter.Config(ifs), "parallelbench")
	if err != nil {
		return nil, nil, nil, err
	}
	reg := elements.NewRegistry()
	pairs, err := opt.ParsePatterns(iprouter.ComboPatterns, "combopatterns")
	if err != nil {
		return nil, nil, nil, err
	}
	opt.Xform(g, pairs)
	if err := opt.FastClassifier(g, reg); err != nil {
		return nil, nil, nil, err
	}
	if err := opt.Devirtualize(g, reg, nil); err != nil {
		return nil, nil, nil, err
	}
	env := map[string]interface{}{}
	devs := make([]*memDevice, n)
	for i, itf := range ifs {
		devs[i] = &memDevice{name: itf.Device}
		env["device:"+itf.Device] = devs[i]
	}
	rt, err := core.Build(g, reg, core.BuildOptions{Env: env, Burst: burst})
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range rt.Elements() {
		if aq, ok := e.(*elements.ARPQuerier); ok {
			for _, itf := range ifs {
				aq.InsertEntry(itf.HostAddr, itf.HostEth)
			}
		}
	}
	return rt, devs, ifs, nil
}

// runParallelPoint forwards npkts packets through a fresh router and
// measures wall-clock time per packet, returning the measurement plus
// the router's final per-element telemetry snapshot.
func runParallelPoint(mode string, workers, burst, npkts int) (ParallelPoint, []core.ElementStatsReport, error) {
	rt, devs, ifs, err := buildParallelRouter(EvalInterfaces, burst)
	if err != nil {
		return ParallelPoint{}, nil, err
	}
	half := len(ifs) / 2
	per := npkts / half
	// Provision queues for the offered load: epoch-mode workers free-run
	// with no per-round barrier, so a producer can get arbitrarily far
	// ahead of its consumer and a line-rate-sized queue would tail-drop.
	// The benchmark measures forwarding speed, not drop policy, so every
	// queue gets room for a full device's worth of packets.
	for _, e := range rt.Elements() {
		if q, ok := e.(*elements.Queue); ok {
			if err := q.SetCapacity(per + 64); err != nil {
				return ParallelPoint{}, nil, err
			}
		}
	}
	for i := 0; i < half; i++ {
		tmpl := packet.BuildUDP4(ifs[i].HostEth, ifs[i].Ether,
			ifs[i].HostAddr, ifs[i+half].HostAddr, 1234, 5678, make([]byte, 14))
		for j := 0; j < per; j++ {
			devs[i].rx = append(devs[i].rx, tmpl.Clone())
		}
	}
	maxRounds := per + 1000
	start := time.Now()
	if workers <= 1 {
		rt.RunUntilIdle(maxRounds)
	} else {
		if _, err := rt.RunParallelUntilIdle(workers, maxRounds); err != nil {
			return ParallelPoint{}, nil, err
		}
	}
	elapsed := time.Since(start)
	var sent int64
	for _, d := range devs {
		sent += d.sent
	}
	want := int64(per * half)
	if sent != want {
		return ParallelPoint{}, nil, fmt.Errorf("parallel: %s workers=%d burst=%d forwarded %d of %d packets",
			mode, workers, burst, sent, want)
	}
	return ParallelPoint{
		Mode:        mode,
		Workers:     workers,
		Burst:       burst,
		Packets:     sent,
		NSPerPacket: float64(elapsed.Nanoseconds()) / float64(sent),
		PPS:         float64(sent) / elapsed.Seconds(),
	}, rt.StatsReport(), nil
}

// ParallelResults is the document click-bench -json writes for the
// parallel experiment: the measured operating points, the per-element
// telemetry snapshot from the last point's router, and the optimizer
// pass reports the benchmarked configuration carries.
type ParallelResults struct {
	Points      []ParallelPoint           `json:"points"`
	Elements    []core.ElementStatsReport `json:"elements,omitempty"`
	PassReports []*opt.PassReport         `json:"pass_reports,omitempty"`
}

// ParallelBench measures the scalar, batched, and parallel runtimes on
// the optimized IP router and prints (and optionally JSON-dumps) the
// comparison.
func ParallelBench(w io.Writer) error {
	const npkts = 40000
	modes := []struct {
		mode    string
		workers int
		burst   int
	}{
		{"scalar", 1, 1},
		{"batch", 1, 32},
		{"parallel", 1, 32},
		{"parallel", 2, 32},
		{"parallel", 4, 32},
	}
	fmt.Fprintf(w, "Parallel/batched forwarding, optimized IP router (wall clock, this machine)\n")
	fmt.Fprintf(w, "%-10s %8s %6s %10s %12s %12s\n", "mode", "workers", "burst", "packets", "ns/packet", "pps")
	var results ParallelResults
	for _, m := range modes {
		pt, elems, err := runParallelPoint(m.mode, m.workers, m.burst, npkts)
		if err != nil {
			return err
		}
		results.Points = append(results.Points, pt)
		results.Elements = elems
		fmt.Fprintf(w, "%-10s %8d %6d %10d %12.1f %12.0f\n",
			pt.Mode, pt.Workers, pt.Burst, pt.Packets, pt.NSPerPacket, pt.PPS)
	}
	if JSONPath != "" {
		// The optimizer chain attaches its diagnostics to the benchmarked
		// configuration; surface them next to the measurements.
		if rt, _, _, err := buildParallelRouter(EvalInterfaces, 1); err == nil {
			results.PassReports, _ = opt.Reports(rt.Graph)
			rt.Close()
		}
		blob, err := json.MarshalIndent(&results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", JSONPath)
	}
	return nil
}
