// Package experiments regenerates every table and figure in the paper's
// evaluation (§4, §8). Each driver prints the same rows or series the
// paper reports, alongside the paper's published values where they
// exist, so EXPERIMENTS.md can record paper-vs-measured directly.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/netsim"
	"repro/internal/opt"
	"repro/internal/packet"
	"repro/internal/simcpu"
)

// EvalInterfaces is the number of router interfaces in the §8.1 testbed.
const EvalInterfaces = 8

// Pro1000PIONS is the per-packet programmed-I/O CPU cost of the gigabit
// card used on P1-P3 (§8.5).
const Pro1000PIONS = 250

// stdOpts returns testbed options per platform: P0 drives the Tulip
// testbed, P1-P3 the two-interface gigabit testbed.
func stdOpts(plat *simcpu.Platform, ifs []iprouter.Interface) netsim.TestbedOptions {
	o := netsim.TestbedOptions{Platform: plat, Ifs: ifs, NIC: netsim.Tulip}
	if plat != simcpu.P0 {
		o.NIC = netsim.Pro1000
		o.PIOAccessNS = Pro1000PIONS
	}
	return o
}

// CostPoint measures one configuration's per-packet CPU cost breakdown
// at a comfortable (loss-free) load.
func CostPoint(v netsim.ConfigVariant, ifs []iprouter.Interface, plat *simcpu.Platform) (netsim.Result, error) {
	o := stdOpts(plat, ifs)
	o.Registry = v.Registry
	return netsim.RunPoint(v.Graph, o, 100000, 5e6, 20e6)
}

// Fig8 reproduces Figure 8: the CPU cost breakdown for the unoptimized
// IP router.
func Fig8(w io.Writer) error {
	variants, ifs, err := netsim.PrepareVariants(EvalInterfaces)
	if err != nil {
		return err
	}
	res, err := CostPoint(variants[0], ifs, simcpu.P0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 8: CPU cost breakdown, unoptimized IP router (P0)\n")
	fmt.Fprintf(w, "%-36s %12s %10s\n", "Task", "measured ns", "paper ns")
	fmt.Fprintf(w, "%-36s %12.0f %10d\n", "Receiving device interactions", res.RxDeviceNS, 701)
	fmt.Fprintf(w, "%-36s %12.0f %10d\n", "Click forwarding path", res.ForwardNS, 1657)
	fmt.Fprintf(w, "%-36s %12.0f %10d\n", "Transmitting device interactions", res.TxDeviceNS, 547)
	fmt.Fprintf(w, "%-36s %12.0f %10d\n", "Total", res.TotalCPUNS, 2905)
	return nil
}

// Fig9 reproduces Figure 9: the effect of each optimization on CPU
// time. Paper values (ns): Base 1657/2905, All 1101/2349, MR+All
// 1061/2309; FC cuts ~3%, XF is the strongest single pass.
func Fig9(w io.Writer) error {
	variants, ifs, err := netsim.PrepareVariants(EvalInterfaces)
	if err != nil {
		return err
	}
	paperPath := map[string]string{
		"Base": "1657", "FC": "~1607", "DV": "~1380", "XF": "~1350",
		"All": "1101", "MR+All": "1061", "Simple": "~400",
	}
	fmt.Fprintf(w, "Figure 9: effect of language optimizations on CPU time (P0)\n")
	fmt.Fprintf(w, "%-8s %16s %14s %12s\n", "Config", "fwd path ns", "total ns", "paper fwd")
	for _, v := range variants {
		res, err := CostPoint(v, ifs, simcpu.P0)
		if err != nil {
			return fmt.Errorf("%s: %v", v.Name, err)
		}
		fmt.Fprintf(w, "%-8s %16.0f %14.0f %12s\n", v.Name, res.ForwardNS, res.TotalCPUNS, paperPath[v.Name])
	}
	return nil
}

// Fig10 reproduces Figure 10: forwarding rate versus input rate for the
// variously optimized routers.
func Fig10(w io.Writer) error {
	variants, ifs, err := netsim.PrepareVariants(EvalInterfaces)
	if err != nil {
		return err
	}
	rates := []float64{50000, 100000, 150000, 200000, 250000, 300000,
		350000, 400000, 450000, 500000, 550000, 590000}
	fmt.Fprintf(w, "Figure 10: forwarding rate vs input rate, 64-byte packets (P0), kpps\n")
	fmt.Fprintf(w, "%-8s", "input")
	for _, v := range variants {
		fmt.Fprintf(w, " %8s", v.Name)
	}
	fmt.Fprintln(w)
	series := make(map[string][]float64)
	for _, v := range variants {
		o := stdOpts(simcpu.P0, ifs)
		o.Registry = v.Registry
		for _, rate := range rates {
			res, err := netsim.RunPoint(v.Graph, o, rate, 20e6, 50e6)
			if err != nil {
				return fmt.Errorf("%s @%.0f: %v", v.Name, rate, err)
			}
			series[v.Name] = append(series[v.Name], res.ForwardPPS)
		}
	}
	for ri, rate := range rates {
		fmt.Fprintf(w, "%-8.0f", rate/1000)
		for _, v := range variants {
			fmt.Fprintf(w, " %8.0f", series[v.Name][ri]/1000)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(paper MLFFRs: Base 357k, All 446k, MR+All 457k; past their peaks the paper's optimized curves dip ~10%% before FIFO overflows flatten them — this model plateaus at the peak)\n")
	return nil
}

// Fig11 reproduces Figure 11: cumulative packet-outcome rates as a
// function of input rate for Simple, Base, and MR+All.
func Fig11(w io.Writer) error {
	variants, ifs, err := netsim.PrepareVariants(EvalInterfaces)
	if err != nil {
		return err
	}
	byName := map[string]netsim.ConfigVariant{}
	for _, v := range variants {
		byName[v.Name] = v
	}
	rates := []float64{100000, 200000, 300000, 350000, 400000, 450000, 500000, 550000, 590000}
	for _, name := range []string{"Simple", "Base", "MR+All"} {
		v := byName[name]
		o := stdOpts(simcpu.P0, ifs)
		o.Registry = v.Registry
		fmt.Fprintf(w, "Figure 11 (%s): outcome rates (kpps)\n", name)
		fmt.Fprintf(w, "%-8s %8s %8s %8s %8s\n", "input", "sent", "queue", "missed", "fifo")
		for _, rate := range rates {
			res, err := netsim.RunPoint(v.Graph, o, rate, 20e6, 50e6)
			if err != nil {
				return fmt.Errorf("%s @%.0f: %v", name, rate, err)
			}
			k := func(n int64) float64 { return float64(n) / res.WindowNS * 1e9 / 1000 }
			fmt.Fprintf(w, "%-8.0f %8.0f %8.0f %8.0f %8.0f\n",
				rate/1000, res.ForwardPPS/1000,
				k(res.Outcomes.QueueDrops), k(res.Outcomes.MissedFrames), k(res.Outcomes.FIFOOverflows))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(paper: Base drops only missed frames; Simple drops only FIFO overflows and Queue drops)\n")
	return nil
}

// fig12Paper holds the published MLFFR table.
var fig12Paper = map[string][2]int{
	"P0": {446000, 357000},
	"P1": {430000, 350000},
	"P2": {450000, 330000},
	"P3": {740000, 640000},
}

// Fig12 reproduces Figure 12: the effect of "All" on MLFFR per
// platform.
func Fig12(w io.Writer) error {
	fmt.Fprintf(w, "Figure 12: MLFFR (packets/s) per platform\n")
	fmt.Fprintf(w, "%-8s %10s %10s %7s %18s\n", "Platform", "All", "Base", "Ratio", "paper All/Base")
	for _, plat := range simcpu.Platforms {
		nIfs := EvalInterfaces
		hi := 650000.0
		if plat != simcpu.P0 {
			nIfs = 2
			hi = 1300000
		}
		variants, ifs, err := netsim.PrepareVariants(nIfs)
		if err != nil {
			return err
		}
		byName := map[string]netsim.ConfigVariant{}
		for _, v := range variants {
			byName[v.Name] = v
		}
		vals := map[string]float64{}
		for _, name := range []string{"All", "Base"} {
			v := byName[name]
			o := stdOpts(plat, ifs)
			o.Registry = v.Registry
			rate, err := netsim.MLFFR(v.Graph, o, 100000, hi, 8000)
			if err != nil {
				return fmt.Errorf("%s/%s: %v", plat.Name, name, err)
			}
			vals[name] = rate
		}
		p := fig12Paper[plat.Name]
		fmt.Fprintf(w, "%-8s %10.0f %10.0f %7.2f %9d/%d=%.2f\n",
			plat.Name, vals["All"], vals["Base"], vals["All"]/vals["Base"],
			p[0], p[1], float64(p[0])/float64(p[1]))
	}
	return nil
}

// Fig13 reproduces Figure 13: forwarding rate curves on the hardware
// evolution platforms (two gigabit interfaces).
func Fig13(w io.Writer) error {
	variants, ifs, err := netsim.PrepareVariants(2)
	if err != nil {
		return err
	}
	byName := map[string]netsim.ConfigVariant{}
	for _, v := range variants {
		byName[v.Name] = v
	}
	rates := []float64{100000, 200000, 300000, 400000, 500000, 600000, 700000, 800000, 900000, 1000000}
	fmt.Fprintf(w, "Figure 13: forwarding rate vs input rate per platform (kpps)\n")
	fmt.Fprintf(w, "%-8s", "input")
	for _, plat := range []*simcpu.Platform{simcpu.P1, simcpu.P2, simcpu.P3} {
		for _, cfg := range []string{"Base", "All"} {
			fmt.Fprintf(w, " %10s", plat.Name+"/"+cfg)
		}
	}
	fmt.Fprintln(w)
	type key struct{ plat, cfg string }
	series := map[key][]float64{}
	for _, plat := range []*simcpu.Platform{simcpu.P1, simcpu.P2, simcpu.P3} {
		for _, cfg := range []string{"Base", "All"} {
			v := byName[cfg]
			o := stdOpts(plat, ifs)
			o.Registry = v.Registry
			for _, rate := range rates {
				res, err := netsim.RunPoint(v.Graph, o, rate, 20e6, 50e6)
				if err != nil {
					return err
				}
				series[key{plat.Name, cfg}] = append(series[key{plat.Name, cfg}], res.ForwardPPS)
			}
		}
	}
	for ri, rate := range rates {
		fmt.Fprintf(w, "%-8.0f", rate/1000)
		for _, plat := range []string{"P1", "P2", "P3"} {
			for _, cfg := range []string{"Base", "All"} {
				fmt.Fprintf(w, " %10.0f", series[key{plat, cfg}][ri]/1000)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// FastClassifierCost reproduces §4's measurement: the CPU cost of the
// 17-rule firewall IPFilter for a packet matching the next-to-last rule
// (DNS-5), interpreted versus compiled. Paper: 388 ns -> 188 ns on P0.
func FastClassifierCost(w io.Writer) error {
	interp, compiled, steps, err := MeasureFirewall()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Section 4: 17-rule firewall, DNS-5 packet (P0)\n")
	fmt.Fprintf(w, "%-28s %12s %10s\n", "Classifier", "measured ns", "paper ns")
	fmt.Fprintf(w, "%-28s %12.0f %10d\n", "IPFilter (interpreted)", interp, 388)
	fmt.Fprintf(w, "%-28s %12.0f %10d\n", "click-fastclassifier", compiled, 188)
	fmt.Fprintf(w, "decision-tree steps for DNS-5: %d\n", steps)
	return nil
}

// MeasureFirewall returns the §4 costs in model nanoseconds plus the
// tree-step count.
func MeasureFirewall() (interpNS, compiledNS float64, steps int, err error) {
	reg := elements.NewRegistry()
	rules := iprouter.FirewallConfigArg()
	cfg := fmt.Sprintf("i :: Idle -> f :: IPFilter(%s) -> d :: Discard;", rules)

	measure := func(config string, r *core.Registry) (float64, core.Element, error) {
		cpu := simcpu.New(simcpu.P0)
		rt, err := core.BuildFromText(config, "firewall", r, core.BuildOptions{CPU: cpu})
		if err != nil {
			return 0, nil, err
		}
		f := rt.Find("f")
		const rounds = 1000
		// Warm the predictor, then measure.
		f.Push(0, iprouter.DNS5Packet())
		cpu.Reset()
		for i := 0; i < rounds; i++ {
			f.Push(0, iprouter.DNS5Packet())
		}
		return cpu.TotalNS() / rounds, f, nil
	}

	interpNS, f, err := measure(cfg, reg)
	if err != nil {
		return 0, 0, 0, err
	}
	prog := f.(interface {
		Program() *classifier.Program
	}).Program()
	_, _, steps = prog.Match(iprouter.DNS5Packet().Data())

	// The fastclassified version.
	g, err := lang.ParseRouter(cfg, "firewall")
	if err != nil {
		return 0, 0, 0, err
	}
	fcReg := elements.NewRegistry()
	if err := opt.FastClassifier(g, fcReg); err != nil {
		return 0, 0, 0, err
	}
	fcfg := lang.Unparse(g)
	compiledNS, _, err = measure(fcfg, fcReg)
	if err != nil {
		return 0, 0, 0, err
	}
	return interpNS, compiledNS, steps, nil
}

// VCall demonstrates §3's virtual call analysis: correctly predicted
// indirect calls cost ~7 cycles; the Figure 2 configuration (same-class
// elements transferring to different classes through one shared call
// site) defeats the predictor; devirtualization removes the dispatch
// entirely.
func VCall(w io.Writer) error {
	stats, err := MeasureVCall()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Section 3: virtual function call cost on P0 (per packet transfer)\n")
	fmt.Fprintf(w, "%-44s %10s %12s\n", "Scenario", "cycles", "mispredicts")
	fmt.Fprintf(w, "%-44s %10.1f %12.2f\n", "predicted (same-class targets)", stats.PredictedCycles, stats.PredictedMispredict)
	fmt.Fprintf(w, "%-44s %10.1f %12.2f\n", "Figure 2 (alternating different targets)", stats.AlternatingCycles, stats.AlternatingMispredict)
	fmt.Fprintf(w, "%-44s %10.1f %12.2f\n", "per-element call sites (modeling ablation)", stats.PerElementCycles, stats.PerElementMispredict)
	fmt.Fprintf(w, "%-44s %10.1f %12.2f\n", "devirtualized (direct calls)", stats.DirectCycles, 0.0)
	fmt.Fprintf(w, "(paper: ~7 cycles predicted, dozens when mispredicted)\n")
	return nil
}

// VCallStats carries the E8 measurements (per-transfer averages).
type VCallStats struct {
	PredictedCycles       float64
	PredictedMispredict   float64
	AlternatingCycles     float64
	AlternatingMispredict float64
	PerElementCycles      float64
	PerElementMispredict  float64
	DirectCycles          float64
}

// MeasureVCall runs the E8 micro-benchmarks on the cost model.
func MeasureVCall() (VCallStats, error) {
	var out VCallStats
	// Two Paint elements pushing to different target classes (the
	// Figure 2 shape), versus both pushing to Counters.
	alternating := `
i0 :: Idle -> p1 :: Paint(1) -> c1 :: Counter -> d1 :: Discard;
i1 :: Idle -> p2 :: Paint(2) -> n2 :: Null -> d2 :: Discard;
`
	aligned := `
i0 :: Idle -> p1 :: Paint(1) -> c1 :: Counter -> d1 :: Discard;
i1 :: Idle -> p2 :: Paint(2) -> c2 :: Counter -> d2 :: Discard;
`
	run := func(cfg string, perElement bool, devirt bool) (cycles, mispredict float64, err error) {
		reg := elements.NewRegistry()
		g, err := lang.ParseRouter(cfg, "vcall")
		if err != nil {
			return 0, 0, err
		}
		if devirt {
			if err := opt.Devirtualize(g, reg, nil); err != nil {
				return 0, 0, err
			}
		}
		cpu := simcpu.New(simcpu.P0)
		rt, err := core.Build(g, reg, core.BuildOptions{CPU: cpu, PerElementSites: perElement})
		if err != nil {
			return 0, 0, err
		}
		var p1, p2 core.Element
		for _, e := range rt.Elements() {
			type namer interface{ Name() string }
			switch e.(namer).Name() {
			case "p1":
				p1 = e
			case "p2":
				p2 = e
			}
		}
		mk := func() *packet.Packet {
			return packet.BuildUDP4(packet.EtherAddr{}, packet.EtherAddr{},
				packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 1, 2, make([]byte, 14))
		}
		// Warm, then measure the alternating stream.
		p1.Push(0, mk())
		p2.Push(0, mk())
		cpu.Reset()
		const rounds = 2000
		for i := 0; i < rounds; i++ {
			p1.Push(0, mk())
			p2.Push(0, mk())
		}
		calls := cpu.Calls + cpu.Direct
		if calls == 0 {
			return 0, 0, fmt.Errorf("no transfers charged")
		}
		// Isolate transfer cost: subtract element work (constant per
		// round) by measuring call-cost directly from counters.
		transferCycles := float64(cpu.Mispred)*float64(simcpu.P0.MispredictPenalty) +
			float64(cpu.Calls)*float64(simcpu.P0.PredictedCall) +
			float64(cpu.Direct)*float64(simcpu.P0.DirectCall)
		return transferCycles / float64(calls), float64(cpu.Mispred) / float64(calls), nil
	}
	var err error
	if out.PredictedCycles, out.PredictedMispredict, err = run(aligned, false, false); err != nil {
		return out, err
	}
	if out.AlternatingCycles, out.AlternatingMispredict, err = run(alternating, false, false); err != nil {
		return out, err
	}
	if out.PerElementCycles, out.PerElementMispredict, err = run(alternating, true, false); err != nil {
		return out, err
	}
	if out.DirectCycles, _, err = run(alternating, false, true); err != nil {
		return out, err
	}
	return out, nil
}

// Ablation reports the §3/§6 design-choice ablations: forwarding-path
// element count vs cost, classifier tree optimization on/off, and
// devirtualization code-sharing vs one-class-per-element.
func Ablation(w io.Writer) error {
	fmt.Fprintf(w, "Ablation A: per-packet path cost vs element count (alternating Counter/Null chain, P0 model)\n")
	fmt.Fprintf(w, "%-10s %12s\n", "elements", "ns/packet")
	for _, k := range []int{1, 2, 4, 8, 16} {
		ns, err := chainCost(k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10d %12.0f\n", k, ns)
	}

	fmt.Fprintf(w, "\nAblation B: classifier decision-tree optimization (17-rule firewall)\n")
	raw, err := classifier.BuildIPFilterProgram(iprouter.FirewallRules())
	if err != nil {
		return err
	}
	rawNodes := len(raw.Exprs)
	_, _, rawSteps := raw.Match(iprouter.DNS5Packet().Data())
	optp, err := classifier.BuildIPFilterProgram(iprouter.FirewallRules())
	if err != nil {
		return err
	}
	optp.Optimize()
	_, _, optSteps := optp.Match(iprouter.DNS5Packet().Data())
	fmt.Fprintf(w, "%-14s %8s %14s\n", "tree", "nodes", "DNS-5 steps")
	fmt.Fprintf(w, "%-14s %8d %14d\n", "unoptimized", rawNodes, rawSteps)
	fmt.Fprintf(w, "%-14s %8d %14d\n", "optimized", len(optp.Exprs), optSteps)

	fmt.Fprintf(w, "\nAblation C: devirtualization code sharing (8-interface IP router)\n")
	shared, perElement, err := devirtClassCounts()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-36s %8d generated classes\n", "with the Section 6.1 sharing rules", shared)
	fmt.Fprintf(w, "%-36s %8d generated classes\n", "one class per element (no sharing)", perElement)
	return nil
}

// chainCost measures the model cost of pushing packets through k
// Counters.
func chainCost(k int) (float64, error) {
	cfg := "i :: Idle -> "
	for j := 0; j < k; j++ {
		// Alternate classes so the branch predictor stays warm and the
		// marginal cost isolates per-element work plus one predicted
		// transfer (a same-class chain would also demonstrate the
		// Figure 2 misprediction pathology — see VCall for that).
		class := "Counter"
		if j%2 == 1 {
			class = "Null"
		}
		cfg += fmt.Sprintf("c%d :: %s -> ", j, class)
	}
	cfg += "d :: Discard;"
	cpu := simcpu.New(simcpu.P0)
	rt, err := core.BuildFromText(cfg, "chain", elements.NewRegistry(), core.BuildOptions{CPU: cpu})
	if err != nil {
		return 0, err
	}
	head := rt.Find("c0")
	mk := func() *packet.Packet {
		return packet.BuildUDP4(packet.EtherAddr{}, packet.EtherAddr{},
			packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 1, 2, make([]byte, 14))
	}
	head.Push(0, mk())
	cpu.Reset()
	const rounds = 1000
	for i := 0; i < rounds; i++ {
		head.Push(0, mk())
	}
	return cpu.TotalNS() / rounds, nil
}

// devirtClassCounts compares generated class counts under the sharing
// rules versus per-element generation.
func devirtClassCounts() (shared, perElement int, err error) {
	ifs := iprouter.Interfaces(EvalInterfaces)
	g, err := lang.ParseRouter(iprouter.Config(ifs), "iprouter")
	if err != nil {
		return 0, 0, err
	}
	reg := elements.NewRegistry()
	if err := opt.Devirtualize(g, reg, nil); err != nil {
		return 0, 0, err
	}
	classes := map[string]bool{}
	for _, i := range g.LiveIndices() {
		classes[g.Element(i).Class] = true
	}
	shared = len(classes)
	perElement = g.NumElements()
	return shared, perElement, nil
}

// All runs every experiment in order.
func All(w io.Writer) error {
	steps := []struct {
		name string
		fn   func(io.Writer) error
	}{
		{"fastclassifier", FastClassifierCost},
		{"vcall", VCall},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"ablation", Ablation},
	}
	for _, s := range steps {
		if err := s.fn(w); err != nil {
			return fmt.Errorf("%s: %v", s.name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Experiments lists the available experiment names for cmd/click-bench.
var Experiments = map[string]func(io.Writer) error{
	"fastclassifier": FastClassifierCost,
	"vcall":          VCall,
	"fig8":           Fig8,
	"fig9":           Fig9,
	"fig10":          Fig10,
	"fig11":          Fig11,
	"fig12":          Fig12,
	"fig13":          Fig13,
	"ablation":       Ablation,
	"parallel":       ParallelBench,
	"scaling":        ScalingBench,
	"adaptive":       AdaptiveBench,
	"fusion":         FusionBench,
	"flowcache":      FlowCacheBench,
	"tenants":        TenantsBench,
	"mgmtscale":      MgmtScaleBench,
	"all":            All,
}
