package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/iprouter"
	"repro/internal/mgmt"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// The mgmtscale experiment measures the control plane's scaling claim:
// with incremental admission, a tenant create/swap/delete costs
// O(tenant) — parse (cached), build one subgraph, patch it into the
// running router at a quiescent point — instead of the O(fleet) full
// rebuild, so per-operation latency stays flat as the fleet grows. The
// population models a template fleet: tenants draw their classifier
// ruleset from a pool of distinct templates that grows much slower
// than the fleet (tenant i runs template i mod k), and the hot-swap
// phase rolls tenants onto another template already deployed in the
// fleet — the rollout/rollback case. Load is injected into every
// tenant's dataplane while the control operations run, and both modes
// of the same plane are measured in the same process: incremental (the
// default) versus FullRebuild (the baseline the speedup is claimed
// against).
//
// It also measures cross-tenant classifier sharing: with the hash-cons
// table, the identical cohort's fused decision diagrams collapse to
// one resident program no matter how many tenants run them, so
// resident diagram nodes grow with distinct rulesets, not tenant
// count. The committed artifact asserts both claims; benchaudit
// refuses a BENCH_mgmtscale.json whose flags say otherwise.

// Sweep parameters; variables so the smoke test can shrink them.
var (
	// MgmtScaleTenantCounts is the tenant-count sweep.
	MgmtScaleTenantCounts = []int{8, 16, 32, 64, 128, 256}
	// MgmtScaleSwapsPerPoint bounds the hot-swaps measured per point.
	MgmtScaleSwapsPerPoint = 16
	// MgmtScaleFramesPerTenant is the dataplane load injected per
	// tenant per phase.
	MgmtScaleFramesPerTenant = 4
	// MgmtScaleSpeedupThreshold is the asserted incremental-vs-rebuild
	// speedup floor.
	MgmtScaleSpeedupThreshold = 10.0
	// MgmtScaleSpeedupTenants is the fleet size from which the
	// threshold is asserted.
	MgmtScaleSpeedupTenants = 128
)

// mgmtScaleTemplates is the ruleset-template pool size for an n-tenant
// fleet: distinct configurations grow far slower than tenants, which
// is the population cross-tenant sharing is for.
func mgmtScaleTemplates(n int) int {
	k := n / 16
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	return k
}

// MgmtScalePoint is one tenant count's measurement. The *NS fields are
// average per-operation control latencies.
type MgmtScalePoint struct {
	Tenants          int `json:"tenants"`
	DistinctRulesets int `json:"distinct_rulesets"`

	IncCreateNS float64 `json:"inc_create_ns"`
	IncSwapNS   float64 `json:"inc_swap_ns"`
	IncDeleteNS float64 `json:"inc_delete_ns"`

	FullCreateNS float64 `json:"full_create_ns"`
	FullSwapNS   float64 `json:"full_swap_ns"`
	FullDeleteNS float64 `json:"full_delete_ns"`

	CreateSpeedup float64 `json:"create_speedup"`
	SwapSpeedup   float64 `json:"swap_speedup"`
	DeleteSpeedup float64 `json:"delete_speedup"`

	// CtrlOpsPerSec is the incremental plane's control throughput over
	// the point's create+swap+delete phases, dataplane under load.
	CtrlOpsPerSec float64 `json:"ctrl_ops_per_sec"`
	// Forwarded counts frames the incremental plane's dataplane
	// emitted while the control operations ran.
	Forwarded int64 `json:"forwarded"`

	// Sharing snapshot at full population (before swaps): resident is
	// what the hash-cons table holds, unshared is what per-tenant
	// private copies would hold.
	SharedPrograms int `json:"shared_programs"`
	ResidentNodes  int `json:"resident_nodes"`
	UnsharedNodes  int `json:"unshared_nodes"`

	ConfigCacheHits int64 `json:"config_cache_hits"`
}

// MgmtScaleResults is the document click-bench -json writes for the
// mgmtscale experiment.
type MgmtScaleResults struct {
	ThresholdSpeedup float64          `json:"threshold_speedup"`
	ThresholdTenants int              `json:"threshold_tenants"`
	Points           []MgmtScalePoint `json:"points"`
	// IncrementalSpeedup is the worst create/swap speedup over every
	// point at or past ThresholdTenants.
	IncrementalSpeedup   float64 `json:"incremental_speedup"`
	IncrementalSpeedupOK bool    `json:"incremental_speedup_ok"`
	// SharingSublinear asserts resident programs tracked the template
	// pool, not the fleet size, at every point.
	SharingSublinear bool `json:"sharing_sublinear"`
	// DataplaneLive asserts every injected frame was forwarded while
	// the control churn ran.
	DataplaneLive bool `json:"dataplane_live"`
}

// mgmtScaleRules returns the tenant ruleset for a variant: variant 0
// is the shared baseline (the §4 screened-host firewall), nonzero
// variants perturb one middle rule's port constant so the fused
// decision diagram differs while the measurement packet (UDP :53 to
// the bastion host, rule 16) still passes.
func mgmtScaleRules(variant int) []string {
	rules := append([]string(nil), iprouter.FirewallRules()...)
	if variant > 0 {
		rules[10] = fmt.Sprintf("deny udp && dst port %d", 2000+variant%60000)
	}
	return rules
}

// mgmtScaleConfig is one tenant's dataplane: poll, a fusable
// classifier chain (IPFilter -> IPClassifier), queue, transmit.
func mgmtScaleConfig(variant int) string {
	return fmt.Sprintf(`pd :: PollDevice(eth0) -> flt :: IPFilter(%s) -> fc :: IPClassifier(udp, tcp, -);
fc [0] -> q :: Queue(64) -> td :: ToDevice(eth1);
fc [1] -> q;
fc [2] -> ds :: Discard;
`, strings.Join(mgmtScaleRules(variant), ", "))
}

// mgmtScaleFrame is the rule-16 packet every ruleset admits.
func mgmtScaleFrame() []byte {
	return netsim.IPFrame(packet.MakeIP4(192, 0, 2, 7), packet.MakeIP4(10, 0, 0, 2), 3456, 53, 26)
}

func mgmtScaleTenantID(i int) string { return fmt.Sprintf("t%03d", i) }

// mgmtScaleRun drives one plane (incremental or full-rebuild) through
// the point's operation sequence under dataplane load and returns the
// plane's report plus the op-phase wall time, the sharing snapshot
// taken at full population, and the forwarded-frame count.
type mgmtScaleRunResult struct {
	createNS, swapNS, deleteNS float64
	opWall                     time.Duration
	ops                        int64
	forwarded                  int64
	sharedPrograms             int
	residentNodes              int
	unsharedNodes              int
	cacheHits                  int64
	distinct                   int
}

func mgmtScaleRun(n int, fullRebuild bool) (*mgmtScaleRunResult, error) {
	bed, err := netsim.NewPlaneBed(netsim.PlaneBedOptions{FullRebuild: fullRebuild})
	if err != nil {
		return nil, err
	}
	bed.Plane.Start()
	defer bed.Plane.Stop()

	frame := mgmtScaleFrame()
	inject := func(i int) {
		frames := make([][]byte, MgmtScaleFramesPerTenant)
		for k := range frames {
			frames[k] = frame
		}
		bed.Device(mgmtScaleTenantID(i), "eth0").Inject(frames...)
	}
	waitForwarded := func(want int64) error {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if bed.TotalTx() >= want {
				return nil
			}
			time.Sleep(time.Millisecond)
		}
		return fmt.Errorf("mgmtscale: dataplane stalled: forwarded %d of %d frames", bed.TotalTx(), want)
	}

	res := &mgmtScaleRunResult{}
	res.distinct = mgmtScaleTemplates(n)

	// Create phase: tenant i draws template i mod k from the pool, with
	// load injected as each tenant lands. Each template's first arrival
	// pays the parse+fuse cost; the rest of its cohort hits the config
	// cache and shares its fused diagram.
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := bed.Plane.Create(mgmtScaleTenantID(i), mgmtScaleConfig(i%res.distinct), mgmt.Limits{}); err != nil {
			return nil, err
		}
		inject(i)
	}
	res.opWall += time.Since(start)
	want := int64(n * MgmtScaleFramesPerTenant)
	if err := waitForwarded(want); err != nil {
		return nil, err
	}

	// Sharing snapshot at full population, before swaps muddy the
	// cohorts.
	rep := bed.Plane.Report()
	res.createNS = float64(rep.Create.TotalNS) / float64(rep.Create.Count)
	res.sharedPrograms = rep.Sharing.Programs
	res.residentNodes = rep.Sharing.ResidentNodes
	res.unsharedNodes = rep.Sharing.UnsharedNodes
	res.cacheHits = rep.ConfigCacheHits

	// Swap phase: roll a bounded slice of the fleet onto the next
	// template in the pool — a config rollout onto an
	// already-deployed version — each swap followed by more load (the
	// swap must keep forwarding).
	swaps := MgmtScaleSwapsPerPoint
	if swaps > n {
		swaps = n
	}
	start = time.Now()
	for j := 0; j < swaps; j++ {
		if err := bed.Plane.Swap(mgmtScaleTenantID(j), mgmtScaleConfig((j+1)%res.distinct)); err != nil {
			return nil, err
		}
		inject(j)
	}
	res.opWall += time.Since(start)
	want += int64(swaps * MgmtScaleFramesPerTenant)
	if err := waitForwarded(want); err != nil {
		return nil, err
	}

	// Delete phase: tear the whole fleet down.
	start = time.Now()
	for i := 0; i < n; i++ {
		if err := bed.Plane.Delete(mgmtScaleTenantID(i)); err != nil {
			return nil, err
		}
	}
	res.opWall += time.Since(start)

	rep = bed.Plane.Report()
	res.swapNS = float64(rep.Swap.TotalNS) / float64(rep.Swap.Count)
	res.deleteNS = float64(rep.Delete.TotalNS) / float64(rep.Delete.Count)
	res.ops = rep.Create.Count + rep.Swap.Count + rep.Delete.Count
	res.forwarded = bed.TotalTx()
	if res.forwarded != want {
		return nil, fmt.Errorf("mgmtscale: forwarded %d frames, want exactly %d", res.forwarded, want)
	}
	return res, nil
}

// MgmtScaleBench runs the sweep and prints (and optionally JSON-dumps)
// the results.
func MgmtScaleBench(w io.Writer) error {
	results := MgmtScaleResults{
		ThresholdSpeedup:   MgmtScaleSpeedupThreshold,
		ThresholdTenants:   MgmtScaleSpeedupTenants,
		SharingSublinear:   true,
		DataplaneLive:      true,
		IncrementalSpeedup: 0,
	}
	fmt.Fprintf(w, "Control-plane scaling: incremental admission vs full rebuild (wall clock)\n")
	fmt.Fprintf(w, "%-8s %12s %12s %12s %12s %9s %9s %10s %9s %9s\n",
		"tenants", "inc create", "inc swap", "full create", "full swap",
		"crt spd", "swp spd", "ops/sec", "programs", "nodes")
	thresholdSeen := false
	for _, n := range MgmtScaleTenantCounts {
		inc, err := mgmtScaleRun(n, false)
		if err != nil {
			return err
		}
		full, err := mgmtScaleRun(n, true)
		if err != nil {
			return err
		}
		pt := MgmtScalePoint{
			Tenants:          n,
			DistinctRulesets: inc.distinct,
			IncCreateNS:      inc.createNS,
			IncSwapNS:        inc.swapNS,
			IncDeleteNS:      inc.deleteNS,
			FullCreateNS:     full.createNS,
			FullSwapNS:       full.swapNS,
			FullDeleteNS:     full.deleteNS,
			CreateSpeedup:    full.createNS / inc.createNS,
			SwapSpeedup:      full.swapNS / inc.swapNS,
			DeleteSpeedup:    full.deleteNS / inc.deleteNS,
			CtrlOpsPerSec:    float64(inc.ops) / inc.opWall.Seconds(),
			Forwarded:        inc.forwarded,
			SharedPrograms:   inc.sharedPrograms,
			ResidentNodes:    inc.residentNodes,
			UnsharedNodes:    inc.unsharedNodes,
			ConfigCacheHits:  inc.cacheHits,
		}
		results.Points = append(results.Points, pt)

		// Resident programs must track the template pool, not the
		// fleet size — that is the sublinearity claim.
		if inc.sharedPrograms != pt.DistinctRulesets || inc.residentNodes >= inc.unsharedNodes {
			results.SharingSublinear = false
		}
		if inc.forwarded <= 0 || full.forwarded <= 0 {
			results.DataplaneLive = false
		}
		if n >= MgmtScaleSpeedupTenants {
			worst := pt.CreateSpeedup
			if pt.SwapSpeedup < worst {
				worst = pt.SwapSpeedup
			}
			if !thresholdSeen || worst < results.IncrementalSpeedup {
				results.IncrementalSpeedup = worst
			}
			thresholdSeen = true
		}
		fmt.Fprintf(w, "%-8d %12.0f %12.0f %12.0f %12.0f %8.1fx %8.1fx %10.0f %9d %9d\n",
			n, pt.IncCreateNS, pt.IncSwapNS, pt.FullCreateNS, pt.FullSwapNS,
			pt.CreateSpeedup, pt.SwapSpeedup, pt.CtrlOpsPerSec, pt.SharedPrograms, pt.ResidentNodes)
	}
	if !thresholdSeen {
		// A shrunk sweep (smoke test) never reaches the threshold
		// fleet size; use the largest point so the field is honest
		// about what was measured.
		last := results.Points[len(results.Points)-1]
		results.IncrementalSpeedup = last.CreateSpeedup
		if last.SwapSpeedup < results.IncrementalSpeedup {
			results.IncrementalSpeedup = last.SwapSpeedup
		}
		results.ThresholdTenants = last.Tenants
	}
	results.IncrementalSpeedupOK = results.IncrementalSpeedup >= results.ThresholdSpeedup
	fmt.Fprintf(w, "incremental speedup at >=%d tenants: %.1fx (threshold %.0fx, ok=%v); sharing sublinear=%v\n",
		results.ThresholdTenants, results.IncrementalSpeedup, results.ThresholdSpeedup,
		results.IncrementalSpeedupOK, results.SharingSublinear)
	if JSONPath != "" {
		blob, err := json.MarshalIndent(&results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", JSONPath)
	}
	return nil
}
