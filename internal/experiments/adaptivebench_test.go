package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestAdaptiveBenchImproves runs the full adapt-and-hotswap loop and
// checks the acceptance criterion: model cycles per packet on the heavy
// workload drop after the controller's mid-run re-optimization.
func TestAdaptiveBenchImproves(t *testing.T) {
	JSONPath = filepath.Join(t.TempDir(), "BENCH_adaptive.json")
	defer func() { JSONPath = "" }()
	var buf bytes.Buffer
	if err := AdaptiveBench(&buf); err != nil {
		t.Fatalf("AdaptiveBench: %v\n%s", err, buf.String())
	}
	blob, err := os.ReadFile(JSONPath)
	if err != nil {
		t.Fatal(err)
	}
	var res AdaptiveResults
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	byPhase := map[string]AdaptivePoint{}
	for _, p := range res.Points {
		byPhase[p.Phase] = p
	}
	before, ok1 := byPhase["heavy-before"]
	after, ok2 := byPhase["heavy-after"]
	if !ok1 || !ok2 {
		t.Fatalf("phases missing from results: %+v", res.Points)
	}
	if after.CyclesPerPacket >= before.CyclesPerPacket {
		t.Errorf("adaptation did not reduce cost: %.1f cycles/packet before, %.1f after",
			before.CyclesPerPacket, after.CyclesPerPacket)
	}
	if res.ImprovementPct <= 0 {
		t.Errorf("improvement = %.2f%%, want positive", res.ImprovementPct)
	}
	hasFC, hasDV := false, false
	for _, p := range res.PassesApplied {
		if p == "fastclassifier" {
			hasFC = true
		}
		if p == "devirtualize" {
			hasDV = true
		}
	}
	if !hasFC || !hasDV {
		t.Errorf("passes applied = %v, want fastclassifier and devirtualize", res.PassesApplied)
	}
	if len(res.Reasons) == 0 {
		t.Error("decision reasons missing from results")
	}
}
