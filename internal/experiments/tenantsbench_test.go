package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestTenantsBenchReport runs a shrunken tenants sweep; the bench's
// own internal assertions (hog overloaded, quiet tenants unmoved,
// aggregate scaling) are the real checks.
func TestTenantsBenchReport(t *testing.T) {
	oldWin, oldN := TenantsWindowNS, TenantsScalingN
	TenantsWindowNS, TenantsScalingN = 20e6, []int{1, 2}
	defer func() { TenantsWindowNS, TenantsScalingN = oldWin, oldN }()
	var buf bytes.Buffer
	if err := TenantsBench(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"overload", "hog", "isolation", "scaling"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
