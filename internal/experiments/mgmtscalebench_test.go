package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMgmtScaleBenchReport runs a shrunken mgmtscale sweep end to end:
// both plane modes (incremental and full-rebuild) must complete every
// create/swap/delete while forwarding every injected frame, the
// sharing snapshot must show the identical cohort collapsed to one
// program, and the JSON artifact must carry the asserted flags.
func TestMgmtScaleBenchReport(t *testing.T) {
	oldCounts, oldSwaps := MgmtScaleTenantCounts, MgmtScaleSwapsPerPoint
	MgmtScaleTenantCounts, MgmtScaleSwapsPerPoint = []int{4, 8}, 4
	defer func() { MgmtScaleTenantCounts, MgmtScaleSwapsPerPoint = oldCounts, oldSwaps }()
	JSONPath = filepath.Join(t.TempDir(), "BENCH_mgmtscale.json")
	defer func() { JSONPath = "" }()

	var buf bytes.Buffer
	if err := MgmtScaleBench(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"incremental speedup", "sharing sublinear"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	blob, err := os.ReadFile(JSONPath)
	if err != nil {
		t.Fatal(err)
	}
	var results MgmtScaleResults
	if err := json.Unmarshal(blob, &results); err != nil {
		t.Fatal(err)
	}
	if len(results.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(results.Points))
	}
	if !results.SharingSublinear {
		t.Error("sharing_sublinear = false: identical cohort did not share one program")
	}
	if !results.DataplaneLive {
		t.Error("dataplane_live = false")
	}
	for _, pt := range results.Points {
		if pt.Forwarded <= 0 {
			t.Errorf("%d tenants: forwarded %d frames", pt.Tenants, pt.Forwarded)
		}
		if pt.SharedPrograms != pt.DistinctRulesets {
			t.Errorf("%d tenants: %d shared programs, want %d (one per distinct ruleset)",
				pt.Tenants, pt.SharedPrograms, pt.DistinctRulesets)
		}
		if pt.ConfigCacheHits <= 0 {
			t.Errorf("%d tenants: no config-cache hits despite an identical cohort", pt.Tenants)
		}
	}
}
