package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/netsim"
	"repro/internal/simcpu"
)

// The tenants experiment measures the multi-tenant serving claim on
// the netsim testbed: many tenant routers combined into one process
// (zero combine links — exactly the management plane's namespacing)
// must be performance-isolated at the queue level. One tenant driven
// past its egress wire rate — two full 100 Mbit ingress wires
// converging on one egress — saturates only its own queue, and a quiet
// neighbor's p99 queue latency must not move relative to running
// alone. Aggregate forwarded pps must also scale with tenant count
// while the shared CPU has headroom.

// TenantsPoint is one tenant's measurement inside one scenario.
type TenantsPoint struct {
	Scenario     string  `json:"scenario"`
	Tenant       string  `json:"tenant"`
	OfferedPPS   float64 `json:"offered_pps"`
	ForwardPPS   float64 `json:"forward_pps"`
	QueueDrops   int64   `json:"queue_drops"`
	P99QueueLen  int     `json:"p99_queue_len"`
	P99LatencyNS float64 `json:"p99_latency_ns"`
}

// TenantsScalingPoint is one aggregate-throughput measurement.
type TenantsScalingPoint struct {
	Tenants      int     `json:"tenants"`
	AggregatePPS float64 `json:"aggregate_pps"`
	PerTenantPPS float64 `json:"per_tenant_pps"`
}

// TenantsResults is the document click-bench -json writes for the
// tenants experiment.
type TenantsResults struct {
	QuietPPS            float64               `json:"quiet_pps"`
	Points              []TenantsPoint        `json:"points"`
	Scaling             []TenantsScalingPoint `json:"scaling"`
	QuietP99SoloNS      float64               `json:"quiet_p99_solo_ns"`
	QuietP99BesideHogNS float64               `json:"quiet_p99_beside_hog_ns"`
	HogOfferedPPS       float64               `json:"hog_offered_pps"`
	HogForwardPPS       float64               `json:"hog_forward_pps"`
	IsolationOK         bool                  `json:"isolation_ok"`
}

// Sweep sizes; variables so the smoke test can shrink them.
var (
	TenantsQuietPPS = 20000.0
	TenantsWarmupNS = 5e6
	TenantsWindowNS = 50e6
	TenantsSampleNS = 0.5e6
	TenantsScalingN = []int{1, 2, 4, 8}
)

func tenantsScenario(w io.Writer, results *TenantsResults, scenario string,
	specs []netsim.TenantSpec) ([]netsim.TenantResult, error) {
	bed, err := netsim.NewTenantBed(specs, netsim.TestbedOptions{
		Platform: simcpu.P0, NIC: netsim.Tulip,
	})
	if err != nil {
		return nil, err
	}
	res := bed.MeasureTenants(TenantsWarmupNS, TenantsWindowNS, TenantsSampleNS)
	for _, r := range res {
		results.Points = append(results.Points, TenantsPoint{
			Scenario:     scenario,
			Tenant:       r.Name,
			OfferedPPS:   r.OfferedPPS,
			ForwardPPS:   r.ForwardPPS,
			QueueDrops:   r.QueueDrops,
			P99QueueLen:  r.P99QueueLen,
			P99LatencyNS: r.P99LatencyNS,
		})
		fmt.Fprintf(w, "%-10s %-6s %10.0f %10.0f %8d %6d %12.0f\n",
			scenario, r.Name, r.OfferedPPS, r.ForwardPPS, r.QueueDrops,
			r.P99QueueLen, r.P99LatencyNS)
	}
	return res, nil
}

// TenantsBench runs the isolation and scaling scenarios and checks the
// claims the experiment exists to prove: an overloaded tenant keeps
// its overload to itself, and aggregate throughput scales with tenant
// count.
func TenantsBench(w io.Writer) error {
	results := TenantsResults{QuietPPS: TenantsQuietPPS}
	fmt.Fprintf(w, "Multi-tenant isolation on the netsim testbed (quiet tenants at %.0f pps, P0, Tulip)\n",
		TenantsQuietPPS)
	fmt.Fprintf(w, "%-10s %-6s %10s %10s %8s %6s %12s\n",
		"scenario", "tenant", "offered", "forward", "drops", "p99len", "p99lat(ns)")

	quiet := func(name string) netsim.TenantSpec {
		return netsim.TenantSpec{Name: name, PPS: TenantsQuietPPS, QueueCap: 128}
	}

	// Baseline: the quiet tenants alone.
	solo, err := tenantsScenario(w, &results, "solo",
		[]netsim.TenantSpec{quiet("q1"), quiet("q2")})
	if err != nil {
		return err
	}
	// The same quiet tenants beside an overloaded neighbor: two full
	// ingress wires into one egress wire, offered load capped only by
	// the links themselves.
	mixed, err := tenantsScenario(w, &results, "overload",
		[]netsim.TenantSpec{quiet("q1"), quiet("q2"),
			{Name: "hog", PPS: 1e9, QueueCap: 128, Ingress: 2}})
	if err != nil {
		return err
	}

	hog := mixed[2]
	results.HogOfferedPPS = hog.OfferedPPS
	results.HogForwardPPS = hog.ForwardPPS
	if hog.OfferedPPS < 1.5*hog.ForwardPPS {
		return fmt.Errorf("tenants: hog not overloaded (offered %.0f pps, forwarded %.0f pps)",
			hog.OfferedPPS, hog.ForwardPPS)
	}
	if hog.QueueDrops == 0 {
		return fmt.Errorf("tenants: hog never tail-dropped under 2x egress overload")
	}

	// The isolation criterion: beside the hog, each quiet tenant keeps
	// its forwarding rate, drops nothing, and its p99 queue occupancy
	// moves by at most two packets from its solo baseline.
	results.IsolationOK = true
	for i := 0; i < 2; i++ {
		sr, mr := solo[i], mixed[i]
		if sr.P99LatencyNS > results.QuietP99SoloNS {
			results.QuietP99SoloNS = sr.P99LatencyNS
		}
		if mr.P99LatencyNS > results.QuietP99BesideHogNS {
			results.QuietP99BesideHogNS = mr.P99LatencyNS
		}
		if mr.QueueDrops != 0 {
			results.IsolationOK = false
			return fmt.Errorf("tenants: quiet %s dropped %d packets beside the hog",
				mr.Name, mr.QueueDrops)
		}
		if mr.ForwardPPS < 0.99*sr.ForwardPPS {
			results.IsolationOK = false
			return fmt.Errorf("tenants: quiet %s forwards %.0f pps beside the hog vs %.0f solo",
				mr.Name, mr.ForwardPPS, sr.ForwardPPS)
		}
		if mr.P99QueueLen > sr.P99QueueLen+2 {
			results.IsolationOK = false
			return fmt.Errorf("tenants: quiet %s p99 queue length %d beside the hog vs %d solo",
				mr.Name, mr.P99QueueLen, sr.P99QueueLen)
		}
	}
	fmt.Fprintf(w, "isolation: quiet p99 latency %.0f ns solo, %.0f ns beside hog (hog offered %.0f pps, forwarded %.0f)\n",
		results.QuietP99SoloNS, results.QuietP99BesideHogNS,
		results.HogOfferedPPS, results.HogForwardPPS)

	// Aggregate scaling: N quiet tenants; total forwarded pps must
	// grow with N while the CPU has headroom.
	var perTenant float64
	for _, n := range TenantsScalingN {
		specs := make([]netsim.TenantSpec, n)
		for i := range specs {
			specs[i] = quiet(fmt.Sprintf("s%d", i))
		}
		res, err := tenantsScenario(w, &results, fmt.Sprintf("scale%d", n), specs)
		if err != nil {
			return err
		}
		var agg float64
		for _, r := range res {
			agg += r.ForwardPPS
		}
		sp := TenantsScalingPoint{Tenants: n, AggregatePPS: agg, PerTenantPPS: agg / float64(n)}
		results.Scaling = append(results.Scaling, sp)
		if n == 1 {
			perTenant = agg
		} else if agg < 0.95*float64(n)*perTenant {
			return fmt.Errorf("tenants: aggregate %.0f pps at %d tenants, want >= %.0f (0.95 x %d x %.0f)",
				agg, n, 0.95*float64(n)*perTenant, n, perTenant)
		}
	}
	last := results.Scaling[len(results.Scaling)-1]
	fmt.Fprintf(w, "scaling: %.0f pps aggregate at %d tenants (%.0f per tenant)\n",
		last.AggregatePPS, last.Tenants, last.PerTenantPPS)

	if JSONPath != "" {
		blob, err := json.MarshalIndent(&results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", JSONPath)
	}
	return nil
}
