package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestFusionBenchSmoke runs a shrunk ruleset sweep end to end — small
// enough for CI, large enough that every variant builds, forwards, and
// reports — and checks the JSON document parses and carries the fused
// diagram statistics.
func TestFusionBenchSmoke(t *testing.T) {
	JSONPath = filepath.Join(t.TempDir(), "BENCH_fusion.json")
	defer func() { JSONPath = "" }()
	oldSizes, oldPackets := FusionSizes, FusionPackets
	FusionSizes, FusionPackets = []int{10, 60}, 300
	defer func() { FusionSizes, FusionPackets = oldSizes, oldPackets }()

	var buf bytes.Buffer
	if err := FusionBench(&buf); err != nil {
		t.Fatalf("FusionBench: %v\n%s", err, buf.String())
	}
	blob, err := os.ReadFile(JSONPath)
	if err != nil {
		t.Fatal(err)
	}
	var res FusionResults
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if want := len(FusionSizes) * len(fusionVariants); len(res.Points) != want {
		t.Fatalf("got %d points, want %d", len(res.Points), want)
	}
	for _, p := range res.Points {
		if p.Packets <= 0 || p.CyclesPerPacket <= 0 {
			t.Errorf("%d rules %s: empty measurement: %+v", p.Rules, p.Variant, p)
		}
		if p.Variant == "fuse" && (p.RunsFused < 1 || p.DiagramNodes < 1) {
			t.Errorf("%d rules: fuse point missing diagram stats: %+v", p.Rules, p)
		}
	}
}
