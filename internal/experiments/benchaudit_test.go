package experiments

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestCommittedBenchArtifacts audits every benchmark JSON committed at
// the repository root, not just the scaling file: each artifact must
// parse (JSON has no NaN/Inf, so a corrupted run cannot hide one), must
// carry its required top-level keys, and must hold a non-empty points
// list in which every per-packet cost measurement is a positive finite
// number. A benchmark that measured zero cycles per packet did not
// measure anything.
func TestCommittedBenchArtifacts(t *testing.T) {
	files, err := filepath.Glob("../../BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no committed benchmark artifacts")
	}
	required := map[string][]string{
		"BENCH_adaptive.json":  {"points", "passes_applied", "improvement_pct"},
		"BENCH_flowcache.json": {"points", "improvement", "flows", "trace_packets"},
		"BENCH_fusion.json":    {"points"},
		"BENCH_parallel.json":  {"points", "elements"},
		"BENCH_scaling.json":   {"points", "cpus", "speedup_claims_valid", "udp"},
		"BENCH_tenants.json": {"points", "scaling", "isolation_ok",
			"quiet_p99_solo_ns", "quiet_p99_beside_hog_ns"},
		"BENCH_mgmtscale.json": {"points", "threshold_speedup", "threshold_tenants",
			"incremental_speedup", "incremental_speedup_ok", "sharing_sublinear",
			"dataplane_live"},
	}
	// Keys that are asserted claims, not measurements: the committed
	// artifact must say the claim held. (BENCH_scaling.json's
	// speedup_claims_valid is deliberately not here — it records an
	// honest negative result.)
	mustBeTrue := map[string][]string{
		"BENCH_tenants.json": {"isolation_ok"},
		"BENCH_mgmtscale.json": {"incremental_speedup_ok", "sharing_sublinear",
			"dataplane_live"},
	}
	// Point fields that are per-run or per-packet measurements: zero or
	// negative means the benchmark recorded nothing.
	positive := map[string]bool{
		"packets":           true,
		"cycles":            true,
		"cycles_per_packet": true,
		"ns_per_packet":     true,
		"pps":               true,
		"offered_pps":       true,
		"forward_pps":       true,
		"inc_create_ns":     true,
		"inc_swap_ns":       true,
		"inc_delete_ns":     true,
		"full_create_ns":    true,
		"full_swap_ns":      true,
		"full_delete_ns":    true,
		"create_speedup":    true,
		"swap_speedup":      true,
		"delete_speedup":    true,
		"ctrl_ops_per_sec":  true,
		"forwarded":         true,
		"shared_programs":   true,
		"resident_nodes":    true,
		"unshared_nodes":    true,
	}
	for _, path := range files {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var doc map[string]interface{}
			if err := json.Unmarshal(blob, &doc); err != nil {
				t.Fatalf("%s does not parse: %v", name, err)
			}
			keys, known := required[name]
			if !known {
				// New artifacts must at minimum carry measurement points.
				keys = []string{"points"}
			}
			for _, k := range keys {
				if _, ok := doc[k]; !ok {
					t.Errorf("%s is missing required key %q", name, k)
				}
			}
			for _, k := range mustBeTrue[name] {
				if v, ok := doc[k].(bool); !ok || !v {
					t.Errorf("%s: asserted claim %q = %v, want true", name, k, doc[k])
				}
			}
			switch name {
			case "BENCH_mgmtscale.json":
				// The headline claim is a ratio against a threshold both
				// recorded in the same file; the committed artifact must
				// actually clear it, not just assert the boolean.
				sp, _ := doc["incremental_speedup"].(float64)
				th, _ := doc["threshold_speedup"].(float64)
				if th <= 1 {
					t.Errorf("%s: threshold_speedup = %v, want a real bar", name, th)
				}
				if sp < th {
					t.Errorf("%s: incremental_speedup %.2f below threshold %.2f", name, sp, th)
				}
			case "BENCH_scaling.json":
				// The real-socket point must either be a credible
				// measurement or say why it is absent.
				udp, _ := doc["udp"].(map[string]interface{})
				if udp == nil {
					t.Errorf("%s: udp point is not an object", name)
				} else if ran, _ := udp["ran"].(bool); ran {
					if pps, _ := udp["pps"].(float64); pps <= 0 {
						t.Errorf("%s: udp point ran with pps %v", name, udp["pps"])
					}
					if wc, _ := udp["wallclock"].(bool); !wc {
						t.Errorf("%s: udp point not flagged wallclock", name)
					}
				} else if s, _ := udp["error"].(string); s == "" {
					t.Errorf("%s: udp point neither ran nor explains why", name)
				}
			}
			pts, _ := doc["points"].([]interface{})
			if len(pts) == 0 {
				t.Fatalf("%s has no measurement points", name)
			}
			for i, raw := range pts {
				pt, ok := raw.(map[string]interface{})
				if !ok {
					t.Errorf("%s point %d is not an object", name, i)
					continue
				}
				for key, v := range pt {
					f, isNum := v.(float64)
					if !isNum {
						continue
					}
					if math.IsNaN(f) || math.IsInf(f, 0) {
						t.Errorf("%s point %d: %s is not finite", name, i, key)
					}
					if positive[key] && f <= 0 {
						t.Errorf("%s point %d: %s = %v, want > 0", name, i, key, f)
					}
				}
			}
		})
	}
}
