package experiments

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestCommittedBenchArtifacts audits every benchmark JSON committed at
// the repository root, not just the scaling file: each artifact must
// parse (JSON has no NaN/Inf, so a corrupted run cannot hide one), must
// carry its required top-level keys, and must hold a non-empty points
// list in which every per-packet cost measurement is a positive finite
// number. A benchmark that measured zero cycles per packet did not
// measure anything.
func TestCommittedBenchArtifacts(t *testing.T) {
	files, err := filepath.Glob("../../BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no committed benchmark artifacts")
	}
	required := map[string][]string{
		"BENCH_adaptive.json":  {"points", "passes_applied", "improvement_pct"},
		"BENCH_flowcache.json": {"points", "improvement", "flows", "trace_packets"},
		"BENCH_fusion.json":    {"points"},
		"BENCH_parallel.json":  {"points", "elements"},
		"BENCH_scaling.json":   {"points", "cpus", "speedup_claims_valid"},
		"BENCH_tenants.json": {"points", "scaling", "isolation_ok",
			"quiet_p99_solo_ns", "quiet_p99_beside_hog_ns"},
	}
	// Keys that are asserted claims, not measurements: the committed
	// artifact must say the claim held. (BENCH_scaling.json's
	// speedup_claims_valid is deliberately not here — it records an
	// honest negative result.)
	mustBeTrue := map[string][]string{
		"BENCH_tenants.json": {"isolation_ok"},
	}
	// Point fields that are per-run or per-packet measurements: zero or
	// negative means the benchmark recorded nothing.
	positive := map[string]bool{
		"packets":           true,
		"cycles":            true,
		"cycles_per_packet": true,
		"ns_per_packet":     true,
		"pps":               true,
		"offered_pps":       true,
		"forward_pps":       true,
	}
	for _, path := range files {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var doc map[string]interface{}
			if err := json.Unmarshal(blob, &doc); err != nil {
				t.Fatalf("%s does not parse: %v", name, err)
			}
			keys, known := required[name]
			if !known {
				// New artifacts must at minimum carry measurement points.
				keys = []string{"points"}
			}
			for _, k := range keys {
				if _, ok := doc[k]; !ok {
					t.Errorf("%s is missing required key %q", name, k)
				}
			}
			for _, k := range mustBeTrue[name] {
				if v, ok := doc[k].(bool); !ok || !v {
					t.Errorf("%s: asserted claim %q = %v, want true", name, k, doc[k])
				}
			}
			pts, _ := doc["points"].([]interface{})
			if len(pts) == 0 {
				t.Fatalf("%s has no measurement points", name)
			}
			for i, raw := range pts {
				pt, ok := raw.(map[string]interface{})
				if !ok {
					t.Errorf("%s point %d is not an object", name, i)
					continue
				}
				for key, v := range pt {
					f, isNum := v.(float64)
					if !isNum {
						continue
					}
					if math.IsNaN(f) || math.IsInf(f, 0) {
						t.Errorf("%s point %d: %s is not finite", name, i, key)
					}
					if positive[key] && f <= 0 {
						t.Errorf("%s point %d: %s = %v, want > 0", name, i, key, f)
					}
				}
			}
		})
	}
}
