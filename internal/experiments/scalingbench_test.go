package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestCommittedScalingHonesty audits the benchmark JSON committed at
// the repository root: a point measured with more workers than the
// machine had cores must not be flagged as a valid speedup, and a file
// whose widest point was oversubscribed must not claim its speedups are
// valid overall. This is the CI gate that keeps a 1-core container from
// committing "multicore wins" that were never measured.
func TestCommittedScalingHonesty(t *testing.T) {
	blob, err := os.ReadFile("../../BENCH_scaling.json")
	if err != nil {
		t.Skipf("no committed scaling benchmark: %v", err)
	}
	var res ScalingResults
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("BENCH_scaling.json does not parse: %v", err)
	}
	if res.CPUs < 1 {
		t.Fatalf("BENCH_scaling.json records %d cpus", res.CPUs)
	}
	for _, p := range res.Points {
		if p.Workers > res.CPUs && p.ValidSpeedup {
			t.Errorf("point with %d workers on %d cpus is flagged valid_speedup", p.Workers, res.CPUs)
		}
		if p.Workers <= res.CPUs && !p.ValidSpeedup {
			t.Errorf("point with %d workers on %d cpus is flagged invalid", p.Workers, res.CPUs)
		}
		if !p.ValidSpeedup && p.Speedup > 1.05 && res.SpeedupClaimsValid {
			t.Errorf("oversubscribed point (%d workers) shows %.2fx under a valid-claims flag", p.Workers, p.Speedup)
		}
	}
	anyInvalid := false
	for _, p := range res.Points {
		if !p.ValidSpeedup {
			anyInvalid = true
		}
	}
	if anyInvalid && res.SpeedupClaimsValid {
		t.Error("speedup_claims_valid is true despite oversubscribed points")
	}
	// The committed file must carry the real-socket wall-clock point:
	// either a measurement (positive pps, flagged wallclock) or an
	// explicit record of why it could not run — never a silent zero.
	if res.UDP.Ran {
		if !res.UDP.Wallclock || res.UDP.Packets <= 0 || res.UDP.PPS <= 0 || res.UDP.DurationNS <= 0 {
			t.Errorf("udp point ran but is not a credible wall-clock measurement: %+v", res.UDP)
		}
	} else if res.UDP.Error == "" {
		t.Error("udp point neither ran nor explains why")
	}
}

// TestScalingUDPPoint drives the real-socket wall-clock point on a
// short window: frames must traverse injector → UDP backend → router →
// UDP backend → collector, and the reported pps must be wall-clock
// arithmetic over what was actually delivered.
func TestScalingUDPPoint(t *testing.T) {
	pt := scalingUDPPoint(150 * time.Millisecond)
	if !pt.Ran {
		t.Fatalf("udp point did not run: %s", pt.Error)
	}
	if !pt.Wallclock {
		t.Error("udp point not flagged wallclock")
	}
	if pt.Packets <= 0 || pt.DurationNS <= 0 {
		t.Fatalf("udp point has no delivery evidence: %+v", pt)
	}
	want := float64(pt.Packets) / (float64(pt.DurationNS) / 1e9)
	if diff := pt.PPS - want; diff > 1 || diff < -1 {
		t.Errorf("pps %.2f inconsistent with packets/duration %.2f", pt.PPS, want)
	}
}

func TestScalingBenchReport(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	var buf bytes.Buffer
	if err := ScalingBench(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"workers", "speedup", "Worker scaling", "udp backend"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestScalingSpeedupAtFourWorkers(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("speedup assertion needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	const npkts = 40000
	p1, _, err := runParallelPoint("scaling", 1, 32, npkts)
	if err != nil {
		t.Fatal(err)
	}
	p4, _, err := runParallelPoint("scaling", 4, 32, npkts)
	if err != nil {
		t.Fatal(err)
	}
	if p4.PPS < 2*p1.PPS {
		t.Errorf("4 workers: %.0f pps vs 1 worker %.0f pps — speedup %.2fx, want >= 2x",
			p4.PPS, p1.PPS, p4.PPS/p1.PPS)
	}
}

// BenchmarkScaling is the CI smoke benchmark: one small parallel point
// per iteration, proving the epoch scheduler and lock-free rings
// forward every packet under the bench harness.
func BenchmarkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pt, _, err := runParallelPoint("scaling", 2, 32, 4000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pt.NSPerPacket, "ns/pkt")
	}
}
