package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

func TestScalingBenchReport(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	var buf bytes.Buffer
	if err := ScalingBench(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"workers", "speedup", "Worker scaling"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestScalingSpeedupAtFourWorkers(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("speedup assertion needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	const npkts = 40000
	p1, _, err := runParallelPoint("scaling", 1, 32, npkts)
	if err != nil {
		t.Fatal(err)
	}
	p4, _, err := runParallelPoint("scaling", 4, 32, npkts)
	if err != nil {
		t.Fatal(err)
	}
	if p4.PPS < 2*p1.PPS {
		t.Errorf("4 workers: %.0f pps vs 1 worker %.0f pps — speedup %.2fx, want >= 2x",
			p4.PPS, p1.PPS, p4.PPS/p1.PPS)
	}
}

// BenchmarkScaling is the CI smoke benchmark: one small parallel point
// per iteration, proving the epoch scheduler and lock-free rings
// forward every packet under the bench harness.
func BenchmarkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pt, _, err := runParallelPoint("scaling", 2, 32, 4000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pt.NSPerPacket, "ns/pkt")
	}
}
