package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestFlowCacheBenchReport runs a shrunken Zipf sweep; the bench's own
// internal assertions (forwarding equality, hit rate, improvement
// floor) are the real checks.
func TestFlowCacheBenchReport(t *testing.T) {
	oldFlows, oldPkts := FlowCacheFlows, FlowCachePackets
	FlowCacheFlows, FlowCachePackets = 64, 4000
	defer func() { FlowCacheFlows, FlowCachePackets = oldFlows, oldPkts }()
	var buf bytes.Buffer
	if err := FlowCacheBench(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"flowcache", "hit rate", "improvement"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
