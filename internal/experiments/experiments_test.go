package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/simcpu"
)

// These tests pin the reproduction to the paper's published results:
// each asserts the measured value lands within a band around the
// paper's number, so a regression in any optimizer or in the cost model
// shows up as a failed experiment rather than a silently drifted one.

func TestSection4FirewallCost(t *testing.T) {
	interp, compiled, steps, err := MeasureFirewall()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("firewall DNS-5: interpreted %.0f ns, compiled %.0f ns, %d steps", interp, compiled, steps)
	// Paper: 388 ns -> 188 ns. Accept ±20%.
	if interp < 310 || interp > 466 {
		t.Errorf("interpreted cost %.0f ns outside 388±20%%", interp)
	}
	if compiled < 150 || compiled > 226 {
		t.Errorf("compiled cost %.0f ns outside 188±20%%", compiled)
	}
	// The compiled classifier must cut the cost dramatically ("dropped
	// by more than half" — we accept >= 40%).
	if compiled > interp*0.6 {
		t.Errorf("fastclassifier saved only %.0f%%", (1-compiled/interp)*100)
	}
	// DNS-5 matches the next-to-last rule: it must traverse a large
	// fraction of the tree.
	if steps < 10 {
		t.Errorf("DNS-5 visited only %d nodes; rule ordering broken?", steps)
	}
}

func TestSection3VCallCosts(t *testing.T) {
	stats, err := MeasureVCall()
	if err != nil {
		t.Fatal(err)
	}
	if stats.PredictedCycles != 7 || stats.PredictedMispredict != 0 {
		t.Errorf("predicted calls: %.1f cycles, %.2f mispredicts (want 7, 0)",
			stats.PredictedCycles, stats.PredictedMispredict)
	}
	// The Figure 2 shape alternates targets at one shared call site:
	// half the path's transfers mispredict, so the average transfer
	// costs dozens of cycles on the mispredicting site.
	if stats.AlternatingMispredict < 0.4 {
		t.Errorf("alternating mispredict rate %.2f; Figure 2 pathology missing", stats.AlternatingMispredict)
	}
	if stats.AlternatingCycles <= 2*stats.PredictedCycles {
		t.Errorf("alternating calls (%.1f cycles) not appreciably worse than predicted (%.1f)",
			stats.AlternatingCycles, stats.PredictedCycles)
	}
	// Ablation: with per-element call sites the pathology vanishes.
	if stats.PerElementMispredict != 0 {
		t.Errorf("per-element sites still mispredict (%.2f)", stats.PerElementMispredict)
	}
	if stats.DirectCycles >= stats.PredictedCycles {
		t.Error("devirtualized transfers not cheaper than predicted virtual calls")
	}
}

func TestFigure8Breakdown(t *testing.T) {
	variants, ifs, err := netsim.PrepareVariants(EvalInterfaces)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CostPoint(variants[0], ifs, simcpu.P0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rx=%.0f fwd=%.0f tx=%.0f total=%.0f", res.RxDeviceNS, res.ForwardNS, res.TxDeviceNS, res.TotalCPUNS)
	within := func(got float64, want float64, tol float64) bool {
		return got >= want*(1-tol) && got <= want*(1+tol)
	}
	if !within(res.RxDeviceNS, 701, 0.05) {
		t.Errorf("rx device = %.0f ns, paper 701", res.RxDeviceNS)
	}
	if !within(res.ForwardNS, 1657, 0.08) {
		t.Errorf("forwarding path = %.0f ns, paper 1657", res.ForwardNS)
	}
	if !within(res.TxDeviceNS, 547, 0.05) {
		t.Errorf("tx device = %.0f ns, paper 547", res.TxDeviceNS)
	}
	if !within(res.TotalCPUNS, 2905, 0.08) {
		t.Errorf("total = %.0f ns, paper 2905", res.TotalCPUNS)
	}
}

func TestFigure9Reductions(t *testing.T) {
	variants, ifs, err := netsim.PrepareVariants(EvalInterfaces)
	if err != nil {
		t.Fatal(err)
	}
	fwd := map[string]float64{}
	for _, v := range variants {
		res, err := CostPoint(v, ifs, simcpu.P0)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		fwd[v.Name] = res.ForwardNS
		t.Logf("%-7s %6.0f ns", v.Name, res.ForwardNS)
	}
	base := fwd["Base"]
	reduction := func(name string) float64 { return 1 - fwd[name]/base }

	// Headline: All cuts the forwarding path by 34% (accept 30-38%).
	if r := reduction("All"); r < 0.30 || r > 0.38 {
		t.Errorf("All reduction %.1f%%, paper 34%%", r*100)
	}
	// MR+All goes further.
	if fwd["MR+All"] >= fwd["All"] {
		t.Error("ARP elimination did not improve on All")
	}
	// FC alone is small (~3%).
	if r := reduction("FC"); r < 0.01 || r > 0.08 {
		t.Errorf("FC reduction %.1f%%, paper ~3%%", r*100)
	}
	// XF is the most effective single optimization; DV is similar.
	if fwd["XF"] >= fwd["DV"] {
		t.Errorf("XF (%.0f) should edge out DV (%.0f)", fwd["XF"], fwd["DV"])
	}
	if r := reduction("DV"); r < 0.12 || r > 0.26 {
		t.Errorf("DV reduction %.1f%% outside the plausible band", r*100)
	}
	// Their combination overlaps: All's gain is far less than the sum
	// of the individual gains (§8.2).
	sum := reduction("FC") + reduction("DV") + reduction("XF")
	if reduction("All") > sum*0.95 {
		t.Error("optimizations should overlap, not add")
	}
}

func TestAblationChainScaling(t *testing.T) {
	c4, err := chainCost(4)
	if err != nil {
		t.Fatal(err)
	}
	c16, err := chainCost(16)
	if err != nil {
		t.Fatal(err)
	}
	if c16 <= c4 {
		t.Errorf("path cost does not grow with element count: %v vs %v", c4, c16)
	}
	// Marginal per-element cost should be tens of nanoseconds (element
	// work plus one predicted transfer), not hundreds.
	marginal := (c16 - c4) / 12
	if marginal < 10 || marginal > 100 {
		t.Errorf("marginal element cost %.0f ns/element out of range", marginal)
	}
}

func TestExperimentRegistryRuns(t *testing.T) {
	// The quick experiments should produce non-empty reports through
	// the same entry points cmd/click-bench uses.
	for _, name := range []string{"fastclassifier", "vcall", "fig8", "ablation"} {
		var buf bytes.Buffer
		if err := Experiments[name](&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
		if !strings.Contains(buf.String(), "\n") {
			t.Errorf("%s output malformed", name)
		}
	}
}

func TestDevirtSharingCounts(t *testing.T) {
	shared, perElement, err := devirtClassCounts()
	if err != nil {
		t.Fatal(err)
	}
	if shared >= perElement/4 {
		t.Errorf("sharing rules generated %d classes vs %d elements; sharing ineffective", shared, perElement)
	}
	if shared < 10 {
		t.Errorf("suspiciously few generated classes: %d", shared)
	}
}

func TestFourCacheMissesPerPacket(t *testing.T) {
	// §8.2: "Forwarding a packet through Click incurs just four cache
	// misses": RX descriptor, Ethernet header, IP header, TX reclaim.
	variants, ifs, err := netsim.PrepareVariants(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants[:6] { // all IP-router variants; Simple touches no headers
		tb, err := netsim.NewTestbed(v.Graph.Clone(), netsim.TestbedOptions{
			Platform: simcpu.P0, NIC: netsim.Tulip, Ifs: ifs, Registry: v.Registry,
		})
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		tb.AddUniformLoad(50000)
		res := tb.Measure(5e6, 20e6)
		missesPerPkt := float64(tb.CPU.MemMiss) / float64(res.Outcomes.Sent)
		if missesPerPkt < 3.9 || missesPerPkt > 4.1 {
			t.Errorf("%s: %.2f cache misses per packet, want 4", v.Name, missesPerPkt)
		}
	}
}

func TestFigure12PlatformBands(t *testing.T) {
	if testing.Short() {
		t.Skip("MLFFR searches")
	}
	// P0 needs the full 8-interface testbed (two interfaces are wire-
	// limited at 148.8 kpps before the CPU matters); the gigabit
	// platforms use the paper's two-interface setup.
	mlffr := func(plat *simcpu.Platform, name string, hi float64) float64 {
		n := 2
		if plat == simcpu.P0 {
			n = EvalInterfaces
		}
		variants, ifs, err := netsim.PrepareVariants(n)
		if err != nil {
			t.Fatal(err)
		}
		byName := map[string]netsim.ConfigVariant{}
		for _, v := range variants {
			byName[v.Name] = v
		}
		v := byName[name]
		o := netsim.TestbedOptions{Platform: plat, Ifs: ifs, NIC: netsim.Tulip, Registry: v.Registry}
		if plat != simcpu.P0 {
			o.NIC = netsim.Pro1000
			o.PIOAccessNS = Pro1000PIONS
		}
		rate, err := netsim.MLFFR(v.Graph, o, 100000, hi, 16000)
		if err != nil {
			t.Fatalf("%s/%s: %v", plat.Name, name, err)
		}
		return rate
	}
	p0Base := mlffr(simcpu.P0, "Base", 650000)
	p0All := mlffr(simcpu.P0, "All", 650000)
	p3Base := mlffr(simcpu.P3, "Base", 1300000)
	p3All := mlffr(simcpu.P3, "All", 1300000)
	t.Logf("P0 %.0f/%.0f  P3 %.0f/%.0f", p0Base, p0All, p3Base, p3All)

	r0 := p0All / p0Base
	r3 := p3All / p3Base
	if r0 < 1.10 || r0 > 1.40 {
		t.Errorf("P0 ratio %.2f outside band (paper 1.25)", r0)
	}
	if r3 < 1.03 || r3 > 1.30 {
		t.Errorf("P3 ratio %.2f outside band (paper 1.16)", r3)
	}
	// The faster platform forwards much faster, and its optimization
	// benefit ratio is smaller (the bottleneck shifts toward I/O).
	if p3Base < p0Base*1.3 {
		t.Errorf("P3 Base (%.0f) not appreciably faster than P0 (%.0f)", p3Base, p0Base)
	}
	if r3 >= r0 {
		t.Errorf("optimization ratio should shrink on faster hardware: P0 %.2f vs P3 %.2f", r0, r3)
	}
}
