package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/opt"
	"repro/internal/packet"
)

// The fusion benchmark measures what whole-path classifier fusion buys
// as the ruleset scales: the 8-interface IP router gains an IPFilter →
// IPClassifier → StaticSwitch classification run on interface 0's input
// path, the filter's ruleset sweeps 10 → 5000 rules, and each point is
// measured unoptimized, with fastclassifier alone, with the full §8.2
// optimizer chain, and with click-fuse composing the run into a single
// decision diagram on top of that chain. Cost is deterministic model
// cycles per forwarded packet; the diagram/tree node counts come from
// the fuse pass report, so the compactness claim (shared subtrees keep
// the diagram sub-linear where rule chains grow linearly) is measured,
// not asserted.

// FusionPoint is one (ruleset size × variant) measurement.
type FusionPoint struct {
	Rules           int     `json:"rules"`
	Variant         string  `json:"variant"`
	Packets         int64   `json:"packets"`
	Cycles          int64   `json:"cycles"`
	CyclesPerPacket float64 `json:"cycles_per_packet"`
	TreeNodes       int     `json:"tree_nodes,omitempty"`
	DiagramNodes    int     `json:"diagram_nodes,omitempty"`
	RunsFused       int     `json:"runs_fused,omitempty"`
}

// FusionResults is the document click-bench -json writes for the
// fusion experiment.
type FusionResults struct {
	Points []FusionPoint `json:"points"`
}

// fusionRule is one generated firewall rule: admit UDP from one host to
// one destination port.
type fusionRule struct {
	a, b int // source host 10.9.a.b
	port int
}

// fusionRules draws n admit rules from a capped host×port pool, so at
// large n the ruleset repeats itself the way long real ACLs do —
// shadowed duplicates the decision diagram can collapse — and appends
// the default deny. Every rule matters: there is no catch-all admit.
func fusionRules(r *rand.Rand, n int) ([]fusionRule, []string) {
	hostPool := n / 2
	if hostPool < 4 {
		hostPool = 4
	}
	if hostPool > 600 {
		hostPool = 600
	}
	rules := make([]fusionRule, n)
	texts := make([]string, 0, n+1)
	for i := range rules {
		h := r.Intn(hostPool)
		rules[i] = fusionRule{a: h / 250, b: 1 + h%250, port: 1000 + r.Intn(16)}
		texts = append(texts, fmt.Sprintf("allow src host 10.9.%d.%d && udp && dst port %d",
			rules[i].a, rules[i].b, rules[i].port))
	}
	texts = append(texts, "deny all")
	return rules, texts
}

// fusionConfig splices the classification run into interface 0's input
// path of the n-interface IP router.
func fusionConfig(ifs []iprouter.Interface, ruleTexts []string) string {
	inject := fmt.Sprintf(
		"GetIPAddress(16) -> flt :: IPFilter(%s);\n"+
			"flt [0] -> fc :: IPClassifier(udp, tcp, -);\n"+
			"fc [0] -> sw :: StaticSwitch(0) -> rt;\nfc [1] -> rt;\nfc [2] -> rt;\n",
		strings.Join(ruleTexts, ", "))
	return strings.Replace(iprouter.Config(ifs), "GetIPAddress(16) -> rt;", inject, 1)
}

// fusionTrace builds admitted transit traffic: every packet matches one
// of the admit rules and routes to a non-ingress interface.
func fusionTrace(r *rand.Rand, ifs []iprouter.Interface, rules []fusionRule, n int) []*packet.Packet {
	ps := make([]*packet.Packet, n)
	for i := range ps {
		rule := rules[r.Intn(len(rules))]
		dst := 1 + r.Intn(len(ifs)-1)
		payload := make([]byte, 14+r.Intn(18))
		payload[0], payload[1] = byte(i>>8), byte(i)
		ps[i] = packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
			packet.MakeIP4(10, 9, byte(rule.a), byte(rule.b)), ifs[dst].HostAddr,
			uint16(1024+r.Intn(512)), uint16(rule.port), payload)
	}
	return ps
}

// fusionVariants are the optimization levels under comparison.
var fusionVariants = []struct {
	name  string
	apply func(g *graph.Router, reg *core.Registry) error
}{
	{"base", nil},
	{"fastclassifier", opt.FastClassifier},
	{"all", fusionAllPasses},
	{"fuse", func(g *graph.Router, reg *core.Registry) error {
		if err := opt.Fuse(g, reg); err != nil {
			return err
		}
		return fusionAllPasses(g, reg)
	}},
}

// fusionAllPasses is the §8.2 "All" chain: xform combo substitutions,
// compiled classifiers, devirtualized transfers.
func fusionAllPasses(g *graph.Router, reg *core.Registry) error {
	pairs, err := opt.ParsePatterns(iprouter.ComboPatterns, "combopatterns")
	if err != nil {
		return err
	}
	opt.Xform(g, pairs)
	if err := opt.FastClassifier(g, reg); err != nil {
		return err
	}
	return opt.Devirtualize(g, reg, nil)
}

// runFusionPoint builds one variant of the router, replays the trace,
// and measures model cycles per forwarded packet.
func runFusionPoint(text, variant string,
	apply func(g *graph.Router, reg *core.Registry) error,
	ifs []iprouter.Interface, trace []*packet.Packet) (FusionPoint, error) {
	pt := FusionPoint{Variant: variant}
	g, err := lang.ParseRouter(text, "fusionbench")
	if err != nil {
		return pt, err
	}
	reg := elements.NewRegistry()
	if apply != nil {
		if err := apply(g, reg); err != nil {
			return pt, err
		}
	}
	env := map[string]interface{}{}
	devs := make([]*memDevice, len(ifs))
	for i, itf := range ifs {
		devs[i] = &memDevice{name: itf.Device}
		env["device:"+itf.Device] = devs[i]
	}
	rt, err := core.Build(g, reg, core.BuildOptions{Env: env, Burst: 1})
	if err != nil {
		return pt, err
	}
	for _, e := range rt.Elements() {
		if aq, ok := e.(*elements.ARPQuerier); ok {
			for _, itf := range ifs {
				aq.InsertEntry(itf.HostAddr, itf.HostEth)
			}
		}
	}
	c0 := core.Totals(rt.StatsReport()).Cycles
	for _, p := range trace {
		devs[0].rx = append(devs[0].rx, p.Clone())
	}
	rt.RunUntilIdle(len(trace) + 1000)
	var sent int64
	for _, d := range devs {
		sent += d.sent
	}
	if sent == 0 {
		return pt, fmt.Errorf("fusion: %s forwarded nothing", variant)
	}
	pt.Packets = sent
	pt.Cycles = core.Totals(rt.StatsReport()).Cycles - c0
	pt.CyclesPerPacket = float64(pt.Cycles) / float64(sent)
	if reps, err := opt.Reports(rt.Graph); err == nil {
		for _, r := range reps {
			if r.Pass == "fuse" {
				pt.TreeNodes = r.TreeNodes
				pt.DiagramNodes = r.DiagramNodes
				pt.RunsFused = r.RunsFused
			}
		}
	}
	return pt, nil
}

// FusionSizes is the ruleset sweep; FusionPackets the per-point trace
// length. Both are variables so the smoke test can shrink them.
var (
	FusionSizes   = []int{10, 50, 100, 500, 1000, 2000, 5000}
	FusionPackets = 1500
)

// FusionBench runs the ruleset sweep across the four variants and
// checks the claims the experiment exists to prove: identical
// forwarding across variants, fusion strictly cheaper than the full
// conventional chain at >= 1000 rules, and sub-linear diagram growth.
func FusionBench(w io.Writer) error {
	ifs := iprouter.Interfaces(EvalInterfaces)
	var results FusionResults
	fmt.Fprintf(w, "Classifier fusion vs ruleset size (model cycles, %d-interface IP router + firewall run)\n", EvalInterfaces)
	fmt.Fprintf(w, "%-7s %14s %14s %14s %14s %10s %10s\n",
		"rules", "base c/p", "fastcls c/p", "all c/p", "fuse c/p", "tree", "diagram")

	type ratioPoint struct {
		rules        int
		all, fuse    float64
		diagramNodes int
	}
	var ratios []ratioPoint
	for _, n := range FusionSizes {
		r := rand.New(rand.NewSource(int64(1000 + n)))
		rules, texts := fusionRules(r, n)
		text := fusionConfig(ifs, texts)
		trace := fusionTrace(r, ifs, rules, FusionPackets)

		pts := make(map[string]FusionPoint, len(fusionVariants))
		for _, v := range fusionVariants {
			pt, err := runFusionPoint(text, v.name, v.apply, ifs, trace)
			if err != nil {
				return fmt.Errorf("fusion: %d rules: %v", n, err)
			}
			pt.Rules = n
			pts[v.name] = pt
			results.Points = append(results.Points, pt)
		}
		for _, v := range fusionVariants[1:] {
			if pts[v.name].Packets != pts["base"].Packets {
				return fmt.Errorf("fusion: %d rules: %s forwarded %d packets, base %d",
					n, v.name, pts[v.name].Packets, pts["base"].Packets)
			}
		}
		if pts["fuse"].RunsFused < 1 {
			return fmt.Errorf("fusion: %d rules: nothing fused", n)
		}
		fmt.Fprintf(w, "%-7d %14.1f %14.1f %14.1f %14.1f %10d %10d\n", n,
			pts["base"].CyclesPerPacket, pts["fastclassifier"].CyclesPerPacket,
			pts["all"].CyclesPerPacket, pts["fuse"].CyclesPerPacket,
			pts["fuse"].TreeNodes, pts["fuse"].DiagramNodes)
		ratios = append(ratios, ratioPoint{n, pts["all"].CyclesPerPacket,
			pts["fuse"].CyclesPerPacket, pts["fuse"].DiagramNodes})
	}

	// The headline claims, checked here so a regression fails the bench
	// rather than silently shifting a JSON number.
	var first, last *ratioPoint
	for i := range ratios {
		p := &ratios[i]
		if p.rules >= 1000 {
			if p.fuse >= p.all {
				return fmt.Errorf("fusion: %d rules: fused %.1f c/p not below full chain %.1f",
					p.rules, p.fuse, p.all)
			}
			if first == nil {
				first = p
			}
			last = p
		}
	}
	if first != nil && last != nil && first != last {
		nodeGrowth := float64(last.diagramNodes) / float64(first.diagramNodes)
		ruleGrowth := float64(last.rules) / float64(first.rules)
		fmt.Fprintf(w, "diagram nodes %d -> %d rules: %.2fx (rules %.1fx)\n",
			first.rules, last.rules, nodeGrowth, ruleGrowth)
		if nodeGrowth >= ruleGrowth {
			return fmt.Errorf("fusion: diagram growth %.2fx not sub-linear in rule growth %.2fx",
				nodeGrowth, ruleGrowth)
		}
	}

	if JSONPath != "" {
		blob, err := json.MarshalIndent(&results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", JSONPath)
	}
	return nil
}
