package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/opt"
	"repro/internal/packet"
)

// The flowcache experiment measures the flow fast path under the
// traffic it is built for: Zipf-distributed flows (a few elephants, a
// long tail of mice) through the 8-interface IP router. Each packet's
// flow is drawn from Zipf(1.1); the first packet of a flow takes the
// full modular pipeline while the cache records and replay-verifies its
// net effect, and every later packet of a verified flow skips the
// pipeline. Cost is deterministic model cycles per forwarded packet —
// the FlowCache element itself charges zero cycles, so the cached
// router's cost is exactly the slow-path work that still happens.
// Forwarded-packet equality between the variants is asserted, not
// assumed: the fast path must be invisible in the output.

// FlowCachePoint is one variant's measurement.
type FlowCachePoint struct {
	Variant         string  `json:"variant"`
	Packets         int64   `json:"packets"`
	Cycles          int64   `json:"cycles"`
	CyclesPerPacket float64 `json:"cycles_per_packet"`
	Hits            int64   `json:"hits,omitempty"`
	Misses          int64   `json:"misses,omitempty"`
	Uncacheable     int64   `json:"uncacheable,omitempty"`
	Entries         int64   `json:"entries,omitempty"`
	HitRate         float64 `json:"hit_rate,omitempty"`
}

// FlowCacheResults is the document click-bench -json writes for the
// flowcache experiment.
type FlowCacheResults struct {
	Flows       int              `json:"flows"`
	TracePkts   int              `json:"trace_packets"`
	ZipfS       float64          `json:"zipf_s"`
	Points      []FlowCachePoint `json:"points"`
	Improvement float64          `json:"improvement"` // base c/p over cached c/p
}

// FlowCacheFlows and FlowCachePackets size the Zipf sweep; variables so
// the smoke test can shrink them.
var (
	FlowCacheFlows   = 256
	FlowCachePackets = 20000
)

// flowCacheZipfTrace draws each packet's flow from Zipf(1.1) over the
// flow pool. A flow is a fixed 5-tuple with a fixed payload size,
// spread across the non-ingress interfaces.
func flowCacheZipfTrace(r *rand.Rand, ifs []iprouter.Interface, flows, n int) []*packet.Packet {
	z := rand.NewZipf(r, 1.1, 1, uint64(flows-1))
	ps := make([]*packet.Packet, n)
	for i := range ps {
		f := int(z.Uint64())
		dst := ifs[1+f%(len(ifs)-1)]
		ps[i] = packet.BuildUDP4(ifs[0].HostEth, ifs[0].Ether,
			ifs[0].HostAddr, dst.HostAddr,
			uint16(2000+f/256), uint16(10000+f%256), make([]byte, 14+f%24))
	}
	return ps
}

// runFlowCachePoint builds one variant, replays the trace, and measures
// model cycles per forwarded packet plus the cache counters when a
// FlowCache is installed.
func runFlowCachePoint(text, variant string,
	apply func(g *graph.Router, reg *core.Registry) error,
	ifs []iprouter.Interface, trace []*packet.Packet) (FlowCachePoint, error) {
	pt := FlowCachePoint{Variant: variant}
	g, err := lang.ParseRouter(text, "flowcachebench")
	if err != nil {
		return pt, err
	}
	reg := elements.NewRegistry()
	if apply != nil {
		if err := apply(g, reg); err != nil {
			return pt, err
		}
	}
	env := map[string]interface{}{}
	devs := make([]*memDevice, len(ifs))
	for i, itf := range ifs {
		devs[i] = &memDevice{name: itf.Device}
		env["device:"+itf.Device] = devs[i]
	}
	rt, err := core.Build(g, reg, core.BuildOptions{Env: env, Burst: 1})
	if err != nil {
		return pt, err
	}
	for _, e := range rt.Elements() {
		if aq, ok := e.(*elements.ARPQuerier); ok {
			for _, itf := range ifs {
				aq.InsertEntry(itf.HostAddr, itf.HostEth)
			}
		}
	}
	c0 := core.Totals(rt.StatsReport()).Cycles
	for _, p := range trace {
		devs[0].rx = append(devs[0].rx, p.Clone())
	}
	rt.RunUntilIdle(len(trace) + 1000)
	var sent int64
	for _, d := range devs {
		sent += d.sent
	}
	if sent == 0 {
		return pt, fmt.Errorf("flowcache: %s forwarded nothing", variant)
	}
	pt.Packets = sent
	pt.Cycles = core.Totals(rt.StatsReport()).Cycles - c0
	pt.CyclesPerPacket = float64(pt.Cycles) / float64(sent)
	for _, e := range rt.Elements() {
		if fc, ok := e.(*elements.FlowCache); ok {
			pt.Hits = fc.Hits
			pt.Misses = fc.Misses
			pt.Uncacheable = fc.Uncacheable
			pt.Entries = int64(fc.Entries())
			if total := pt.Hits + pt.Misses; total > 0 {
				pt.HitRate = float64(pt.Hits) / float64(total)
			}
		}
	}
	return pt, nil
}

// FlowCacheBench runs the Zipf flow sweep uncached, cached, and cached
// on top of the full §8.2 optimizer chain, and checks the claims the
// experiment exists to prove: identical forwarding, a >= 90% hit rate,
// and at least a 2x cycles-per-packet improvement over the uncached
// pipeline.
func FlowCacheBench(w io.Writer) error {
	ifs := iprouter.Interfaces(EvalInterfaces)
	text := iprouter.Config(ifs)
	r := rand.New(rand.NewSource(42))
	trace := flowCacheZipfTrace(r, ifs, FlowCacheFlows, FlowCachePackets)

	results := FlowCacheResults{Flows: FlowCacheFlows, TracePkts: FlowCachePackets, ZipfS: 1.1}
	fmt.Fprintf(w, "Flow fast path under Zipf(1.1) traffic (%d flows, %d packets, %d-interface IP router)\n",
		FlowCacheFlows, FlowCachePackets, EvalInterfaces)
	fmt.Fprintf(w, "%-16s %10s %14s %10s %10s\n", "variant", "packets", "cycles/pkt", "hit rate", "entries")

	variants := []struct {
		name  string
		apply func(g *graph.Router, reg *core.Registry) error
	}{
		{"base", nil},
		{"flowcache", opt.InstallFlowCache},
		{"all+flowcache", func(g *graph.Router, reg *core.Registry) error {
			if err := fusionAllPasses(g, reg); err != nil {
				return err
			}
			return opt.InstallFlowCache(g, reg)
		}},
	}
	pts := map[string]FlowCachePoint{}
	for _, v := range variants {
		pt, err := runFlowCachePoint(text, v.name, v.apply, ifs, trace)
		if err != nil {
			return err
		}
		pts[v.name] = pt
		results.Points = append(results.Points, pt)
		fmt.Fprintf(w, "%-16s %10d %14.1f %9.1f%% %10d\n",
			pt.Variant, pt.Packets, pt.CyclesPerPacket, pt.HitRate*100, pt.Entries)
	}

	// Forwarding equality: the cache must be invisible in the output.
	for _, v := range variants[1:] {
		if pts[v.name].Packets != pts["base"].Packets {
			return fmt.Errorf("flowcache: %s forwarded %d packets, base %d",
				v.name, pts[v.name].Packets, pts["base"].Packets)
		}
	}
	cached := pts["flowcache"]
	if cached.HitRate < 0.90 {
		return fmt.Errorf("flowcache: hit rate %.3f below 0.90 under Zipf(1.1)", cached.HitRate)
	}
	results.Improvement = pts["base"].CyclesPerPacket / cached.CyclesPerPacket
	if results.Improvement < 2.0 {
		return fmt.Errorf("flowcache: %.2fx cycles/packet improvement, want >= 2x",
			results.Improvement)
	}
	fmt.Fprintf(w, "improvement: %.1fx cycles/packet over the uncached pipeline\n", results.Improvement)

	if JSONPath != "" {
		blob, err := json.MarshalIndent(&results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", JSONPath)
	}
	return nil
}
