package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/opt"
	"repro/internal/packet"
)

// The adaptive benchmark exercises the telemetry-driven re-optimization
// loop end to end: an UNOPTIMIZED IP router starts forwarding, the
// workload shifts from a trickle to sustained traffic, the adaptive
// controller (opt.Adaptive) notices hot classifiers in the live
// telemetry, re-runs the optimizer passes over the unparsed running
// configuration, and the result is hot-swapped in without dropping a
// packet. Cost is measured in model cycles per packet (the deterministic
// per-element cost-model charges, not wall clock), so the before/after
// comparison is exact and machine-checkable.

// AdaptivePoint is one measured phase of the shifting workload.
type AdaptivePoint struct {
	Phase           string  `json:"phase"`
	Packets         int64   `json:"packets"`
	Cycles          int64   `json:"cycles"`
	CyclesPerPacket float64 `json:"cycles_per_packet"`
}

// AdaptiveResults is the document click-bench -json writes for the
// adaptive experiment: the per-phase measurements, the controller's
// decision, and the improvement the mid-run re-optimization bought.
type AdaptiveResults struct {
	Points         []AdaptivePoint   `json:"points"`
	Reasons        []string          `json:"reasons"`
	PassesApplied  []string          `json:"passes_applied"`
	ImprovementPct float64           `json:"improvement_pct"`
	PassReports    []*opt.PassReport `json:"pass_reports,omitempty"`
}

// AdaptiveBench runs the unoptimized IP router on a shifting workload,
// lets the adaptive controller re-optimize and hot-swap it mid-run, and
// reports model cycles per packet before and after adaptation.
func AdaptiveBench(w io.Writer) error {
	const (
		nIfs   = 4
		light  = 200   // below the controller's MinPackets threshold
		heavy  = 20000 // well past it
		minPkt = 1000
	)
	ifs := iprouter.Interfaces(nIfs)
	g, err := lang.ParseRouter(iprouter.Config(ifs), "adaptivebench")
	if err != nil {
		return err
	}
	env := map[string]interface{}{}
	devs := make([]*memDevice, nIfs)
	for i, itf := range ifs {
		devs[i] = &memDevice{name: itf.Device}
		env["device:"+itf.Device] = devs[i]
	}
	rt, err := core.Build(g, elements.NewRegistry(), core.BuildOptions{Env: env, Burst: 1})
	if err != nil {
		return err
	}
	for _, e := range rt.Elements() {
		if aq, ok := e.(*elements.ARPQuerier); ok {
			for _, itf := range ifs {
				aq.InsertEntry(itf.HostAddr, itf.HostEth)
			}
		}
	}

	sent := func() int64 {
		var n int64
		for _, d := range devs {
			n += d.sent
		}
		return n
	}
	// runPhase offers npkts packets split across the first half of the
	// interfaces, drains the router, and measures the phase's model
	// cycles per forwarded packet. Hot-swaps transplant the counters, so
	// deltas stay consistent across a mid-run router replacement.
	runPhase := func(phase string, npkts int) (AdaptivePoint, error) {
		c0, s0 := core.Totals(rt.StatsReport()).Cycles, sent()
		half := len(ifs) / 2
		per := npkts / half
		for i := 0; i < half; i++ {
			tmpl := packet.BuildUDP4(ifs[i].HostEth, ifs[i].Ether,
				ifs[i].HostAddr, ifs[i+half].HostAddr, 1234, 5678, make([]byte, 14))
			for j := 0; j < per; j++ {
				devs[i].rx = append(devs[i].rx, tmpl.Clone())
			}
		}
		rt.RunUntilIdle(per + 1000)
		c1, s1 := core.Totals(rt.StatsReport()).Cycles, sent()
		pkts := s1 - s0
		if want := int64(per * half); pkts != want {
			return AdaptivePoint{}, fmt.Errorf("adaptive: phase %s forwarded %d of %d packets", phase, pkts, want)
		}
		return AdaptivePoint{
			Phase:           phase,
			Packets:         pkts,
			Cycles:          c1 - c0,
			CyclesPerPacket: float64(c1-c0) / float64(pkts),
		}, nil
	}

	ctrl := opt.NewAdaptive(opt.AdaptiveOptions{MinPackets: minPkt, ColdSamples: 3})
	var results AdaptiveResults

	// Phase 1: a trickle. The controller sees nothing worth optimizing.
	pt, err := runPhase("light", light)
	if err != nil {
		return err
	}
	results.Points = append(results.Points, pt)
	if d := ctrl.Observe(rt.Graph, rt.StatsReport()); d.Any() {
		return fmt.Errorf("adaptive: controller optimized an idle router: %v", d.Reasons)
	}

	// Phase 2: the workload shifts to sustained traffic, still on the
	// unoptimized router — this is the "before" measurement.
	pt, err = runPhase("heavy-before", heavy)
	if err != nil {
		return err
	}
	results.Points = append(results.Points, pt)

	// The controller now sees hot classifiers and re-optimizes the live
	// configuration; the replacement is hot-swapped in with all queue and
	// ARP state transplanted (no re-warm below).
	d := ctrl.Observe(rt.Graph, rt.StatsReport())
	if !d.Any() {
		return fmt.Errorf("adaptive: controller ignored a hot router")
	}
	results.Reasons = d.Reasons
	ng, reg, err := opt.Reoptimize(rt.Graph, d)
	if err != nil {
		return err
	}
	next, err := core.Build(ng, reg, core.BuildOptions{Env: env, Burst: 1})
	if err != nil {
		return err
	}
	if err := rt.Hotswap(next); err != nil {
		return err
	}
	rt = next

	// Phase 3: the same sustained traffic on the adapted router.
	pt, err = runPhase("heavy-after", heavy)
	if err != nil {
		return err
	}
	results.Points = append(results.Points, pt)

	before := results.Points[1].CyclesPerPacket
	after := results.Points[2].CyclesPerPacket
	results.ImprovementPct = 100 * (before - after) / before
	if reps, err := opt.Reports(rt.Graph); err == nil {
		results.PassReports = reps
		for _, r := range reps {
			if r.Pass == "adaptive" {
				results.PassesApplied = r.PassesApplied
			}
		}
	}

	fmt.Fprintf(w, "Adaptive re-optimization on a shifting workload (model cycles, unoptimized IP router)\n")
	fmt.Fprintf(w, "%-14s %10s %14s %18s\n", "phase", "packets", "cycles", "cycles/packet")
	for _, p := range results.Points {
		fmt.Fprintf(w, "%-14s %10d %14d %18.1f\n", p.Phase, p.Packets, p.Cycles, p.CyclesPerPacket)
	}
	for _, r := range results.Reasons {
		fmt.Fprintf(w, "decision: %s\n", r)
	}
	fmt.Fprintf(w, "passes applied: %v\n", results.PassesApplied)
	fmt.Fprintf(w, "cycles/packet improvement after adaptation: %.1f%%\n", results.ImprovementPct)

	if JSONPath != "" {
		blob, err := json.MarshalIndent(&results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", JSONPath)
	}
	return nil
}
