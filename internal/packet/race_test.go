package packet

import (
	"sync"
	"testing"
)

// TestConcurrentCloneUniqueifyKill churns one packet's refcount from
// many goroutines: clone, take a private copy, scribble on it, drop it.
// Run under -race it proves the copy-on-write protocol is sound when
// clones of one packet live on different workers.
func TestConcurrentCloneUniqueifyKill(t *testing.T) {
	base := New(make([]byte, 64))
	const goroutines, rounds = 8, 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c := base.Clone()
				c.Uniqueify()
				c.WritableData()[0] = byte(g)
				c.Kill()
			}
		}(g)
	}
	wg.Wait()
	if base.Shared() {
		t.Error("refcount did not return to 1 after all clones died")
	}
	if base.Data()[0] != 0 {
		t.Error("a clone's write leaked into the shared original")
	}
	base.Kill()
}

// TestConcurrentPoolChurn allocates and frees pool-sized packets from
// many goroutines at once, exercising the sharded freelist's TryLock
// paths and the global overflow under -race.
func TestConcurrentPoolChurn(t *testing.T) {
	poolReset()
	const goroutines, rounds = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			held := make([]*Packet, 0, 16)
			for i := 0; i < rounds; i++ {
				held = append(held, Make(64, 128, 64))
				if len(held) == cap(held) {
					for _, p := range held {
						p.Kill()
					}
					held = held[:0]
				}
			}
			for _, p := range held {
				p.Kill()
			}
		}()
	}
	wg.Wait()
	if n := poolCount(); n == 0 {
		t.Error("no buffers recycled into the sharded pool")
	}
}
