package packet

import (
	"sync"
	"unsafe"
)

// Buffer recycling, as Click recycles sk_buffs: a router at full rate
// would otherwise hammer the allocator (and, here, the garbage
// collector) with one short-lived buffer per packet. The pool is
// sharded so that parallel workers do not serialize on one mutex in
// the forwarding path: each worker lands on a shard derived from its
// goroutine stack (stacks are per-goroutine, so the index is stable
// for a worker and distinct between workers), takes the shard lock
// with TryLock — never blocking behind another worker — and falls back
// to the bounded global overflow pool only when every shard is busy or
// its own runs dry.

const (
	poolBufSize = 2048 // covers MTU-sized packets with default slack
	poolMax     = 1024 // bound on retained buffers across all shards
	poolShards  = 8
	perShard    = poolMax / poolShards
)

type poolShard struct {
	mu   sync.Mutex
	bufs [][]byte
	_    [64]byte // keep shards off each other's cache lines
}

var (
	shards     [poolShards]poolShard
	overflowMu sync.Mutex
	overflow   [][]byte
)

// poolIndex derives a shard index from the caller's goroutine stack
// address: cheap, and goroutine-affine without thread-local storage.
func poolIndex() int {
	var x byte
	return int((uintptr(unsafe.Pointer(&x)) >> 10) % poolShards)
}

// getBuf takes a recycled buffer of capacity poolBufSize, or nil. It
// prefers the caller's own shard, scans the others without ever
// blocking, and drains the overflow pool last.
func getBuf() []byte {
	idx := poolIndex()
	for i := 0; i < poolShards; i++ {
		s := &shards[(idx+i)%poolShards]
		if !s.mu.TryLock() {
			continue
		}
		if n := len(s.bufs); n > 0 {
			b := s.bufs[n-1]
			s.bufs = s.bufs[:n-1]
			s.mu.Unlock()
			return b
		}
		s.mu.Unlock()
	}
	overflowMu.Lock()
	defer overflowMu.Unlock()
	if n := len(overflow); n > 0 {
		b := overflow[n-1]
		overflow = overflow[:n-1]
		return b
	}
	return nil
}

// putBuf returns a buffer to the pool if it is recyclable, preferring
// the caller's shard and spilling to the overflow pool when the shards
// are full or busy.
func putBuf(b []byte) {
	if cap(b) < poolBufSize {
		return
	}
	b = b[:cap(b)]
	idx := poolIndex()
	for i := 0; i < poolShards; i++ {
		s := &shards[(idx+i)%poolShards]
		if !s.mu.TryLock() {
			continue
		}
		if len(s.bufs) < perShard {
			s.bufs = append(s.bufs, b)
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
	}
	overflowMu.Lock()
	if len(overflow) < poolMax {
		overflow = append(overflow, b)
	}
	overflowMu.Unlock()
}

// poolReset discards every retained buffer (test hook).
func poolReset() {
	for i := range shards {
		shards[i].mu.Lock()
		shards[i].bufs = nil
		shards[i].mu.Unlock()
	}
	overflowMu.Lock()
	overflow = nil
	overflowMu.Unlock()
}

// poolCount returns the total number of retained buffers (test hook).
func poolCount() int {
	n := 0
	for i := range shards {
		shards[i].mu.Lock()
		n += len(shards[i].bufs)
		shards[i].mu.Unlock()
	}
	overflowMu.Lock()
	n += len(overflow)
	overflowMu.Unlock()
	return n
}
