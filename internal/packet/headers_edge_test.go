package packet

import (
	"bytes"
	"testing"
)

// buildFrame assembles a packet from raw bytes with an unset network
// offset, the shape a frame has when it arrives from a real backend
// (pcap replay, UDP socket) rather than from BuildUDP4.
func rawFrame(data []byte) *Packet {
	p := New(data)
	p.Anno.NetworkOffset = -1
	return p
}

// validFrame is a well-formed 64-byte Ethernet+IPv4+UDP frame.
func validFrame() []byte {
	p := BuildUDP4(EtherAddr{1, 2, 3, 4, 5, 6}, EtherAddr{6, 5, 4, 3, 2, 1},
		MakeIP4(10, 0, 0, 2), MakeIP4(10, 0, 1, 2), 1024, 53, make([]byte, 18))
	defer p.Kill()
	return append([]byte(nil), p.Data()...)
}

// vlanFrame inserts an 802.1Q tag into a valid frame.
func vlanFrame() []byte {
	f := validFrame()
	tagged := make([]byte, 0, len(f)+4)
	tagged = append(tagged, f[:12]...)
	tagged = append(tagged, 0x81, 0x00, 0x00, 0x2a)
	tagged = append(tagged, f[12:]...)
	return tagged
}

// optionsFrame widens a valid frame's IP header to IHL 6 with padding
// options (NOP NOP NOP EOL) and fixes lengths and checksum.
func optionsFrame() []byte {
	f := validFrame()
	opt := make([]byte, 0, len(f)+4)
	opt = append(opt, f[:EtherHeaderLen+IPHeaderMinLen]...)
	opt = append(opt, 0x01, 0x01, 0x01, 0x00)
	opt = append(opt, f[EtherHeaderLen+IPHeaderMinLen:]...)
	h := IP4Header(opt[EtherHeaderLen:])
	h.SetVersionIHL(4, IPHeaderMinLen+4)
	h.SetTotalLen(len(opt) - EtherHeaderLen)
	h.UpdateChecksum()
	return opt
}

func TestEtherHeaderTruncated(t *testing.T) {
	full := validFrame()
	for _, n := range []int{0, 1, 6, 13} {
		p := rawFrame(full[:n])
		if _, ok := p.EtherHeader(); ok {
			t.Errorf("EtherHeader accepted a %d-byte frame", n)
		}
		p.Kill()
	}
	p := rawFrame(full[:EtherHeaderLen])
	if h, ok := p.EtherHeader(); !ok {
		t.Error("EtherHeader rejected an exactly-14-byte frame")
	} else if h.Type() != EtherTypeIP {
		t.Errorf("EtherType %#04x, want %#04x", h.Type(), EtherTypeIP)
	}
	p.Kill()
}

func TestIPHeaderEdges(t *testing.T) {
	full := validFrame()
	corruptIHL := append([]byte(nil), full...)
	corruptIHL[EtherHeaderLen] = 0x44 // IHL 4: 16 bytes, below the minimum
	bigIHL := append([]byte(nil), full...)
	bigIHL[EtherHeaderLen] = 0x4f // IHL 15: 60 bytes, runs past the frame
	zeroIHL := append([]byte(nil), full...)
	zeroIHL[0] = 0x40 // offset unset → byte 0 is the "header": IHL 0

	cases := []struct {
		name   string
		data   []byte
		offset int // network offset annotation; -1 = unset
		ok     bool
		hlen   int
	}{
		{"valid", full, EtherHeaderLen, true, IPHeaderMinLen},
		// An unset offset reads from byte 0: here the Ethernet bytes
		// declare IHL 0, which the accessor must reject rather than
		// slice out of bounds.
		{"unset offset IHL 0", zeroIHL, -1, false, 0},
		{"truncated at ethernet", full[:EtherHeaderLen], EtherHeaderLen, false, 0},
		{"truncated mid-ip", full[:EtherHeaderLen+10], EtherHeaderLen, false, 0},
		{"one byte short", full[:EtherHeaderLen+IPHeaderMinLen-1], EtherHeaderLen, false, 0},
		{"exactly the header", full[:EtherHeaderLen+IPHeaderMinLen], EtherHeaderLen, true, IPHeaderMinLen},
		{"IHL below minimum", corruptIHL, EtherHeaderLen, false, 0},
		{"IHL past frame end", bigIHL, EtherHeaderLen, false, 0},
		{"options IHL 6", optionsFrame(), EtherHeaderLen, true, IPHeaderMinLen + 4},
		{"vlan shifted offset", vlanFrame(), EtherHeaderLen + 4, true, IPHeaderMinLen},
		{"empty", nil, -1, false, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := rawFrame(c.data)
			defer p.Kill()
			p.Anno.NetworkOffset = c.offset
			h, ok := p.IPHeader()
			if ok != c.ok {
				t.Fatalf("IPHeader ok=%v, want %v", ok, c.ok)
			}
			if !ok {
				return
			}
			if h.HeaderLen() != c.hlen {
				t.Errorf("HeaderLen %d, want %d", h.HeaderLen(), c.hlen)
			}
			if !h.ChecksumOK() {
				t.Error("valid header fails ChecksumOK")
			}
		})
	}
}

func TestVLANFrameFields(t *testing.T) {
	p := rawFrame(vlanFrame())
	defer p.Kill()
	h, ok := p.EtherHeader()
	if !ok {
		t.Fatal("no ethernet header")
	}
	if h.Type() != EtherTypeVLAN {
		t.Fatalf("EtherType %#04x, want %#04x (802.1Q)", h.Type(), EtherTypeVLAN)
	}
	// The encapsulated type sits after the 4-byte tag.
	d := p.Data()
	if inner := uint16(d[16])<<8 | uint16(d[17]); inner != EtherTypeIP {
		t.Errorf("inner EtherType %#04x, want %#04x", inner, EtherTypeIP)
	}
	// With the offset adjusted past the tag, the IP and UDP views work.
	p.Anno.NetworkOffset = EtherHeaderLen + 4
	ih, ok := p.IPHeader()
	if !ok {
		t.Fatal("no IP header past the VLAN tag")
	}
	if ih.Dst() != MakeIP4(10, 0, 1, 2) {
		t.Errorf("dst %v through VLAN tag", ih.Dst())
	}
	uh, ok := p.UDPHeader()
	if !ok {
		t.Fatal("no UDP header past the VLAN tag")
	}
	if uh.DstPort() != 53 {
		t.Errorf("dst port %d, want 53", uh.DstPort())
	}
}

func TestUDPHeaderEdges(t *testing.T) {
	// Zero-length payload: the minimum 42-byte frame still parses and
	// the UDP length field covers only the header.
	p := BuildUDP4(EtherAddr{1, 2, 3, 4, 5, 6}, EtherAddr{6, 5, 4, 3, 2, 1},
		MakeIP4(1, 1, 1, 1), MakeIP4(2, 2, 2, 2), 7, 9, nil)
	defer p.Kill()
	if p.Len() != EtherHeaderLen+IPHeaderMinLen+UDPHeaderLen {
		t.Fatalf("zero-payload frame is %d bytes, want %d", p.Len(), EtherHeaderLen+IPHeaderMinLen+UDPHeaderLen)
	}
	uh, ok := p.UDPHeader()
	if !ok {
		t.Fatal("no UDP header on zero-payload frame")
	}
	if uh.Length() != UDPHeaderLen {
		t.Errorf("UDP length %d, want %d", uh.Length(), UDPHeaderLen)
	}
	if uh.SrcPort() != 7 || uh.DstPort() != 9 {
		t.Errorf("ports %d→%d, want 7→9", uh.SrcPort(), uh.DstPort())
	}

	// A frame cut inside the UDP header has an IP view but no UDP view.
	full := validFrame()
	short := rawFrame(full[:EtherHeaderLen+IPHeaderMinLen+3])
	defer short.Kill()
	short.Anno.NetworkOffset = EtherHeaderLen
	// Patch the total length so the IP header itself stays plausible.
	if _, ok := short.IPHeader(); !ok {
		t.Fatal("truncated-UDP frame lost its IP header")
	}
	if _, ok := short.UDPHeader(); ok {
		t.Error("UDPHeader accepted a frame cut mid-UDP-header")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	f := validFrame()
	p := rawFrame(f)
	defer p.Kill()
	p.Anno.NetworkOffset = EtherHeaderLen
	h, ok := p.IPHeader()
	if !ok {
		t.Fatal("no IP header")
	}
	if !h.ChecksumOK() {
		t.Fatal("pristine frame fails checksum")
	}
	for _, bit := range []int{0, 8, 19*8 + 7} { // first byte, TOS, last address byte
		h[bit/8] ^= 1 << (bit % 8)
		if h.ChecksumOK() {
			t.Errorf("flipping header bit %d went undetected", bit)
		}
		h[bit/8] ^= 1 << (bit % 8)
	}
	// Incremental TTL decrement preserves checksum validity.
	before := h.TTL()
	h.DecTTLIncremental()
	if h.TTL() != before-1 {
		t.Errorf("TTL %d after decrement, want %d", h.TTL(), before-1)
	}
	if !h.ChecksumOK() {
		t.Error("DecTTLIncremental broke the checksum")
	}
}

func TestOptionsFrameChecksumCoversOptions(t *testing.T) {
	f := optionsFrame()
	p := rawFrame(f)
	defer p.Kill()
	p.Anno.NetworkOffset = EtherHeaderLen
	h, ok := p.IPHeader()
	if !ok {
		t.Fatal("no IP header with options")
	}
	if !h.ChecksumOK() {
		t.Fatal("options frame fails checksum")
	}
	// Corrupting an option byte must be caught: the checksum spans the
	// full IHL, not just the fixed 20 bytes.
	h[IPHeaderMinLen] ^= 0xff
	if h.ChecksumOK() {
		t.Error("corrupted option byte went undetected")
	}
	h[IPHeaderMinLen] ^= 0xff
	// The UDP header sits after the options.
	uh, ok := p.UDPHeader()
	if !ok {
		t.Fatal("no UDP header after options")
	}
	if uh.DstPort() != 53 {
		t.Errorf("dst port %d through options, want 53", uh.DstPort())
	}
	if !bytes.Equal(h[IPHeaderMinLen:IPHeaderMinLen+4], []byte{0x01, 0x01, 0x01, 0x00}) {
		t.Errorf("options bytes %x", h[IPHeaderMinLen:IPHeaderMinLen+4])
	}
}
