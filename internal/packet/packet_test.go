package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMakeSizes(t *testing.T) {
	p := Make(10, 20, 30)
	if p.Len() != 20 {
		t.Errorf("Len = %d, want 20", p.Len())
	}
	if p.Headroom() != 10 {
		t.Errorf("Headroom = %d, want 10", p.Headroom())
	}
	if p.Tailroom() != 30 {
		t.Errorf("Tailroom = %d, want 30", p.Tailroom())
	}
}

func TestNewCopiesData(t *testing.T) {
	src := []byte{1, 2, 3, 4}
	p := New(src)
	src[0] = 99
	if p.Data()[0] != 1 {
		t.Error("New did not copy data")
	}
	if !bytes.Equal(p.Data(), []byte{1, 2, 3, 4}) {
		t.Errorf("Data = %v", p.Data())
	}
}

func TestPushPull(t *testing.T) {
	p := New([]byte{5, 6, 7})
	d := p.Push(2)
	if len(d) != 5 {
		t.Fatalf("after Push(2) len = %d, want 5", len(d))
	}
	if d[0] != 0 || d[1] != 0 {
		t.Error("fresh headroom should read zero")
	}
	if d[2] != 5 {
		t.Error("Push moved existing data")
	}
	p.Pull(2)
	if !bytes.Equal(p.Data(), []byte{5, 6, 7}) {
		t.Errorf("after Pull(2) Data = %v", p.Data())
	}
}

func TestPullThenPushRestoresBytes(t *testing.T) {
	// sk_buff semantics: Pull moves a pointer; Push moves it back and
	// the stripped bytes reappear (Unstrip relies on this).
	p := New([]byte{0xAA, 0xBB, 0xCC, 0xDD})
	p.Pull(2)
	d := p.Push(2)
	if !bytes.Equal(d, []byte{0xAA, 0xBB, 0xCC, 0xDD}) {
		t.Errorf("restored data = %v", d)
	}
}

func TestPushBeyondHeadroomReallocates(t *testing.T) {
	p := Make(2, 4, 0)
	copy(p.Data(), []byte{1, 2, 3, 4})
	d := p.Push(10)
	if len(d) != 14 {
		t.Fatalf("len = %d, want 14", len(d))
	}
	if !bytes.Equal(d[10:], []byte{1, 2, 3, 4}) {
		t.Errorf("data tail = %v", d[10:])
	}
}

func TestPutTake(t *testing.T) {
	p := New([]byte{1})
	d := p.Put(3)
	if len(d) != 4 {
		t.Fatalf("len = %d, want 4", len(d))
	}
	p.Take(2)
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
}

func TestPullPanicsPastEnd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pull past end did not panic")
		}
	}()
	New([]byte{1, 2}).Pull(3)
}

func TestCloneSharesUntilUniqueify(t *testing.T) {
	p := New([]byte{1, 2, 3})
	q := p.Clone()
	if !p.Shared() || !q.Shared() {
		t.Fatal("clone not shared")
	}
	q.WritableData()[0] = 9
	if p.Data()[0] != 1 {
		t.Error("write to uniqueified clone affected original")
	}
	if q.Data()[0] != 9 {
		t.Error("write lost")
	}
	if p.Shared() {
		t.Error("original still marked shared after clone uniqueified")
	}
}

func TestCloneCopiesAnnotations(t *testing.T) {
	p := New(make([]byte, 20))
	p.Anno.Paint = 3
	p.Anno.DstIPAnno = MakeIP4(1, 2, 3, 4)
	q := p.Clone()
	q.Anno.Paint = 7
	if p.Anno.Paint != 3 {
		t.Error("annotations shared between clones")
	}
	if q.Anno.DstIPAnno != MakeIP4(1, 2, 3, 4) {
		t.Error("annotations not copied")
	}
}

func TestNetworkOffsetTracksPushPull(t *testing.T) {
	p := New(make([]byte, 40))
	p.Anno.NetworkOffset = 14
	p.Pull(14)
	if p.Anno.NetworkOffset != 0 {
		t.Errorf("after Pull(14) offset = %d, want 0", p.Anno.NetworkOffset)
	}
	p.Push(14)
	if p.Anno.NetworkOffset != 14 {
		t.Errorf("after Push(14) offset = %d, want 14", p.Anno.NetworkOffset)
	}
	p.Pull(20)
	if p.Anno.NetworkOffset != -1 {
		t.Errorf("offset pulled past header = %d, want -1", p.Anno.NetworkOffset)
	}
}

func TestRealign(t *testing.T) {
	p := Make(13, 8, 0)
	copy(p.Data(), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if p.AlignOffset(4) != 1 {
		t.Fatalf("AlignOffset = %d, want 1", p.AlignOffset(4))
	}
	p.Realign(4, 2)
	if p.AlignOffset(4) != 2 {
		t.Errorf("after Realign AlignOffset = %d, want 2", p.AlignOffset(4))
	}
	if !bytes.Equal(p.Data(), []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Errorf("Realign corrupted data: %v", p.Data())
	}
}

func TestPushPullRoundTripProperty(t *testing.T) {
	f := func(data []byte, n uint8) bool {
		p := New(data)
		k := int(n) % 64
		p.Push(k)
		p.Pull(k)
		return bytes.Equal(p.Data(), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseIP4(t *testing.T) {
	cases := []struct {
		in   string
		want IP4
		ok   bool
	}{
		{"1.2.3.4", IP4{1, 2, 3, 4}, true},
		{"255.255.255.255", IP4{255, 255, 255, 255}, true},
		{"0.0.0.0", IP4{}, true},
		{"18.26.4.24", IP4{18, 26, 4, 24}, true},
		{"1.2.3", IP4{}, false},
		{"1.2.3.4.5", IP4{}, false},
		{"1.2.3.256", IP4{}, false},
		{"1.2.3.x", IP4{}, false},
		{"", IP4{}, false},
		{"1..2.3", IP4{}, false},
	}
	for _, c := range cases {
		got, err := ParseIP4(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseIP4(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseIP4(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIP4RoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP4FromUint32(v)
		back, err := ParseIP4(ip.String())
		return err == nil && back == ip && back.Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseEther(t *testing.T) {
	e, err := ParseEther("00:a0:c9:9c:fd:9c")
	if err != nil {
		t.Fatal(err)
	}
	want := EtherAddr{0x00, 0xa0, 0xc9, 0x9c, 0xfd, 0x9c}
	if e != want {
		t.Errorf("got %v, want %v", e, want)
	}
	if e.String() != "00:a0:c9:9c:fd:9c" {
		t.Errorf("String = %q", e.String())
	}
	for _, bad := range []string{"", "00:11:22:33:44", "00:11:22:33:44:55:66", "zz:11:22:33:44:55"} {
		if _, err := ParseEther(bad); err == nil {
			t.Errorf("ParseEther(%q) succeeded", bad)
		}
	}
}

func TestIP4Predicates(t *testing.T) {
	if !MakeIP4(255, 255, 255, 255).IsBroadcast() {
		t.Error("broadcast not detected")
	}
	if !MakeIP4(224, 0, 0, 1).IsMulticast() {
		t.Error("multicast not detected")
	}
	if MakeIP4(18, 26, 4, 24).IsMulticast() {
		t.Error("unicast detected as multicast")
	}
	if !(IP4{}).IsZero() {
		t.Error("zero not detected")
	}
}

func TestInternetChecksum(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := InternetChecksum(b); got != ^uint16(0xddf2) {
		t.Errorf("checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
	// Odd length.
	if got := InternetChecksum([]byte{0x12}); got != ^uint16(0x1200) {
		t.Errorf("odd checksum = %#04x", got)
	}
}

func TestChecksumVerifiesBuiltPacket(t *testing.T) {
	p := BuildUDP4(EtherAddr{1}, EtherAddr{2}, MakeIP4(10, 0, 0, 1), MakeIP4(10, 0, 2, 1), 1234, 5678, make([]byte, 14))
	if p.Len() != 56 {
		t.Fatalf("packet len = %d, want 56 (14 Ether + 20 IP + 8 UDP + 14 data; CRC not carried)", p.Len())
	}
	ih, ok := p.IPHeader()
	if !ok {
		t.Fatal("no IP header")
	}
	if !ih.ChecksumOK() {
		t.Error("built packet has bad checksum")
	}
	if ih.Proto() != IPProtoUDP {
		t.Errorf("proto = %d", ih.Proto())
	}
	uh, ok := p.UDPHeader()
	if !ok {
		t.Fatal("no UDP header")
	}
	if uh.SrcPort() != 1234 || uh.DstPort() != 5678 {
		t.Errorf("ports = %d,%d", uh.SrcPort(), uh.DstPort())
	}
	if uh.Length() != 22 {
		t.Errorf("UDP length = %d, want 22", uh.Length())
	}
}

func TestDecTTLIncrementalMatchesFullRecompute(t *testing.T) {
	f := func(srcv, dstv uint32, ttl uint8, id uint16) bool {
		if ttl == 0 {
			ttl = 1
		}
		p := BuildUDP4(EtherAddr{}, EtherAddr{}, IP4FromUint32(srcv), IP4FromUint32(dstv), 1, 2, make([]byte, 14))
		ih, _ := p.IPHeader()
		ih.SetTTL(int(ttl))
		ih.SetID(id)
		ih.UpdateChecksum()
		ih.DecTTLIncremental()
		return ih.ChecksumOK() && ih.TTL() == int(ttl)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEtherHeaderAccessors(t *testing.T) {
	p := Make(0, 20, 0)
	eh, ok := p.EtherHeader()
	if !ok {
		t.Fatal("no ether header")
	}
	src := EtherAddr{1, 2, 3, 4, 5, 6}
	dst := EtherAddr{7, 8, 9, 10, 11, 12}
	eh.SetSrc(src)
	eh.SetDst(dst)
	eh.SetType(EtherTypeARP)
	if eh.Src() != src || eh.Dst() != dst || eh.Type() != EtherTypeARP {
		t.Error("accessor round trip failed")
	}
	small := Make(0, 10, 0)
	if _, ok := small.EtherHeader(); ok {
		t.Error("EtherHeader on 10-byte packet should fail")
	}
}

func TestARPHeaderAccessors(t *testing.T) {
	p := Make(0, ARPHeaderLen, 0)
	ah, ok := p.ARPHeader(false)
	if !ok {
		t.Fatal("no ARP header")
	}
	ah.InitARP()
	ah.SetOp(ARPOpRequest)
	ah.SetSenderEther(EtherAddr{1, 1, 1, 1, 1, 1})
	ah.SetSenderIP(MakeIP4(10, 0, 0, 1))
	ah.SetTargetIP(MakeIP4(10, 0, 0, 2))
	if ah.Op() != ARPOpRequest {
		t.Error("op mismatch")
	}
	if ah.SenderIP() != MakeIP4(10, 0, 0, 1) || ah.TargetIP() != MakeIP4(10, 0, 0, 2) {
		t.Error("IP mismatch")
	}
	if ah.SenderEther() != (EtherAddr{1, 1, 1, 1, 1, 1}) {
		t.Error("ether mismatch")
	}
}

func TestKill(t *testing.T) {
	p := New([]byte{1})
	q := p.Clone()
	q.Kill()
	if p.Shared() {
		t.Error("Kill did not release reference")
	}
}

func TestIPHeaderRejectsShort(t *testing.T) {
	p := Make(0, 10, 0)
	if _, ok := p.IPHeader(); ok {
		t.Error("IPHeader on short packet should fail")
	}
	// Bad header length field.
	p2 := Make(0, 20, 0)
	p2.Data()[0] = 0x41 // version 4, IHL 1 (4 bytes) — invalid
	if _, ok := p2.IPHeader(); ok {
		t.Error("IPHeader with IHL<20 should fail")
	}
}

func TestBufferRecycling(t *testing.T) {
	poolReset()
	p := Make(10, 20, 10)
	p.Kill()
	if n := poolCount(); n != 1 {
		t.Fatalf("pool has %d buffers after Kill, want 1", n)
	}
	// The next Make reuses the buffer, zeroed.
	q := Make(5, 30, 5)
	if poolCount() != 0 {
		t.Error("pool not drained by Make")
	}
	for _, b := range q.Data() {
		if b != 0 {
			t.Fatal("recycled buffer not zeroed")
		}
	}
	// Shared packets only recycle on the last Kill.
	poolReset()
	a := Make(0, 8, 0)
	c := a.Clone()
	a.Kill()
	if poolCount() != 0 {
		t.Error("buffer recycled while a clone is alive")
	}
	c.Kill()
	if poolCount() != 1 {
		t.Error("buffer not recycled after last reference")
	}
	// Double Kill must not double-pool.
	poolReset()
	d := Make(0, 8, 0)
	d.Kill()
	d.Kill()
	if n := poolCount(); n != 1 {
		t.Errorf("double Kill pooled %d buffers", n)
	}
}
