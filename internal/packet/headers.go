package packet

import (
	"encoding/binary"
	"fmt"
)

// Protocol numbers and EtherTypes used by the element library.
const (
	EtherTypeIP   = 0x0800
	EtherTypeARP  = 0x0806
	EtherTypeVLAN = 0x8100

	IPProtoICMP = 1
	IPProtoTCP  = 6
	IPProtoUDP  = 17

	ARPOpRequest = 1
	ARPOpReply   = 2

	EtherHeaderLen = 14
	ARPHeaderLen   = 28
	IPHeaderMinLen = 20
	UDPHeaderLen   = 8
	ICMPHeaderLen  = 8
)

// ICMP types and codes used by ICMPError.
const (
	ICMPEchoReply      = 0
	ICMPUnreachable    = 3
	ICMPRedirect       = 5
	ICMPEchoRequest    = 8
	ICMPTimeExceeded   = 11
	ICMPParameterProb  = 12
	ICMPCodeHost       = 1
	ICMPCodeFragNeeded = 4
	ICMPCodeTTLExpired = 0
)

// Ether is an accessor over a 14-byte Ethernet header.
type Ether []byte

// EtherHeader returns the Ethernet header view if the packet starts with
// one.
func (p *Packet) EtherHeader() (Ether, bool) {
	if p.Len() < EtherHeaderLen {
		return nil, false
	}
	return Ether(p.Data()[:EtherHeaderLen]), true
}

// Dst returns the destination MAC address.
func (h Ether) Dst() EtherAddr { var a EtherAddr; copy(a[:], h[0:6]); return a }

// Src returns the source MAC address.
func (h Ether) Src() EtherAddr { var a EtherAddr; copy(a[:], h[6:12]); return a }

// Type returns the EtherType.
func (h Ether) Type() uint16 { return binary.BigEndian.Uint16(h[12:14]) }

// SetDst sets the destination MAC address.
func (h Ether) SetDst(a EtherAddr) { copy(h[0:6], a[:]) }

// SetSrc sets the source MAC address.
func (h Ether) SetSrc(a EtherAddr) { copy(h[6:12], a[:]) }

// SetType sets the EtherType.
func (h Ether) SetType(t uint16) { binary.BigEndian.PutUint16(h[12:14], t) }

// ARP is an accessor over a 28-byte Ethernet/IPv4 ARP message.
type ARP []byte

// ARPHeader returns the ARP view of the packet data (which must begin
// with the ARP message, i.e. after the Ethernet header is stripped, or
// at offset 14 if offset14 is true).
func (p *Packet) ARPHeader(offset14 bool) (ARP, bool) {
	off := 0
	if offset14 {
		off = EtherHeaderLen
	}
	if p.Len() < off+ARPHeaderLen {
		return nil, false
	}
	return ARP(p.Data()[off : off+ARPHeaderLen]), true
}

// Op returns the ARP opcode.
func (h ARP) Op() uint16 { return binary.BigEndian.Uint16(h[6:8]) }

// SetOp sets the ARP opcode.
func (h ARP) SetOp(op uint16) { binary.BigEndian.PutUint16(h[6:8], op) }

// SenderEther returns the sender hardware address.
func (h ARP) SenderEther() EtherAddr { var a EtherAddr; copy(a[:], h[8:14]); return a }

// SenderIP returns the sender protocol address.
func (h ARP) SenderIP() IP4 { var ip IP4; copy(ip[:], h[14:18]); return ip }

// TargetEther returns the target hardware address.
func (h ARP) TargetEther() EtherAddr { var a EtherAddr; copy(a[:], h[18:24]); return a }

// TargetIP returns the target protocol address.
func (h ARP) TargetIP() IP4 { var ip IP4; copy(ip[:], h[24:28]); return ip }

// SetSenderEther sets the sender hardware address.
func (h ARP) SetSenderEther(a EtherAddr) { copy(h[8:14], a[:]) }

// SetSenderIP sets the sender protocol address.
func (h ARP) SetSenderIP(ip IP4) { copy(h[14:18], ip[:]) }

// SetTargetEther sets the target hardware address.
func (h ARP) SetTargetEther(a EtherAddr) { copy(h[18:24], a[:]) }

// SetTargetIP sets the target protocol address.
func (h ARP) SetTargetIP(ip IP4) { copy(h[24:28], ip[:]) }

// InitARP fills the fixed hardware/protocol type fields for an
// Ethernet/IPv4 ARP message.
func (h ARP) InitARP() {
	binary.BigEndian.PutUint16(h[0:2], 1) // hardware type: Ethernet
	binary.BigEndian.PutUint16(h[2:4], EtherTypeIP)
	h[4] = 6 // hardware address length
	h[5] = 4 // protocol address length
}

// IP4Header is an accessor over an IPv4 header.
type IP4Header []byte

// IPHeader returns the IP header view based on the packet's network
// offset annotation (or offset 0 if unset).
func (p *Packet) IPHeader() (IP4Header, bool) {
	off := p.Anno.NetworkOffset
	if off < 0 {
		off = 0
	}
	d := p.Data()
	if len(d) < off+IPHeaderMinLen {
		return nil, false
	}
	h := IP4Header(d[off:])
	hl := h.HeaderLen()
	if hl < IPHeaderMinLen || len(d) < off+hl {
		return nil, false
	}
	return h, true
}

// Version returns the IP version field.
func (h IP4Header) Version() int { return int(h[0] >> 4) }

// HeaderLen returns the header length in bytes.
func (h IP4Header) HeaderLen() int { return int(h[0]&0x0f) * 4 }

// TotalLen returns the datagram's total length field.
func (h IP4Header) TotalLen() int { return int(binary.BigEndian.Uint16(h[2:4])) }

// ID returns the identification field.
func (h IP4Header) ID() uint16 { return binary.BigEndian.Uint16(h[4:6]) }

// FragOff returns the fragment offset field including flags.
func (h IP4Header) FragOff() uint16 { return binary.BigEndian.Uint16(h[6:8]) }

// TTL returns the time-to-live field.
func (h IP4Header) TTL() int { return int(h[8]) }

// Proto returns the transport protocol number.
func (h IP4Header) Proto() int { return int(h[9]) }

// Checksum returns the header checksum field.
func (h IP4Header) Checksum() uint16 { return binary.BigEndian.Uint16(h[10:12]) }

// Src returns the source address.
func (h IP4Header) Src() IP4 { var ip IP4; copy(ip[:], h[12:16]); return ip }

// Dst returns the destination address.
func (h IP4Header) Dst() IP4 { var ip IP4; copy(ip[:], h[16:20]); return ip }

// SetVersionIHL sets the version and header length (in bytes).
func (h IP4Header) SetVersionIHL(version, hdrBytes int) {
	h[0] = byte(version<<4 | hdrBytes/4)
}

// SetTotalLen sets the total length field.
func (h IP4Header) SetTotalLen(n int) { binary.BigEndian.PutUint16(h[2:4], uint16(n)) }

// SetID sets the identification field.
func (h IP4Header) SetID(v uint16) { binary.BigEndian.PutUint16(h[4:6], v) }

// SetFragOff sets the fragment offset field including flags.
func (h IP4Header) SetFragOff(v uint16) { binary.BigEndian.PutUint16(h[6:8], v) }

// SetTTL sets the time-to-live field.
func (h IP4Header) SetTTL(v int) { h[8] = byte(v) }

// SetProto sets the transport protocol number.
func (h IP4Header) SetProto(v int) { h[9] = byte(v) }

// SetChecksum sets the header checksum field.
func (h IP4Header) SetChecksum(v uint16) { binary.BigEndian.PutUint16(h[10:12], v) }

// SetSrc sets the source address.
func (h IP4Header) SetSrc(ip IP4) { copy(h[12:16], ip[:]) }

// SetDst sets the destination address.
func (h IP4Header) SetDst(ip IP4) { copy(h[16:20], ip[:]) }

// DontFragment reports whether the DF flag is set.
func (h IP4Header) DontFragment() bool { return h.FragOff()&0x4000 != 0 }

// MoreFragments reports whether the MF flag is set.
func (h IP4Header) MoreFragments() bool { return h.FragOff()&0x2000 != 0 }

// UpdateChecksum recomputes and stores the header checksum.
func (h IP4Header) UpdateChecksum() {
	h.SetChecksum(0)
	h.SetChecksum(InternetChecksum(h[:h.HeaderLen()]))
}

// ChecksumOK verifies the stored header checksum.
func (h IP4Header) ChecksumOK() bool {
	return InternetChecksum(h[:h.HeaderLen()]) == 0
}

// DecTTLIncremental decrements the TTL and patches the checksum
// incrementally per RFC 1141, as Click's DecIPTTL does.
func (h IP4Header) DecTTLIncremental() {
	h[8]--
	// Incremental update: adding 0x0100 to the one's-complement sum.
	sum := uint32(^binary.BigEndian.Uint16(h[10:12])) + 0xfeff
	binary.BigEndian.PutUint16(h[10:12], ^uint16(sum+(sum>>16)))
}

// UDP is an accessor over an 8-byte UDP header.
type UDP []byte

// UDPHeader returns the UDP header view assuming it directly follows the
// IP header.
func (p *Packet) UDPHeader() (UDP, bool) {
	iph, ok := p.IPHeader()
	if !ok {
		return nil, false
	}
	hl := iph.HeaderLen()
	if len(iph) < hl+UDPHeaderLen {
		return nil, false
	}
	return UDP(iph[hl : hl+UDPHeaderLen]), true
}

// SrcPort returns the source port.
func (h UDP) SrcPort() uint16 { return binary.BigEndian.Uint16(h[0:2]) }

// DstPort returns the destination port.
func (h UDP) DstPort() uint16 { return binary.BigEndian.Uint16(h[2:4]) }

// Length returns the UDP length field.
func (h UDP) Length() int { return int(binary.BigEndian.Uint16(h[4:6])) }

// SetSrcPort sets the source port.
func (h UDP) SetSrcPort(v uint16) { binary.BigEndian.PutUint16(h[0:2], v) }

// SetDstPort sets the destination port.
func (h UDP) SetDstPort(v uint16) { binary.BigEndian.PutUint16(h[2:4], v) }

// SetLength sets the UDP length field.
func (h UDP) SetLength(n int) { binary.BigEndian.PutUint16(h[4:6], uint16(n)) }

// SetChecksum sets the UDP checksum field.
func (h UDP) SetChecksum(v uint16) { binary.BigEndian.PutUint16(h[6:8], v) }

// InternetChecksum computes the RFC 1071 one's-complement checksum of b.
func InternetChecksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// BuildUDP4 builds a complete Ethernet+IPv4+UDP packet with the given
// addresses, ports, and payload. It is the workload generator used by
// the evaluation: the paper's 64-byte test packets are 14 bytes of
// Ethernet header, 20 of IP, 8 of UDP, 14 of data, and the 4-byte CRC
// (the CRC is counted in wire length but not carried in packet data).
func BuildUDP4(srcE, dstE EtherAddr, src, dst IP4, sport, dport uint16, payload []byte) *Packet {
	n := EtherHeaderLen + IPHeaderMinLen + UDPHeaderLen + len(payload)
	p := Make(DefaultHeadroom, n, DefaultTailroom)
	d := p.Data()
	eh := Ether(d[:EtherHeaderLen])
	eh.SetDst(dstE)
	eh.SetSrc(srcE)
	eh.SetType(EtherTypeIP)
	ih := IP4Header(d[EtherHeaderLen:])
	ih.SetVersionIHL(4, IPHeaderMinLen)
	ih.SetTotalLen(n - EtherHeaderLen)
	ih.SetTTL(64)
	ih.SetProto(IPProtoUDP)
	ih.SetSrc(src)
	ih.SetDst(dst)
	ih.UpdateChecksum()
	uh := UDP(d[EtherHeaderLen+IPHeaderMinLen:])
	uh.SetSrcPort(sport)
	uh.SetDstPort(dport)
	uh.SetLength(UDPHeaderLen + len(payload))
	copy(d[EtherHeaderLen+IPHeaderMinLen+UDPHeaderLen:], payload)
	p.Anno.NetworkOffset = EtherHeaderLen
	return p
}

// String summarizes the packet for debugging.
func (p *Packet) String() string {
	return fmt.Sprintf("Packet{len=%d headroom=%d paint=%d}", p.Len(), p.Headroom(), p.Anno.Paint)
}
