// Package iprouter builds the paper's evaluation configurations: the
// standards-compliant IP router of Figure 1 (generalized to n
// interfaces), the minimal "Simple" forwarding configuration, and the
// click-xform pattern files for the combination elements (Figures 4-6)
// and for multiple-router ARP elimination (§7.2).
package iprouter

import (
	"fmt"
	"strings"

	"repro/internal/packet"
)

// Interface describes one router interface and the single host on its
// point-to-point link (the evaluation's topology, §8.1).
type Interface struct {
	Device   string
	Addr     packet.IP4
	Ether    packet.EtherAddr
	HostAddr packet.IP4
	HostEth  packet.EtherAddr
}

// Interfaces builds the standard n-interface addressing plan:
// interface i is 10.0.i.1/24 with the attached host at 10.0.i.2.
func Interfaces(n int) []Interface {
	out := make([]Interface, n)
	for i := range out {
		out[i] = Interface{
			Device:   fmt.Sprintf("eth%d", i),
			Addr:     packet.MakeIP4(10, 0, byte(i), 1),
			Ether:    packet.EtherAddr{0x00, 0x00, 0xc0, 0x00, byte(i), 0x01},
			HostAddr: packet.MakeIP4(10, 0, byte(i), 2),
			HostEth:  packet.EtherAddr{0x00, 0x00, 0xc0, 0x00, byte(i), 0x02},
		}
	}
	return out
}

// Config renders the Figure 1 IP router for the given interfaces. The
// forwarding path for a transit packet crosses sixteen elements (§3):
// PollDevice, Classifier, Paint, Strip, CheckIPHeader, GetIPAddress,
// LookupIPRoute, DropBroadcasts, CheckPaint, IPGWOptions, FixIPSrc,
// DecIPTTL, IPFragmenter, ARPQuerier, Queue, ToDevice.
func Config(ifs []Interface) string {
	var b strings.Builder
	b.WriteString("// Click IP router (Figure 1), generated configuration.\n\n")

	// Shared routing table: host routes for the router's own addresses
	// (delivered to the host stack, Figure 1's "to Linux" arrow) and
	// one direct route per interface. Host routes come first; they are
	// more specific, so order doesn't matter for LPM, but it reads like
	// the paper's configuration.
	n := len(ifs)
	var routes []string
	for _, itf := range ifs {
		routes = append(routes, fmt.Sprintf("%s/32 %d", itf.Addr, n))
	}
	for i, itf := range ifs {
		net := itf.Addr
		net[3] = 0
		routes = append(routes, fmt.Sprintf("%s/24 %d", net, i))
	}
	fmt.Fprintf(&b, "rt :: LookupIPRoute(%s);\n", strings.Join(routes, ", "))
	fmt.Fprintf(&b, "rt [%d] -> th :: ToHost;\n\n", n)

	var badSrcs []string
	for _, itf := range ifs {
		bcast := itf.Addr
		bcast[3] = 255
		badSrcs = append(badSrcs, bcast.String())
	}
	bad := strings.Join(badSrcs, " ")

	for i, itf := range ifs {
		color := i + 1
		fmt.Fprintf(&b, "// Interface %d: %s (%s, %s)\n", i, itf.Device, itf.Addr, itf.Ether)
		fmt.Fprintf(&b, "fd%d :: PollDevice(%s);\n", i, itf.Device)
		fmt.Fprintf(&b, "td%d :: ToDevice(%s);\n", i, itf.Device)
		fmt.Fprintf(&b, "c%d :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);\n", i)
		fmt.Fprintf(&b, "out%d :: Queue;\n", i)
		fmt.Fprintf(&b, "arpq%d :: ARPQuerier(%s, %s);\n", i, itf.Addr, itf.Ether)
		fmt.Fprintf(&b, "fd%d -> c%d;\n", i, i)
		fmt.Fprintf(&b, "c%d [0] -> ARPResponder(%s, %s) -> out%d;\n", i, itf.Addr, itf.Ether, i)
		fmt.Fprintf(&b, "c%d [1] -> [1] arpq%d;\n", i, i)
		fmt.Fprintf(&b, "c%d [2] -> Paint(%d) -> Strip(14) -> CheckIPHeader(%s) -> GetIPAddress(16) -> rt;\n", i, color, bad)
		fmt.Fprintf(&b, "c%d [3] -> Discard;\n", i)
		fmt.Fprintf(&b, "rt [%d] -> DropBroadcasts -> cp%d :: CheckPaint(%d) -> gio%d :: IPGWOptions(%s) -> FixIPSrc(%s) -> dt%d :: DecIPTTL -> fr%d :: IPFragmenter(1500) -> [0] arpq%d;\n",
			i, i, color, i, itf.Addr, itf.Addr, i, i, i)
		fmt.Fprintf(&b, "arpq%d -> out%d -> td%d;\n", i, i, i)
		fmt.Fprintf(&b, "cp%d [1] -> ICMPError(%s, redirect, 1) -> rt;\n", i, itf.Addr)
		fmt.Fprintf(&b, "gio%d [1] -> ICMPError(%s, parameterproblem, 0) -> rt;\n", i, itf.Addr)
		fmt.Fprintf(&b, "dt%d [1] -> ICMPError(%s, timeexceeded, 0) -> rt;\n", i, itf.Addr)
		fmt.Fprintf(&b, "fr%d [1] -> ICMPError(%s, unreachable, 4) -> rt;\n\n", i, itf.Addr)
	}
	return b.String()
}

// SimpleConfig renders the minimal configuration ("Simple" in Figures
// 9-11): device handling and a single packet queue per forwarding pair.
// pairs[i] = j means packets arriving on interface i leave on interface
// j; a negative entry leaves interface i receive-only.
func SimpleConfig(ifs []Interface, pairs []int) string {
	var b strings.Builder
	b.WriteString("// Minimal Click configuration: devices and one queue per path.\n\n")
	for i, j := range pairs {
		if j < 0 {
			continue
		}
		fmt.Fprintf(&b, "fd%d :: PollDevice(%s) -> q%d :: Queue -> td%d :: ToDevice(%s);\n",
			i, ifs[i].Device, i, j, ifs[j].Device)
	}
	return b.String()
}

// ForwardPairs returns the evaluation traffic pattern: the first half of
// the interfaces receive from sources and forward to the second half
// (source i's packets leave on interface i + n/2).
func ForwardPairs(n int) []int {
	pairs := make([]int, n)
	for i := range pairs {
		if i < n/2 {
			pairs[i] = i + n/2
		} else {
			pairs[i] = -1
		}
	}
	return pairs
}

// ComboPatterns is the click-xform pattern file for the combination
// elements. Three pattern-replacement pairs reduce the ten-element
// Figure 5 fragment to the combo form of Figure 6: the Figure 4 pair
// (Paint-Strip-CheckIPHeader => IPInputCombo), a pair folding
// GetIPAddress into IPInputCombo, and the output-path pair
// (DropBroadcasts-...-IPFragmenter => IPOutputCombo).
const ComboPatterns = `
// click-xform patterns for the IP router combination elements.

elementclass IPInputComboPat {
	input -> Paint($color) -> Strip(14) -> CheckIPHeader($bad) -> output;
}
elementclass IPInputComboPat_Replacement {
	input -> IPInputCombo($color, $bad) -> output;
}

elementclass IPInputAddrPat {
	input -> IPInputCombo($color, $bad) -> GetIPAddress(16) -> output;
}
elementclass IPInputAddrPat_Replacement {
	input -> IPInputCombo($color, $bad, 16) -> output;
}

elementclass IPOutputComboPat {
	input -> DropBroadcasts -> cp :: CheckPaint($color) -> g :: IPGWOptions($addr) -> FixIPSrc($addr) -> d :: DecIPTTL -> f :: IPFragmenter($mtu) -> output;
	cp [1] -> [1] output;
	g [1] -> [2] output;
	d [1] -> [3] output;
	f [1] -> [4] output;
}
elementclass IPOutputComboPat_Replacement {
	input -> oc :: IPOutputCombo($color, $addr, $mtu);
	oc [0] -> output;
	oc [1] -> [1] output;
	oc [2] -> [2] output;
	oc [3] -> [3] output;
	oc [4] -> [4] output;
}
`

// ARPElimPatterns removes ARP machinery from point-to-point links in
// combined configurations (§7.2): the combined graph exposes that the
// ARPQuerier's packets reach exactly one peer, whose address the peer's
// ARPResponder declares, so a static encapsulation suffices. The
// RouterLink keeps its name through the replacement so click-uncombine
// still finds it.
const ARPElimPatterns = `
// click-xform patterns for multiple-router ARP elimination.

elementclass ARPElimPat {
	input -> q :: ARPQuerier($ip, $eth) -> link :: RouterLink -> c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
	input [1] -> [1] q;
	input [2] -> link;
	c [0] -> r :: ARPResponder($pip, $peth) -> [1] output;
	c [1] -> [2] output;
	c [2] -> [3] output;
	c [3] -> [4] output;
}
elementclass ARPElimPat_Replacement {
	input -> q :: EtherEncapARP($eth, $peth) -> link :: RouterLink -> c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
	input [1] -> [1] q;
	input [2] -> link;
	c [0] -> r :: ARPResponder($pip, $peth) -> [1] output;
	c [1] -> [2] output;
	c [2] -> [3] output;
	c [3] -> [4] output;
}
`

// FirewallRules is a 17-rule IPFilter configuration modeled on the
// screened-host firewall of "Building Internet Firewalls" used in §4's
// measurement. (The book's exact table is not reproducible here; this
// synthetic rule set preserves what matters for the experiment: 17
// rules with the DNS rule next-to-last, so a DNS packet traverses most
// of the decision tree.) Rule 16 of 17 — "DNS-5" — admits UDP port 53
// to the bastion host 10.0.0.2.
func FirewallRules() []string {
	return []string{
		"deny src net 10.0.0.0/8 && ip frag",                // 1: fragments from inside-claiming sources
		"deny src host 192.168.1.1",                         // 2: spoofed router address
		"allow src net 172.16.0.0/12 && tcp && dst port 25", // 3: SMTP-1
		"allow dst host 10.0.0.2 && tcp && dst port 25",     // 4: SMTP-2
		"deny tcp && dst port 23",                           // 5: no telnet
		"deny tcp && dst port 513",                          // 6: no rlogin
		"deny tcp && dst port 514",                          // 7: no rsh
		"allow src host 10.0.0.2 && tcp && src port 25",     // 8: SMTP-3
		"allow tcp && dst port 80 && dst host 10.0.0.3",     // 9: HTTP-1
		"allow tcp && src port 80 && src host 10.0.0.3",     // 10: HTTP-2
		"deny udp && dst port 69",                           // 11: no tftp
		"deny udp && dst port 161",                          // 12: no snmp
		"allow icmp type echo",                              // 13: ping out
		"allow icmp type echo-reply",                        // 14: ping back
		"allow dst host 10.0.0.2 && tcp && dst port 53",     // 15: DNS-4 (zone transfer)
		"allow dst host 10.0.0.2 && udp && dst port 53",     // 16: DNS-5
		"deny all", // 17: default deny
	}
}

// FirewallConfigArg renders the rules as an IPFilter configuration
// string.
func FirewallConfigArg() string {
	return strings.Join(FirewallRules(), ", ")
}

// DNS5Packet builds the packet §4 measures: a UDP datagram matching the
// next-to-last firewall rule (DNS to the bastion host), presented the
// way IPFilter sees it (IP header first).
func DNS5Packet() *packet.Packet {
	p := packet.BuildUDP4(
		packet.EtherAddr{0x00, 0x00, 0xc0, 0x00, 0x00, 0x02}, packet.EtherAddr{0x00, 0x00, 0xc0, 0x00, 0x00, 0x01},
		packet.MakeIP4(192, 0, 2, 7), packet.MakeIP4(10, 0, 0, 2),
		3456, 53, make([]byte, 26))
	p.Pull(packet.EtherHeaderLen)
	p.Anno.NetworkOffset = 0
	return p
}
