package iprouter

import (
	"strings"
	"testing"

	"repro/internal/classifier"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/lang"
	"repro/internal/packet"
)

func TestInterfacesAddressing(t *testing.T) {
	ifs := Interfaces(8)
	if len(ifs) != 8 {
		t.Fatalf("len = %d", len(ifs))
	}
	seen := map[string]bool{}
	for i, itf := range ifs {
		if itf.Addr == itf.HostAddr {
			t.Errorf("interface %d: router and host share an address", i)
		}
		// Same /24.
		if itf.Addr[0] != itf.HostAddr[0] || itf.Addr[2] != itf.HostAddr[2] {
			t.Errorf("interface %d: host not on the interface subnet", i)
		}
		for _, k := range []string{itf.Addr.String(), itf.Ether.String(), itf.HostAddr.String(), itf.HostEth.String()} {
			if seen[k] {
				t.Errorf("duplicate address %s", k)
			}
			seen[k] = true
		}
	}
}

func checkConfig(t *testing.T, text string) *graph.Router {
	t.Helper()
	g, err := lang.ParseRouter(text, "test")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	reg := elements.NewRegistry()
	if errs := graph.CheckPorts(g, reg); len(errs) > 0 {
		t.Fatalf("ports: %v", errs[0])
	}
	pr, err := graph.AssignProcessing(g, reg)
	if err != nil {
		t.Fatalf("processing: %v", err)
	}
	if errs := graph.CheckConnectionDiscipline(g, pr); len(errs) > 0 {
		t.Fatalf("discipline: %v", errs[0])
	}
	return g
}

func TestConfigValidAcrossSizes(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		g := checkConfig(t, Config(Interfaces(n)))
		// Per interface: fd, td, classifier, queue, arpq, arpresponder,
		// paint, strip, chk, gia, db, cp, gio, fis, dt, fr, discard,
		// 4 ICMPErrors = 21; plus the shared rt and ToHost.
		want := n*21 + 2
		if got := g.NumElements(); got != want {
			t.Errorf("n=%d: %d elements, want %d", n, got, want)
		}
	}
}

func TestForwardingPathLength(t *testing.T) {
	// §3: sixteen elements on the forwarding path. Walk a transit
	// packet's path through the 2-interface graph by class sequence.
	g := checkConfig(t, Config(Interfaces(2)))
	wantPath := []string{
		"PollDevice", "Classifier", "Paint", "Strip", "CheckIPHeader",
		"GetIPAddress", "LookupIPRoute", "DropBroadcasts", "CheckPaint",
		"IPGWOptions", "FixIPSrc", "DecIPTTL", "IPFragmenter",
		"ARPQuerier", "Queue", "ToDevice",
	}
	if len(wantPath) != 16 {
		t.Fatalf("test bug: path spec has %d entries", len(wantPath))
	}
	// Follow from fd0 along the expected class sequence, picking the
	// out-port that leads to the next wanted class.
	cur := g.FindElement("fd0")
	if cur < 0 {
		t.Fatal("no fd0")
	}
	for step := 1; step < len(wantPath); step++ {
		found := -1
		for _, c := range g.ConnsFrom(cur) {
			if g.Element(c.To).Class == wantPath[step] {
				found = c.To
				break
			}
		}
		if found < 0 {
			t.Fatalf("step %d: no %s successor of %s", step, wantPath[step], g.Element(cur).Name)
		}
		cur = found
	}
}

func TestSimpleConfig(t *testing.T) {
	ifs := Interfaces(8)
	g := checkConfig(t, SimpleConfig(ifs, ForwardPairs(8)))
	// 4 forwarding pairs × (fd, queue, td).
	if got := g.NumElements(); got != 12 {
		t.Errorf("simple config has %d elements, want 12", got)
	}
}

func TestForwardPairs(t *testing.T) {
	p := ForwardPairs(8)
	for i := 0; i < 4; i++ {
		if p[i] != i+4 {
			t.Errorf("pairs[%d] = %d", i, p[i])
		}
		if p[i+4] != -1 {
			t.Errorf("pairs[%d] = %d, want -1", i+4, p[i+4])
		}
	}
}

func TestFirewallRuleCount(t *testing.T) {
	rules := FirewallRules()
	if len(rules) != 17 {
		t.Fatalf("%d rules, want 17", len(rules))
	}
	// DNS-5 is next to last; the last is the default deny.
	if !strings.Contains(rules[15], "53") || !strings.Contains(rules[15], "udp") {
		t.Errorf("rule 16 is not the UDP DNS rule: %q", rules[15])
	}
	if !strings.Contains(rules[16], "deny") {
		t.Errorf("rule 17 is not a default deny: %q", rules[16])
	}
}

func TestFirewallSemantics(t *testing.T) {
	prog, err := classifier.BuildIPFilterProgram(FirewallRules())
	if err != nil {
		t.Fatal(err)
	}
	prog.Optimize()

	mk := func(src, dst packet.IP4, proto int, sport, dport uint16) []byte {
		p := packet.BuildUDP4(packet.EtherAddr{}, packet.EtherAddr{}, src, dst, sport, dport, make([]byte, 14))
		p.Pull(packet.EtherHeaderLen)
		h, _ := p.IPHeader()
		h.SetProto(proto)
		h.UpdateChecksum()
		return p.Data()
	}
	cases := []struct {
		name  string
		data  []byte
		allow bool
	}{
		{"DNS-5", DNS5Packet().Data(), true},
		{"SMTP to bastion", mk(packet.MakeIP4(192, 0, 2, 1), packet.MakeIP4(10, 0, 0, 2), packet.IPProtoTCP, 999, 25), true},
		{"telnet", mk(packet.MakeIP4(192, 0, 2, 1), packet.MakeIP4(10, 0, 0, 9), packet.IPProtoTCP, 999, 23), false},
		{"tftp", mk(packet.MakeIP4(192, 0, 2, 1), packet.MakeIP4(10, 0, 0, 9), packet.IPProtoUDP, 999, 69), false},
		{"web to 10.0.0.3", mk(packet.MakeIP4(192, 0, 2, 1), packet.MakeIP4(10, 0, 0, 3), packet.IPProtoTCP, 999, 80), true},
		{"web to other host", mk(packet.MakeIP4(192, 0, 2, 1), packet.MakeIP4(10, 0, 0, 9), packet.IPProtoTCP, 999, 80), false},
		{"random UDP", mk(packet.MakeIP4(192, 0, 2, 1), packet.MakeIP4(10, 0, 0, 9), packet.IPProtoUDP, 999, 777), false},
		{"spoofed router", mk(packet.MakeIP4(192, 168, 1, 1), packet.MakeIP4(10, 0, 0, 2), packet.IPProtoUDP, 999, 53), false},
	}
	for _, c := range cases {
		_, ok, _ := prog.Match(c.data)
		if ok != c.allow {
			t.Errorf("%s: allow=%v, want %v", c.name, ok, c.allow)
		}
	}
}

func TestDNS5PacketShape(t *testing.T) {
	p := DNS5Packet()
	h, ok := p.IPHeader()
	if !ok {
		t.Fatal("no IP header")
	}
	if h.Proto() != packet.IPProtoUDP || h.Dst() != packet.MakeIP4(10, 0, 0, 2) {
		t.Error("DNS5 addressing wrong")
	}
	u, ok := p.UDPHeader()
	if !ok || u.DstPort() != 53 {
		t.Error("DNS5 not a DNS packet")
	}
}

func TestPatternFilesParse(t *testing.T) {
	for _, src := range []string{ComboPatterns, ARPElimPatterns} {
		if _, err := lang.Parse(src, "patterns"); err != nil {
			t.Errorf("pattern file does not parse: %v", err)
		}
	}
}
