package mgmt

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/core"
)

// The management API exposes the handler tree over HTTP/JSON:
//
//	GET    /report                                   plane-wide report (op latency, cache, sharing)
//	GET    /tenants                                  list tenants
//	POST   /tenants/{id}                             create (body = config text)
//	PUT    /tenants/{id}                             hot-swap (body = config text)
//	DELETE /tenants/{id}                             delete
//	GET    /tenants/{id}/report                      telemetry snapshot
//	GET    /tenants/{id}/elements                    handler tree
//	GET    /tenants/{id}/elements/{name}/{handler}   read handler
//	POST   /tenants/{id}/elements/{name}/{handler}   write handler (body = value)
//
// The handler is always the LAST path segment, so element names
// containing '/' (combine link names, hierarchical tenant configs) are
// unambiguous without escaping; names containing '.' or '%' use the
// core escaping rule (%2E, %25, %2F) — the route parser works on the
// escaped path and unescapes the element part itself, sharing one
// decoder with in-process handler paths.

// Handler returns the management API as an http.Handler.
func (p *Plane) Handler() http.Handler {
	return http.HandlerFunc(p.serve)
}

// httpError is the JSON error envelope.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, httpError{Error: err.Error()})
}

// errStatus maps plane errors onto HTTP statuses: unknown names are
// 404, everything else from the control plane is a client error.
func errStatus(err error) int {
	msg := err.Error()
	if strings.Contains(msg, "no tenant") || strings.Contains(msg, "no element") || strings.Contains(msg, "no handler") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func (p *Plane) serve(w http.ResponseWriter, r *http.Request) {
	// Work on the escaped path: %2F inside an element name must not
	// split into segments, which r.URL.Path would already have done.
	path := r.URL.EscapedPath()
	if path == "/report" {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("mgmt: %s not allowed", r.Method))
			return
		}
		writeJSON(w, http.StatusOK, p.Report())
		return
	}
	if path == "/tenants" || path == "/tenants/" {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("mgmt: %s not allowed", r.Method))
			return
		}
		writeJSON(w, http.StatusOK, p.Tenants())
		return
	}
	rest, ok := strings.CutPrefix(path, "/tenants/")
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("mgmt: no route %q", path))
		return
	}
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("mgmt: missing tenant id"))
		return
	}
	switch {
	case sub == "":
		p.serveTenant(w, r, id)
	case sub == "report":
		p.serveReport(w, r, id)
	case sub == "elements" || sub == "elements/":
		p.serveElements(w, r, id)
	case strings.HasPrefix(sub, "elements/"):
		p.serveHandlerPath(w, r, id, strings.TrimPrefix(sub, "elements/"))
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("mgmt: no route %q", path))
	}
}

func (p *Plane) serveTenant(w http.ResponseWriter, r *http.Request, id string) {
	switch r.Method {
	case http.MethodPost, http.MethodPut:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if r.Method == http.MethodPost {
			err = p.Create(id, string(body), Limits{})
		} else {
			err = p.Swap(id, string(body))
		}
		if err != nil {
			writeErr(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "id": id})
	case http.MethodDelete:
		if err := p.Delete(id); err != nil {
			writeErr(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "id": id})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("mgmt: %s not allowed", r.Method))
	}
}

func (p *Plane) serveReport(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("mgmt: %s not allowed", r.Method))
		return
	}
	rep, err := p.TenantReport(id)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (p *Plane) serveElements(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("mgmt: %s not allowed", r.Method))
		return
	}
	els, err := p.Elements(id)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, els)
}

// serveHandlerPath resolves "{name...}/{handler}" where name may span
// several segments (element names may contain '/').
func (p *Plane) serveHandlerPath(w http.ResponseWriter, r *http.Request, id, rest string) {
	slash := strings.LastIndexByte(rest, '/')
	if slash <= 0 || slash == len(rest)-1 {
		writeErr(w, http.StatusNotFound, fmt.Errorf("mgmt: want elements/{name}/{handler}, got %q", rest))
		return
	}
	elemEsc, handler := rest[:slash], rest[slash+1:]
	element, ok := core.UnescapeElementName(elemEsc)
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("mgmt: bad element escape %q", elemEsc))
		return
	}
	switch r.Method {
	case http.MethodGet:
		v, err := p.ReadHandler(id, element, handler)
		if err != nil {
			writeErr(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{
			"tenant": id, "element": element, "handler": handler, "value": v,
		})
	case http.MethodPost, http.MethodPut:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		value := strings.TrimSpace(string(body))
		if err := p.WriteHandler(id, element, handler, value); err != nil {
			writeErr(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{
			"tenant": id, "element": element, "handler": handler, "status": "ok",
		})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("mgmt: %s not allowed", r.Method))
	}
}
