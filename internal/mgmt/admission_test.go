package mgmt

import (
	"fmt"
	"sync"
	"testing"
)

// TestIncrementalAdmissionUnderRace hammers the incremental control
// path from many goroutines while a parallel dataplane pumps: each
// worker owns a disjoint slice of tenant IDs and loops
// create → swap → delete against the live plane, with a long-lived
// tenant forwarding throughout. Under -race this drives every splice,
// transplant, and removal through SyncDo against the epoch scheduler,
// plus the shared parse cache and intern table under the plane lock.
// The survivors' conservation counters prove no operation corrupted a
// neighbor.
func TestIncrementalAdmissionUnderRace(t *testing.T) {
	const (
		workers = 4
		perWkr  = 3
		rounds  = 8
		perSrc  = 5000
	)
	p, err := NewPlane(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, p, "anchor", tenantConfig(perSrc, 128))
	p.Start()
	defer p.Stop()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				for k := 0; k < perWkr; k++ {
					id := fmt.Sprintf("w%dk%d", w, k)
					if err := p.Create(id, tenantConfig(100, 32), Limits{}); err != nil {
						t.Errorf("create %s: %v", id, err)
						return
					}
					if err := p.Swap(id, tenantConfig(100, 64)); err != nil {
						t.Errorf("swap %s: %v", id, err)
						return
					}
				}
				for k := 0; k < perWkr; k++ {
					id := fmt.Sprintf("w%dk%d", w, k)
					if err := p.Delete(id); err != nil {
						t.Errorf("delete %s: %v", id, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	p.Stop()
	drain(p)

	if got := len(p.Tenants()); got != 1 {
		t.Fatalf("%d tenants survive churn, want 1 (anchor)", got)
	}
	emitted := readInt(t, p, "anchor", "src", "packets_out")
	delivered := readInt(t, p, "anchor", "d", "packets_in")
	drops := readInt(t, p, "anchor", "q", "drops")
	if emitted != perSrc {
		t.Errorf("anchor emitted %d, want %d", emitted, perSrc)
	}
	if delivered+drops != emitted {
		t.Errorf("anchor: delivered %d + drops %d != emitted %d", delivered, drops, emitted)
	}

	rep := p.Report()
	wantOps := int64(workers * rounds * perWkr)
	if rep.Create.Count != wantOps+1 || rep.Swap.Count != wantOps || rep.Delete.Count != wantOps {
		t.Errorf("op counts create=%d swap=%d delete=%d, want %d+1/%d/%d",
			rep.Create.Count, rep.Swap.Count, rep.Delete.Count, wantOps, wantOps, wantOps)
	}
	// Every churn round after the first re-admits cached texts.
	if rep.ConfigCacheHits == 0 {
		t.Error("no config-cache hits across identical churn rounds")
	}
}
