package mgmt

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestNTenantIsolationUnderRace runs many tenants through the live
// pump on a parallel dataplane while control-plane goroutines hammer
// each tenant's handlers and one tenant hot-swaps repeatedly. Under
// -race this is the whole management seam at once: HTTP-equivalent
// reads, budgeted capacity writes, per-tenant swaps, and the epoch
// scheduler's rendezvous, all concurrent. The final conservation check
// per tenant proves no tenant's packets leaked into another's
// counters.
func TestNTenantIsolationUnderRace(t *testing.T) {
	const (
		tenants   = 6
		perSrc    = 20000
		hammering = 40
	)
	p, err := NewPlane(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tenants; i++ {
		mustCreate(t, p, fmt.Sprintf("t%d", i), tenantConfig(perSrc, 128))
	}
	p.Start()
	defer p.Stop()

	var wg sync.WaitGroup
	// Per-tenant control hammer: reads and budgeted capacity writes.
	for i := 0; i < tenants-1; i++ {
		id := fmt.Sprintf("t%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			caps := []string{"64", "256", "128"}
			for n := 0; n < hammering; n++ {
				if _, err := p.ReadHandler(id, "q", "length"); err != nil {
					t.Errorf("%s read: %v", id, err)
					return
				}
				if err := p.WriteHandler(id, "q", "capacity", caps[n%len(caps)]); err != nil {
					t.Errorf("%s write: %v", id, err)
					return
				}
				if _, err := p.TenantReport(id); err != nil {
					t.Errorf("%s report: %v", id, err)
					return
				}
			}
		}()
	}
	// One tenant hot-swaps in a loop while the others forward.
	swapID := fmt.Sprintf("t%d", tenants-1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 10; n++ {
			if err := p.Swap(swapID, tenantConfig(perSrc, 64+n)); err != nil {
				t.Errorf("swap %s: %v", swapID, err)
				return
			}
		}
	}()
	wg.Wait()

	// Wait for every tenant's source to exhaust.
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t%d", i)
		for {
			v, err := p.ReadHandler(id, "src", "packets_out")
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if n, _ := strconv.ParseInt(v, 10, 64); n >= perSrc {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never exhausted its source (%s/%d)", id, v, perSrc)
			}
			time.Sleep(time.Millisecond)
		}
	}
	p.Stop()

	// Per-tenant conservation: src out == delivered + queue drops,
	// exactly, for every tenant — including the swapper, whose source
	// progress transplants across each of its ten incarnations.
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t%d", i)
		emitted := readInt(t, p, id, "src", "packets_out")
		delivered := readInt(t, p, id, "d", "packets_in")
		drops := readInt(t, p, id, "q", "drops")
		if emitted != perSrc {
			t.Errorf("%s emitted %d, want %d", id, emitted, perSrc)
		}
		if delivered+drops != emitted {
			t.Errorf("%s: delivered %d + drops %d != emitted %d", id, delivered, drops, emitted)
		}
	}
}
