package mgmt

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

func httpDo(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, blob
}

// TestHTTPHandlerTreeRoundTrip proves the HTTP view of the handler
// tree equals the in-process one: every element and handler a tenant
// exports reads the same value over HTTP as through ReadHandler.
func TestHTTPHandlerTreeRoundTrip(t *testing.T) {
	p, err := NewPlane(Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, p, "t1", tenantConfig(2000, 128))
	drain(p)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	els, err := p.Elements("t1")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, el := range els {
		for _, h := range el.Handlers {
			want, err := p.ReadHandler("t1", el.Name, h)
			if err != nil {
				continue // write-only
			}
			code, blob := httpDo(t, "GET",
				srv.URL+"/tenants/t1/elements/"+core.EscapeElementName(el.Name)+"/"+h, "")
			if code != http.StatusOK {
				t.Errorf("GET %s/%s: status %d: %s", el.Name, h, code, blob)
				continue
			}
			var out map[string]string
			if err := json.Unmarshal(blob, &out); err != nil {
				t.Fatalf("GET %s/%s: %v", el.Name, h, err)
			}
			if out["value"] != want {
				t.Errorf("HTTP %s.%s = %q, in-process %q", el.Name, h, out["value"], want)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Errorf("only %d handlers round-tripped", checked)
	}

	// The elements listing matches too.
	code, blob := httpDo(t, "GET", srv.URL+"/tenants/t1/elements", "")
	if code != http.StatusOK {
		t.Fatalf("GET elements: %d: %s", code, blob)
	}
	var listed []ElementInfo
	if err := json.Unmarshal(blob, &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != len(els) {
		t.Errorf("HTTP lists %d elements, in-process %d", len(listed), len(els))
	}
}

// TestHTTPHostileElementNames drives handler paths whose element names
// contain '/' and '.' through the URL route: the handler is the last
// segment, and escaped forms resolve identically.
func TestHTTPHostileElementNames(t *testing.T) {
	p, err := NewPlane(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// "a/b" is a legal identifier in the config language.
	cfg := "s :: InfiniteSource(100) -> a/b :: Queue(50) -> u :: Unqueue -> d :: Discard;"
	mustCreate(t, p, "t1", cfg)
	drain(p)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	// Raw: the element spans two URL segments; the handler is the last.
	code, blob := httpDo(t, "GET", srv.URL+"/tenants/t1/elements/a/b/capacity", "")
	if code != http.StatusOK {
		t.Fatalf("raw nested path: %d: %s", code, blob)
	}
	var out map[string]string
	json.Unmarshal(blob, &out)
	if out["value"] != "50" || out["element"] != "a/b" {
		t.Errorf("raw nested path = %+v", out)
	}
	// Escaped: %2F must survive URL parsing and decode to the same
	// element (EscapedPath, not Path, feeds the router).
	code, blob = httpDo(t, "GET", srv.URL+"/tenants/t1/elements/a%2Fb/capacity", "")
	if code != http.StatusOK {
		t.Fatalf("escaped path: %d: %s", code, blob)
	}
	json.Unmarshal(blob, &out)
	if out["value"] != "50" {
		t.Errorf("escaped path = %+v", out)
	}
	// Writable through the same route.
	code, blob = httpDo(t, "POST", srv.URL+"/tenants/t1/elements/a%2Fb/capacity", "64")
	if code != http.StatusOK {
		t.Fatalf("write escaped path: %d: %s", code, blob)
	}
	if v, _ := p.ReadHandler("t1", "a/b", "capacity"); v != "64" {
		t.Errorf("capacity after HTTP write = %q", v)
	}
	// Unknown names 404.
	if code, _ := httpDo(t, "GET", srv.URL+"/tenants/t1/elements/ghost/class", ""); code != http.StatusNotFound {
		t.Errorf("ghost element: status %d", code)
	}
	if code, _ := httpDo(t, "GET", srv.URL+"/tenants/ghost/elements/a/class", ""); code != http.StatusNotFound {
		t.Errorf("ghost tenant: status %d", code)
	}
}

// TestHTTPLifecycle exercises create → traffic → swap → delete over
// the wire with zero loss.
func TestHTTPLifecycle(t *testing.T) {
	p, err := NewPlane(Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	if code, blob := httpDo(t, "POST", srv.URL+"/tenants/t1", tenantConfig(4000, 256)); code != http.StatusOK {
		t.Fatalf("create: %d: %s", code, blob)
	}
	// Creating again conflicts.
	if code, _ := httpDo(t, "POST", srv.URL+"/tenants/t1", tenantConfig(1, 1)); code == http.StatusOK {
		t.Error("duplicate create succeeded")
	}
	// A config that fails to parse is rejected and leaves the plane
	// serving.
	if code, _ := httpDo(t, "POST", srv.URL+"/tenants/bad", "src :: Nonsense("); code == http.StatusOK {
		t.Error("malformed config admitted")
	}
	drain(p)

	code, blob := httpDo(t, "GET", srv.URL+"/tenants/t1/report", "")
	if code != http.StatusOK {
		t.Fatalf("report: %d: %s", code, blob)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	var delivered int64
	for _, e := range rep.Elements {
		if e.Name == "d" {
			delivered = e.PacketsIn
		}
	}
	if delivered == 0 {
		t.Fatalf("report shows no traffic: %s", blob)
	}

	// Swap to a quiet config: counters must survive (zero loss).
	if code, blob := httpDo(t, "PUT", srv.URL+"/tenants/t1", tenantConfig(0, 99)); code != http.StatusOK {
		t.Fatalf("swap: %d: %s", code, blob)
	}
	code, blob = httpDo(t, "GET", srv.URL+"/tenants/t1/elements/d/packets_in", "")
	if code != http.StatusOK {
		t.Fatalf("post-swap read: %d: %s", code, blob)
	}
	var out map[string]string
	json.Unmarshal(blob, &out)
	if out["value"] != fmt.Sprint(delivered) {
		t.Errorf("delivered %s after swap, want %d (transplant lost counters)", out["value"], delivered)
	}

	// Tenant listing and delete.
	code, blob = httpDo(t, "GET", srv.URL+"/tenants", "")
	var infos []TenantInfo
	json.Unmarshal(blob, &infos)
	if code != http.StatusOK || len(infos) != 1 || infos[0].ID != "t1" || infos[0].Swaps != 1 {
		t.Errorf("tenant list: %d %s", code, blob)
	}
	if code, blob := httpDo(t, "DELETE", srv.URL+"/tenants/t1", ""); code != http.StatusOK {
		t.Fatalf("delete: %d: %s", code, blob)
	}
	if code, _ := httpDo(t, "GET", srv.URL+"/tenants/t1/report", ""); code != http.StatusNotFound {
		t.Errorf("deleted tenant report: status %d", code)
	}
}

// TestHTTPPlaneReport checks GET /report: the plane-wide snapshot —
// op-latency counters, config-cache hits, and the sharing table —
// round-trips over HTTP and reflects the operations performed.
func TestHTTPPlaneReport(t *testing.T) {
	p, err := NewPlane(Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	cfg := tenantConfig(10, 32)
	if code, body := httpDo(t, "POST", srv.URL+"/tenants/a", cfg); code != http.StatusOK {
		t.Fatalf("create: %d %s", code, body)
	}
	if code, body := httpDo(t, "POST", srv.URL+"/tenants/b", cfg); code != http.StatusOK {
		t.Fatalf("create: %d %s", code, body)
	}
	if code, body := httpDo(t, "DELETE", srv.URL+"/tenants/b", ""); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, body)
	}

	code, blob := httpDo(t, "GET", srv.URL+"/report", "")
	if code != http.StatusOK {
		t.Fatalf("GET /report: %d %s", code, blob)
	}
	var rep PlaneReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("/report does not parse: %v\n%s", err, blob)
	}
	if rep.Tenants != 1 || !rep.Incremental {
		t.Errorf("report tenants=%d incremental=%v, want 1/true", rep.Tenants, rep.Incremental)
	}
	if rep.Create.Count != 2 || rep.Delete.Count != 1 || rep.Create.TotalNS <= 0 {
		t.Errorf("report op stats create=%+v delete=%+v", rep.Create, rep.Delete)
	}
	if rep.ConfigCacheHits < 1 {
		t.Errorf("report cache hits = %d, want >= 1 (b reused a's text)", rep.ConfigCacheHits)
	}
	if code, _ := httpDo(t, "POST", srv.URL+"/report", ""); code != http.StatusMethodNotAllowed {
		t.Errorf("POST /report = %d, want 405", code)
	}
}
