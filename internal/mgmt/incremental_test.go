package mgmt

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
)

// TestIncrementalGuardIsolation checks the per-tenant guard-domain
// property the incremental path provides: a runtime configuration
// write in one tenant bumps only that tenant's guard generations, so a
// neighbor's flow fast path is never invalidated by someone else's
// churn. (A full rebuild collapses every tenant into one fresh guard
// domain — that is exactly the cost the spliced path avoids.)
func TestIncrementalGuardIsolation(t *testing.T) {
	p, err := NewPlane(Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, p, "a", tenantConfig(10, 32))
	mustCreate(t, p, "b", tenantConfig(10, 32))

	snap := func(id string) core.GuardSnapshot {
		e := p.Scheduler().Router().Find(id + "/q")
		if e == nil {
			t.Fatalf("no %s/q in combined router", id)
		}
		return e.(interface{ GuardSnapshot() core.GuardSnapshot }).GuardSnapshot()
	}
	a0, b0 := snap("a"), snap("b")
	if err := p.WriteHandler("a", "q", "capacity", "64"); err != nil {
		t.Fatal(err)
	}
	if snap("a") == a0 {
		t.Error("tenant a's guard generations did not move on its own config write")
	}
	if snap("b") != b0 {
		t.Errorf("tenant b's guard generations moved on tenant a's write: %v -> %v", b0, snap("b"))
	}

	// The isolation must survive tenant a being hot-swapped: the
	// replacement adopts a's generation history, not b's, and b still
	// does not move.
	if err := p.Swap("a", tenantConfig(20, 32)); err != nil {
		t.Fatal(err)
	}
	b1 := snap("b")
	if err := p.WriteHandler("a", "q", "capacity", "48"); err != nil {
		t.Fatal(err)
	}
	if snap("b") != b1 {
		t.Error("tenant b's guard generations moved on post-swap tenant a write")
	}
}

// TestIncrementalCanonicalUnparse checks determinism of the combined
// configuration: whatever create/swap/delete history produced a tenant
// set, the canonical combined graph unparses byte-identically. This is
// what makes config archives and diffs meaningful under an incremental
// control plane.
func TestIncrementalCanonicalUnparse(t *testing.T) {
	cfgA, cfgB, cfgC := tenantConfig(10, 16), tenantConfig(20, 32), tenantConfig(30, 64)

	// History 1: plain creates in ID order.
	p1, err := NewPlane(Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, p1, "a", cfgA)
	mustCreate(t, p1, "b", cfgB)
	mustCreate(t, p1, "c", cfgC)

	// History 2: out-of-order creates, a deleted tenant, and swaps
	// converging on the same (id, config) set.
	p2, err := NewPlane(Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, p2, "c", cfgA)
	mustCreate(t, p2, "x", cfgB)
	mustCreate(t, p2, "a", cfgB)
	if err := p2.Delete("x"); err != nil {
		t.Fatal(err)
	}
	mustCreate(t, p2, "b", cfgB)
	if err := p2.Swap("c", cfgC); err != nil {
		t.Fatal(err)
	}
	if err := p2.Swap("a", cfgA); err != nil {
		t.Fatal(err)
	}

	unparse := func(p *Plane) string {
		g, err := p.CombinedGraph()
		if err != nil {
			t.Fatal(err)
		}
		return lang.Unparse(g)
	}
	u1, u2 := unparse(p1), unparse(p2)
	if u1 != u2 {
		t.Fatalf("combined unparse differs across histories:\n--- creates in order ---\n%s\n--- churned history ---\n%s", u1, u2)
	}
	for _, id := range []string{"a/", "b/", "c/"} {
		if !strings.Contains(u1, id) {
			t.Errorf("canonical unparse missing tenant prefix %q:\n%s", id, u1)
		}
	}
}

// TestIncrementalOpStatsAndCache checks the control-plane telemetry:
// per-operation latency counters move, tenant reports carry their
// admission and swap latencies, and re-admitting an identical
// configuration hits the parse cache.
func TestIncrementalOpStatsAndCache(t *testing.T) {
	p, err := NewPlane(Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tenantConfig(10, 32)
	mustCreate(t, p, "a", cfg)
	mustCreate(t, p, "b", cfg) // identical text: must hit the cache
	if err := p.Swap("a", tenantConfig(20, 32)); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete("b"); err != nil {
		t.Fatal(err)
	}

	rep := p.Report()
	if rep.Create.Count != 2 || rep.Swap.Count != 1 || rep.Delete.Count != 1 {
		t.Fatalf("op counts = %d/%d/%d, want 2/1/1", rep.Create.Count, rep.Swap.Count, rep.Delete.Count)
	}
	if rep.Create.TotalNS <= 0 || rep.Swap.LastNS <= 0 || rep.Delete.LastNS <= 0 {
		t.Errorf("op latencies not recorded: %+v %+v %+v", rep.Create, rep.Swap, rep.Delete)
	}
	if rep.ConfigCacheHits < 1 {
		t.Errorf("config cache hits = %d, want >= 1 (tenant b re-used tenant a's text)", rep.ConfigCacheHits)
	}
	if !rep.Incremental {
		t.Error("default plane reports Incremental = false")
	}
	if rep.Tenants != 1 {
		t.Errorf("tenants = %d, want 1", rep.Tenants)
	}

	tr, err := p.TenantReport("a")
	if err != nil {
		t.Fatal(err)
	}
	if tr.CreateNS <= 0 || tr.SwapNS <= 0 {
		t.Errorf("tenant latencies create=%d swap=%d, want both > 0", tr.CreateNS, tr.SwapNS)
	}
	if tr.Swaps != 1 {
		t.Errorf("tenant swaps = %d, want 1", tr.Swaps)
	}
}

// TestIncrementalFullRebuildParity runs the same lifecycle on an
// incremental plane and a FullRebuild plane and compares the surviving
// tenants' conserved counters — the two installation strategies must
// be observationally equivalent at the handler surface.
func TestIncrementalFullRebuildParity(t *testing.T) {
	run := func(fullRebuild bool) (int64, int64) {
		p, err := NewPlane(Options{FullRebuild: fullRebuild})
		if err != nil {
			t.Fatal(err)
		}
		mustCreate(t, p, "a", tenantConfig(50, 16))
		mustCreate(t, p, "b", tenantConfig(70, 16))
		drain(p)
		if err := p.Swap("a", tenantConfig(90, 16)); err != nil {
			t.Fatal(err)
		}
		if err := p.Delete("b"); err != nil {
			t.Fatal(err)
		}
		mustCreate(t, p, "c", tenantConfig(30, 16))
		drain(p)
		return readInt(t, p, "a", "d", "count"), readInt(t, p, "c", "d", "count")
	}
	incA, incC := run(false)
	fullA, fullC := run(true)
	if incA != fullA || incC != fullC {
		t.Errorf("incremental delivered a=%d c=%d, full rebuild a=%d c=%d", incA, incC, fullA, fullC)
	}
}
